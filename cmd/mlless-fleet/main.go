// Command mlless-fleet runs a multi-tenant fleet on one shared
// simulated substrate: a seeded synthetic arrival trace over the
// LR/SVM/PMF workload zoo is admitted under per-tenant concurrency
// quotas inside the platform-wide cap, with fair-share admission and
// contention-triggered scale-in (DESIGN.md §14).
//
// Usage:
//
//	mlless-fleet -tenants 3 -jobs 20 -seed 42
//	mlless-fleet -tenants 4 -jobs 60 -quota 8 -max-concurrent 16 -events fleet.log
//	mlless-fleet -tenants 2 -jobs 10 -json fleet.json
//	mlless-fleet -tenants 4 -jobs 60 -host-par 8 -events fleet.log
//
// Jobs whose virtual windows overlap execute concurrently on -host-par
// goroutines (0 = GOMAXPROCS); the control-plane event log (-events) is
// byte-identical across same-seed invocations at every -host-par value
// — CI pins this with a two-run cmp and a cross-parallelism cmp.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"mlless/internal/core"
	"mlless/internal/experiments"
	"mlless/internal/faas"
	"mlless/internal/tenant"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "mlless-fleet:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		tenants   = flag.Int("tenants", 3, "number of tenants (named t1..tN)")
		jobs      = flag.Int("jobs", 20, "number of job arrivals in the trace")
		seed      = flag.Uint64("seed", 1, "arrival-trace seed (inter-arrivals, tenant and workload draws)")
		mean      = flag.Duration("arrival-mean", 1500*time.Millisecond, "mean exponential inter-arrival gap (virtual time)")
		quota     = flag.Int("quota", 0, "per-tenant concurrent-activation quota (0 = uncapped)")
		maxConc   = flag.Int("max-concurrent", 14, "platform-wide concurrent-activation cap (0 = provider default)")
		maxSteps  = flag.Int("max-steps", 120, "per-job step cap")
		noScaleIn = flag.Bool("no-scale-in", false, "disable contention-triggered shrink requests")
		hostPar   = flag.Int("host-par", 0, "host worker pool for concurrent job execution (0 = GOMAXPROCS; output is byte-identical at every value)")
		events    = flag.String("events", "", "write the control-plane event log to this file")
		jsonOut   = flag.String("json", "", "write the full fleet report as JSON to this file")
		quiet     = flag.Bool("quiet", false, "suppress the event log on stdout")
	)
	flag.Parse()

	for _, check := range []struct {
		name string
		val  int
	}{
		{"tenants", *tenants},
		{"jobs", *jobs},
		{"max-steps", *maxSteps},
	} {
		if check.val < 1 {
			return fmt.Errorf("-%s must be >= 1, got %d", check.name, check.val)
		}
	}
	if *mean <= 0 {
		return fmt.Errorf("-arrival-mean must be positive, got %v", *mean)
	}
	if *quota < 0 {
		return fmt.Errorf("-quota must be >= 0, got %d", *quota)
	}
	if *maxConc < 0 {
		return fmt.Errorf("-max-concurrent must be >= 0, got %d", *maxConc)
	}
	if *hostPar < 0 {
		return fmt.Errorf("-host-par must be >= 0, got %d", *hostPar)
	}
	if *quota > 0 && *maxConc > 0 && *quota > *maxConc {
		return fmt.Errorf("-quota %d exceeds -max-concurrent %d: a tenant could never use its allocation", *quota, *maxConc)
	}

	cl := core.NewCluster()
	if *maxConc > 0 {
		cfg := cl.Platform.Config()
		cfg.MaxConcurrent = *maxConc
		cl.Platform = faas.NewPlatformWithRegistry(cfg, cl.Metrics)
	}
	mix := experiments.ZooTemplates(cl, *maxSteps)

	ts := make([]tenant.Tenant, *tenants)
	names := make([]string, *tenants)
	for i := range ts {
		ts[i] = tenant.Tenant{Name: fmt.Sprintf("t%d", i+1), Quota: *quota}
		names[i] = ts[i].Name
	}
	arrivals, err := tenant.GenerateArrivals(*seed, names, mix, *jobs, *mean)
	if err != nil {
		return err
	}
	rep, err := tenant.Run(tenant.Config{
		Cluster: cl, Tenants: ts, Arrivals: arrivals, NoScaleIn: *noScaleIn,
		HostPar: *hostPar,
	})
	if err != nil {
		return err
	}

	if !*quiet {
		if err := rep.WriteEvents(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
	}
	fmt.Printf("fleet: %d jobs, %d tenants, makespan %v, throughput %.1f jobs/h\n",
		len(rep.Jobs), len(rep.Tenants), rep.Makespan.Round(time.Millisecond), rep.ThroughputPerHour)
	fmt.Printf("fairness: Jain %.4f over per-tenant mean slowdowns; latency p50 %v, p99 %v; %d workers scaled in\n",
		rep.Jain, rep.P50Latency.Round(time.Millisecond), rep.P99Latency.Round(time.Millisecond), rep.ScaleIns)
	for _, tr := range rep.Tenants {
		fmt.Printf("  %-4s jobs=%-3d func-time=%-12v func-$=%.6f mean-slowdown=%.3f max-wait=%v\n",
			tr.Name, tr.Jobs, tr.FunctionTime.Round(time.Millisecond), tr.FunctionDollars,
			tr.MeanSlowdown, tr.MaxWait.Round(time.Millisecond))
	}
	fmt.Printf("bill: platform function time %v ($%.6f), split across tenants to the exact GB-second\n",
		rep.FunctionTime.Round(time.Millisecond), rep.FunctionDollars)

	if *events != "" {
		f, err := os.Create(*events)
		if err != nil {
			return err
		}
		if err := rep.WriteEvents(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if *jsonOut != "" {
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonOut, append(buf, '\n'), 0o644); err != nil {
			return err
		}
	}
	return nil
}
