// Command mlless-train runs one MLLess training job on the simulated
// cloud and reports progress, convergence and the itemized bill.
//
// Usage:
//
//	mlless-train -model pmf -dataset ml10m -workers 24 -sync isp -v 0.7 -autotune
//	mlless-train -model lr -dataset criteo -workers 12 -target 0.58
//	mlless-train -model pmf -dataset ml10m -system pytorch
//	mlless-train -model lr -dataset criteo -data shard
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"mlless"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "mlless-train:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		modelName = flag.String("model", "pmf", "model: lr | pmf")
		data      = flag.String("dataset", "ml10m", "dataset: criteo | ml1m | ml10m | ml20m")
		system    = flag.String("system", "mlless", "system: mlless | pytorch | pywren")
		workers   = flag.Int("workers", 12, "initial worker count P")
		batch     = flag.Int("batch", 625, "per-worker mini-batch size B")
		sync      = flag.String("sync", "bsp", "synchronization: bsp | isp | async")
		sig       = flag.Float64("v", 0.7, "ISP significance threshold v")
		autotune  = flag.Bool("autotune", false, "enable the scale-in auto-tuner")
		staleness = flag.Int("staleness", 1, "SSP staleness bound; async staleness cap K (1 = per-step sync)")
		kvShards  = flag.Int("kv-shards", 1, "KV exchange tier shard count (1 = single Redis endpoint)")
		exch      = flag.String("exchange", "ps", "gradient exchange: ps (parameter server) | scatter (scatter-reduce) | tree (tree-reduce)")
		fanout    = flag.Int("tree-fanout", 0, "tree-reduce fan-out, >= 2 (0 = default; requires -exchange tree)")
		driver    = flag.String("driver", "par", "simulation driver: par (goroutine pool) | seq (single-threaded); results are byte-identical")
		dataTier  = flag.String("data", "batch", "dataset tier: batch (row-encoded objects) | shard (columnar shards, one ranged read per step); losses are bit-identical")
		target    = flag.Float64("target", 0, "stop at this loss (0 = run max-steps)")
		maxSteps  = flag.Int("max-steps", 500, "step cap")
		lr        = flag.Float64("lr", 0, "learning rate (0 = model default)")
		seed      = flag.Uint64("seed", 1, "dataset seed")
		quiet     = flag.Bool("quiet", false, "suppress per-step progress")
		jsonOut   = flag.String("json", "", "write the full result (trace, evictions, bill) as JSON to this file")
		traceOut  = flag.String("trace", "", "write a Chrome trace-event JSON of the run to this file (open in Perfetto)")
		timeline  = flag.Bool("timeline", false, "print the per-step phase-time decomposition table")
		metrics   = flag.Bool("metrics", false, "print the unified cluster metrics snapshot")

		faultSeed      = flag.Uint64("fault-seed", 1, "seed for deterministic fault injection")
		faultInvoke    = flag.Float64("fault-invoke", 0, "transient invocation failure probability")
		faultStraggler = flag.Float64("fault-straggler", 0, "cold-start straggler probability (heavy-tailed multiplier)")
		faultReclaim   = flag.Float64("fault-reclaim", 0, "mid-run container reclamation probability per invocation")
		reclaimLife    = flag.Duration("fault-reclaim-life", 20*time.Second, "mean container lifetime when reclaimed (demo scale; real platforms average ~5m)")
		faultKV        = flag.Float64("fault-kv", 0, "per-operation KV store failure probability")
		faultKVSlow    = flag.Float64("fault-kv-slow", 0, "per-operation KV store latency-spike probability")
		faultMQ        = flag.Float64("fault-mq", 0, "per-operation broker failure probability")
		faultMQSlow    = flag.Float64("fault-mq-slow", 0, "per-operation broker latency-spike probability")
	)
	flag.Float64Var(faultReclaim, "fault-reclaim-prob", 0, "alias for -fault-reclaim")
	flag.Parse()

	for _, check := range []struct {
		name string
		val  int
	}{
		{"kv-shards", *kvShards},
		{"workers", *workers},
		{"batch", *batch},
		{"max-steps", *maxSteps},
		{"staleness", *staleness},
	} {
		if check.val < 1 {
			return fmt.Errorf("-%s must be >= 1, got %d", check.name, check.val)
		}
	}
	for _, check := range []struct {
		name string
		val  float64
	}{
		{"fault-invoke", *faultInvoke},
		{"fault-straggler", *faultStraggler},
		{"fault-reclaim", *faultReclaim},
		{"fault-kv", *faultKV},
		{"fault-kv-slow", *faultKVSlow},
		{"fault-mq", *faultMQ},
		{"fault-mq-slow", *faultMQSlow},
	} {
		if check.val < 0 || check.val > 1 {
			return fmt.Errorf("-%s must be a probability in [0, 1], got %g", check.name, check.val)
		}
	}
	if err := mlless.ValidateExchange(*exch, *fanout); err != nil {
		return err
	}
	if *fanout != 0 && *exch != mlless.ExchangeTree {
		return fmt.Errorf("-tree-fanout only applies to -exchange tree, got -exchange %s", *exch)
	}
	if *exch != mlless.ExchangeParamServer {
		// The collective strategies reduce through the object store, not
		// the KV tier, and need every worker on the same step.
		if *kvShards > 1 {
			return fmt.Errorf("-exchange %s bypasses the KV tier; it cannot be combined with -kv-shards %d", *exch, *kvShards)
		}
		if *sync == "async" {
			return fmt.Errorf("-exchange %s needs a lock-step schedule; it cannot be combined with -sync async", *exch)
		}
		if *staleness > 1 {
			return fmt.Errorf("-exchange %s needs per-step synchronization; it cannot be combined with -staleness %d", *exch, *staleness)
		}
	}

	if *dataTier != mlless.DataBatch && *dataTier != mlless.DataShard {
		return fmt.Errorf("-data must be %q or %q, got %q", mlless.DataBatch, mlless.DataShard, *dataTier)
	}
	if *dataTier == mlless.DataShard && *system != "mlless" {
		return fmt.Errorf("-data shard is an MLLess engine tier; it cannot be combined with -system %s", *system)
	}

	cluster := mlless.NewClusterWithShards(*kvShards)
	job, err := buildJob(cluster, *modelName, *data, *dataTier, *batch, *lr, *seed)
	if err != nil {
		return err
	}
	job.Spec.Workers = *workers
	job.Spec.TargetLoss = *target
	job.Spec.MaxSteps = *maxSteps
	job.Spec.AutoTune = *autotune
	job.Spec.Staleness = *staleness
	job.Spec.Driver = *driver
	job.Spec.Exchange = *exch
	job.Spec.TreeFanout = *fanout
	switch *sync {
	case "bsp":
		job.Spec.Sync = mlless.BSP
	case "isp":
		job.Spec.Sync = mlless.ISP
		job.Spec.Significance = *sig
	case "async":
		job.Spec.Sync = mlless.Async
		job.Spec.Significance = *sig
	default:
		return fmt.Errorf("unknown sync model %q", *sync)
	}
	job.Spec.Faults = mlless.FaultSpec{
		Seed:            *faultSeed,
		InvokeFailProb:  *faultInvoke,
		StragglerProb:   *faultStraggler,
		ReclaimProb:     *faultReclaim,
		ReclaimMeanLife: *reclaimLife,
		KVFailProb:      *faultKV,
		KVSlowProb:      *faultKVSlow,
		MQFailProb:      *faultMQ,
		MQSlowProb:      *faultMQSlow,
	}

	var tracer *mlless.Tracer
	if *traceOut != "" || *timeline {
		tracer = mlless.NewTracer()
		job.Trace = tracer
	}

	fmt.Printf("training %s on %s: P=%d B=%d sync=%s autotune=%v system=%s\n",
		*modelName, *data, *workers, *batch, job.Spec.Sync, *autotune, *system)

	var res *mlless.Result
	switch *system {
	case "mlless":
		res, err = mlless.Train(cluster, job)
	case "pytorch":
		res, err = mlless.TrainServerful(cluster, job, mlless.DefaultServerfulConfig())
	case "pywren":
		res, err = mlless.TrainPyWren(cluster, job, mlless.DefaultPyWrenConfig())
	default:
		return fmt.Errorf("unknown system %q", *system)
	}
	if err != nil {
		return err
	}

	if !*quiet {
		for i, p := range res.History {
			if i%25 == 0 || i == len(res.History)-1 {
				fmt.Printf("  step %4d  t=%-12v loss=%.4f workers=%d\n",
					p.Step, p.Time.Round(time.Millisecond), p.Loss, p.Workers)
			}
		}
	}
	for _, r := range res.Removals {
		fmt.Printf("  auto-tuner evicted worker %d after step %d (pool -> %d)\n", r.Worker, r.Step, r.WorkersLeft)
	}
	fmt.Printf("done: converged=%v steps=%d exec=%v final-loss=%.4f relaunches=%d\n",
		res.Converged, res.Steps, res.ExecTime.Round(time.Millisecond), res.FinalLoss, res.Relaunches)
	if rec := res.Recovery; rec != (mlless.Recovery{}) {
		fmt.Printf("recovery: deaths=%d invoke-retries=%d restart=%v recompute=%v\n",
			rec.WorkerDeaths, rec.InvokeRetries,
			rec.RestartTime.Round(time.Millisecond), rec.RecomputeTime.Round(time.Millisecond))
	}
	fmt.Println("bill:")
	fmt.Print(res.Cost)
	if *timeline {
		fmt.Println("step timeline (ms):")
		if err := mlless.WriteStepTimeline(os.Stdout, tracer); err != nil {
			return err
		}
	}
	if *metrics {
		fmt.Println("cluster metrics:")
		if err := cluster.Metrics.WriteText(os.Stdout); err != nil {
			return err
		}
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			return err
		}
		if err := mlless.WriteChromeTrace(f, tracer); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Println("trace written to", *traceOut, "(load it at https://ui.perfetto.dev)")
	}

	if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := res.WriteJSON(f); err != nil {
			return err
		}
		fmt.Println("result written to", *jsonOut)
	}
	return nil
}

func buildJob(cluster *mlless.Cluster, modelName, data, dataTier string, batch int, lr float64, seed uint64) (mlless.Job, error) {
	switch {
	case modelName == "lr" && data == "criteo":
		cfg := mlless.DefaultCriteoConfig()
		cfg.Seed = seed
		ds := mlless.GenerateCriteo(cfg)
		var n int
		if dataTier == mlless.DataShard {
			// The shard tier normalizes before staging; the batch tier
			// after. The two orderings produce bit-identical samples.
			mlless.NormalizeInMemory(ds, cfg.NumericFeatures)
			n = mlless.StageDatasetShards(cluster, ds, "criteo", batch, 0, seed)
		} else {
			n = mlless.StageDataset(cluster, ds, "criteo", batch, seed)
			if err := mlless.NormalizeDataset(cluster, "criteo", n, cfg.NumericFeatures); err != nil {
				return mlless.Job{}, err
			}
		}
		if lr == 0 {
			lr = 0.01
		}
		return mlless.Job{
			Spec:      mlless.Spec{Data: dataTier},
			Model:     mlless.NewLogReg(ds.FeatureDim, 1e-4),
			Optimizer: mlless.NewAdam(mlless.Constant(lr)),
			Bucket:    "criteo", NumBatches: n, BatchSize: batch,
		}, nil
	case modelName == "pmf":
		var cfg mlless.MovieLensConfig
		switch data {
		case "ml1m":
			cfg = mlless.MovieLensConfig{Users: 1200, Items: 2400, Ratings: 120_000, Rank: 20, NoiseStd: 0.7, SignalStd: 0.8}
		case "ml10m":
			cfg = mlless.MovieLens10MScale()
		case "ml20m":
			cfg = mlless.MovieLens20MScale()
		default:
			return mlless.Job{}, fmt.Errorf("pmf needs dataset ml1m|ml10m|ml20m, got %q", data)
		}
		cfg.Seed = seed
		ds := mlless.GenerateMovieLens(cfg)
		var n int
		if dataTier == mlless.DataShard {
			n = mlless.StageDatasetShards(cluster, ds, "ml", batch, 0, seed)
		} else {
			n = mlless.StageDataset(cluster, ds, "ml", batch, seed)
		}
		if lr == 0 {
			lr = 20
		}
		return mlless.Job{
			Spec:      mlless.Spec{Data: dataTier},
			Model:     mlless.NewPMF(cfg.Users, cfg.Items, cfg.Rank, ds.RatingMean, 0.02, seed),
			Optimizer: mlless.NewNesterov(mlless.Constant(lr), 0.9),
			Bucket:    "ml", NumBatches: n, BatchSize: batch,
		}, nil
	default:
		return mlless.Job{}, fmt.Errorf("unsupported model/dataset pair %s/%s", modelName, data)
	}
}
