// Command mlless-datagen generates the synthetic datasets and writes
// them to disk — as encoded mini-batch files (the object-store staging
// the driver normally performs) or, with -format shard, as columnar
// shard files produced by the streaming writers, which never hold the
// full dataset in memory.
//
// Usage:
//
//	mlless-datagen -dataset criteo -out ./data/criteo -batch 1250
//	mlless-datagen -dataset ml10m -out ./data/ml10m -batch 625
//	mlless-datagen -dataset criteo -out ./data/criteo -format shard
//
// Shard dumps hold raw (unnormalized) numeric features: min-max
// normalization is a whole-dataset statistic, so it is applied at
// training time, not by the streaming generator.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"mlless/internal/dataset"
	"mlless/internal/netmodel"
	"mlless/internal/objstore"
	"mlless/internal/vclock"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "mlless-datagen:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		name   = flag.String("dataset", "ml10m", "dataset: criteo | ml1m | ml10m | ml20m")
		out    = flag.String("out", "./data", "output directory")
		batch  = flag.Int("batch", 625, "mini-batch size")
		seed   = flag.Uint64("seed", 1, "generator seed")
		format = flag.String("format", "batch", "on-disk format: batch (one encoded object per mini-batch) | shard (streaming columnar shards)")
		bps    = flag.Int("batches-per-shard", 0, "mini-batches per shard file (0 = default; requires -format shard)")
		par    = flag.Int("parallelism", 0, "shard-encoding worker count (0 = GOMAXPROCS; output is byte-identical at any value)")
	)
	flag.Parse()

	switch *format {
	case "batch", "shard":
	default:
		return fmt.Errorf("-format must be batch or shard, got %q", *format)
	}
	if *bps != 0 && *format != "shard" {
		return fmt.Errorf("-batches-per-shard only applies to -format shard")
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		return err
	}
	if *format == "shard" {
		return dumpShards(*name, *out, *batch, *bps, *par, *seed)
	}
	return dumpBatches(*name, *out, *batch, *seed)
}

// dumpShards streams the generator straight to shard files: memory
// stays bounded by parallelism x shard size, independent of -dataset.
func dumpShards(name, out string, batch, bps, par int, seed uint64) error {
	sc := dataset.StreamConfig{BatchSize: batch, BatchesPerShard: bps, Parallelism: par}
	sink := dataset.FileSink{Dir: out}
	var (
		stats dataset.StreamStats
		err   error
	)
	switch name {
	case "criteo":
		cfg := dataset.DefaultCriteoConfig()
		cfg.Seed = seed
		stats, err = dataset.StreamCriteo(cfg, sc, sink)
	case "ml1m":
		stats, err = dataset.StreamMovieLens(dataset.MovieLensConfig{
			Users: 1200, Items: 2400, Ratings: 120_000, Rank: 20,
			NoiseStd: 0.7, SignalStd: 0.8, Seed: seed,
		}, sc, sink)
	case "ml10m":
		cfg := dataset.MovieLens10MScale()
		cfg.Seed = seed
		stats, err = dataset.StreamMovieLens(cfg, sc, sink)
	case "ml20m":
		cfg := dataset.MovieLens20MScale()
		cfg.Seed = seed
		stats, err = dataset.StreamMovieLens(cfg, sc, sink)
	default:
		return fmt.Errorf("unknown dataset %q", name)
	}
	if err != nil {
		return err
	}
	manifest := fmt.Sprintf("dataset=%s\nformat=shard\nsamples=%d\nbatches=%d\nbatch_size=%d\nshards=%d\nseed=%d\n",
		name, stats.Samples, stats.Batches, batch, stats.Shards, seed)
	if err := os.WriteFile(filepath.Join(out, "MANIFEST"), []byte(manifest), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %d shards (%d batches, %d samples, %.1f MB) to %s\n",
		stats.Shards, stats.Batches, stats.Samples, float64(stats.Bytes)/1e6, out)
	return nil
}

func dumpBatches(name, out string, batch int, seed uint64) error {
	var ds *dataset.Dataset
	numeric := 0
	switch name {
	case "criteo":
		cfg := dataset.DefaultCriteoConfig()
		cfg.Seed = seed
		ds = dataset.GenerateCriteo(cfg)
		numeric = cfg.NumericFeatures
	case "ml1m":
		ds = dataset.GenerateMovieLens(dataset.MovieLensConfig{
			Users: 1200, Items: 2400, Ratings: 120_000, Rank: 20,
			NoiseStd: 0.7, SignalStd: 0.8, Seed: seed,
		})
	case "ml10m":
		cfg := dataset.MovieLens10MScale()
		cfg.Seed = seed
		ds = dataset.GenerateMovieLens(cfg)
	case "ml20m":
		cfg := dataset.MovieLens20MScale()
		cfg.Seed = seed
		ds = dataset.GenerateMovieLens(cfg)
	default:
		return fmt.Errorf("unknown dataset %q", name)
	}

	// Stage through an in-memory object store (applying the map-reduce
	// min-max normalization for feature data), then dump to disk.
	store := objstore.New(netmodel.Link{})
	var clk vclock.Clock
	n := dataset.Stage(ds, store, &clk, "dump", batch, seed)
	if numeric > 0 {
		if err := dataset.NormalizeMinMax(store, &clk, "dump", n, numeric); err != nil {
			return err
		}
	}

	total := 0
	for i := 0; i < n; i++ {
		buf, err := store.Get(&clk, "dump", dataset.BatchKey(i))
		if err != nil {
			return err
		}
		path := filepath.Join(out, fmt.Sprintf("batch-%08d.bin", i))
		if err := os.WriteFile(path, buf, 0o644); err != nil {
			return err
		}
		total += len(buf)
	}
	manifest := fmt.Sprintf("dataset=%s\nsamples=%d\nbatches=%d\nbatch_size=%d\nfeature_dim=%d\nusers=%d\nitems=%d\nseed=%d\n",
		name, ds.Len(), n, batch, ds.FeatureDim, ds.NumUsers, ds.NumItems, seed)
	if err := os.WriteFile(filepath.Join(out, "MANIFEST"), []byte(manifest), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %d batches (%d samples, %.1f MB) to %s\n", n, ds.Len(), float64(total)/1e6, out)
	return nil
}
