// Command mlless-bench regenerates the paper's tables and figures on
// the simulated cloud.
//
// Usage:
//
//	mlless-bench -experiment fig4          # one experiment
//	mlless-bench -experiment all -quick    # whole suite, small scale
//	mlless-bench -list
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"mlless/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "mlless-bench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		exp    = flag.String("experiment", "all", "experiment id or 'all' (see -list)")
		quick  = flag.Bool("quick", false, "small-scale configuration")
		list   = flag.Bool("list", false, "list experiment ids and exit")
		csvDir = flag.String("csv", "", "also write each table as CSV into this directory")
		series = flag.Bool("series", false, "with fig6: also print the loss-vs-time series per workload")
		trDir  = flag.String("trace-dir", "", "dump a Chrome trace-event JSON per MLLess run into this directory")
	)
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(experiments.IDs(), "\n"))
		return nil
	}

	opts := experiments.Options{Quick: *quick, TraceDir: *trDir}
	ids := experiments.IDs()
	if *exp != "all" {
		if _, ok := experiments.Lookup(*exp); !ok {
			return fmt.Errorf("unknown experiment %q (try -list)", *exp)
		}
		ids = []string{*exp}
	}
	emit := func(table experiments.Table) error {
		fmt.Print(table)
		if *csvDir == "" {
			return nil
		}
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return err
		}
		path := filepath.Join(*csvDir, table.ID+".csv")
		return os.WriteFile(path, []byte(table.CSV()), 0o644)
	}
	for _, id := range ids {
		runner, _ := experiments.Lookup(id)
		start := time.Now()
		table, err := runner(opts)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		if err := emit(table); err != nil {
			return err
		}
		fmt.Printf("(%s regenerated in %v)\n\n", id, time.Since(start).Round(time.Millisecond))

		if id == "fig6" && *series {
			workloads, _ := experiments.Fig6Workloads(opts)
			for _, wl := range workloads {
				st, err := experiments.Fig6Series(opts, wl, 40)
				if err != nil {
					return fmt.Errorf("fig6 series: %w", err)
				}
				st.ID = "fig6-series-" + wl.Name
				if err := emit(st); err != nil {
					return err
				}
				fmt.Println()
			}
		}
	}
	return nil
}
