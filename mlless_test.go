package mlless

import (
	"testing"
)

// stageSmallPMF builds a small PMF job through the public API only.
func stageSmallPMF(t *testing.T, workers int) (*Cluster, Job) {
	t.Helper()
	cfg := MovieLensConfig{Users: 150, Items: 600, Ratings: 20_000, Rank: 8, NoiseStd: 0.6, SignalStd: 0.8, Seed: 9}
	ds := GenerateMovieLens(cfg)
	cluster := NewCluster()
	n := StageDataset(cluster, ds, "ml", 400, 9)
	return cluster, Job{
		Spec:       Spec{Workers: workers, MaxSteps: 60},
		Model:      NewPMF(cfg.Users, cfg.Items, cfg.Rank, ds.RatingMean, 0.02, 9),
		Optimizer:  NewNesterov(Constant(4), 0.9),
		Bucket:     "ml",
		NumBatches: n,
		BatchSize:  400,
	}
}

// TestPublicAPITrain exercises the facade end to end.
func TestPublicAPITrain(t *testing.T) {
	cluster, job := stageSmallPMF(t, 4)
	job.Spec.Sync = ISP
	job.Spec.Significance = 0.7
	res, err := Train(cluster, job)
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps != 60 || len(res.History) != 60 {
		t.Fatalf("steps = %d", res.Steps)
	}
	if res.History[len(res.History)-1].Loss >= res.History[0].Loss {
		t.Fatal("loss did not decrease")
	}
	if res.Cost.Total <= 0 {
		t.Fatal("no cost accrued")
	}
}

// TestPublicAPIBaselines runs both baselines through the facade and
// re-checks the §6.1 sanity parity at the public surface.
func TestPublicAPIBaselines(t *testing.T) {
	clusterA, jobA := stageSmallPMF(t, 1)
	mllessRes, err := Train(clusterA, jobA)
	if err != nil {
		t.Fatal(err)
	}
	clusterB, jobB := stageSmallPMF(t, 1)
	ptRes, err := TrainServerful(clusterB, jobB, DefaultServerfulConfig())
	if err != nil {
		t.Fatal(err)
	}
	clusterC, jobC := stageSmallPMF(t, 1)
	pwRes, err := TrainPyWren(clusterC, jobC, DefaultPyWrenConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := range mllessRes.History {
		if mllessRes.History[i].RawLoss != ptRes.History[i].RawLoss ||
			mllessRes.History[i].RawLoss != pwRes.History[i].RawLoss {
			t.Fatalf("sanity parity broken at step %d", i+1)
		}
	}
}

// TestPublicAPILogReg covers the LR + normalization path.
func TestPublicAPILogReg(t *testing.T) {
	cfg := DefaultCriteoConfig()
	cfg.Samples = 3000
	cfg.HashDim = 2000
	ds := GenerateCriteo(cfg)
	cluster := NewCluster()
	n := StageDataset(cluster, ds, "criteo", 250, 1)
	if err := NormalizeDataset(cluster, "criteo", n, cfg.NumericFeatures); err != nil {
		t.Fatal(err)
	}
	job := Job{
		Spec:       Spec{Workers: 4, MaxSteps: 80},
		Model:      NewLogReg(ds.FeatureDim, 1e-4),
		Optimizer:  NewAdam(Constant(0.02)),
		Bucket:     "criteo",
		NumBatches: n,
		BatchSize:  250,
	}
	res, err := Train(cluster, job)
	if err != nil {
		t.Fatal(err)
	}
	if res.History[len(res.History)-1].Loss >= res.History[0].Loss {
		t.Fatal("BCE did not decrease")
	}
}

// TestOptimizerConstructors pins the exported constructors.
func TestOptimizerConstructors(t *testing.T) {
	for _, o := range []Optimizer{
		NewSGD(Constant(0.1)),
		NewMomentum(InvSqrt(0.1), 0.9),
		NewNesterov(Constant(0.1), 0.9),
		NewAdam(Constant(0.1)),
	} {
		if o.Name() == "" {
			t.Fatal("unnamed optimizer")
		}
	}
}
