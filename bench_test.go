package mlless

// Benchmarks regenerating every table and figure of the paper's
// evaluation (§6) via the experiment harness. Each benchmark runs its
// experiment in quick mode (small datasets, reduced sweeps); the full
// configurations are regenerated with `go run mlless/cmd/mlless-bench`.

import (
	"testing"

	"mlless/internal/experiments"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	runner, ok := experiments.Lookup(id)
	if !ok {
		b.Fatalf("experiment %q not registered", id)
	}
	for i := 0; i < b.N; i++ {
		table, err := runner(experiments.Options{Quick: true, ArtifactDir: b.TempDir()})
		if err != nil {
			b.Fatal(err)
		}
		if len(table.Rows) == 0 {
			b.Fatalf("%s produced no rows", id)
		}
	}
}

// BenchmarkFig2a regenerates Fig 2a: training speed vs worker count.
func BenchmarkFig2a(b *testing.B) { benchExperiment(b, "fig2a") }

// BenchmarkFig2b regenerates Fig 2b: the reference-curve fit.
func BenchmarkFig2b(b *testing.B) { benchExperiment(b, "fig2b") }

// BenchmarkFig2c regenerates Fig 2c: prediction error 50-200 steps ahead.
func BenchmarkFig2c(b *testing.B) { benchExperiment(b, "fig2c") }

// BenchmarkFig2d regenerates Fig 2d: prediction error vs fitting points.
func BenchmarkFig2d(b *testing.B) { benchExperiment(b, "fig2d") }

// BenchmarkFig3 regenerates Fig 3: intra-function thread speedup.
func BenchmarkFig3(b *testing.B) { benchExperiment(b, "fig3") }

// BenchmarkTable1 regenerates Table 1: models, datasets and settings.
func BenchmarkTable1(b *testing.B) { benchExperiment(b, "table1") }

// BenchmarkTable2 regenerates Table 2: the pricing model.
func BenchmarkTable2(b *testing.B) { benchExperiment(b, "table2") }

// BenchmarkFig4 regenerates Fig 4: time-to-convergence vs significance
// threshold.
func BenchmarkFig4(b *testing.B) { benchExperiment(b, "fig4") }

// BenchmarkFig5 regenerates Fig 5: the scale-in auto-tuner's Perf/$.
func BenchmarkFig5(b *testing.B) { benchExperiment(b, "fig5") }

// BenchmarkTable3 regenerates Table 3: constant-global-batch scaling.
func BenchmarkTable3(b *testing.B) { benchExperiment(b, "table3") }

// BenchmarkFig6 regenerates Fig 6: loss vs time across systems.
func BenchmarkFig6(b *testing.B) { benchExperiment(b, "fig6") }

// BenchmarkFig7 regenerates Fig 7: loss under fixed budgets.
func BenchmarkFig7(b *testing.B) { benchExperiment(b, "fig7") }

// Ablation benches: design choices DESIGN.md calls out, beyond the
// paper's own figures.

// BenchmarkAblFilter compares significance-filter designs.
func BenchmarkAblFilter(b *testing.B) { benchExperiment(b, "abl-filter") }

// BenchmarkAblKnee compares knee detectors in the auto-tuner.
func BenchmarkAblKnee(b *testing.B) { benchExperiment(b, "abl-knee") }

// BenchmarkAblMerge toggles the eviction replica merge.
func BenchmarkAblMerge(b *testing.B) { benchExperiment(b, "abl-merge") }

// BenchmarkAblAllReduce compares ring vs naive all-reduce timing.
func BenchmarkAblAllReduce(b *testing.B) { benchExperiment(b, "abl-allreduce") }

// BenchmarkAblStartup re-adds the startup times the paper excludes.
func BenchmarkAblStartup(b *testing.B) { benchExperiment(b, "abl-startup") }

// BenchmarkAblSSP sweeps the SSP staleness bound.
func BenchmarkAblSSP(b *testing.B) { benchExperiment(b, "abl-ssp") }

// BenchmarkAblAsync compares the barrier-free async schedule to BSP/ISP.
func BenchmarkAblAsync(b *testing.B) { benchExperiment(b, "abl-async") }

// BenchmarkAblTenancy runs the multi-tenant control plane trace.
func BenchmarkAblTenancy(b *testing.B) { benchExperiment(b, "abl-tenancy") }

// BenchmarkAblDataset compares the batch and shard dataset tiers and
// measures streaming shard generation (ISSUE 8).
func BenchmarkAblDataset(b *testing.B) { benchExperiment(b, "abl-dataset") }

// BenchmarkTrainQuickPMF measures one end-to-end MLLess training run
// (PMF, ISP, 4 workers) — the library's core path.
func BenchmarkTrainQuickPMF(b *testing.B) {
	cfg := MovieLensConfig{Users: 200, Items: 800, Ratings: 30_000, Rank: 8, NoiseStd: 0.6, SignalStd: 0.8, Seed: 3}
	ds := GenerateMovieLens(cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cluster := NewCluster()
		n := StageDataset(cluster, ds, "ml", 500, 3)
		job := Job{
			Spec:       Spec{Workers: 4, Sync: ISP, Significance: 0.7, MaxSteps: 50},
			Model:      NewPMF(cfg.Users, cfg.Items, cfg.Rank, ds.RatingMean, 0.02, 3),
			Optimizer:  NewNesterov(Constant(20), 0.9),
			Bucket:     "ml",
			NumBatches: n,
			BatchSize:  500,
		}
		if _, err := Train(cluster, job); err != nil {
			b.Fatal(err)
		}
	}
}
