// Package mlless is a from-scratch Go reproduction of MLLess, the
// FaaS-based machine-learning training system of Sánchez-Artigas and
// Gimeno Sarroca, "Experience Paper: Towards Enhancing Cost Efficiency
// in Serverless Machine Learning Training" (Middleware '21).
//
// The package trains real models (sparse logistic regression, matrix
// factorization) with real SGD mathematics over a simulated serverless
// cloud: a FaaS platform with cold starts, memory-proportional CPU and
// per-GB-second billing; a Redis-like key-value store carrying model
// updates; a broker carrying control messages; and an object store
// holding mini-batches. Wall-clock time and dollar costs are produced by
// a calibrated analytical model driven by the real byte counts and
// floating-point work of the algorithms.
//
// The paper's two optimizations are implemented faithfully:
//
//   - the ISP significance filter (§4.1), which withholds per-parameter
//     updates until their accumulated relative magnitude exceeds the
//     decaying threshold v/√t;
//   - the scale-in auto-tuner (§4.2), which detects the knee of the loss
//     curve, fits the paper's learning-curve families, and evicts workers
//     whose marginal contribution no longer justifies their cost.
//
// Quickstart:
//
//	cluster := mlless.NewCluster()
//	ds := mlless.GenerateCriteo(mlless.DefaultCriteoConfig())
//	n := mlless.StageDataset(cluster, ds, "train", 1250, 1)
//	job := mlless.Job{
//		Spec:       mlless.Spec{Workers: 12, Sync: mlless.ISP, Significance: 0.7, TargetLoss: 0.58},
//		Model:      mlless.NewLogReg(ds.FeatureDim, 1e-4),
//		Optimizer:  mlless.NewAdam(mlless.Constant(0.01)),
//		Bucket:     "train",
//		NumBatches: n,
//		BatchSize:  1250,
//	}
//	result, err := mlless.Train(cluster, job)
//
// See DESIGN.md for the architecture and EXPERIMENTS.md for the
// paper-vs-measured record of every reproduced table and figure.
package mlless

import (
	"io"

	"mlless/internal/baseline/pywren"
	"mlless/internal/baseline/serverful"
	"mlless/internal/consistency"
	"mlless/internal/core"
	"mlless/internal/cost"
	"mlless/internal/dataset"
	"mlless/internal/exchange"
	"mlless/internal/faults"
	"mlless/internal/model"
	"mlless/internal/optimizer"
	"mlless/internal/sched"
	"mlless/internal/sparse"
	"mlless/internal/trace"
	"mlless/internal/vclock"
)

// Core types.
type (
	// Cluster bundles the simulated cloud services one or more jobs run
	// against.
	Cluster = core.Cluster
	// Job couples a Spec with a model, optimizer and staged dataset.
	Job = core.Job
	// Spec is the tunable configuration of a training job.
	Spec = core.Spec
	// Result is the outcome of a training run: convergence, virtual
	// time, loss history, evictions and the itemized bill.
	Result = core.Result
	// LossPoint is one step of the training trace.
	LossPoint = core.LossPoint
	// Removal records one auto-tuner eviction.
	Removal = core.Removal
	// ComputeModel converts floating-point work to virtual time.
	ComputeModel = core.ComputeModel
	// SchedulerConfig tunes the scale-in auto-tuner (§4.2). The zero
	// value selects the paper's settings (epoch 20 s, Δ 10 s).
	SchedulerConfig = sched.Config
	// CostReport is an itemized bill.
	CostReport = cost.Report
	// CostComponent is one billed element.
	CostComponent = cost.Component
	// FaultSpec configures seeded fault injection for a job (set it on
	// Spec.Faults): transient invocation failures, cold-start
	// stragglers, mid-run container reclamation and KV/broker fault
	// delays. The zero value disables every fault; a fixed seed makes
	// runs bit-identical.
	FaultSpec = faults.Spec
	// FaultMetrics counts the faults injected into a run.
	FaultMetrics = faults.Metrics
	// Recovery aggregates the fault-recovery work a run performed.
	Recovery = core.Recovery
	// StepPhase is one step's time decomposition from a traced run.
	StepPhase = core.StepPhase
)

// Observability types (see internal/trace and DESIGN.md §7).
type (
	// Tracer records a deterministic virtual-time trace of a run. Set
	// one on Job.Trace (NewTracer) to enable tracing; nil disables it at
	// zero cost.
	Tracer = trace.Tracer
	// MetricsRegistry is the unified counter namespace of a cluster
	// (Cluster.Metrics): every substrate's counters under dotted names.
	MetricsRegistry = trace.Registry
	// TraceEvent is one recorded span or instant.
	TraceEvent = trace.Event
)

// NewTracer returns an empty, enabled tracer for Job.Trace.
func NewTracer() *Tracer { return trace.New() }

// WriteChromeTrace renders a recorded trace in the Chrome trace-event
// JSON format (loadable at https://ui.perfetto.dev). The output is
// byte-identical across runs with equal seeds.
func WriteChromeTrace(w io.Writer, tr *Tracer) error {
	return trace.WriteChrome(w, tr.Events())
}

// WriteStepTimeline renders a recorded trace as a per-step table of the
// engine-phase time decomposition (§5's t_step breakdown).
func WriteStepTimeline(w io.Writer, tr *Tracer) error {
	return trace.WriteTimeline(w, tr.Events())
}

// ML types.
type (
	// Model is a trainable ML model over a flat parameter vector;
	// implement it to train custom models on MLLess.
	Model = model.Model
	// Optimizer turns mini-batch gradients into parameter updates.
	Optimizer = optimizer.Optimizer
	// Schedule is a learning-rate schedule.
	Schedule = optimizer.Schedule
	// Constant is a fixed learning rate.
	Constant = optimizer.Constant
	// InvSqrt decays the rate as η/√t (Theorem 1's schedule).
	InvSqrt = optimizer.InvSqrt
	// StepDecay multiplies the rate by Factor every Every steps.
	StepDecay = optimizer.StepDecay
	// Warmup linearly ramps the rate before delegating to a schedule.
	Warmup = optimizer.Warmup
	// Vector is a sparse float64 vector (gradients, updates).
	Vector = sparse.Vector
	// Dense is a dense float64 vector (model parameters).
	Dense = sparse.Dense
)

// Data types.
type (
	// Dataset is an in-memory training dataset.
	Dataset = dataset.Dataset
	// Sample is one training example.
	Sample = dataset.Sample
	// CriteoConfig parameterizes the synthetic Criteo-like generator.
	CriteoConfig = dataset.CriteoConfig
	// MovieLensConfig parameterizes the synthetic MovieLens-like
	// generator.
	MovieLensConfig = dataset.MovieLensConfig
)

// Baseline types.
type (
	// ServerfulConfig parameterizes the PyTorch-like IaaS baseline.
	ServerfulConfig = serverful.Config
	// PyWrenConfig parameterizes the PyWren-IBM-like baseline.
	PyWrenConfig = pywren.Config
)

// SyncMode selects the synchronization model.
type SyncMode = consistency.Mode

// FilterVariant selects the significance-filter design (ablations).
type FilterVariant = consistency.Variant

// Significance-filter designs; FilterAccumulate is the paper's (§4.1).
const (
	FilterAccumulate = consistency.Accumulate
	FilterDrop       = consistency.Drop
	FilterNoDecay    = consistency.NoDecay
)

// Synchronization models (§3.1, §4.1; async from the journal version).
const (
	// BSP is Bulk Synchronous Parallel: every update propagates every
	// step.
	BSP = consistency.BSP
	// ISP is Insignificance-bounded Synchronous Parallel: only
	// significant accumulated updates propagate.
	ISP = consistency.ISP
	// Async removes the global barrier: workers free-run on their own
	// clocks under a bounded staleness cap (Spec.Staleness), pulling
	// peer updates as they are announced. Composes with the ISP filter.
	Async = consistency.Async
)

// Gradient-exchange strategies (Spec.Exchange). They move the same
// per-step updates but through different storage patterns, trading
// request fees against transfer serialization (see DESIGN.md §12).
const (
	// ExchangeParamServer is the paper's indirect path: each worker
	// parks its update in the KV tier and every peer reads all P-1 of
	// them. The default; reproduces the seed traces byte-for-byte.
	ExchangeParamServer = exchange.KindParamServer
	// ExchangeScatter is scatter-reduce over the object store: each
	// worker reduces one chunk of the coordinate space and republishes
	// the reduced chunk.
	ExchangeScatter = exchange.KindScatter
	// ExchangeTree is hierarchical tree-reduce over the object store
	// with configurable fan-out (Spec.TreeFanout).
	ExchangeTree = exchange.KindTree
)

// ValidateExchange reports whether kind names a known exchange strategy
// and fanout is a usable tree fan-out for it (0 means the default).
func ValidateExchange(kind string, fanout int) error {
	return exchange.Validate(kind, fanout)
}

// NewCluster builds a simulated deployment with the paper's link
// parameters and FaaS limits.
func NewCluster() *Cluster { return core.NewCluster() }

// NewClusterWithShards builds a deployment whose KV exchange tier is
// hash-partitioned over the given number of shards; batched exchange
// reads fan out per shard over concurrent connections and each shard
// bills its own Redis VM. One shard reproduces NewCluster exactly.
func NewClusterWithShards(shards int) *Cluster { return core.NewClusterWithShards(shards) }

// Train runs a job on the cluster with the MLLess engine.
func Train(cl *Cluster, job Job) (*Result, error) { return core.Run(cl, job) }

// TrainServerful runs the job on the PyTorch-like VM baseline (§6.1).
func TrainServerful(cl *Cluster, job Job, cfg ServerfulConfig) (*Result, error) {
	return serverful.Train(cl.COS, job, cfg)
}

// DefaultServerfulConfig returns the calibrated IaaS baseline settings.
func DefaultServerfulConfig() ServerfulConfig { return serverful.DefaultConfig() }

// TrainPyWren runs the job on the PyWren-IBM-like map-reduce baseline.
func TrainPyWren(cl *Cluster, job Job, cfg PyWrenConfig) (*Result, error) {
	return pywren.Train(cl.Platform, cl.COS, job, cfg)
}

// DefaultPyWrenConfig returns the calibrated map-reduce baseline
// settings.
func DefaultPyWrenConfig() PyWrenConfig { return pywren.DefaultConfig() }

// Models.

// NewLogReg builds sparse binary logistic regression over dim input
// features with active-coordinate L2 strength l2.
func NewLogReg(dim int, l2 float64) Model { return model.NewLogReg(dim, l2) }

// NewPMF builds probabilistic matrix factorization of a users×items
// rating matrix at the given rank, with global mean, factor L2 and a
// deterministic init seed.
func NewPMF(users, items, rank int, mean, l2 float64, seed uint64) Model {
	return model.NewPMF(users, items, rank, mean, l2, seed)
}

// NewSVM builds a sparse linear SVM (hinge loss) over dim features with
// active-coordinate L2 strength l2.
func NewSVM(dim int, l2 float64) Model { return model.NewSVM(dim, l2) }

// Optimizers (§5: "the models and optimizers (SGD, SGD with momentum,
// ADAM, etc.)").

// NewSGD returns plain SGD.
func NewSGD(lr Schedule) Optimizer { return optimizer.NewSGD(lr) }

// NewMomentum returns SGD with heavy-ball momentum μ.
func NewMomentum(lr Schedule, mu float64) Optimizer { return optimizer.NewMomentum(lr, mu) }

// NewNesterov returns SGD with Nesterov momentum μ (Table 1's PMF
// optimizer).
func NewNesterov(lr Schedule, mu float64) Optimizer { return optimizer.NewNesterov(lr, mu) }

// NewAdam returns Adam with canonical hyperparameters (Table 1's LR
// optimizer).
func NewAdam(lr Schedule) Optimizer { return optimizer.NewAdamDefaults(lr) }

// Datasets.

// DefaultCriteoConfig returns the Criteo-shaped generator settings.
func DefaultCriteoConfig() CriteoConfig { return dataset.DefaultCriteoConfig() }

// MovieLens10MScale returns the MovieLens-10M-shaped generator settings.
func MovieLens10MScale() MovieLensConfig { return dataset.MovieLens10MScale() }

// MovieLens20MScale returns the MovieLens-20M-shaped generator settings.
func MovieLens20MScale() MovieLensConfig { return dataset.MovieLens20MScale() }

// GenerateCriteo produces a synthetic click-prediction dataset with the
// Criteo shape (13 numeric + 26 hashed categorical features).
func GenerateCriteo(cfg CriteoConfig) *Dataset {
	ds := dataset.GenerateCriteo(cfg)
	return ds
}

// GenerateMovieLens produces a synthetic ratings dataset with
// MovieLens-like statistics.
func GenerateMovieLens(cfg MovieLensConfig) *Dataset {
	return dataset.GenerateMovieLens(cfg)
}

// StageDataset shuffles ds deterministically into mini-batches of size
// batchSize and uploads them to the cluster's object store under bucket,
// returning the staged batch count. For Criteo-shaped data, run
// NormalizeDataset first.
func StageDataset(cl *Cluster, ds *Dataset, bucket string, batchSize int, seed uint64) int {
	var clk vclock.Clock
	return dataset.Stage(ds, cl.COS, &clk, bucket, batchSize, seed)
}

// NormalizeDataset min-max scales the numeric features of staged
// mini-batches via the two-pass map-reduce of §3.2.
func NormalizeDataset(cl *Cluster, bucket string, numBatches, numericFeatures int) error {
	var clk vclock.Clock
	return dataset.NormalizeMinMax(cl.COS, &clk, bucket, numBatches, numericFeatures)
}

// Streaming columnar dataset tier (see internal/shard and DESIGN.md
// §13). Jobs opt in with Spec.Data = DataShard; the default DataBatch
// keeps the row-encoded tier and its byte-identical traces.
const (
	// DataBatch selects the row-encoded mini-batch tier (default).
	DataBatch = core.DataBatch
	// DataShard selects the zero-copy columnar shard tier.
	DataShard = core.DataShard
)

// StageDatasetShards stages ds on the columnar shard tier: the same
// deterministic shuffle as StageDataset, packed batchesPerShard batches
// per shard blob (0 selects the default of 8) plus a manifest. Jobs
// over the bucket must set Spec.Data = DataShard. For Criteo-shaped
// data, run NormalizeInMemory before staging; the two tiers then train
// bit-identically.
func StageDatasetShards(cl *Cluster, ds *Dataset, bucket string, batchSize, batchesPerShard int, seed uint64) int {
	var clk vclock.Clock
	return dataset.StageShards(ds, cl.COS, &clk, bucket, batchSize, batchesPerShard, seed)
}

// NormalizeInMemory min-max scales the numeric features of an
// in-memory dataset — the pre-staging counterpart of NormalizeDataset,
// producing bit-identical samples.
func NormalizeInMemory(ds *Dataset, numericFeatures int) {
	dataset.NormalizeInPlace(ds, numericFeatures)
}
