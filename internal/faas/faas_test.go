package faas

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"mlless/internal/cost"
	"mlless/internal/faults"
)

func TestInvokeColdThenWarm(t *testing.T) {
	p := NewPlatform(DefaultConfig())
	inst, err := p.Invoke("w0", 2048, 0)
	if err != nil {
		t.Fatal(err)
	}
	if inst.Clock.Now() != DefaultConfig().ColdStart {
		t.Fatalf("first invocation start latency %v", inst.Clock.Now())
	}
	if err := p.Terminate(inst); err != nil {
		t.Fatal(err)
	}
	warm, err := p.Invoke("w1", 2048, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if got := warm.Clock.Now(); got != time.Second+DefaultConfig().WarmStart {
		t.Fatalf("warm invocation clock %v", got)
	}
	reg := p.Registry()
	if cold, warmN, inv := reg.Counter("faas.cold_starts").Load(), reg.Counter("faas.warm_starts").Load(), reg.Counter("faas.invocations").Load(); cold != 1 || warmN != 1 || inv != 2 {
		t.Fatalf("cold=%d warm=%d invocations=%d", cold, warmN, inv)
	}
}

func TestMemoryLimit(t *testing.T) {
	p := NewPlatform(DefaultConfig())
	if _, err := p.Invoke("big", 4096, 0); !errors.Is(err, ErrTooMuchMemory) {
		t.Fatalf("err = %v", err)
	}
	if _, err := p.Invoke("neg", 0, 0); !errors.Is(err, ErrTooMuchMemory) {
		t.Fatalf("err = %v", err)
	}
}

func TestCPUShare(t *testing.T) {
	p := NewPlatform(DefaultConfig())
	cases := []struct {
		mem  int
		want float64
	}{
		{2048, 1.0},
		{1024, 0.5},
		{512, 0.25},
		{256, 0.125},
	}
	for _, c := range cases {
		inst, err := p.Invoke("w", c.mem, 0)
		if err != nil {
			t.Fatal(err)
		}
		if got := inst.CPUShare(); math.Abs(got-c.want) > 1e-12 {
			t.Fatalf("CPUShare(%d MiB) = %v, want %v", c.mem, got, c.want)
		}
		if inst.Threads() != 1 {
			t.Fatal("FaaS functions must not expose thread parallelism")
		}
	}
}

func TestElapsedAndLimit(t *testing.T) {
	cfg := DefaultConfig()
	p := NewPlatform(cfg)
	inst, _ := p.Invoke("w", 2048, time.Minute)
	base := inst.Elapsed()
	inst.Clock.Advance(5 * time.Minute)
	if inst.Elapsed() != base+5*time.Minute {
		t.Fatalf("Elapsed = %v", inst.Elapsed())
	}
	if err := inst.CheckLimit(cfg); err != nil {
		t.Fatalf("under-limit instance errored: %v", err)
	}
	inst.Clock.Advance(6 * time.Minute)
	if err := inst.CheckLimit(cfg); !errors.Is(err, ErrOverLimit) {
		t.Fatalf("over-limit err = %v", err)
	}
}

func TestTerminateTwice(t *testing.T) {
	p := NewPlatform(DefaultConfig())
	inst, _ := p.Invoke("w", 2048, 0)
	if err := p.Terminate(inst); err != nil {
		t.Fatal(err)
	}
	if err := p.Terminate(inst); !errors.Is(err, ErrTerminated) {
		t.Fatalf("double terminate err = %v", err)
	}
}

func TestRunningCount(t *testing.T) {
	p := NewPlatform(DefaultConfig())
	a, _ := p.Invoke("a", 2048, 0)
	b, _ := p.Invoke("b", 2048, 0)
	if p.Running() != 2 {
		t.Fatalf("Running = %d", p.Running())
	}
	_ = p.Terminate(a)
	if p.Running() != 1 {
		t.Fatalf("Running = %d", p.Running())
	}
	_ = p.Terminate(b)
	if p.Running() != 0 {
		t.Fatalf("Running = %d", p.Running())
	}
}

func TestBilling(t *testing.T) {
	p := NewPlatform(DefaultConfig())
	inst, _ := p.Invoke("worker-0", 2048, 0)
	inst.Clock.Advance(100 * time.Second)
	_ = p.Terminate(inst)

	var m cost.Meter
	p.BillTo(&m)
	billed := inst.Elapsed().Seconds()
	want := cost.PriceFunctionPerGBSecond * 2 * billed
	if math.Abs(m.Total()-want) > 1e-9 {
		t.Fatalf("billed %v, want %v", m.Total(), want)
	}
	if p.BilledFunctionSeconds() != inst.Elapsed() {
		t.Fatalf("BilledFunctionSeconds = %v", p.BilledFunctionSeconds())
	}
}

func TestLiveInstancesNotBilled(t *testing.T) {
	p := NewPlatform(DefaultConfig())
	inst, _ := p.Invoke("w", 2048, 0)
	inst.Clock.Advance(time.Hour)
	var m cost.Meter
	p.BillTo(&m)
	if m.Total() != 0 {
		t.Fatal("live instance was billed")
	}
}

func TestHalfMemoryBilledAtHalfRate(t *testing.T) {
	p := NewPlatform(DefaultConfig())
	full, _ := p.Invoke("full", 2048, 0)
	half, _ := p.Invoke("half", 1024, 0)
	full.Clock.Advance(100 * time.Second)
	half.Clock.Advance(100 * time.Second)
	_ = p.Terminate(full)
	_ = p.Terminate(half)
	var m cost.Meter
	p.BillTo(&m)
	r := m.Report()
	var fullCost, halfCost float64
	for _, c := range r.Components {
		switch c.Name {
		case "full":
			fullCost = c.Dollars
		case "half":
			halfCost = c.Dollars
		}
	}
	if math.Abs(fullCost-2*halfCost) > 1e-9 {
		t.Fatalf("full=%v half=%v", fullCost, halfCost)
	}
}

func TestIDsUnique(t *testing.T) {
	p := NewPlatform(DefaultConfig())
	seen := make(map[int]bool)
	for i := 0; i < 50; i++ {
		inst, err := p.Invoke("w", 2048, 0)
		if err != nil {
			t.Fatal(err)
		}
		if seen[inst.ID] {
			t.Fatalf("duplicate ID %d", inst.ID)
		}
		seen[inst.ID] = true
	}
}

func TestConcurrencyLimit(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxConcurrent = 2
	p := NewPlatform(cfg)
	a, err := p.Invoke("a", 2048, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Invoke("b", 2048, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Invoke("c", 2048, 0); !errors.Is(err, ErrTooManyConcurrent) {
		t.Fatalf("third invocation: err = %v", err)
	}
	// Terminating frees a slot.
	if err := p.Terminate(a); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Invoke("c", 2048, 0); err != nil {
		t.Fatalf("after terminate: %v", err)
	}
}

func TestConcurrencyUnlimitedWhenZero(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxConcurrent = 0
	p := NewPlatform(cfg)
	for i := 0; i < 1200; i++ {
		if _, err := p.Invoke("w", 256, 0); err != nil {
			t.Fatalf("invocation %d: %v", i, err)
		}
	}
}

// --- fault injection ---

func TestInjectedInvocationFailure(t *testing.T) {
	p := NewPlatform(DefaultConfig())
	p.SetFaults(faults.New(faults.Spec{Seed: 1, InvokeFailProb: 1}))
	if _, err := p.Invoke("w", 2048, 0); !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	reg := p.Registry()
	if failed, inv := reg.Counter("faas.failed_invocations").Load(), reg.Counter("faas.invocations").Load(); failed != 1 || inv != 0 {
		t.Fatalf("failed=%d invocations=%d", failed, inv)
	}
}

func TestStragglerStretchesColdStart(t *testing.T) {
	in := faults.New(faults.Spec{Seed: 3, StragglerProb: 1})
	p := NewPlatform(DefaultConfig())
	p.SetFaults(in)
	inst, err := p.Invoke("w", 2048, 0)
	if err != nil {
		t.Fatal(err)
	}
	cold := DefaultConfig().ColdStart
	if got := inst.Clock.Now(); got < cold {
		t.Fatalf("straggler cold start %v below the nominal %v", got, cold)
	}
	if cap := time.Duration(float64(cold) * faults.DefaultStragglerCap); inst.Clock.Now() > cap {
		t.Fatalf("straggler %v beyond the cap %v", inst.Clock.Now(), cap)
	}
	if m := in.Metrics(); m.Stragglers != 1 {
		t.Fatalf("Stragglers = %d, want 1", m.Stragglers)
	}
}

func TestReclaimBillsOnlyToReclaimPoint(t *testing.T) {
	p := NewPlatform(DefaultConfig())
	p.SetFaults(faults.New(faults.Spec{Seed: 4, ReclaimProb: 1, ReclaimMeanLife: 30 * time.Second}))
	inst, err := p.Invoke("w", 2048, 0)
	if err != nil {
		t.Fatal(err)
	}
	if inst.ReclaimAt == 0 {
		t.Fatal("no reclamation scheduled at probability 1")
	}
	// The engine keeps charging past the death before noticing it; that
	// work is void and must not be paid for.
	inst.Clock.AdvanceTo(inst.ReclaimAt + time.Minute)
	var m cost.Meter
	if err := p.Reclaim(inst, &m); err != nil {
		t.Fatal(err)
	}
	rep := m.Report()
	if len(rep.Components) != 1 {
		t.Fatalf("components = %+v", rep.Components)
	}
	lived := inst.ReclaimAt - inst.StartedAt()
	if rep.Components[0].Duration != lived {
		t.Fatalf("billed %v, want %v", rep.Components[0].Duration, lived)
	}
	if n := p.Registry().Counter("faas.reclaimed").Load(); n != 1 {
		t.Fatalf("reclaimed = %d", n)
	}
	// Claimed by Reclaim: BillTo must not meter the run again.
	var again cost.Meter
	p.BillTo(&again)
	if r := again.Report(); r.Total != 0 || len(r.Components) != 0 {
		t.Fatalf("BillTo re-billed a claimed run: %+v", r)
	}
	// A reclaimed container never rejoins the warm pool.
	p.SetFaults(nil)
	next, err := p.Invoke("w2", 2048, inst.ReclaimAt)
	if err != nil {
		t.Fatal(err)
	}
	if got := next.Clock.Now() - inst.ReclaimAt; got != DefaultConfig().ColdStart {
		t.Fatalf("post-reclaim start latency %v, want the cold %v", got, DefaultConfig().ColdStart)
	}
}

func TestNamespaceOf(t *testing.T) {
	cases := []struct{ name, want string }{
		{"job1/worker-3", "job1"},
		{"t2/job7/worker-0-r1", "t2"},
		{"supervisor", "supervisor"},
		{"", ""},
	}
	for _, c := range cases {
		if got := NamespaceOf(c.name); got != c.want {
			t.Errorf("NamespaceOf(%q) = %q, want %q", c.name, got, c.want)
		}
	}
}

func TestQuotaExhaustion(t *testing.T) {
	p := NewPlatform(DefaultConfig())
	p.SetQuota("t1", 2)
	a, err := p.Invoke("t1/job1/worker-0", 256, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Invoke("t1/job1/worker-1", 256, 0); err != nil {
		t.Fatal(err)
	}
	// Third activation in t1 must bounce; other namespaces are untouched.
	if _, err := p.Invoke("t1/job2/worker-0", 256, 0); !errors.Is(err, ErrTooManyConcurrent) {
		t.Fatalf("over-quota invoke err = %v", err)
	}
	if _, err := p.Invoke("t2/job3/worker-0", 256, 0); err != nil {
		t.Fatalf("unrelated namespace rejected: %v", err)
	}
	if got := p.Registry().Counter("faas.quota_rejections").Load(); got != 1 {
		t.Fatalf("quota_rejections = %d, want 1", got)
	}
	// Terminate frees a slot: the namespace admits again.
	if err := p.Terminate(a); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Invoke("t1/job2/worker-0", 256, time.Second); err != nil {
		t.Fatalf("post-terminate invoke: %v", err)
	}
}

func TestQuotaReleasedOnReclaim(t *testing.T) {
	p := NewPlatform(DefaultConfig())
	p.SetQuota("t1", 1)
	inst, err := p.Invoke("t1/job1/worker-0", 256, 0)
	if err != nil {
		t.Fatal(err)
	}
	var m cost.Meter
	if err := p.Reclaim(inst, &m); err != nil {
		t.Fatal(err)
	}
	if got := p.InUse("t1"); got != 0 {
		t.Fatalf("InUse after reclaim = %d, want 0", got)
	}
	if _, err := p.Invoke("t1/job1/worker-0-r1", 256, time.Second); err != nil {
		t.Fatalf("post-reclaim invoke: %v", err)
	}
}

func TestReserveCountsAgainstQuotaAndCap(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxConcurrent = 4
	p := NewPlatform(cfg)
	p.SetQuota("t1", 3)

	if err := p.Reserve("t1", 2); err != nil {
		t.Fatal(err)
	}
	// Quota 3, 2 reserved: one live activation fits, the next does not.
	if _, err := p.Invoke("t1/job1/worker-0", 256, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Invoke("t1/job1/worker-1", 256, 0); !errors.Is(err, ErrTooManyConcurrent) {
		t.Fatalf("err = %v", err)
	}
	// Platform-wide: 1 running + 2 reserved = 3 of 4; a second namespace
	// gets exactly one slot.
	if _, err := p.Invoke("t2/job2/worker-0", 256, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Invoke("t2/job2/worker-1", 256, 0); !errors.Is(err, ErrTooManyConcurrent) {
		t.Fatalf("platform cap err = %v", err)
	}
	// Reservations beyond capacity fail atomically.
	if err := p.Reserve("t2", 1); !errors.Is(err, ErrTooManyConcurrent) {
		t.Fatalf("over-cap reserve err = %v", err)
	}
	if err := p.Release("t1", 2); err != nil {
		t.Fatal(err)
	}
	if got := p.InUse("t1"); got != 1 {
		t.Fatalf("InUse after release = %d, want 1", got)
	}
	if err := p.Release("t1", 5); !errors.Is(err, ErrOverRelease) {
		t.Fatalf("over-release err = %v", err)
	}
	if got, want := p.TotalInUse(), 2; got != want {
		t.Fatalf("TotalInUse = %d, want %d", got, want)
	}
}

func TestQuotaAccountingAcrossTenants(t *testing.T) {
	p := NewPlatform(DefaultConfig())
	p.SetQuota("t1", 2)
	p.SetQuota("t2", 2)
	var insts []*Instance
	for _, name := range []string{"t1/job1/worker-0", "t1/job1/supervisor", "t2/job2/worker-0"} {
		inst, err := p.Invoke(name, 256, 0)
		if err != nil {
			t.Fatal(err)
		}
		insts = append(insts, inst)
	}
	if got := p.InUse("t1"); got != 2 {
		t.Fatalf("t1 in use = %d", got)
	}
	if got := p.InUse("t2"); got != 1 {
		t.Fatalf("t2 in use = %d", got)
	}
	if got := p.Quota("t1"); got != 2 {
		t.Fatalf("Quota(t1) = %d", got)
	}
	for _, inst := range insts {
		if err := p.Terminate(inst); err != nil {
			t.Fatal(err)
		}
	}
	if p.InUse("t1") != 0 || p.InUse("t2") != 0 || p.TotalInUse() != 0 {
		t.Fatalf("capacity not fully released: t1=%d t2=%d total=%d",
			p.InUse("t1"), p.InUse("t2"), p.TotalInUse())
	}
	// SetQuota(ns, 0) removes the cap.
	p.SetQuota("t1", 0)
	for i := 0; i < 5; i++ {
		if _, err := p.Invoke("t1/job9/worker", 256, 0); err != nil {
			t.Fatalf("uncapped invoke %d: %v", i, err)
		}
	}
}

// TestConcurrentAdmitsRace drives concurrent invokes, reservations and
// terminations against a tight quota under -race: the platform must
// never exceed the caps and must end with clean accounting.
func TestConcurrentAdmitsRace(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxConcurrent = 16
	p := NewPlatform(cfg)
	p.SetQuota("t1", 8)
	p.SetQuota("t2", 8)

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		ns := "t1"
		if g%2 == 1 {
			ns = "t2"
		}
		wg.Add(1)
		go func(g int, ns string) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				switch i % 3 {
				case 0, 1:
					inst, err := p.Invoke(fmt.Sprintf("%s/job%d/worker-%d", ns, g, i), 256, 0)
					if err != nil {
						if !errors.Is(err, ErrTooManyConcurrent) {
							t.Errorf("invoke: %v", err)
						}
						continue
					}
					if got := p.InUse(ns); got > 8 {
						t.Errorf("namespace %s over quota: %d", ns, got)
					}
					if err := p.Terminate(inst); err != nil {
						t.Errorf("terminate: %v", err)
					}
				default:
					if err := p.Reserve(ns, 1); err != nil {
						if !errors.Is(err, ErrTooManyConcurrent) {
							t.Errorf("reserve: %v", err)
						}
						continue
					}
					if err := p.Release(ns, 1); err != nil {
						t.Errorf("release: %v", err)
					}
				}
			}
		}(g, ns)
	}
	wg.Wait()
	if p.TotalInUse() != 0 {
		t.Fatalf("TotalInUse = %d after drain", p.TotalInUse())
	}
}
