package faas

import (
	"errors"
	"math"
	"testing"
	"time"

	"mlless/internal/cost"
	"mlless/internal/faults"
)

func TestInvokeColdThenWarm(t *testing.T) {
	p := NewPlatform(DefaultConfig())
	inst, err := p.Invoke("w0", 2048, 0)
	if err != nil {
		t.Fatal(err)
	}
	if inst.Clock.Now() != DefaultConfig().ColdStart {
		t.Fatalf("first invocation start latency %v", inst.Clock.Now())
	}
	if err := p.Terminate(inst); err != nil {
		t.Fatal(err)
	}
	warm, err := p.Invoke("w1", 2048, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if got := warm.Clock.Now(); got != time.Second+DefaultConfig().WarmStart {
		t.Fatalf("warm invocation clock %v", got)
	}
	reg := p.Registry()
	if cold, warmN, inv := reg.Counter("faas.cold_starts").Load(), reg.Counter("faas.warm_starts").Load(), reg.Counter("faas.invocations").Load(); cold != 1 || warmN != 1 || inv != 2 {
		t.Fatalf("cold=%d warm=%d invocations=%d", cold, warmN, inv)
	}
}

func TestMemoryLimit(t *testing.T) {
	p := NewPlatform(DefaultConfig())
	if _, err := p.Invoke("big", 4096, 0); !errors.Is(err, ErrTooMuchMemory) {
		t.Fatalf("err = %v", err)
	}
	if _, err := p.Invoke("neg", 0, 0); !errors.Is(err, ErrTooMuchMemory) {
		t.Fatalf("err = %v", err)
	}
}

func TestCPUShare(t *testing.T) {
	p := NewPlatform(DefaultConfig())
	cases := []struct {
		mem  int
		want float64
	}{
		{2048, 1.0},
		{1024, 0.5},
		{512, 0.25},
		{256, 0.125},
	}
	for _, c := range cases {
		inst, err := p.Invoke("w", c.mem, 0)
		if err != nil {
			t.Fatal(err)
		}
		if got := inst.CPUShare(); math.Abs(got-c.want) > 1e-12 {
			t.Fatalf("CPUShare(%d MiB) = %v, want %v", c.mem, got, c.want)
		}
		if inst.Threads() != 1 {
			t.Fatal("FaaS functions must not expose thread parallelism")
		}
	}
}

func TestElapsedAndLimit(t *testing.T) {
	cfg := DefaultConfig()
	p := NewPlatform(cfg)
	inst, _ := p.Invoke("w", 2048, time.Minute)
	base := inst.Elapsed()
	inst.Clock.Advance(5 * time.Minute)
	if inst.Elapsed() != base+5*time.Minute {
		t.Fatalf("Elapsed = %v", inst.Elapsed())
	}
	if err := inst.CheckLimit(cfg); err != nil {
		t.Fatalf("under-limit instance errored: %v", err)
	}
	inst.Clock.Advance(6 * time.Minute)
	if err := inst.CheckLimit(cfg); !errors.Is(err, ErrOverLimit) {
		t.Fatalf("over-limit err = %v", err)
	}
}

func TestTerminateTwice(t *testing.T) {
	p := NewPlatform(DefaultConfig())
	inst, _ := p.Invoke("w", 2048, 0)
	if err := p.Terminate(inst); err != nil {
		t.Fatal(err)
	}
	if err := p.Terminate(inst); !errors.Is(err, ErrTerminated) {
		t.Fatalf("double terminate err = %v", err)
	}
}

func TestRunningCount(t *testing.T) {
	p := NewPlatform(DefaultConfig())
	a, _ := p.Invoke("a", 2048, 0)
	b, _ := p.Invoke("b", 2048, 0)
	if p.Running() != 2 {
		t.Fatalf("Running = %d", p.Running())
	}
	_ = p.Terminate(a)
	if p.Running() != 1 {
		t.Fatalf("Running = %d", p.Running())
	}
	_ = p.Terminate(b)
	if p.Running() != 0 {
		t.Fatalf("Running = %d", p.Running())
	}
}

func TestBilling(t *testing.T) {
	p := NewPlatform(DefaultConfig())
	inst, _ := p.Invoke("worker-0", 2048, 0)
	inst.Clock.Advance(100 * time.Second)
	_ = p.Terminate(inst)

	var m cost.Meter
	p.BillTo(&m)
	billed := inst.Elapsed().Seconds()
	want := cost.PriceFunctionPerGBSecond * 2 * billed
	if math.Abs(m.Total()-want) > 1e-9 {
		t.Fatalf("billed %v, want %v", m.Total(), want)
	}
	if p.BilledFunctionSeconds() != inst.Elapsed() {
		t.Fatalf("BilledFunctionSeconds = %v", p.BilledFunctionSeconds())
	}
}

func TestLiveInstancesNotBilled(t *testing.T) {
	p := NewPlatform(DefaultConfig())
	inst, _ := p.Invoke("w", 2048, 0)
	inst.Clock.Advance(time.Hour)
	var m cost.Meter
	p.BillTo(&m)
	if m.Total() != 0 {
		t.Fatal("live instance was billed")
	}
}

func TestHalfMemoryBilledAtHalfRate(t *testing.T) {
	p := NewPlatform(DefaultConfig())
	full, _ := p.Invoke("full", 2048, 0)
	half, _ := p.Invoke("half", 1024, 0)
	full.Clock.Advance(100 * time.Second)
	half.Clock.Advance(100 * time.Second)
	_ = p.Terminate(full)
	_ = p.Terminate(half)
	var m cost.Meter
	p.BillTo(&m)
	r := m.Report()
	var fullCost, halfCost float64
	for _, c := range r.Components {
		switch c.Name {
		case "full":
			fullCost = c.Dollars
		case "half":
			halfCost = c.Dollars
		}
	}
	if math.Abs(fullCost-2*halfCost) > 1e-9 {
		t.Fatalf("full=%v half=%v", fullCost, halfCost)
	}
}

func TestIDsUnique(t *testing.T) {
	p := NewPlatform(DefaultConfig())
	seen := make(map[int]bool)
	for i := 0; i < 50; i++ {
		inst, err := p.Invoke("w", 2048, 0)
		if err != nil {
			t.Fatal(err)
		}
		if seen[inst.ID] {
			t.Fatalf("duplicate ID %d", inst.ID)
		}
		seen[inst.ID] = true
	}
}

func TestConcurrencyLimit(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxConcurrent = 2
	p := NewPlatform(cfg)
	a, err := p.Invoke("a", 2048, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Invoke("b", 2048, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Invoke("c", 2048, 0); !errors.Is(err, ErrTooManyConcurrent) {
		t.Fatalf("third invocation: err = %v", err)
	}
	// Terminating frees a slot.
	if err := p.Terminate(a); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Invoke("c", 2048, 0); err != nil {
		t.Fatalf("after terminate: %v", err)
	}
}

func TestConcurrencyUnlimitedWhenZero(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxConcurrent = 0
	p := NewPlatform(cfg)
	for i := 0; i < 1200; i++ {
		if _, err := p.Invoke("w", 256, 0); err != nil {
			t.Fatalf("invocation %d: %v", i, err)
		}
	}
}

// --- fault injection ---

func TestInjectedInvocationFailure(t *testing.T) {
	p := NewPlatform(DefaultConfig())
	p.SetFaults(faults.New(faults.Spec{Seed: 1, InvokeFailProb: 1}))
	if _, err := p.Invoke("w", 2048, 0); !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	reg := p.Registry()
	if failed, inv := reg.Counter("faas.failed_invocations").Load(), reg.Counter("faas.invocations").Load(); failed != 1 || inv != 0 {
		t.Fatalf("failed=%d invocations=%d", failed, inv)
	}
}

func TestStragglerStretchesColdStart(t *testing.T) {
	in := faults.New(faults.Spec{Seed: 3, StragglerProb: 1})
	p := NewPlatform(DefaultConfig())
	p.SetFaults(in)
	inst, err := p.Invoke("w", 2048, 0)
	if err != nil {
		t.Fatal(err)
	}
	cold := DefaultConfig().ColdStart
	if got := inst.Clock.Now(); got < cold {
		t.Fatalf("straggler cold start %v below the nominal %v", got, cold)
	}
	if cap := time.Duration(float64(cold) * faults.DefaultStragglerCap); inst.Clock.Now() > cap {
		t.Fatalf("straggler %v beyond the cap %v", inst.Clock.Now(), cap)
	}
	if m := in.Metrics(); m.Stragglers != 1 {
		t.Fatalf("Stragglers = %d, want 1", m.Stragglers)
	}
}

func TestReclaimBillsOnlyToReclaimPoint(t *testing.T) {
	p := NewPlatform(DefaultConfig())
	p.SetFaults(faults.New(faults.Spec{Seed: 4, ReclaimProb: 1, ReclaimMeanLife: 30 * time.Second}))
	inst, err := p.Invoke("w", 2048, 0)
	if err != nil {
		t.Fatal(err)
	}
	if inst.ReclaimAt == 0 {
		t.Fatal("no reclamation scheduled at probability 1")
	}
	// The engine keeps charging past the death before noticing it; that
	// work is void and must not be paid for.
	inst.Clock.AdvanceTo(inst.ReclaimAt + time.Minute)
	var m cost.Meter
	if err := p.Reclaim(inst, &m); err != nil {
		t.Fatal(err)
	}
	rep := m.Report()
	if len(rep.Components) != 1 {
		t.Fatalf("components = %+v", rep.Components)
	}
	lived := inst.ReclaimAt - inst.StartedAt()
	if rep.Components[0].Duration != lived {
		t.Fatalf("billed %v, want %v", rep.Components[0].Duration, lived)
	}
	if n := p.Registry().Counter("faas.reclaimed").Load(); n != 1 {
		t.Fatalf("reclaimed = %d", n)
	}
	// Claimed by Reclaim: BillTo must not meter the run again.
	var again cost.Meter
	p.BillTo(&again)
	if r := again.Report(); r.Total != 0 || len(r.Components) != 0 {
		t.Fatalf("BillTo re-billed a claimed run: %+v", r)
	}
	// A reclaimed container never rejoins the warm pool.
	p.SetFaults(nil)
	next, err := p.Invoke("w2", 2048, inst.ReclaimAt)
	if err != nil {
		t.Fatal(err)
	}
	if got := next.Clock.Now() - inst.ReclaimAt; got != DefaultConfig().ColdStart {
		t.Fatalf("post-reclaim start latency %v, want the cold %v", got, DefaultConfig().ColdStart)
	}
}
