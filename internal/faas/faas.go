// Package faas simulates the Function-as-a-Service platform (IBM Cloud
// Functions in the paper) on which MLLess workers and the supervisor run.
// It enforces the FaaS constraints that shape the whole system design
// (§2):
//
//   - functions are stateless and cannot communicate directly — the
//     package intentionally offers no function-to-function channel;
//   - at most 2 GB of memory per function and a hard 10-minute execution
//     limit;
//   - CPU is allocated proportionally to memory, topping out at one vCPU
//     at 2 GB — there is no intra-worker thread parallelism (§5, Fig 3);
//   - invocations pay a cold-start penalty unless a warm container is
//     available;
//   - billing is pay-per-use, per GB-second of execution.
//
// Each Instance carries its own virtual clock; the training engine
// charges compute and I/O time to it and reconciles clocks at BSP
// barriers.
package faas

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"mlless/internal/cost"
	"mlless/internal/faults"
	"mlless/internal/trace"
	"mlless/internal/vclock"
)

// Platform-wide limits, matching IBM Cloud Functions.
const (
	// MaxMemoryMiB is the largest function size the platform allows.
	MaxMemoryMiB = 2048
	// fullCPUMemoryMiB is the memory size at which a function gets one
	// full vCPU.
	fullCPUMemoryMiB = 2048
)

// ErrOverLimit reports that a function exceeded the maximum execution
// duration. The engine checkpoints and re-launches workers that come
// near the limit (§3.1); a single step too long to fit the remaining
// budget cannot be split, so the engine surfaces this error instead of
// silently overrunning.
var ErrOverLimit = errors.New("faas: function exceeded maximum execution duration")

// ErrTooMuchMemory reports an invocation requesting more memory than the
// platform allows.
var ErrTooMuchMemory = errors.New("faas: requested memory exceeds platform maximum")

// ErrTerminated reports an operation on an already-terminated instance.
var ErrTerminated = errors.New("faas: instance already terminated")

// ErrTooManyConcurrent reports that a concurrent activation limit —
// the platform-wide MaxConcurrent cap or a per-namespace quota — is
// exhausted. The training engine treats it as retryable with backoff
// (under shared quotas it is a steady-state event, not a failure).
var ErrTooManyConcurrent = errors.New("faas: concurrent activation limit reached")

// ErrOverRelease reports a Release of more reserved slots than the
// namespace holds — a control-plane accounting bug.
var ErrOverRelease = errors.New("faas: released more slots than reserved")

// Config parameterizes the platform.
type Config struct {
	// ColdStart is the invocation latency with no warm container.
	ColdStart time.Duration
	// WarmStart is the invocation latency when a warm container exists.
	WarmStart time.Duration
	// MaxDuration is the hard per-invocation execution limit.
	MaxDuration time.Duration
	// MaxConcurrent caps simultaneously running activations
	// platform-wide (IBM's default limit is 1000). 0 disables the cap.
	// Per-namespace caps within it are set with Platform.SetQuota.
	MaxConcurrent int
}

// DefaultConfig matches IBM Cloud Functions as described in §2: 10-minute
// limit, cold starts of around half a second, 1000 concurrent
// activations.
func DefaultConfig() Config {
	return Config{
		ColdStart:     500 * time.Millisecond,
		WarmStart:     25 * time.Millisecond,
		MaxDuration:   10 * time.Minute,
		MaxConcurrent: 1000,
	}
}

// Platform is a simulated FaaS provider. It is safe for concurrent use.
type Platform struct {
	cfg    Config
	faults *faults.Injector
	tracer *trace.Tracer

	mu       sync.Mutex
	nextID   int
	running  map[int]*Instance
	billed   []billedRun
	warmPool int

	// Multi-tenant accounting (see NamespaceOf): per-namespace quotas,
	// live activation counts and control-plane reservations. A
	// reservation models activations that exist in virtual time but are
	// not host-resident (the fleet scheduler runs admitted jobs
	// host-serially); both checks in invoke count it as used capacity.
	quota         map[string]int
	perNS         map[string]int
	reserved      map[string]int
	totalReserved int

	reg *trace.Registry
	// Counters live in the unified registry under "faas.*".
	cInvocations, cColdStarts, cWarmStarts, cTerminated, cFailedInvocations, cReclaimed, cQuotaRejections *trace.Counter
}

type billedRun struct {
	name     string
	duration time.Duration
	memGiB   float64
	// claimed marks runs already metered by the caller (TerminateInto /
	// Reclaim); BillTo skips them so the two billing paths never
	// double-count GB-seconds.
	claimed bool
}

// NewPlatform returns a platform with the given configuration and a
// private metrics registry.
func NewPlatform(cfg Config) *Platform {
	return NewPlatformWithRegistry(cfg, trace.NewRegistry())
}

// NewPlatformWithRegistry returns a platform whose counters live in the
// given unified registry under "faas.*".
func NewPlatformWithRegistry(cfg Config, reg *trace.Registry) *Platform {
	return &Platform{
		cfg:                cfg,
		running:            make(map[int]*Instance),
		quota:              make(map[string]int),
		perNS:              make(map[string]int),
		reserved:           make(map[string]int),
		reg:                reg,
		cInvocations:       reg.Counter("faas.invocations"),
		cColdStarts:        reg.Counter("faas.cold_starts"),
		cWarmStarts:        reg.Counter("faas.warm_starts"),
		cTerminated:        reg.Counter("faas.terminated"),
		cFailedInvocations: reg.Counter("faas.failed_invocations"),
		cReclaimed:         reg.Counter("faas.reclaimed"),
		cQuotaRejections:   reg.Counter("faas.quota_rejections"),
	}
}

// NamespaceOf maps a function name to its activation namespace: the
// prefix up to the first '/', or the whole name when there is none.
// Engine function names are "<tenant>/jobN/worker-i" under a tenant and
// "jobN/worker-i" standalone, so a tenant's jobs share one namespace
// and standalone jobs each get their own — collision-free by
// construction because tenant names may not contain '/'.
func NamespaceOf(name string) string {
	if i := strings.IndexByte(name, '/'); i >= 0 {
		return name[:i]
	}
	return name
}

// Registry returns the metrics registry the platform's counters live in.
func (p *Platform) Registry() *trace.Registry { return p.reg }

// SetTracer installs (or, with nil, removes) a tracer. The platform
// emits lifecycle instants — "terminate" and "reclaim", annotated with
// the billed seconds and dollars — on the dying instance's track. Same
// concurrency contract as SetFaults.
func (p *Platform) SetTracer(tr *trace.Tracer) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.tracer = tr
}

// SetFaults installs (or, with nil, removes) a fault injector. Callers
// must not change the injector while invocations are in flight; the
// engine installs it during job setup and removes it at teardown.
func (p *Platform) SetFaults(in *faults.Injector) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.faults = in
}

// Instance is one running function invocation. Its Clock is owned by the
// goroutine executing the function body; Platform methods only read it at
// termination.
type Instance struct {
	// ID uniquely identifies the invocation within the platform.
	ID int
	// Name labels the function for billing ("worker-3", "supervisor").
	Name string
	// MemoryMiB is the allocated memory.
	MemoryMiB int
	// Clock is the instance's virtual clock. It starts at the invocation
	// time plus the start latency.
	Clock vclock.Clock
	// ReclaimAt is the absolute virtual time at which the provider
	// reclaims this container (fault injection); 0 means never. Work
	// charged to the Clock past ReclaimAt is void: the engine detects the
	// death at its next checkpointable boundary and re-launches.
	ReclaimAt time.Duration
	// Cold reports whether this invocation paid the cold-start latency
	// (no warm container, or the warm pool was bypassed).
	Cold bool

	startAt    time.Duration
	terminated bool
	ns         string // activation namespace (NamespaceOf(Name))
}

// Invoke launches a function of memoryMiB at virtual time at. The first
// invocation (and any invocation beyond the warm pool) pays the
// cold-start latency; containers freed by Terminate keep a warm slot.
// With a fault injector installed, the attempt may fail transiently
// (wrapping faults.ErrInjected — retry with backoff), a cold start may
// draw a heavy-tailed straggler multiplier, and the container may be
// scheduled for mid-run reclamation (Instance.ReclaimAt).
func (p *Platform) Invoke(name string, memoryMiB int, at time.Duration) (*Instance, error) {
	return p.invoke(name, memoryMiB, at, false)
}

// InvokeCold is Invoke bypassing the warm pool: the container always
// boots cold. The engine uses it when recovering from a reclamation —
// the platform just withdrew capacity, so no warm container is assumed.
// Bypassing the pool also keeps recovery deterministic: concurrent
// recoveries never race for a bounded number of warm slots.
func (p *Platform) InvokeCold(name string, memoryMiB int, at time.Duration) (*Instance, error) {
	return p.invoke(name, memoryMiB, at, true)
}

func (p *Platform) invoke(name string, memoryMiB int, at time.Duration, forceCold bool) (*Instance, error) {
	if memoryMiB <= 0 || memoryMiB > MaxMemoryMiB {
		return nil, fmt.Errorf("invoke %s with %d MiB: %w", name, memoryMiB, ErrTooMuchMemory)
	}

	p.mu.Lock()
	defer p.mu.Unlock()

	if p.faults.InvokeFails(name, at) {
		p.cFailedInvocations.Inc()
		return nil, fmt.Errorf("invoke %s at %v: %w", name, at, faults.ErrInjected)
	}
	if p.cfg.MaxConcurrent > 0 && len(p.running)+p.totalReserved >= p.cfg.MaxConcurrent {
		p.cQuotaRejections.Inc()
		return nil, fmt.Errorf("invoke %s (%d running): %w", name, len(p.running)+p.totalReserved, ErrTooManyConcurrent)
	}
	ns := NamespaceOf(name)
	if q := p.quota[ns]; q > 0 && p.perNS[ns]+p.reserved[ns] >= q {
		p.cQuotaRejections.Inc()
		return nil, fmt.Errorf("invoke %s (namespace %s: %d of %d activations used): %w",
			name, ns, p.perNS[ns]+p.reserved[ns], q, ErrTooManyConcurrent)
	}

	start := p.cfg.ColdStart
	cold := true
	if !forceCold && p.warmPool > 0 {
		p.warmPool--
		start = p.cfg.WarmStart
		cold = false
		p.cWarmStarts.Inc()
	} else {
		// Cold path: stragglers stretch the boot latency.
		start = time.Duration(float64(start) * p.faults.ColdStartFactor(name, at))
		p.cColdStarts.Inc()
	}
	p.cInvocations.Inc()

	inst := &Instance{
		ID:        p.nextID,
		Name:      name,
		MemoryMiB: memoryMiB,
		Cold:      cold,
		startAt:   at,
		ns:        ns,
	}
	if life := p.faults.ReclaimAfter(name, at); life > 0 {
		inst.ReclaimAt = at + start + life
	}
	p.nextID++
	inst.Clock.AdvanceTo(at + start)
	p.running[inst.ID] = inst
	p.perNS[ns]++
	return inst, nil
}

// SetQuota caps the namespace's simultaneously running activations at
// max (counting reservations); max <= 0 removes the cap. Quotas compose
// with the platform-wide MaxConcurrent: an invocation must clear both.
func (p *Platform) SetQuota(ns string, max int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if max <= 0 {
		delete(p.quota, ns)
		return
	}
	p.quota[ns] = max
}

// Quota returns the namespace's activation cap (0 = uncapped).
func (p *Platform) Quota(ns string) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.quota[ns]
}

// Reserve claims n activation slots in the namespace without running
// anything: the fleet control plane executes admitted jobs one at a
// time in host order, so a job that is live in *virtual* time holds its
// capacity as a reservation while other jobs' invocations are checked
// against it. Reserve fails atomically (no partial claim) when the
// namespace quota or the platform-wide cap cannot cover the slots.
func (p *Platform) Reserve(ns string, n int) error {
	if n <= 0 {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.cfg.MaxConcurrent > 0 && len(p.running)+p.totalReserved+n > p.cfg.MaxConcurrent {
		p.cQuotaRejections.Inc()
		return fmt.Errorf("reserve %d in %s (%d in use, cap %d): %w",
			n, ns, len(p.running)+p.totalReserved, p.cfg.MaxConcurrent, ErrTooManyConcurrent)
	}
	if q := p.quota[ns]; q > 0 && p.perNS[ns]+p.reserved[ns]+n > q {
		p.cQuotaRejections.Inc()
		return fmt.Errorf("reserve %d in %s (%d of %d used): %w",
			n, ns, p.perNS[ns]+p.reserved[ns], q, ErrTooManyConcurrent)
	}
	p.reserved[ns] += n
	p.totalReserved += n
	return nil
}

// Release returns n reserved slots to the namespace. Releasing more
// than is reserved is an accounting bug and returns ErrOverRelease
// without changing anything.
func (p *Platform) Release(ns string, n int) error {
	if n <= 0 {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.reserved[ns] < n {
		return fmt.Errorf("release %d in %s (%d reserved): %w", n, ns, p.reserved[ns], ErrOverRelease)
	}
	p.reserved[ns] -= n
	if p.reserved[ns] == 0 {
		delete(p.reserved, ns)
	}
	p.totalReserved -= n
	return nil
}

// InUse reports the namespace's consumed capacity: live activations
// plus reservations.
func (p *Platform) InUse(ns string) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.perNS[ns] + p.reserved[ns]
}

// TotalInUse reports platform-wide consumed capacity (running plus all
// reservations) — what invoke checks against Config.MaxConcurrent.
func (p *Platform) TotalInUse() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.running) + p.totalReserved
}

// Terminate ends an invocation, records its elapsed time for BillTo, and
// returns the container to the warm pool. Terminating twice is an error.
func (p *Platform) Terminate(inst *Instance) error {
	return p.end(inst, nil, true)
}

// TerminateInto is Terminate billing the run directly into m. The run is
// marked claimed, so a later BillTo will not meter it again: a caller
// combining core.Run (which bills through the meter) with BillTo cannot
// double-count GB-seconds.
func (p *Platform) TerminateInto(inst *Instance, m *cost.Meter) error {
	return p.end(inst, m, true)
}

// Reclaim ends an invocation whose container the provider withdrew: the
// container does not rejoin the warm pool, and the run is billed (into
// m, claimed) only up to the reclaim point — work charged to the clock
// past Instance.ReclaimAt was void and is not paid for.
func (p *Platform) Reclaim(inst *Instance, m *cost.Meter) error {
	return p.end(inst, m, false)
}

func (p *Platform) end(inst *Instance, m *cost.Meter, warm bool) error {
	p.mu.Lock()
	defer p.mu.Unlock()

	if inst.terminated {
		return fmt.Errorf("terminate %s (id %d): %w", inst.Name, inst.ID, ErrTerminated)
	}
	inst.terminated = true
	delete(p.running, inst.ID)
	if p.perNS[inst.ns]--; p.perNS[inst.ns] == 0 {
		delete(p.perNS, inst.ns)
	}
	if warm {
		p.warmPool++
	} else {
		p.cReclaimed.Inc()
	}
	p.cTerminated.Inc()

	d := inst.Elapsed()
	if !warm && inst.ReclaimAt > 0 {
		if lived := inst.ReclaimAt - inst.startAt; lived >= 0 && lived < d {
			d = lived
		}
	}
	memGiB := float64(inst.MemoryMiB) / 1024
	p.billed = append(p.billed, billedRun{
		name:     inst.Name,
		duration: d,
		memGiB:   memGiB,
		claimed:  m != nil,
	})
	if m != nil {
		m.AddFunction(inst.Name, d, memGiB)
	}
	if p.tracer.Enabled() {
		name := "terminate"
		if !warm {
			name = "reclaim"
		}
		p.tracer.InstantAt(&inst.Clock, trace.CatFaaS, name, inst.startAt+d,
			trace.Str("fn", inst.Name),
			trace.Secs("billed_s", d),
			trace.Float("usd", cost.FunctionCost(d, memGiB)))
	}
	return nil
}

// Running reports the number of live instances.
func (p *Platform) Running() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.running)
}

// Config returns the platform configuration.
func (p *Platform) Config() Config { return p.cfg }

// BillTo adds every terminated invocation to the meter, skipping runs
// already metered through TerminateInto or Reclaim. Live instances are
// not billed; terminate them first.
func (p *Platform) BillTo(m *cost.Meter) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, run := range p.billed {
		if run.claimed {
			continue
		}
		m.AddFunction(run.name, run.duration, run.memGiB)
	}
}

// BilledFunctionSeconds sums the billed execution time of all terminated
// invocations, weighted by nothing (plain seconds).
func (p *Platform) BilledFunctionSeconds() time.Duration {
	p.mu.Lock()
	defer p.mu.Unlock()
	var total time.Duration
	for _, run := range p.billed {
		total += run.duration
	}
	return total
}

// WarmPool reports how many terminated-warm containers are available
// for reuse by the next invocations.
func (p *Platform) WarmPool() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.warmPool
}

// SetWarmPool overwrites the warm-container pool. The fleet scheduler
// uses it to preset a forked platform with the shared pool's value at a
// job's admission instant, and to write the pool's post-fold value back
// onto the shared platform (DESIGN.md §15).
func (p *Platform) SetWarmPool(n int) {
	if n < 0 {
		panic("faas: negative warm pool")
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.warmPool = n
}

// BilledRun is one terminated invocation on the platform's bill, in
// termination order. Claimed runs were already metered by their caller
// (TerminateInto / Reclaim); BillTo skips them.
type BilledRun struct {
	Name     string
	Duration time.Duration
	MemGiB   float64
	Claimed  bool
}

// BilledRuns returns a copy of the platform's bill in termination order.
func (p *Platform) BilledRuns() []BilledRun {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]BilledRun, len(p.billed))
	for i, run := range p.billed {
		out[i] = BilledRun{Name: run.name, Duration: run.duration, MemGiB: run.memGiB, Claimed: run.claimed}
	}
	return out
}

// AbsorbBilled appends runs to the platform's bill, preserving their
// order and claimed marks. The fleet scheduler folds a forked
// platform's bill (with job labels relocated to their final namespace)
// into the shared platform so BillTo and BilledFunctionSeconds see
// exactly what a host-serial run would have recorded.
func (p *Platform) AbsorbBilled(runs []BilledRun) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, run := range runs {
		p.billed = append(p.billed, billedRun{name: run.Name, duration: run.Duration, memGiB: run.MemGiB, claimed: run.Claimed})
	}
}

// CPUShare returns the fraction of one vCPU available to the instance:
// memory-proportional, capped at 1.0 (IBM gives a 2 GB function the
// equivalent of one vCPU, §5).
func (inst *Instance) CPUShare() float64 {
	share := float64(inst.MemoryMiB) / fullCPUMemoryMiB
	if share > 1 {
		share = 1
	}
	return share
}

// Threads reports the usable degree of thread parallelism inside the
// function: always 1 on this platform regardless of memory, which is the
// observation of Fig 3 (no worthwhile intra-worker data parallelism).
func (inst *Instance) Threads() int { return 1 }

// Elapsed returns how long the invocation has executed (virtual).
func (inst *Instance) Elapsed() time.Duration {
	return inst.Clock.Now() - inst.startAt
}

// CheckLimit returns ErrOverLimit when the invocation has outlived the
// platform's execution cap.
func (inst *Instance) CheckLimit(cfg Config) error {
	if cfg.MaxDuration > 0 && inst.Elapsed() > cfg.MaxDuration {
		return fmt.Errorf("%s (id %d) ran %v: %w", inst.Name, inst.ID, inst.Elapsed(), ErrOverLimit)
	}
	return nil
}

// StartedAt returns the invocation's launch time.
func (inst *Instance) StartedAt() time.Duration { return inst.startAt }
