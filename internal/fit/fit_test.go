package fit

import (
	"math"
	"testing"
	"testing/quick"

	"mlless/internal/xrand"
)

func TestEWMAFirstValuePassesThrough(t *testing.T) {
	e := NewEWMA(0.2)
	if got := e.Update(10); got != 10 {
		t.Fatalf("first Update = %v", got)
	}
}

func TestEWMASmooths(t *testing.T) {
	e := NewEWMA(0.5)
	e.Update(0)
	if got := e.Update(10); got != 5 {
		t.Fatalf("Update = %v, want 5", got)
	}
	if e.Value() != 5 {
		t.Fatalf("Value = %v", e.Value())
	}
}

func TestEWMAAlphaOneIsIdentity(t *testing.T) {
	e := NewEWMA(1)
	for _, x := range []float64{3, -7, 100} {
		if got := e.Update(x); got != x {
			t.Fatalf("alpha=1 Update(%v) = %v", x, got)
		}
	}
}

func TestEWMAInvalidAlphaFallsBack(t *testing.T) {
	for _, a := range []float64{0, -1, 2} {
		e := NewEWMA(a)
		e.Update(1)
		if got := e.Update(9); got != 9 {
			t.Fatalf("alpha=%v did not fall back to identity: %v", a, got)
		}
	}
}

func TestEWMADampensOutlier(t *testing.T) {
	e := NewEWMA(0.2)
	for i := 0; i < 20; i++ {
		e.Update(1)
	}
	spiked := e.Update(100)
	if spiked > 25 {
		t.Fatalf("outlier passed through: %v", spiked)
	}
}

func TestEWMAReset(t *testing.T) {
	e := NewEWMA(0.3)
	e.Update(5)
	e.Reset()
	if e.Value() != 0 {
		t.Fatal("Reset did not clear value")
	}
	if got := e.Update(7); got != 7 {
		t.Fatal("Reset did not clear started flag")
	}
}

func TestSmoothSeries(t *testing.T) {
	out := Smooth(0.5, []float64{0, 10, 10})
	want := []float64{0, 5, 7.5}
	for i := range want {
		if math.Abs(out[i]-want[i]) > 1e-12 {
			t.Fatalf("Smooth = %v", out)
		}
	}
}

func TestSolveLinear(t *testing.T) {
	m := [][]float64{{2, 1}, {1, 3}}
	y := []float64{5, 10}
	x, err := solveLinear(m, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-1) > 1e-9 || math.Abs(x[1]-3) > 1e-9 {
		t.Fatalf("x = %v", x)
	}
}

func TestSolveLinearSingular(t *testing.T) {
	m := [][]float64{{1, 2}, {2, 4}}
	if _, err := solveLinear(m, []float64{1, 2}); err == nil {
		t.Fatal("singular system solved")
	}
}

func TestNNLSMatchesUnconstrained(t *testing.T) {
	// Least-squares solution of this system is strictly positive, so
	// NNLS must reproduce it.
	a := [][]float64{{1, 0}, {0, 1}, {1, 1}}
	b := []float64{1, 2, 3.1}
	x, err := NNLS(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// Normal equations: x = (AᵀA)⁻¹Aᵀb.
	want, err := solveLS(a, b, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-8 {
			t.Fatalf("NNLS = %v, unconstrained = %v", x, want)
		}
	}
}

func TestNNLSClampsNegative(t *testing.T) {
	// Fit y = c to increasing data with a negative-trend column: the
	// coefficient that wants to be negative must be zeroed.
	a := [][]float64{{1, -1}, {1, -2}, {1, -3}}
	b := []float64{1, 2, 3}
	x, err := NNLS(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range x {
		if v < 0 {
			t.Fatalf("x[%d] = %v < 0", i, v)
		}
	}
	// Column 1 has coefficient 0 ⇒ best constant fit is mean(b) = 2.
	if x[1] != 0 || math.Abs(x[0]-2) > 1e-8 {
		t.Fatalf("x = %v, want [2 0]", x)
	}
}

func TestNNLSAlwaysNonNegativeProperty(t *testing.T) {
	r := xrand.New(1)
	if err := quick.Check(func(seed uint64) bool {
		rr := xrand.New(seed ^ r.Uint64())
		m, n := 5+rr.Intn(10), 1+rr.Intn(4)
		a := make([][]float64, m)
		b := make([]float64, m)
		for i := range a {
			a[i] = make([]float64, n)
			for j := range a[i] {
				a[i][j] = rr.NormFloat64()
			}
			b[i] = rr.NormFloat64()
		}
		x, err := NNLS(a, b)
		if err != nil {
			return true // convergence failure is allowed, negativity is not
		}
		for _, v := range x {
			if v < 0 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestNNLSDimensionMismatch(t *testing.T) {
	if _, err := NNLS([][]float64{{1}}, []float64{1, 2}); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
	if _, err := NNLS(nil, nil); err == nil {
		t.Fatal("empty system accepted")
	}
}

func genCurve(c Curve, theta []float64, n int, noise float64, seed uint64) (ts, ys []float64) {
	r := xrand.New(seed)
	ts = make([]float64, n)
	ys = make([]float64, n)
	for i := 0; i < n; i++ {
		t := float64(i + 1)
		ts[i] = t
		ys[i] = c.Eval(theta, t) + r.NormFloat64()*noise
	}
	return ts, ys
}

func TestFitReferenceCurveRecovers(t *testing.T) {
	// Fig 2b's fitted values: θ = (0.05, 1.58, 0.58, 0.49).
	truth := []float64{0.05, 1.58, 0.58, 0.49}
	c := ReferenceCurve{}
	ts, ys := genCurve(c, truth, 120, 0, 2)
	fitted, err := FitCurve(c, ts, ys, FitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Coefficients of this family are only weakly identified; judge the
	// fit by prediction accuracy instead, including extrapolation.
	for _, step := range []float64{10, 60, 120, 200, 320} {
		pred := fitted.Eval(step)
		want := c.Eval(truth, step)
		if e := PredictionError(pred, want); e > 0.02 {
			t.Fatalf("step %v: predicted %v, want %v (err %v)", step, pred, want, e)
		}
	}
}

func TestFitSlowCurveRecovers(t *testing.T) {
	truth := []float64{1e-5, 4e-3, 0.9, 0.72}
	c := SlowCurve{}
	ts, ys := genCurve(c, truth, 150, 0, 3)
	fitted, err := FitCurve(c, ts, ys, FitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, step := range []float64{20, 80, 150, 250} {
		pred := fitted.Eval(step)
		want := c.Eval(truth, step)
		if e := PredictionError(pred, want); e > 0.02 {
			t.Fatalf("step %v: predicted %v, want %v (err %v)", step, pred, want, e)
		}
	}
}

func TestFitToleratesNoise(t *testing.T) {
	// Fig 2c reports prediction error < 1.5% up to 200 steps ahead; with
	// modest noise and EWMA smoothing our fitter must stay in that
	// ballpark when interpolating and extrapolating 2x beyond the data.
	truth := []float64{0.05, 1.58, 0.58, 0.49}
	c := ReferenceCurve{}
	ts, raw := genCurve(c, truth, 150, 0.005, 4)
	ys := Smooth(0.3, raw)
	fitted, err := FitCurve(c, ts, ys, FitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, step := range []float64{100, 200, 300} {
		e := PredictionError(fitted.Eval(step), c.Eval(truth, step))
		if e > 0.03 {
			t.Fatalf("step %v: relative error %v", step, e)
		}
	}
}

func TestFitCoefficientsNonNegative(t *testing.T) {
	c := SlowCurve{}
	ts, ys := genCurve(c, []float64{1e-5, 1e-3, 1.2, 0.7}, 80, 0.01, 5)
	fitted, err := FitCurve(c, ts, ys, FitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range fitted.Theta {
		if v < 0 {
			t.Fatalf("theta[%d] = %v < 0", i, v)
		}
	}
}

func TestFitErrors(t *testing.T) {
	c := ReferenceCurve{}
	if _, err := FitCurve(c, []float64{1, 2}, []float64{1}, FitOptions{}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := FitCurve(c, []float64{1, 2, 3}, []float64{1, 2, 3}, FitOptions{}); err == nil {
		t.Fatal("underdetermined fit accepted")
	}
}

func TestCurvesMonotoneDecreasing(t *testing.T) {
	// Learning curves with positive θ0 must decrease in t.
	ref := ReferenceCurve{}
	slow := SlowCurve{}
	thetaRef := []float64{0.05, 1.2, 0.5, 0.4}
	thetaSlow := []float64{1e-5, 1e-3, 0.5, 0.4}
	for step := 1; step < 500; step++ {
		if ref.Eval(thetaRef, float64(step+1)) > ref.Eval(thetaRef, float64(step)) {
			t.Fatalf("reference curve increased at %d", step)
		}
		if slow.Eval(thetaSlow, float64(step+1)) > slow.Eval(thetaSlow, float64(step)) {
			t.Fatalf("slow curve increased at %d", step)
		}
	}
}

func TestCurveDenominatorFloor(t *testing.T) {
	// All-zero coefficients must not divide by zero.
	for _, c := range []Curve{ReferenceCurve{}, SlowCurve{}} {
		v := c.Eval([]float64{0, 0, 0, 0}, 10)
		if math.IsInf(v, 0) || math.IsNaN(v) {
			t.Fatalf("%s: non-finite at zero theta", c.Name())
		}
	}
}

func TestPredictionError(t *testing.T) {
	if got := PredictionError(11, 10); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("PredictionError = %v", got)
	}
	if got := PredictionError(0.5, 0); got != 0.5 {
		t.Fatalf("zero-actual PredictionError = %v", got)
	}
}

func BenchmarkFitReferenceCurve(b *testing.B) {
	c := ReferenceCurve{}
	ts, ys := genCurve(c, []float64{0.05, 1.58, 0.58, 0.49}, 150, 0.002, 6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FitCurve(c, ts, ys, FitOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func TestCurveNames(t *testing.T) {
	if (ReferenceCurve{}).Name() != "reference" || (SlowCurve{}).Name() != "slow" {
		t.Fatal("curve names wrong")
	}
}

func TestNNLSWideAndDegenerate(t *testing.T) {
	// All-zero target: x = 0 satisfies KKT immediately.
	a := [][]float64{{1, 2}, {3, 4}}
	x, err := NNLS(a, []float64{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range x {
		if v != 0 {
			t.Fatalf("zero target gave x = %v", x)
		}
	}
	// Duplicate columns: the active-set solver must not loop forever.
	dup := [][]float64{{1, 1}, {1, 1}, {1, 1}}
	if x, err := NNLS(dup, []float64{1, 1, 1}); err == nil {
		for _, v := range x {
			if v < 0 {
				t.Fatalf("negative coefficient: %v", x)
			}
		}
	}
}

func TestNNLSSingleColumn(t *testing.T) {
	a := [][]float64{{1}, {2}, {3}}
	x, err := NNLS(a, []float64{2, 4, 6})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-2) > 1e-9 {
		t.Fatalf("x = %v, want [2]", x)
	}
}
