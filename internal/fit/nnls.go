package fit

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular reports a numerically singular linear system.
var ErrSingular = errors.New("fit: singular system")

// ErrNoConverge reports that an iterative solver hit its iteration cap.
var ErrNoConverge = errors.New("fit: did not converge")

// solveLS solves the dense least-squares problem min ‖Ax − b‖₂ for the
// column subset cols of A via the normal equations with partial
// pivoting. A is row-major with m rows; small systems only (the curve
// fits have ≤ 4 parameters).
func solveLS(a [][]float64, b []float64, cols []int) ([]float64, error) {
	n := len(cols)
	// Form AᵀA (restricted) and Aᵀb.
	ata := make([][]float64, n)
	atb := make([]float64, n)
	for i := 0; i < n; i++ {
		ata[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			s := 0.0
			for r := range a {
				s += a[r][cols[i]] * a[r][cols[j]]
			}
			ata[i][j] = s
		}
		s := 0.0
		for r := range a {
			s += a[r][cols[i]] * b[r]
		}
		atb[i] = s
	}
	x, err := solveLinear(ata, atb)
	if err != nil {
		return nil, err
	}
	return x, nil
}

// solveLinear solves the square system Mx = y by Gaussian elimination
// with partial pivoting, mutating copies of its inputs.
func solveLinear(m [][]float64, y []float64) ([]float64, error) {
	n := len(y)
	// Copy.
	a := make([][]float64, n)
	for i := range a {
		a[i] = make([]float64, n)
		copy(a[i], m[i])
	}
	b := make([]float64, n)
	copy(b, y)

	for col := 0; col < n; col++ {
		// Pivot.
		pivot := col
		for r := col + 1; r < n; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(a[pivot][col]) < 1e-14 {
			return nil, fmt.Errorf("column %d: %w", col, ErrSingular)
		}
		a[col], a[pivot] = a[pivot], a[col]
		b[col], b[pivot] = b[pivot], b[col]
		// Eliminate.
		for r := col + 1; r < n; r++ {
			f := a[r][col] / a[col][col]
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				a[r][c] -= f * a[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	// Back substitution.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := b[i]
		for j := i + 1; j < n; j++ {
			s -= a[i][j] * x[j]
		}
		x[i] = s / a[i][i]
	}
	return x, nil
}

// NNLS solves min ‖Ax − b‖₂ subject to x ≥ 0 with the Lawson–Hanson
// active-set algorithm. A is row-major (len(A) rows × len(A[0]) cols).
func NNLS(a [][]float64, b []float64) ([]float64, error) {
	if len(a) == 0 {
		return nil, errors.New("fit: NNLS with no rows")
	}
	m, n := len(a), len(a[0])
	if len(b) != m {
		return nil, fmt.Errorf("fit: NNLS dimension mismatch: %d rows, %d targets", m, len(b))
	}

	x := make([]float64, n)
	passive := make([]bool, n)

	residual := func() []float64 {
		r := make([]float64, m)
		for i := 0; i < m; i++ {
			s := b[i]
			for j := 0; j < n; j++ {
				s -= a[i][j] * x[j]
			}
			r[i] = s
		}
		return r
	}
	gradient := func(r []float64) []float64 {
		w := make([]float64, n)
		for j := 0; j < n; j++ {
			s := 0.0
			for i := 0; i < m; i++ {
				s += a[i][j] * r[i]
			}
			w[j] = s
		}
		return w
	}

	const (
		tol     = 1e-10
		maxIter = 3 * 64
	)
	for iter := 0; iter < maxIter; iter++ {
		w := gradient(residual())
		// Most-violating zero-set coordinate.
		best, bestVal := -1, tol
		for j := 0; j < n; j++ {
			if !passive[j] && w[j] > bestVal {
				best, bestVal = j, w[j]
			}
		}
		if best < 0 {
			return x, nil // KKT satisfied
		}
		passive[best] = true

		// Inner loop: solve the unconstrained problem on the passive set
		// and clip back to feasibility.
		for {
			var cols []int
			for j := 0; j < n; j++ {
				if passive[j] {
					cols = append(cols, j)
				}
			}
			z, err := solveLS(a, b, cols)
			if err != nil {
				// Degenerate subproblem: drop the last added column.
				passive[best] = false
				return x, nil
			}
			// All positive: accept.
			neg := false
			for _, v := range z {
				if v <= tol {
					neg = true
					break
				}
			}
			if !neg {
				for k, j := range cols {
					x[j] = z[k]
				}
				break
			}
			// Step toward z until the first variable hits zero.
			alpha := math.Inf(1)
			for k, j := range cols {
				if z[k] <= tol {
					d := x[j] - z[k]
					if d > 0 {
						if a := x[j] / d; a < alpha {
							alpha = a
						}
					}
				}
			}
			if math.IsInf(alpha, 1) {
				alpha = 0
			}
			for k, j := range cols {
				x[j] += alpha * (z[k] - x[j])
				if x[j] < tol {
					x[j] = 0
					passive[j] = false
				}
			}
		}
	}
	return x, fmt.Errorf("NNLS: %w", ErrNoConverge)
}
