// Package fit provides the numerical machinery of the scale-in
// auto-tuner (§4.2): an exponentially weighted moving average filter for
// de-noising loss streams, a non-negative least squares solver
// (Lawson–Hanson), a projected Levenberg–Marquardt nonlinear
// least-squares fitter, and the paper's two learning-curve families
// (Eq. 2 and Eq. 3). The paper used SciPy's curve_fit with non-negative
// coefficients; this package re-implements that functionality on the
// standard library.
package fit

// EWMA is an exponentially weighted moving average filter. The paper
// passes all loss values through an EWMA "to remove outliers" before
// curve fitting (§4.2). The zero value is invalid; use NewEWMA.
type EWMA struct {
	alpha   float64
	value   float64
	started bool
}

// NewEWMA returns a filter with smoothing factor alpha in (0, 1]: the
// weight of the newest observation. alpha = 1 disables smoothing.
func NewEWMA(alpha float64) *EWMA {
	if alpha <= 0 || alpha > 1 {
		alpha = 1
	}
	return &EWMA{alpha: alpha}
}

// Update feeds an observation and returns the smoothed value.
func (e *EWMA) Update(x float64) float64 {
	if !e.started {
		e.value = x
		e.started = true
		return x
	}
	e.value = e.alpha*x + (1-e.alpha)*e.value
	return e.value
}

// Value returns the current smoothed value (0 before any observation).
func (e *EWMA) Value() float64 { return e.value }

// Reset clears the filter state.
func (e *EWMA) Reset() {
	e.value = 0
	e.started = false
}

// Smooth applies the filter to a whole series, returning a new slice.
func Smooth(alpha float64, xs []float64) []float64 {
	e := NewEWMA(alpha)
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = e.Update(x)
	}
	return out
}
