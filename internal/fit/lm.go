package fit

import (
	"errors"
	"fmt"
	"math"
)

// FitOptions tunes the projected Levenberg–Marquardt solver.
type FitOptions struct {
	// MaxIter caps outer iterations (default 200).
	MaxIter int
	// Tol stops when the relative SSE improvement falls below it
	// (default 1e-12).
	Tol float64
}

func (o FitOptions) withDefaults() FitOptions {
	if o.MaxIter <= 0 {
		o.MaxIter = 200
	}
	if o.Tol <= 0 {
		o.Tol = 1e-12
	}
	return o
}

// FitCurve fits curve c to the points (ts[i], ys[i]) by projected
// Levenberg–Marquardt: after every accepted step the coefficients are
// clamped to θ ≥ 0, matching the paper's non-negative coefficient
// constraint on Eq. 2 and Eq. 3 (§4.2). It returns the fitted curve.
func FitCurve(c Curve, ts, ys []float64, opts FitOptions) (Fitted, error) {
	if len(ts) != len(ys) {
		return Fitted{}, fmt.Errorf("fit: %d steps but %d losses", len(ts), len(ys))
	}
	if len(ts) < c.NumParams() {
		return Fitted{}, fmt.Errorf("fit: %d points cannot determine %d parameters", len(ts), c.NumParams())
	}
	opts = opts.withDefaults()

	theta := c.InitialGuess(ts, ys)
	project(theta)
	n := c.NumParams()
	m := len(ts)

	sse := func(th []float64) float64 {
		s := 0.0
		for i := range ts {
			r := c.Eval(th, ts[i]) - ys[i]
			s += r * r
		}
		return s
	}

	lambda := 1e-3
	cur := sse(theta)
	jac := make([][]float64, m)
	for i := range jac {
		jac[i] = make([]float64, n)
	}
	residual := make([]float64, m)

	for iter := 0; iter < opts.MaxIter; iter++ {
		// Residuals and numeric Jacobian (central differences).
		for i := range ts {
			residual[i] = c.Eval(theta, ts[i]) - ys[i]
		}
		for j := 0; j < n; j++ {
			h := 1e-6 * (math.Abs(theta[j]) + 1e-6)
			up := append([]float64(nil), theta...)
			dn := append([]float64(nil), theta...)
			up[j] += h
			dn[j] -= h
			project(dn)
			for i := range ts {
				jac[i][j] = (c.Eval(up, ts[i]) - c.Eval(dn, ts[i])) / (up[j] - dn[j])
			}
		}

		// Normal equations with LM damping:
		// (JᵀJ + λ·diag(JᵀJ))·δ = −Jᵀr
		jtj := make([][]float64, n)
		jtr := make([]float64, n)
		for a := 0; a < n; a++ {
			jtj[a] = make([]float64, n)
			for b := 0; b < n; b++ {
				s := 0.0
				for i := 0; i < m; i++ {
					s += jac[i][a] * jac[i][b]
				}
				jtj[a][b] = s
			}
			s := 0.0
			for i := 0; i < m; i++ {
				s += jac[i][a] * residual[i]
			}
			jtr[a] = -s
		}

		improved := false
		for try := 0; try < 12; try++ {
			damped := make([][]float64, n)
			for a := 0; a < n; a++ {
				damped[a] = append([]float64(nil), jtj[a]...)
				d := jtj[a][a] * lambda
				if d == 0 {
					d = lambda * 1e-9
				}
				damped[a][a] += d
			}
			delta, err := solveLinear(damped, jtr)
			if err != nil {
				lambda *= 10
				continue
			}
			cand := make([]float64, n)
			for j := range cand {
				cand[j] = theta[j] + delta[j]
			}
			project(cand)
			if s := sse(cand); s < cur {
				rel := (cur - s) / (cur + 1e-300)
				theta, cur = cand, s
				lambda = math.Max(lambda/3, 1e-12)
				improved = true
				if rel < opts.Tol {
					return Fitted{Curve: c, Theta: theta}, nil
				}
				break
			}
			lambda *= 10
		}
		if !improved {
			break // converged to a (projected) local minimum
		}
	}
	if math.IsNaN(cur) || math.IsInf(cur, 0) {
		return Fitted{}, errors.New("fit: diverged to non-finite SSE")
	}
	return Fitted{Curve: c, Theta: theta}, nil
}

// project clamps coefficients to the non-negative orthant in place.
func project(theta []float64) {
	for i, v := range theta {
		if v < 0 || math.IsNaN(v) {
			theta[i] = 0
		}
	}
}

// PredictionError returns |predicted − actual| / |actual|, the relative
// error metric of Fig 2c/2d. A zero actual value yields the absolute
// error instead.
func PredictionError(predicted, actual float64) float64 {
	d := math.Abs(predicted - actual)
	if actual == 0 {
		return d
	}
	return d / math.Abs(actual)
}
