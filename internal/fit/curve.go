package fit

import (
	"math"
)

// Curve is a parametric learning-curve family with non-negative
// coefficients.
type Curve interface {
	// Name identifies the family.
	Name() string
	// NumParams is the number of coefficients θ.
	NumParams() int
	// Eval computes the curve value at step t for coefficients theta.
	Eval(theta []float64, t float64) float64
	// InitialGuess proposes starting coefficients for the given data.
	InitialGuess(ts, ys []float64) []float64
}

// denomFloor keeps the reciprocal families finite when a fit drives the
// denominator toward zero.
const denomFloor = 1e-9

// ReferenceCurve is the paper's Eq. 2 family for the region of fast
// convergence, derived from the O(1/√(Bt) + 1/t) rate of mini-batch SGD:
//
//	L_P(t) = 1/(θ0·t^θ1 + θ2) + θ3
type ReferenceCurve struct{}

var _ Curve = ReferenceCurve{}

// Name implements Curve.
func (ReferenceCurve) Name() string { return "reference" }

// NumParams implements Curve.
func (ReferenceCurve) NumParams() int { return 4 }

// Eval implements Curve.
func (ReferenceCurve) Eval(theta []float64, t float64) float64 {
	if t < 1 {
		t = 1
	}
	den := theta[0]*math.Pow(t, theta[1]) + theta[2]
	if den < denomFloor {
		den = denomFloor
	}
	return 1/den + theta[3]
}

// InitialGuess implements Curve: θ3 slightly under the smallest observed
// loss, θ2 matching the first observation, θ1 = 1, θ0 small.
func (ReferenceCurve) InitialGuess(ts, ys []float64) []float64 {
	lo, hi := minMax(ys)
	theta3 := 0.9 * lo
	first := hi - theta3
	if first <= 0 {
		first = 1
	}
	return []float64{0.05, 1.0, 1 / first, theta3}
}

// SlowCurve is the paper's Eq. 3 family (after SLAQ) for the flat region
// past the knee:
//
//	ℓ_p(t) = 1/(θ0·t² + θ1·t + θ2) + θ3
type SlowCurve struct{}

var _ Curve = SlowCurve{}

// Name implements Curve.
func (SlowCurve) Name() string { return "slow" }

// NumParams implements Curve.
func (SlowCurve) NumParams() int { return 4 }

// Eval implements Curve.
func (SlowCurve) Eval(theta []float64, t float64) float64 {
	if t < 1 {
		t = 1
	}
	den := theta[0]*t*t + theta[1]*t + theta[2]
	if den < denomFloor {
		den = denomFloor
	}
	return 1/den + theta[3]
}

// InitialGuess implements Curve.
func (SlowCurve) InitialGuess(ts, ys []float64) []float64 {
	lo, hi := minMax(ys)
	theta3 := 0.9 * lo
	first := hi - theta3
	if first <= 0 {
		first = 1
	}
	return []float64{1e-6, 1e-3, 1 / first, theta3}
}

func minMax(xs []float64) (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, x := range xs {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}

// Fitted couples a curve family with fitted coefficients.
type Fitted struct {
	Curve Curve
	Theta []float64
}

// Eval evaluates the fitted curve at step t.
func (f Fitted) Eval(t float64) float64 { return f.Curve.Eval(f.Theta, t) }
