package core

import (
	"math"
	"time"
)

// Supervisor-tail pipelining (DESIGN.md §15): under lock-step, the
// supervisor's per-step bookkeeping — advancing its clock to the
// barrier, draining the loss queue, smoothing and recording the step —
// serializes after every parallel cohort. When the lookahead predicate
// below proves the tail of step r cannot interact with the front half
// of step r+1, the engine runs it on a persistent goroutine while the
// workers' recover/merge/fetch/compute states of the next step execute,
// joining before the publish half (the only sub-phase that touches the
// loss queue the tail drains). Virtual time is untouched: the overlap
// reorders host work only, and every quantity the tail computes is a
// pure function of state fixed at launch, so results stay bit-identical
// to the serial tail.
//
// Static eligibility (tailEligible): no stop criteria other than
// MaxSteps (TargetLoss, Patience, MaxWallClock all unset), no tuner, no
// tracer, no fault injector, per-step barriers (Staleness <= 1). Under
// those gates the serial tail's only side effects are the supervisor
// clock, the loss history and the smoother — all joined before anyone
// else reads them.
//
// Dynamic per-step guards (the lookahead predicate):
//
//   - tame losses: the stop check could still fire on a NaN/Inf
//     aggregate. Every report the tail will drain carries a worker's
//     just-published loss (w.lastLoss); if all of them are finite and
//     below 1e100, their sum over at most a few thousand workers cannot
//     overflow, so Decide provably returns false and the next step's
//     front half may run speculatively.
//   - far from the execution cap: syncSupervisor may checkpoint and
//     relaunch a supervisor approaching Config.MaxDuration, invoking on
//     the platform — an ordering-visible effect. The tail only runs
//     async when the supervisor's elapsed time at the barrier is
//     strictly below the relaunch threshold, the exact complement of
//     maybeRelaunchSup's trigger.
//
// When either guard fails the tail runs synchronously — byte-identical
// to the pre-pipelining engine by construction.

// tailOverlapHook, when non-nil (tests only), observes every tail
// launched onto the resident goroutine — the instrumentation the alloc
// guard uses to prove it measured the pipelined path.
var tailOverlapHook func()

// tailEligible reports whether the spec admits the overlapped
// supervisor tail at all.
func (e *engine) tailEligible(spec Spec) bool {
	return spec.TargetLoss == 0 && spec.Patience == 0 && spec.MaxWallClock == 0 &&
		e.tuner == nil && !e.tr.Enabled() && e.faults == nil && spec.Staleness <= 1
}

// tameLosses reports whether every active worker's just-published loss
// is finite and small enough that the aggregate cannot become NaN/Inf.
func tameLosses(active []*Worker) bool {
	for _, w := range active {
		if math.IsNaN(w.lastLoss) || math.Abs(w.lastLoss) > 1e100 {
			return false
		}
	}
	return true
}

// supFarFromLimit reports whether the supervisor, advanced to barrier,
// would stay strictly clear of the relaunch threshold, so
// syncSupervisor provably performs no platform operation.
func (e *engine) supFarFromLimit(barrier time.Duration) bool {
	cfg := e.cl.Platform.Config()
	if cfg.MaxDuration <= 0 {
		return true
	}
	return barrier-e.sup.StartedAt() < cfg.MaxDuration-e.relaunchHorizon()
}

// tailReq is one step's supervisor bookkeeping, captured at launch.
type tailReq struct {
	barrier time.Duration
	step    int
	pActive int
	stepDur time.Duration
	stopper *stopCheck
}

// tailRes is the tail's outcome, read at the join point.
type tailRes struct {
	stop, converged, diverged bool
	err                       error
}

// supTail owns the persistent tail goroutine. All channel traffic is
// by-value structs, so the steady-state overlap allocates nothing.
type supTail struct {
	e    *engine
	req  chan tailReq
	res  chan tailRes
	live bool
}

// start spawns the resident goroutine. The goroutine captures the
// channels by value: close() nils the struct fields, and the goroutine
// may not have been scheduled yet when it does.
func (t *supTail) start(e *engine) {
	t.e = e
	t.req = make(chan tailReq)
	t.res = make(chan tailRes)
	req, res := t.req, t.res
	go func() {
		for r := range req {
			res <- e.runTail(r)
		}
	}()
}

// runTail executes one step's supervisor tail; called from the tail
// goroutine when overlapped, or from the main loop when a dynamic
// guard demands serial order.
func (e *engine) runTail(r tailReq) tailRes {
	if err := e.syncSupervisor(r.barrier, r.step); err != nil {
		return tailRes{err: err}
	}
	raw, updateBytes, err := e.aggregateReports(r.pActive)
	if err != nil {
		return tailRes{err: err}
	}
	smoothed := e.recordStep(r.step, r.barrier, raw, updateBytes, r.pActive, r.stepDur)
	var out tailRes
	out.stop, out.converged, out.diverged = r.stopper.Decide(raw, smoothed, r.barrier)
	return out
}

// launch hands a step's tail to the resident goroutine.
func (t *supTail) launch(r tailReq) {
	t.req <- r
	t.live = true
}

// pending reports whether a launched tail has not been joined yet.
func (t *supTail) pending() bool { return t.live }

// join blocks until the in-flight tail finishes.
func (t *supTail) join() tailRes {
	r := <-t.res
	t.live = false
	return r
}

// close joins any in-flight tail and retires the goroutine. Safe to
// call on a never-started supTail.
func (t *supTail) close() {
	if t.req == nil {
		return
	}
	if t.live {
		<-t.res
		t.live = false
	}
	close(t.req)
	t.req = nil
}
