package core

import (
	"fmt"
	"time"

	"mlless/internal/trace"
)

// Async is the event-driven schedule of the journal version of MLLess
// (arXiv 2206.05786): no global barrier exists. Each worker advances on
// its own virtual clock, publishing its update and immediately starting
// the next step; at the head of every step it pulls whichever peer
// updates its announcement queue says are available, waiting only for
// their publish instants. Progress is bounded by the staleness cap: a
// worker may start step s only while s <= min(completed)+Cap, so
// replicas never drift more than Cap steps apart. With Cap = 1 every
// worker sees exactly the peer updates of step s-1 before computing
// step s — the same update sequence as BSP, applied in the same order,
// so the loss history is identical (pinned by TestAsyncCapOneMatchesBSP)
// while the timeline is free of barrier waits.
//
// The driver below is a deterministic discrete-event simulation over
// lookahead groups (lookahead.go): each round it takes the same-step
// cohort of the eligible worker with the smallest (clock, id) and runs
// every member's pass in two sub-phases — first the read side (recover
// + pull, which only consumes updates committed by earlier rounds),
// then the write side (merge/fetch/compute/publish). Members of a
// cohort provably cannot observe each other's current-step effects, so
// the sub-phases may execute members in any order — one at a time or on
// a goroutine pool (Spec.Driver) — and the run's traces, loss histories
// and bills are byte-identical either way, faults included.
type Async struct {
	// Cap is the staleness bound K >= 1 (Spec.Staleness under async).
	Cap int
}

// Name implements Schedule.
func (Async) Name() string { return "async" }

// asyncState is the driver's bookkeeping for one worker.
type asyncState struct {
	// done is the highest step the worker has completed (published).
	done int
	// pubAt records the publish instant of each completed step, until
	// the supervisor aggregates it.
	pubAt map[int]time.Duration
	// avail buffers announcements drained from the worker's queue but
	// not yet pulled: avail[peer][step].
	avail []map[int]asyncAnnounce
	// pulledThrough[j] is the highest step of peer j this worker has
	// applied; announcements arrive in step order, so it only grows.
	pulledThrough []int
}

// Run implements Schedule.
func (a Async) Run(e *engine) (*Result, error) {
	spec := e.job.Spec
	k := a.Cap
	if k < 1 {
		k = 1
	}
	n := len(e.workers)
	states := make([]*asyncState, n)
	for i := range states {
		states[i] = &asyncState{
			pubAt:         make(map[int]time.Duration),
			avail:         make([]map[int]asyncAnnounce, n),
			pulledThrough: make([]int, n),
		}
		for j := range states[i].avail {
			states[i].avail[j] = make(map[int]asyncAnnounce)
		}
	}
	reportBuf := make(map[int][]lossReport)
	stopper := newStopCheck(spec)
	converged := false
	diverged := false
	aggregated := 0     // highest step the supervisor has reconciled
	expiredThrough := 0 // highest step whose update keys have been expired
	cfg := e.cl.Platform.Config()
	var group []*Worker // reused across rounds

	for {
		group = nextAsyncGroup(e.workers, states, spec.MaxSteps, k, group)
		if len(group) == 0 {
			break // every worker finished MaxSteps
		}
		if h := asyncGroupHook; h != nil {
			h(len(group))
		}

		// Read side: each member recovers a dead container and pulls the
		// peer updates its announcement queue promises. Everything read —
		// queue contents and update keys — was committed by earlier
		// rounds (a step-s pass pulls through step s-1 only), so members
		// are independent here.
		if err := e.drv.Phase(group, func(w *Worker) error {
			st := states[w.id]
			c := &w.ctx
			*c = stepCtx{step: st.done + 1, pActive: n, relaunch: true}
			if err := e.runStates(w, c, stateRecover); err != nil {
				return err
			}
			return e.asyncPull(w, st, c)
		}); err != nil {
			return nil, err
		}

		// Write side: compute and publish. Nobody reads queues or update
		// keys in this sub-phase; each member writes only its own update
		// key and appends to queues whose internal order is never
		// observable (consumers key by worker and step), so members are
		// independent here too.
		if err := e.drv.Phase(group, func(w *Worker) error {
			return e.runStates(w, &w.ctx, stateMerge, stateFetch, stateCompute, statePublish)
		}); err != nil {
			return nil, err
		}

		// Commit the round in (clock, id) order — the same total order
		// the partitioner anchors on, now over the post-step clocks. The
		// per-worker limit checks are independent reads, so they run as
		// one more driver phase; only the scan below, which surfaces the
		// first failure in the committed order and performs the actual
		// state commit, is serial.
		sortByClockID(group)
		if err := e.drv.Phase(group, func(w *Worker) error {
			w.limitErr = nil
			if !dead(w.inst) {
				w.limitErr = w.inst.CheckLimit(cfg)
			}
			return nil
		}); err != nil {
			return nil, err
		}
		for _, w := range group {
			st := states[w.id]
			step := st.done + 1
			if err := w.limitErr; err != nil {
				return nil, fmt.Errorf("core: step %d: %w", step, err)
			}
			st.done = step
			st.pubAt[step] = w.inst.Clock.Now()
		}

		// Reconcile every step the whole pool has now completed: the
		// supervisor advances to the step's last publish instant,
		// aggregates its loss reports and applies the stop criteria.
		stop := false
		for !stop {
			minDone := spec.MaxSteps
			for _, s := range states {
				if s.done < minDone {
					minDone = s.done
				}
			}
			if aggregated >= minDone {
				break
			}
			s := aggregated + 1
			var at time.Duration
			for _, ws := range states {
				if t := ws.pubAt[s]; t > at {
					at = t
				}
				delete(ws.pubAt, s)
			}
			if err := e.syncSupervisor(at, s); err != nil {
				return nil, err
			}
			raw, updateBytes, err := e.aggregateAsync(s, n, reportBuf)
			if err != nil {
				return nil, err
			}
			if e.tr.Enabled() {
				e.tr.SpanOn(supTrack, trace.CatEngine, "aggregate",
					at, e.sup.Clock.Now(), trace.Int("step", s))
			}
			stepDur := e.advanceStep(at)
			smoothed := e.recordStep(s, at, raw, updateBytes, n, stepDur)
			aggregated = s

			// Once every worker has completed step s, all of them have
			// pulled the pool's updates through s-Cap (the staleness
			// bound guarantees no later pull reaches that far back), so
			// those keys expire.
			for expiredThrough < s-k {
				expiredThrough++
				e.expireStep(expiredThrough, e.workers)
			}

			stop, converged, diverged = stopper.Decide(raw, smoothed, at)
		}
		if stop {
			break
		}
	}

	// Expire what the run still holds, including updates published by
	// run-ahead workers past the last aggregated step, so a finished job
	// leaves the store empty. The deletes are supervisor work — its
	// end-of-run cleanup — so they are charged on the supervisor clock,
	// keeping kv counters and trace ordering consistent with the run
	// (a zero-valued clock would date them at virtual time 0).
	maxDone := 0
	for _, st := range states {
		if st.done > maxDone {
			maxDone = st.done
		}
	}
	for s := expiredThrough + 1; s <= maxDone; s++ {
		for _, w := range e.workers {
			e.cl.Redis.Delete(&e.sup.Clock, e.updKey(s, w.id))
		}
	}

	lastStep := 0
	if len(e.history) > 0 {
		lastStep = e.history[len(e.history)-1].Step
	}
	return e.teardown(converged, diverged, lastStep)
}

// asyncGroupHook, when non-nil, observes each lookahead group's width.
// Test and benchmark instrumentation only; set it before a run and
// clear it after.
var asyncGroupHook func(width int)

// asyncPull drains the worker's announcement queue and applies every
// announced peer update for steps up to c.step-1, in (peer id, step)
// order. The worker waits (AdvanceTo) for the latest publish instant
// among the updates it takes: an update cannot be read before it was
// written.
func (e *engine) asyncPull(w *Worker, st *asyncState, c *stepCtx) error {
	clk := &w.inst.Clock
	segStart := clk.Now()

	msgs := e.cl.Broker.ConsumeAll(clk, e.annQueue(w.id))
	for _, m := range msgs {
		ann, err := decodeAsyncAnnounce(m)
		if err != nil {
			return fmt.Errorf("core: worker %d: %w", w.id, err)
		}
		if int(ann.Worker) != w.id {
			st.avail[ann.Worker][int(ann.Step)] = ann
		}
	}

	keys := w.pullKeys[:0]
	var waitUntil time.Duration
	for j := range e.workers {
		if j == w.id {
			continue
		}
		for t := st.pulledThrough[j] + 1; t <= c.step-1; t++ {
			ann, ok := st.avail[j][t]
			if !ok {
				break
			}
			keys = append(keys, e.updKey(t, j))
			if ann.At > waitUntil {
				waitUntil = ann.At
			}
			delete(st.avail[j], t)
			st.pulledThrough[j] = t
		}
	}
	w.pullKeys = keys
	clk.AdvanceTo(waitUntil)

	applied := 0
	if len(keys) > 0 {
		vals, n, err := e.xchg.PullKeys(clk, keys, w.pullVals, w.model.Params())
		w.pullVals = vals
		if err != nil {
			return fmt.Errorf("core: worker %d async pull at step %d: %w", w.id, c.step, err)
		}
		applied = n
	}
	e.chargeCompute(w, 4*float64(applied))
	if e.tr.Enabled() {
		e.tr.SpanOn(workerTrack(w.id), trace.CatEngine, "pull",
			segStart, w.inst.Clock.Now(), trace.Int("step", c.step))
	}
	return e.redoSegmentOnDeath(w, segStart, fmt.Sprintf("async pull at step %d", c.step))
}

// aggregateAsync drains the loss queue into buf (run-ahead workers may
// have reported later steps already) and averages step's reports in
// worker-id order (deterministic float summation). Every worker must
// report exactly once per step: out-of-range ids and duplicate reports
// are protocol violations surfaced as errors, never silently folded
// into the average.
func (e *engine) aggregateAsync(step, expect int, buf map[int][]lossReport) (avgLoss float64, updateBytes int64, err error) {
	for _, m := range e.cl.Broker.ConsumeAll(&e.sup.Clock, e.lossQueue()) {
		r, err := decodeLossReport(m)
		if err != nil {
			return 0, 0, err
		}
		buf[int(r.Step)] = append(buf[int(r.Step)], r)
	}
	reports := buf[step]
	delete(buf, step)
	if len(reports) != expect {
		return 0, 0, fmt.Errorf("core: supervisor got %d loss reports for step %d, want %d",
			len(reports), step, expect)
	}
	// Fan-out queues preserve publish order per sender but the drain
	// interleaves senders; fix the summation order by worker id. The
	// count check above plus in-range and no-duplicate below guarantee
	// every slot is filled exactly once.
	byWorker := make([]lossReport, expect)
	seen := make([]bool, expect)
	for _, r := range reports {
		id := int(r.Worker)
		if id >= expect {
			return 0, 0, fmt.Errorf("core: supervisor: loss report for step %d from out-of-range worker %d (pool size %d)",
				step, id, expect)
		}
		if seen[id] {
			return 0, 0, fmt.Errorf("core: supervisor: duplicate loss report for step %d from worker %d",
				step, id)
		}
		seen[id] = true
		byWorker[id] = r
	}
	sum := 0.0
	for _, r := range byWorker {
		sum += r.Loss
		updateBytes += int64(r.UpdateBytes)
	}
	return sum / float64(expect), updateBytes, nil
}
