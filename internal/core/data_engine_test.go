package core

import (
	"errors"
	"testing"

	"mlless/internal/consistency"
	"mlless/internal/dataset"
	"mlless/internal/model"
	"mlless/internal/optimizer"
	"mlless/internal/vclock"
)

// testPMFJobShard is testPMFJob staged on the columnar shard tier:
// identical samples (same generator config, same staging seed), but
// laid out as shard blobs behind -data shard.
func testPMFJobShard(t testing.TB, workers int, spec Spec) (*Cluster, Job) {
	t.Helper()
	cl := NewCluster()
	cfg := dataset.MovieLensConfig{Users: 150, Items: 600, Ratings: 30000, Rank: 8, NoiseStd: 0.6, Seed: 21}
	ds := dataset.GenerateMovieLens(cfg)
	var clk vclock.Clock
	n := dataset.StageShards(ds, cl.COS, &clk, "ml", 500, dataset.DefaultBatchesPerShard, 2)
	spec.Workers = workers
	spec.Data = DataShard
	return cl, Job{
		Spec:       spec,
		Model:      model.NewPMF(cfg.Users, cfg.Items, cfg.Rank, ds.RatingMean, 0.02, 31),
		Optimizer:  optimizer.NewNesterov(optimizer.Constant(1.0), 0.9),
		Bucket:     "ml",
		NumBatches: n,
		BatchSize:  500,
	}
}

// testLRJobShard is testLRJob on the shard tier. The batch tier
// normalizes after staging (NormalizeMinMax); the shard tier normalizes
// in place and stages the result — TestNormalizeMatchesInPlace in
// internal/dataset pins the two orderings byte-equal.
func testLRJobShard(t testing.TB, workers int, spec Spec) (*Cluster, Job) {
	t.Helper()
	cl := NewCluster()
	cfg := dataset.CriteoConfig{
		Samples: 6000, NumericFeatures: 5, CategoricalFeatures: 8,
		HashDim: 2000, Cardinality: 100, Separation: 1.6, Seed: 11,
	}
	ds := dataset.GenerateCriteo(cfg)
	dataset.NormalizeInPlace(ds, cfg.NumericFeatures)
	var clk vclock.Clock
	n := dataset.StageShards(ds, cl.COS, &clk, "criteo", 250, dataset.DefaultBatchesPerShard, 1)
	spec.Workers = workers
	spec.Data = DataShard
	return cl, Job{
		Spec:       spec,
		Model:      model.NewLogReg(cfg.HashDim+cfg.NumericFeatures, 0),
		Optimizer:  optimizer.NewAdamDefaults(optimizer.Constant(0.05)),
		Bucket:     "criteo",
		NumBatches: n,
		BatchSize:  250,
	}
}

// assertLossParity runs both jobs and requires bitwise-equal loss
// histories. Fetch charges legitimately differ between the tiers (a
// ranged block read is not the same byte count as an encoded batch
// object), so times and bills are NOT compared — only the numerics.
func assertLossParity(t *testing.T, clB *Cluster, jobB Job, clS *Cluster, jobS Job) {
	t.Helper()
	resB, err := Run(clB, jobB)
	if err != nil {
		t.Fatal(err)
	}
	resS, err := Run(clS, jobS)
	if err != nil {
		t.Fatal(err)
	}
	if resB.Steps != resS.Steps {
		t.Fatalf("steps diverge: batch %d, shard %d", resB.Steps, resS.Steps)
	}
	if resB.Converged != resS.Converged {
		t.Fatalf("convergence diverges: batch %v, shard %v", resB.Converged, resS.Converged)
	}
	for i := range resB.History {
		b, s := resB.History[i], resS.History[i]
		if b.Loss != s.Loss || b.RawLoss != s.RawLoss {
			t.Fatalf("step %d: batch loss (%v raw %v) vs shard loss (%v raw %v) — must be bitwise equal",
				b.Step, b.Loss, b.RawLoss, s.Loss, s.RawLoss)
		}
	}
}

// TestDataShardLossMatchesBatchPMF pins the tentpole contract: the
// shard tier trains the exact same model as the batch tier — loss
// histories bitwise equal under BSP and ISP.
func TestDataShardLossMatchesBatchPMF(t *testing.T) {
	for _, tc := range []struct {
		name string
		spec Spec
	}{
		{"bsp", Spec{MaxSteps: 60}},
		{"isp", Spec{MaxSteps: 60, Sync: consistency.ISP, Significance: 0.01}},
		{"ssp", Spec{MaxSteps: 60, Staleness: 3}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			clB, jobB := testPMFJob(t, 4, tc.spec)
			clS, jobS := testPMFJobShard(t, 4, tc.spec)
			assertLossParity(t, clB, jobB, clS, jobS)
		})
	}
}

// TestDataShardLossMatchesBatchLR covers the Criteo path, including the
// min-max normalization that the two tiers apply at different points
// (post-staging streaming pass vs pre-staging in-place pass).
func TestDataShardLossMatchesBatchLR(t *testing.T) {
	clB, jobB := testLRJob(t, 4, Spec{MaxSteps: 40})
	clS, jobS := testLRJobShard(t, 4, Spec{MaxSteps: 40})
	assertLossParity(t, clB, jobB, clS, jobS)
}

// noViewModel wraps a real model but hides its view interface.
type noViewModel struct{ model.Model }

func (m noViewModel) Clone() model.Model { return noViewModel{m.Model.Clone()} }

func TestDataValidation(t *testing.T) {
	cl, job := testPMFJob(t, 2, Spec{MaxSteps: 1})
	job.Spec.Data = "columnar"
	if _, err := Run(cl, job); !errors.Is(err, ErrUnknownData) {
		t.Fatalf("unknown data tier: got %v, want ErrUnknownData", err)
	}

	cl2, job2 := testPMFJobShard(t, 2, Spec{MaxSteps: 1})
	job2.Model = noViewModel{job2.Model}
	if _, err := Run(cl2, job2); !errors.Is(err, ErrModelNoView) {
		t.Fatalf("non-view model on shard tier: got %v, want ErrModelNoView", err)
	}
}

// TestDataShardMissingManifest: a shard job against a bucket staged
// only with batch objects fails fast at setup.
func TestDataShardMissingManifest(t *testing.T) {
	cl, job := testPMFJob(t, 2, Spec{MaxSteps: 1})
	job.Spec.Data = DataShard
	if _, err := Run(cl, job); err == nil {
		t.Fatal("shard job without a staged manifest must fail")
	}
}

// TestDataShardManifestMismatch: a stale NumBatches in the job spec is
// rejected against the staged manifest.
func TestDataShardManifestMismatch(t *testing.T) {
	cl, job := testPMFJobShard(t, 2, Spec{MaxSteps: 1})
	job.NumBatches--
	if _, err := Run(cl, job); err == nil {
		t.Fatal("manifest/job batch-count mismatch must fail")
	}
}

// TestDataShardDeterminism: two identical shard-tier runs are
// byte-identical in steps, times and losses (mirrors TestDeterminism).
func TestDataShardDeterminism(t *testing.T) {
	run := func() *Result {
		cl, job := testPMFJobShard(t, 4, Spec{TargetLoss: 0.85, MaxSteps: 300})
		res, err := Run(cl, job)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Steps != b.Steps || a.ExecTime != b.ExecTime || a.FinalLoss != b.FinalLoss {
		t.Fatalf("non-deterministic: (%d, %v, %v) vs (%d, %v, %v)",
			a.Steps, a.ExecTime, a.FinalLoss, b.Steps, b.ExecTime, b.FinalLoss)
	}
	for i := range a.History {
		if a.History[i] != b.History[i] {
			t.Fatalf("history diverges at step %d", i+1)
		}
	}
}

// TestDataShardStepAllocsBounded extends the PR 5 allocation guard to
// the shard tier: the zero-copy fetch path must not regress the
// steady-state step budget (the view path removes the per-fetch decode
// the batch cache amortized, so the same bound applies).
func TestDataShardStepAllocsBounded(t *testing.T) {
	mallocs := func(steps int) float64 {
		cl, job := testPMFJobShard(t, 4, Spec{MaxSteps: steps})
		return runMallocs(t, cl, job)
	}
	mallocs(10) // warm pools, caches and lazy scratch
	short := mallocs(40)
	long := mallocs(120)
	marginal := (long - short) / 80
	t.Logf("marginal allocations per step (shard tier): %.1f", marginal)
	if marginal > 250 {
		t.Fatalf("shard-tier steady-state step allocates %.1f per step, want <= 250", marginal)
	}
}
