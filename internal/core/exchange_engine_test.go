package core

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"reflect"
	"testing"
	"time"

	"mlless/internal/consistency"
	"mlless/internal/exchange"
	"mlless/internal/faults"
	"mlless/internal/sched"
)

// exchangeSpec returns a BSP spec running the named exchange strategy.
func exchangeSpec(kind string, fanout, maxSteps int) Spec {
	return Spec{MaxSteps: maxSteps, Exchange: kind, TreeFanout: fanout}
}

func TestExchangeDifferential(t *testing.T) {
	// All three strategies move the same per-step updates, so under BSP
	// with no faults they train the same model: the loss histories agree
	// to floating-point reassociation (the collectives fold peer updates
	// in a different order than the parameter server's per-peer streams).
	const steps = 60
	run := func(kind string, fanout int) *Result {
		cl, job := testPMFJob(t, 5, exchangeSpec(kind, fanout, steps))
		res, err := Run(cl, job)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	ps := run(exchange.KindParamServer, 0)
	dflt := run("", 0)
	scatter := run(exchange.KindScatter, 0)
	tree := run(exchange.KindTree, 2)

	// The empty kind defaults to the parameter server, bit for bit.
	if !reflect.DeepEqual(ps.History, dflt.History) {
		t.Error("default exchange diverges from explicit ps")
	}
	for _, c := range []struct {
		name string
		res  *Result
	}{{"scatter", scatter}, {"tree", tree}} {
		if len(c.res.History) != len(ps.History) {
			t.Fatalf("%s ran %d steps, ps ran %d", c.name, len(c.res.History), len(ps.History))
		}
		for i := range ps.History {
			a, b := ps.History[i].RawLoss, c.res.History[i].RawLoss
			if math.Abs(a-b) > 1e-9*math.Max(1, math.Abs(a)) {
				t.Fatalf("%s loss diverges at step %d: ps %v vs %v", c.name, i+1, a, b)
			}
			if ps.History[i].UpdateBytes != c.res.History[i].UpdateBytes {
				t.Fatalf("%s update bytes diverge at step %d", c.name, i+1)
			}
		}
	}
}

func TestScatterMatchesWideTreeAtEngine(t *testing.T) {
	// A tree whose fan-out covers the whole pool folds rank 0's update
	// first and then ranks 1..P-1 in order — the same per-coordinate fold
	// order as scatter-reduce — so the two runs are bit-identical in
	// everything the model sees (timing differs: the patterns move
	// different bytes).
	const steps = 40
	run := func(kind string, fanout int) *Result {
		cl, job := testPMFJob(t, 5, exchangeSpec(kind, fanout, steps))
		res, err := Run(cl, job)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	scatter := run(exchange.KindScatter, 0)
	tree := run(exchange.KindTree, 5)
	if len(scatter.History) != len(tree.History) {
		t.Fatalf("step counts differ: %d vs %d", len(scatter.History), len(tree.History))
	}
	for i := range scatter.History {
		s, w := scatter.History[i], tree.History[i]
		if s.RawLoss != w.RawLoss || s.Loss != w.Loss || s.UpdateBytes != w.UpdateBytes {
			t.Fatalf("scatter and wide tree diverge at step %d: (%v, %v, %d) vs (%v, %v, %d)",
				i+1, s.RawLoss, s.Loss, s.UpdateBytes, w.RawLoss, w.Loss, w.UpdateBytes)
		}
	}
}

func TestExchangeDriverDifferential(t *testing.T) {
	// The collective reduction rounds are driver phases like any other:
	// for each strategy, fault mix and seed, the parallel driver must
	// reproduce the sequential driver's traces, histories and bills byte
	// for byte.
	strategies := []struct {
		name string
		spec Spec
	}{
		{"scatter", exchangeSpec(exchange.KindScatter, 0, 40)},
		{"tree-2", exchangeSpec(exchange.KindTree, 2, 40)},
	}
	mixes := []struct {
		name   string
		faults func(seed uint64) faults.Spec
	}{
		{"no-faults", func(uint64) faults.Spec { return faults.Spec{} }},
		{"chaos", chaosSpec},
	}
	for _, strat := range strategies {
		for _, mix := range mixes {
			t.Run(fmt.Sprintf("%s/%s", strat.name, mix.name), func(t *testing.T) {
				build := func(t *testing.T) (*Cluster, Job) {
					cl, job := testPMFJob(t, 4, strat.spec)
					job.Spec.Faults = mix.faults(3)
					return cl, job
				}
				resSeq, traceSeq := runWithDriver(t, build, DriverSeq)
				resPar, tracePar := runWithDriver(t, build, DriverPar)
				if !bytes.Equal(traceSeq, tracePar) {
					t.Error("trace files differ between seq and par drivers")
				}
				if !reflect.DeepEqual(resSeq.History, resPar.History) {
					t.Error("loss histories differ between seq and par drivers")
				}
				if resSeq.Cost.Total != resPar.Cost.Total {
					t.Errorf("bills differ: seq $%v, par $%v", resSeq.Cost.Total, resPar.Cost.Total)
				}
			})
		}
	}
}

func TestCollectiveSurvivesFaults(t *testing.T) {
	// Containers die mid-reduction and the KV/broker layers fault; the
	// strategies must recover deterministically and leave no stale state.
	for _, kind := range []string{exchange.KindScatter, exchange.KindTree} {
		t.Run(kind, func(t *testing.T) {
			run := func() (*Cluster, *Result) {
				cl, job := testPMFJob(t, 4, exchangeSpec(kind, 0, 120))
				job.Spec.Faults = chaosSpec(7)
				job.Spec.Faults.ReclaimProb = 0.9
				job.Spec.Faults.ReclaimMeanLife = 3 * time.Second
				res, err := Run(cl, job)
				if err != nil {
					t.Fatal(err)
				}
				return cl, res
			}
			cl, a := run()
			_, b := run()
			if a.Steps == 0 {
				t.Fatal("no steps completed")
			}
			if a.Recovery.WorkerDeaths == 0 {
				t.Fatalf("no container deaths under heavy reclamation: %+v", a.Faults)
			}
			if math.IsNaN(a.FinalLoss) || math.IsInf(a.FinalLoss, 0) {
				t.Fatalf("non-finite final loss %v", a.FinalLoss)
			}
			if a.Steps != b.Steps || a.ExecTime != b.ExecTime || a.FinalLoss != b.FinalLoss ||
				a.Cost.Total != b.Cost.Total {
				t.Fatalf("non-deterministic under faults: (%d, %v, %v, %v) vs (%d, %v, %v, %v)",
					a.Steps, a.ExecTime, a.FinalLoss, a.Cost.Total,
					b.Steps, b.ExecTime, b.FinalLoss, b.Cost.Total)
			}
			// Checkpoints and control keys still ride the KV tier; a
			// completed run leaves it empty.
			if n := cl.Redis.Len(); n != 0 {
				t.Fatalf("%d stale KV keys after a faulted collective run", n)
			}
		})
	}
}

func TestCollectiveComposesWithISPAndAutoTune(t *testing.T) {
	// The significance filter decides what enters the reduction and the
	// auto-tuner shrinks the pool between steps; both must compose with a
	// collective exchange (ranks are positions in the live pool, not ids).
	cl, job := testPMFJob(t, 5, Spec{
		Sync: consistency.ISP, Significance: 0.5,
		MaxSteps: 400, AutoTune: true,
		Exchange: exchange.KindTree,
		Sched:    sched.Config{Epoch: 300 * time.Millisecond, S: 0.1},
	})
	res, err := Run(cl, job)
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps == 0 {
		t.Fatal("no steps completed")
	}
	if math.IsNaN(res.FinalLoss) || math.IsInf(res.FinalLoss, 0) {
		t.Fatalf("non-finite final loss %v", res.FinalLoss)
	}
	if len(res.Removals) == 0 {
		t.Fatal("auto-tuner removed no workers; the composition went unexercised")
	}
	if n := cl.Redis.Len(); n != 0 {
		t.Fatalf("%d stale KV keys after an auto-tuned collective run", n)
	}
}

func TestExchangeValidationErrors(t *testing.T) {
	build := func(mod func(*Spec)) (*Cluster, Job) {
		cl, job := testPMFJob(t, 2, Spec{MaxSteps: 2})
		mod(&job.Spec)
		return cl, job
	}
	cases := []struct {
		name string
		mod  func(*Spec)
		want error
	}{
		{"unknown kind", func(s *Spec) { s.Exchange = "gossip" }, exchange.ErrUnknownKind},
		{"bad fanout", func(s *Spec) { s.Exchange = exchange.KindTree; s.TreeFanout = 1 }, exchange.ErrBadFanout},
		{"async", func(s *Spec) { s.Exchange = exchange.KindScatter; s.Sync = consistency.Async }, ErrExchangeAsync},
		{"stale", func(s *Spec) { s.Exchange = exchange.KindTree; s.Staleness = 3 }, ErrExchangeStale},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			cl, job := build(c.mod)
			if _, err := Run(cl, job); !errors.Is(err, c.want) {
				t.Fatalf("got %v, want %v", err, c.want)
			}
		})
	}
	t.Run("sharded kv", func(t *testing.T) {
		cl := NewClusterWithShards(2)
		_, job := build(func(s *Spec) { s.Exchange = exchange.KindScatter })
		if _, err := Run(cl, job); !errors.Is(err, ErrExchangeShards) {
			t.Fatalf("got %v, want ErrExchangeShards", err)
		}
	})
}
