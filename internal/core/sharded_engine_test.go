package core

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"

	"mlless/internal/dataset"
	"mlless/internal/model"
	"mlless/internal/optimizer"
	"mlless/internal/trace"
	"mlless/internal/vclock"
)

// testShardedPMFJob is testPMFJob on a cluster whose KV tier has the
// given shard count.
func testShardedPMFJob(t testing.TB, workers, shards int, spec Spec) (*Cluster, Job) {
	t.Helper()
	cl := NewClusterWithShards(shards)
	cfg := dataset.MovieLensConfig{Users: 150, Items: 600, Ratings: 30000, Rank: 8, NoiseStd: 0.6, Seed: 21}
	ds := dataset.GenerateMovieLens(cfg)
	var clk vclock.Clock
	n := dataset.Stage(ds, cl.COS, &clk, "ml", 500, 2)
	spec.Workers = workers
	return cl, Job{
		Spec:       spec,
		Model:      model.NewPMF(cfg.Users, cfg.Items, cfg.Rank, ds.RatingMean, 0.02, 31),
		Optimizer:  optimizer.NewNesterov(optimizer.Constant(1.0), 0.9),
		Bucket:     "ml",
		NumBatches: n,
		BatchSize:  500,
	}
}

// TestShardedTraceDeterministicUnderFaults extends the §7 determinism
// guarantee to the sharded exchange tier: identically-seeded faulted
// runs over 4 shards must produce byte-identical trace files.
func TestShardedTraceDeterministicUnderFaults(t *testing.T) {
	run := func() []byte {
		cl, job := testShardedPMFJob(t, 4, 4, Spec{MaxSteps: 80})
		job.Spec.Faults = chaosSpec(3)
		job.Trace = trace.New()
		if _, err := Run(cl, job); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := trace.WriteChrome(&buf, job.Trace.Events()); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if a, b := run(), run(); !bytes.Equal(a, b) {
		t.Fatal("sharded trace files differ across identically-seeded runs")
	}
}

// TestShardedBillsOneVMPerShard pins the $ side of the shard sweep: a
// 1-shard cluster bills the paper's single M1.2x16, an N-shard cluster
// bills N of them.
func TestShardedBillsOneVMPerShard(t *testing.T) {
	vmNames := func(shards int) map[string]bool {
		cl, job := testShardedPMFJob(t, 4, shards, Spec{MaxSteps: 10})
		res, err := Run(cl, job)
		if err != nil {
			t.Fatal(err)
		}
		names := make(map[string]bool)
		for _, c := range res.Cost.Components {
			if c.Kind == "vm" && strings.HasPrefix(c.Name, "redis-vm") {
				names[c.Name] = true
			}
		}
		return names
	}

	single := vmNames(1)
	if len(single) != 1 || !single["redis-vm-m1.2x16"] {
		t.Fatalf("1-shard run bills %v, want the single redis-vm-m1.2x16", single)
	}
	sharded := vmNames(4)
	if len(sharded) != 4 {
		t.Fatalf("4-shard run bills %d redis VMs: %v", len(sharded), sharded)
	}
	for i := 0; i < 4; i++ {
		if !sharded[fmt.Sprintf("redis-vm-m1.2x16-s%d", i)] {
			t.Fatalf("4-shard run misses the shard-%d VM line: %v", i, sharded)
		}
	}
}

// TestShardingReducesPullTime checks the exchange-wall claim end to
// end: fanning the per-step pull out over more shards shrinks its mean
// time, and the curve flattens rather than inverting.
func TestShardingReducesPullTime(t *testing.T) {
	meanPull := func(shards int) time.Duration {
		cl, job := testShardedPMFJob(t, 6, shards, Spec{MaxSteps: 40})
		job.Trace = trace.New()
		res, err := Run(cl, job)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.StepPhases) == 0 {
			t.Fatal("traced run produced no StepPhases")
		}
		var total time.Duration
		for _, p := range res.StepPhases {
			total += p.Pull
		}
		return total / time.Duration(len(res.StepPhases))
	}

	p1, p4, p8 := meanPull(1), meanPull(4), meanPull(8)
	if p4 >= p1 {
		t.Fatalf("4 shards did not shrink the pull: %v -> %v", p1, p4)
	}
	// Flattening: past the payload/latency crossover extra shards may
	// stop helping, but they must never make the pull slower than the
	// 4-shard point by more than jitter.
	if p8 > p4+p4/10 {
		t.Fatalf("8 shards slowed the pull: p1=%v p4=%v p8=%v", p1, p4, p8)
	}
	t.Logf("mean pull: 1 shard %v, 4 shards %v, 8 shards %v", p1, p4, p8)
}
