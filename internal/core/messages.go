package core

import (
	"encoding/binary"
	"fmt"
	"math"
)

// lossReport is the control message each worker sends the supervisor at
// every step (§3.1: the supervisor "collect[s] and aggregate[s]
// statistics").
type lossReport struct {
	Worker      uint32
	Step        uint32
	Loss        float64
	UpdateBytes uint32
}

const lossReportSize = 4 + 4 + 8 + 4

func (r lossReport) encode() []byte {
	buf := make([]byte, lossReportSize)
	binary.LittleEndian.PutUint32(buf[0:], r.Worker)
	binary.LittleEndian.PutUint32(buf[4:], r.Step)
	binary.LittleEndian.PutUint64(buf[8:], math.Float64bits(r.Loss))
	binary.LittleEndian.PutUint32(buf[16:], r.UpdateBytes)
	return buf
}

func decodeLossReport(buf []byte) (lossReport, error) {
	if len(buf) != lossReportSize {
		return lossReport{}, fmt.Errorf("core: loss report of %d bytes, want %d", len(buf), lossReportSize)
	}
	return lossReport{
		Worker:      binary.LittleEndian.Uint32(buf[0:]),
		Step:        binary.LittleEndian.Uint32(buf[4:]),
		Loss:        math.Float64frombits(binary.LittleEndian.Uint64(buf[8:])),
		UpdateBytes: binary.LittleEndian.Uint32(buf[16:]),
	}, nil
}

// announce is the update-availability message workers fan out to each
// other through the messaging service (§3.2: "The availability of a
// local update is announced to the rest of workers through the messaging
// service").
type announce struct {
	Worker uint32
	Step   uint32
	Bytes  uint32
}

const announceSize = 4 + 4 + 4

func (a announce) encode() []byte {
	buf := make([]byte, announceSize)
	binary.LittleEndian.PutUint32(buf[0:], a.Worker)
	binary.LittleEndian.PutUint32(buf[4:], a.Step)
	binary.LittleEndian.PutUint32(buf[8:], a.Bytes)
	return buf
}

func decodeAnnounce(buf []byte) (announce, error) {
	if len(buf) != announceSize {
		return announce{}, fmt.Errorf("core: announce of %d bytes, want %d", len(buf), announceSize)
	}
	return announce{
		Worker: binary.LittleEndian.Uint32(buf[0:]),
		Step:   binary.LittleEndian.Uint32(buf[4:]),
		Bytes:  binary.LittleEndian.Uint32(buf[8:]),
	}, nil
}
