package core

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// The simulation driver: how the engine executes the per-worker state
// machines of one lookahead group (see lookahead.go for how groups are
// chosen). Both schedules hand the driver batches of workers whose
// virtual-time intervals provably cannot interact within the phase, so
// the driver is free to run them in any order — sequentially or on a
// goroutine pool — and the run's traces, loss histories and bills come
// out byte-identical either way. Determinism therefore never depends on
// the driver; the sequential driver exists as an escape hatch and as
// the baseline the differential tests compare against.

// Driver names accepted by Spec.Driver.
const (
	// DriverSeq runs each group's workers one at a time on the calling
	// goroutine, in the group's (clock, id) order.
	DriverSeq = "seq"
	// DriverPar (the default) runs each group's workers on a goroutine
	// pool bounded by GOMAXPROCS.
	DriverPar = "par"
)

// ErrUnknownDriver reports a Spec.Driver value that names no driver.
var ErrUnknownDriver = errors.New(`core: unknown driver (want "seq" or "par")`)

// driver executes one phase — fn applied to every worker of a lookahead
// group. Implementations must run fn exactly once per worker, must not
// stop at the first failure (a later worker's error is often the cause
// of an earlier one's symptom under fault injection), and must join the
// collected errors in group order so multi-worker failures render
// identically whatever the execution interleaving was.
type driver interface {
	// Name returns the Spec.Driver value that selects this driver.
	Name() string
	// Phase runs fn for every worker in group and joins their errors in
	// group order.
	Phase(group []*Worker, fn func(*Worker) error) error
}

// driverFor resolves a Spec.Driver value. The empty string selects the
// default (parallel) driver.
func driverFor(name string) (driver, error) {
	switch name {
	case "", DriverPar:
		return parDriver{}, nil
	case DriverSeq:
		return seqDriver{}, nil
	}
	return nil, fmt.Errorf("%w: %q", ErrUnknownDriver, name)
}

// seqDriver runs a group's workers one at a time in group order.
type seqDriver struct{}

// Name implements driver.
func (seqDriver) Name() string { return DriverSeq }

// Phase implements driver.
func (seqDriver) Phase(group []*Worker, fn func(*Worker) error) error {
	errs := make([]error, len(group))
	for i, w := range group {
		errs[i] = fn(w)
	}
	return errors.Join(errs...)
}

// parDriver runs a group's workers on a goroutine pool. Workers within
// a group are independent (the lookahead partition guarantees it) and
// the shared services are thread-safe, so the pool only changes
// wall-clock time, never results.
type parDriver struct{}

// Name implements driver.
func (parDriver) Name() string { return DriverPar }

// Phase implements driver. The pool is bounded by GOMAXPROCS but always
// keeps at least two goroutines for a multi-worker group, so the race
// detector observes cross-worker interleavings even on a single-CPU
// host.
func (parDriver) Phase(group []*Worker, fn func(*Worker) error) error {
	n := len(group)
	if n == 0 {
		return nil
	}
	if n == 1 {
		return fn(group[0])
	}
	pool := runtime.GOMAXPROCS(0)
	if pool < 2 {
		pool = 2
	}
	if pool > n {
		pool = n
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(pool)
	for p := 0; p < pool; p++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = fn(group[i])
			}
		}()
	}
	wg.Wait()
	return errors.Join(errs...)
}
