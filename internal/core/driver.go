package core

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// The simulation driver: how the engine executes the per-worker state
// machines of one lookahead group (see lookahead.go for how groups are
// chosen). Both schedules hand the driver batches of workers whose
// virtual-time intervals provably cannot interact within the phase, so
// the driver is free to run them in any order — sequentially or on a
// goroutine pool — and the run's traces, loss histories and bills come
// out byte-identical either way. Determinism therefore never depends on
// the driver; the sequential driver exists as an escape hatch and as
// the baseline the differential tests compare against.

// Driver names accepted by Spec.Driver.
const (
	// DriverSeq runs each group's workers one at a time on the calling
	// goroutine, in the group's (clock, id) order.
	DriverSeq = "seq"
	// DriverPar (the default) runs each group's workers on a persistent
	// goroutine pool sized min(GOMAXPROCS, len(group)).
	DriverPar = "par"
)

// ErrUnknownDriver reports a Spec.Driver value that names no driver.
var ErrUnknownDriver = errors.New(`core: unknown driver (want "seq" or "par")`)

// driver executes one phase — fn applied to every worker of a lookahead
// group. Implementations must run fn exactly once per worker, must not
// stop at the first failure (a later worker's error is often the cause
// of an earlier one's symptom under fault injection), and must join the
// collected errors in group order so multi-worker failures render
// identically whatever the execution interleaving was. Phase is never
// called concurrently on one driver; Close releases pool resources
// once the run is over.
type driver interface {
	// Name returns the Spec.Driver value that selects this driver.
	Name() string
	// Phase runs fn for every worker in group and joins their errors in
	// group order.
	Phase(group []*Worker, fn func(*Worker) error) error
	// Close retires the driver; Phase must not be called afterwards.
	Close()
}

// driverFor resolves a Spec.Driver value. The empty string selects the
// default (parallel) driver.
func driverFor(name string) (driver, error) {
	switch name {
	case "", DriverPar:
		return &parDriver{}, nil
	case DriverSeq:
		return seqDriver{}, nil
	}
	return nil, fmt.Errorf("%w: %q", ErrUnknownDriver, name)
}

// seqDriver runs a group's workers one at a time in group order.
type seqDriver struct{}

// Name implements driver.
func (seqDriver) Name() string { return DriverSeq }

// Phase implements driver.
func (seqDriver) Phase(group []*Worker, fn func(*Worker) error) error {
	errs := make([]error, len(group))
	for i, w := range group {
		errs[i] = fn(w)
	}
	return errors.Join(errs...)
}

// Close implements driver.
func (seqDriver) Close() {}

// parDriver runs a group's workers on a persistent goroutine pool.
// Workers within a group are independent (the lookahead partition
// guarantees it) and the shared services are thread-safe, so the pool
// only changes wall-clock time, never results.
//
// The pool is lazily grown and persists across Phase calls, so the
// steady-state step spawns no goroutines and allocates nothing: each
// phase hands the resident helpers one reusable job descriptor and the
// calling goroutine steals work alongside them. A phase engages
// min(GOMAXPROCS, len(group)) executors — narrow cohorts
// (post-reclamation stragglers) stop paying idle-helper wakeups.
type parDriver struct {
	spawned int            // resident helper goroutines
	work    chan *phaseJob // helpers block here between phases
	job     phaseJob       // reusable descriptor (Phase is serialized)
}

// phaseJob is one phase's shared work-stealing state.
type phaseJob struct {
	group []*Worker
	fn    func(*Worker) error
	errs  []error
	next  atomic.Int64
	wg    sync.WaitGroup
}

// run steals workers until the group is drained.
func (j *phaseJob) run() {
	n := len(j.group)
	for {
		i := int(j.next.Add(1)) - 1
		if i >= n {
			return
		}
		j.errs[i] = j.fn(j.group[i])
	}
}

// Name implements driver.
func (*parDriver) Name() string { return DriverPar }

// Phase implements driver. The executor count is min(GOMAXPROCS,
// len(group)), but always at least two for a multi-worker group under
// the race detector, so it observes cross-worker interleavings even on
// a single-CPU host.
func (d *parDriver) Phase(group []*Worker, fn func(*Worker) error) error {
	n := len(group)
	if n == 0 {
		return nil
	}
	if n == 1 {
		return fn(group[0])
	}
	par := runtime.GOMAXPROCS(0)
	if raceEnabled && par < 2 {
		par = 2
	}
	if par > n {
		par = n
	}

	j := &d.job
	j.group, j.fn = group, fn
	if cap(j.errs) < n {
		j.errs = make([]error, n)
	}
	j.errs = j.errs[:n]
	for i := range j.errs {
		j.errs[i] = nil
	}
	j.next.Store(0)

	helpers := par - 1
	d.ensure(helpers)
	j.wg.Add(helpers)
	for i := 0; i < helpers; i++ {
		d.work <- j
	}
	j.run()
	j.wg.Wait()

	err := errors.Join(j.errs...)
	j.group, j.fn = nil, nil
	return err
}

// ensure grows the resident helper pool to at least n goroutines.
func (d *parDriver) ensure(n int) {
	if d.spawned >= n {
		return
	}
	if d.work == nil {
		d.work = make(chan *phaseJob, runtime.GOMAXPROCS(0)+2)
	}
	for ; d.spawned < n; d.spawned++ {
		go func() {
			for j := range d.work {
				j.run()
				j.wg.Done()
			}
		}()
	}
}

// Close implements driver: resident helpers exit. Phase must not be
// called after Close.
func (d *parDriver) Close() {
	if d.work != nil {
		close(d.work)
		d.work = nil
		d.spawned = 0
	}
}
