package core

import (
	"testing"

	"mlless/internal/trace"
)

// benchmarkPMFRun measures a short PMF training run; the Untraced/Traced
// pair guards the acceptance criterion that disabled tracing adds no
// work to the engine hot path (compare ns/op and allocs/op):
//
//	go test ./internal/core -bench=BenchmarkRun -benchmem
func benchmarkPMFRun(b *testing.B, traced bool) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cl, job := testPMFJob(b, 4, Spec{MaxSteps: 30})
		if traced {
			job.Trace = trace.New()
		}
		if _, err := Run(cl, job); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunUntraced(b *testing.B) { benchmarkPMFRun(b, false) }

func BenchmarkRunTraced(b *testing.B) { benchmarkPMFRun(b, true) }
