package core

import (
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// exportedResult is the stable JSON shape of a Result. Durations are
// exported in (fractional) seconds: the natural unit for plotting and
// for comparing against the paper's axes.
type exportedResult struct {
	Converged  bool              `json:"converged"`
	Diverged   bool              `json:"diverged"`
	ExecTime   float64           `json:"exec_time_s"`
	Steps      int               `json:"steps"`
	FinalLoss  float64           `json:"final_loss"`
	TotalCost  float64           `json:"total_cost_usd"`
	Bytes      int64             `json:"update_bytes_total"`
	Relaunches int               `json:"relaunches"`
	Recovery   *exportedRecovery `json:"recovery,omitempty"`
	History    []exportedPoint   `json:"history"`
	StepPhases []exportedPhases  `json:"step_phases,omitempty"`
	Removals   []exportedRemoval `json:"removals,omitempty"`
	Bill       []exportedCharge  `json:"bill"`
}

type exportedRecovery struct {
	InvokeRetries int     `json:"invoke_retries"`
	WorkerDeaths  int     `json:"worker_deaths"`
	RestartTime   float64 `json:"restart_time_s"`
	RecomputeTime float64 `json:"recompute_time_s"`
}

// exportedPhases is one step's time decomposition (present only for
// traced runs; see Result.StepPhases).
type exportedPhases struct {
	Step    int     `json:"step"`
	Merge   float64 `json:"merge_s,omitempty"`
	Fetch   float64 `json:"fetch_s"`
	Compute float64 `json:"compute_s"`
	Publish float64 `json:"publish_s"`
	Pull    float64 `json:"pull_s"`
	Barrier float64 `json:"barrier_s"`
}

type exportedPoint struct {
	Step        int     `json:"step"`
	Time        float64 `json:"time_s"`
	Loss        float64 `json:"loss"`
	RawLoss     float64 `json:"raw_loss"`
	Workers     int     `json:"workers"`
	UpdateBytes int64   `json:"update_bytes"`
}

type exportedRemoval struct {
	Step        int     `json:"step"`
	Time        float64 `json:"time_s"`
	Worker      int     `json:"worker"`
	WorkersLeft int     `json:"workers_left"`
}

type exportedCharge struct {
	Name    string  `json:"name"`
	Kind    string  `json:"kind"`
	Seconds float64 `json:"billed_s"`
	Dollars float64 `json:"usd"`
}

// WriteJSON streams the result as a single JSON document: the loss
// trace, the eviction log and the itemized bill, with durations in
// seconds. It is the machine-readable companion of Cost.String() and
// the Fig 6 series tables.
func (r *Result) WriteJSON(w io.Writer) error {
	secs := func(d time.Duration) float64 { return d.Seconds() }
	out := exportedResult{
		Converged:  r.Converged,
		Diverged:   r.Diverged,
		ExecTime:   secs(r.ExecTime),
		Steps:      r.Steps,
		FinalLoss:  r.FinalLoss,
		TotalCost:  r.Cost.Total,
		Bytes:      r.TotalUpdateBytes,
		Relaunches: r.Relaunches,
	}
	if r.Recovery != (Recovery{}) {
		out.Recovery = &exportedRecovery{
			InvokeRetries: r.Recovery.InvokeRetries,
			WorkerDeaths:  r.Recovery.WorkerDeaths,
			RestartTime:   secs(r.Recovery.RestartTime),
			RecomputeTime: secs(r.Recovery.RecomputeTime),
		}
	}
	out.History = make([]exportedPoint, len(r.History))
	for i, p := range r.History {
		out.History[i] = exportedPoint{
			Step: p.Step, Time: secs(p.Time), Loss: p.Loss, RawLoss: p.RawLoss,
			Workers: p.Workers, UpdateBytes: p.UpdateBytes,
		}
	}
	for _, sp := range r.StepPhases {
		out.StepPhases = append(out.StepPhases, exportedPhases{
			Step: sp.Step, Merge: secs(sp.Merge), Fetch: secs(sp.Fetch),
			Compute: secs(sp.Compute), Publish: secs(sp.Publish),
			Pull: secs(sp.Pull), Barrier: secs(sp.Barrier),
		})
	}
	for _, rm := range r.Removals {
		out.Removals = append(out.Removals, exportedRemoval{
			Step: rm.Step, Time: secs(rm.Time), Worker: rm.Worker, WorkersLeft: rm.WorkersLeft,
		})
	}
	for _, c := range r.Cost.Components {
		out.Bill = append(out.Bill, exportedCharge{
			Name: c.Name, Kind: c.Kind, Seconds: secs(c.Duration), Dollars: c.Dollars,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		return fmt.Errorf("core: export result: %w", err)
	}
	return nil
}
