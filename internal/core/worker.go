package core

import (
	"fmt"
	"time"

	"mlless/internal/consistency"
	"mlless/internal/dataset"
	"mlless/internal/exchange"
	"mlless/internal/faas"
	"mlless/internal/model"
	"mlless/internal/optimizer"
	"mlless/internal/shard"
	"mlless/internal/sparse"
	"mlless/internal/trace"
)

// Worker is one serverless worker: its function instance, its local
// model replica, optimizer and significance filter (§3.1).
type Worker struct {
	id     int
	inst   *faas.Instance
	model  model.Model
	vmodel model.ViewModel // model's view interface; nil in batch mode
	opt    optimizer.Optimizer
	filter *consistency.Filter

	lastLoss     float64
	pendingMerge string // eviction-replica key to average in next step
	alive        bool
	gen          int // relaunch/recovery generation; distinguishes billing labels

	// Per-step scratch, reused across passes so the steady-state loop
	// allocates nothing (DESIGN.md §10). ctx is the state-machine pass
	// context; pull carries the lock-step pull half into the exchange
	// strategy; pullKeys/pullVals back the async pull path. Within a
	// phase exactly one driver goroutine runs this worker's states (see
	// driver.go), so the scratch needs no locking.
	ctx       stepCtx
	pull      exchange.PullCtx
	pullKeys  []string
	pullVals  [][]byte
	announced map[string]bool
	// limitErr is the async commit phase's per-worker execution-cap
	// verdict, evaluated in parallel and surfaced in (clock, id) order.
	limitErr error
}

// stepState enumerates the per-step state machine every worker runs:
// recover → merge → fetch → compute → publish → pull. The lock-step
// schedules split one pass into a compute half (recover..publish) and a
// pull half gated by the barrier; the async schedule runs pull at the
// head of the next pass instead, driven by announcements.
type stepState int

const (
	stateRecover stepState = iota
	stateMerge
	stateFetch
	stateCompute
	statePublish
	statePull
)

// stepCtx carries one worker's pass through the state machine: the step
// being executed, the recovery policy of the leading recover state, the
// pull window, and the intermediate values the states hand each other.
type stepCtx struct {
	step    int
	pActive int

	// rejoinAt is where a worker recovered at the head of the pass
	// resumes (the pool's last barrier under lock-step; zero means "where
	// recovery left it"). relaunch additionally runs the
	// execution-limit checkpoint/re-launch check.
	rejoinAt time.Duration
	relaunch bool

	// Pull window (statePull): peer updates in (fromStep, toStep] from
	// every worker in active. readyAt is the pool-wide instant at which
	// every reduction-round write is visible (collective exchanges only).
	fromStep, toStep int
	active           []*Worker
	readyAt          time.Duration

	segStart     time.Duration
	batch        []dataset.Sample
	view         shard.BatchView // shard-tier batch; zero value in batch mode
	loss         float64
	upd          *sparse.Vector
	computeStart time.Duration
}

// runStates drives a worker through the given states in order.
func (e *engine) runStates(w *Worker, c *stepCtx, states ...stepState) error {
	for _, s := range states {
		var err error
		switch s {
		case stateRecover:
			err = e.stepRecover(w, c)
		case stateMerge:
			err = e.stepMerge(w, c)
		case stateFetch:
			err = e.stepFetch(w, c)
		case stateCompute:
			err = e.stepCompute(w, c)
		case statePublish:
			err = e.stepPublish(w, c)
		case statePull:
			err = e.stepPull(w, c)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// stepRecover replaces a worker whose container died between passes, so
// no work is charged to a dead instance. Under lock-step the replacement
// rejoins at the barrier the pool last crossed (c.rejoinAt); a step
// output already published is durable, so nothing is redone. When
// c.relaunch is set it also checkpoints and re-launches a worker
// approaching the platform's execution limit.
func (e *engine) stepRecover(w *Worker, c *stepCtx) error {
	if dead(w.inst) {
		if err := e.recoverWorker(w); err != nil {
			return err
		}
		w.inst.Clock.AdvanceTo(c.rejoinAt)
	}
	if c.relaunch {
		if err := e.maybeRelaunch(w); err != nil {
			return err
		}
	}
	c.segStart = w.inst.Clock.Now()
	return nil
}

// stepMerge reintegrates an evicted peer's replica (§4.2, eviction
// policy).
func (e *engine) stepMerge(w *Worker, c *stepCtx) error {
	if w.pendingMerge == "" {
		return nil
	}
	clk := &w.inst.Clock
	mergeStart := clk.Now()
	if buf, ok := e.cl.Redis.Get(clk, w.pendingMerge); ok {
		replica, err := sparse.DecodeDense(buf)
		if err != nil {
			return fmt.Errorf("core: worker %d: decode eviction replica: %w", w.id, err)
		}
		w.model.Params().Average(replica)
		e.chargeCompute(w, 2*float64(len(replica)))
	}
	w.pendingMerge = ""
	if e.tr.Enabled() {
		e.tr.SpanOn(workerTrack(w.id), trace.CatEngine, "merge",
			mergeStart, clk.Now(), trace.Int("step", c.step))
	}
	return nil
}

// stepFetch pulls this step's mini-batch from object storage (§3.2).
func (e *engine) stepFetch(w *Worker, c *stepCtx) error {
	clk := &w.inst.Clock
	fetchStart := clk.Now()
	batchIdx := e.plan.BatchFor(w.id, c.step)
	if e.shards != nil {
		view, err := e.shards.Fetch(clk, batchIdx)
		if err != nil {
			return fmt.Errorf("core: worker %d step %d: %w", w.id, c.step, err)
		}
		c.view = view
	} else {
		batch, err := e.batches.Fetch(clk, batchIdx)
		if err != nil {
			return fmt.Errorf("core: worker %d step %d: %w", w.id, c.step, err)
		}
		c.batch = batch
	}
	if e.tr.Enabled() {
		e.tr.SpanOn(workerTrack(w.id), trace.CatEngine, "fetch",
			fetchStart, clk.Now(), trace.Int("step", c.step), trace.Int("batch", batchIdx))
	}
	return nil
}

// stepCompute runs the local loss and gradient (real math, virtual
// time), redoes the segment if the container died mid-compute, and
// applies the pool-averaged optimizer update to the local replica.
func (e *engine) stepCompute(w *Worker, c *stepCtx) error {
	clk := &w.inst.Clock
	c.computeStart = clk.Now()
	var grad *sparse.Vector
	if e.shards != nil {
		c.loss = w.vmodel.LossView(c.view)
		grad = w.vmodel.GradientView(c.view)
		e.chargeCompute(w, 1.5*w.model.GradientWork(c.view.Len()))
	} else {
		c.loss = w.model.Loss(c.batch)
		grad = w.model.Gradient(c.batch)
		e.chargeCompute(w, 1.5*w.model.GradientWork(len(c.batch)))
	}

	// The provider may have reclaimed the container mid-segment: the
	// work charged past the reclaim point died with it and is redone on
	// a replacement. The tail below (optimizer, filter, publish) is
	// treated as atomic — once the update is published the step's output
	// is durable, and a death there surfaces at the next phase boundary
	// with nothing left to redo.
	if err := e.redoSegmentOnDeath(w, c.segStart, fmt.Sprintf("step %d compute", c.step)); err != nil {
		return err
	}

	// Optimizer transform, averaged across the active pool: the global
	// update is the mean of local updates (§3.2, "local gradients are
	// averaged to obtain a global gradient update").
	u := w.opt.Step(c.step, grad)
	u.Scale(1 / float64(c.pActive))
	w.model.ApplyUpdate(u)
	e.chargeCompute(w, 2*float64(u.Len()))
	c.upd = u
	return nil
}

// stepPublish filters the update for significance, hands the significant
// part to the exchange strategy (the parameter server parks it in the KV
// store; collectives stage it for reduction), announces its availability
// and reports the loss.
func (e *engine) stepPublish(w *Worker, c *stepCtx) error {
	sig := w.filter.Add(c.step, c.upd, w.model.Params())
	e.chargeCompute(w, 2*float64(sig.Len()))
	clk := &w.inst.Clock
	publishStart := clk.Now()
	if e.tr.Enabled() {
		// The compute span covers gradient, optimizer and filter work —
		// and, on a reclaimed container, the recovery in between, which
		// the overlapping fault spans itemize.
		e.tr.SpanOn(workerTrack(w.id), trace.CatEngine, "compute",
			c.computeStart, publishStart, trace.Int("step", c.step))
	}
	// The payload and both control messages stage through one pooled
	// wire buffer: the exchange medium copies on write and the broker
	// copies on Publish, so the buffer is reusable the moment each call
	// returns. The filter owns sig until its next Add, which is after
	// the pull half — so a collective exchange may retain it as the
	// worker's own contribution to subtract at pull time.
	var ids []int
	if e.xchg.Collective() {
		w.pull.ActiveIDs = activeIDs(w.pull.ActiveIDs, c.active)
		ids = w.pull.ActiveIDs
		w.pull.OwnSig = sig
	}
	wb := getWireBuf()
	payload, err := e.xchg.Publish(clk, w.id, c.step, sig, ids, wb.b[:0])
	if err != nil {
		putWireBuf(wb, payload)
		return fmt.Errorf("core: worker %d: publish: %w", w.id, err)
	}
	payloadLen := len(payload)

	var ann []byte
	if e.job.Spec.Sync == consistency.Async {
		ann = asyncAnnounce{Worker: uint32(w.id), Step: uint32(c.step),
			Bytes: uint32(payloadLen), At: clk.Now()}.appendTo(payload[:0])
	} else {
		ann = announce{Worker: uint32(w.id), Step: uint32(c.step), Bytes: uint32(payloadLen)}.appendTo(payload[:0])
	}
	if err := e.cl.Broker.PublishFanout(clk, e.annExchange(), ann); err != nil {
		putWireBuf(wb, ann)
		return fmt.Errorf("core: worker %d: announce: %w", w.id, err)
	}
	report := lossReport{Worker: uint32(w.id), Step: uint32(c.step), Loss: c.loss,
		UpdateBytes: uint32(payloadLen)}.appendTo(ann[:0])
	err = e.cl.Broker.Publish(clk, e.lossQueue(), report)
	putWireBuf(wb, report)
	if err != nil {
		return fmt.Errorf("core: worker %d: loss report: %w", w.id, err)
	}
	if e.tr.Enabled() {
		e.tr.SpanOn(workerTrack(w.id), trace.CatEngine, "publish",
			publishStart, clk.Now(), trace.Int("step", c.step), trace.Int("bytes", payloadLen))
	}
	w.lastLoss = c.loss
	return nil
}

// stepPull is a worker's pull-and-merge half under lock-step: fetch
// every peer's published update from the KV store and apply it (§3.2:
// "each worker independently of the others pulls from external storage
// all the local updates, and aggregates them"). Under SSP (Staleness >
// 1) a sync point pulls every step in (fromStep, toStep]; under per-step
// BSP/ISP the window is a single step.
func (e *engine) stepPull(w *Worker, c *stepCtx) error {
	clk := &w.inst.Clock
	segStart := c.segStart

	// Drain availability announcements; they identify exactly which keys
	// the peers have published this window.
	if w.announced == nil {
		w.announced = make(map[string]bool)
	}
	announced := w.announced
	clear(announced)
	msgs := e.cl.Broker.ConsumeAll(clk, e.annQueue(w.id))
	for _, m := range msgs {
		a, err := decodeAnnounce(m)
		if err != nil {
			return fmt.Errorf("core: worker %d: %w", w.id, err)
		}
		announced[e.updKey(int(a.Step), int(a.Worker))] = true
	}

	// Hand the pull to the exchange strategy: the parameter server
	// batch-reads the window's update keys and streams each encoded
	// update straight into the replica's dense parameters; collectives
	// wait for the reduced total and apply it instead.
	p := &w.pull
	p.Worker = w.id
	p.Clock = clk
	p.FromStep = c.fromStep
	p.Step = c.toStep
	p.ActiveIDs = activeIDs(p.ActiveIDs, c.active)
	p.Params = w.model.Params()
	p.ReadyAt = c.readyAt
	p.Announced = announced
	applied, err := e.xchg.Pull(p)
	if err != nil {
		return fmt.Errorf("core: worker %d sync at step %d: %w", w.id, c.toStep, err)
	}
	// Deserialize-and-add work: ~4 effective ops per pulled coordinate.
	e.chargeCompute(w, 4*float64(applied))
	if e.tr.Enabled() {
		e.tr.SpanOn(workerTrack(w.id), trace.CatEngine, "pull",
			segStart, w.inst.Clock.Now(), trace.Int("step", c.toStep))
	}
	// A death mid-pull loses the fetched-but-unapplied updates; the
	// replacement redoes the pull (same data, time recharged).
	return e.redoSegmentOnDeath(w, segStart, fmt.Sprintf("sync at step %d", c.toStep))
}
