package core

import (
	"testing"
	"time"
)

func TestLossReportRoundTrip(t *testing.T) {
	r := lossReport{Worker: 7, Step: 42, Loss: 0.731, UpdateBytes: 1234}
	got, err := decodeLossReport(r.encode())
	if err != nil {
		t.Fatal(err)
	}
	if got != r {
		t.Fatalf("round trip: %+v != %+v", got, r)
	}
}

func TestLossReportBadLength(t *testing.T) {
	if _, err := decodeLossReport([]byte{1, 2, 3}); err == nil {
		t.Fatal("short loss report accepted")
	}
	r := lossReport{Worker: 1}
	if _, err := decodeLossReport(append(r.encode(), 0)); err == nil {
		t.Fatal("long loss report accepted")
	}
}

func TestAnnounceRoundTrip(t *testing.T) {
	a := announce{Worker: 3, Step: 9, Bytes: 512}
	got, err := decodeAnnounce(a.encode())
	if err != nil {
		t.Fatal(err)
	}
	if got != a {
		t.Fatalf("round trip: %+v != %+v", got, a)
	}
}

func TestAnnounceBadLength(t *testing.T) {
	if _, err := decodeAnnounce(nil); err == nil {
		t.Fatal("nil announce accepted")
	}
	a := announce{}
	if _, err := decodeAnnounce(a.encode()[:announceSize-1]); err == nil {
		t.Fatal("short announce accepted")
	}
}

func TestAnnounceSizePinned(t *testing.T) {
	// The lock-step announce is part of the byte-identical pinned traces:
	// its wire size feeds the broker's transfer-time model, so growing it
	// would shift every traced timestamp.
	if n := len(announce{}.encode()); n != 12 {
		t.Fatalf("lock-step announce is %d bytes, pinned at 12", n)
	}
}

func TestAsyncAnnounceRoundTrip(t *testing.T) {
	a := asyncAnnounce{Worker: 3, Step: 9, Bytes: 512, At: 1500 * time.Millisecond}
	got, err := decodeAsyncAnnounce(a.encode())
	if err != nil {
		t.Fatal(err)
	}
	if got != a {
		t.Fatalf("round trip: %+v != %+v", got, a)
	}
}

func TestAsyncAnnounceBadLength(t *testing.T) {
	if _, err := decodeAsyncAnnounce(nil); err == nil {
		t.Fatal("nil async announce accepted")
	}
	a := asyncAnnounce{}
	if _, err := decodeAsyncAnnounce(a.encode()[:asyncAnnounceSize-1]); err == nil {
		t.Fatal("short async announce accepted")
	}
	// The two announce forms must never be confusable on the wire.
	if _, err := decodeAsyncAnnounce(announce{}.encode()); err == nil {
		t.Fatal("lock-step announce decoded as async announce")
	}
	if _, err := decodeAnnounce(a.encode()); err == nil {
		t.Fatal("async announce decoded as lock-step announce")
	}
}
