package core

import (
	"runtime"
	"testing"

	"mlless/internal/consistency"
)

// runMallocs runs a job and returns the process allocation count it
// incurred.
func runMallocs(t testing.TB, cl *Cluster, job Job) float64 {
	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	if _, err := Run(cl, job); err != nil {
		t.Fatal(err)
	}
	runtime.ReadMemStats(&m1)
	return float64(m1.Mallocs - m0.Mallocs)
}

// stepMallocs runs a small PMF job and returns the process allocation
// count it incurred.
func stepMallocs(t testing.TB, steps int, spec Spec) float64 {
	cl, job := testPMFJob(t, 4, spec)
	job.Spec.MaxSteps = steps
	return runMallocs(t, cl, job)
}

// TestSteadyStateStepAllocsBounded pins the marginal allocation cost of
// one lock-step training step (4 workers). The sparse kernels, wire
// buffers and per-step scratch are allocation-free in the steady state;
// what remains is per-step key formatting and the broker's copy-on-
// publish, bounded here so future PRs cannot silently reintroduce
// per-step churn in the numeric hot path. (At the seed this marginal
// cost was ~285 allocs/step; the zero-allocation pass brought it under
// 200.) A plain Spec{} is tail-eligible, so the measured path is the
// pipelined supervisor tail — the overlap hook proves it actually ran,
// keeping the resident goroutine's channel traffic under the same
// bound.
func TestSteadyStateStepAllocsBounded(t *testing.T) {
	overlapped := 0
	tailOverlapHook = func() { overlapped++ }
	defer func() { tailOverlapHook = nil }()

	spec := Spec{}
	stepMallocs(t, 10, spec) // warm pools, caches and lazy scratch
	short := stepMallocs(t, 40, spec)
	long := stepMallocs(t, 120, spec)
	marginal := (long - short) / 80
	t.Logf("marginal allocations per step: %.1f (%d tails overlapped)", marginal, overlapped)
	if overlapped == 0 {
		t.Fatal("pipelined supervisor tail never launched: the guard measured the wrong path")
	}
	if marginal > 250 {
		t.Fatalf("steady-state step allocates %.1f per step, want <= 250", marginal)
	}
}

// BenchmarkStepLockStepPMF measures whole lock-step training steps,
// including publish/pull through the KV store and broker. ns/step is
// the figure-regeneration currency of ISSUE 5.
func BenchmarkStepLockStepPMF(b *testing.B) {
	const steps = 50
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		cl, job := testPMFJob(b, 4, Spec{MaxSteps: steps})
		b.StartTimer()
		if _, err := Run(cl, job); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*steps), "ns/step")
}

// BenchmarkStepAsyncPMF is BenchmarkStepLockStepPMF under the async
// schedule (K=2), exercising asyncPull's scratch reuse.
func BenchmarkStepAsyncPMF(b *testing.B) {
	const steps = 50
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		cl, job := testPMFJob(b, 4, Spec{MaxSteps: steps, Sync: consistency.Async, Staleness: 2})
		b.StartTimer()
		if _, err := Run(cl, job); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*steps), "ns/step")
}
