// Package core implements the MLLess training system itself (§3): the
// driver, the serverless supervisor, the data-parallel FaaS workers, and
// the BSP/ISP step engine that coordinates them over the simulated cloud
// substrates. The engine runs the actual ML mathematics (real gradients,
// real convergence) while charging virtual time for compute and for every
// trip through the indirect-communication services, and bills every
// component per the paper's cost model (§6.1).
package core

import (
	"sync"

	"mlless/internal/faas"
	"mlless/internal/kvstore"
	"mlless/internal/msgqueue"
	"mlless/internal/netmodel"
	"mlless/internal/objstore"
	"mlless/internal/trace"
)

// ComputeModel converts floating-point work into virtual compute time.
type ComputeModel struct {
	// FlopsPerSecond is the effective sparse-operation throughput of one
	// vCPU running the Cython-compiled MLLess kernels (§5), including
	// the (de)serialization work that dominates update exchange. The
	// default is calibrated so per-step durations land in the range the
	// paper measures (Fig 2a: ≈0.4–1.2 steps/s for PMF); see
	// EXPERIMENTS.md for the calibration notes.
	FlopsPerSecond float64
}

// DefaultComputeModel returns the calibrated single-vCPU throughput.
func DefaultComputeModel() ComputeModel {
	return ComputeModel{FlopsPerSecond: 8e6}
}

// Cluster bundles the simulated cloud deployment of §6.1: a Redis VM
// (M1.2x16), a messaging VM (C1.4x4), the object storage service and the
// FaaS platform. One Cluster can run many jobs sequentially; services
// accumulate traffic metrics across them.
type Cluster struct {
	// Redis is the low-latency KV tier workers exchange updates through:
	// one endpoint by default, N hash-sharded endpoints when built with
	// NewClusterWithShards.
	Redis *kvstore.Sharded
	// COS is the object store holding dataset mini-batches.
	COS *objstore.Store
	// Broker is the control-plane messaging service.
	Broker *msgqueue.Broker
	// Platform is the FaaS provider running workers and the supervisor.
	Platform *faas.Platform
	// Compute converts flops to virtual seconds.
	Compute ComputeModel
	// Metrics is the unified registry every service's counters live in
	// ("kv.*", "obj.*", "mq.*", "faas.*"); one snapshot covers the whole
	// deployment.
	Metrics *trace.Registry

	mu    sync.Mutex
	jobID int
}

// NewCluster builds a cluster with the default link parameters, FaaS
// configuration and a single-endpoint KV tier. All services share one
// metrics registry (Metrics).
func NewCluster() *Cluster {
	return NewClusterWithShards(1)
}

// NewClusterWithShards builds a cluster whose KV exchange tier is split
// over shards hash-partitioned endpoints (each modelled as its own
// M1.2x16 VM with its own link; see kvstore.Sharded). shards < 1 is
// treated as 1, which reproduces NewCluster exactly.
func NewClusterWithShards(shards int) *Cluster {
	reg := trace.NewRegistry()
	return &Cluster{
		Redis:    kvstore.NewShardedWithRegistry(netmodel.RedisLink(), reg, shards),
		COS:      objstore.NewWithRegistry(netmodel.COSLink(), reg),
		Broker:   msgqueue.NewWithRegistry(netmodel.BrokerLink(), reg),
		Platform: faas.NewPlatformWithRegistry(faas.DefaultConfig(), reg),
		Compute:  DefaultComputeModel(),
		Metrics:  reg,
	}
}

// nextJobID allocates a unique namespace prefix for a job's keys and
// queues: "jobN" standalone, "<tenant>/jobN" for a tenant's job. The
// counter is cluster-wide, so jobs of different tenants sharing one
// substrate can never collide on a key, queue, bucket or billing label
// (jobNamespace documents the scheme).
func (c *Cluster) nextJobID(tenant string) string {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.jobID++
	return jobNamespace(tenant, c.jobID)
}

// ReserveJobIDs advances the cluster-wide job counter by n and returns
// the first reserved number (numbers are 1-based: the first Run on a
// fresh cluster gets job 1). The fleet scheduler reserves its whole
// trace up front and assigns numbers in admission order, so forked
// executions land on exactly the namespaces a host-serial run would
// have allocated (DESIGN.md §15). Use RunNumbered to run a job under a
// reserved number.
func (c *Cluster) ReserveJobIDs(n int) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	first := c.jobID + 1
	c.jobID += n
	return first
}

// JobNamespace returns the key/queue/billing namespace prefix a job
// numbered num under tenant would use: "jobN" standalone,
// "<tenant>/jobN" for a tenant's job.
func JobNamespace(tenant string, num int) string { return jobNamespace(tenant, num) }
