package core

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"mlless/internal/consistency"
	"mlless/internal/cost"
	"mlless/internal/dataset"
	"mlless/internal/faas"
	"mlless/internal/faults"
	"mlless/internal/fit"
	"mlless/internal/model"
	"mlless/internal/optimizer"
	"mlless/internal/sched"
	"mlless/internal/sparse"
	"mlless/internal/trace"
	"mlless/internal/vclock"
)

// relaunchMargin is how close to the FaaS execution limit a function may
// get before the engine checkpoints and re-launches it (§3.1: "pause
// execution when the 10-minute timeout is close, checkpoint its internal
// state to storage and re-launch it").
const relaunchMargin = 30 * time.Second

// Invocation retry policy: transiently failed invocations (injected by
// the fault layer) back off exponentially in virtual time, starting at
// invokeRetryBase and giving up after maxInvokeAttempts.
const (
	invokeRetryBase   = 100 * time.Millisecond
	maxInvokeAttempts = 8
)

// maxConsecutiveDeaths bounds back-to-back reclamations of one worker
// inside a single step, so a pathological reclaim probability turns
// into an error instead of an unbounded recovery loop.
const maxConsecutiveDeaths = 10

// workerState is one serverless worker: its function instance, its local
// model replica, optimizer and significance filter (§3.1).
type workerState struct {
	id     int
	inst   *faas.Instance
	model  model.Model
	opt    optimizer.Optimizer
	filter *consistency.Filter

	lastLoss     float64
	pendingMerge string // eviction-replica key to average in next step
	alive        bool
	gen          int // relaunch/recovery generation; distinguishes billing labels
}

type engine struct {
	cl  *Cluster
	job Job
	id  string

	workers []*workerState
	sup     *faas.Instance
	supGen  int
	plan    dataset.Plan
	batches *dataset.Cache

	smoother *fit.EWMA
	tuner    *sched.Tuner
	meter    cost.Meter
	faults   *faults.Injector
	tr       *trace.Tracer

	history     []LossPoint
	removals    []Removal
	evictExpire []string // consumed eviction-replica keys awaiting TTL expiry

	// recMu guards the relaunch and recovery counters, which concurrent
	// phase goroutines update.
	recMu      sync.Mutex
	relaunches int
	recovery   Recovery

	totalUpdateBytes int64
	prevBarrier      time.Duration
	lastStepDur      time.Duration
}

// relaunchHorizon is how much execution budget must remain for a
// function to skip checkpointing: a fixed safety margin plus room for
// two steps like the last one (steps cannot be split mid-flight).
func (e *engine) relaunchHorizon() time.Duration {
	return relaunchMargin + 2*e.lastStepDur
}

// Run executes a training job on the cluster and returns its result.
func Run(cl *Cluster, job Job) (*Result, error) {
	job.Spec = job.Spec.withDefaults()
	if err := job.validate(job.Spec.MemoryMiB); err != nil {
		return nil, err
	}
	e := &engine{
		cl:       cl,
		job:      job,
		id:       cl.nextJobID(),
		smoother: fit.NewEWMA(job.Spec.LossAlpha),
		tr:       job.Trace,
	}
	if e.tr.Enabled() {
		// Install the tracer on every substrate for the duration of the
		// run, mirroring the fault-injector lifecycle below. Operations
		// land on the track of whichever registered clock they are charged
		// to.
		cl.Platform.SetTracer(e.tr)
		cl.Redis.SetTracer(e.tr)
		cl.COS.SetTracer(e.tr)
		cl.Broker.SetTracer(e.tr)
		defer func() {
			cl.Platform.SetTracer(nil)
			cl.Redis.SetTracer(nil)
			cl.COS.SetTracer(nil)
			cl.Broker.SetTracer(nil)
		}()
	}
	if job.Spec.Faults.Enabled() {
		// Install the seeded injector on every substrate for the
		// duration of the run; decisions are pure functions of the spec
		// seed and each operation's identity, so the run is reproducible.
		e.faults = faults.New(job.Spec.Faults)
		cl.Platform.SetFaults(e.faults)
		cl.Redis.SetFaults(e.faults)
		cl.Broker.SetFaults(e.faults)
		defer func() {
			cl.Platform.SetFaults(nil)
			cl.Redis.SetFaults(nil)
			cl.Broker.SetFaults(nil)
		}()
	}
	if err := e.setup(); err != nil {
		return nil, err
	}
	res, err := e.loop()
	if err != nil {
		return nil, err
	}
	return res, nil
}

func (e *engine) updKey(step, worker int) string {
	return fmt.Sprintf("%s/upd/%d/%d", e.id, step, worker)
}
func (e *engine) evictKey(worker int) string {
	return fmt.Sprintf("%s/evict/%d", e.id, worker)
}
func (e *engine) ckptKey(worker int) string {
	return fmt.Sprintf("%s/ckpt/%d", e.id, worker)
}
func (e *engine) lossQueue() string          { return e.id + "/losses" }
func (e *engine) annExchange() string        { return e.id + "/ann" }
func (e *engine) annQueue(worker int) string { return fmt.Sprintf("%s/ann/%d", e.id, worker) }

// workerName labels a worker's function for billing. Each relaunch or
// recovery generation gets a distinct suffix so re-launched runs never
// collide on a billing label.
func (e *engine) workerName(id, gen int) string {
	if gen == 0 {
		return fmt.Sprintf("%s/worker-%d", e.id, id)
	}
	return fmt.Sprintf("%s/worker-%d-r%d", e.id, id, gen)
}

// supName is workerName for the supervisor.
func (e *engine) supName() string {
	if e.supGen == 0 {
		return e.id + "/supervisor"
	}
	return fmt.Sprintf("%s/supervisor-r%d", e.id, e.supGen)
}

// workerTrack names a worker's trace track; unlike billing labels it is
// stable across relaunch generations, so one worker is one timeline.
func workerTrack(id int) string { return fmt.Sprintf("worker-%d", id) }

// supTrack is the supervisor's trace track.
const supTrack = "supervisor"

// traceBoot registers a freshly invoked instance's clock under track and
// records its start latency as a cold-start or warm-start span. Call it
// immediately after a successful invocation, before charging anything
// else to the clock.
func (e *engine) traceBoot(inst *faas.Instance, track string) {
	if !e.tr.Enabled() {
		return
	}
	e.tr.RegisterClock(&inst.Clock, track)
	name := "warm-start"
	if inst.Cold {
		name = "cold-start"
	}
	e.tr.SpanOn(track, trace.CatFaaS, name, inst.StartedAt(), inst.Clock.Now(),
		trace.Str("fn", inst.Name))
}

func (e *engine) setup() error {
	spec := e.job.Spec

	sup, err := e.invokeAt(e.supName(), spec.MemoryMiB, 0, false)
	if err != nil {
		return fmt.Errorf("core: launch supervisor: %w", err)
	}
	e.sup = sup
	e.traceBoot(sup, supTrack)

	e.cl.Broker.DeclareQueue(e.lossQueue())
	e.cl.Broker.DeclareFanout(e.annExchange())

	v := spec.Significance
	if spec.Sync != consistency.ISP {
		v = 0
	}
	e.workers = make([]*workerState, spec.Workers)
	for i := range e.workers {
		inst, err := e.invokeAt(e.workerName(i, 0), spec.MemoryMiB, 0, false)
		if err != nil {
			return fmt.Errorf("core: launch worker %d: %w", i, err)
		}
		e.traceBoot(inst, workerTrack(i))
		e.cl.Broker.DeclareQueue(e.annQueue(i))
		if err := e.cl.Broker.Bind(e.annExchange(), e.annQueue(i)); err != nil {
			return fmt.Errorf("core: bind worker %d: %w", i, err)
		}
		e.workers[i] = &workerState{
			id:     i,
			inst:   inst,
			model:  e.job.Model.Clone(),
			opt:    e.job.Optimizer.Clone(),
			filter: consistency.NewFilterVariant(v, spec.FilterVariant),
			alive:  true,
		}
	}

	e.plan = dataset.NewPlan(e.job.NumBatches, spec.Workers)
	e.batches = dataset.NewCache(e.cl.COS, e.job.Bucket)

	if spec.AutoTune {
		cfg := spec.Sched
		// The supervisor smooths the global loss once; feed the tuner the
		// already-smoothed stream.
		cfg.LossAlpha = 1
		// Unless the caller says otherwise, never scale below a quarter
		// of the original pool: weak scaling shrinks the global batch
		// with p (§3.2), and a near-empty pool can destabilize deep
		// convergence.
		if cfg.MinWorkers <= 0 {
			cfg.MinWorkers = spec.Workers / 4
		}
		e.tuner = sched.New(cfg)
		if e.tr.Enabled() {
			e.tuner.SetTracer(e.tr, supTrack)
		}
	}
	return nil
}

func (e *engine) active() []*workerState {
	out := make([]*workerState, 0, len(e.workers))
	for _, w := range e.workers {
		if w.alive {
			out = append(out, w)
		}
	}
	return out
}

// chargeCompute advances a worker's clock by the virtual duration of
// flops floating-point operations at its memory-proportional CPU share.
func (e *engine) chargeCompute(w *workerState, flops float64) {
	secs := flops / (e.cl.Compute.FlopsPerSecond * w.inst.CPUShare())
	w.inst.Clock.Advance(time.Duration(secs * float64(time.Second)))
}

// invokeAt launches a function at virtual time at, retrying attempts
// that fail with an injected transient error. Each retry backs off
// exponentially in virtual time, so the successful attempt (and every
// charge after it) starts later; the backoff is recorded as restart
// overhead. Non-injected errors and attempts beyond maxInvokeAttempts
// are returned as-is.
func (e *engine) invokeAt(name string, memoryMiB int, at time.Duration, cold bool) (*faas.Instance, error) {
	backoff := invokeRetryBase
	for attempt := 1; ; attempt++ {
		var inst *faas.Instance
		var err error
		if cold {
			inst, err = e.cl.Platform.InvokeCold(name, memoryMiB, at)
		} else {
			inst, err = e.cl.Platform.Invoke(name, memoryMiB, at)
		}
		if err == nil {
			return inst, nil
		}
		if !errors.Is(err, faults.ErrInjected) || attempt == maxInvokeAttempts {
			return nil, err
		}
		e.recMu.Lock()
		e.recovery.InvokeRetries++
		e.recovery.RestartTime += backoff
		e.recMu.Unlock()
		at += backoff
		backoff *= 2
	}
}

// dead reports whether the instance's container has been reclaimed by
// the provider: its clock has caught up with the reclaim instant, so
// any work charged past that point is void.
func dead(inst *faas.Instance) bool {
	return inst.ReclaimAt > 0 && inst.Clock.Now() >= inst.ReclaimAt
}

// recoverWorker replaces a worker whose container the provider
// reclaimed. The dead run is billed up to the reclaim point, a
// replacement boots cold (the platform just withdrew capacity, so no
// warm container is assumed — which also keeps concurrent recoveries
// off the bounded warm pool), and the replica state (parameters plus
// optimizer moments) is re-downloaded. Boot and download land in
// Recovery.RestartTime.
func (e *engine) recoverWorker(w *workerState) error {
	deadAt := w.inst.ReclaimAt
	mem := w.inst.MemoryMiB
	if err := e.cl.Platform.Reclaim(w.inst, &e.meter); err != nil {
		return fmt.Errorf("core: reclaim worker %d: %w", w.id, err)
	}
	w.gen++
	inst, err := e.invokeAt(e.workerName(w.id, w.gen), mem, deadAt, true)
	if err != nil {
		return fmt.Errorf("core: recover worker %d: %w", w.id, err)
	}
	w.inst = inst
	e.traceBoot(inst, workerTrack(w.id))
	// Parameters plus optimizer state (~2x params, as in maybeRelaunch);
	// charged, not materialized — the in-memory replica already holds
	// the restored state.
	state := sparse.DenseEncodedSize(w.model.NumParams())
	w.inst.Clock.Advance(2 * e.cl.Redis.TransferTime(state))
	e.recMu.Lock()
	e.recovery.WorkerDeaths++
	e.recovery.RestartTime += w.inst.Clock.Now() - deadAt
	e.recMu.Unlock()
	if e.tr.Enabled() {
		// Two views of the same interval: the FaaS lifecycle sees a
		// relaunch caused by reclamation; the fault layer sees recovery
		// work (re-download) it must account to the overhead bill.
		e.tr.SpanOn(workerTrack(w.id), trace.CatFaaS, "relaunch", deadAt, w.inst.Clock.Now(),
			trace.Int("gen", w.gen), trace.Str("cause", "reclaim"))
		e.tr.SpanOn(workerTrack(w.id), trace.CatFault, "recover", deadAt, w.inst.Clock.Now(),
			trace.Int("gen", w.gen))
	}
	return nil
}

// redoSegmentOnDeath is the mid-step recovery loop: while the worker's
// container is dead, recover onto a fresh one and recharge the time the
// segment took. The math is deterministic and the replica state is
// restored from the checkpoint, so only time — not results — must be
// redone. segStart is when the segment began on the then-current
// instance; the redone work lands in Recovery.RecomputeTime.
func (e *engine) redoSegmentOnDeath(w *workerState, segStart time.Duration, what string) error {
	for deaths := 0; dead(w.inst); {
		if deaths++; deaths > maxConsecutiveDeaths {
			return fmt.Errorf("core: worker %d: %d consecutive reclamations during %s: %w",
				w.id, deaths-1, what, faults.ErrInjected)
		}
		redo := w.inst.Clock.Now() - segStart
		if err := e.recoverWorker(w); err != nil {
			return err
		}
		segStart = w.inst.Clock.Now()
		w.inst.Clock.Advance(redo)
		e.recMu.Lock()
		e.recovery.RecomputeTime += redo
		e.recMu.Unlock()
		if e.tr.Enabled() {
			e.tr.SpanOn(workerTrack(w.id), trace.CatFault, "recompute",
				segStart, w.inst.Clock.Now(), trace.Str("what", what))
		}
	}
	return nil
}

// maybeRelaunch checkpoints and re-launches a worker approaching the
// platform's execution limit, charging the checkpoint transfer, the
// start latency and the state download.
func (e *engine) maybeRelaunch(w *workerState) error {
	cfg := e.cl.Platform.Config()
	if cfg.MaxDuration <= 0 || w.inst.Elapsed() < cfg.MaxDuration-e.relaunchHorizon() {
		return nil
	}
	// Checkpoint: model parameters plus optimizer state (≈2x params for
	// Adam's two moments; charged, not materialized).
	ckptStart := w.inst.Clock.Now()
	params := denseOf(w.model)
	payload := params.Encode()
	e.cl.Redis.Set(&w.inst.Clock, e.ckptKey(w.id), payload)
	w.inst.Clock.Advance(e.cl.Redis.TransferTime(len(payload))) // optimizer state
	resumeAt := w.inst.Clock.Now()
	mem := w.inst.MemoryMiB
	if err := e.cl.Platform.TerminateInto(w.inst, &e.meter); err != nil {
		return fmt.Errorf("core: relaunch terminate worker %d: %w", w.id, err)
	}
	w.gen++
	inst, err := e.invokeAt(e.workerName(w.id, w.gen), mem, resumeAt, false)
	if err != nil {
		return fmt.Errorf("core: relaunch worker %d: %w", w.id, err)
	}
	w.inst = inst
	e.traceBoot(inst, workerTrack(w.id))
	// Download the checkpoint into the fresh instance, then delete it:
	// consumed checkpoints must not accumulate in the store.
	if _, ok := e.cl.Redis.Get(&w.inst.Clock, e.ckptKey(w.id)); !ok {
		return fmt.Errorf("core: relaunch worker %d: checkpoint vanished", w.id)
	}
	w.inst.Clock.Advance(e.cl.Redis.TransferTime(len(payload))) // optimizer state
	e.cl.Redis.Delete(&w.inst.Clock, e.ckptKey(w.id))
	e.recMu.Lock()
	e.relaunches++
	e.recMu.Unlock()
	if e.tr.Enabled() {
		e.tr.SpanOn(workerTrack(w.id), trace.CatFaaS, "relaunch",
			ckptStart, w.inst.Clock.Now(), trace.Int("gen", w.gen), trace.Str("cause", "limit"))
	}
	return nil
}

// denseOf returns the model's parameter vector.
func denseOf(m model.Model) sparse.Dense { return m.Params() }

// maybeRelaunchSup does for the supervisor what maybeRelaunch does for
// workers. Its checkpoint is small: the loss history and tuner state.
func (e *engine) maybeRelaunchSup() error {
	cfg := e.cl.Platform.Config()
	if cfg.MaxDuration <= 0 || e.sup.Elapsed() < cfg.MaxDuration-e.relaunchHorizon() {
		return nil
	}
	ckptStart := e.sup.Clock.Now()
	ckpt := make([]byte, 24*len(e.history)+1024)
	e.cl.Redis.Set(&e.sup.Clock, e.id+"/sup-ckpt", ckpt)
	resumeAt := e.sup.Clock.Now()
	mem := e.sup.MemoryMiB
	if err := e.cl.Platform.TerminateInto(e.sup, &e.meter); err != nil {
		return fmt.Errorf("core: relaunch supervisor: %w", err)
	}
	e.supGen++
	sup, err := e.invokeAt(e.supName(), mem, resumeAt, false)
	if err != nil {
		return fmt.Errorf("core: relaunch supervisor: %w", err)
	}
	e.sup = sup
	e.traceBoot(sup, supTrack)
	if _, ok := e.cl.Redis.Get(&e.sup.Clock, e.id+"/sup-ckpt"); !ok {
		return fmt.Errorf("core: relaunch supervisor: checkpoint vanished")
	}
	e.cl.Redis.Delete(&e.sup.Clock, e.id+"/sup-ckpt")
	e.recMu.Lock()
	e.relaunches++
	e.recMu.Unlock()
	if e.tr.Enabled() {
		e.tr.SpanOn(supTrack, trace.CatFaaS, "relaunch",
			ckptStart, e.sup.Clock.Now(), trace.Int("gen", e.supGen), trace.Str("cause", "limit"))
	}
	return nil
}

// recoverSup is recoverWorker for the supervisor. Its state (loss
// history and tuner counters) is small, so the restart cost is the boot
// plus a checkpoint-sized read.
func (e *engine) recoverSup() error {
	deadAt := e.sup.ReclaimAt
	mem := e.sup.MemoryMiB
	if err := e.cl.Platform.Reclaim(e.sup, &e.meter); err != nil {
		return fmt.Errorf("core: reclaim supervisor: %w", err)
	}
	e.supGen++
	sup, err := e.invokeAt(e.supName(), mem, deadAt, true)
	if err != nil {
		return fmt.Errorf("core: recover supervisor: %w", err)
	}
	e.sup = sup
	e.traceBoot(sup, supTrack)
	e.sup.Clock.Advance(e.cl.Redis.TransferTime(24*len(e.history) + 1024))
	e.recMu.Lock()
	e.recovery.WorkerDeaths++
	e.recovery.RestartTime += e.sup.Clock.Now() - deadAt
	e.recMu.Unlock()
	if e.tr.Enabled() {
		e.tr.SpanOn(supTrack, trace.CatFaaS, "relaunch", deadAt, e.sup.Clock.Now(),
			trace.Int("gen", e.supGen), trace.Str("cause", "reclaim"))
		e.tr.SpanOn(supTrack, trace.CatFault, "recover", deadAt, e.sup.Clock.Now(),
			trace.Int("gen", e.supGen))
	}
	return nil
}

// phaseA is one worker's compute-and-publish half of a BSP step.
func (e *engine) phaseA(w *workerState, step, pActive int) error {
	// A container can die while parked at the previous barrier; replace
	// it before the step so no work is charged to a dead instance. The
	// replacement rejoins at the barrier the pool last crossed.
	if dead(w.inst) {
		if err := e.recoverWorker(w); err != nil {
			return err
		}
		w.inst.Clock.AdvanceTo(e.prevBarrier)
	}
	if err := e.maybeRelaunch(w); err != nil {
		return err
	}
	clk := &w.inst.Clock
	segStart := clk.Now()
	traced := e.tr.Enabled()

	// Reintegrate an evicted peer's replica (§4.2, eviction policy).
	if w.pendingMerge != "" {
		mergeStart := clk.Now()
		if buf, ok := e.cl.Redis.Get(clk, w.pendingMerge); ok {
			replica, err := sparse.DecodeDense(buf)
			if err != nil {
				return fmt.Errorf("core: worker %d: decode eviction replica: %w", w.id, err)
			}
			w.model.Params().Average(replica)
			e.chargeCompute(w, 2*float64(len(replica)))
		}
		w.pendingMerge = ""
		if traced {
			e.tr.SpanOn(workerTrack(w.id), trace.CatEngine, "merge",
				mergeStart, clk.Now(), trace.Int("step", step))
		}
	}

	// Fetch this step's mini-batch from object storage (§3.2).
	fetchStart := clk.Now()
	batchIdx := e.plan.BatchFor(w.id, step)
	batch, err := e.batches.Fetch(clk, batchIdx)
	if err != nil {
		return fmt.Errorf("core: worker %d step %d: %w", w.id, step, err)
	}
	if traced {
		e.tr.SpanOn(workerTrack(w.id), trace.CatEngine, "fetch",
			fetchStart, clk.Now(), trace.Int("step", step), trace.Int("batch", batchIdx))
	}

	// Local loss and gradient (real math, virtual time).
	computeStart := clk.Now()
	loss := w.model.Loss(batch)
	grad := w.model.Gradient(batch)
	e.chargeCompute(w, 1.5*w.model.GradientWork(len(batch)))

	// The provider may have reclaimed the container mid-segment: the
	// work charged past the reclaim point died with it and is redone on
	// a replacement. The tail below (optimizer, filter, publish) is
	// treated as atomic — once the update is published the step's output
	// is durable, and a death there surfaces at the next phase boundary
	// with nothing left to redo.
	if err := e.redoSegmentOnDeath(w, segStart, fmt.Sprintf("step %d compute", step)); err != nil {
		return err
	}
	clk = &w.inst.Clock

	// Optimizer transform, averaged across the active pool: the global
	// update is the mean of local updates (§3.2, "local gradients are
	// averaged to obtain a global gradient update").
	u := w.opt.Step(step, grad)
	u.Scale(1 / float64(pActive))
	w.model.ApplyUpdate(u)
	e.chargeCompute(w, 2*float64(u.Len()))

	// Significance filter, then publish the significant part.
	sig := w.filter.Add(step, u, w.model.Params())
	e.chargeCompute(w, 2*float64(sig.Len()))
	publishStart := clk.Now()
	if traced {
		// The compute span covers gradient, optimizer and filter work —
		// and, on a reclaimed container, the recovery in between, which
		// the overlapping fault spans itemize.
		e.tr.SpanOn(workerTrack(w.id), trace.CatEngine, "compute",
			computeStart, publishStart, trace.Int("step", step))
	}
	payload := sig.Encode()
	e.cl.Redis.Set(clk, e.updKey(step, w.id), payload)

	// Announce availability and report the loss.
	if err := e.cl.Broker.PublishFanout(clk, e.annExchange(),
		announce{Worker: uint32(w.id), Step: uint32(step), Bytes: uint32(len(payload))}.encode()); err != nil {
		return fmt.Errorf("core: worker %d: announce: %w", w.id, err)
	}
	if err := e.cl.Broker.Publish(clk, e.lossQueue(),
		lossReport{Worker: uint32(w.id), Step: uint32(step), Loss: loss, UpdateBytes: uint32(len(payload))}.encode()); err != nil {
		return fmt.Errorf("core: worker %d: loss report: %w", w.id, err)
	}
	if traced {
		e.tr.SpanOn(workerTrack(w.id), trace.CatEngine, "publish",
			publishStart, clk.Now(), trace.Int("step", step), trace.Int("bytes", len(payload)))
	}
	w.lastLoss = loss
	return nil
}

// phaseB is one worker's pull-and-merge half: fetch every peer's
// published update from the KV store and apply it (§3.2: "each worker
// independently of the others pulls from external storage all the local
// updates, and aggregates them"). Under SSP (Staleness > 1) a sync point
// pulls every step in (fromStep, toStep]; under per-step BSP/ISP the
// window is a single step.
func (e *engine) phaseB(w *workerState, fromStep, toStep int, active []*workerState) error {
	// Replace a container that died after publishing; its step output is
	// durable in the KV store and broker, so nothing is redone.
	if dead(w.inst) {
		if err := e.recoverWorker(w); err != nil {
			return err
		}
	}
	clk := &w.inst.Clock
	segStart := clk.Now()

	// Drain availability announcements.
	msgs := e.cl.Broker.ConsumeAll(clk, e.annQueue(w.id))
	for _, m := range msgs {
		if _, err := decodeAnnounce(m); err != nil {
			return fmt.Errorf("core: worker %d: %w", w.id, err)
		}
	}

	keys := make([]string, 0, (len(active)-1)*(toStep-fromStep))
	for _, p := range active {
		if p.id != w.id {
			for s := fromStep + 1; s <= toStep; s++ {
				keys = append(keys, e.updKey(s, p.id))
			}
		}
	}
	vals := e.cl.Redis.MGetView(clk, keys)
	applied := 0
	for i, buf := range vals {
		if buf == nil {
			return fmt.Errorf("core: worker %d sync at step %d: missing peer update %s", w.id, toStep, keys[i])
		}
		// Stream the encoded update straight into the replica's dense
		// parameters — equivalent to decode + ApplyUpdate, without the
		// intermediate map.
		n, err := sparse.AddEncoded(w.model.Params(), buf)
		if err != nil {
			return fmt.Errorf("core: worker %d sync at step %d: %w", w.id, toStep, err)
		}
		applied += n
	}
	// Deserialize-and-add work: ~4 effective ops per pulled coordinate.
	e.chargeCompute(w, 4*float64(applied))
	if e.tr.Enabled() {
		e.tr.SpanOn(workerTrack(w.id), trace.CatEngine, "pull",
			segStart, w.inst.Clock.Now(), trace.Int("step", toStep))
	}
	// A death mid-pull loses the fetched-but-unapplied updates; the
	// replacement redoes the pull (same data, time recharged).
	return e.redoSegmentOnDeath(w, segStart, fmt.Sprintf("sync at step %d", toStep))
}

// runPhase executes fn for every active worker concurrently (workers are
// independent within a phase; the shared services are thread-safe) and
// returns the first error by worker id, for determinism.
func runPhase(active []*workerState, fn func(w *workerState) error) error {
	errs := make([]error, len(active))
	var wg sync.WaitGroup
	for i, w := range active {
		wg.Add(1)
		go func(i int, w *workerState) {
			defer wg.Done()
			errs[i] = fn(w)
		}(i, w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

func (e *engine) loop() (*Result, error) {
	spec := e.job.Spec
	converged := false
	diverged := false
	lastSync := 0
	bestLoss := math.Inf(1)
	sinceImproved := 0

	for step := 1; step <= spec.MaxSteps; step++ {
		active := e.active()
		pActive := len(active)
		// Under SSP (Staleness > 1) workers run ahead between sync
		// points; pulls and barriers happen every Staleness steps.
		syncStep := spec.Staleness <= 1 || step%spec.Staleness == 0 || step == spec.MaxSteps

		// Eviction replicas published at the previous sync point are
		// merged by every survivor during this phase A; afterwards the
		// keys expire (server-side TTL, no client time).
		expireEvict := e.evictExpire
		e.evictExpire = nil

		if err := runPhase(active, func(w *workerState) error {
			return e.phaseA(w, step, pActive)
		}); err != nil {
			return nil, err
		}
		if len(expireEvict) > 0 {
			var janitor vclock.Clock
			for _, k := range expireEvict {
				e.cl.Redis.Delete(&janitor, k)
			}
		}

		if syncStep {
			if err := runPhase(active, func(w *workerState) error {
				return e.phaseB(w, lastSync, step, active)
			}); err != nil {
				return nil, err
			}
		}
		// Build the clock list only now: recoveries may have replaced
		// instances (and therefore clocks) during either phase.
		clocks := make([]*vclock.Clock, len(active))
		for i, w := range active {
			clocks[i] = &w.inst.Clock
		}
		var barrier time.Duration
		if syncStep {
			if e.tr.Enabled() {
				// Record each worker's barrier wait before reconciling:
				// the gap to the pool maximum is exactly what Barrier
				// will charge it.
				max := vclock.Max(clocks)
				for i, w := range active {
					e.tr.SpanOn(workerTrack(w.id), trace.CatEngine, "barrier",
						clocks[i].Now(), max, trace.Int("step", step))
				}
			}
			// BSP barrier (§3.1): the slowest worker paces the step.
			barrier = vclock.Barrier(clocks)
			for s := lastSync + 1; s <= step; s++ {
				e.expireStep(s, active)
			}
			lastSync = step
		} else {
			barrier = vclock.Max(clocks)
		}
		stepDur := barrier - e.prevBarrier
		if stepDur < 0 {
			// Under SSP a recovered worker can rejoin behind the previous
			// maximum; the horizon estimate must stay non-negative.
			stepDur = 0
		}
		e.prevBarrier = barrier
		e.lastStepDur = stepDur

		// Enforce the platform execution cap (§2). Relaunching normally
		// keeps instances clear of it; a single step too long to fit the
		// remaining budget cannot be split, so it surfaces as
		// faas.ErrOverLimit instead of silently overrunning.
		cfg := e.cl.Platform.Config()
		for _, w := range active {
			if dead(w.inst) {
				continue // replaced with a fresh instance at the next phase
			}
			if err := w.inst.CheckLimit(cfg); err != nil {
				return nil, fmt.Errorf("core: step %d: %w", step, err)
			}
		}

		// Supervisor: aggregate the loss reports.
		e.sup.Clock.AdvanceTo(barrier)
		for deaths := 0; dead(e.sup); {
			if deaths++; deaths > maxConsecutiveDeaths {
				return nil, fmt.Errorf("core: supervisor: %d consecutive reclamations: %w",
					deaths-1, faults.ErrInjected)
			}
			if err := e.recoverSup(); err != nil {
				return nil, err
			}
			e.sup.Clock.AdvanceTo(barrier)
		}
		if err := e.maybeRelaunchSup(); err != nil {
			return nil, err
		}
		if err := e.sup.CheckLimit(cfg); err != nil {
			return nil, fmt.Errorf("core: step %d: %w", step, err)
		}
		raw, updateBytes, err := e.aggregateReports(pActive)
		if err != nil {
			return nil, err
		}
		if e.tr.Enabled() {
			e.tr.SpanOn(supTrack, trace.CatEngine, "aggregate",
				barrier, e.sup.Clock.Now(), trace.Int("step", step))
		}
		smoothed := e.smoother.Update(raw)
		e.totalUpdateBytes += updateBytes
		e.history = append(e.history, LossPoint{
			Step: step, Time: barrier, Loss: smoothed, RawLoss: raw,
			Workers: pActive, UpdateBytes: updateBytes, Duration: stepDur,
		})

		// Stop criteria.
		if math.IsNaN(raw) || math.IsInf(raw, 0) {
			diverged = true
			break
		}
		if spec.TargetLoss > 0 && smoothed <= spec.TargetLoss {
			converged = true
			break
		}
		if spec.MaxWallClock > 0 && barrier >= spec.MaxWallClock {
			break
		}
		if spec.Patience > 0 {
			// Only meaningful progress resets the counter: at least 0.1%
			// relative improvement over the best loss seen.
			const minRelImprovement = 1e-3
			if smoothed < bestLoss*(1-minRelImprovement) {
				bestLoss = smoothed
				sinceImproved = 0
			} else if sinceImproved++; sinceImproved >= spec.Patience {
				converged = true
				break
			}
		}

		// Scale-in auto-tuner (§4.2), run by the supervisor. Evictions
		// only happen at sync points so no published-but-unpulled update
		// is lost under SSP.
		if e.tuner != nil {
			e.tuner.Observe(step, smoothed, stepDur)
			if syncStep {
				d := e.tuner.Decide(e.sup.Clock.Now(), step, pActive)
				if d.Remove && pActive > e.tuner.Config().MinWorkers {
					if err := e.evictOne(step, barrier, active); err != nil {
						return nil, err
					}
					e.tuner.NotifyRemoval(step)
				}
			}
		}
	}

	return e.teardown(converged, diverged, lastSync)
}

// aggregateReports drains the loss queue and averages worker losses in
// worker-id order (deterministic float summation).
func (e *engine) aggregateReports(expect int) (avgLoss float64, updateBytes int64, err error) {
	msgs := e.cl.Broker.ConsumeAll(&e.sup.Clock, e.lossQueue())
	reports := make([]lossReport, 0, len(msgs))
	for _, m := range msgs {
		r, err := decodeLossReport(m)
		if err != nil {
			return 0, 0, err
		}
		reports = append(reports, r)
	}
	if len(reports) != expect {
		return 0, 0, fmt.Errorf("core: supervisor got %d loss reports, want %d", len(reports), expect)
	}
	sort.Slice(reports, func(i, j int) bool { return reports[i].Worker < reports[j].Worker })
	sum := 0.0
	for _, r := range reports {
		sum += r.Loss
		updateBytes += int64(r.UpdateBytes)
	}
	return sum / float64(len(reports)), updateBytes, nil
}

// evictOne removes the worker with the lowest-quality replica (highest
// recent loss). Under ISP the leaving worker parks its replica in the KV
// store for the survivors to average in (§4.2, eviction policy).
func (e *engine) evictOne(step int, now time.Duration, active []*workerState) error {
	victim := active[0]
	for _, w := range active[1:] {
		if w.lastLoss > victim.lastLoss {
			victim = w
		}
	}
	if victim.filter.BaseThreshold() > 0 && !e.job.Spec.NoEvictionMerge {
		payload := victim.model.Params().Encode()
		e.cl.Redis.Set(&victim.inst.Clock, e.evictKey(victim.id), payload)
		for _, w := range active {
			if w.id != victim.id {
				w.pendingMerge = e.evictKey(victim.id)
			}
		}
		// The replica key expires once every survivor has merged it (at
		// the end of the next phase A).
		e.evictExpire = append(e.evictExpire, e.evictKey(victim.id))
	}
	// A victim whose container died between the barrier and the eviction
	// order still parks its replica (the engine holds the state; only
	// billing differs, capped at the reclaim point).
	if dead(victim.inst) {
		if err := e.cl.Platform.Reclaim(victim.inst, &e.meter); err != nil {
			return fmt.Errorf("core: evict worker %d: %w", victim.id, err)
		}
	} else if err := e.cl.Platform.TerminateInto(victim.inst, &e.meter); err != nil {
		return fmt.Errorf("core: evict worker %d: %w", victim.id, err)
	}
	e.cl.Broker.Unbind(e.annExchange(), e.annQueue(victim.id))
	e.cl.Broker.DeleteQueue(e.annQueue(victim.id))
	victim.alive = false
	e.removals = append(e.removals, Removal{
		Step: step, Time: now, Worker: victim.id, WorkersLeft: len(active) - 1,
	})
	if e.tr.Enabled() {
		e.tr.InstantOn(supTrack, trace.CatSched, "evict", now,
			trace.Int("step", step), trace.Int("worker", victim.id),
			trace.Int("workers_left", len(active)-1))
	}
	return nil
}

// expireStep emulates Redis key TTL expiry for a completed step's update
// keys; expiry costs no client time.
func (e *engine) expireStep(step int, active []*workerState) {
	var janitor vclock.Clock
	for _, w := range active {
		e.cl.Redis.Delete(&janitor, e.updKey(step, w.id))
	}
}

// endInstance terminates (or, if its container already died, reclaims)
// an instance, billing it into the job meter. All engine billing flows
// through TerminateInto/Reclaim, so the runs are marked claimed and a
// caller combining Run with Platform.BillTo cannot double-count them.
func (e *engine) endInstance(inst *faas.Instance) error {
	if dead(inst) {
		return e.cl.Platform.Reclaim(inst, &e.meter)
	}
	return e.cl.Platform.TerminateInto(inst, &e.meter)
}

func (e *engine) teardown(converged, diverged bool, lastSync int) (*Result, error) {
	execTime := e.prevBarrier

	for _, w := range e.workers {
		if !w.alive {
			continue
		}
		if err := e.endInstance(w.inst); err != nil {
			return nil, err
		}
	}
	if err := e.endInstance(e.sup); err != nil {
		return nil, err
	}

	// Expire every key the job may still hold: update keys published
	// since the last sync point (the loop can stop mid-window under SSP)
	// and eviction replicas not yet expired. Checkpoints are deleted
	// when consumed, so a completed run leaves the store empty.
	lastStep := 0
	if len(e.history) > 0 {
		lastStep = e.history[len(e.history)-1].Step
	}
	var janitor vclock.Clock
	for s := lastSync + 1; s <= lastStep; s++ {
		for _, w := range e.workers {
			e.cl.Redis.Delete(&janitor, e.updKey(s, w.id))
		}
	}
	for _, k := range e.evictExpire {
		e.cl.Redis.Delete(&janitor, k)
	}

	// The always-on VMs of the MLLess deployment (§6.1): messaging
	// (C1.4x4) and Redis (M1.2x16), prorated per second over the job.
	// A sharded KV tier rents one M1.2x16 per shard — the $ side of the
	// shard-count sweep's time/cost trade-off.
	e.meter.AddVM("messaging-vm-c1.4x4", cost.PriceC14x4PerHour, execTime)
	if n := e.cl.Redis.NumShards(); n > 1 {
		for i := 0; i < n; i++ {
			e.meter.AddVM(fmt.Sprintf("redis-vm-m1.2x16-s%d", i), cost.PriceM12x16PerHour, execTime)
		}
	} else {
		e.meter.AddVM("redis-vm-m1.2x16", cost.PriceM12x16PerHour, execTime)
	}

	// Surface the fault-recovery overhead on the bill. The line is a
	// memo: its function-seconds are already billed inside the worker
	// lines, so it is excluded from the total.
	if over := e.recovery.Overhead(); over > 0 {
		e.meter.AddMemo("recovery-overhead", over,
			cost.FunctionCost(over, float64(e.job.Spec.MemoryMiB)/1024))
	}

	finalLoss := 0.0
	if len(e.history) > 0 {
		finalLoss = e.history[len(e.history)-1].Loss
	}
	var stepPhases []StepPhase
	if e.tr.Enabled() {
		for _, b := range trace.Timeline(e.tr.Events()) {
			stepPhases = append(stepPhases, StepPhase{
				Step:    b.Step,
				Merge:   b.Stat("merge").Mean,
				Fetch:   b.Stat("fetch").Mean,
				Compute: b.Stat("compute").Mean,
				Publish: b.Stat("publish").Mean,
				Pull:    b.Stat("pull").Mean,
				Barrier: b.Stat("barrier").Max,
			})
		}
	}
	return &Result{
		Converged:        converged,
		Diverged:         diverged,
		ExecTime:         execTime,
		Steps:            len(e.history),
		FinalLoss:        finalLoss,
		History:          e.history,
		Removals:         e.removals,
		Cost:             e.meter.Report(),
		TotalUpdateBytes: e.totalUpdateBytes,
		Relaunches:       e.relaunches,
		Recovery:         e.recovery,
		StepPhases:       stepPhases,
		Faults:           e.faults.Metrics(),
	}, nil
}
