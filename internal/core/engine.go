package core

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"mlless/internal/consistency"
	"mlless/internal/cost"
	"mlless/internal/dataset"
	"mlless/internal/exchange"
	"mlless/internal/faas"
	"mlless/internal/faults"
	"mlless/internal/fit"
	"mlless/internal/model"
	"mlless/internal/sched"
	"mlless/internal/trace"
	"mlless/internal/vclock"
)

// The engine is split into layers (see DESIGN.md §9): this file owns the
// run lifecycle (setup, teardown, billing); worker.go the per-step state
// machine each worker executes; supervisor.go the loss aggregation, stop
// criteria and evictions; recovery.go the death/relaunch paths;
// protocol.go the key namespace and wire messages; and schedule.go /
// async.go the step-driving policies behind the Schedule interface.

type engine struct {
	cl  *Cluster
	job Job
	id  string

	workers []*Worker
	sup     *faas.Instance
	supGen  int
	plan    dataset.Plan
	batches *dataset.Cache
	shards  *dataset.ShardCache // nil unless Spec.Data == DataShard

	smoother *fit.EWMA
	tuner    *sched.Tuner
	meter    cost.Meter
	faults   *faults.Injector
	tr       *trace.Tracer
	drv      driver
	xchg     exchange.Exchange
	xchgIDs  []int // active-id scratch for exchange calls

	history     []LossPoint
	removals    []Removal
	evictExpire []string // consumed eviction-replica keys awaiting TTL expiry

	// recMu guards the relaunch and recovery counters, which concurrent
	// phase goroutines update.
	recMu      sync.Mutex
	relaunches int
	recovery   Recovery

	totalUpdateBytes int64
	prevBarrier      time.Duration
	lastStepDur      time.Duration

	// Control-plane shrink directives (Spec.Shrink sorted by At) not yet
	// handed to the tuner; shrinkIdx is the next due entry.
	shrink    []ShrinkDirective
	shrinkIdx int
}

// Run executes a training job on the cluster and returns its result.
func Run(cl *Cluster, job Job) (*Result, error) {
	return run(cl, job, "")
}

// RunNumbered executes a training job under a job number previously
// reserved with Cluster.ReserveJobIDs, bypassing the cluster's own
// counter. The fleet scheduler uses it so forked executions keep the
// exact namespaces a host-serial admission order would allocate.
func RunNumbered(cl *Cluster, job Job, num int) (*Result, error) {
	return run(cl, job, jobNamespace(job.Spec.Tenant, num))
}

func run(cl *Cluster, job Job, id string) (*Result, error) {
	job.Spec = job.Spec.withDefaults()
	if err := job.validate(job.Spec.MemoryMiB); err != nil {
		return nil, err
	}
	if exchange.IsCollective(job.Spec.Exchange) && cl.Redis.NumShards() > 1 {
		return nil, ErrExchangeShards
	}
	if id == "" {
		id = cl.nextJobID(job.Spec.Tenant)
	}
	e := &engine{
		cl:       cl,
		job:      job,
		id:       id,
		smoother: fit.NewEWMA(job.Spec.LossAlpha),
		tr:       job.Trace,
	}
	if e.tr.Enabled() {
		// Install the tracer on every substrate for the duration of the
		// run, mirroring the fault-injector lifecycle below. Operations
		// land on the track of whichever registered clock they are charged
		// to.
		cl.Platform.SetTracer(e.tr)
		cl.Redis.SetTracer(e.tr)
		cl.COS.SetTracer(e.tr)
		cl.Broker.SetTracer(e.tr)
		defer func() {
			cl.Platform.SetTracer(nil)
			cl.Redis.SetTracer(nil)
			cl.COS.SetTracer(nil)
			cl.Broker.SetTracer(nil)
		}()
	}
	if job.Spec.Faults.Enabled() {
		// Install the seeded injector on every substrate for the
		// duration of the run; decisions are pure functions of the spec
		// seed and each operation's identity, so the run is reproducible.
		e.faults = faults.New(job.Spec.Faults)
		cl.Platform.SetFaults(e.faults)
		cl.Redis.SetFaults(e.faults)
		cl.Broker.SetFaults(e.faults)
		defer func() {
			cl.Platform.SetFaults(nil)
			cl.Redis.SetFaults(nil)
			cl.Broker.SetFaults(nil)
		}()
	}
	if err := e.setup(); err != nil {
		if e.drv != nil {
			e.drv.Close()
		}
		return nil, err
	}
	defer e.drv.Close()
	return scheduleFor(job.Spec).Run(e)
}

// traceBoot registers a freshly invoked instance's clock under track and
// records its start latency as a cold-start or warm-start span. Call it
// immediately after a successful invocation, before charging anything
// else to the clock.
func (e *engine) traceBoot(inst *faas.Instance, track string) {
	if !e.tr.Enabled() {
		return
	}
	e.tr.RegisterClock(&inst.Clock, track)
	name := "warm-start"
	if inst.Cold {
		name = "cold-start"
	}
	e.tr.SpanOn(track, trace.CatFaaS, name, inst.StartedAt(), inst.Clock.Now(),
		trace.Str("fn", inst.Name))
}

func (e *engine) setup() error {
	spec := e.job.Spec

	drv, err := driverFor(spec.Driver)
	if err != nil {
		return err
	}
	e.drv = drv

	e.xchg, err = exchange.New(spec.Exchange, exchange.Env{
		KV:      e.cl.Redis,
		Obj:     e.cl.COS,
		Reg:     e.cl.Metrics,
		NS:      e.id,
		Bucket:  "xchg-" + e.id,
		Dim:     e.job.Model.NumParams(),
		Workers: spec.Workers,
		Fanout:  spec.TreeFanout,
		Charge: func(_ *vclock.Clock, worker int, flops float64) {
			e.chargeCompute(e.workers[worker], flops)
		},
	})
	if err != nil {
		return err
	}

	// Every instance boots at the job's launch instant: 0 standalone,
	// the admission time under the fleet control plane. The first
	// step's duration is measured from here.
	e.prevBarrier = spec.StartAt

	sup, err := e.invokeAt(e.supName(), spec.MemoryMiB, spec.StartAt, false)
	if err != nil {
		return fmt.Errorf("core: launch supervisor: %w", err)
	}
	e.sup = sup
	e.traceBoot(sup, supTrack)

	e.cl.Broker.DeclareQueue(e.lossQueue())
	e.cl.Broker.DeclareFanout(e.annExchange())

	v := spec.Significance
	if spec.Sync != consistency.ISP && spec.Sync != consistency.Async {
		v = 0
	}
	e.workers = make([]*Worker, spec.Workers)
	for i := range e.workers {
		inst, err := e.invokeAt(e.workerName(i, 0), spec.MemoryMiB, spec.StartAt, false)
		if err != nil {
			return fmt.Errorf("core: launch worker %d: %w", i, err)
		}
		e.traceBoot(inst, workerTrack(i))
		e.cl.Broker.DeclareQueue(e.annQueue(i))
		if err := e.cl.Broker.Bind(e.annExchange(), e.annQueue(i)); err != nil {
			return fmt.Errorf("core: bind worker %d: %w", i, err)
		}
		w := &Worker{
			id:     i,
			inst:   inst,
			model:  e.job.Model.Clone(),
			opt:    e.job.Optimizer.Clone(),
			filter: consistency.NewFilterVariant(v, spec.FilterVariant),
			alive:  true,
		}
		if spec.Data == DataShard {
			// validate() guaranteed the prototype implements ViewModel;
			// clones share the concrete type.
			w.vmodel = w.model.(model.ViewModel)
		}
		e.workers[i] = w
	}

	e.plan = dataset.NewPlan(e.job.NumBatches, spec.Workers)
	e.batches = dataset.NewCache(e.cl.COS, e.job.Bucket)
	if spec.Data == DataShard {
		// The manifest read is charged to the supervisor: it resolves the
		// shard geometry once and the workers inherit it, mirroring the
		// real deployment where the driver passes the layout in the
		// invocation payload.
		sc, err := dataset.OpenShardCache(e.cl.COS, &e.sup.Clock, e.job.Bucket)
		if err != nil {
			return fmt.Errorf("core: open shard tier: %w", err)
		}
		if sc.NumBatches() != e.job.NumBatches {
			return fmt.Errorf("core: shard manifest stages %d batches, job declares %d",
				sc.NumBatches(), e.job.NumBatches)
		}
		e.shards = sc
	}

	// The tuner serves two masters: the scale-in auto-tuner (§4.2) and
	// control-plane shrink requests (Spec.Shrink), both gated on the
	// same knee detection and MinWorkers floor.
	if spec.AutoTune || len(spec.Shrink) > 0 {
		cfg := spec.Sched
		// The supervisor smooths the global loss once; feed the tuner the
		// already-smoothed stream.
		cfg.LossAlpha = 1
		// Unless the caller says otherwise, never scale below a quarter
		// of the original pool: weak scaling shrinks the global batch
		// with p (§3.2), and a near-empty pool can destabilize deep
		// convergence.
		if cfg.MinWorkers <= 0 {
			cfg.MinWorkers = spec.Workers / 4
		}
		e.tuner = sched.New(cfg)
		if e.tr.Enabled() {
			e.tuner.SetTracer(e.tr, supTrack)
		}
	}
	if len(spec.Shrink) > 0 {
		e.shrink = append(e.shrink, spec.Shrink...)
		sort.SliceStable(e.shrink, func(i, j int) bool { return e.shrink[i].At < e.shrink[j].At })
	}
	return nil
}

func (e *engine) active() []*Worker {
	out := make([]*Worker, 0, len(e.workers))
	for _, w := range e.workers {
		if w.alive {
			out = append(out, w)
		}
	}
	return out
}

// chargeCompute advances a worker's clock by the virtual duration of
// flops floating-point operations at its memory-proportional CPU share.
func (e *engine) chargeCompute(w *Worker, flops float64) {
	secs := flops / (e.cl.Compute.FlopsPerSecond * w.inst.CPUShare())
	w.inst.Clock.Advance(time.Duration(secs * float64(time.Second)))
}

// expireStep emulates server-side TTL expiry for a completed step's
// exchange data (update keys or collective objects); expiry costs no
// client time.
func (e *engine) expireStep(step int, active []*Worker) {
	var janitor vclock.Clock
	e.xchgIDs = activeIDs(e.xchgIDs, active)
	e.xchg.Expire(&janitor, step, e.xchgIDs)
}

// activeIDs rewrites dst with the ids of ws, in pool order.
func activeIDs(dst []int, ws []*Worker) []int {
	dst = dst[:0]
	for _, w := range ws {
		dst = append(dst, w.id)
	}
	return dst
}

// endInstance terminates (or, if its container already died, reclaims)
// an instance, billing it into the job meter. All engine billing flows
// through TerminateInto/Reclaim, so the runs are marked claimed and a
// caller combining Run with Platform.BillTo cannot double-count them.
func (e *engine) endInstance(inst *faas.Instance) error {
	if dead(inst) {
		return e.cl.Platform.Reclaim(inst, &e.meter)
	}
	return e.cl.Platform.TerminateInto(inst, &e.meter)
}

func (e *engine) teardown(converged, diverged bool, lastSync int) (*Result, error) {
	// ExecTime is the job's own duration: barriers are absolute virtual
	// times, so a fleet job admitted at StartAt > 0 measures from there.
	execTime := e.prevBarrier - e.job.Spec.StartAt

	for _, w := range e.workers {
		if !w.alive {
			continue
		}
		if err := e.endInstance(w.inst); err != nil {
			return nil, err
		}
	}
	if err := e.endInstance(e.sup); err != nil {
		return nil, err
	}

	// Expire every key the job may still hold: update keys published
	// since the last sync point (the loop can stop mid-window under SSP)
	// and eviction replicas not yet expired. Checkpoints are deleted
	// when consumed, so a completed run leaves the store empty.
	lastStep := 0
	if len(e.history) > 0 {
		lastStep = e.history[len(e.history)-1].Step
	}
	var janitor vclock.Clock
	e.xchgIDs = activeIDs(e.xchgIDs, e.workers)
	for s := lastSync + 1; s <= lastStep; s++ {
		e.xchg.Expire(&janitor, s, e.xchgIDs)
	}
	for _, k := range e.evictExpire {
		e.cl.Redis.Delete(&janitor, k)
	}
	e.xchg.Teardown()
	e.xchg.BillInto(&e.meter)

	// The always-on VMs of the MLLess deployment (§6.1): messaging
	// (C1.4x4) and Redis (M1.2x16), prorated per second over the job.
	// A sharded KV tier rents one M1.2x16 per shard — the $ side of the
	// shard-count sweep's time/cost trade-off.
	e.meter.AddVM("messaging-vm-c1.4x4", cost.PriceC14x4PerHour, execTime)
	if n := e.cl.Redis.NumShards(); n > 1 {
		for i := 0; i < n; i++ {
			e.meter.AddVM(fmt.Sprintf("redis-vm-m1.2x16-s%d", i), cost.PriceM12x16PerHour, execTime)
		}
	} else {
		e.meter.AddVM("redis-vm-m1.2x16", cost.PriceM12x16PerHour, execTime)
	}

	// Surface the fault-recovery overhead on the bill. The line is a
	// memo: its function-seconds are already billed inside the worker
	// lines, so it is excluded from the total.
	if over := e.recovery.Overhead(); over > 0 {
		e.meter.AddMemo("recovery-overhead", over,
			cost.FunctionCost(over, float64(e.job.Spec.MemoryMiB)/1024))
	}

	finalLoss := 0.0
	if len(e.history) > 0 {
		finalLoss = e.history[len(e.history)-1].Loss
	}
	var stepPhases []StepPhase
	if e.tr.Enabled() {
		for _, b := range trace.Timeline(e.tr.Events()) {
			// A worker emits one reduce span per reduction round; the
			// phase's per-worker time is the round total, so fold the
			// per-round samples back over the pool that pulled.
			var reduce time.Duration
			if red, pulls := b.Stat("reduce"), b.Stat("pull").N; red.N > 0 && pulls > 0 {
				reduce = red.Mean * time.Duration(red.N) / time.Duration(pulls)
			}
			stepPhases = append(stepPhases, StepPhase{
				Step:    b.Step,
				Merge:   b.Stat("merge").Mean,
				Fetch:   b.Stat("fetch").Mean,
				Compute: b.Stat("compute").Mean,
				Publish: b.Stat("publish").Mean,
				Reduce:  reduce,
				Pull:    b.Stat("pull").Mean,
				Barrier: b.Stat("barrier").Max,
			})
		}
	}
	return &Result{
		ID:               e.id,
		Converged:        converged,
		Diverged:         diverged,
		ExecTime:         execTime,
		Steps:            len(e.history),
		FinalLoss:        finalLoss,
		History:          e.history,
		Removals:         e.removals,
		Cost:             e.meter.Report(),
		TotalUpdateBytes: e.totalUpdateBytes,
		Relaunches:       e.relaunches,
		Recovery:         e.recovery,
		StepPhases:       stepPhases,
		Faults:           e.faults.Metrics(),
	}, nil
}
