package core

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"mlless/internal/consistency"
	"mlless/internal/sched"
	"mlless/internal/trace"
)

func asyncSpec(spec Spec, cap int) Spec {
	spec.Sync = consistency.Async
	spec.Staleness = cap
	return spec
}

func TestAsyncCapOneMatchesBSP(t *testing.T) {
	// With staleness cap 1, a worker starting step s has seen exactly the
	// peer updates of step s-1 — the same update sequence BSP's barrier
	// enforces, applied in the same (peer-id) order. The loss history must
	// therefore match BSP step for step, bit for bit, while the timeline
	// sheds its barrier waits.
	clB, jobB := testPMFJob(t, 3, Spec{MaxSteps: 50})
	resB, err := Run(clB, jobB)
	if err != nil {
		t.Fatal(err)
	}
	clA, jobA := testPMFJob(t, 3, asyncSpec(Spec{MaxSteps: 50}, 1))
	resA, err := Run(clA, jobA)
	if err != nil {
		t.Fatal(err)
	}
	if resA.Steps != resB.Steps {
		t.Fatalf("async ran %d steps, BSP %d", resA.Steps, resB.Steps)
	}
	for i := range resB.History {
		b, a := resB.History[i], resA.History[i]
		if a.Step != b.Step || a.RawLoss != b.RawLoss || a.Loss != b.Loss {
			t.Fatalf("history diverges at index %d: async %+v vs BSP %+v", i, a, b)
		}
	}
	if resA.ExecTime > resB.ExecTime {
		t.Fatalf("barrier-free async slower than BSP: %v vs %v", resA.ExecTime, resB.ExecTime)
	}
	if clA.Redis.Len() != 0 {
		t.Fatalf("async run left %d keys in the store", clA.Redis.Len())
	}
}

func TestAsyncConverges(t *testing.T) {
	// Pure async (cap > 1) diverges from the BSP update sequence — workers
	// compute on staler replicas — but must still reach the target loss on
	// the seeded PMF job, with and without the ISP significance filter.
	for _, tc := range []struct {
		name string
		sig  float64
	}{
		{"plain", 0},
		{"with-isp-filter", 0.5},
	} {
		t.Run(tc.name, func(t *testing.T) {
			spec := asyncSpec(Spec{TargetLoss: 0.85, MaxSteps: 400}, 3)
			spec.Significance = tc.sig
			cl, job := testPMFJob(t, 4, spec)
			res, err := Run(cl, job)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Converged {
				t.Fatalf("async did not reach loss 0.85 in %d steps (final %v)",
					res.Steps, res.FinalLoss)
			}
			if res.ExecTime <= 0 {
				t.Fatal("non-positive exec time")
			}
			if cl.Redis.Len() != 0 {
				t.Fatalf("converged async run left %d keys in the store", cl.Redis.Len())
			}
		})
	}
}

func TestAsyncStepDurationsNonNegative(t *testing.T) {
	// Async reconciliation instants are the per-step publish maxima, which
	// grow monotonically only per worker — the cross-worker maximum can
	// regress between consecutive steps when a run-ahead worker published
	// early. advanceStep clamps the difference; every recorded duration
	// must come out non-negative.
	cl, job := testPMFJob(t, 4, asyncSpec(Spec{MaxSteps: 80}, 4))
	job.Spec.Faults = chaosSpec(11)
	res, err := Run(cl, job)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.History {
		if p.Duration < 0 {
			t.Fatalf("negative step duration at step %d: %v", p.Step, p.Duration)
		}
	}
}

func TestAsyncSurvivesFaults(t *testing.T) {
	cl, job := testPMFJob(t, 4, asyncSpec(Spec{MaxSteps: 150}, 3))
	job.Spec.Faults = chaosSpec(5)
	job.Spec.Faults.ReclaimProb = 0.9
	job.Spec.Faults.ReclaimMeanLife = 3 * time.Second
	res, err := Run(cl, job)
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps != 150 {
		t.Fatalf("faulted async run completed %d steps, want 150", res.Steps)
	}
	if res.Recovery.WorkerDeaths == 0 {
		t.Fatalf("no container deaths at ReclaimProb 0.9 (faults: %+v)", res.Faults)
	}
	if res.Recovery.Overhead() <= 0 {
		t.Fatalf("deaths without recovery overhead: %+v", res.Recovery)
	}
	if cl.Redis.Len() != 0 {
		t.Fatalf("faulted async run left %d keys in the store", cl.Redis.Len())
	}
}

func TestAsyncLeavesNoStaleKeys(t *testing.T) {
	// An early TargetLoss stop catches run-ahead workers mid-window: they
	// have published updates past the last aggregated step, which only the
	// post-loop janitor can reach. The store must still end empty.
	cl, job := testPMFJob(t, 4, asyncSpec(Spec{TargetLoss: 0.9, MaxSteps: 2000}, 4))
	job.Trace = trace.New()
	res, err := Run(cl, job)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("run did not stop on target loss (final %v after %d steps)", res.FinalLoss, res.Steps)
	}
	if res.Steps >= 2000 {
		t.Fatal("run was not an early stop; the test exercises nothing")
	}
	if cl.Redis.Len() != 0 {
		t.Fatalf("early-stopped async run left %d keys in the store", cl.Redis.Len())
	}
	// The janitor's deletes are supervisor work, charged on the
	// supervisor clock: they must show up on its track dated within the
	// run, not at virtual time 0 (a zero-valued clock would date them
	// there) or off the timeline entirely (an unregistered clock would
	// drop and under-charge them).
	janitorDels := 0
	for _, ev := range job.Trace.Events() {
		if ev.Cat == trace.CatKV && ev.Name == "del" && ev.Track == supTrack {
			janitorDels++
			if ev.Start <= 0 {
				t.Fatalf("janitor delete dated at virtual time %v, want > 0", ev.Start)
			}
		}
	}
	if janitorDels == 0 {
		t.Fatal("no janitor deletes on the supervisor track; run-ahead cleanup was uncharged")
	}
}

func TestAsyncDeterministicTraces(t *testing.T) {
	// The determinism guarantee extends to async: the driver is a
	// sequential discrete-event simulation (smallest (clock, id) runs
	// next), so identically-seeded faulted runs yield byte-identical
	// traces even though no barrier ever aligns the workers.
	run := func() (*Result, *trace.Tracer) {
		cl, job := testPMFJob(t, 4, asyncSpec(Spec{MaxSteps: 120}, 3))
		job.Spec.Faults = chaosSpec(3)
		job.Spec.Faults.ReclaimProb = 0.9
		job.Spec.Faults.ReclaimMeanLife = 3 * time.Second
		job.Trace = trace.New()
		res, err := Run(cl, job)
		if err != nil {
			t.Fatal(err)
		}
		return res, job.Trace
	}
	_, trA := run()
	resB, trB := run()

	var bufA, bufB bytes.Buffer
	if err := trace.WriteChrome(&bufA, trA.Events()); err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteChrome(&bufB, trB.Events()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bufA.Bytes(), bufB.Bytes()) {
		t.Fatal("async trace files differ across identically-seeded runs")
	}

	counts := make(map[string]int)
	for _, ev := range trB.Events() {
		counts[ev.Cat+"/"+ev.Name]++
	}
	for _, want := range []string{
		"faas/relaunch", "fault/recover",
		"engine/fetch", "engine/compute", "engine/publish", "engine/pull", "engine/aggregate",
	} {
		if counts[want] == 0 {
			t.Errorf("no %q events in a faulted async trace (have %v)", want, counts)
		}
	}
	// No barrier exists under async; a barrier span would mean lock-step
	// code leaked into the event-driven schedule.
	if counts["engine/barrier"] != 0 {
		t.Errorf("async trace contains %d barrier spans", counts["engine/barrier"])
	}
	if resB.Recovery.WorkerDeaths == 0 {
		t.Fatal("faulted async run recorded no deaths")
	}
}

func TestAsyncRejectsAutoTune(t *testing.T) {
	// The scale-in auto-tuner evicts at sync points, which async does not
	// have; the combination must fail validation up front.
	cl, job := testPMFJob(t, 4, asyncSpec(Spec{MaxSteps: 10}, 2))
	job.Spec.AutoTune = true
	job.Spec.Sched = sched.Config{Epoch: 300 * time.Millisecond, S: 0.1}
	if _, err := Run(cl, job); !errors.Is(err, ErrAsyncAutoTune) {
		t.Fatalf("async + auto-tune returned %v, want ErrAsyncAutoTune", err)
	}
}

func TestScheduleFor(t *testing.T) {
	if s := scheduleFor(Spec{Sync: consistency.BSP}.withDefaults()); s.Name() != "lockstep" {
		t.Fatalf("BSP spec got schedule %q", s.Name())
	}
	if s := scheduleFor(Spec{Sync: consistency.ISP, Staleness: 3}.withDefaults()); s.Name() != "lockstep" {
		t.Fatalf("SSP spec got schedule %q", s.Name())
	}
	s := scheduleFor(Spec{Sync: consistency.Async, Staleness: 4}.withDefaults())
	if s.Name() != "async" {
		t.Fatalf("async spec got schedule %q", s.Name())
	}
	if a, ok := s.(Async); !ok || a.Cap != 4 {
		t.Fatalf("async schedule did not carry the staleness cap: %+v", s)
	}
}
