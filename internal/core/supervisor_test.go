package core

import (
	"testing"
	"time"
)

func TestAdvanceStepClampsNegative(t *testing.T) {
	// Under SSP a worker recovered mid-window can rejoin behind the
	// previous reconciliation instant, making the raw step difference
	// negative. The horizon estimate feeding relaunchHorizon must clamp
	// to zero instead of going backwards in time.
	e := &engine{}
	if d := e.advanceStep(5 * time.Second); d != 5*time.Second {
		t.Fatalf("first step duration %v, want 5s", d)
	}
	if d := e.advanceStep(3 * time.Second); d != 0 {
		t.Fatalf("regressed reconciliation instant produced duration %v, want 0", d)
	}
	if e.prevBarrier != 3*time.Second {
		t.Fatalf("prevBarrier %v after regression, want 3s", e.prevBarrier)
	}
	if e.lastStepDur != 0 {
		t.Fatalf("lastStepDur %v after regression, want 0", e.lastStepDur)
	}
	// The estimate recovers as soon as time moves forward again.
	if d := e.advanceStep(4 * time.Second); d != time.Second {
		t.Fatalf("post-regression step duration %v, want 1s", d)
	}
}

func TestSSPRecoveryKeepsDurationsNonNegative(t *testing.T) {
	// The integration side of the clamp: an SSP window (Staleness 4) with
	// short-lived containers forces recoveries that rejoin behind the
	// pool, and every recorded step duration must still be non-negative.
	cl, job := testPMFJob(t, 4, Spec{MaxSteps: 120, Staleness: 4})
	job.Spec.Faults = chaosSpec(7)
	job.Spec.Faults.ReclaimProb = 0.9
	job.Spec.Faults.ReclaimMeanLife = 2 * time.Second
	res, err := Run(cl, job)
	if err != nil {
		t.Fatal(err)
	}
	if res.Recovery.WorkerDeaths == 0 {
		t.Fatalf("no deaths injected; the run exercises nothing (faults: %+v)", res.Faults)
	}
	for _, p := range res.History {
		if p.Duration < 0 {
			t.Fatalf("negative step duration at step %d: %v", p.Step, p.Duration)
		}
	}
	if res.Steps == 0 {
		t.Fatal("no steps completed")
	}
	if cl.Redis.Len() != 0 {
		t.Fatalf("SSP run left %d keys in the store", cl.Redis.Len())
	}
}
