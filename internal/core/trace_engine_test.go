package core

import (
	"bytes"
	"testing"
	"time"

	"mlless/internal/consistency"
	"mlless/internal/sched"
	"mlless/internal/trace"
)

// tracedFaultedRun executes the aggressive-fault PMF job with a fresh
// cluster and tracer and returns both.
func tracedFaultedRun(t *testing.T) (*Result, *trace.Tracer) {
	t.Helper()
	cl, job := testPMFJob(t, 4, Spec{MaxSteps: 120})
	job.Spec.Faults = chaosSpec(3)
	job.Spec.Faults.ReclaimProb = 0.9
	job.Spec.Faults.ReclaimMeanLife = 3 * time.Second
	job.Trace = trace.New()
	res, err := Run(cl, job)
	if err != nil {
		t.Fatal(err)
	}
	return res, job.Trace
}

func TestTraceDeterministicUnderFaults(t *testing.T) {
	// The determinism guarantee (DESIGN.md §7): identical seeds yield
	// byte-identical trace files even on a run full of reclamations,
	// relaunches and recoveries, where goroutine interleaving varies.
	_, trA := tracedFaultedRun(t)
	resB, trB := tracedFaultedRun(t)

	var bufA, bufB bytes.Buffer
	if err := trace.WriteChrome(&bufA, trA.Events()); err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteChrome(&bufB, trB.Events()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bufA.Bytes(), bufB.Bytes()) {
		t.Fatal("trace files differ across identically-seeded runs")
	}

	// The faulted run's trace must tell the §4.2/fault story: worker
	// deaths ("reclaim" billing instants), their recovery spans, the
	// per-step engine phases and the boot spans of replacements.
	counts := make(map[string]int)
	for _, ev := range trB.Events() {
		counts[ev.Cat+"/"+ev.Name]++
	}
	for _, want := range []string{
		"faas/reclaim", "faas/relaunch", "fault/recover", "faas/cold-start",
		"engine/fetch", "engine/compute", "engine/publish", "engine/pull", "engine/barrier",
		"kv/set", "kv/mget", "obj/get", "mq/publish",
	} {
		if counts[want] == 0 {
			t.Errorf("no %q events in a faulted traced run (have %v)", want, counts)
		}
	}
	if resB.Recovery.WorkerDeaths > 0 && counts["fault/recover"] < resB.Recovery.WorkerDeaths {
		t.Errorf("recover spans %d < worker deaths %d",
			counts["fault/recover"], resB.Recovery.WorkerDeaths)
	}

	// Traced runs surface the per-step decomposition on the Result.
	if len(resB.StepPhases) == 0 {
		t.Fatal("traced run produced no StepPhases")
	}
	if resB.StepPhases[0].Compute <= 0 || resB.StepPhases[0].Fetch <= 0 {
		t.Fatalf("empty phase decomposition: %+v", resB.StepPhases[0])
	}
}

func TestTracingDoesNotPerturbTheRun(t *testing.T) {
	run := func(traced bool) *Result {
		cl, job := testPMFJob(t, 4, Spec{TargetLoss: 0.85, MaxSteps: 300})
		job.Spec.Faults = chaosSpec(9)
		if traced {
			job.Trace = trace.New()
		}
		res, err := Run(cl, job)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain, traced := run(false), run(true)
	if plain.Steps != traced.Steps || plain.ExecTime != traced.ExecTime ||
		plain.FinalLoss != traced.FinalLoss || plain.Cost.Total != traced.Cost.Total {
		t.Fatalf("tracing perturbed the run: (%d, %v, %v, %v) vs (%d, %v, %v, %v)",
			plain.Steps, plain.ExecTime, plain.FinalLoss, plain.Cost.Total,
			traced.Steps, traced.ExecTime, traced.FinalLoss, traced.Cost.Total)
	}
	if len(plain.StepPhases) != 0 {
		t.Fatal("untraced run exported StepPhases")
	}
	if len(traced.StepPhases) == 0 {
		t.Fatal("traced run exported no StepPhases")
	}
}

func TestTraceRecordsSchedulerEvictions(t *testing.T) {
	cl, job := testPMFJob(t, 8, Spec{
		Sync: consistency.ISP, Significance: 0.5,
		TargetLoss: 0.73, MaxSteps: 4000,
		AutoTune: true,
		Sched:    sched.Config{Epoch: 300 * time.Millisecond, S: 0.1},
	})
	job.Trace = trace.New()
	res, err := Run(cl, job)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Removals) == 0 {
		t.Fatal("run exercised no evictions")
	}
	var evicts, decisions, merges int
	for _, ev := range job.Trace.Events() {
		if ev.Cat != trace.CatSched && !(ev.Cat == trace.CatEngine && ev.Name == "merge") {
			continue
		}
		switch ev.Name {
		case "evict":
			evicts++
			if ev.Track != "supervisor" {
				t.Fatalf("eviction instant on track %q", ev.Track)
			}
			if _, ok := ev.ArgInt("worker"); !ok {
				t.Fatalf("eviction instant lacks worker arg: %+v", ev)
			}
		case "merge":
			merges++
		default:
			decisions++
		}
	}
	if evicts != len(res.Removals) {
		t.Fatalf("evict instants %d != removals %d", evicts, len(res.Removals))
	}
	if decisions == 0 {
		t.Fatal("no auto-tuner decision instants recorded")
	}
	if merges == 0 {
		t.Fatal("no eviction-replica merge spans recorded")
	}
}
