//go:build !race

package core

// raceEnabled is false in regular builds; see race_on.go.
const raceEnabled = false
