package core

import (
	"errors"
	"math"
	"strings"
	"testing"
	"time"

	"mlless/internal/consistency"
	"mlless/internal/cost"
	"mlless/internal/faas"
	"mlless/internal/faults"
	"mlless/internal/sched"
)

// chaosSpec is a fault mix aggressive enough to exercise every recovery
// path on the small test jobs: transient invocation failures, cold-start
// stragglers, frequent short-lived containers and KV/broker faults.
func chaosSpec(seed uint64) faults.Spec {
	return faults.Spec{
		Seed:            seed,
		InvokeFailProb:  0.15,
		StragglerProb:   0.2,
		ReclaimProb:     0.25,
		ReclaimMeanLife: 20 * time.Second,
		KVFailProb:      0.02,
		KVSlowProb:      0.02,
		MQFailProb:      0.02,
		MQSlowProb:      0.02,
	}
}

func TestTrainingSurvivesFaults(t *testing.T) {
	cl, job := testPMFJob(t, 4, Spec{MaxSteps: 200})
	job.Spec.Faults = chaosSpec(3)
	// Containers die almost surely and quickly, so the run must recover
	// repeatedly to finish.
	job.Spec.Faults.ReclaimProb = 0.9
	job.Spec.Faults.ReclaimMeanLife = 3 * time.Second
	res, err := Run(cl, job)
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps == 0 {
		t.Fatal("no steps completed")
	}
	if res.Recovery.WorkerDeaths == 0 {
		t.Fatalf("no container deaths at ReclaimProb 0.25 (faults: %+v)", res.Faults)
	}
	if res.Faults.ReclaimsScheduled == 0 {
		t.Fatalf("injector scheduled no reclamations: %+v", res.Faults)
	}
	if res.Recovery.Overhead() <= 0 {
		t.Fatalf("deaths without recovery overhead: %+v", res.Recovery)
	}
	// The recovery overhead must surface on the bill as a memo line, and
	// the memo must be excluded from the total (its function-seconds are
	// already billed inside the worker lines).
	memo := false
	sum := 0.0
	for _, c := range res.Cost.Components {
		if c.Kind == "memo" {
			if c.Name != "recovery-overhead" {
				t.Fatalf("unexpected memo component %q", c.Name)
			}
			if c.Duration != res.Recovery.Overhead() || c.Dollars <= 0 {
				t.Fatalf("memo line inconsistent: %+v vs overhead %v", c, res.Recovery.Overhead())
			}
			memo = true
			continue
		}
		sum += c.Dollars
	}
	if !memo {
		t.Fatal("recovery-overhead memo missing from the bill")
	}
	if math.Abs(sum-res.Cost.Total) > 1e-9 {
		t.Fatalf("memo counted into the total: sum %v vs total %v", sum, res.Cost.Total)
	}
	// A completed run leaves no stale keys, relaunches and recoveries
	// included.
	if n := cl.Redis.Len(); n != 0 {
		t.Fatalf("%d stale KV keys after a faulted run", n)
	}
}

func TestFaultInjectionDeterministic(t *testing.T) {
	run := func() *Result {
		cl, job := testPMFJob(t, 4, Spec{TargetLoss: 0.85, MaxSteps: 300})
		job.Spec.Faults = chaosSpec(9)
		res, err := Run(cl, job)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Steps != b.Steps || a.ExecTime != b.ExecTime || a.FinalLoss != b.FinalLoss {
		t.Fatalf("non-deterministic under faults: (%d, %v, %v) vs (%d, %v, %v)",
			a.Steps, a.ExecTime, a.FinalLoss, b.Steps, b.ExecTime, b.FinalLoss)
	}
	if a.Recovery != b.Recovery {
		t.Fatalf("recovery diverges: %+v vs %+v", a.Recovery, b.Recovery)
	}
	if a.Faults != b.Faults {
		t.Fatalf("fault metrics diverge: %+v vs %+v", a.Faults, b.Faults)
	}
	if a.Relaunches != b.Relaunches || a.Cost.Total != b.Cost.Total {
		t.Fatalf("bill diverges: (%d, %v) vs (%d, %v)",
			a.Relaunches, a.Cost.Total, b.Relaunches, b.Cost.Total)
	}
	for i := range a.History {
		if a.History[i] != b.History[i] {
			t.Fatalf("history diverges at step %d", i+1)
		}
	}
}

func TestNoStaleKeysAfterRelaunches(t *testing.T) {
	// Slow compute forces checkpoint/re-launch cycles; every checkpoint
	// key must be consumed and deleted.
	cl, job := testLRJob(t, 2, Spec{MaxSteps: 40})
	cl.Compute = ComputeModel{FlopsPerSecond: 1000}
	res, err := Run(cl, job)
	if err != nil {
		t.Fatal(err)
	}
	if res.Relaunches == 0 {
		t.Fatal("run exercised no relaunches")
	}
	if n := cl.Redis.Len(); n != 0 {
		t.Fatalf("%d stale KV keys after %d relaunches", n, res.Relaunches)
	}
}

func TestNoStaleKeysAfterEvictions(t *testing.T) {
	// The auto-tuner parks eviction replicas in the KV store; once every
	// survivor has merged them the keys must expire.
	cl, job := testPMFJob(t, 8, Spec{
		Sync: consistency.ISP, Significance: 0.5,
		TargetLoss: 0.73, MaxSteps: 4000,
		AutoTune: true,
		Sched:    sched.Config{Epoch: 300 * time.Millisecond, S: 0.1},
	})
	res, err := Run(cl, job)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Removals) == 0 {
		t.Fatal("run exercised no evictions")
	}
	if n := cl.Redis.Len(); n != 0 {
		t.Fatalf("%d stale KV keys after %d evictions", n, len(res.Removals))
	}
}

func TestRelaunchGenerationsGetDistinctLabels(t *testing.T) {
	// Long enough at the slow clock that workers re-launch more than once:
	// the bill must carry one uniquely-named line per invocation
	// (worker-N, worker-N-r1, worker-N-r2, ...), never a shared label.
	cl, job := testLRJob(t, 2, Spec{MaxSteps: 80})
	cl.Compute = ComputeModel{FlopsPerSecond: 1000}
	res, err := Run(cl, job)
	if err != nil {
		t.Fatal(err)
	}
	if res.Relaunches < 4 {
		t.Fatalf("want multiple relaunches per worker, got %d", res.Relaunches)
	}
	seen := make(map[string]bool)
	secondGen := false
	for _, c := range res.Cost.Components {
		if c.Kind != "function" {
			continue
		}
		if seen[c.Name] {
			t.Fatalf("billing label %q reused across invocations", c.Name)
		}
		seen[c.Name] = true
		if strings.Contains(c.Name, "-r2") {
			secondGen = true
		}
	}
	if !secondGen {
		t.Fatalf("no second-generation (-r2) label among %d function lines", len(seen))
	}
}

func TestOverLimitSurfacedWhenStepCannotFit(t *testing.T) {
	// A single step too long for the 10-minute cap cannot be split by the
	// checkpoint/re-launch path, so the engine must surface ErrOverLimit
	// instead of silently overrunning.
	cl, job := testLRJob(t, 2, Spec{MaxSteps: 5})
	cl.Compute = ComputeModel{FlopsPerSecond: 1} // one step >> MaxDuration
	_, err := Run(cl, job)
	if !errors.Is(err, faas.ErrOverLimit) {
		t.Fatalf("err = %v, want ErrOverLimit", err)
	}
}

func TestBillToAfterRunAddsNothing(t *testing.T) {
	// The engine bills every invocation through TerminateInto/Reclaim, so
	// a caller combining Run with Platform.BillTo must not double-count
	// GB-seconds.
	cl, job := testLRJob(t, 3, Spec{MaxSteps: 20})
	res, err := Run(cl, job)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost.Total <= 0 {
		t.Fatal("run billed nothing")
	}
	var m cost.Meter
	cl.Platform.BillTo(&m)
	if rep := m.Report(); rep.Total != 0 || len(rep.Components) != 0 {
		t.Fatalf("BillTo re-billed claimed runs: %+v", rep)
	}
}

func TestFaultFreeSpecInjectsNothing(t *testing.T) {
	// The zero FaultSpec must leave the run untouched: identical result
	// to a job that never mentions faults.
	clA, jobA := testPMFJob(t, 3, Spec{MaxSteps: 60})
	clB, jobB := testPMFJob(t, 3, Spec{MaxSteps: 60})
	jobB.Spec.Faults = faults.Spec{Seed: 1234} // seed alone enables nothing
	a, err := Run(clA, jobA)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(clB, jobB)
	if err != nil {
		t.Fatal(err)
	}
	if a.ExecTime != b.ExecTime || a.FinalLoss != b.FinalLoss || a.Cost.Total != b.Cost.Total {
		t.Fatalf("zero fault spec perturbed the run: (%v, %v, %v) vs (%v, %v, %v)",
			a.ExecTime, a.FinalLoss, a.Cost.Total, b.ExecTime, b.FinalLoss, b.Cost.Total)
	}
	if b.Recovery != (Recovery{}) || b.Faults != (faults.Metrics{}) {
		t.Fatalf("zero fault spec reported activity: %+v, %+v", b.Recovery, b.Faults)
	}
}
