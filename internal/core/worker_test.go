package core

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"mlless/internal/fit"
)

func TestPhaseJoinsAllErrors(t *testing.T) {
	// A phase where several workers fail must report every failure, not
	// just the lowest-id one: under aggressive fault injection the first
	// error is often a symptom and a later one the cause. Both drivers
	// share the contract.
	ws := []*Worker{{id: 0}, {id: 1}, {id: 2}}
	err0 := errors.New("worker 0 exploded")
	err2 := errors.New("worker 2 exploded")
	for _, drv := range []driver{seqDriver{}, &parDriver{}} {
		err := drv.Phase(ws, func(w *Worker) error {
			switch w.id {
			case 0:
				return err0
			case 2:
				return err2
			}
			return nil
		})
		if err == nil {
			t.Fatalf("%s: phase with two failing workers returned nil", drv.Name())
		}
		if !errors.Is(err, err0) || !errors.Is(err, err2) {
			t.Fatalf("%s: joined error lost a worker failure: %v", drv.Name(), err)
		}
		if err := drv.Phase(ws, func(*Worker) error { return nil }); err != nil {
			t.Fatalf("%s: clean phase returned %v", drv.Name(), err)
		}
		drv.Close()
	}
}

// pullTestEngine builds a set-up engine without running a schedule, so
// tests can drive individual worker states directly.
func pullTestEngine(t *testing.T, workers int) (*Cluster, *engine) {
	t.Helper()
	cl, job := testPMFJob(t, workers, Spec{MaxSteps: 4})
	job.Spec = job.Spec.withDefaults()
	e := &engine{
		cl:       cl,
		job:      job,
		id:       cl.nextJobID(""),
		smoother: fit.NewEWMA(job.Spec.LossAlpha),
	}
	if err := e.setup(); err != nil {
		t.Fatal(err)
	}
	return cl, e
}

func TestPullErrorNamesAnnouncedSet(t *testing.T) {
	// A missing peer update is the classic lost-write symptom; the error
	// must name both the absent key and the announce-derived expected set,
	// so the mismatch between "promised" and "present" is visible in one
	// line.
	cl, e := pullTestEngine(t, 2)

	// Worker 1 announces its step-1 update but never writes the key.
	w1 := e.workers[1]
	if err := cl.Broker.PublishFanout(&w1.inst.Clock, e.annExchange(),
		announce{Worker: 1, Step: 1, Bytes: 42}.encode()); err != nil {
		t.Fatal(err)
	}

	w0 := e.workers[0]
	c := &stepCtx{step: 1, fromStep: 0, toStep: 1, active: e.workers, segStart: w0.inst.Clock.Now()}
	err := e.stepPull(w0, c)
	if err == nil {
		t.Fatal("pull of an unwritten update succeeded")
	}
	missing := e.updKey(1, 1)
	if !strings.Contains(err.Error(), "missing peer update "+missing) {
		t.Fatalf("error does not name the missing key %s: %v", missing, err)
	}
	if !strings.Contains(err.Error(), fmt.Sprintf("announced: [%s]", missing)) {
		t.Fatalf("error does not surface the announced set: %v", err)
	}
}

func TestPullErrorWithEmptyAnnouncedSet(t *testing.T) {
	// No announcements at all (e.g. a dropped fanout) renders as "none"
	// rather than an empty bracket pair.
	_, e := pullTestEngine(t, 2)
	w0 := e.workers[0]
	c := &stepCtx{step: 1, fromStep: 0, toStep: 1, active: e.workers, segStart: w0.inst.Clock.Now()}
	err := e.stepPull(w0, c)
	if err == nil {
		t.Fatal("pull of an unwritten update succeeded")
	}
	if !strings.Contains(err.Error(), "(announced: none)") {
		t.Fatalf("empty announced set not rendered as none: %v", err)
	}
}
