package core

import (
	"time"

	"mlless/internal/cost"
	"mlless/internal/faults"
)

// LossPoint is one step of the global training trace.
type LossPoint struct {
	// Step is the 1-based training step.
	Step int
	// Time is the virtual wall-clock at the step's BSP barrier.
	Time time.Duration
	// Loss is the EWMA-smoothed global loss after the step.
	Loss float64
	// RawLoss is the unsmoothed mean of worker batch losses.
	RawLoss float64
	// Workers is the active worker count during the step.
	Workers int
	// UpdateBytes is the total size of updates published this step, the
	// quantity ISP compresses.
	UpdateBytes int64
	// Duration is the step's wall-clock length.
	Duration time.Duration
}

// Removal records one auto-tuner eviction.
type Removal struct {
	// Step is the training step after which the worker left.
	Step int
	// Time is the virtual time of the eviction.
	Time time.Duration
	// Worker is the evicted worker's id.
	Worker int
	// WorkersLeft is the pool size after the eviction.
	WorkersLeft int
}

// StepPhase is one step's time decomposition (the §5 t_step breakdown),
// derived from the run's trace: mean per-worker virtual time in each
// engine phase, except Barrier, which is the longest wait (the slowest
// worker paces the step). Durations are zero for phases that did not
// occur in the step.
type StepPhase struct {
	// Step is the 1-based training step.
	Step int
	// Merge is the one-shot reintegration of an evicted peer's replica.
	Merge time.Duration
	// Fetch is the mini-batch download from object storage.
	Fetch time.Duration
	// Compute is the local gradient/optimizer/filter work.
	Compute time.Duration
	// Publish is the update upload plus broker announcements.
	Publish time.Duration
	// Reduce is the collective reduction-round work (zero under the
	// parameter-server exchange, which has no reduction phase).
	Reduce time.Duration
	// Pull is the peer-update download and aggregation.
	Pull time.Duration
	// Barrier is the longest BSP barrier wait.
	Barrier time.Duration
}

// Recovery aggregates the fault-recovery work a run performed: what it
// cost, in virtual time, to survive injected failures (see
// internal/faults). The zero value means an undisturbed run.
type Recovery struct {
	// InvokeRetries counts invocation attempts that failed transiently
	// and were retried with backoff.
	InvokeRetries int
	// WorkerDeaths counts mid-run container reclamations recovered
	// through the checkpoint path (supervisor deaths included).
	WorkerDeaths int
	// RestartTime is the virtual time spent on retry backoff, booting
	// replacement containers and re-downloading replica state.
	RestartTime time.Duration
	// RecomputeTime is the virtual time spent redoing step work that
	// died with a reclaimed container.
	RecomputeTime time.Duration
}

// Overhead is the total virtual time the job spent recovering from
// faults rather than training.
func (rc Recovery) Overhead() time.Duration { return rc.RestartTime + rc.RecomputeTime }

// Result is the outcome of a training job.
type Result struct {
	// ID is the job's namespace prefix on the shared substrates
	// ("jobN", or "<tenant>/jobN" for a tenant's job) — the root of its
	// keys, queues and billing labels.
	ID string
	// Converged reports whether TargetLoss was reached.
	Converged bool
	// Diverged reports that training blew up (NaN/Inf loss); the run is
	// stopped immediately when detected.
	Diverged bool
	// ExecTime is the virtual wall-clock from job launch to completion
	// (startup excluded, as the paper's comparisons exclude it, §7).
	ExecTime time.Duration
	// Steps is the number of completed BSP steps.
	Steps int
	// FinalLoss is the last smoothed global loss.
	FinalLoss float64
	// History is the per-step trace (Fig 6's loss-vs-time series).
	History []LossPoint
	// Removals is the auto-tuner's eviction log.
	Removals []Removal
	// Cost is the itemized bill (workers + supervisor + the two VMs).
	Cost cost.Report
	// TotalUpdateBytes sums all published updates across the run.
	TotalUpdateBytes int64
	// Relaunches counts workers re-launched at the 10-minute FaaS limit.
	Relaunches int
	// Recovery aggregates the fault-recovery work the run performed.
	Recovery Recovery
	// StepPhases is the per-step time decomposition. Populated only when
	// the job ran with a tracer (Job.Trace); empty otherwise.
	StepPhases []StepPhase
	// Faults counts the faults injected into the run (zero when the
	// job's fault spec is disabled).
	Faults faults.Metrics
}

// TimeToLoss returns the first virtual time at which the smoothed loss
// reached target, and whether it ever did — the metric behind the
// paper's speedup claims ("to converge to a 'prudent' RMSE loss of
// 0.738, PyTorch spends 2029 seconds; MLLess reaches it after 140").
func (r *Result) TimeToLoss(target float64) (time.Duration, bool) {
	for _, p := range r.History {
		if p.Loss <= target {
			return p.Time, true
		}
	}
	return 0, false
}

// LossAtTime returns the smoothed loss of the last step completed by
// virtual time t (Fig 7's loss-under-budget metric). Before the first
// step it returns the first recorded loss and false.
func (r *Result) LossAtTime(t time.Duration) (float64, bool) {
	last, ok := 0.0, false
	for _, p := range r.History {
		if p.Time > t {
			break
		}
		last, ok = p.Loss, true
	}
	if !ok && len(r.History) > 0 {
		return r.History[0].Loss, false
	}
	return last, ok
}

// CostToLoss integrates the job's spending rate up to the first time the
// smoothed loss reached target. It prorates every cost component over
// ExecTime, which is exact for the VMs and for workers that ran the whole
// job, and a close upper bound for auto-tuned pools (dollars accrue
// slower after evictions).
func (r *Result) CostToLoss(target float64) (float64, bool) {
	t, ok := r.TimeToLoss(target)
	if !ok {
		return 0, false
	}
	if r.ExecTime <= 0 {
		return 0, true
	}
	return r.Cost.Total * t.Seconds() / r.ExecTime.Seconds(), true
}
