package core

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"mlless/internal/cost"
)

func TestWriteJSON(t *testing.T) {
	res := &Result{
		Converged: true,
		ExecTime:  90 * time.Second,
		Steps:     2,
		FinalLoss: 0.7,
		History: []LossPoint{
			{Step: 1, Time: 40 * time.Second, Loss: 0.9, RawLoss: 0.91, Workers: 4, UpdateBytes: 100},
			{Step: 2, Time: 90 * time.Second, Loss: 0.7, RawLoss: 0.69, Workers: 3, UpdateBytes: 80},
		},
		Removals: []Removal{{Step: 1, Time: 40 * time.Second, Worker: 2, WorkersLeft: 3}},
	}
	res.Cost.Total = 0.5
	res.Cost.Components = []cost.Component{
		{Name: "worker-0", Kind: "function", Duration: 90 * time.Second, Dollars: 0.25},
	}

	var buf bytes.Buffer
	if err := res.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var parsed map[string]any
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatal(err)
	}
	if parsed["exec_time_s"].(float64) != 90 {
		t.Fatalf("exec_time_s = %v", parsed["exec_time_s"])
	}
	hist := parsed["history"].([]any)
	if len(hist) != 2 {
		t.Fatalf("history length %d", len(hist))
	}
	first := hist[0].(map[string]any)
	if first["time_s"].(float64) != 40 || first["workers"].(float64) != 4 {
		t.Fatalf("first point: %v", first)
	}
	if len(parsed["removals"].([]any)) != 1 {
		t.Fatal("removals missing")
	}
	bill := parsed["bill"].([]any)
	if bill[0].(map[string]any)["usd"].(float64) != 0.25 {
		t.Fatalf("bill: %v", bill)
	}
}
