package core

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"mlless/internal/cost"
)

func TestWriteJSON(t *testing.T) {
	res := &Result{
		Converged: true,
		ExecTime:  90 * time.Second,
		Steps:     2,
		FinalLoss: 0.7,
		History: []LossPoint{
			{Step: 1, Time: 40 * time.Second, Loss: 0.9, RawLoss: 0.91, Workers: 4, UpdateBytes: 100},
			{Step: 2, Time: 90 * time.Second, Loss: 0.7, RawLoss: 0.69, Workers: 3, UpdateBytes: 80},
		},
		Removals: []Removal{{Step: 1, Time: 40 * time.Second, Worker: 2, WorkersLeft: 3}},
	}
	res.Cost.Total = 0.5
	res.Cost.Components = []cost.Component{
		{Name: "worker-0", Kind: "function", Duration: 90 * time.Second, Dollars: 0.25},
	}

	var buf bytes.Buffer
	if err := res.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var parsed map[string]any
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatal(err)
	}
	if parsed["exec_time_s"].(float64) != 90 {
		t.Fatalf("exec_time_s = %v", parsed["exec_time_s"])
	}
	hist := parsed["history"].([]any)
	if len(hist) != 2 {
		t.Fatalf("history length %d", len(hist))
	}
	first := hist[0].(map[string]any)
	if first["time_s"].(float64) != 40 || first["workers"].(float64) != 4 {
		t.Fatalf("first point: %v", first)
	}
	if len(parsed["removals"].([]any)) != 1 {
		t.Fatal("removals missing")
	}
	bill := parsed["bill"].([]any)
	if bill[0].(map[string]any)["usd"].(float64) != 0.25 {
		t.Fatalf("bill: %v", bill)
	}
	if _, ok := parsed["recovery"]; ok {
		t.Fatal("recovery block exported for an undisturbed run")
	}
	if _, ok := parsed["step_phases"]; ok {
		t.Fatal("step_phases exported for an untraced run")
	}
}

func TestWriteJSONRecoveryAndPhases(t *testing.T) {
	res := &Result{
		ExecTime: 10 * time.Second,
		Steps:    1,
		Recovery: Recovery{
			InvokeRetries: 3,
			WorkerDeaths:  2,
			RestartTime:   1500 * time.Millisecond,
			RecomputeTime: 250 * time.Millisecond,
		},
		StepPhases: []StepPhase{{
			Step: 1, Fetch: 100 * time.Millisecond, Compute: 2 * time.Second,
			Publish: 50 * time.Millisecond, Pull: 300 * time.Millisecond,
			Barrier: 40 * time.Millisecond,
		}},
	}

	var buf bytes.Buffer
	if err := res.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var parsed map[string]any
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatal(err)
	}
	rec, ok := parsed["recovery"].(map[string]any)
	if !ok {
		t.Fatal("recovery block missing")
	}
	if rec["invoke_retries"].(float64) != 3 || rec["worker_deaths"].(float64) != 2 {
		t.Fatalf("recovery counters: %v", rec)
	}
	if rec["restart_time_s"].(float64) != 1.5 || rec["recompute_time_s"].(float64) != 0.25 {
		t.Fatalf("recovery durations: %v", rec)
	}
	phases, ok := parsed["step_phases"].([]any)
	if !ok || len(phases) != 1 {
		t.Fatalf("step_phases: %v", parsed["step_phases"])
	}
	p0 := phases[0].(map[string]any)
	if p0["step"].(float64) != 1 || p0["compute_s"].(float64) != 2 {
		t.Fatalf("phase row: %v", p0)
	}
	if p0["fetch_s"].(float64) != 0.1 || p0["barrier_s"].(float64) != 0.04 {
		t.Fatalf("phase row: %v", p0)
	}
	if _, ok := p0["merge_s"]; ok {
		t.Fatal("zero merge_s should be omitted")
	}
}
