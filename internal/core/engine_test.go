package core

import (
	"errors"
	"math"
	"strings"
	"testing"
	"time"

	"mlless/internal/consistency"
	"mlless/internal/dataset"
	"mlless/internal/faas"
	"mlless/internal/model"
	"mlless/internal/optimizer"
	"mlless/internal/sched"
	"mlless/internal/vclock"
)

// testLRJob stages a small Criteo-shaped dataset and returns a cluster
// and an LR job over it.
func testLRJob(t testing.TB, workers int, spec Spec) (*Cluster, Job) {
	t.Helper()
	cl := NewCluster()
	cfg := dataset.CriteoConfig{
		Samples: 6000, NumericFeatures: 5, CategoricalFeatures: 8,
		HashDim: 2000, Cardinality: 100, Separation: 1.6, Seed: 11,
	}
	ds := dataset.GenerateCriteo(cfg)
	var clk vclock.Clock
	n := dataset.Stage(ds, cl.COS, &clk, "criteo", 250, 1)
	if err := dataset.NormalizeMinMax(cl.COS, &clk, "criteo", n, cfg.NumericFeatures); err != nil {
		t.Fatal(err)
	}
	spec.Workers = workers
	return cl, Job{
		Spec:       spec,
		Model:      model.NewLogReg(cfg.HashDim+cfg.NumericFeatures, 0),
		Optimizer:  optimizer.NewAdamDefaults(optimizer.Constant(0.05)),
		Bucket:     "criteo",
		NumBatches: n,
		BatchSize:  250,
	}
}

// testPMFJob stages a small MovieLens-shaped dataset and returns a
// cluster and PMF job.
func testPMFJob(t testing.TB, workers int, spec Spec) (*Cluster, Job) {
	t.Helper()
	cl := NewCluster()
	cfg := dataset.MovieLensConfig{Users: 150, Items: 600, Ratings: 30000, Rank: 8, NoiseStd: 0.6, Seed: 21}
	ds := dataset.GenerateMovieLens(cfg)
	var clk vclock.Clock
	n := dataset.Stage(ds, cl.COS, &clk, "ml", 500, 2)
	spec.Workers = workers
	return cl, Job{
		Spec:       spec,
		Model:      model.NewPMF(cfg.Users, cfg.Items, cfg.Rank, ds.RatingMean, 0.02, 31),
		Optimizer:  optimizer.NewNesterov(optimizer.Constant(1.0), 0.9),
		Bucket:     "ml",
		NumBatches: n,
		BatchSize:  500,
	}
}

func TestLRConverges(t *testing.T) {
	cl, job := testLRJob(t, 4, Spec{TargetLoss: 0.62, MaxSteps: 400})
	res, err := Run(cl, job)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("LR did not reach BCE 0.62 in %d steps (final %v)", res.Steps, res.FinalLoss)
	}
	if res.ExecTime <= 0 {
		t.Fatal("non-positive exec time")
	}
	if res.FinalLoss > 0.62 {
		t.Fatalf("final loss %v above target", res.FinalLoss)
	}
}

func TestPMFConverges(t *testing.T) {
	cl, job := testPMFJob(t, 4, Spec{TargetLoss: 0.80, MaxSteps: 800})
	res, err := Run(cl, job)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("PMF did not reach RMSE 0.80 in %d steps (final %v)", res.Steps, res.FinalLoss)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() *Result {
		cl, job := testPMFJob(t, 4, Spec{TargetLoss: 0.85, MaxSteps: 300})
		res, err := Run(cl, job)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Steps != b.Steps || a.ExecTime != b.ExecTime || a.FinalLoss != b.FinalLoss {
		t.Fatalf("non-deterministic: (%d, %v, %v) vs (%d, %v, %v)",
			a.Steps, a.ExecTime, a.FinalLoss, b.Steps, b.ExecTime, b.FinalLoss)
	}
	for i := range a.History {
		if a.History[i] != b.History[i] {
			t.Fatalf("history diverges at step %d", i+1)
		}
	}
}

func TestISPWithZeroThresholdEqualsBSP(t *testing.T) {
	// Appendix A corollary at system level: v = 0 ⇒ identical training.
	clA, jobA := testPMFJob(t, 3, Spec{Sync: consistency.BSP, MaxSteps: 60})
	clB, jobB := testPMFJob(t, 3, Spec{Sync: consistency.ISP, Significance: 0, MaxSteps: 60})
	a, err := Run(clA, jobA)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(clB, jobB)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.History) != len(b.History) {
		t.Fatalf("step counts differ: %d vs %d", len(a.History), len(b.History))
	}
	for i := range a.History {
		if a.History[i].RawLoss != b.History[i].RawLoss {
			t.Fatalf("loss diverges at step %d: %v vs %v", i+1, a.History[i].RawLoss, b.History[i].RawLoss)
		}
		if a.History[i].UpdateBytes != b.History[i].UpdateBytes {
			t.Fatalf("update bytes diverge at step %d", i+1)
		}
	}
}

func TestISPReducesTrafficAndTime(t *testing.T) {
	clA, jobA := testPMFJob(t, 6, Spec{Sync: consistency.BSP, MaxSteps: 120})
	clB, jobB := testPMFJob(t, 6, Spec{Sync: consistency.ISP, Significance: 0.7, MaxSteps: 120})
	bsp, err := Run(clA, jobA)
	if err != nil {
		t.Fatal(err)
	}
	isp, err := Run(clB, jobB)
	if err != nil {
		t.Fatal(err)
	}
	if isp.TotalUpdateBytes >= bsp.TotalUpdateBytes {
		t.Fatalf("ISP bytes %d not below BSP bytes %d", isp.TotalUpdateBytes, bsp.TotalUpdateBytes)
	}
	if isp.ExecTime >= bsp.ExecTime {
		t.Fatalf("ISP time %v not below BSP time %v", isp.ExecTime, bsp.ExecTime)
	}
}

func TestISPStillConverges(t *testing.T) {
	cl, job := testPMFJob(t, 6, Spec{
		Sync: consistency.ISP, Significance: 0.7, TargetLoss: 0.80, MaxSteps: 800,
	})
	res, err := Run(cl, job)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("ISP run did not converge (final %v after %d steps)", res.FinalLoss, res.Steps)
	}
}

func TestAutoTunerRemovesWorkersAndCutsCost(t *testing.T) {
	spec := Spec{
		Sync: consistency.ISP, Significance: 0.5,
		TargetLoss: 0.73, MaxSteps: 4000,
		AutoTune: true,
		Sched:    sched.Config{Epoch: 300 * time.Millisecond, S: 0.1},
	}
	clT, jobT := testPMFJob(t, 8, spec)
	tuned, err := Run(clT, jobT)
	if err != nil {
		t.Fatal(err)
	}
	specOff := spec
	specOff.AutoTune = false
	clU, jobU := testPMFJob(t, 8, specOff)
	untuned, err := Run(clU, jobU)
	if err != nil {
		t.Fatal(err)
	}
	if !tuned.Converged || !untuned.Converged {
		t.Fatalf("convergence: tuned=%v untuned=%v", tuned.Converged, untuned.Converged)
	}
	if len(tuned.Removals) == 0 {
		t.Fatal("auto-tuner removed no workers")
	}
	last := tuned.History[len(tuned.History)-1]
	if last.Workers >= 8 {
		t.Fatal("worker count never decreased")
	}
	// Perf/$ must improve (the Fig 5 claim).
	perfTuned := 1 / (tuned.ExecTime.Seconds() * tuned.Cost.Total)
	perfUntuned := 1 / (untuned.ExecTime.Seconds() * untuned.Cost.Total)
	if perfTuned <= perfUntuned {
		t.Fatalf("auto-tuner did not improve Perf/$: %v vs %v", perfTuned, perfUntuned)
	}
}

func TestRemovalNeverBelowMinWorkers(t *testing.T) {
	cl, job := testPMFJob(t, 3, Spec{
		Sync: consistency.ISP, Significance: 0.5, MaxSteps: 600,
		AutoTune: true,
		Sched:    sched.Config{Epoch: time.Second, S: 0.5, MinWorkers: 2},
	})
	res, err := Run(cl, job)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.History {
		if p.Workers < 2 {
			t.Fatalf("worker count %d fell below MinWorkers", p.Workers)
		}
	}
}

func TestBillingComponents(t *testing.T) {
	cl, job := testLRJob(t, 3, Spec{MaxSteps: 20})
	res, err := Run(cl, job)
	if err != nil {
		t.Fatal(err)
	}
	var haveWorker, haveSup, haveRedis, haveBroker bool
	for _, c := range res.Cost.Components {
		switch {
		case strings.Contains(c.Name, "worker"):
			haveWorker = true
		case strings.Contains(c.Name, "supervisor"):
			haveSup = true
		case strings.Contains(c.Name, "redis"):
			haveRedis = true
		case strings.Contains(c.Name, "messaging"):
			haveBroker = true
		}
		if c.Dollars < 0 {
			t.Fatalf("negative cost component: %+v", c)
		}
	}
	if !haveWorker || !haveSup || !haveRedis || !haveBroker {
		t.Fatalf("missing bill components: %+v", res.Cost.Components)
	}
	if res.Cost.Total <= 0 {
		t.Fatal("zero total cost")
	}
	// 3 workers + supervisor; no VM booted beyond the two always-on ones.
	if len(res.Cost.Components) != 3+1+2 {
		t.Fatalf("unexpected component count %d", len(res.Cost.Components))
	}
}

func TestMoreWorkersSlowerSteps(t *testing.T) {
	// Fig 2a: training speed decreases (step duration increases) with
	// the number of workers, because per-step communication is O(P).
	durFor := func(workers int) time.Duration {
		cl, job := testPMFJob(t, workers, Spec{MaxSteps: 30})
		res, err := Run(cl, job)
		if err != nil {
			t.Fatal(err)
		}
		return res.ExecTime / time.Duration(res.Steps)
	}
	d4, d12 := durFor(4), durFor(12)
	if d12 <= d4 {
		t.Fatalf("12-worker steps (%v) not slower than 4-worker steps (%v)", d12, d4)
	}
}

func TestValidation(t *testing.T) {
	cl, job := testLRJob(t, 2, Spec{MaxSteps: 5})
	bad := job
	bad.Spec.Workers = 0
	if _, err := Run(cl, bad); !errors.Is(err, ErrNoWorkers) {
		t.Fatalf("err = %v", err)
	}
	bad = job
	bad.NumBatches = 0
	if _, err := Run(cl, bad); !errors.Is(err, ErrNoData) {
		t.Fatalf("err = %v", err)
	}
	bad = job
	bad.Model = nil
	if _, err := Run(cl, bad); err == nil {
		t.Fatal("nil model accepted")
	}
	bad = job
	bad.Optimizer = nil
	if _, err := Run(cl, bad); err == nil {
		t.Fatal("nil optimizer accepted")
	}
}

func TestModelTooLargeRejected(t *testing.T) {
	cl, job := testLRJob(t, 2, Spec{MaxSteps: 5, MemoryMiB: 128})
	// 128 MiB holds ~2.8M params at 48 B budget each; use a giant model.
	job.Model = model.NewPMF(100_000, 100_000, 20, 3.5, 0, 1)
	if _, err := Run(cl, job); !errors.Is(err, ErrModelTooLarge) {
		t.Fatalf("err = %v", err)
	}
}

func TestRelaunchAtFunctionLimit(t *testing.T) {
	// Make compute so slow that workers hit the 10-minute cap quickly.
	cl, job := testLRJob(t, 2, Spec{MaxSteps: 40})
	cl.Compute = ComputeModel{FlopsPerSecond: 1000} // absurdly slow vCPU
	res, err := Run(cl, job)
	if err != nil {
		t.Fatal(err)
	}
	if res.Relaunches == 0 {
		t.Fatal("no relaunches despite exceeding the execution limit")
	}
	// Relaunched workers must appear in the bill.
	sawRelaunch := false
	for _, c := range res.Cost.Components {
		if strings.Contains(c.Name, "-r") {
			sawRelaunch = true
		}
		if c.Kind == "function" && c.Duration > faas.DefaultConfig().MaxDuration {
			t.Fatalf("billed invocation %s exceeds the platform limit: %v", c.Name, c.Duration)
		}
	}
	if !sawRelaunch {
		t.Fatal("relaunched instance not billed")
	}
}

func TestHistoryConsistency(t *testing.T) {
	cl, job := testLRJob(t, 3, Spec{MaxSteps: 50})
	res, err := Run(cl, job)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.History) != res.Steps {
		t.Fatalf("history %d vs steps %d", len(res.History), res.Steps)
	}
	var prev time.Duration
	for i, p := range res.History {
		if p.Step != i+1 {
			t.Fatalf("step numbering broken at %d", i)
		}
		if p.Time <= prev {
			t.Fatalf("time not increasing at step %d", p.Step)
		}
		if p.Duration != p.Time-prev {
			t.Fatalf("duration mismatch at step %d", p.Step)
		}
		if math.IsNaN(p.Loss) || p.UpdateBytes <= 0 || p.Workers != 3 {
			t.Fatalf("bad point %+v", p)
		}
		prev = p.Time
	}
}

func TestMaxWallClockStops(t *testing.T) {
	cl, job := testPMFJob(t, 4, Spec{MaxSteps: 100000, MaxWallClock: 2 * time.Second})
	res, err := Run(cl, job)
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		t.Fatal("should not report convergence")
	}
	if res.ExecTime > 4*time.Second {
		t.Fatalf("ran to %v despite 2s wall-clock cap", res.ExecTime)
	}
}

func TestTimeToLossAndLossAtTime(t *testing.T) {
	res := &Result{
		ExecTime: 30 * time.Second,
		History: []LossPoint{
			{Step: 1, Time: 10 * time.Second, Loss: 1.0},
			{Step: 2, Time: 20 * time.Second, Loss: 0.8},
			{Step: 3, Time: 30 * time.Second, Loss: 0.6},
		},
	}
	if tt, ok := res.TimeToLoss(0.8); !ok || tt != 20*time.Second {
		t.Fatalf("TimeToLoss = %v, %v", tt, ok)
	}
	if _, ok := res.TimeToLoss(0.1); ok {
		t.Fatal("unreached loss reported reached")
	}
	if l, ok := res.LossAtTime(25 * time.Second); !ok || l != 0.8 {
		t.Fatalf("LossAtTime = %v, %v", l, ok)
	}
	if l, ok := res.LossAtTime(5 * time.Second); ok || l != 1.0 {
		t.Fatalf("LossAtTime before first step = %v, %v", l, ok)
	}
}

func TestCostToLossProrates(t *testing.T) {
	res := &Result{
		ExecTime: 100 * time.Second,
		History: []LossPoint{
			{Step: 1, Time: 50 * time.Second, Loss: 0.9},
		},
	}
	res.Cost.Total = 2.0
	c, ok := res.CostToLoss(0.9)
	if !ok || math.Abs(c-1.0) > 1e-9 {
		t.Fatalf("CostToLoss = %v, %v", c, ok)
	}
	if _, ok := res.CostToLoss(0.1); ok {
		t.Fatal("unreached target costed")
	}
}

func TestSSPStalenessOneEqualsBSP(t *testing.T) {
	clA, jobA := testPMFJob(t, 3, Spec{MaxSteps: 50})
	clB, jobB := testPMFJob(t, 3, Spec{MaxSteps: 50, Staleness: 1})
	a, err := Run(clA, jobA)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(clB, jobB)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.History {
		if a.History[i].RawLoss != b.History[i].RawLoss {
			t.Fatalf("staleness=1 diverges from BSP at step %d", i+1)
		}
	}
}

func TestSSPConvergesAndSaves(t *testing.T) {
	clA, jobA := testPMFJob(t, 6, Spec{TargetLoss: 0.80, MaxSteps: 800})
	bsp, err := Run(clA, jobA)
	if err != nil {
		t.Fatal(err)
	}
	clB, jobB := testPMFJob(t, 6, Spec{TargetLoss: 0.80, MaxSteps: 800, Staleness: 4})
	ssp, err := Run(clB, jobB)
	if err != nil {
		t.Fatal(err)
	}
	if !ssp.Converged {
		t.Fatalf("SSP run did not converge (final %v)", ssp.FinalLoss)
	}
	// SSP must not be slower per step on average: fewer sync round trips.
	bspRate := bsp.ExecTime.Seconds() / float64(bsp.Steps)
	sspRate := ssp.ExecTime.Seconds() / float64(ssp.Steps)
	if sspRate > bspRate {
		t.Fatalf("SSP steps (%vs) slower than BSP steps (%vs)", sspRate, bspRate)
	}
}

func TestSSPWithAutoTuner(t *testing.T) {
	cl, job := testPMFJob(t, 8, Spec{
		Sync: consistency.ISP, Significance: 0.5,
		TargetLoss: 0.75, MaxSteps: 3000, Staleness: 3,
		AutoTune: true,
		Sched:    sched.Config{Epoch: 300 * time.Millisecond, S: 0.1},
	})
	res, err := Run(cl, job)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("SSP+tuner did not converge (final %v)", res.FinalLoss)
	}
	if len(res.Removals) == 0 {
		t.Fatal("tuner idle under SSP")
	}
}

func TestFilterVariantsStillConverge(t *testing.T) {
	for _, variant := range []consistency.Variant{consistency.Accumulate, consistency.NoDecay} {
		cl, job := testPMFJob(t, 4, Spec{
			Sync: consistency.ISP, Significance: 0.5,
			TargetLoss: 0.80, MaxSteps: 1200, FilterVariant: variant,
		})
		res, err := Run(cl, job)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatalf("variant %v did not converge (final %v)", variant, res.FinalLoss)
		}
	}
}

func TestDropVariantLosesInformation(t *testing.T) {
	// The Drop ablation discards withheld updates; it must ship at most
	// as many bytes as Accumulate and generally converge worse or not
	// at all — here we check the traffic invariant and that it runs.
	clA, jobA := testPMFJob(t, 4, Spec{
		Sync: consistency.ISP, Significance: 0.7, MaxSteps: 150,
		FilterVariant: consistency.Accumulate,
	})
	acc, err := Run(clA, jobA)
	if err != nil {
		t.Fatal(err)
	}
	clB, jobB := testPMFJob(t, 4, Spec{
		Sync: consistency.ISP, Significance: 0.7, MaxSteps: 150,
		FilterVariant: consistency.Drop,
	})
	drop, err := Run(clB, jobB)
	if err != nil {
		t.Fatal(err)
	}
	if drop.TotalUpdateBytes > acc.TotalUpdateBytes {
		t.Fatalf("Drop shipped more bytes (%d) than Accumulate (%d)",
			drop.TotalUpdateBytes, acc.TotalUpdateBytes)
	}
}

func TestPatienceStopsPlateau(t *testing.T) {
	cl, job := testPMFJob(t, 3, Spec{MaxSteps: 2000, Patience: 30})
	res, err := Run(cl, job)
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps >= 2000 {
		t.Fatal("patience criterion never fired")
	}
	if !res.Converged {
		t.Fatal("patience stop must report convergence")
	}
}
