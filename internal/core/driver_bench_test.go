package core

import (
	"testing"

	"mlless/internal/consistency"
)

// benchmarkDriver measures full async training runs at cluster scale
// under one driver. Dataset generation and staging happen outside the
// timer; the measured region is the simulation itself, which is what
// the seq/par comparison in BENCH_driver.json prices.
func benchmarkDriver(b *testing.B, driver string, workers, steps int) {
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		cl, job := testPMFJob(b, workers,
			Spec{MaxSteps: steps, Sync: consistency.Async, Staleness: 3, Driver: driver})
		b.StartTimer()
		if _, err := Run(cl, job); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*steps), "ns/step")
}

func BenchmarkDriver100WorkersSeq(b *testing.B) { benchmarkDriver(b, DriverSeq, 100, 30) }
func BenchmarkDriver100WorkersPar(b *testing.B) { benchmarkDriver(b, DriverPar, 100, 30) }

// The narrow-cohort pair pins the degenerate end of the spectrum: two
// async workers yield lookahead groups of width at most 2, so the
// parallel driver's pool — sized min(GOMAXPROCS, cohort width) — must
// not pay for goroutines it can never feed. Par staying within noise of
// Seq here is the regression guard for the pool-sizing rule.
func BenchmarkDriverNarrowCohortSeq(b *testing.B) { benchmarkDriver(b, DriverSeq, 2, 200) }
func BenchmarkDriverNarrowCohortPar(b *testing.B) { benchmarkDriver(b, DriverPar, 2, 200) }

// TestAsyncCohortWidthAtScale records the lookahead-group widths of a
// 100-worker async run: the mean width is the parallelism the driver
// can exploit per round, i.e. the upper bound on multi-core speedup.
// The widths are a property of the schedule, not of the driver, so one
// run characterizes both. A mean near 1 would mean the cohort rule
// found no concurrency and the parallel driver degenerates to
// sequential; assert it stays comfortably wide.
func TestAsyncCohortWidthAtScale(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster-scale run")
	}
	var widths []int
	asyncGroupHook = func(w int) { widths = append(widths, w) }
	defer func() { asyncGroupHook = nil }()

	cl, job := testPMFJob(t, 100, Spec{MaxSteps: 30, Sync: consistency.Async, Staleness: 3})
	if _, err := Run(cl, job); err != nil {
		t.Fatal(err)
	}
	if len(widths) == 0 {
		t.Fatal("group hook never fired")
	}
	sum, max := 0, 0
	for _, w := range widths {
		sum += w
		if w > max {
			max = w
		}
	}
	mean := float64(sum) / float64(len(widths))
	t.Logf("rounds=%d mean-width=%.1f max-width=%d", len(widths), mean, max)
	if mean < 4 {
		t.Fatalf("mean cohort width %.1f leaves the parallel driver nearly sequential", mean)
	}
}
