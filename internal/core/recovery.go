package core

import (
	"errors"
	"fmt"
	"hash/fnv"
	"time"

	"mlless/internal/faas"
	"mlless/internal/faults"
	"mlless/internal/model"
	"mlless/internal/sparse"
	"mlless/internal/trace"
	"mlless/internal/xrand"
)

// relaunchMargin is how close to the FaaS execution limit a function may
// get before the engine checkpoints and re-launches it (§3.1: "pause
// execution when the 10-minute timeout is close, checkpoint its internal
// state to storage and re-launch it").
const relaunchMargin = 30 * time.Second

// Invocation retry policy: transiently failed invocations (injected by
// the fault layer) back off exponentially in virtual time, starting at
// invokeRetryBase and giving up after maxInvokeAttempts.
const (
	invokeRetryBase   = 100 * time.Millisecond
	maxInvokeAttempts = 8
)

// Quota-rejected invocations (faas.ErrTooManyConcurrent) are also
// retryable — under shared per-tenant quotas hitting the cap is a
// steady-state event, not a failure. They back off from a larger base
// (capacity frees on job-completion timescales, not network ones) with
// a deterministic per-function jitter so concurrent admits
// desynchronize instead of stampeding the freed slot together.
const quotaRetryBase = 250 * time.Millisecond

// quotaBackoff returns the virtual wait before retry attempt of a
// quota-rejected invocation: exponential in the attempt, plus up to
// +50% jitter drawn from a stream seeded by the function name — a pure
// function of (name, attempt), so runs stay byte-reproducible.
func quotaBackoff(name string, attempt int) time.Duration {
	base := quotaRetryBase << (attempt - 1)
	h := fnv.New64a()
	h.Write([]byte(name))
	rng := xrand.New(h.Sum64() + uint64(attempt)*0x9e3779b97f4a7c15)
	return base + time.Duration(rng.Float64()*float64(base)/2)
}

// maxConsecutiveDeaths bounds back-to-back reclamations of one worker
// inside a single step, so a pathological reclaim probability turns
// into an error instead of an unbounded recovery loop.
const maxConsecutiveDeaths = 10

// relaunchHorizon is how much execution budget must remain for a
// function to skip checkpointing: a fixed safety margin plus room for
// two steps like the last one (steps cannot be split mid-flight).
func (e *engine) relaunchHorizon() time.Duration {
	return relaunchMargin + 2*e.lastStepDur
}

// invokeAt launches a function at virtual time at, retrying attempts
// that fail transiently: injected invocation faults and exhausted
// concurrency quotas (faas.ErrTooManyConcurrent) both back off
// exponentially in virtual time, so the successful attempt (and every
// charge after it) starts later. The backoff is recorded as restart
// overhead — it surfaces on the bill inside the recovery-overhead memo
// like every other recovery wait. Other errors and attempts beyond
// maxInvokeAttempts are returned as-is.
func (e *engine) invokeAt(name string, memoryMiB int, at time.Duration, cold bool) (*faas.Instance, error) {
	backoff := invokeRetryBase
	for attempt := 1; ; attempt++ {
		var inst *faas.Instance
		var err error
		if cold {
			inst, err = e.cl.Platform.InvokeCold(name, memoryMiB, at)
		} else {
			inst, err = e.cl.Platform.Invoke(name, memoryMiB, at)
		}
		if err == nil {
			return inst, nil
		}
		if attempt == maxInvokeAttempts {
			return nil, err
		}
		var wait time.Duration
		switch {
		case errors.Is(err, faults.ErrInjected):
			wait = backoff
			backoff *= 2
		case errors.Is(err, faas.ErrTooManyConcurrent):
			wait = quotaBackoff(name, attempt)
		default:
			return nil, err
		}
		e.recMu.Lock()
		e.recovery.InvokeRetries++
		e.recovery.RestartTime += wait
		e.recMu.Unlock()
		at += wait
	}
}

// dead reports whether the instance's container has been reclaimed by
// the provider: its clock has caught up with the reclaim instant, so
// any work charged past that point is void.
func dead(inst *faas.Instance) bool {
	return inst.ReclaimAt > 0 && inst.Clock.Now() >= inst.ReclaimAt
}

// recoverWorker replaces a worker whose container the provider
// reclaimed. The dead run is billed up to the reclaim point, a
// replacement boots cold (the platform just withdrew capacity, so no
// warm container is assumed — which also keeps concurrent recoveries
// off the bounded warm pool), and the replica state (parameters plus
// optimizer moments) is re-downloaded. Boot and download land in
// Recovery.RestartTime.
func (e *engine) recoverWorker(w *Worker) error {
	deadAt := w.inst.ReclaimAt
	mem := w.inst.MemoryMiB
	if err := e.cl.Platform.Reclaim(w.inst, &e.meter); err != nil {
		return fmt.Errorf("core: reclaim worker %d: %w", w.id, err)
	}
	w.gen++
	inst, err := e.invokeAt(e.workerName(w.id, w.gen), mem, deadAt, true)
	if err != nil {
		return fmt.Errorf("core: recover worker %d: %w", w.id, err)
	}
	w.inst = inst
	e.traceBoot(inst, workerTrack(w.id))
	// Parameters plus optimizer state (~2x params, as in maybeRelaunch);
	// charged, not materialized — the in-memory replica already holds
	// the restored state.
	state := sparse.DenseEncodedSize(w.model.NumParams())
	w.inst.Clock.Advance(2 * e.cl.Redis.TransferTime(state))
	e.recMu.Lock()
	e.recovery.WorkerDeaths++
	e.recovery.RestartTime += w.inst.Clock.Now() - deadAt
	e.recMu.Unlock()
	if e.tr.Enabled() {
		// Two views of the same interval: the FaaS lifecycle sees a
		// relaunch caused by reclamation; the fault layer sees recovery
		// work (re-download) it must account to the overhead bill.
		e.tr.SpanOn(workerTrack(w.id), trace.CatFaaS, "relaunch", deadAt, w.inst.Clock.Now(),
			trace.Int("gen", w.gen), trace.Str("cause", "reclaim"))
		e.tr.SpanOn(workerTrack(w.id), trace.CatFault, "recover", deadAt, w.inst.Clock.Now(),
			trace.Int("gen", w.gen))
	}
	return nil
}

// redoSegmentOnDeath is the mid-step recovery loop: while the worker's
// container is dead, recover onto a fresh one and recharge the time the
// segment took. The math is deterministic and the replica state is
// restored from the checkpoint, so only time — not results — must be
// redone. segStart is when the segment began on the then-current
// instance; the redone work lands in Recovery.RecomputeTime.
func (e *engine) redoSegmentOnDeath(w *Worker, segStart time.Duration, what string) error {
	for deaths := 0; dead(w.inst); {
		if deaths++; deaths > maxConsecutiveDeaths {
			return fmt.Errorf("core: worker %d: %d consecutive reclamations during %s: %w",
				w.id, deaths, what, faults.ErrInjected)
		}
		redo := w.inst.Clock.Now() - segStart
		if err := e.recoverWorker(w); err != nil {
			return err
		}
		segStart = w.inst.Clock.Now()
		w.inst.Clock.Advance(redo)
		e.recMu.Lock()
		e.recovery.RecomputeTime += redo
		e.recMu.Unlock()
		if e.tr.Enabled() {
			e.tr.SpanOn(workerTrack(w.id), trace.CatFault, "recompute",
				segStart, w.inst.Clock.Now(), trace.Str("what", what))
		}
	}
	return nil
}

// maybeRelaunch checkpoints and re-launches a worker approaching the
// platform's execution limit, charging the checkpoint transfer, the
// start latency and the state download.
func (e *engine) maybeRelaunch(w *Worker) error {
	cfg := e.cl.Platform.Config()
	if cfg.MaxDuration <= 0 || w.inst.Elapsed() < cfg.MaxDuration-e.relaunchHorizon() {
		return nil
	}
	// Checkpoint: model parameters plus optimizer state (≈2x params for
	// Adam's two moments; charged, not materialized).
	ckptStart := w.inst.Clock.Now()
	params := denseOf(w.model)
	wb := getWireBuf()
	payload := params.EncodeTo(wb.b[:0])
	e.cl.Redis.Set(&w.inst.Clock, e.ckptKey(w.id), payload)
	payloadLen := len(payload)
	putWireBuf(wb, payload)
	w.inst.Clock.Advance(e.cl.Redis.TransferTime(payloadLen)) // optimizer state
	resumeAt := w.inst.Clock.Now()
	mem := w.inst.MemoryMiB
	if err := e.cl.Platform.TerminateInto(w.inst, &e.meter); err != nil {
		return fmt.Errorf("core: relaunch terminate worker %d: %w", w.id, err)
	}
	w.gen++
	inst, err := e.invokeAt(e.workerName(w.id, w.gen), mem, resumeAt, false)
	if err != nil {
		return fmt.Errorf("core: relaunch worker %d: %w", w.id, err)
	}
	w.inst = inst
	e.traceBoot(inst, workerTrack(w.id))
	// Download the checkpoint into the fresh instance, then delete it:
	// consumed checkpoints must not accumulate in the store.
	if _, ok := e.cl.Redis.Get(&w.inst.Clock, e.ckptKey(w.id)); !ok {
		return fmt.Errorf("core: relaunch worker %d: checkpoint vanished", w.id)
	}
	w.inst.Clock.Advance(e.cl.Redis.TransferTime(payloadLen)) // optimizer state
	e.cl.Redis.Delete(&w.inst.Clock, e.ckptKey(w.id))
	e.recMu.Lock()
	e.relaunches++
	e.recMu.Unlock()
	if e.tr.Enabled() {
		e.tr.SpanOn(workerTrack(w.id), trace.CatFaaS, "relaunch",
			ckptStart, w.inst.Clock.Now(), trace.Int("gen", w.gen), trace.Str("cause", "limit"))
	}
	return nil
}

// denseOf returns the model's parameter vector.
func denseOf(m model.Model) sparse.Dense { return m.Params() }

// maybeRelaunchSup does for the supervisor what maybeRelaunch does for
// workers. Its checkpoint is small: the loss history and tuner state.
func (e *engine) maybeRelaunchSup() error {
	cfg := e.cl.Platform.Config()
	if cfg.MaxDuration <= 0 || e.sup.Elapsed() < cfg.MaxDuration-e.relaunchHorizon() {
		return nil
	}
	ckptStart := e.sup.Clock.Now()
	ckpt := make([]byte, 24*len(e.history)+1024)
	e.cl.Redis.Set(&e.sup.Clock, e.supCkptKey(), ckpt)
	resumeAt := e.sup.Clock.Now()
	mem := e.sup.MemoryMiB
	if err := e.cl.Platform.TerminateInto(e.sup, &e.meter); err != nil {
		return fmt.Errorf("core: relaunch supervisor: %w", err)
	}
	e.supGen++
	sup, err := e.invokeAt(e.supName(), mem, resumeAt, false)
	if err != nil {
		return fmt.Errorf("core: relaunch supervisor: %w", err)
	}
	e.sup = sup
	e.traceBoot(sup, supTrack)
	if _, ok := e.cl.Redis.Get(&e.sup.Clock, e.supCkptKey()); !ok {
		return fmt.Errorf("core: relaunch supervisor: checkpoint vanished")
	}
	e.cl.Redis.Delete(&e.sup.Clock, e.supCkptKey())
	e.recMu.Lock()
	e.relaunches++
	e.recMu.Unlock()
	if e.tr.Enabled() {
		e.tr.SpanOn(supTrack, trace.CatFaaS, "relaunch",
			ckptStart, e.sup.Clock.Now(), trace.Int("gen", e.supGen), trace.Str("cause", "limit"))
	}
	return nil
}

// recoverSup is recoverWorker for the supervisor. Its state (loss
// history and tuner counters) is small, so the restart cost is the boot
// plus a checkpoint-sized read.
func (e *engine) recoverSup() error {
	deadAt := e.sup.ReclaimAt
	mem := e.sup.MemoryMiB
	if err := e.cl.Platform.Reclaim(e.sup, &e.meter); err != nil {
		return fmt.Errorf("core: reclaim supervisor: %w", err)
	}
	e.supGen++
	sup, err := e.invokeAt(e.supName(), mem, deadAt, true)
	if err != nil {
		return fmt.Errorf("core: recover supervisor: %w", err)
	}
	e.sup = sup
	e.traceBoot(sup, supTrack)
	e.sup.Clock.Advance(e.cl.Redis.TransferTime(24*len(e.history) + 1024))
	e.recMu.Lock()
	e.recovery.WorkerDeaths++
	e.recovery.RestartTime += e.sup.Clock.Now() - deadAt
	e.recMu.Unlock()
	if e.tr.Enabled() {
		e.tr.SpanOn(supTrack, trace.CatFaaS, "relaunch", deadAt, e.sup.Clock.Now(),
			trace.Int("gen", e.supGen), trace.Str("cause", "reclaim"))
		e.tr.SpanOn(supTrack, trace.CatFault, "recover", deadAt, e.sup.Clock.Now(),
			trace.Int("gen", e.supGen))
	}
	return nil
}
