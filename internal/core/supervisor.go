package core

import (
	"fmt"
	"math"
	"sort"
	"time"

	"mlless/internal/faults"
	"mlless/internal/trace"
)

// The supervisor half of the engine: advancing the supervisor function
// to each step's reconciliation point, aggregating the workers' loss
// reports, recording the loss history, deciding when to stop, and
// executing the auto-tuner's evictions.

// syncSupervisor advances the supervisor's clock to at (a step's barrier
// under lock-step; the step-completion instant under async), replacing a
// reclaimed container and checkpointing ahead of the execution limit.
// step labels errors.
func (e *engine) syncSupervisor(at time.Duration, step int) error {
	e.sup.Clock.AdvanceTo(at)
	for deaths := 0; dead(e.sup); {
		if deaths++; deaths > maxConsecutiveDeaths {
			return fmt.Errorf("core: supervisor: %d consecutive reclamations: %w",
				deaths, faults.ErrInjected)
		}
		if err := e.recoverSup(); err != nil {
			return err
		}
		e.sup.Clock.AdvanceTo(at)
	}
	if err := e.maybeRelaunchSup(); err != nil {
		return err
	}
	if err := e.sup.CheckLimit(e.cl.Platform.Config()); err != nil {
		return fmt.Errorf("core: step %d: %w", step, err)
	}
	return nil
}

// aggregateReports drains the loss queue and averages worker losses in
// worker-id order (deterministic float summation).
func (e *engine) aggregateReports(expect int) (avgLoss float64, updateBytes int64, err error) {
	msgs := e.cl.Broker.ConsumeAll(&e.sup.Clock, e.lossQueue())
	reports := make([]lossReport, 0, len(msgs))
	for _, m := range msgs {
		r, err := decodeLossReport(m)
		if err != nil {
			return 0, 0, err
		}
		reports = append(reports, r)
	}
	if len(reports) != expect {
		return 0, 0, fmt.Errorf("core: supervisor got %d loss reports, want %d", len(reports), expect)
	}
	sort.Slice(reports, func(i, j int) bool { return reports[i].Worker < reports[j].Worker })
	sum := 0.0
	for i, r := range reports {
		// A duplicate sender means a protocol violation — and, because
		// the sort key would no longer be unique, a nondeterministic
		// summation order; reject it instead of averaging it in.
		if i > 0 && reports[i-1].Worker == r.Worker {
			return 0, 0, fmt.Errorf("core: supervisor: duplicate loss report from worker %d", r.Worker)
		}
		sum += r.Loss
		updateBytes += int64(r.UpdateBytes)
	}
	return sum / float64(len(reports)), updateBytes, nil
}

// recordStep smooths the step's raw global loss and appends it to the
// history, returning the smoothed value the stop criteria and the
// auto-tuner observe.
func (e *engine) recordStep(step int, at time.Duration, raw float64, updateBytes int64, workers int, stepDur time.Duration) float64 {
	smoothed := e.smoother.Update(raw)
	e.totalUpdateBytes += updateBytes
	e.history = append(e.history, LossPoint{
		Step: step, Time: at, Loss: smoothed, RawLoss: raw,
		Workers: workers, UpdateBytes: updateBytes, Duration: stepDur,
	})
	return smoothed
}

// advanceStep folds a step's reconciliation instant into the engine's
// step-duration estimate (which sizes the relaunch horizon). Under SSP a
// recovered worker can rejoin behind the previous maximum, making the
// raw difference negative; the horizon estimate must stay non-negative.
func (e *engine) advanceStep(at time.Duration) time.Duration {
	stepDur := at - e.prevBarrier
	if stepDur < 0 {
		stepDur = 0
	}
	e.prevBarrier = at
	e.lastStepDur = stepDur
	return stepDur
}

// stopCheck evaluates the engine's stop criteria step by step.
type stopCheck struct {
	spec          Spec
	bestLoss      float64
	sinceImproved int
}

func newStopCheck(spec Spec) *stopCheck {
	return &stopCheck{spec: spec, bestLoss: math.Inf(1)}
}

// Decide returns whether the run must stop after this step, and whether
// it stops as converged or diverged.
func (s *stopCheck) Decide(raw, smoothed float64, at time.Duration) (stop, converged, diverged bool) {
	if math.IsNaN(raw) || math.IsInf(raw, 0) {
		return true, false, true
	}
	if s.spec.TargetLoss > 0 && smoothed <= s.spec.TargetLoss {
		return true, true, false
	}
	if s.spec.MaxWallClock > 0 && at >= s.spec.MaxWallClock {
		return true, false, false
	}
	if s.spec.Patience > 0 {
		// Only meaningful progress resets the counter: at least 0.1%
		// relative improvement over the best loss seen.
		const minRelImprovement = 1e-3
		if smoothed < s.bestLoss*(1-minRelImprovement) {
			s.bestLoss = smoothed
			s.sinceImproved = 0
		} else if s.sinceImproved++; s.sinceImproved >= s.spec.Patience {
			return true, true, false
		}
	}
	return false, false, false
}

// evictOne removes the worker with the lowest-quality replica (highest
// recent loss). Under ISP the leaving worker parks its replica in the KV
// store for the survivors to average in (§4.2, eviction policy).
func (e *engine) evictOne(step int, now time.Duration, active []*Worker) error {
	victim := active[0]
	for _, w := range active[1:] {
		if w.lastLoss > victim.lastLoss {
			victim = w
		}
	}
	if victim.filter.BaseThreshold() > 0 && !e.job.Spec.NoEvictionMerge {
		wb := getWireBuf()
		payload := victim.model.Params().EncodeTo(wb.b[:0])
		e.cl.Redis.Set(&victim.inst.Clock, e.evictKey(victim.id), payload)
		putWireBuf(wb, payload)
		for _, w := range active {
			if w.id != victim.id {
				w.pendingMerge = e.evictKey(victim.id)
			}
		}
		// The replica key expires once every survivor has merged it (at
		// the end of the next phase A).
		e.evictExpire = append(e.evictExpire, e.evictKey(victim.id))
	}
	// A victim whose container died between the barrier and the eviction
	// order still parks its replica (the engine holds the state; only
	// billing differs, capped at the reclaim point).
	if dead(victim.inst) {
		if err := e.cl.Platform.Reclaim(victim.inst, &e.meter); err != nil {
			return fmt.Errorf("core: evict worker %d: %w", victim.id, err)
		}
	} else if err := e.cl.Platform.TerminateInto(victim.inst, &e.meter); err != nil {
		return fmt.Errorf("core: evict worker %d: %w", victim.id, err)
	}
	e.cl.Broker.Unbind(e.annExchange(), e.annQueue(victim.id))
	e.cl.Broker.DeleteQueue(e.annQueue(victim.id))
	victim.alive = false
	e.removals = append(e.removals, Removal{
		Step: step, Time: now, Worker: victim.id, WorkersLeft: len(active) - 1,
	})
	if e.tr.Enabled() {
		e.tr.InstantOn(supTrack, trace.CatSched, "evict", now,
			trace.Int("step", step), trace.Int("worker", victim.id),
			trace.Int("workers_left", len(active)-1))
	}
	return nil
}
