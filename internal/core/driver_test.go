package core

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"

	"mlless/internal/faas"
	"mlless/internal/faults"
	"mlless/internal/trace"
)

// runWithDriver builds a fresh cluster+job, runs it under the named
// driver with tracing on, and returns the result plus the rendered
// trace bytes.
func runWithDriver(t *testing.T, build func(t *testing.T) (*Cluster, Job), drv string) (*Result, []byte) {
	t.Helper()
	cl, job := build(t)
	job.Spec.Driver = drv
	job.Trace = trace.New()
	res, err := Run(cl, job)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := trace.WriteChrome(&buf, job.Trace.Events()); err != nil {
		t.Fatal(err)
	}
	return res, buf.Bytes()
}

func TestDriverDifferential(t *testing.T) {
	// The headline guarantee of the parallel execution core: for every
	// schedule, seed and fault mix, the parallel driver produces traces,
	// loss histories and bills byte-identical to the sequential driver.
	schedules := []struct {
		name string
		spec Spec
	}{
		{"bsp", Spec{MaxSteps: 60}},
		{"ssp-3", Spec{MaxSteps: 60, Staleness: 3}},
		{"async-k3", asyncSpec(Spec{MaxSteps: 60}, 3)},
	}
	mixes := []struct {
		name   string
		faults func(seed uint64) faults.Spec
	}{
		{"no-faults", func(uint64) faults.Spec { return faults.Spec{} }},
		{"chaos", chaosSpec},
	}
	for _, sched := range schedules {
		for _, mix := range mixes {
			for _, seed := range []uint64{3, 11} {
				name := fmt.Sprintf("%s/%s/seed-%d", sched.name, mix.name, seed)
				t.Run(name, func(t *testing.T) {
					build := func(t *testing.T) (*Cluster, Job) {
						cl, job := testPMFJob(t, 4, sched.spec)
						job.Spec.Faults = mix.faults(seed)
						return cl, job
					}
					resSeq, traceSeq := runWithDriver(t, build, DriverSeq)
					resPar, tracePar := runWithDriver(t, build, DriverPar)

					if !bytes.Equal(traceSeq, tracePar) {
						t.Error("trace files differ between seq and par drivers")
					}
					if !reflect.DeepEqual(resSeq.History, resPar.History) {
						t.Error("loss histories differ between seq and par drivers")
					}
					if resSeq.Steps != resPar.Steps || resSeq.ExecTime != resPar.ExecTime ||
						resSeq.FinalLoss != resPar.FinalLoss {
						t.Errorf("results differ: seq steps=%d exec=%v loss=%v, par steps=%d exec=%v loss=%v",
							resSeq.Steps, resSeq.ExecTime, resSeq.FinalLoss,
							resPar.Steps, resPar.ExecTime, resPar.FinalLoss)
					}
					if resSeq.Cost.Total != resPar.Cost.Total {
						t.Errorf("bills differ: seq $%v, par $%v", resSeq.Cost.Total, resPar.Cost.Total)
					}
				})
			}
		}
	}
}

func TestDriverForRejectsUnknown(t *testing.T) {
	if _, err := driverFor("threads"); !errors.Is(err, ErrUnknownDriver) {
		t.Fatalf("unknown driver name accepted: %v", err)
	}
	cl, job := testPMFJob(t, 2, Spec{MaxSteps: 2})
	job.Spec.Driver = "threads"
	if _, err := Run(cl, job); !errors.Is(err, ErrUnknownDriver) {
		t.Fatalf("Run accepted an unknown driver: %v", err)
	}
}

func TestCannotInteractPredicate(t *testing.T) {
	// canInteract must agree with the protocol: a step-s pass pulls peer
	// updates through step s-1, so worker A (about to run sa) observes
	// worker B's current publish iff sb <= sa-1, and vice versa.
	wouldPull := func(puller, publisher int) bool { return publisher <= puller-1 }
	for sa := 1; sa <= 6; sa++ {
		for sb := 1; sb <= 6; sb++ {
			want := wouldPull(sa, sb) || wouldPull(sb, sa)
			if got := canInteract(sa, sb); got != want {
				t.Errorf("canInteract(%d, %d) = %v, want %v", sa, sb, got, want)
			}
		}
	}
}

// lookaheadWorker builds a bare worker at a given virtual time for
// partitioner tests; no platform invocation is needed.
func lookaheadWorker(id int, at time.Duration) *Worker {
	inst := &faas.Instance{}
	inst.Clock.AdvanceTo(at)
	return &Worker{id: id, inst: inst, alive: true}
}

func groupIDs(group []*Worker) []int {
	ids := make([]int, len(group))
	for i, w := range group {
		ids[i] = w.id
	}
	return ids
}

func TestNextAsyncGroup(t *testing.T) {
	mkStates := func(done ...int) []*asyncState {
		states := make([]*asyncState, len(done))
		for i, d := range done {
			states[i] = &asyncState{done: d}
		}
		return states
	}
	workers := []*Worker{
		lookaheadWorker(0, 50),
		lookaheadWorker(1, 10),
		lookaheadWorker(2, 30),
		lookaheadWorker(3, 10),
	}

	// Pivot is the smallest (clock, id) eligible worker: ids 1 and 3 tie
	// on the clock, so id 1 anchors. Its next step (3) selects the
	// cohort {0, 1, 3} (worker 2 is about to run step 2, which CAN
	// interact with step 3), ordered by (clock, id).
	group := nextAsyncGroup(workers, mkStates(2, 2, 1, 2), 100, 2, nil)
	if got, want := groupIDs(group), []int{1, 3, 0}; !reflect.DeepEqual(got, want) {
		t.Fatalf("group ids = %v, want %v", got, want)
	}

	// The (clock, id) order is a property of the workers, not of slice
	// position: any permutation of the input yields the same group.
	shuffled := []*Worker{workers[3], workers[0], workers[2], workers[1]}
	group = nextAsyncGroup(shuffled, mkStates(2, 2, 1, 2), 100, 2, group)
	if got, want := groupIDs(group), []int{1, 3, 0}; !reflect.DeepEqual(got, want) {
		t.Fatalf("group ids after reorder = %v, want %v", got, want)
	}

	// The staleness cap gates eligibility: with K=1 only the slowest
	// worker may run, whatever the clocks say.
	group = nextAsyncGroup(workers, mkStates(1, 1, 0, 1), 100, 1, group)
	if got, want := groupIDs(group), []int{2}; !reflect.DeepEqual(got, want) {
		t.Fatalf("K=1 group ids = %v, want %v", got, want)
	}

	// A run-ahead worker past the cap is excluded even with the smallest
	// clock.
	group = nextAsyncGroup(workers[:2], mkStates(3, 0), 100, 2, group)
	if got, want := groupIDs(group), []int{1}; !reflect.DeepEqual(got, want) {
		t.Fatalf("capped group ids = %v, want %v", got, want)
	}

	// Everyone done: empty group ends the run.
	group = nextAsyncGroup(workers[:2], mkStates(5, 5), 5, 2, group)
	if len(group) != 0 {
		t.Fatalf("finished pool produced group %v", groupIDs(group))
	}
}

func TestClockIDBefore(t *testing.T) {
	cases := []struct {
		at   time.Duration
		ai   int
		bt   time.Duration
		bi   int
		want bool
	}{
		{10, 5, 20, 1, true},  // earlier clock wins regardless of id
		{20, 1, 10, 5, false}, // later clock loses regardless of id
		{15, 2, 15, 7, true},  // clock tie: smaller id wins
		{15, 7, 15, 2, false}, // clock tie: larger id loses
		{15, 3, 15, 3, false}, // identical: strictly-before is false
	}
	for _, c := range cases {
		if got := clockIDBefore(c.at, c.ai, c.bt, c.bi); got != c.want {
			t.Errorf("clockIDBefore(%v,%d, %v,%d) = %v, want %v", c.at, c.ai, c.bt, c.bi, got, c.want)
		}
	}
}

func TestAggregateAsyncRejectsBadReports(t *testing.T) {
	pub := func(e *engine, cl *Cluster, worker, step uint32) {
		t.Helper()
		r := lossReport{Worker: worker, Step: step, Loss: 0.5, UpdateBytes: 8}
		if err := cl.Broker.Publish(&e.sup.Clock, e.lossQueue(), r.encode()); err != nil {
			t.Fatal(err)
		}
	}

	t.Run("duplicate", func(t *testing.T) {
		// A duplicate report used to pass the count check while silently
		// overwriting a slot and averaging in a zero-valued lossReport.
		cl, e := pullTestEngine(t, 2)
		pub(e, cl, 0, 1)
		pub(e, cl, 0, 1)
		_, _, err := e.aggregateAsync(1, 2, make(map[int][]lossReport))
		if err == nil || !strings.Contains(err.Error(), "duplicate loss report for step 1 from worker 0") {
			t.Fatalf("duplicate report not rejected: %v", err)
		}
	})

	t.Run("out-of-range", func(t *testing.T) {
		// An id >= expect used to panic on the slot index.
		cl, e := pullTestEngine(t, 2)
		pub(e, cl, 0, 1)
		pub(e, cl, 7, 1)
		_, _, err := e.aggregateAsync(1, 2, make(map[int][]lossReport))
		if err == nil || !strings.Contains(err.Error(), "out-of-range worker 7 (pool size 2)") {
			t.Fatalf("out-of-range report not rejected: %v", err)
		}
	})

	t.Run("count", func(t *testing.T) {
		cl, e := pullTestEngine(t, 2)
		pub(e, cl, 0, 1)
		_, _, err := e.aggregateAsync(1, 2, make(map[int][]lossReport))
		if err == nil || !strings.Contains(err.Error(), "got 1 loss reports for step 1, want 2") {
			t.Fatalf("short report set not rejected: %v", err)
		}
	})
}

func TestAggregateReportsRejectsDuplicate(t *testing.T) {
	cl, e := pullTestEngine(t, 3)
	for _, worker := range []uint32{0, 1, 1} {
		r := lossReport{Worker: worker, Step: 1, Loss: 0.5, UpdateBytes: 8}
		if err := cl.Broker.Publish(&e.sup.Clock, e.lossQueue(), r.encode()); err != nil {
			t.Fatal(err)
		}
	}
	_, _, err := e.aggregateReports(3)
	if err == nil || !strings.Contains(err.Error(), "duplicate loss report from worker 1") {
		t.Fatalf("duplicate report not rejected: %v", err)
	}
}

func TestSupervisorReclamationCountIsExact(t *testing.T) {
	// After maxConsecutiveDeaths (10) recoveries the guard trips on the
	// 11th observed death; the error used to report deaths-1 = 10.
	cl := NewCluster()
	cl.Platform.SetFaults(faults.New(faults.Spec{
		Seed: 5, ReclaimProb: 1, ReclaimMeanLife: time.Millisecond,
	}))
	defer cl.Platform.SetFaults(nil)
	sup, err := cl.Platform.Invoke("jt/supervisor", 2048, 0)
	if err != nil {
		t.Fatal(err)
	}
	e := &engine{cl: cl, id: "jt", sup: sup}
	err = e.syncSupervisor(time.Hour, 7)
	if err == nil {
		t.Fatal("supervisor survived permanent reclamation")
	}
	if !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("error does not wrap faults.ErrInjected: %v", err)
	}
	want := fmt.Sprintf("%d consecutive reclamations", maxConsecutiveDeaths+1)
	if !strings.Contains(err.Error(), want) {
		t.Fatalf("error understates the death count, want %q in: %v", want, err)
	}
}

func TestWorkerReclamationCountIsExact(t *testing.T) {
	// The same off-by-one lived in the worker redo loop
	// (redoSegmentOnDeath). Drive it directly: a dead segment much
	// longer than the sampled container lifetime (floored at 1s by the
	// fault layer) is recharged onto every replacement, so each
	// replacement is dead again the moment its recompute finishes and
	// the loop must give up after exactly maxConsecutiveDeaths retries.
	cl, e := pullTestEngine(t, 1)
	cl.Platform.SetFaults(faults.New(faults.Spec{
		Seed: 1, ReclaimProb: 1, ReclaimMeanLife: time.Millisecond,
	}))
	w := e.workers[0]
	w.inst.Clock.AdvanceTo(time.Hour)
	w.inst.ReclaimAt = 30 * time.Minute
	err := e.redoSegmentOnDeath(w, 0, "test segment")
	if err == nil {
		t.Fatal("redo loop survived permanent immediate reclamation")
	}
	if !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("error does not wrap faults.ErrInjected: %v", err)
	}
	want := fmt.Sprintf("%d consecutive reclamations", maxConsecutiveDeaths+1)
	if !strings.Contains(err.Error(), want) {
		t.Fatalf("error understates the death count, want %q in: %v", want, err)
	}
}
