package core

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"mlless/internal/consistency"
	"mlless/internal/exchange"
	"mlless/internal/faults"
	"mlless/internal/model"
	"mlless/internal/optimizer"
	"mlless/internal/sched"
	"mlless/internal/trace"
)

// Validation errors.
var (
	// ErrNoWorkers reports a job with a non-positive worker count.
	ErrNoWorkers = errors.New("core: job needs at least one worker")
	// ErrNoData reports a job with no staged mini-batches.
	ErrNoData = errors.New("core: job has no staged mini-batches")
	// ErrModelTooLarge reports a model replica that cannot fit in a
	// worker's function memory.
	ErrModelTooLarge = errors.New("core: model replica exceeds function memory")
	// ErrAsyncAutoTune reports a job combining the async schedule with
	// the scale-in auto-tuner, whose evictions assume sync points.
	ErrAsyncAutoTune = errors.New("core: the scale-in auto-tuner requires a lock-step schedule")
	// ErrExchangeAsync reports a collective exchange strategy combined
	// with the async schedule; reduction rounds assume sync points.
	ErrExchangeAsync = errors.New("core: the scatter/tree exchange strategies require a lock-step schedule")
	// ErrExchangeStale reports a collective exchange strategy combined
	// with SSP: a reduced total folds exactly one step's updates, so the
	// pull window must be a single step.
	ErrExchangeStale = errors.New("core: the scatter/tree exchange strategies require per-step synchronization (staleness 1)")
	// ErrExchangeShards reports a collective exchange strategy on a
	// sharded KV tier: the collectives move updates through object
	// storage, so extra KV shards would only add idle rented VMs.
	ErrExchangeShards = errors.New("core: the scatter/tree exchange strategies bypass the KV tier; run them with a single shard")
	// ErrUnknownData reports an unrecognized Spec.Data value.
	ErrUnknownData = errors.New("core: unknown data tier")
	// ErrModelNoView reports a shard-tier job whose model does not
	// implement model.ViewModel, the zero-copy evaluation interface the
	// shard data path requires.
	ErrModelNoView = errors.New("core: the shard data tier requires a model implementing model.ViewModel")
	// ErrBadTenant reports a tenant name containing '/', which would
	// break the collision-free namespace construction (the namespace is
	// the name's first '/'-separated segment; see faas.NamespaceOf).
	ErrBadTenant = errors.New("core: tenant names must not contain '/'")
	// ErrNegativeStart reports a job launched at a negative virtual time.
	ErrNegativeStart = errors.New("core: job start time must be >= 0")
	// ErrAsyncShrink reports control-plane shrink directives combined
	// with the async schedule; like the auto-tuner, pool shrinks assume
	// sync points (evictions must not lose published-but-unpulled
	// updates).
	ErrAsyncShrink = errors.New("core: control-plane shrink directives require a lock-step schedule")
	// ErrBadShrink reports a shrink directive with a non-positive worker
	// count or a negative time.
	ErrBadShrink = errors.New("core: shrink directives need Workers >= 1 and At >= 0")
)

// Data tiers selectable via Spec.Data.
const (
	// DataBatch is the row-encoded tier: every fetch GETs a full
	// encoded mini-batch object and decodes it into []dataset.Sample.
	// The default; traces are byte-identical to pre-shard builds.
	DataBatch = "batch"
	// DataShard is the streaming columnar tier: batches live as
	// contiguous blocks inside shard blobs, each fetch is one ranged
	// GET, and models evaluate straight off the zero-copy BatchView.
	DataShard = "shard"
)

// Spec is the tunable configuration of a training job.
type Spec struct {
	// Workers is the initial worker count P.
	Workers int
	// Sync selects the synchronization model: BSP or ISP (§3.1, §4.1)
	// drive workers in lock step; Async (journal MLLess) removes the
	// global barrier and bounds replica drift by Staleness.
	Sync consistency.Mode
	// Significance is the ISP base threshold v (ignored under BSP).
	Significance float64
	// AutoTune enables the scale-in scheduler (§4.2).
	AutoTune bool
	// Sched configures the auto-tuner; zero values take the paper's
	// defaults (epoch 20 s, Δ 10 s).
	Sched sched.Config
	// TargetLoss stops the job once the smoothed global loss reaches it;
	// 0 disables the criterion (the job runs MaxSteps).
	TargetLoss float64
	// MaxSteps caps the run (default 5000).
	MaxSteps int
	// MemoryMiB sizes the worker functions (default 2048, the largest
	// IBM Cloud Functions offers, as in §6.1).
	MemoryMiB int
	// LossAlpha is the EWMA factor for the global loss stream
	// (default 0.25).
	LossAlpha float64
	// MaxWallClock aborts the job once the virtual clock passes it
	// (0 = unlimited); Fig 6/7 use it to bound non-converging systems.
	MaxWallClock time.Duration
	// Staleness enables the SSP extension the paper mentions as "easy
	// enough to integrate" (§3.1): workers synchronize (pull peer
	// updates and barrier) every Staleness steps instead of every step,
	// bounding replica divergence by the staleness window. 0 or 1 keeps
	// the paper's per-step synchronization. Under Sync == Async it is
	// the staleness cap K instead: a worker may run at most K steps
	// ahead of the slowest peer (K = 1 reproduces BSP's update
	// sequence without its barriers).
	Staleness int
	// FilterVariant selects the significance-filter design for the
	// ablation benches; the zero value is the paper's
	// accumulate-and-flush filter (§4.1).
	FilterVariant consistency.Variant
	// NoEvictionMerge disables the one-shot reintegration of a leaving
	// worker's replica (§4.2, eviction policy) — an ablation: the
	// residual updates the worker was withholding are then lost.
	NoEvictionMerge bool
	// Patience stops the job when the smoothed loss has not improved
	// for this many consecutive steps (0 disables) — a convergence
	// criterion for jobs without a known target loss.
	Patience int
	// Exchange selects the gradient-exchange strategy (see
	// internal/exchange): "ps" (the default) is the paper's KV-mediated
	// parameter server; "scatter" and "tree" are storage collectives
	// that reduce updates through the object store. The collectives
	// require the lock-step schedule with per-step synchronization and a
	// single KV shard.
	Exchange string
	// TreeFanout is the tree exchange's fan-in degree (0 selects the
	// default of 4; meaningful only with Exchange == "tree").
	TreeFanout int
	// Data selects the dataset tier the workers fetch from: DataBatch
	// (the default) reads and decodes whole mini-batch objects;
	// DataShard issues one ranged GET per step against the staged
	// columnar shards (see internal/shard) and computes on the
	// zero-copy view. Both tiers produce bit-identical loss histories
	// for the same staged samples.
	Data string
	// Driver selects the simulation execution core: DriverPar (the
	// default) runs each lookahead group's workers on a goroutine pool;
	// DriverSeq runs them one at a time. The two produce byte-identical
	// traces, loss histories and bills — "seq" is the escape hatch and
	// the baseline the differential determinism tests compare against.
	Driver string
	// Faults configures deterministic fault injection for the run (see
	// internal/faults): transient invocation failures, cold-start
	// stragglers, mid-run container reclamation and KV/broker fault
	// delays, all seeded. The zero value disables every fault.
	Faults faults.Spec
	// Tenant, when non-empty, prefixes the job's entire key/queue/billing
	// namespace ("<tenant>/jobN/..." instead of "jobN/...") and places
	// its FaaS activations in the tenant's namespace, where they count
	// against any per-tenant quota (faas.SetQuota). Must not contain
	// '/'. Empty (the default) keeps the standalone namespace and
	// behavior byte-identical to earlier builds.
	Tenant string
	// StartAt is the virtual time the job launches — its admission time
	// under the multi-tenant control plane (internal/tenant). Every
	// instance boots at StartAt, History times are absolute, and
	// Result.ExecTime measures from StartAt. 0 (the default) reproduces
	// the standalone timeline exactly.
	StartAt time.Duration
	// Shrink schedules control-plane pool-shrink requests: once the
	// virtual clock passes a directive's At, the engine asks the tuner
	// to give up Workers workers. Requests are honored only at sync
	// points, never before the loss-curve knee, and never push the pool
	// below MinWorkers (Sched.MinWorkers; the same floor as the
	// auto-tuner). Requires a lock-step schedule. The control plane uses
	// this to ask running jobs to scale in when the shared platform is
	// contended.
	Shrink []ShrinkDirective
}

// ShrinkDirective is one scheduled control-plane request for a job to
// give up workers (see Spec.Shrink).
type ShrinkDirective struct {
	// At is the virtual time the request takes effect (absolute, like
	// Spec.StartAt).
	At time.Duration
	// Workers is how many workers the job is asked to release.
	Workers int
}

func (s Spec) withDefaults() Spec {
	if s.Sync == 0 {
		s.Sync = consistency.BSP
	}
	if s.Sync == consistency.BSP {
		s.Significance = 0
	}
	if s.MaxSteps <= 0 {
		s.MaxSteps = 5000
	}
	if s.MemoryMiB <= 0 {
		s.MemoryMiB = 2048
	}
	if s.LossAlpha <= 0 {
		s.LossAlpha = 0.25
	}
	if s.Staleness < 1 {
		s.Staleness = 1
	}
	if s.Driver == "" {
		s.Driver = DriverPar
	}
	if s.Exchange == "" {
		s.Exchange = exchange.KindParamServer
	}
	if s.Data == "" {
		s.Data = DataBatch
	}
	return s
}

// Job couples a spec with the model, optimizer and staged dataset it
// trains on. Model and Optimizer act as prototypes: every worker gets an
// independent clone, so a Job can be reused across runs.
type Job struct {
	Spec Spec
	// Model is the prototype replica (cloned per worker).
	Model model.Model
	// Optimizer is the prototype optimizer (cloned per worker).
	Optimizer optimizer.Optimizer
	// Bucket is the object-store bucket holding the staged mini-batches.
	Bucket string
	// NumBatches is the staged mini-batch count.
	NumBatches int
	// BatchSize is the per-worker mini-batch size B (metadata for
	// reporting; the staged batches define the actual sizes).
	BatchSize int
	// Trace, when non-nil, records the run's virtual-time trace: engine
	// phases, substrate operations, FaaS lifecycle, scheduler decisions
	// and fault recovery (see internal/trace). The engine installs it on
	// every cluster service for the duration of the run and removes it at
	// teardown. Nil (the default) disables tracing at zero cost.
	Trace *trace.Tracer
}

func (j Job) validate(memoryMiB int) error {
	if j.Spec.Workers <= 0 {
		return ErrNoWorkers
	}
	if j.NumBatches <= 0 {
		return ErrNoData
	}
	if j.Model == nil {
		return errors.New("core: job has no model")
	}
	if j.Optimizer == nil {
		return errors.New("core: job has no optimizer")
	}
	if j.Spec.Sync == consistency.Async && j.Spec.AutoTune {
		return ErrAsyncAutoTune
	}
	if strings.ContainsRune(j.Spec.Tenant, '/') {
		return fmt.Errorf("%w (tenant %q)", ErrBadTenant, j.Spec.Tenant)
	}
	if j.Spec.StartAt < 0 {
		return ErrNegativeStart
	}
	if len(j.Spec.Shrink) > 0 {
		if j.Spec.Sync == consistency.Async {
			return ErrAsyncShrink
		}
		for _, d := range j.Spec.Shrink {
			if d.Workers < 1 || d.At < 0 {
				return fmt.Errorf("%w (got Workers=%d At=%v)", ErrBadShrink, d.Workers, d.At)
			}
		}
	}
	if err := exchange.Validate(j.Spec.Exchange, j.Spec.TreeFanout); err != nil {
		return err
	}
	if exchange.IsCollective(j.Spec.Exchange) {
		if j.Spec.Sync == consistency.Async {
			return ErrExchangeAsync
		}
		if j.Spec.Staleness > 1 {
			return ErrExchangeStale
		}
	}
	if _, err := driverFor(j.Spec.Driver); err != nil {
		return err
	}
	switch j.Spec.Data {
	case DataBatch:
	case DataShard:
		if _, ok := j.Model.(model.ViewModel); !ok {
			return fmt.Errorf("%w (model %q)", ErrModelNoView, j.Model.Name())
		}
	default:
		return fmt.Errorf("%w %q (want %q or %q)", ErrUnknownData, j.Spec.Data, DataBatch, DataShard)
	}
	// A replica must fit beside optimizer state and a mini-batch in
	// function memory: ~8 bytes/param for the model plus ~16 for
	// optimizer state (Adam worst case), with 4x headroom for the
	// runtime (§2's "loading all training data into memory" is exactly
	// what this forbids).
	replicaBytes := int64(j.Model.NumParams()) * 24
	if replicaBytes*2 > int64(memoryMiB)*1024*1024 {
		return fmt.Errorf("%w: %d params need ~%d MiB, function has %d MiB",
			ErrModelTooLarge, j.Model.NumParams(), replicaBytes*2/(1024*1024), memoryMiB)
	}
	return nil
}
