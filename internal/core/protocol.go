package core

import (
	"encoding/binary"
	"fmt"
	"math"
	"time"
)

// This file is the engine's wire protocol: the KV-store key namespace a
// job allocates and the control messages workers and supervisor exchange
// through the messaging service. Everything a packet sniffer (or the
// janitor at teardown) would need to know about a run lives here.

// jobNamespace is the root of a job's namespace on every shared
// substrate — KV keys, broker queues/exchanges, the collective-exchange
// bucket ("xchg-<root>") and FaaS billing labels all start with it:
//
//	standalone:  job<N>/...
//	tenant job:  <tenant>/job<N>/...
//
// N comes from a cluster-wide counter and tenant names may not contain
// '/' (core.Job validation), so two jobs sharing a substrate can never
// collide, and faas.NamespaceOf maps a tenant job's function names to
// the tenant's activation namespace (where per-tenant quotas apply).
func jobNamespace(tenant string, n int) string {
	if tenant == "" {
		return fmt.Sprintf("job%d", n)
	}
	return fmt.Sprintf("%s/job%d", tenant, n)
}

// updKey names a worker's step update — the identity announcements
// carry. The layout is owned by the exchange strategy; every strategy
// keeps the historical <job>/upd/<step>/<worker> form.
func (e *engine) updKey(step, worker int) string {
	return e.xchg.UpdateKey(step, worker)
}
func (e *engine) evictKey(worker int) string {
	return fmt.Sprintf("%s/evict/%d", e.id, worker)
}
func (e *engine) ckptKey(worker int) string {
	return fmt.Sprintf("%s/ckpt/%d", e.id, worker)
}
func (e *engine) supCkptKey() string         { return e.id + "/sup-ckpt" }
func (e *engine) lossQueue() string          { return e.id + "/losses" }
func (e *engine) annExchange() string        { return e.id + "/ann" }
func (e *engine) annQueue(worker int) string { return fmt.Sprintf("%s/ann/%d", e.id, worker) }

// workerName labels a worker's function for billing. Each relaunch or
// recovery generation gets a distinct suffix so re-launched runs never
// collide on a billing label.
func (e *engine) workerName(id, gen int) string {
	if gen == 0 {
		return fmt.Sprintf("%s/worker-%d", e.id, id)
	}
	return fmt.Sprintf("%s/worker-%d-r%d", e.id, id, gen)
}

// supName is workerName for the supervisor.
func (e *engine) supName() string {
	if e.supGen == 0 {
		return e.id + "/supervisor"
	}
	return fmt.Sprintf("%s/supervisor-r%d", e.id, e.supGen)
}

// workerTrack names a worker's trace track; unlike billing labels it is
// stable across relaunch generations, so one worker is one timeline.
func workerTrack(id int) string { return fmt.Sprintf("worker-%d", id) }

// supTrack is the supervisor's trace track.
const supTrack = "supervisor"

// lossReport is the control message each worker sends the supervisor at
// every step (§3.1: the supervisor "collect[s] and aggregate[s]
// statistics").
type lossReport struct {
	Worker      uint32
	Step        uint32
	Loss        float64
	UpdateBytes uint32
}

const lossReportSize = 4 + 4 + 8 + 4

func (r lossReport) encode() []byte {
	return r.appendTo(make([]byte, 0, lossReportSize))
}

func (r lossReport) appendTo(buf []byte) []byte {
	start := len(buf)
	buf = append(buf, make([]byte, lossReportSize)...)
	binary.LittleEndian.PutUint32(buf[start+0:], r.Worker)
	binary.LittleEndian.PutUint32(buf[start+4:], r.Step)
	binary.LittleEndian.PutUint64(buf[start+8:], math.Float64bits(r.Loss))
	binary.LittleEndian.PutUint32(buf[start+16:], r.UpdateBytes)
	return buf
}

func decodeLossReport(buf []byte) (lossReport, error) {
	if len(buf) != lossReportSize {
		return lossReport{}, fmt.Errorf("core: loss report of %d bytes, want %d", len(buf), lossReportSize)
	}
	return lossReport{
		Worker:      binary.LittleEndian.Uint32(buf[0:]),
		Step:        binary.LittleEndian.Uint32(buf[4:]),
		Loss:        math.Float64frombits(binary.LittleEndian.Uint64(buf[8:])),
		UpdateBytes: binary.LittleEndian.Uint32(buf[16:]),
	}, nil
}

// announce is the update-availability message workers fan out to each
// other through the messaging service (§3.2: "The availability of a
// local update is announced to the rest of workers through the messaging
// service"). The lock-step schedules use this compact form; its size is
// part of the pinned byte-identical traces and must not change.
type announce struct {
	Worker uint32
	Step   uint32
	Bytes  uint32
}

const announceSize = 4 + 4 + 4

func (a announce) encode() []byte {
	return a.appendTo(make([]byte, 0, announceSize))
}

func (a announce) appendTo(buf []byte) []byte {
	start := len(buf)
	buf = append(buf, make([]byte, announceSize)...)
	binary.LittleEndian.PutUint32(buf[start+0:], a.Worker)
	binary.LittleEndian.PutUint32(buf[start+4:], a.Step)
	binary.LittleEndian.PutUint32(buf[start+8:], a.Bytes)
	return buf
}

func decodeAnnounce(buf []byte) (announce, error) {
	if len(buf) != announceSize {
		return announce{}, fmt.Errorf("core: announce of %d bytes, want %d", len(buf), announceSize)
	}
	return announce{
		Worker: binary.LittleEndian.Uint32(buf[0:]),
		Step:   binary.LittleEndian.Uint32(buf[4:]),
		Bytes:  binary.LittleEndian.Uint32(buf[8:]),
	}, nil
}

// asyncAnnounce is the announce variant the Async schedule fans out: it
// adds the publish instant, which a puller running behind the publisher
// must wait for before the update is visible. Lock-step runs never emit
// it, so the extra bytes cannot perturb the pinned traces.
type asyncAnnounce struct {
	Worker uint32
	Step   uint32
	Bytes  uint32
	At     time.Duration
}

const asyncAnnounceSize = announceSize + 8

func (a asyncAnnounce) encode() []byte {
	return a.appendTo(make([]byte, 0, asyncAnnounceSize))
}

func (a asyncAnnounce) appendTo(buf []byte) []byte {
	start := len(buf)
	buf = append(buf, make([]byte, asyncAnnounceSize)...)
	binary.LittleEndian.PutUint32(buf[start+0:], a.Worker)
	binary.LittleEndian.PutUint32(buf[start+4:], a.Step)
	binary.LittleEndian.PutUint32(buf[start+8:], a.Bytes)
	binary.LittleEndian.PutUint64(buf[start+12:], uint64(a.At))
	return buf
}

func decodeAsyncAnnounce(buf []byte) (asyncAnnounce, error) {
	if len(buf) != asyncAnnounceSize {
		return asyncAnnounce{}, fmt.Errorf("core: async announce of %d bytes, want %d", len(buf), asyncAnnounceSize)
	}
	return asyncAnnounce{
		Worker: binary.LittleEndian.Uint32(buf[0:]),
		Step:   binary.LittleEndian.Uint32(buf[4:]),
		Bytes:  binary.LittleEndian.Uint32(buf[8:]),
		At:     time.Duration(binary.LittleEndian.Uint64(buf[12:])),
	}, nil
}
