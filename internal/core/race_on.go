//go:build race

package core

// raceEnabled reports whether the binary was built with the race
// detector; the parallel driver keeps a floor of two executors for
// multi-worker groups in that case so cross-worker interleavings are
// observed even on a single-CPU host.
const raceEnabled = true
