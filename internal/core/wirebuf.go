package core

import "sync"

// Wire-buffer pool: the staging memory for everything the engine
// serializes onto the simulated wire — update publishes, checkpoints,
// eviction replicas. The KV store copies on Set and the broker copies
// on Publish, so a buffer can go back in the pool the moment the call
// returns; ownership never crosses the service boundary (DESIGN.md
// §10). Buffers retain their capacity between uses, so the steady
// state allocates nothing.
type wireBuf struct{ b []byte }

var wireBufs = sync.Pool{New: func() any { return new(wireBuf) }}

// getWireBuf draws a buffer from the pool. Use its b field via b[:0]
// and return the (possibly regrown) slice with putWireBuf.
func getWireBuf() *wireBuf { return wireBufs.Get().(*wireBuf) }

// putWireBuf returns a buffer to the pool, keeping b's capacity for
// the next draw. The caller must not touch b afterwards.
func putWireBuf(wb *wireBuf, b []byte) {
	wb.b = b
	wireBufs.Put(wb)
}
