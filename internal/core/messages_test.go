package core

import "testing"

func TestLossReportRoundTrip(t *testing.T) {
	r := lossReport{Worker: 7, Step: 42, Loss: 0.731, UpdateBytes: 1234}
	got, err := decodeLossReport(r.encode())
	if err != nil {
		t.Fatal(err)
	}
	if got != r {
		t.Fatalf("round trip: %+v != %+v", got, r)
	}
}

func TestLossReportBadLength(t *testing.T) {
	if _, err := decodeLossReport([]byte{1, 2, 3}); err == nil {
		t.Fatal("short loss report accepted")
	}
	r := lossReport{Worker: 1}
	if _, err := decodeLossReport(append(r.encode(), 0)); err == nil {
		t.Fatal("long loss report accepted")
	}
}

func TestAnnounceRoundTrip(t *testing.T) {
	a := announce{Worker: 3, Step: 9, Bytes: 512}
	got, err := decodeAnnounce(a.encode())
	if err != nil {
		t.Fatal(err)
	}
	if got != a {
		t.Fatalf("round trip: %+v != %+v", got, a)
	}
}

func TestAnnounceBadLength(t *testing.T) {
	if _, err := decodeAnnounce(nil); err == nil {
		t.Fatal("nil announce accepted")
	}
	a := announce{}
	if _, err := decodeAnnounce(a.encode()[:announceSize-1]); err == nil {
		t.Fatal("short announce accepted")
	}
}
