package core

import (
	"fmt"
	"time"

	"mlless/internal/consistency"
	"mlless/internal/trace"
	"mlless/internal/vclock"
)

// Schedule is the step-driving policy: it decides when each worker runs
// the states of its per-step machine and when the supervisor reconciles.
// LockStep keeps the paper's barrier semantics (BSP/ISP/SSP); Async lets
// every worker free-run on its own virtual clock under a staleness cap.
type Schedule interface {
	// Name identifies the schedule in diagnostics.
	Name() string
	// Run drives the engine's workers to completion and assembles the
	// result. The engine is set up (instances launched, queues declared)
	// before Run and torn down by Run via engine.teardown.
	Run(e *engine) (*Result, error)
}

// scheduleFor picks the schedule a spec asks for.
func scheduleFor(spec Spec) Schedule {
	if spec.Sync == consistency.Async {
		return Async{Cap: spec.Staleness}
	}
	return LockStep{}
}

// LockStep is the paper's barrier-driven schedule (§3.1): every step,
// all workers run the compute half of their state machine concurrently,
// then (at sync points) the pull half, then reconcile at a global
// barrier the slowest worker paces. With Staleness > 1 it degrades the
// barrier to every Staleness steps (SSP).
type LockStep struct{}

// Name implements Schedule.
func (LockStep) Name() string { return "lockstep" }

// Run implements Schedule. Each phase hands the whole active set to the
// engine's driver as one lookahead group: between barriers every worker
// runs the same step and reads only state committed before the phase,
// so the phase boundary itself is the lookahead window (lookahead.go)
// and no partitioning is needed.
func (LockStep) Run(e *engine) (*Result, error) {
	spec := e.job.Spec
	converged := false
	diverged := false
	lastSync := 0
	stopper := newStopCheck(spec)

	// Supervisor-tail pipelining (pipeline.go): when the spec proves the
	// tail of step r cannot interact with the front half of step r+1,
	// the tail runs on a resident goroutine while the next step's
	// recover/merge/fetch/compute states execute, joining before the
	// publish half (which feeds the loss queue the tail drains).
	var tail supTail
	pipelined := e.tailEligible(spec)
	if pipelined {
		tail.start(e)
	}
	defer tail.close()

	for step := 1; step <= spec.MaxSteps; step++ {
		active := e.active()
		pActive := len(active)
		// Under SSP (Staleness > 1) workers run ahead between sync
		// points; pulls and barriers happen every Staleness steps.
		syncStep := spec.Staleness <= 1 || step%spec.Staleness == 0 || step == spec.MaxSteps

		// Eviction replicas published at the previous sync point are
		// merged by every survivor during this compute half; afterwards
		// the keys expire (server-side TTL, no client time).
		expireEvict := e.evictExpire
		e.evictExpire = nil

		if tail.pending() {
			// Overlap window: the previous step's supervisor tail runs
			// while this step's front half executes, fenced before the
			// publish state below.
			if err := e.drv.Phase(active, func(w *Worker) error {
				c := &w.ctx // per-worker scratch; reset for this pass
				*c = stepCtx{step: step, pActive: pActive, rejoinAt: e.prevBarrier, relaunch: true, active: active}
				return e.runStates(w, c, stateRecover, stateMerge, stateFetch, stateCompute)
			}); err != nil {
				return nil, err
			}
			res := tail.join()
			if res.err != nil {
				return nil, res.err
			}
			if res.stop {
				// Unreachable: tails only launch when tameLosses proved
				// Decide cannot fire; kept for defense in depth.
				converged, diverged = res.converged, res.diverged
				break
			}
			if err := e.drv.Phase(active, func(w *Worker) error {
				return e.runStates(w, &w.ctx, statePublish)
			}); err != nil {
				return nil, err
			}
		} else if err := e.drv.Phase(active, func(w *Worker) error {
			c := &w.ctx // per-worker scratch; reset for this pass
			*c = stepCtx{step: step, pActive: pActive, rejoinAt: e.prevBarrier, relaunch: true, active: active}
			return e.runStates(w, c, stateRecover, stateMerge, stateFetch, stateCompute, statePublish)
		}); err != nil {
			return nil, err
		}
		if len(expireEvict) > 0 {
			var janitor vclock.Clock
			for _, k := range expireEvict {
				e.cl.Redis.Delete(&janitor, k)
			}
		}

		// Collective exchanges reduce the step's updates between the
		// compute and pull halves: each round is one driver phase whose
		// members only read data written in earlier phases, with the
		// pool-wide readyAt marking when those writes are visible.
		var readyAt time.Duration
		if syncStep && e.xchg.Collective() {
			e.xchgIDs = activeIDs(e.xchgIDs, active)
			ids := e.xchgIDs
			for r := 0; r < e.xchg.Rounds(pActive); r++ {
				readyAt = maxClock(active)
				round := r
				if err := e.drv.Phase(active, func(w *Worker) error {
					c := &w.ctx
					*c = stepCtx{step: step, active: active}
					if err := e.runStates(w, c, stateRecover); err != nil {
						return err
					}
					start := w.inst.Clock.Now()
					if err := e.xchg.RunRound(&w.inst.Clock, w.id, step, round, ids, readyAt); err != nil {
						return fmt.Errorf("core: worker %d reduce round %d at step %d: %w", w.id, round, step, err)
					}
					if e.tr.Enabled() && w.inst.Clock.Now() > start {
						e.tr.SpanOn(workerTrack(w.id), trace.CatEngine, "reduce",
							start, w.inst.Clock.Now(), trace.Int("step", step), trace.Int("round", round))
					}
					return e.redoSegmentOnDeath(w, start, fmt.Sprintf("reduce round %d at step %d", round, step))
				}); err != nil {
					return nil, err
				}
			}
			readyAt = maxClock(active)
		}

		if syncStep {
			if err := e.drv.Phase(active, func(w *Worker) error {
				c := &w.ctx
				*c = stepCtx{step: step, fromStep: lastSync, toStep: step, active: active, readyAt: readyAt}
				return e.runStates(w, c, stateRecover, statePull)
			}); err != nil {
				return nil, err
			}
		}
		// Build the clock list only now: recoveries may have replaced
		// instances (and therefore clocks) during either phase.
		clocks := make([]*vclock.Clock, len(active))
		for i, w := range active {
			clocks[i] = &w.inst.Clock
		}
		var barrier time.Duration
		if syncStep {
			if e.tr.Enabled() {
				// Record each worker's barrier wait before reconciling:
				// the gap to the pool maximum is exactly what Barrier
				// will charge it.
				max := vclock.Max(clocks)
				for i, w := range active {
					e.tr.SpanOn(workerTrack(w.id), trace.CatEngine, "barrier",
						clocks[i].Now(), max, trace.Int("step", step))
				}
			}
			// BSP barrier (§3.1): the slowest worker paces the step.
			barrier = vclock.Barrier(clocks)
			for s := lastSync + 1; s <= step; s++ {
				e.expireStep(s, active)
			}
			lastSync = step
		} else {
			barrier = vclock.Max(clocks)
		}
		stepDur := e.advanceStep(barrier)

		// Enforce the platform execution cap (§2). Relaunching normally
		// keeps instances clear of it; a single step too long to fit the
		// remaining budget cannot be split, so it surfaces as
		// faas.ErrOverLimit instead of silently overrunning.
		cfg := e.cl.Platform.Config()
		for _, w := range active {
			if dead(w.inst) {
				continue // replaced with a fresh instance at the next phase
			}
			if err := w.inst.CheckLimit(cfg); err != nil {
				return nil, fmt.Errorf("core: step %d: %w", step, err)
			}
		}

		// Supervisor: aggregate the loss reports. On the pipelined path
		// the tail either launches onto the resident goroutine (overlapping
		// the next step's front half) or, when a dynamic guard fails or
		// this is the final step, runs inline in exact serial order; the
		// tuner is nil under the pipelining gates, so skipping the block
		// below is exact.
		if pipelined {
			req := tailReq{barrier: barrier, step: step, pActive: pActive, stepDur: stepDur, stopper: stopper}
			if step < spec.MaxSteps && tameLosses(active) && e.supFarFromLimit(barrier) {
				if tailOverlapHook != nil {
					tailOverlapHook()
				}
				tail.launch(req)
				continue
			}
			res := e.runTail(req)
			if res.err != nil {
				return nil, res.err
			}
			if res.stop {
				converged, diverged = res.converged, res.diverged
				break
			}
			continue
		}
		if err := e.syncSupervisor(barrier, step); err != nil {
			return nil, err
		}
		raw, updateBytes, err := e.aggregateReports(pActive)
		if err != nil {
			return nil, err
		}
		if e.tr.Enabled() {
			e.tr.SpanOn(supTrack, trace.CatEngine, "aggregate",
				barrier, e.sup.Clock.Now(), trace.Int("step", step))
		}
		smoothed := e.recordStep(step, barrier, raw, updateBytes, pActive, stepDur)

		var stop bool
		if stop, converged, diverged = stopper.Decide(raw, smoothed, barrier); stop {
			break
		}

		// Scale-in auto-tuner (§4.2) and control-plane shrink requests,
		// both run by the supervisor. Evictions only happen at sync
		// points so no published-but-unpulled update is lost under SSP.
		if e.tuner != nil {
			e.tuner.Observe(step, smoothed, stepDur)
			if syncStep {
				// Shrink directives due by this barrier become pending
				// requests; the tuner honors them under the same guards
				// as its own decisions (post-knee, above MinWorkers).
				for e.shrinkIdx < len(e.shrink) && e.shrink[e.shrinkIdx].At <= barrier {
					e.tuner.RequestShrink(e.shrink[e.shrinkIdx].Workers)
					e.shrinkIdx++
				}
				for e.tuner.PendingShrink() > 0 {
					d := e.tuner.DecideShrink(e.sup.Clock.Now(), step, pActive)
					if !d.Remove {
						break
					}
					if err := e.evictOne(step, barrier, active); err != nil {
						return nil, err
					}
					e.tuner.NotifyRemoval(step)
					active = e.active()
					pActive = len(active)
				}
				if e.job.Spec.AutoTune {
					d := e.tuner.Decide(e.sup.Clock.Now(), step, pActive)
					if d.Remove && pActive > e.tuner.Config().MinWorkers {
						if err := e.evictOne(step, barrier, active); err != nil {
							return nil, err
						}
						e.tuner.NotifyRemoval(step)
					}
				}
			}
		}
	}

	return e.teardown(converged, diverged, lastSync)
}

// maxClock returns the latest instance-clock instant across workers —
// the visibility horizon of everything written in a completed phase.
func maxClock(ws []*Worker) time.Duration {
	var m time.Duration
	for _, w := range ws {
		if now := w.inst.Clock.Now(); now > m {
			m = now
		}
	}
	return m
}
