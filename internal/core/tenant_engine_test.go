package core

import (
	"errors"
	"strings"
	"testing"
	"time"

	"mlless/internal/consistency"
	"mlless/internal/faas"
	"mlless/internal/sched"
)

func TestStartAtShiftsTimeline(t *testing.T) {
	// A job launched at a later virtual instant must produce the exact
	// same training trajectory, only translated in time: the control
	// plane schedules jobs by shifting StartAt, and any drift here would
	// break fleet determinism.
	const shift = 30 * time.Second
	cl0, job0 := testPMFJob(t, 3, Spec{MaxSteps: 20})
	base, err := Run(cl0, job0)
	if err != nil {
		t.Fatal(err)
	}
	cl1, job1 := testPMFJob(t, 3, Spec{MaxSteps: 20, StartAt: shift})
	late, err := Run(cl1, job1)
	if err != nil {
		t.Fatal(err)
	}

	if base.Steps != late.Steps || base.FinalLoss != late.FinalLoss {
		t.Fatalf("shifted run diverged: steps %d vs %d, loss %v vs %v",
			base.Steps, late.Steps, base.FinalLoss, late.FinalLoss)
	}
	if base.ExecTime != late.ExecTime {
		t.Fatalf("ExecTime must exclude the launch offset: %v vs %v", base.ExecTime, late.ExecTime)
	}
	for i := range base.History {
		b, l := base.History[i], late.History[i]
		if l.Time != b.Time+shift {
			t.Fatalf("step %d barrier at %v, want %v+%v", b.Step, l.Time, b.Time, shift)
		}
		if l.Loss != b.Loss || l.Workers != b.Workers || l.Duration != b.Duration {
			t.Fatalf("step %d trace differs beyond the time shift", b.Step)
		}
	}
	if base.Cost.Total != late.Cost.Total {
		t.Fatalf("bill changed with launch time: $%v vs $%v", base.Cost.Total, late.Cost.Total)
	}
}

func TestTenantNamespacesBillingLabels(t *testing.T) {
	// Tenant jobs bill under "<tenant>/jobN/..." so a shared meter can be
	// split per tenant by label prefix; standalone jobs keep the bare
	// "jobN/..." labels (and the seed's byte-identical traces).
	cl, job := testPMFJob(t, 2, Spec{MaxSteps: 4, Tenant: "acme"})
	res, err := Run(cl, job)
	if err != nil {
		t.Fatal(err)
	}
	fns := 0
	for _, c := range res.Cost.Components {
		if c.Kind != "function" {
			continue
		}
		fns++
		if !strings.HasPrefix(c.Name, "acme/job1/") {
			t.Fatalf("tenant function billed as %q, want acme/job1/ prefix", c.Name)
		}
	}
	if fns == 0 {
		t.Fatal("no function components on the bill")
	}

	// A second, standalone job on the same cluster: the job counter is
	// cluster-wide, so namespaces stay disjoint across tenants.
	job2 := job
	job2.Spec.Tenant = ""
	res2, err := Run(cl, job2)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res2.Cost.Components {
		if c.Kind == "function" && !strings.HasPrefix(c.Name, "job2/") {
			t.Fatalf("standalone function billed as %q, want job2/ prefix", c.Name)
		}
	}
}

func TestShrinkDirectiveEvictsAfterKnee(t *testing.T) {
	// A control-plane shrink request due at virtual time 0 must wait for
	// the knee (removing workers before it stalls convergence, §4.2) and
	// then evict exactly the requested count — with AutoTune off, so the
	// removals are attributable to the directive alone.
	spec := Spec{
		Sync: consistency.ISP, Significance: 0.5,
		TargetLoss: 0.73, MaxSteps: 4000,
		Sched:  sched.Config{Epoch: 300 * time.Millisecond, S: 0.1},
		Shrink: []ShrinkDirective{{At: 0, Workers: 2}},
	}
	cl, job := testPMFJob(t, 8, spec)
	res, err := Run(cl, job)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("shrunk run did not converge (final %v)", res.FinalLoss)
	}
	if len(res.Removals) != 2 {
		t.Fatalf("directive asked for 2 removals, got %d", len(res.Removals))
	}
	last := res.History[len(res.History)-1]
	if last.Workers != 6 {
		t.Fatalf("final pool %d, want 6", last.Workers)
	}
	// The directive was due at t=0 but honored only post-knee: the first
	// steps must still run at full width.
	if res.History[0].Workers != 8 {
		t.Fatalf("pool shrank at step 1 (width %d), before any knee", res.History[0].Workers)
	}
}

func TestShrinkRespectsMinWorkersInEngine(t *testing.T) {
	// An oversized shrink request stops at the MinWorkers floor instead
	// of draining the pool.
	spec := Spec{
		Sync: consistency.ISP, Significance: 0.5,
		TargetLoss: 0.73, MaxSteps: 4000,
		Sched:  sched.Config{Epoch: 300 * time.Millisecond, S: 0.1, MinWorkers: 5},
		Shrink: []ShrinkDirective{{At: 0, Workers: 100}},
	}
	cl, job := testPMFJob(t, 8, spec)
	res, err := Run(cl, job)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Removals) != 3 {
		t.Fatalf("floor 5 from 8 workers allows 3 removals, got %d", len(res.Removals))
	}
	last := res.History[len(res.History)-1]
	if last.Workers != 5 {
		t.Fatalf("final pool %d, want the MinWorkers floor 5", last.Workers)
	}
}

func TestInvokeQuotaRetryBacksOffDeterministically(t *testing.T) {
	// A quota-rejected invocation retries with seeded backoff and books
	// every wait as restart overhead; with no capacity freeing it gives
	// up after maxInvokeAttempts with the quota error intact.
	cl := NewCluster()
	cl.Platform.SetQuota("t1", 1)
	if err := cl.Platform.Reserve("t1", 1); err != nil {
		t.Fatal(err)
	}
	e := &engine{cl: cl}
	_, err := e.invokeAt("t1/job1/worker-0", 256, 0, false)
	if !errors.Is(err, faas.ErrTooManyConcurrent) {
		t.Fatalf("exhausted retries returned %v, want ErrTooManyConcurrent", err)
	}
	if got := e.recovery.InvokeRetries; got != maxInvokeAttempts-1 {
		t.Fatalf("InvokeRetries = %d, want %d", got, maxInvokeAttempts-1)
	}
	var want time.Duration
	for a := 1; a < maxInvokeAttempts; a++ {
		want += quotaBackoff("t1/job1/worker-0", a)
	}
	if e.recovery.RestartTime != want {
		t.Fatalf("RestartTime = %v, want the summed backoffs %v", e.recovery.RestartTime, want)
	}

	// The jitter is a pure function of (name, attempt): same inputs, same
	// wait; different names desynchronize.
	if quotaBackoff("a", 3) != quotaBackoff("a", 3) {
		t.Fatal("quotaBackoff not deterministic")
	}
	if quotaBackoff("a", 3) == quotaBackoff("b", 3) {
		t.Fatal("per-name jitter collapsed: concurrent admits would stampede")
	}
	for a := 1; a <= 4; a++ {
		base := quotaRetryBase << (a - 1)
		got := quotaBackoff("x", a)
		if got < base || got > base+base/2 {
			t.Fatalf("attempt %d backoff %v outside [%v, %v]", a, got, base, base+base/2)
		}
	}
}

func TestRunUnderExactQuotaSucceeds(t *testing.T) {
	// A tenant quota with exactly enough slots for supervisor + workers
	// admits the job without retries; one slot short, the launch backs
	// off and ultimately surfaces the quota error.
	cl, job := testPMFJob(t, 2, Spec{MaxSteps: 3, Tenant: "t1"})
	cl.Platform.SetQuota("t1", 3) // sup + 2 workers
	res, err := Run(cl, job)
	if err != nil {
		t.Fatal(err)
	}
	if res.Recovery.InvokeRetries != 0 {
		t.Fatalf("exact-fit quota caused %d retries", res.Recovery.InvokeRetries)
	}

	cl2, job2 := testPMFJob(t, 2, Spec{MaxSteps: 3, Tenant: "t1"})
	cl2.Platform.SetQuota("t1", 2)
	if _, err := Run(cl2, job2); !errors.Is(err, faas.ErrTooManyConcurrent) {
		t.Fatalf("undersized quota returned %v, want ErrTooManyConcurrent", err)
	}
}

func TestTenancySpecValidation(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
		want error
	}{
		{"slash in tenant", Spec{Tenant: "a/b"}, ErrBadTenant},
		{"negative start", Spec{StartAt: -time.Second}, ErrNegativeStart},
		{"shrink under async", Spec{Sync: consistency.Async, Staleness: 4,
			Shrink: []ShrinkDirective{{At: 0, Workers: 1}}}, ErrAsyncShrink},
		{"shrink zero workers", Spec{Shrink: []ShrinkDirective{{At: 0, Workers: 0}}}, ErrBadShrink},
		{"shrink negative time", Spec{Shrink: []ShrinkDirective{{At: -time.Second, Workers: 1}}}, ErrBadShrink},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cl, job := testPMFJob(t, 2, tc.spec)
			if _, err := Run(cl, job); !errors.Is(err, tc.want) {
				t.Fatalf("got %v, want %v", err, tc.want)
			}
		})
	}
}
