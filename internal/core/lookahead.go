package core

import (
	"sort"
	"time"
)

// Conservative time-window lookahead: the partitioning rule that lets
// the driver (driver.go) run several workers at once without changing a
// single byte of the run's output.
//
// The async schedule has no barriers, so "who runs next" matters. The
// engine totally orders workers by (virtual clock, id) and groups the
// eligible ones by the step they are about to run: a step-s pass pulls
// peer updates through step s-1 only, so two workers about to run the
// same step can never observe each other's current-step effects — their
// virtual-time intervals cannot interact — while a worker at a later
// step does pull an earlier-step worker's publish. The group is
// therefore the same-step cohort of the smallest-(clock, id) eligible
// worker, executed in two sub-phases (reads, then writes; see
// async.go), and its members can run in any order or in parallel.
//
// Under LockStep the phase boundary itself is the lookahead window:
// every active worker runs the same step between barriers and pulls
// only updates published before the phase, so the whole active set is
// one group and no partitioning is needed.

// clockIDBefore reports whether worker a (clock at, id ai) precedes
// worker b (clock bt, id bi) in the engine's total (clock, id) order.
// The id tie-break is explicit — never an artifact of iteration order —
// because the lookahead partitioner and the drivers' merge step rely on
// this order being a property of the workers, stable under any
// reordering of the slice that holds them.
func clockIDBefore(at time.Duration, ai int, bt time.Duration, bi int) bool {
	if at != bt {
		return at < bt
	}
	return ai < bi
}

// canInteract is the partitioner's "cannot interact" predicate: it
// reports whether two eligible async workers, about to run steps sa and
// sb, could observe each other's effects within those passes. A step-s
// pass reads peer updates through step s-1 only, so equal steps cannot
// interact; unequal steps can — the later worker's pull window contains
// the earlier worker's publish.
func canInteract(sa, sb int) bool { return sa != sb }

// nextAsyncGroup selects the next lookahead group: all eligible workers
// sharing the next step of the eligible worker with the smallest
// (clock, id), sorted by (clock, id). Eligibility is the staleness
// rule: a worker may run step done+1 only while done+1 <= minDone+k and
// done < maxSteps. The slowest worker is always eligible and always
// anchors a group sooner or later, so the schedule cannot stall. An
// empty group means every worker has finished maxSteps.
//
// group is a reusable scratch slice (contents overwritten); states is
// addressed by worker id.
func nextAsyncGroup(workers []*Worker, states []*asyncState, maxSteps, k int, group []*Worker) []*Worker {
	group = group[:0]
	minDone := maxSteps
	for _, st := range states {
		if st.done < minDone {
			minDone = st.done
		}
	}
	eligible := func(st *asyncState) bool {
		return st.done < maxSteps && st.done+1 <= minDone+k
	}

	var pivot *Worker
	for _, w := range workers {
		if !eligible(states[w.id]) {
			continue
		}
		if pivot == nil || clockIDBefore(w.inst.Clock.Now(), w.id, pivot.inst.Clock.Now(), pivot.id) {
			pivot = w
		}
	}
	if pivot == nil {
		return group
	}

	step := states[pivot.id].done + 1
	for _, w := range workers {
		st := states[w.id]
		if eligible(st) && !canInteract(st.done+1, step) {
			group = append(group, w)
		}
	}
	sortByClockID(group)
	return group
}

// sortByClockID orders workers by the engine's total (clock, id) order.
func sortByClockID(ws []*Worker) {
	sort.Slice(ws, func(i, j int) bool {
		return clockIDBefore(ws[i].inst.Clock.Now(), ws[i].id, ws[j].inst.Clock.Now(), ws[j].id)
	})
}
