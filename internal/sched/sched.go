// Package sched implements MLLess's scale-in auto-tuner (§4.2): a
// dynamic, fine-grained scheduler that removes "unneeded" workers as
// training progresses, exploiting the pay-per-use FaaS billing model to
// cut cost without impairing convergence.
//
// Protocol, exactly as the paper describes it:
//
//  1. Observe the per-step loss (EWMA-smoothed) and step durations.
//
//  2. Detect the "knee" of the learning curve; never act before it.
//
//  3. At the knee, fit the reference curve L_P(t) (Eq. 2) on the history
//     so far and record the reference step duration d_P; then remove the
//     first worker.
//
//  4. At every subsequent scheduling epoch T, re-fit the slow-region
//     curve ℓ_p(t) (Eq. 3) on the losses observed since the last
//     removal, estimate the current step duration d_p, and compute the
//     relative projected loss-reduction error over horizon Δ (Eq. 1):
//
//     s_Δ(t) = [ℓ_p(t+⌊Δ/d_p⌋) − L_P(t+⌊Δ/d_P⌋)] / L_P(t+⌊Δ/d_P⌋)
//
//     Remove another worker when s_Δ(t) < S.
//
// Sign convention: Eq. 1 in the paper is printed with the operands in
// the other order, but its surrounding prose — s_Δ "tells how much the
// convergence rate may worsen with p workers", can be negative "which
// means that system throughput is indeed better as a result of removing
// workers", and scaling down proceeds while s_Δ(t) < S for small
// S ∈ [0, 1] — is only self-consistent when s_Δ measures the relative
// *degradation* of the p-worker projection, i.e. positive when the
// shrunk pool is projected to lag the reference and negative when the
// communication savings outweigh the lost parallelism. This package
// implements that semantics.
package sched

import (
	"time"

	"mlless/internal/fit"
	"mlless/internal/knee"
	"mlless/internal/trace"
)

// Config tunes the auto-tuner. Zero values select the paper's settings.
type Config struct {
	// Epoch is the scheduling interval T (paper: 20 s).
	Epoch time.Duration
	// Horizon is Δ, the look-ahead of the decision phase (paper: 10 s,
	// half the epoch).
	Horizon time.Duration
	// S is the scale-down threshold on s_Δ(t) in [0, 1].
	S float64
	// LossAlpha is the EWMA smoothing factor applied to raw losses.
	LossAlpha float64
	// Knee selects the knee detector (default: the paper's
	// slope-threshold heuristic).
	Knee knee.Detector
	// MinWorkers is the floor below which the tuner never scales
	// (default 1).
	MinWorkers int
	// MinFitPoints is the number of post-removal observations required
	// before re-fitting ℓ_p (default 8; Eq. 3 has 4 parameters).
	MinFitPoints int
}

func (c Config) withDefaults() Config {
	if c.Epoch <= 0 {
		c.Epoch = 20 * time.Second
	}
	if c.Horizon <= 0 {
		c.Horizon = c.Epoch / 2
	}
	if c.S <= 0 {
		c.S = 0.05
	}
	if c.LossAlpha <= 0 {
		c.LossAlpha = 0.25
	}
	if c.Knee == nil {
		c.Knee = knee.SlopeThreshold{}
	}
	if c.MinWorkers <= 0 {
		c.MinWorkers = 1
	}
	if c.MinFitPoints < 4 {
		c.MinFitPoints = 8
	}
	return c
}

// Decision reports one scheduling-epoch outcome for observability.
type Decision struct {
	// Step is the training step at decision time.
	Step int
	// Remove directs the engine to evict one worker.
	Remove bool
	// SDelta is the computed s_Δ(t) (NaN-free; only meaningful when a
	// fit was possible).
	SDelta float64
	// Reason explains the outcome ("before-knee", "knee", "fit-pending",
	// "s-below-threshold", "s-above-threshold", "at-min-workers").
	Reason string
}

// Tuner is the scale-in scheduler. Not safe for concurrent use: the
// supervisor owns it.
type Tuner struct {
	cfg    Config
	tracer *trace.Tracer
	track  string

	smoother *fit.EWMA
	losses   []float64 // smoothed loss per step (index = step-1)

	kneeFound bool
	kneeStep  int
	refCurve  fit.Fitted
	refDur    time.Duration // d_P

	lastRemovalStep int
	durSinceSum     time.Duration // step-duration sum since last removal
	durSinceCount   int

	totalDur   time.Duration // duration sum since start (for d_P)
	totalSteps int

	lastEpochAt time.Duration
	decisions   []Decision

	// pendingShrink counts workers the control plane has asked the job
	// to give up (RequestShrink) but the tuner has not yet honored.
	pendingShrink int
}

// New returns a tuner for a job that starts with initialWorkers workers.
func New(cfg Config) *Tuner {
	cfg = cfg.withDefaults()
	return &Tuner{cfg: cfg, smoother: fit.NewEWMA(cfg.LossAlpha)}
}

// Config returns the effective (defaulted) configuration.
func (t *Tuner) Config() Config { return t.cfg }

// SetTracer installs a tracer; every epoch decision is then recorded as
// an instant named after its Reason on the given track (the supervisor
// runs the tuner).
func (t *Tuner) SetTracer(tr *trace.Tracer, track string) {
	t.tracer = tr
	t.track = track
}

// Observe records the global loss and duration of step (1-based). It
// returns the smoothed loss.
func (t *Tuner) Observe(step int, loss float64, stepDur time.Duration) float64 {
	s := t.smoother.Update(loss)
	t.losses = append(t.losses, s)
	t.totalDur += stepDur
	t.totalSteps++
	t.durSinceSum += stepDur
	t.durSinceCount++
	return s
}

// SmoothedLosses exposes the smoothed loss history (shared slice; do not
// mutate).
func (t *Tuner) SmoothedLosses() []float64 { return t.losses }

// KneeStep returns the detected knee step (0, false before detection).
func (t *Tuner) KneeStep() (int, bool) { return t.kneeStep, t.kneeFound }

// ReferenceCurve returns the fitted L_P (valid after the knee).
func (t *Tuner) ReferenceCurve() (fit.Fitted, bool) { return t.refCurve, t.kneeFound }

// Decisions returns the log of epoch decisions.
func (t *Tuner) Decisions() []Decision { return t.decisions }

// avgDur computes d_p: mean step duration since the last removal.
func (t *Tuner) avgDur() time.Duration {
	if t.durSinceCount == 0 {
		return 0
	}
	return t.durSinceSum / time.Duration(t.durSinceCount)
}

// NotifyRemoval informs the tuner that the engine honoured a removal at
// the given step, resetting the post-removal observation window.
func (t *Tuner) NotifyRemoval(step int) {
	t.lastRemovalStep = step
	t.durSinceSum = 0
	t.durSinceCount = 0
}

// tryKnee runs knee detection on the observed losses and, on first
// success, fits the reference curve L_P and records d_P. It reports
// whether the knee is (now) found. Idempotent once found.
func (t *Tuner) tryKnee() bool {
	if t.kneeFound {
		return true
	}
	idx, ok := t.cfg.Knee.Detect(t.losses)
	if !ok {
		return false
	}
	// Fit the reference curve on the full history collected so far
	// ("uses the history of loss values at this time", §4.2).
	ts := make([]float64, len(t.losses))
	for i := range ts {
		ts[i] = float64(i + 1)
	}
	ref, err := fit.FitCurve(fit.ReferenceCurve{}, ts, t.losses, fit.FitOptions{})
	if err != nil {
		return false
	}
	t.kneeFound = true
	t.kneeStep = idx + 1
	t.refCurve = ref
	if t.totalSteps > 0 {
		t.refDur = t.totalDur / time.Duration(t.totalSteps)
	}
	return true
}

// RequestShrink records a control-plane request for the job to give up
// n workers — the multi-tenant admission scheduler's lever for shedding
// load off a contended shared platform. Requests accumulate until
// DecideShrink resolves them.
func (t *Tuner) RequestShrink(n int) {
	if n > 0 {
		t.pendingShrink += n
	}
}

// PendingShrink reports the not-yet-honored shrink-request balance.
func (t *Tuner) PendingShrink() int { return t.pendingShrink }

// DecideShrink resolves at most one pending shrink request at virtual
// time now, with the current training step and worker count. The guards
// mirror the auto-tuner's own protocol: a request is honored only after
// the loss-curve knee (scaling in before it impairs convergence, §4.2)
// and never below the MinWorkers floor — requests that hit the floor
// are dropped, since the floor makes them unsatisfiable for the rest of
// the run. Unlike Decide it is not epoch-gated: the control plane
// already paced the request. The engine must call NotifyRemoval when it
// honours a Remove decision.
func (t *Tuner) DecideShrink(now time.Duration, step, workers int) Decision {
	var d Decision
	switch {
	case t.pendingShrink == 0:
		d = Decision{Step: step, Reason: "no-shrink-pending"}
	case !t.tryKnee():
		d = Decision{Step: step, Reason: "before-knee"}
	case workers <= t.cfg.MinWorkers:
		t.pendingShrink = 0
		d = Decision{Step: step, Reason: "at-min-workers"}
	default:
		t.pendingShrink--
		d = Decision{Step: step, Remove: true, Reason: "pool-shrink"}
	}
	t.decisions = append(t.decisions, d)
	if t.tracer.Enabled() {
		t.tracer.InstantOn(t.track, trace.CatSched, d.Reason, now,
			trace.Int("step", d.Step), trace.Float("s_delta", d.SDelta))
	}
	return d
}

// Decide runs one scheduling epoch at virtual time now, with the current
// training step and worker count. The engine must call NotifyRemoval when
// it honours a Remove decision.
func (t *Tuner) Decide(now time.Duration, step, workers int) Decision {
	if now-t.lastEpochAt < t.cfg.Epoch {
		return Decision{Step: step, Reason: "epoch-pending"}
	}
	t.lastEpochAt = now

	d := t.decide(step, workers)
	t.decisions = append(t.decisions, d)
	if t.tracer.Enabled() {
		t.tracer.InstantOn(t.track, trace.CatSched, d.Reason, now,
			trace.Int("step", d.Step), trace.Float("s_delta", d.SDelta))
	}
	return d
}

func (t *Tuner) decide(step, workers int) Decision {
	if workers <= t.cfg.MinWorkers {
		return Decision{Step: step, Reason: "at-min-workers"}
	}

	// Phase 0: knee detection. The first removal happens at the knee
	// (§4.2: "After estimation of these quantities, the scheduler
	// removes the worker with the lowest-quality replica").
	if !t.kneeFound {
		if !t.tryKnee() {
			return Decision{Step: step, Reason: "before-knee"}
		}
		return Decision{Step: step, Remove: true, Reason: "knee"}
	}

	// Estimation phase: re-fit ℓ_p on losses since the last removal.
	start := t.lastRemovalStep // 1-based step of removal; losses after it
	if start < 0 {
		start = 0
	}
	if len(t.losses)-start < t.cfg.MinFitPoints {
		return Decision{Step: step, Reason: "fit-pending"}
	}
	ts := make([]float64, 0, len(t.losses)-start)
	ys := make([]float64, 0, len(t.losses)-start)
	for i := start; i < len(t.losses); i++ {
		ts = append(ts, float64(i+1))
		ys = append(ys, t.losses[i])
	}
	cur, err := fit.FitCurve(fit.SlowCurve{}, ts, ys, fit.FitOptions{})
	if err != nil {
		return Decision{Step: step, Reason: "fit-pending"}
	}

	// Decision phase: Eq. 1.
	dP, dp := t.refDur, t.avgDur()
	if dP <= 0 || dp <= 0 {
		return Decision{Step: step, Reason: "fit-pending"}
	}
	refSteps := float64(step) + float64(t.cfg.Horizon/dP)
	curSteps := float64(step) + float64(t.cfg.Horizon/dp)
	lRef := t.refCurve.Eval(refSteps)
	lCur := cur.Eval(curSteps)
	if lRef == 0 {
		return Decision{Step: step, Reason: "fit-pending"}
	}
	// Relative degradation of the current pool vs the reference (see the
	// package comment for the sign convention).
	s := (lCur - lRef) / lRef

	if s < t.cfg.S {
		return Decision{Step: step, Remove: true, SDelta: s, Reason: "s-below-threshold"}
	}
	return Decision{Step: step, SDelta: s, Reason: "s-above-threshold"}
}
