package sched

import (
	"math"
	"testing"
	"time"

	"mlless/internal/xrand"
)

// feed drives a tuner with a synthetic loss curve: exponential decay to
// a floor, with per-step duration dur, and runs the epoch clock. It
// returns the removal steps.
func feed(t *Tuner, steps int, dur time.Duration, floor float64, noise float64, seed uint64) []int {
	r := xrand.New(seed)
	var removals []int
	now := time.Duration(0)
	workers := 24
	for step := 1; step <= steps; step++ {
		now += dur
		loss := floor + 1.2*math.Exp(-4*float64(step)/float64(steps/3)) + r.NormFloat64()*noise
		t.Observe(step, loss, dur)
		d := t.Decide(now, step, workers)
		if d.Remove {
			removals = append(removals, step)
			workers--
			t.NotifyRemoval(step)
		}
	}
	return removals
}

func TestNoRemovalBeforeKnee(t *testing.T) {
	tuner := New(Config{Epoch: time.Second})
	r := xrand.New(1)
	now := time.Duration(0)
	// Feed only the steep region: loss still dropping fast.
	for step := 1; step <= 30; step++ {
		now += time.Second
		loss := 2 * math.Exp(-0.01*float64(step))
		tuner.Observe(step, loss+r.NormFloat64()*1e-4, time.Second)
		if d := tuner.Decide(now, step, 24); d.Remove {
			t.Fatalf("removed a worker at step %d, before any knee", step)
		}
	}
	if _, found := tuner.KneeStep(); found {
		t.Fatal("knee found in steep region")
	}
}

func TestFirstRemovalAtKnee(t *testing.T) {
	tuner := New(Config{Epoch: time.Second})
	removals := feed(tuner, 400, time.Second, 0.5, 0, 2)
	if len(removals) == 0 {
		t.Fatal("auto-tuner never removed a worker")
	}
	kneeStep, found := tuner.KneeStep()
	if !found {
		t.Fatal("knee not recorded")
	}
	if removals[0] < kneeStep {
		t.Fatalf("first removal (step %d) before the knee (step %d)", removals[0], kneeStep)
	}
	if _, ok := tuner.ReferenceCurve(); !ok {
		t.Fatal("reference curve not fitted at knee")
	}
}

func TestContinuedRemovalsWhenFlat(t *testing.T) {
	// A flat post-knee curve matches the reference projection, so s_Δ ≈ 0
	// < S and the tuner should keep scaling in across epochs.
	tuner := New(Config{Epoch: time.Second, S: 0.05})
	removals := feed(tuner, 600, time.Second, 0.5, 0, 3)
	if len(removals) < 3 {
		t.Fatalf("expected repeated scale-in on a flat curve, got removals at %v", removals)
	}
}

func TestEpochGating(t *testing.T) {
	tuner := New(Config{Epoch: 20 * time.Second})
	// Decisions between epochs must be epoch-pending regardless of data.
	tuner.Observe(1, 1.0, time.Second)
	d := tuner.Decide(5*time.Second, 1, 24)
	if d.Reason == "" {
		t.Fatal("missing reason")
	}
	// First call at t=5s triggers (lastEpochAt starts at 0 — 5s < 20s).
	if d.Remove {
		t.Fatal("removal before first epoch elapsed")
	}
}

func TestMinWorkersFloor(t *testing.T) {
	tuner := New(Config{Epoch: time.Second, MinWorkers: 23})
	r := xrand.New(4)
	now := time.Duration(0)
	workers := 24
	removed := 0
	for step := 1; step <= 500; step++ {
		now += time.Second
		loss := 0.5 + 1.2*math.Exp(-4*float64(step)/100) + r.NormFloat64()*1e-5
		tuner.Observe(step, loss, time.Second)
		if d := tuner.Decide(now, step, workers); d.Remove {
			workers--
			removed++
			tuner.NotifyRemoval(step)
		}
	}
	if removed > 1 {
		t.Fatalf("removed %d workers past the MinWorkers floor", removed)
	}
	if workers < 23 {
		t.Fatalf("worker count %d below floor", workers)
	}
}

func TestNoRemovalWhenDegradationHigh(t *testing.T) {
	// After the first (knee) removal, make the observed loss curve jump
	// far above the reference projection: s_Δ must exceed S and block
	// further removals.
	tuner := New(Config{Epoch: time.Second, S: 0.02})
	r := xrand.New(5)
	now := time.Duration(0)
	workers := 24
	var removals []int
	for step := 1; step <= 600; step++ {
		now += time.Second
		var loss float64
		if len(removals) == 0 {
			loss = 0.5 + 1.2*math.Exp(-4*float64(step)/120)
		} else {
			// Severe regression after the first removal: loss rebounds
			// and stays high.
			loss = 1.4 + 0.05*math.Exp(-float64(step)/600)
		}
		tuner.Observe(step, loss+r.NormFloat64()*1e-5, time.Second)
		if d := tuner.Decide(now, step, workers); d.Remove {
			removals = append(removals, step)
			workers--
			tuner.NotifyRemoval(step)
		}
	}
	if len(removals) > 1 {
		t.Fatalf("tuner kept removing (at steps %v) despite severe degradation", removals)
	}
}

func TestDecisionLogPopulated(t *testing.T) {
	tuner := New(Config{Epoch: time.Second})
	feed(tuner, 300, time.Second, 0.5, 0, 6)
	if len(tuner.Decisions()) == 0 {
		t.Fatal("no decisions logged")
	}
	seen := map[string]bool{}
	for _, d := range tuner.Decisions() {
		seen[d.Reason] = true
	}
	if !seen["knee"] {
		t.Fatalf("no knee decision logged: %v", seen)
	}
}

func TestObserveSmoothing(t *testing.T) {
	tuner := New(Config{LossAlpha: 0.5})
	first := tuner.Observe(1, 10, time.Second)
	second := tuner.Observe(2, 0, time.Second)
	if first != 10 || second != 5 {
		t.Fatalf("smoothing: %v, %v", first, second)
	}
	if len(tuner.SmoothedLosses()) != 2 {
		t.Fatal("loss history length")
	}
}

func TestDefaultsMatchPaper(t *testing.T) {
	cfg := (Config{}).withDefaults()
	if cfg.Epoch != 20*time.Second {
		t.Fatalf("default epoch %v, want the paper's 20s", cfg.Epoch)
	}
	if cfg.Horizon != 10*time.Second {
		t.Fatalf("default horizon %v, want Δ = T/2 = 10s", cfg.Horizon)
	}
	if cfg.MinWorkers != 1 {
		t.Fatal("default MinWorkers != 1")
	}
}

func TestFasterStepsExtendHorizonSteps(t *testing.T) {
	// With d_p < d_P the current curve is evaluated more steps ahead —
	// verify indirectly: a post-removal curve identical to the reference
	// but with faster steps yields s_Δ ≤ 0 (throughput strictly better).
	tuner := New(Config{Epoch: time.Second, S: 0.05})
	r := xrand.New(7)
	now := time.Duration(0)
	workers := 24
	removed := false
	var sAfter []float64
	for step := 1; step <= 500; step++ {
		dur := time.Second
		if removed {
			dur = 500 * time.Millisecond // steps twice as fast after removal
		}
		now += dur
		loss := 0.5 + 1.2*math.Exp(-4*float64(step)/100) + r.NormFloat64()*1e-6
		tuner.Observe(step, loss, dur)
		d := tuner.Decide(now, step, workers)
		if d.Remove {
			workers--
			removed = true
			tuner.NotifyRemoval(step)
		} else if removed && (d.Reason == "s-below-threshold" || d.Reason == "s-above-threshold") {
			sAfter = append(sAfter, d.SDelta)
		}
	}
	// Judge only the decisions shortly after the removal: far-horizon
	// extrapolation of the power-law reference beyond its fitted region
	// drifts conservatively upward by design.
	if len(sAfter) > 10 {
		sAfter = sAfter[:10]
	}
	sum := 0.0
	for _, s := range sAfter {
		if s > 0.15 {
			t.Fatalf("s_Δ = %v despite faster, equally convergent steps", s)
		}
		sum += s
	}
	if len(sAfter) > 0 && sum/float64(len(sAfter)) > 0.08 {
		t.Fatalf("mean s_Δ = %v; expected ≈ 0 for equal convergence with faster steps", sum/float64(len(sAfter)))
	}
}

// feedShrink drives a tuner with the synthetic decay curve while a
// control-plane shrink request for n workers is pending from the start.
// It returns the steps at which shrink removals were honored and the
// decision reasons seen, pinning the admission-path behavior.
func feedShrink(t *Tuner, n, steps int, dur time.Duration, workers int) (removals []int, reasons []string) {
	t.RequestShrink(n)
	now := time.Duration(0)
	for step := 1; step <= steps; step++ {
		now += dur
		loss := 0.5 + 1.2*math.Exp(-4*float64(step)/float64(steps/3))
		t.Observe(step, loss, dur)
		for t.PendingShrink() > 0 {
			d := t.DecideShrink(now, step, workers)
			reasons = append(reasons, d.Reason)
			if !d.Remove {
				break
			}
			removals = append(removals, step)
			workers--
			t.NotifyRemoval(step)
		}
	}
	return removals, reasons
}

func TestShrinkWaitsForKnee(t *testing.T) {
	tuner := New(Config{})
	removals, reasons := feedShrink(tuner, 2, 400, time.Second, 24)
	if len(removals) != 2 {
		t.Fatalf("shrink removals = %v, want 2 honored", removals)
	}
	kneeStep, found := tuner.KneeStep()
	if !found {
		t.Fatal("knee not recorded")
	}
	for _, step := range removals {
		if step < kneeStep {
			t.Fatalf("shrink honored at step %d, before knee %d", step, kneeStep)
		}
	}
	// Every pre-knee poll must have refused with "before-knee"; the
	// honored ones are "pool-shrink".
	for i, r := range reasons {
		if r != "before-knee" && r != "pool-shrink" {
			t.Fatalf("reason[%d] = %q", i, r)
		}
	}
	if tuner.PendingShrink() != 0 {
		t.Fatalf("pending = %d after honoring", tuner.PendingShrink())
	}
}

func TestShrinkRespectsMinWorkersFloor(t *testing.T) {
	tuner := New(Config{MinWorkers: 8})
	// Ask for far more than the pool can give: the floor must stop the
	// shrink and drop the unsatisfiable remainder.
	removals, _ := feedShrink(tuner, 100, 400, time.Second, 10)
	if len(removals) != 2 {
		t.Fatalf("removals = %d, want 2 (10 -> floor 8)", len(removals))
	}
	if tuner.PendingShrink() != 0 {
		t.Fatalf("unsatisfiable requests not dropped: pending = %d", tuner.PendingShrink())
	}
	last := tuner.Decisions()[len(tuner.Decisions())-1]
	if last.Reason != "at-min-workers" {
		t.Fatalf("last reason = %q, want at-min-workers", last.Reason)
	}
	// At the floor, further polls keep refusing.
	tuner.RequestShrink(1)
	if d := tuner.DecideShrink(500*time.Second, 401, 8); d.Remove {
		t.Fatal("removed below MinWorkers")
	}
}

func TestShrinkNoPendingIsNoOp(t *testing.T) {
	tuner := New(Config{})
	d := tuner.DecideShrink(time.Second, 1, 24)
	if d.Remove || d.Reason != "no-shrink-pending" {
		t.Fatalf("decision = %+v", d)
	}
	tuner.RequestShrink(0)
	tuner.RequestShrink(-3)
	if tuner.PendingShrink() != 0 {
		t.Fatalf("non-positive requests accumulated: %d", tuner.PendingShrink())
	}
}

// TestShrinkDeterministicAcrossRuns pins that the shrink-decision
// sequence is a pure function of the observation stream: two tuners fed
// the same seeded curve and request schedule decide identically.
func TestShrinkDeterministicAcrossRuns(t *testing.T) {
	run := func() ([]int, []string) {
		tuner := New(Config{MinWorkers: 4})
		return feedShrink(tuner, 3, 300, 750*time.Millisecond, 16)
	}
	r1, reasons1 := run()
	r2, reasons2 := run()
	if len(r1) != len(r2) {
		t.Fatalf("removal counts differ: %v vs %v", r1, r2)
	}
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatalf("removal steps differ at %d: %v vs %v", i, r1, r2)
		}
	}
	if len(reasons1) != len(reasons2) {
		t.Fatalf("reason logs differ: %d vs %d", len(reasons1), len(reasons2))
	}
	for i := range reasons1 {
		if reasons1[i] != reasons2[i] {
			t.Fatalf("reasons differ at %d: %q vs %q", i, reasons1[i], reasons2[i])
		}
	}
}

// TestShrinkDoesNotPerturbAutoTune pins that merely honoring a shrink
// request resets the auto-tuner's fit window the same way its own
// removals do (via NotifyRemoval in the driver above), and that the
// auto-tune decision path still works after shrink removals.
func TestShrinkThenAutoTuneStillDecides(t *testing.T) {
	tuner := New(Config{Epoch: time.Second, MinWorkers: 4})
	removals, _ := feedShrink(tuner, 1, 200, time.Second, 24)
	if len(removals) != 1 {
		t.Fatalf("shrink removals = %v", removals)
	}
	// The knee was consumed by the shrink; the auto-tuner must continue
	// from the estimation phase without re-removing at a "knee".
	d := tuner.Decide(1000*time.Second, 201, 23)
	if d.Reason == "knee" || d.Reason == "before-knee" {
		t.Fatalf("auto-tune phase after shrink = %q", d.Reason)
	}
}
