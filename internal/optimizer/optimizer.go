// Package optimizer implements the first-order optimizers of the paper's
// prototype (§5): SGD, SGD with (heavy-ball) momentum, SGD with Nesterov
// momentum (used for PMF, Table 1) and Adam (used for LR, Table 1). All
// of them operate directly on sparse gradients and keep sparse
// per-coordinate state, the specialization that lets MLLess "save
// significant time on serializing and deserializing data" compared to
// dense frameworks (§6.2).
//
// Optimizers transform a mini-batch gradient g_t into a model update
// u_t = x_t − x_{t−1} (already negated and learning-rate scaled), the
// quantity the significance filter accumulates and workers exchange.
package optimizer

import (
	"math"

	"mlless/internal/sparse"
)

// Optimizer turns gradients into parameter updates. Implementations keep
// per-worker state (momentum buffers, Adam moments) and are not safe for
// concurrent use; each worker owns a private instance.
type Optimizer interface {
	// Name identifies the optimizer ("sgd", "momentum", "nesterov",
	// "adam").
	Name() string
	// Step converts the gradient of step t (1-based) into the update
	// u_t = −η_t·direction, mutating internal state. The returned
	// vector is scratch owned by the optimizer and valid only until
	// the next Step; callers that retain it must Clone. Clone and
	// Reset never share scratch.
	Step(t int, grad *sparse.Vector) *sparse.Vector
	// Clone returns an independent copy including optimizer state.
	Clone() Optimizer
	// Reset clears optimizer state (momentum buffers, moments).
	Reset()
}

// Schedule is a learning-rate schedule over 1-based steps.
type Schedule interface {
	// Rate returns η_t.
	Rate(t int) float64
}

// Constant is a fixed learning rate.
type Constant float64

// Rate implements Schedule.
func (c Constant) Rate(int) float64 { return float64(c) }

// InvSqrt decays as η_t = η/√t, the schedule of the paper's convergence
// analysis (Theorem 1).
type InvSqrt float64

// Rate implements Schedule.
func (s InvSqrt) Rate(t int) float64 {
	if t < 1 {
		t = 1
	}
	return float64(s) / math.Sqrt(float64(t))
}

// StepDecay multiplies the base rate by Factor every Every steps — the
// staircase schedule common in deep-learning recipes.
type StepDecay struct {
	// Base is the initial learning rate.
	Base float64
	// Factor is the per-stage multiplier in (0, 1].
	Factor float64
	// Every is the stage length in steps.
	Every int
}

// Rate implements Schedule.
func (s StepDecay) Rate(t int) float64 {
	if t < 1 {
		t = 1
	}
	every := s.Every
	if every <= 0 {
		every = 1
	}
	stages := (t - 1) / every
	return s.Base * math.Pow(s.Factor, float64(stages))
}

// Warmup linearly ramps the rate from 0 to the wrapped schedule's value
// over Steps steps, then delegates.
type Warmup struct {
	// Steps is the ramp length.
	Steps int
	// Then is the schedule in effect after the ramp.
	Then Schedule
}

// Rate implements Schedule.
func (w Warmup) Rate(t int) float64 {
	if t < 1 {
		t = 1
	}
	if w.Steps > 0 && t <= w.Steps {
		return w.Then.Rate(t) * float64(t) / float64(w.Steps)
	}
	return w.Then.Rate(t)
}
