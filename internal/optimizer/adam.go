package optimizer

import (
	"math"

	"mlless/internal/sparse"
)

// Adam implements the Adam optimizer (Kingma & Ba) with sparse, lazily
// updated first and second moments — the LR optimizer of Table 1.
// Bias correction uses the global step count, the standard "lazy Adam"
// treatment for sparse gradients.
type Adam struct {
	lr           Schedule
	beta1, beta2 float64
	eps          float64
	m, v         *sparse.Vector
	u            *sparse.Vector // update scratch, valid until the next Step
}

var _ Optimizer = (*Adam)(nil)

// NewAdam returns an Adam optimizer. Standard defaults: β1=0.9,
// β2=0.999, ε=1e-8.
func NewAdam(lr Schedule, beta1, beta2, eps float64) *Adam {
	return &Adam{lr: lr, beta1: beta1, beta2: beta2, eps: eps, m: sparse.New(), v: sparse.New()}
}

// NewAdamDefaults returns Adam with the canonical hyperparameters.
func NewAdamDefaults(lr Schedule) *Adam {
	return NewAdam(lr, 0.9, 0.999, 1e-8)
}

// Name implements Optimizer.
func (o *Adam) Name() string { return "adam" }

// Step implements Optimizer.
func (o *Adam) Step(t int, grad *sparse.Vector) *sparse.Vector {
	if t < 1 {
		t = 1
	}
	rate := o.lr.Rate(t)
	c1 := 1 - math.Pow(o.beta1, float64(t))
	c2 := 1 - math.Pow(o.beta2, float64(t))
	if o.u == nil {
		o.u = sparse.NewWithCapacity(grad.Len())
	} else {
		o.u.Clear()
	}
	u := o.u
	grad.ForEach(func(i uint32, g float64) {
		m := o.beta1*o.m.Get(i) + (1-o.beta1)*g
		v := o.beta2*o.v.Get(i) + (1-o.beta2)*g*g
		o.m.Set(i, m)
		o.v.Set(i, v)
		mHat := m / c1
		vHat := v / c2
		u.Set(i, -rate*mHat/(math.Sqrt(vHat)+o.eps))
	})
	return u
}

// Clone implements Optimizer.
func (o *Adam) Clone() Optimizer {
	return &Adam{
		lr: o.lr, beta1: o.beta1, beta2: o.beta2, eps: o.eps,
		m: o.m.Clone(), v: o.v.Clone(),
	}
}

// Reset implements Optimizer.
func (o *Adam) Reset() {
	o.m = sparse.New()
	o.v = sparse.New()
}
