package optimizer

import "mlless/internal/sparse"

// SGD is plain stochastic gradient descent: u_t = −η_t·g_t.
type SGD struct {
	lr Schedule
	u  *sparse.Vector // update scratch, valid until the next Step
}

var _ Optimizer = (*SGD)(nil)

// NewSGD returns an SGD optimizer with the given schedule.
func NewSGD(lr Schedule) *SGD { return &SGD{lr: lr} }

// Name implements Optimizer.
func (o *SGD) Name() string { return "sgd" }

// Step implements Optimizer.
func (o *SGD) Step(t int, grad *sparse.Vector) *sparse.Vector {
	if o.u == nil {
		o.u = sparse.New()
	}
	o.u.CopyFrom(grad)
	o.u.Scale(-o.lr.Rate(t))
	return o.u
}

// Clone implements Optimizer.
func (o *SGD) Clone() Optimizer { return &SGD{lr: o.lr} }

// Reset implements Optimizer. SGD is stateless.
func (o *SGD) Reset() {}

// Momentum is SGD with heavy-ball momentum:
//
//	v ← μ·v + g;  u = −η_t·v
//
// The velocity buffer is sparse and "lazy": coordinates absent from a
// gradient keep their velocity undecayed until next touched, the
// standard sparse-training treatment.
type Momentum struct {
	lr  Schedule
	mu  float64
	vel *sparse.Vector
	u   *sparse.Vector // update scratch, valid until the next Step
}

var _ Optimizer = (*Momentum)(nil)

// NewMomentum returns a heavy-ball momentum optimizer.
func NewMomentum(lr Schedule, mu float64) *Momentum {
	return &Momentum{lr: lr, mu: mu, vel: sparse.New()}
}

// Name implements Optimizer.
func (o *Momentum) Name() string { return "momentum" }

// Step implements Optimizer.
func (o *Momentum) Step(t int, grad *sparse.Vector) *sparse.Vector {
	rate := o.lr.Rate(t)
	if o.u == nil {
		o.u = sparse.NewWithCapacity(grad.Len())
	} else {
		o.u.Clear()
	}
	u := o.u
	grad.ForEach(func(i uint32, g float64) {
		v := o.mu*o.vel.Get(i) + g
		o.vel.Set(i, v)
		u.Set(i, -rate*v)
	})
	return u
}

// Clone implements Optimizer.
func (o *Momentum) Clone() Optimizer {
	return &Momentum{lr: o.lr, mu: o.mu, vel: o.vel.Clone()}
}

// Reset implements Optimizer.
func (o *Momentum) Reset() { o.vel = sparse.New() }

// Nesterov is SGD with Nesterov momentum (the PMF optimizer of Table 1):
//
//	v ← μ·v + g;  u = −η_t·(g + μ·v)
type Nesterov struct {
	lr  Schedule
	mu  float64
	vel *sparse.Vector
	u   *sparse.Vector // update scratch, valid until the next Step
}

var _ Optimizer = (*Nesterov)(nil)

// NewNesterov returns a Nesterov-momentum optimizer.
func NewNesterov(lr Schedule, mu float64) *Nesterov {
	return &Nesterov{lr: lr, mu: mu, vel: sparse.New()}
}

// Name implements Optimizer.
func (o *Nesterov) Name() string { return "nesterov" }

// Step implements Optimizer.
func (o *Nesterov) Step(t int, grad *sparse.Vector) *sparse.Vector {
	rate := o.lr.Rate(t)
	if o.u == nil {
		o.u = sparse.NewWithCapacity(grad.Len())
	} else {
		o.u.Clear()
	}
	u := o.u
	grad.ForEach(func(i uint32, g float64) {
		v := o.mu*o.vel.Get(i) + g
		o.vel.Set(i, v)
		u.Set(i, -rate*(g+o.mu*v))
	})
	return u
}

// Clone implements Optimizer.
func (o *Nesterov) Clone() Optimizer {
	return &Nesterov{lr: o.lr, mu: o.mu, vel: o.vel.Clone()}
}

// Reset implements Optimizer.
func (o *Nesterov) Reset() { o.vel = sparse.New() }
