package optimizer

import (
	"math"
	"testing"

	"mlless/internal/sparse"
	"mlless/internal/xrand"
)

func grad(entries map[uint32]float64) *sparse.Vector {
	v := sparse.New()
	for i, val := range entries {
		v.Set(i, val)
	}
	return v
}

func TestSchedules(t *testing.T) {
	c := Constant(0.5)
	if c.Rate(1) != 0.5 || c.Rate(100) != 0.5 {
		t.Fatal("Constant schedule not constant")
	}
	s := InvSqrt(1.0)
	if s.Rate(1) != 1 {
		t.Fatalf("InvSqrt.Rate(1) = %v", s.Rate(1))
	}
	if math.Abs(s.Rate(4)-0.5) > 1e-12 {
		t.Fatalf("InvSqrt.Rate(4) = %v", s.Rate(4))
	}
	if s.Rate(0) != 1 || s.Rate(-3) != 1 {
		t.Fatal("InvSqrt must clamp non-positive steps")
	}
}

func TestSGDStep(t *testing.T) {
	o := NewSGD(Constant(0.1))
	u := o.Step(1, grad(map[uint32]float64{2: 10, 5: -20}))
	if math.Abs(u.Get(2)+1) > 1e-12 || math.Abs(u.Get(5)-2) > 1e-12 {
		t.Fatalf("SGD update: %v", u)
	}
}

func TestSGDDoesNotMutateGradient(t *testing.T) {
	o := NewSGD(Constant(0.1))
	g := grad(map[uint32]float64{1: 3})
	o.Step(1, g)
	if g.Get(1) != 3 {
		t.Fatal("Step mutated the input gradient")
	}
}

func TestMomentumAccumulates(t *testing.T) {
	o := NewMomentum(Constant(1), 0.9)
	g := grad(map[uint32]float64{0: 1})
	u1 := o.Step(1, g).Clone() // Step reuses scratch; retain across calls
	u2 := o.Step(2, g)
	// v1 = 1, v2 = 0.9 + 1 = 1.9
	if math.Abs(u1.Get(0)+1) > 1e-12 {
		t.Fatalf("u1 = %v", u1.Get(0))
	}
	if math.Abs(u2.Get(0)+1.9) > 1e-12 {
		t.Fatalf("u2 = %v", u2.Get(0))
	}
}

func TestNesterovLookahead(t *testing.T) {
	o := NewNesterov(Constant(1), 0.9)
	g := grad(map[uint32]float64{0: 1})
	u1 := o.Step(1, g)
	// v1 = 1; u1 = -(g + mu*v1) = -(1 + 0.9) = -1.9
	if math.Abs(u1.Get(0)+1.9) > 1e-12 {
		t.Fatalf("u1 = %v", u1.Get(0))
	}
}

func TestNesterovDescendsQuadraticFasterThanSGD(t *testing.T) {
	// Minimize f(x) = 0.5*x² from x=10 with equal small rates; momentum
	// should make more progress over a fixed horizon.
	run := func(o Optimizer) float64 {
		x := 10.0
		for t := 1; t <= 50; t++ {
			g := grad(map[uint32]float64{0: x})
			u := o.Step(t, g)
			x += u.Get(0)
		}
		return math.Abs(x)
	}
	sgd := run(NewSGD(Constant(0.02)))
	nest := run(NewNesterov(Constant(0.02), 0.9))
	if nest >= sgd {
		t.Fatalf("Nesterov |x|=%v not faster than SGD |x|=%v", nest, sgd)
	}
}

func TestAdamFirstStepIsLearningRateSized(t *testing.T) {
	o := NewAdamDefaults(Constant(0.001))
	u := o.Step(1, grad(map[uint32]float64{3: 42}))
	// With bias correction, the first Adam step is ≈ −lr·sign(g).
	if math.Abs(u.Get(3)+0.001) > 1e-6 {
		t.Fatalf("first Adam step = %v, want ≈ -0.001", u.Get(3))
	}
}

func TestAdamScaleInvariance(t *testing.T) {
	// Adam normalizes by gradient magnitude: constant gradients of very
	// different scales must produce near-identical steps.
	small := NewAdamDefaults(Constant(0.01))
	large := NewAdamDefaults(Constant(0.01))
	var us, ul float64
	for t := 1; t <= 10; t++ {
		us = small.Step(t, grad(map[uint32]float64{0: 1e-3})).Get(0)
		ul = large.Step(t, grad(map[uint32]float64{0: 1e3})).Get(0)
	}
	if math.Abs(us-ul) > 1e-4 {
		t.Fatalf("Adam not scale invariant: %v vs %v", us, ul)
	}
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	o := NewAdamDefaults(Constant(0.5))
	x := 10.0
	for t := 1; t <= 400; t++ {
		g := grad(map[uint32]float64{0: x})
		x += o.Step(t, g).Get(0)
	}
	if math.Abs(x) > 0.5 {
		t.Fatalf("Adam did not converge: x=%v", x)
	}
}

func TestCloneIsolatesState(t *testing.T) {
	for _, o := range []Optimizer{
		NewMomentum(Constant(1), 0.9),
		NewNesterov(Constant(1), 0.9),
		NewAdamDefaults(Constant(0.1)),
	} {
		g := grad(map[uint32]float64{0: 1})
		o.Step(1, g)
		c := o.Clone()
		// Advancing the clone must not affect the original.
		c.Step(2, g)
		c.Step(3, g)
		uOrig := o.Step(2, g)
		fresh := o.Clone()
		_ = fresh
		uClone := c.Step(4, g)
		if uOrig.Get(0) == uClone.Get(0) {
			t.Fatalf("%s: clone state appears shared", o.Name())
		}
	}
}

func TestResetClearsState(t *testing.T) {
	for _, mk := range []func() Optimizer{
		func() Optimizer { return NewMomentum(Constant(1), 0.9) },
		func() Optimizer { return NewNesterov(Constant(1), 0.9) },
		func() Optimizer { return NewAdamDefaults(Constant(0.1)) },
	} {
		o := mk()
		g := grad(map[uint32]float64{0: 1})
		first := o.Step(1, g).Get(0)
		o.Step(2, g)
		o.Reset()
		again := o.Step(1, g).Get(0)
		if math.Abs(first-again) > 1e-12 {
			t.Fatalf("%s: Reset did not restore initial behaviour (%v vs %v)", o.Name(), first, again)
		}
	}
}

func TestNames(t *testing.T) {
	names := map[string]Optimizer{
		"sgd":      NewSGD(Constant(1)),
		"momentum": NewMomentum(Constant(1), 0.9),
		"nesterov": NewNesterov(Constant(1), 0.9),
		"adam":     NewAdamDefaults(Constant(1)),
	}
	for want, o := range names {
		if o.Name() != want {
			t.Fatalf("Name = %s, want %s", o.Name(), want)
		}
	}
}

func TestUpdatesStaySparse(t *testing.T) {
	r := xrand.New(1)
	for _, o := range []Optimizer{
		NewSGD(InvSqrt(0.1)),
		NewMomentum(Constant(0.1), 0.9),
		NewNesterov(Constant(0.1), 0.9),
		NewAdamDefaults(Constant(0.1)),
	} {
		g := sparse.New()
		for i := 0; i < 10; i++ {
			g.Set(uint32(r.Intn(1000)), r.NormFloat64())
		}
		u := o.Step(1, g)
		if u.Len() > g.Len() {
			t.Fatalf("%s: update denser (%d) than gradient (%d)", o.Name(), u.Len(), g.Len())
		}
		u.ForEach(func(i uint32, _ float64) {
			if g.Get(i) == 0 {
				t.Errorf("%s: update touches coordinate %d absent from gradient", o.Name(), i)
			}
		})
	}
}

func TestStepDecay(t *testing.T) {
	s := StepDecay{Base: 1, Factor: 0.5, Every: 10}
	if s.Rate(1) != 1 || s.Rate(10) != 1 {
		t.Fatalf("first stage: %v, %v", s.Rate(1), s.Rate(10))
	}
	if s.Rate(11) != 0.5 || s.Rate(20) != 0.5 {
		t.Fatalf("second stage: %v, %v", s.Rate(11), s.Rate(20))
	}
	if s.Rate(21) != 0.25 {
		t.Fatalf("third stage: %v", s.Rate(21))
	}
	if s.Rate(0) != 1 {
		t.Fatal("non-positive step must clamp")
	}
	zero := StepDecay{Base: 2, Factor: 0.1, Every: 0}
	if zero.Rate(1) != 2 {
		t.Fatal("Every=0 must behave as Every=1 at t=1")
	}
}

func TestWarmup(t *testing.T) {
	w := Warmup{Steps: 10, Then: Constant(1)}
	if got := w.Rate(1); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("Rate(1) = %v", got)
	}
	if got := w.Rate(5); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("Rate(5) = %v", got)
	}
	if w.Rate(10) != 1 || w.Rate(100) != 1 {
		t.Fatal("post-ramp rate wrong")
	}
	none := Warmup{Steps: 0, Then: Constant(3)}
	if none.Rate(1) != 3 {
		t.Fatal("zero-length warmup must delegate")
	}
}

func TestWarmupMonotoneDuringRamp(t *testing.T) {
	w := Warmup{Steps: 50, Then: Constant(0.7)}
	prev := 0.0
	for t0 := 1; t0 <= 50; t0++ {
		r := w.Rate(t0)
		if r < prev {
			t.Fatalf("ramp decreased at %d", t0)
		}
		prev = r
	}
}
