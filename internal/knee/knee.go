// Package knee detects the "knee" of a training-loss curve — the point
// after which loss reduction slows down significantly. The scale-in
// scheduler never evicts a worker before the knee (§4.2, "Automatic
// 'knee' detection"). Two pluggable detectors are provided:
//
//   - SlopeThreshold, the paper's default: a threshold heuristic on the
//     first derivative of the learning curve;
//   - Kneedle (Satopää et al., ICDCSW '11), cited by the paper as a
//     drop-in alternative.
//
// Both expect a de-noised (EWMA-smoothed) decreasing loss series.
package knee

// Detector locates the knee index of a loss history.
type Detector interface {
	// Detect returns the knee index and whether one was found.
	Detect(ys []float64) (int, bool)
}

// SlopeThreshold flags the knee at the first point where the magnitude
// of the local slope falls below Ratio times the initial slope.
type SlopeThreshold struct {
	// Window is the number of points the local slope is estimated over
	// (default 5).
	Window int
	// Ratio is the slope-decay factor that defines the knee
	// (default 0.1: the curve has lost 90% of its initial steepness).
	Ratio float64
}

var _ Detector = SlopeThreshold{}

func (d SlopeThreshold) withDefaults() SlopeThreshold {
	if d.Window <= 1 {
		d.Window = 5
	}
	if d.Ratio <= 0 || d.Ratio >= 1 {
		d.Ratio = 0.1
	}
	return d
}

// Detect implements Detector.
func (d SlopeThreshold) Detect(ys []float64) (int, bool) {
	d = d.withDefaults()
	if len(ys) < 2*d.Window {
		return 0, false
	}
	slope := func(end int) float64 {
		// Mean one-step slope over the window ending at end (inclusive).
		return (ys[end] - ys[end-d.Window+1]) / float64(d.Window-1)
	}
	initial := slope(d.Window - 1)
	if initial >= 0 {
		return 0, false // not a decreasing curve
	}
	limit := -initial * d.Ratio
	for i := d.Window; i < len(ys); i++ {
		s := slope(i)
		if -s < limit {
			return i, true
		}
	}
	return 0, false
}

// Kneedle implements the Kneedle algorithm for decreasing convex curves
// (the shape of a training-loss history).
type Kneedle struct {
	// S is the sensitivity: larger values demand a more pronounced knee
	// (default 1.0, the paper's recommended setting in [34]).
	S float64
}

var _ Detector = Kneedle{}

// Detect implements Detector.
func (k Kneedle) Detect(ys []float64) (int, bool) {
	if k.S <= 0 {
		k.S = 1
	}
	n := len(ys)
	if n < 5 {
		return 0, false
	}
	lo, hi := ys[0], ys[0]
	for _, y := range ys {
		if y < lo {
			lo = y
		}
		if y > hi {
			hi = y
		}
	}
	if hi == lo {
		return 0, false
	}
	// Normalize; flip the decreasing convex curve into increasing
	// concave form, then build the difference curve.
	diff := make([]float64, n)
	dx := 1 / float64(n-1)
	for i, y := range ys {
		xn := float64(i) * dx
		yn := (y - lo) / (hi - lo)
		diff[i] = (1 - yn) - xn
	}
	// Local maxima of the difference curve; the knee is the first one
	// whose prominence survives the sensitivity threshold until the
	// difference curve drops below it.
	threshold := 0.0
	candidate := -1
	for i := 1; i < n-1; i++ {
		if diff[i] >= diff[i-1] && diff[i] >= diff[i+1] {
			if candidate < 0 || diff[i] > diff[candidate] {
				// New, higher local maximum: restart the watch.
				candidate = i
				threshold = diff[i] - k.S*dx
			}
			continue
		}
		if candidate >= 0 && diff[i] < threshold {
			return candidate, true
		}
	}
	if candidate >= 0 && diff[candidate] > 0 {
		return candidate, true
	}
	return 0, false
}
