package knee

import (
	"math"
	"testing"

	"mlless/internal/fit"
	"mlless/internal/xrand"
)

// lossCurve synthesizes a decreasing convex loss history with a knee
// around step kneeAt: fast exponential decay before, slow drift after.
func lossCurve(n, kneeAt int, noise float64, seed uint64) []float64 {
	r := xrand.New(seed)
	ys := make([]float64, n)
	for i := range ys {
		fast := 1.5 * math.Exp(-4*float64(i)/float64(kneeAt))
		slow := 0.5 * math.Exp(-0.1*float64(i)/float64(n))
		ys[i] = fast + slow + r.NormFloat64()*noise
	}
	return ys
}

func TestSlopeThresholdFindsKnee(t *testing.T) {
	ys := lossCurve(300, 60, 0, 1)
	idx, ok := (SlopeThreshold{}).Detect(ys)
	if !ok {
		t.Fatal("no knee found")
	}
	if idx < 20 || idx > 150 {
		t.Fatalf("knee at %d, expected near 60", idx)
	}
}

func TestSlopeThresholdNeverBeforeSteepRegion(t *testing.T) {
	ys := lossCurve(300, 100, 0, 2)
	idx, ok := (SlopeThreshold{}).Detect(ys)
	if !ok {
		t.Fatal("no knee found")
	}
	// At the knee the remaining loss reduction must be small relative to
	// the total: the detector must not fire in the fast region.
	dropBefore := ys[0] - ys[idx]
	total := ys[0] - ys[len(ys)-1]
	if dropBefore < 0.6*total {
		t.Fatalf("knee at %d captured only %.0f%% of the loss drop", idx, 100*dropBefore/total)
	}
}

func TestSlopeThresholdTooShort(t *testing.T) {
	if _, ok := (SlopeThreshold{}).Detect([]float64{3, 2, 1}); ok {
		t.Fatal("knee found in 3 points")
	}
}

func TestSlopeThresholdIncreasingCurve(t *testing.T) {
	ys := make([]float64, 100)
	for i := range ys {
		ys[i] = float64(i)
	}
	if _, ok := (SlopeThreshold{}).Detect(ys); ok {
		t.Fatal("knee found in increasing curve")
	}
}

func TestSlopeThresholdFlatCurve(t *testing.T) {
	ys := make([]float64, 100)
	for i := range ys {
		ys[i] = 1
	}
	if _, ok := (SlopeThreshold{}).Detect(ys); ok {
		t.Fatal("knee found in flat curve")
	}
}

func TestSlopeThresholdWithNoiseAndSmoothing(t *testing.T) {
	raw := lossCurve(300, 60, 0.01, 3)
	ys := fit.Smooth(0.2, raw)
	idx, ok := (SlopeThreshold{}).Detect(ys)
	if !ok {
		t.Fatal("no knee found in smoothed noisy curve")
	}
	if idx < 20 || idx > 200 {
		t.Fatalf("knee at %d", idx)
	}
}

func TestSlopeThresholdRatioMonotone(t *testing.T) {
	// Stricter ratio (smaller) must fire at the same point or later.
	ys := lossCurve(400, 80, 0, 4)
	loose, okL := SlopeThreshold{Ratio: 0.3}.Detect(ys)
	strict, okS := SlopeThreshold{Ratio: 0.05}.Detect(ys)
	if !okL || !okS {
		t.Fatal("detector failed")
	}
	if strict < loose {
		t.Fatalf("strict ratio fired earlier (%d) than loose (%d)", strict, loose)
	}
}

func TestKneedleFindsKnee(t *testing.T) {
	ys := lossCurve(300, 60, 0, 5)
	idx, ok := (Kneedle{}).Detect(ys)
	if !ok {
		t.Fatal("Kneedle found no knee")
	}
	if idx < 15 || idx > 150 {
		t.Fatalf("Kneedle knee at %d, expected near 60", idx)
	}
}

func TestKneedleFlatAndShort(t *testing.T) {
	if _, ok := (Kneedle{}).Detect([]float64{1, 1, 1, 1, 1, 1}); ok {
		t.Fatal("knee in constant series")
	}
	if _, ok := (Kneedle{}).Detect([]float64{2, 1}); ok {
		t.Fatal("knee in 2 points")
	}
}

func TestKneedleOnCanonicalHyperbola(t *testing.T) {
	// y = 1/x over [1, 10]: known knee region around x≈2-3 (index 10-25
	// of 90 when sampled uniformly).
	ys := make([]float64, 90)
	for i := range ys {
		x := 1 + 9*float64(i)/89
		ys[i] = 1 / x
	}
	idx, ok := (Kneedle{}).Detect(ys)
	if !ok {
		t.Fatal("no knee on hyperbola")
	}
	if idx < 5 || idx > 35 {
		t.Fatalf("hyperbola knee at %d", idx)
	}
}

func TestDetectorsAgreeOnCleanCurve(t *testing.T) {
	ys := lossCurve(300, 70, 0, 6)
	a, okA := SlopeThreshold{}.Detect(ys)
	b, okB := Kneedle{}.Detect(ys)
	if !okA || !okB {
		t.Fatal("a detector failed")
	}
	// They need not match exactly, but must agree on the region.
	if math.Abs(float64(a-b)) > 100 {
		t.Fatalf("detectors wildly disagree: slope=%d kneedle=%d", a, b)
	}
}
