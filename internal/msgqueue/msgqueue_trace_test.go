package msgqueue

import (
	"testing"
	"time"

	"mlless/internal/faults"
	"mlless/internal/netmodel"
	"mlless/internal/trace"
	"mlless/internal/vclock"
)

func TestTracedBrokerSpikeIsOneSpanWithMultiplier(t *testing.T) {
	link := netmodel.Link{Latency: time.Millisecond, BandwidthBps: 1e6}
	b := New(link)
	b.SetFaults(faults.New(faults.Spec{
		Seed: 5, MQSlowProb: 1, MQSlowFactor: 4,
	}))
	tr := trace.New()
	b.SetTracer(tr)
	var clk vclock.Clock
	tr.RegisterClock(&clk, "worker-1")
	b.DeclareQueue("loss")

	msg := make([]byte, 2000)
	base := link.TransferTime(len(msg)) // 1 ms + 2 ms = 3 ms nominal
	if err := b.Publish(&clk, "loss", msg); err != nil {
		t.Fatal(err)
	}

	evs := tr.Events()
	if len(evs) != 1 {
		t.Fatalf("spike fragmented into %d spans", len(evs))
	}
	ev := evs[0]
	if ev.Cat != trace.CatMQ || ev.Name != "publish" || ev.Dur != 4*base {
		t.Fatalf("span: %+v (nominal %v)", ev, base)
	}
	if x, ok := ev.ArgFloat("fault_x"); !ok || x != 4 {
		t.Fatalf("fault_x = %v (present=%v), want 4", x, ok)
	}
	if q, _ := ev.ArgStr("queue"); q != "loss" {
		t.Fatalf("queue arg = %q", q)
	}
	if clk.Now() != 4*base {
		t.Fatalf("clock charged %v, want %v", clk.Now(), 4*base)
	}
}
