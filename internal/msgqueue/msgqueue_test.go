package msgqueue

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"mlless/internal/faults"
	"mlless/internal/netmodel"
	"mlless/internal/vclock"
)

func fastBroker() *Broker { return New(netmodel.Link{}) }

func TestPublishConsumeFIFO(t *testing.T) {
	b := fastBroker()
	b.DeclareQueue("q")
	var clk vclock.Clock
	for i := 0; i < 5; i++ {
		if err := b.Publish(&clk, "q", []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		msg, ok := b.Consume(&clk, "q")
		if !ok || msg[0] != byte(i) {
			t.Fatalf("Consume %d = %v, %v", i, msg, ok)
		}
	}
	if _, ok := b.Consume(&clk, "q"); ok {
		t.Fatal("empty queue yielded a message")
	}
}

func TestPublishUndeclared(t *testing.T) {
	b := fastBroker()
	var clk vclock.Clock
	if err := b.Publish(&clk, "nope", []byte("x")); !errors.Is(err, ErrNoQueue) {
		t.Fatalf("err = %v", err)
	}
}

func TestDeclareIdempotent(t *testing.T) {
	b := fastBroker()
	b.DeclareQueue("q")
	var clk vclock.Clock
	if err := b.Publish(&clk, "q", []byte("x")); err != nil {
		t.Fatal(err)
	}
	b.DeclareQueue("q") // must not drop pending messages
	if b.Len("q") != 1 {
		t.Fatal("re-declare dropped messages")
	}
}

func TestFanout(t *testing.T) {
	b := fastBroker()
	b.DeclareFanout("updates")
	b.DeclareQueue("w0")
	b.DeclareQueue("w1")
	if err := b.Bind("updates", "w0"); err != nil {
		t.Fatal(err)
	}
	if err := b.Bind("updates", "w1"); err != nil {
		t.Fatal(err)
	}
	var clk vclock.Clock
	if err := b.PublishFanout(&clk, "updates", []byte("u")); err != nil {
		t.Fatal(err)
	}
	for _, q := range []string{"w0", "w1"} {
		msg, ok := b.Consume(&clk, q)
		if !ok || string(msg) != "u" {
			t.Fatalf("queue %s: %q, %v", q, msg, ok)
		}
	}
}

func TestFanoutCopiesPerQueue(t *testing.T) {
	b := fastBroker()
	b.DeclareFanout("x")
	b.DeclareQueue("a")
	b.DeclareQueue("b")
	_ = b.Bind("x", "a")
	_ = b.Bind("x", "b")
	var clk vclock.Clock
	_ = b.PublishFanout(&clk, "x", []byte("m"))
	msgA, _ := b.Consume(&clk, "a")
	msgA[0] = 'Z'
	msgB, _ := b.Consume(&clk, "b")
	if string(msgB) != "m" {
		t.Fatal("fanout queues share one buffer")
	}
}

func TestBindErrors(t *testing.T) {
	b := fastBroker()
	if err := b.Bind("nox", "noq"); !errors.Is(err, ErrNoExchange) {
		t.Fatalf("err = %v", err)
	}
	b.DeclareFanout("x")
	if err := b.Bind("x", "noq"); !errors.Is(err, ErrNoQueue) {
		t.Fatalf("err = %v", err)
	}
}

func TestUnbindStopsDelivery(t *testing.T) {
	b := fastBroker()
	b.DeclareFanout("x")
	b.DeclareQueue("q")
	_ = b.Bind("x", "q")
	b.Unbind("x", "q")
	var clk vclock.Clock
	_ = b.PublishFanout(&clk, "x", []byte("m"))
	if b.Len("q") != 0 {
		t.Fatal("unbound queue still receives")
	}
}

func TestDeleteQueueUnbinds(t *testing.T) {
	b := fastBroker()
	b.DeclareFanout("x")
	b.DeclareQueue("q")
	_ = b.Bind("x", "q")
	b.DeleteQueue("q")
	var clk vclock.Clock
	if err := b.PublishFanout(&clk, "x", []byte("m")); err != nil {
		t.Fatal(err)
	}
	if b.Len("q") != 0 {
		t.Fatal("deleted queue received a message")
	}
}

func TestConsumeAll(t *testing.T) {
	b := fastBroker()
	b.DeclareQueue("q")
	var clk vclock.Clock
	for i := 0; i < 3; i++ {
		_ = b.Publish(&clk, "q", []byte{byte(i)})
	}
	msgs := b.ConsumeAll(&clk, "q")
	if len(msgs) != 3 || msgs[2][0] != 2 {
		t.Fatalf("ConsumeAll = %v", msgs)
	}
	if b.Len("q") != 0 {
		t.Fatal("ConsumeAll left messages")
	}
}

func TestClockCharging(t *testing.T) {
	link := netmodel.Link{Latency: time.Millisecond, BandwidthBps: 1e6}
	b := New(link)
	b.DeclareQueue("q")
	var clk vclock.Clock
	_ = b.Publish(&clk, "q", make([]byte, 1000))
	want := time.Millisecond + time.Millisecond // latency + 1000B at 1MB/s
	if clk.Now() != want {
		t.Fatalf("Publish charged %v, want %v", clk.Now(), want)
	}
}

func TestMetrics(t *testing.T) {
	b := fastBroker()
	b.DeclareQueue("q")
	var clk vclock.Clock
	_ = b.Publish(&clk, "q", []byte("abc"))
	b.Consume(&clk, "q")
	reg := b.Registry()
	if pub, con, bts := reg.Counter("mq.published").Load(), reg.Counter("mq.consumed").Load(), reg.Counter("mq.bytes_published").Load(); pub != 1 || con != 1 || bts != 3 {
		t.Fatalf("published=%d consumed=%d bytes=%d", pub, con, bts)
	}
}

func TestConcurrentPublishers(t *testing.T) {
	b := fastBroker()
	b.DeclareQueue("q")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var clk vclock.Clock
			for i := 0; i < 100; i++ {
				if err := b.Publish(&clk, "q", []byte(fmt.Sprintf("%d/%d", w, i))); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if b.Len("q") != 800 {
		t.Fatalf("queue depth = %d", b.Len("q"))
	}
}

// --- fault injection ---

func TestFaultSlowPublishMultipliesCharge(t *testing.T) {
	link := netmodel.BrokerLink()
	clean := New(link)
	in := faults.New(faults.Spec{Seed: 2, MQSlowProb: 1, MQSlowFactor: 3})
	faulty := New(link)
	faulty.SetFaults(in)
	clean.DeclareQueue("q")
	faulty.DeclareQueue("q")
	msg := make([]byte, 8192)
	var a, b vclock.Clock
	if err := clean.Publish(&a, "q", msg); err != nil {
		t.Fatal(err)
	}
	if err := faulty.Publish(&b, "q", msg); err != nil {
		t.Fatal(err)
	}
	if want := 3 * a.Now(); b.Now() != want {
		t.Fatalf("slow Publish charged %v, want %v (clean %v)", b.Now(), want, a.Now())
	}
	if m := in.Metrics(); m.MQSlowOps != 1 {
		t.Fatalf("MQSlowOps = %d, want 1", m.MQSlowOps)
	}
	// The message is delivered despite the spike.
	if got, ok := faulty.Consume(&b, "q"); !ok || len(got) != len(msg) {
		t.Fatalf("Consume after spike = %d bytes, %v", len(got), ok)
	}
}

func TestFaultFailedPublishCostsRetries(t *testing.T) {
	link := netmodel.BrokerLink()
	in := faults.New(faults.Spec{Seed: 2, MQFailProb: 1})
	b := New(link)
	b.SetFaults(in)
	b.DeclareQueue("q")
	msg := make([]byte, 2048)
	var clk vclock.Clock
	if err := b.Publish(&clk, "q", msg); err != nil {
		t.Fatal(err)
	}
	base := link.TransferTime(len(msg))
	want := base + 5*(faults.DefaultRetryPenalty+base)
	if clk.Now() != want {
		t.Fatalf("failed Publish charged %v, want %v", clk.Now(), want)
	}
	if m := in.Metrics(); m.MQFailures != 5 {
		t.Fatalf("MQFailures = %d, want 5", m.MQFailures)
	}
	if b.Len("q") != 1 {
		t.Fatal("message lost to injected failures")
	}
}
