// Package msgqueue simulates the messaging service (RabbitMQ on a
// C1.4x4 VM in the paper, §3.1) that carries control traffic between
// MLLess workers and the supervisor: update-availability announcements,
// per-step loss reports, and scale-in commands. It offers named FIFO
// queues and fanout exchanges, the two primitives the prototype uses.
//
// The broker is safe for concurrent use; consumption is non-blocking
// because the simulator's step engine polls at deterministic points
// instead of parking goroutines.
package msgqueue

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"mlless/internal/faults"
	"mlless/internal/netmodel"
	"mlless/internal/trace"
	"mlless/internal/vclock"
)

// ErrNoQueue is returned when addressing an undeclared queue.
var ErrNoQueue = errors.New("msgqueue: queue not declared")

// ErrNoExchange is returned when addressing an undeclared exchange.
var ErrNoExchange = errors.New("msgqueue: exchange not declared")

// Metrics aggregates broker traffic.
type Metrics struct {
	Published      int64
	Consumed       int64
	BytesPublished int64
}

// Broker is a simulated message broker.
type Broker struct {
	link   netmodel.Link
	faults *faults.Injector
	tracer *trace.Tracer

	mu        sync.Mutex
	queues    map[string][][]byte
	exchanges map[string]map[string]bool // exchange -> bound queues

	reg *trace.Registry
	// Counters live in the unified registry under "mq.*".
	cPublished, cConsumed, cBytesPublished *trace.Counter
}

// New returns an empty broker reached through link, with a private
// metrics registry.
func New(link netmodel.Link) *Broker {
	return NewWithRegistry(link, trace.NewRegistry())
}

// NewWithRegistry returns an empty broker whose counters live in the
// given unified registry under "mq.*".
func NewWithRegistry(link netmodel.Link, reg *trace.Registry) *Broker {
	return &Broker{
		link:            link,
		queues:          make(map[string][][]byte),
		exchanges:       make(map[string]map[string]bool),
		reg:             reg,
		cPublished:      reg.Counter("mq.published"),
		cConsumed:       reg.Counter("mq.consumed"),
		cBytesPublished: reg.Counter("mq.bytes_published"),
	}
}

// Registry returns the metrics registry the broker's counters live in.
func (b *Broker) Registry() *trace.Registry { return b.reg }

// SetTracer installs (or, with nil, removes) a tracer recording one
// span per operation on the calling clock's track, with any injected
// fault delay recorded as a "fault_x" charge multiplier. Same
// concurrency contract as SetFaults.
func (b *Broker) SetTracer(tr *trace.Tracer) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.tracer = tr
}

// traceOp records one operation span from start to clk.Now(),
// annotating the observed charge multiplier when faults stretched it
// past the nominal base.
func (b *Broker) traceOp(clk *vclock.Clock, op, queue string, start time.Duration, bytes int, base time.Duration) {
	actual := clk.Now() - start
	if actual > base && base > 0 {
		b.tracer.SpanAt(clk, trace.CatMQ, op, start,
			trace.Str("queue", queue), trace.Int("bytes", bytes),
			trace.Float("fault_x", float64(actual)/float64(base)))
		return
	}
	b.tracer.SpanAt(clk, trace.CatMQ, op, start,
		trace.Str("queue", queue), trace.Int("bytes", bytes))
}

// SetFaults installs (or, with nil, removes) a fault injector that adds
// per-operation failures (client-retried, costing time) and latency
// spikes. Do not call concurrently with operations; the engine installs
// it during job setup and removes it at teardown.
func (b *Broker) SetFaults(in *faults.Injector) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.faults = in
}

// chargeFaults advances clk by any injected penalty for an operation
// that nominally cost base; clk.Now() (post nominal charge) identifies
// the operation instant. The lock-free read of b.faults is safe because
// SetFaults happens-before the worker goroutines that publish/consume.
func (b *Broker) chargeFaults(clk *vclock.Clock, op, queue string, base time.Duration) {
	if b.faults == nil {
		return
	}
	clk.Advance(b.faults.MQDelay(op, queue, clk.Now(), base))
}

// DeclareQueue creates a queue if it does not exist (idempotent).
func (b *Broker) DeclareQueue(name string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.queues[name]; !ok {
		b.queues[name] = nil
	}
}

// DeleteQueue removes a queue and unbinds it from all exchanges.
func (b *Broker) DeleteQueue(name string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	delete(b.queues, name)
	for _, bound := range b.exchanges {
		delete(bound, name)
	}
}

// DeclareFanout creates a fanout exchange if it does not exist.
func (b *Broker) DeclareFanout(name string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.exchanges[name]; !ok {
		b.exchanges[name] = make(map[string]bool)
	}
}

// Bind attaches queue to exchange so fanout publishes reach it.
func (b *Broker) Bind(exchange, queue string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	bound, ok := b.exchanges[exchange]
	if !ok {
		return fmt.Errorf("bind %s->%s: %w", exchange, queue, ErrNoExchange)
	}
	if _, ok := b.queues[queue]; !ok {
		return fmt.Errorf("bind %s->%s: %w", exchange, queue, ErrNoQueue)
	}
	bound[queue] = true
	return nil
}

// Unbind detaches queue from exchange (idempotent).
func (b *Broker) Unbind(exchange, queue string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	delete(b.exchanges[exchange], queue)
}

// Publish appends a copy of msg to queue, charging one transfer to clk.
func (b *Broker) Publish(clk *vclock.Clock, queue string, msg []byte) error {
	start := clk.Now()
	base := b.link.TransferTime(len(msg))
	clk.Advance(base)
	b.chargeFaults(clk, "publish", queue, base)
	if b.tracer.Enabled() {
		b.traceOp(clk, "publish", queue, start, len(msg), base)
	}
	cp := make([]byte, len(msg))
	copy(cp, msg)

	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.queues[queue]; !ok {
		return fmt.Errorf("publish to %s: %w", queue, ErrNoQueue)
	}
	b.queues[queue] = append(b.queues[queue], cp)
	b.cPublished.Inc()
	b.cBytesPublished.Add(int64(len(msg)))
	return nil
}

// PublishFanout delivers a copy of msg to every queue bound to exchange.
// A single transfer is charged: the broker VM, not the publisher,
// performs the replication.
func (b *Broker) PublishFanout(clk *vclock.Clock, exchange string, msg []byte) error {
	start := clk.Now()
	base := b.link.TransferTime(len(msg))
	clk.Advance(base)
	b.chargeFaults(clk, "fanout", exchange, base)
	if b.tracer.Enabled() {
		b.traceOp(clk, "fanout", exchange, start, len(msg), base)
	}

	b.mu.Lock()
	defer b.mu.Unlock()
	bound, ok := b.exchanges[exchange]
	if !ok {
		return fmt.Errorf("publish to exchange %s: %w", exchange, ErrNoExchange)
	}
	for q := range bound {
		cp := make([]byte, len(msg))
		copy(cp, msg)
		b.queues[q] = append(b.queues[q], cp)
		b.cPublished.Inc()
		b.cBytesPublished.Add(int64(len(msg)))
	}
	return nil
}

// Consume pops the oldest message from queue. It returns false when the
// queue is empty or undeclared. One round trip is charged either way.
func (b *Broker) Consume(clk *vclock.Clock, queue string) ([]byte, bool) {
	start := clk.Now()
	b.mu.Lock()
	msgs := b.queues[queue]
	var msg []byte
	ok := len(msgs) > 0
	if ok {
		msg = msgs[0]
		b.queues[queue] = msgs[1:]
		b.cConsumed.Inc()
	}
	b.mu.Unlock()

	base := b.link.TransferTime(len(msg))
	clk.Advance(base)
	b.chargeFaults(clk, "consume", queue, base)
	if b.tracer.Enabled() {
		b.traceOp(clk, "consume", queue, start, len(msg), base)
	}
	return msg, ok
}

// ConsumeAll drains queue, charging a single round trip plus the
// bandwidth of everything returned (a batched basic.get).
func (b *Broker) ConsumeAll(clk *vclock.Clock, queue string) [][]byte {
	start := clk.Now()
	b.mu.Lock()
	msgs := b.queues[queue]
	b.queues[queue] = nil
	b.cConsumed.Add(int64(len(msgs)))
	b.mu.Unlock()

	total := 0
	for _, m := range msgs {
		total += len(m)
	}
	base := b.link.TransferTime(total)
	clk.Advance(base)
	b.chargeFaults(clk, "consume-all", queue, base)
	if b.tracer.Enabled() {
		b.traceOp(clk, "consume-all", queue, start, total, base)
	}
	return msgs
}

// Len reports the queue depth (observability; charges no time).
func (b *Broker) Len(queue string) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.queues[queue])
}

// Metrics returns a snapshot of the traffic counters.
//
// Deprecated: the counters live in the unified trace.Registry the
// broker was built with (see Registry), under "mq.*" names; this method
// is a compatibility view over them.
func (b *Broker) Metrics() Metrics {
	return Metrics{
		Published:      b.cPublished.Load(),
		Consumed:       b.cConsumed.Load(),
		BytesPublished: b.cBytesPublished.Load(),
	}
}
