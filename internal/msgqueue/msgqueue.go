// Package msgqueue simulates the messaging service (RabbitMQ on a
// C1.4x4 VM in the paper, §3.1) that carries control traffic between
// MLLess workers and the supervisor: update-availability announcements,
// per-step loss reports, and scale-in commands. It offers named FIFO
// queues and fanout exchanges, the two primitives the prototype uses.
//
// Link charging, fault injection, tracing and counters delegate to the
// shared substrate pipeline (package substrate); this package owns only
// the queue/exchange data plane.
//
// The broker is safe for concurrent use; consumption is non-blocking
// because the simulator's step engine polls at deterministic points
// instead of parking goroutines.
package msgqueue

import (
	"errors"
	"fmt"
	"sync"

	"mlless/internal/faults"
	"mlless/internal/netmodel"
	"mlless/internal/substrate"
	"mlless/internal/trace"
	"mlless/internal/vclock"
)

// ErrNoQueue is returned when addressing an undeclared queue.
var ErrNoQueue = errors.New("msgqueue: queue not declared")

// ErrNoExchange is returned when addressing an undeclared exchange.
var ErrNoExchange = errors.New("msgqueue: exchange not declared")

// Broker is a simulated message broker.
type Broker struct {
	pipe *substrate.Pipeline

	mu        sync.Mutex
	queues    map[string][][]byte
	exchanges map[string]map[string]bool // exchange -> bound queues

	// Counters live in the unified registry under "mq.*".
	cPublished, cConsumed, cBytesPublished *trace.Counter
}

// New returns an empty broker reached through link, with a private
// metrics registry.
func New(link netmodel.Link) *Broker {
	return NewWithRegistry(link, trace.NewRegistry())
}

// NewWithRegistry returns an empty broker whose counters live in the
// given unified registry under "mq.*".
func NewWithRegistry(link netmodel.Link, reg *trace.Registry) *Broker {
	pipe := substrate.New(substrate.Config{
		Link:     link,
		Cat:      trace.CatMQ,
		KeyLabel: "queue",
		Domain:   substrate.DomainMQ,
	}, reg)
	return &Broker{
		pipe:            pipe,
		queues:          make(map[string][][]byte),
		exchanges:       make(map[string]map[string]bool),
		cPublished:      pipe.Counter("mq.published"),
		cConsumed:       pipe.Counter("mq.consumed"),
		cBytesPublished: pipe.Counter("mq.bytes_published"),
	}
}

// Registry returns the metrics registry the broker's counters live in.
func (b *Broker) Registry() *trace.Registry { return b.pipe.Registry() }

// Link returns the broker's network link parameters, so a sandboxed
// execution can build a private broker with identical timing.
func (b *Broker) Link() netmodel.Link { return b.pipe.Link() }

// SetTracer installs (or, with nil, removes) a tracer recording one
// span per operation on the calling clock's track, with any injected
// fault delay recorded as a "fault_x" charge multiplier. Same
// concurrency contract as SetFaults.
func (b *Broker) SetTracer(tr *trace.Tracer) { b.pipe.SetTracer(tr) }

// SetFaults installs (or, with nil, removes) a fault injector that adds
// per-operation failures (client-retried, costing time) and latency
// spikes. Do not call concurrently with operations; the engine installs
// it during job setup and removes it at teardown.
func (b *Broker) SetFaults(in *faults.Injector) { b.pipe.SetFaults(in) }

// DeclareQueue creates a queue if it does not exist (idempotent).
func (b *Broker) DeclareQueue(name string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.queues[name]; !ok {
		b.queues[name] = nil
	}
}

// DeleteQueue removes a queue and unbinds it from all exchanges.
func (b *Broker) DeleteQueue(name string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	delete(b.queues, name)
	for _, bound := range b.exchanges {
		delete(bound, name)
	}
}

// DeclareFanout creates a fanout exchange if it does not exist.
func (b *Broker) DeclareFanout(name string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.exchanges[name]; !ok {
		b.exchanges[name] = make(map[string]bool)
	}
}

// Bind attaches queue to exchange so fanout publishes reach it.
func (b *Broker) Bind(exchange, queue string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	bound, ok := b.exchanges[exchange]
	if !ok {
		return fmt.Errorf("bind %s->%s: %w", exchange, queue, ErrNoExchange)
	}
	if _, ok := b.queues[queue]; !ok {
		return fmt.Errorf("bind %s->%s: %w", exchange, queue, ErrNoQueue)
	}
	bound[queue] = true
	return nil
}

// Unbind detaches queue from exchange (idempotent).
func (b *Broker) Unbind(exchange, queue string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	delete(b.exchanges[exchange], queue)
}

// Publish appends a copy of msg to queue, charging one transfer to clk.
func (b *Broker) Publish(clk *vclock.Clock, queue string, msg []byte) error {
	b.pipe.Charge(clk, "publish", queue, len(msg), b.pipe.TransferTime(len(msg)))
	cp := make([]byte, len(msg))
	copy(cp, msg)

	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.queues[queue]; !ok {
		return fmt.Errorf("publish to %s: %w", queue, ErrNoQueue)
	}
	b.queues[queue] = append(b.queues[queue], cp)
	b.cPublished.Inc()
	b.cBytesPublished.Add(int64(len(msg)))
	return nil
}

// PublishFanout delivers a copy of msg to every queue bound to exchange.
// A single transfer is charged: the broker VM, not the publisher,
// performs the replication.
func (b *Broker) PublishFanout(clk *vclock.Clock, exchange string, msg []byte) error {
	b.pipe.Charge(clk, "fanout", exchange, len(msg), b.pipe.TransferTime(len(msg)))

	b.mu.Lock()
	defer b.mu.Unlock()
	bound, ok := b.exchanges[exchange]
	if !ok {
		return fmt.Errorf("publish to exchange %s: %w", exchange, ErrNoExchange)
	}
	for q := range bound {
		cp := make([]byte, len(msg))
		copy(cp, msg)
		b.queues[q] = append(b.queues[q], cp)
		b.cPublished.Inc()
		b.cBytesPublished.Add(int64(len(msg)))
	}
	return nil
}

// Consume pops the oldest message from queue. It returns false when the
// queue is empty or undeclared. One round trip is charged either way.
func (b *Broker) Consume(clk *vclock.Clock, queue string) ([]byte, bool) {
	b.mu.Lock()
	msgs := b.queues[queue]
	var msg []byte
	ok := len(msgs) > 0
	if ok {
		msg = msgs[0]
		b.queues[queue] = msgs[1:]
		b.cConsumed.Inc()
	}
	b.mu.Unlock()

	b.pipe.Charge(clk, "consume", queue, len(msg), b.pipe.TransferTime(len(msg)))
	return msg, ok
}

// ConsumeAll drains queue, charging a single round trip plus the
// bandwidth of everything returned (a batched basic.get).
func (b *Broker) ConsumeAll(clk *vclock.Clock, queue string) [][]byte {
	b.mu.Lock()
	msgs := b.queues[queue]
	b.queues[queue] = nil
	b.cConsumed.Add(int64(len(msgs)))
	b.mu.Unlock()

	total := 0
	for _, m := range msgs {
		total += len(m)
	}
	b.pipe.Charge(clk, "consume-all", queue, total, b.pipe.TransferTime(total))
	return msgs
}

// Len reports the queue depth (observability; charges no time).
func (b *Broker) Len(queue string) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.queues[queue])
}
