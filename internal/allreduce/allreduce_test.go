package allreduce

import (
	"math"
	"testing"
	"time"

	"mlless/internal/netmodel"
	"mlless/internal/sparse"
)

func TestRingTimeDegenerate(t *testing.T) {
	link := netmodel.VMPeerLink()
	if RingTime(link, 1, 1<<20) != 0 {
		t.Fatal("single participant must be free")
	}
	if RingTime(link, 8, 0) != 0 {
		t.Fatal("zero bytes must be free")
	}
}

func TestRingBeatsNaive(t *testing.T) {
	link := netmodel.VMPeerLink()
	for _, p := range []int{2, 4, 8, 24} {
		ring := RingTime(link, p, 10<<20)
		naive := NaiveTime(link, p, 10<<20)
		if ring >= naive {
			t.Fatalf("p=%d: ring %v not faster than naive %v", p, ring, naive)
		}
	}
}

func TestRingBandwidthTermNearlyConstantInP(t *testing.T) {
	// Ring all-reduce moves 2n(p−1)/p bytes per node: the bandwidth term
	// approaches 2n/bw as p grows. With negligible latency, doubling p
	// must not meaningfully change the time.
	link := netmodel.Link{BandwidthBps: 125e6}
	t8 := RingTime(link, 8, 100<<20)
	t16 := RingTime(link, 16, 100<<20)
	ratio := t16.Seconds() / t8.Seconds()
	if ratio > 1.15 {
		t.Fatalf("ring time grew %vx from p=8 to p=16", ratio)
	}
}

func TestRingLatencyTermLinearInP(t *testing.T) {
	link := netmodel.Link{Latency: time.Millisecond}
	t4 := RingTime(link, 4, 1)
	t8 := RingTime(link, 8, 1)
	if t4 != 6*time.Millisecond || t8 != 14*time.Millisecond {
		t.Fatalf("latency phases: p=4 %v, p=8 %v", t4, t8)
	}
}

func TestReduceTimeKernel(t *testing.T) {
	link := netmodel.Link{Latency: time.Millisecond, BandwidthBps: 1e6}
	if got := ReduceTime(link, 3, 1e6); got != 3*(time.Millisecond+time.Second) {
		t.Fatalf("ReduceTime = %v", got)
	}
	if ReduceTime(link, 0, 100) != 0 || ReduceTime(link, 2, 0) != 0 {
		t.Fatal("degenerate ReduceTime must be free")
	}
	// Ring and naive are pure reparameterizations of the kernel.
	if RingTime(link, 4, 4000) != ReduceTime(link, 6, 1000) {
		t.Fatal("RingTime diverged from ReduceTime kernel")
	}
	if NaiveTime(link, 4, 4000) != ReduceTime(link, 6, 4000) {
		t.Fatal("NaiveTime diverged from ReduceTime kernel")
	}
}

func TestTreeLevels(t *testing.T) {
	cases := []struct{ p, fanout, want int }{
		{1, 4, 0}, {2, 4, 1}, {4, 4, 1}, {5, 4, 2},
		{16, 4, 2}, {17, 4, 3}, {8, 2, 3}, {9, 2, 4},
		{7, 0, 3}, // fan-out below 2 clamps to binary
	}
	for _, c := range cases {
		if got := TreeLevels(c.p, c.fanout); got != c.want {
			t.Fatalf("TreeLevels(%d, %d) = %d, want %d", c.p, c.fanout, got, c.want)
		}
	}
}

func TestTreeTimeBetweenRingAndNaive(t *testing.T) {
	// Tree fan-in beats the serial gather-through-root for moderate p
	// but cannot beat the bandwidth-optimal ring at scale.
	link := netmodel.VMPeerLink()
	for _, p := range []int{8, 24} {
		tree := TreeTime(link, p, 4, 10<<20)
		if naive := NaiveTime(link, p, 10<<20); tree >= naive {
			t.Fatalf("p=%d: tree %v not faster than naive %v", p, tree, naive)
		}
		if ring := RingTime(link, p, 10<<20); tree <= ring {
			t.Fatalf("p=%d: tree %v not slower than ring %v", p, tree, ring)
		}
	}
	if TreeTime(link, 1, 4, 1<<20) != 0 {
		t.Fatal("single participant must be free")
	}
}

func TestMeanDense(t *testing.T) {
	a := sparse.Dense{1, 2, 3}
	b := sparse.Dense{3, 2, 1}
	dst := make(sparse.Dense, 3)
	MeanDense(dst, []sparse.Dense{a, b})
	want := sparse.Dense{2, 2, 2}
	for i := range want {
		if math.Abs(dst[i]-want[i]) > 1e-12 {
			t.Fatalf("MeanDense = %v", dst)
		}
	}
	MeanDense(dst, nil) // must not panic or change dst
	if dst[0] != 2 {
		t.Fatal("empty reduce changed dst")
	}
}

func TestMeanDenseInPlace(t *testing.T) {
	a := sparse.Dense{4, 0}
	b := sparse.Dense{0, 4}
	MeanDense(a, []sparse.Dense{a, b})
	if a[0] != 2 || a[1] != 2 {
		t.Fatalf("in-place MeanDense = %v", a)
	}
}

func TestMeanSparse(t *testing.T) {
	a := sparse.New()
	a.Set(0, 2)
	b := sparse.New()
	b.Set(0, 4)
	b.Set(5, 2)
	m := MeanSparse([]*sparse.Vector{a, b})
	if m.Get(0) != 3 || m.Get(5) != 1 {
		t.Fatalf("MeanSparse = %v", m)
	}
	if MeanSparse(nil).Len() != 0 {
		t.Fatal("empty MeanSparse non-empty")
	}
}
