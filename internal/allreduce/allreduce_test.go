package allreduce

import (
	"math"
	"testing"
	"time"

	"mlless/internal/netmodel"
	"mlless/internal/sparse"
)

func TestRingTimeDegenerate(t *testing.T) {
	link := netmodel.VMPeerLink()
	if RingTime(link, 1, 1<<20) != 0 {
		t.Fatal("single participant must be free")
	}
	if RingTime(link, 8, 0) != 0 {
		t.Fatal("zero bytes must be free")
	}
}

func TestRingBeatsNaive(t *testing.T) {
	link := netmodel.VMPeerLink()
	for _, p := range []int{2, 4, 8, 24} {
		ring := RingTime(link, p, 10<<20)
		naive := NaiveTime(link, p, 10<<20)
		if ring >= naive {
			t.Fatalf("p=%d: ring %v not faster than naive %v", p, ring, naive)
		}
	}
}

func TestRingBandwidthTermNearlyConstantInP(t *testing.T) {
	// Ring all-reduce moves 2n(p−1)/p bytes per node: the bandwidth term
	// approaches 2n/bw as p grows. With negligible latency, doubling p
	// must not meaningfully change the time.
	link := netmodel.Link{BandwidthBps: 125e6}
	t8 := RingTime(link, 8, 100<<20)
	t16 := RingTime(link, 16, 100<<20)
	ratio := t16.Seconds() / t8.Seconds()
	if ratio > 1.15 {
		t.Fatalf("ring time grew %vx from p=8 to p=16", ratio)
	}
}

func TestRingLatencyTermLinearInP(t *testing.T) {
	link := netmodel.Link{Latency: time.Millisecond}
	t4 := RingTime(link, 4, 1)
	t8 := RingTime(link, 8, 1)
	if t4 != 6*time.Millisecond || t8 != 14*time.Millisecond {
		t.Fatalf("latency phases: p=4 %v, p=8 %v", t4, t8)
	}
}

func TestMeanDense(t *testing.T) {
	a := sparse.Dense{1, 2, 3}
	b := sparse.Dense{3, 2, 1}
	dst := make(sparse.Dense, 3)
	MeanDense(dst, []sparse.Dense{a, b})
	want := sparse.Dense{2, 2, 2}
	for i := range want {
		if math.Abs(dst[i]-want[i]) > 1e-12 {
			t.Fatalf("MeanDense = %v", dst)
		}
	}
	MeanDense(dst, nil) // must not panic or change dst
	if dst[0] != 2 {
		t.Fatal("empty reduce changed dst")
	}
}

func TestMeanDenseInPlace(t *testing.T) {
	a := sparse.Dense{4, 0}
	b := sparse.Dense{0, 4}
	MeanDense(a, []sparse.Dense{a, b})
	if a[0] != 2 || a[1] != 2 {
		t.Fatalf("in-place MeanDense = %v", a)
	}
}

func TestMeanSparse(t *testing.T) {
	a := sparse.New()
	a.Set(0, 2)
	b := sparse.New()
	b.Set(0, 4)
	b.Set(5, 2)
	m := MeanSparse([]*sparse.Vector{a, b})
	if m.Get(0) != 3 || m.Get(5) != 1 {
		t.Fatalf("MeanSparse = %v", m)
	}
	if MeanSparse(nil).Len() != 0 {
		t.Fatal("empty MeanSparse non-empty")
	}
}
