// Package allreduce models the collective-communication primitives of
// the serverful baseline. The paper's PyTorch setup uses Gloo's ring
// all-reduce ("rule of thumb for CPU training", §6.1) across VM workers;
// FaaS platforms cannot run these optimal HPC topologies at all because
// functions cannot open connections to each other (§2) — which is
// exactly why MLLess pays the indirect-communication tax instead.
//
// Besides the timing models, the package implements the actual dense
// reduction so baseline training produces real, bit-deterministic math.
package allreduce

import (
	"time"

	"mlless/internal/netmodel"
	"mlless/internal/sparse"
)

// ReduceTime is the shared kernel of every reduction timing model in
// the repo: a collective that runs for a number of sequential phases,
// each phase bounded by one transfer of bytesPerPhase over link. Ring,
// naive and tree topologies differ only in how many phases they need
// and how much each phase moves, so they all delegate here — and the
// storage-mediated exchange strategies (internal/exchange) reuse the
// same kernel for their closed-form estimates instead of re-deriving
// the math.
func ReduceTime(link netmodel.Link, phases, bytesPerPhase int) time.Duration {
	if phases <= 0 || bytesPerPhase <= 0 {
		return 0
	}
	return time.Duration(phases) * link.TransferTime(bytesPerPhase)
}

// RingTime returns the wall-clock of a bandwidth-optimal ring all-reduce
// of n bytes across p participants over link: 2(p−1) phases, each moving
// an n/p chunk between ring neighbours concurrently.
func RingTime(link netmodel.Link, p, n int) time.Duration {
	if p <= 1 || n <= 0 {
		return 0
	}
	return ReduceTime(link, 2*(p-1), (n+p-1)/p)
}

// NaiveTime returns the wall-clock of a gather-then-broadcast all-reduce
// through a root: the root serially receives p−1 full-size buffers and
// then serially sends p−1 back. It is the strawman RingTime beats; the
// ablation bench compares both.
func NaiveTime(link netmodel.Link, p, n int) time.Duration {
	if p <= 1 || n <= 0 {
		return 0
	}
	return ReduceTime(link, 2*(p-1), n)
}

// TreeLevels returns the number of fan-in rounds a tree reduction with
// the given fan-out needs to fold p participants into one root: the
// smallest L with fanout^L ≥ p. One participant needs no rounds.
func TreeLevels(p, fanout int) int {
	if p <= 1 {
		return 0
	}
	if fanout < 2 {
		fanout = 2
	}
	levels, reach := 0, 1
	for reach < p {
		reach *= fanout
		levels++
	}
	return levels
}

// TreeTime returns the wall-clock estimate of a tree reduce-broadcast of
// n bytes across p participants: TreeLevels fan-in rounds where each
// leader serially drains fanout−1 full buffers, plus one broadcast
// round. It is the closed-form counterpart of the TreeReduce exchange
// strategy's charged path, built from the same ReduceTime kernel the
// serverful baseline models use.
func TreeTime(link netmodel.Link, p, fanout, n int) time.Duration {
	if p <= 1 || n <= 0 {
		return 0
	}
	if fanout < 2 {
		fanout = 2
	}
	return ReduceTime(link, (fanout-1)*TreeLevels(p, fanout)+1, n)
}

// MeanDense overwrites dst with the element-wise mean of the gradient
// buffers (dst must be one of them or equal length). This is the real
// math an all-reduce-with-average performs in data-parallel SGD.
func MeanDense(dst sparse.Dense, buffers []sparse.Dense) {
	if len(buffers) == 0 {
		return
	}
	inv := 1 / float64(len(buffers))
	for i := range dst {
		sum := 0.0
		for _, b := range buffers {
			sum += b[i]
		}
		dst[i] = sum * inv
	}
}

// MeanSparse returns the mean of sparse gradients as a sparse vector,
// the aggregation the PyWren reducer performs.
func MeanSparse(gradients []*sparse.Vector) *sparse.Vector {
	out := sparse.New()
	if len(gradients) == 0 {
		return out
	}
	for _, g := range gradients {
		out.AddVector(g)
	}
	out.Scale(1 / float64(len(gradients)))
	return out
}
