// Package cost implements the pricing model of the paper's Table 2
// (IBM Cloud, us-east, April 2021) and the cost accounting used in the
// evaluation (§6.1, "Cost computation"):
//
//   - VM instances are priced hourly but, conservatively, prorated per
//     second — this favors the serverful baseline exactly as in the paper.
//   - Cloud functions are billed per GB-second of execution; the paper's
//     2 GB workers cost 3.4e-5 $/s.
//   - Object storage cost for the mini-batch traffic is excluded because
//     it is equivalent across all systems. Request traffic of the
//     collective exchange strategies (internal/exchange) is the
//     exception: it is what differs across strategies, so it is billed
//     per request at COS class rates.
//
// MLLess job cost = FaaS workers + supervisor function + the messaging VM
// (C1.4x4) + the Redis VM (M1.2x16). PyTorch job cost = the rented B1.4x8
// VMs. PyWren job cost = its function workers.
package cost

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Prices from Table 2.
const (
	// PriceC14x4PerHour is the C1.4x4 instance (4 vCPU, 4 GB RAM) that
	// hosts the MLLess messaging service.
	PriceC14x4PerHour = 0.15
	// PriceM12x16PerHour is the M1.2x16 instance (2 vCPU, 16 GB RAM)
	// that hosts Redis.
	PriceM12x16PerHour = 0.17
	// PriceB14x8PerHour is the B1.4x8 instance (4 vCPU, 8 GB RAM) used
	// as a PyTorch worker.
	PriceB14x8PerHour = 0.20
	// PriceFunctionPerGBSecond prices cloud-function execution. A 2 GB
	// function costs 3.4e-5 $/s (0.122 $/hour), per Table 2.
	PriceFunctionPerGBSecond = 1.7e-5
	// PriceCOSClassARequest prices object-storage mutating requests
	// (PUT, LIST); PriceCOSClassBRequest prices retrievals (GET).
	// DELETE is free. IBM COS standard-tier us-east rates of the paper's
	// pricing snapshot: $5.20 and $0.40 per 10k requests.
	PriceCOSClassARequest = 5.2e-6
	PriceCOSClassBRequest = 4e-7
)

// VMCost prorates an hourly VM price over duration d, per second.
func VMCost(hourlyPrice float64, d time.Duration) float64 {
	return hourlyPrice / 3600 * d.Seconds()
}

// FunctionCost returns the cost of running one cloud function with
// memGiB gigabytes of memory for duration d.
func FunctionCost(d time.Duration, memGiB float64) float64 {
	return PriceFunctionPerGBSecond * memGiB * d.Seconds()
}

// PerfPerDollar is the composite metric of §6.2: 1/(execTime · price).
// Higher is better; it rewards improvements in latency, cost, or both.
// It returns 0 when either input is non-positive.
func PerfPerDollar(execTime time.Duration, dollars float64) float64 {
	if execTime <= 0 || dollars <= 0 {
		return 0
	}
	return 1 / (execTime.Seconds() * dollars)
}

// Component is one billed element of a job.
type Component struct {
	// Name identifies the element, e.g. "worker-3" or "redis-vm".
	Name string
	// Kind is "function", "vm", "requests" or "memo". Memo components are
	// informational lines whose dollars are already contained in other
	// components; they are excluded from totals.
	Kind string
	// Duration is the billed time.
	Duration time.Duration
	// Dollars is the resulting charge.
	Dollars float64
}

// Meter accumulates the billed components of a job. The zero value is
// ready to use. Meter is safe for concurrent use.
type Meter struct {
	mu         sync.Mutex
	components []Component
}

// AddFunction bills a cloud-function execution.
func (m *Meter) AddFunction(name string, d time.Duration, memGiB float64) {
	m.add(Component{Name: name, Kind: "function", Duration: d, Dollars: FunctionCost(d, memGiB)})
}

// AddVM bills a VM rental prorated per second.
func (m *Meter) AddVM(name string, hourlyPrice float64, d time.Duration) {
	m.add(Component{Name: name, Kind: "vm", Duration: d, Dollars: VMCost(hourlyPrice, d)})
}

// AddRequests bills n storage requests at a per-request price. The
// duration stays zero: request charges buy operations, not time.
func (m *Meter) AddRequests(name string, n int64, perRequest float64) {
	m.add(Component{Name: name, Kind: "requests", Dollars: float64(n) * perRequest})
}

// AddMemo records an informational line — e.g. the engine's fault
// recovery overhead — whose dollars are already part of other
// components. Memo lines appear in the report but never in the total,
// so they cannot double-count.
func (m *Meter) AddMemo(name string, d time.Duration, dollars float64) {
	m.add(Component{Name: name, Kind: "memo", Duration: d, Dollars: dollars})
}

func (m *Meter) add(c Component) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.components = append(m.components, c)
}

// Total returns the summed charge so far.
func (m *Meter) Total() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	total := 0.0
	for _, c := range m.components {
		if c.Kind == "memo" {
			continue
		}
		total += c.Dollars
	}
	return total
}

// Report returns the components sorted by name plus the total.
func (m *Meter) Report() Report {
	m.mu.Lock()
	defer m.mu.Unlock()
	comps := make([]Component, len(m.components))
	copy(comps, m.components)
	sort.Slice(comps, func(i, j int) bool { return comps[i].Name < comps[j].Name })
	total := 0.0
	for _, c := range comps {
		if c.Kind == "memo" {
			continue
		}
		total += c.Dollars
	}
	return Report{Components: comps, Total: total}
}

// Report is an itemized bill.
type Report struct {
	Components []Component
	Total      float64
}

// String renders the bill as a fixed-width table.
func (r Report) String() string {
	var sb strings.Builder
	for _, c := range r.Components {
		fmt.Fprintf(&sb, "%-24s %-8s %12s  $%.6f\n", c.Name, c.Kind, c.Duration.Round(time.Millisecond), c.Dollars)
	}
	fmt.Fprintf(&sb, "%-24s %-8s %12s  $%.6f\n", "TOTAL", "", "", r.Total)
	return sb.String()
}
