package cost

import (
	"math"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestFunctionCostMatchesTable2(t *testing.T) {
	// Table 2: a 2 GB function costs 3.4e-5 $/s.
	got := FunctionCost(time.Second, 2)
	if math.Abs(got-3.4e-5) > 1e-12 {
		t.Fatalf("2GB function per second = %v, want 3.4e-5", got)
	}
	// And 0.122 $/hour (Table 2 parenthetical, rounded).
	hourly := FunctionCost(time.Hour, 2)
	if math.Abs(hourly-0.1224) > 1e-9 {
		t.Fatalf("2GB function per hour = %v, want 0.1224", hourly)
	}
}

func TestVMCostProrated(t *testing.T) {
	got := VMCost(0.20, 30*time.Minute)
	if math.Abs(got-0.10) > 1e-12 {
		t.Fatalf("half hour of $0.20/h VM = %v", got)
	}
	if VMCost(0.15, 0) != 0 {
		t.Fatal("zero duration costs money")
	}
}

func TestFunctionCheaperPerHourButPricierPerCPU(t *testing.T) {
	// The premise of §4: FaaS is more expensive per CPU-cycle. A 1 vCPU
	// 2 GB function ($0.1224/h) vs a 4 vCPU B1.4x8 ($0.20/h): per vCPU
	// the function costs ~2.4x more.
	fn := FunctionCost(time.Hour, 2)        // 1 vCPU
	vmPerCPU := VMCost(0.20, time.Hour) / 4 // 4 vCPUs
	if fn <= vmPerCPU {
		t.Fatalf("function per-vCPU %v not more expensive than VM %v", fn, vmPerCPU)
	}
}

func TestPerfPerDollar(t *testing.T) {
	got := PerfPerDollar(100*time.Second, 0.5)
	if math.Abs(got-1.0/50) > 1e-12 {
		t.Fatalf("PerfPerDollar = %v", got)
	}
	if PerfPerDollar(0, 1) != 0 || PerfPerDollar(time.Second, 0) != 0 {
		t.Fatal("degenerate inputs must yield 0")
	}
}

func TestPerfPerDollarImprovesWithEither(t *testing.T) {
	if err := quick.Check(func(a, b uint16) bool {
		base := PerfPerDollar(time.Duration(a%1000+1)*time.Second, float64(b%100+1))
		faster := PerfPerDollar(time.Duration(a%1000+1)*time.Second/2, float64(b%100+1))
		cheaper := PerfPerDollar(time.Duration(a%1000+1)*time.Second, float64(b%100+1)/2)
		return faster > base && cheaper > base
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMeterAccumulates(t *testing.T) {
	var m Meter
	m.AddFunction("worker-0", 100*time.Second, 2)
	m.AddFunction("worker-1", 100*time.Second, 2)
	m.AddVM("redis", PriceM12x16PerHour, time.Hour)
	want := 2*3.4e-5*100 + 0.17
	if math.Abs(m.Total()-want) > 1e-9 {
		t.Fatalf("Total = %v, want %v", m.Total(), want)
	}
}

func TestReportSortedAndTotaled(t *testing.T) {
	var m Meter
	m.AddVM("z-vm", 0.15, time.Hour)
	m.AddFunction("a-fn", time.Second, 2)
	r := m.Report()
	if len(r.Components) != 2 || r.Components[0].Name != "a-fn" {
		t.Fatalf("report order: %+v", r.Components)
	}
	if math.Abs(r.Total-m.Total()) > 1e-12 {
		t.Fatal("report total mismatch")
	}
	s := r.String()
	if !strings.Contains(s, "TOTAL") || !strings.Contains(s, "a-fn") {
		t.Fatalf("report string: %s", s)
	}
}

func TestMeterZeroValueUsable(t *testing.T) {
	var m Meter
	if m.Total() != 0 {
		t.Fatal("fresh meter non-zero")
	}
	if len(m.Report().Components) != 0 {
		t.Fatal("fresh meter has components")
	}
}

func TestMeterConcurrent(t *testing.T) {
	var m Meter
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				m.AddFunction("w", time.Second, 2)
			}
		}()
	}
	wg.Wait()
	want := 3.4e-5 * 1600
	if math.Abs(m.Total()-want) > 1e-9 {
		t.Fatalf("Total = %v, want %v", m.Total(), want)
	}
}

func TestMLLessVsPyTorchHeadlineShape(t *testing.T) {
	// §6.2 cost comparison shape: for the PMF+ML-20M job the paper reports
	// MLLess at $0.0948 (115 s) vs PyTorch at $0.6 (1800 s). Recompute with
	// Table 2 prices: 24 workers of 2 GB for 115 s + the two VMs for 115 s
	// must cost in the neighborhood the paper reports, and PyTorch's 6 VMs
	// for 1800 s likewise.
	var mlless Meter
	for i := 0; i < 24; i++ {
		mlless.AddFunction("w", 115*time.Second, 2)
	}
	mlless.AddVM("broker", PriceC14x4PerHour, 115*time.Second)
	mlless.AddVM("redis", PriceM12x16PerHour, 115*time.Second)

	var pytorch Meter
	for i := 0; i < 6; i++ {
		pytorch.AddVM("vm", PriceB14x8PerHour, 1800*time.Second)
	}

	if mlless.Total() >= pytorch.Total() {
		t.Fatalf("MLLess %v not cheaper than PyTorch %v", mlless.Total(), pytorch.Total())
	}
	ratio := pytorch.Total() / mlless.Total()
	if ratio < 4 || ratio > 9 {
		t.Fatalf("cost ratio %v outside the paper's ~6.3x neighborhood", ratio)
	}
}
