package netmodel

import (
	"testing"
	"testing/quick"
	"time"
)

func TestZeroLinkIsFree(t *testing.T) {
	var l Link
	if got := l.TransferTime(1 << 20); got != 0 {
		t.Fatalf("zero link charged %v", got)
	}
}

func TestLatencyOnly(t *testing.T) {
	l := Link{Latency: 5 * time.Millisecond}
	if got := l.TransferTime(1 << 30); got != 5*time.Millisecond {
		t.Fatalf("latency-only link charged %v", got)
	}
}

func TestBandwidthTerm(t *testing.T) {
	l := Link{Latency: time.Millisecond, BandwidthBps: 1e6} // 1 MB/s
	got := l.TransferTime(1e6)
	want := time.Millisecond + time.Second
	if got != want {
		t.Fatalf("TransferTime = %v, want %v", got, want)
	}
}

func TestZeroPayload(t *testing.T) {
	l := Link{Latency: time.Millisecond, BandwidthBps: 1e6}
	if got := l.TransferTime(0); got != time.Millisecond {
		t.Fatalf("zero payload charged %v", got)
	}
	if l.RTT() != time.Millisecond {
		t.Fatalf("RTT = %v", l.RTT())
	}
}

func TestMonotoneInSize(t *testing.T) {
	l := RedisLink()
	if err := quick.Check(func(a, b uint32) bool {
		x, y := int(a%1e7), int(b%1e7)
		if x > y {
			x, y = y, x
		}
		return l.TransferTime(x) <= l.TransferTime(y)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultLinkOrdering(t *testing.T) {
	// The whole reproduction depends on this ordering: direct VM traffic
	// is fastest, Redis is fast, the object store is slow.
	const n = 100 << 10 // 100 KiB
	vm := VMPeerLink().TransferTime(n)
	redis := RedisLink().TransferTime(n)
	cos := COSLink().TransferTime(n)
	if !(vm < redis && redis < cos) {
		t.Fatalf("link ordering violated: vm=%v redis=%v cos=%v", vm, redis, cos)
	}
}

func TestString(t *testing.T) {
	if RedisLink().String() == "" {
		t.Fatal("empty String")
	}
}
