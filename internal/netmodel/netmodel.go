// Package netmodel models the network paths between simulated cloud
// components as latency + bandwidth links. Every request to a simulated
// service (key-value store, object store, message broker) is charged
//
//	latency + payloadBytes/bandwidth
//
// on the caller's virtual clock. The default link parameters below are
// calibrated to the environment of the paper (§6.1): all components in
// one region (us-east), VMs and functions with 1 Gbps NICs, Redis
// round-trips of a few hundred microseconds to low milliseconds, and
// object-storage first-byte latencies of tens of milliseconds — the
// "hundreds of milliseconds" indirect-communication penalty the paper
// attributes to passing state through storage (§2).
package netmodel

import (
	"fmt"
	"time"
)

// Link models a network path with fixed per-request latency and a
// bandwidth in bytes per second. The zero value is an infinitely fast
// link (zero latency, and zero bandwidth means "unconstrained"), which is
// convenient in unit tests.
type Link struct {
	// Latency is charged once per request regardless of size.
	Latency time.Duration
	// BandwidthBps is the sustained transfer rate in bytes/second.
	// Zero disables the bandwidth term.
	BandwidthBps float64
}

// TransferTime returns the virtual duration of moving n payload bytes
// across the link, including the per-request latency.
func (l Link) TransferTime(n int) time.Duration {
	d := l.Latency
	if l.BandwidthBps > 0 && n > 0 {
		d += time.Duration(float64(n) / l.BandwidthBps * float64(time.Second))
	}
	return d
}

// RTT returns the zero-payload request time.
func (l Link) RTT() time.Duration { return l.Latency }

// String renders the link parameters.
func (l Link) String() string {
	return fmt.Sprintf("link{lat=%v bw=%.0fMB/s}", l.Latency, l.BandwidthBps/1e6)
}

// Common capacity constants.
const (
	// GbpsNIC is 1 Gbit/s expressed in bytes/second, the NIC capacity
	// of every VM and function in the paper's setup.
	GbpsNIC = 125e6
)

// Default links for the paper's deployment. These are package-level
// constructors (not mutable globals) so call sites can tweak copies.

// RedisLink models a function-to-Redis request inside one region:
// sub-millisecond RTT, NIC-bound bandwidth. Redis itself sustains
// thousands of requests/s (§3.1), so the per-request latency dominates
// small transfers.
func RedisLink() Link {
	return Link{Latency: 700 * time.Microsecond, BandwidthBps: GbpsNIC}
}

// COSLink models object-storage access: high first-byte latency and
// lower effective per-stream throughput than the NIC line rate.
func COSLink() Link {
	return Link{Latency: 25 * time.Millisecond, BandwidthBps: 60e6}
}

// BrokerLink models publishing/consuming a small control message through
// the RabbitMQ VM.
func BrokerLink() Link {
	return Link{Latency: 1 * time.Millisecond, BandwidthBps: GbpsNIC}
}

// VMPeerLink models direct VM-to-VM traffic (Gloo all-reduce in the
// serverful baseline): low latency, NIC line rate.
func VMPeerLink() Link {
	return Link{Latency: 150 * time.Microsecond, BandwidthBps: GbpsNIC}
}
