package netmodel

import (
	"testing"
	"time"
)

func TestTransferTimeArithmetic(t *testing.T) {
	// The charge model every substrate span is built on: one request
	// latency plus payload / bandwidth. Exact on round numbers.
	l := Link{Latency: time.Millisecond, BandwidthBps: 1e6}
	cases := []struct {
		bytes int
		want  time.Duration
	}{
		{0, time.Millisecond},
		{1000, 2 * time.Millisecond},   // 1 ms + 1 ms
		{500, 1500 * time.Microsecond}, // 1 ms + 0.5 ms
		{10000, 11 * time.Millisecond}, // 1 ms + 10 ms
		{-5, time.Millisecond},         // negative payloads charge latency only
	}
	for _, c := range cases {
		if got := l.TransferTime(c.bytes); got != c.want {
			t.Errorf("TransferTime(%d) = %v, want %v", c.bytes, got, c.want)
		}
	}
	if l.RTT() != l.Latency {
		t.Errorf("RTT = %v, want latency %v", l.RTT(), l.Latency)
	}
}

func TestZeroBandwidthChargesLatencyOnly(t *testing.T) {
	// A link without a bandwidth figure (pure-latency model) must not
	// divide by zero and charges the request latency regardless of size.
	l := Link{Latency: 2 * time.Millisecond}
	if got := l.TransferTime(1 << 20); got != 2*time.Millisecond {
		t.Fatalf("TransferTime = %v", got)
	}
}

func TestSpikeMultiplierScalesNominalCharge(t *testing.T) {
	// The fault layer stretches an operation to factor × nominal; the
	// relation must hold exactly for the link's own arithmetic so traced
	// fault_x values are interpretable as charge multipliers.
	l := RedisLink()
	base := l.TransferTime(4096)
	const factor = 10
	spiked := base + time.Duration(float64(base)*(factor-1))
	if want := factor * base; spiked != want {
		t.Fatalf("spiked charge %v != %d × nominal %v", spiked, factor, base)
	}
}
