package dataset

import (
	"bytes"
	"testing"
	"time"

	"mlless/internal/netmodel"
	"mlless/internal/objstore"
	"mlless/internal/vclock"
)

// TestNormalizeChargesOneReadPerPass pins the billing of the streaming
// NormalizeMinMax: per batch, exactly one charged read for the extrema
// pass, one charged read plus one charged write for the rewrite pass —
// and nothing else. (The old implementation decoded every batch twice;
// the I/O bill is the contract that must not regress either way.)
func TestNormalizeChargesOneReadPerPass(t *testing.T) {
	link := netmodel.Link{Latency: 10 * time.Millisecond, BandwidthBps: 1e6}
	store := objstore.New(link)
	cfg := smallCriteo()
	cfg.Samples = 400
	ds := GenerateCriteo(cfg)
	var stageClk vclock.Clock
	n := Stage(ds, store, &stageClk, "criteo", 80, 5)

	rawSizes := make([]int, n)
	for i := 0; i < n; i++ {
		blob, ok := store.PeekView("criteo", BatchKey(i))
		if !ok {
			t.Fatalf("batch %d missing", i)
		}
		rawSizes[i] = len(blob)
	}

	var clk vclock.Clock
	if err := NormalizeMinMax(store, &clk, "criteo", n, cfg.NumericFeatures); err != nil {
		t.Fatal(err)
	}

	var want time.Duration
	for i := 0; i < n; i++ {
		// Pass 1 and pass 2 each read the raw batch once...
		want += 2 * link.TransferTime(rawSizes[i])
		// ...and pass 2 writes the scaled batch back (its size can shrink:
		// scaling a coordinate to exactly 0 drops it from the encoding).
		blob, _ := store.PeekView("criteo", BatchKey(i))
		want += link.TransferTime(len(blob))
	}
	if clk.Now() != want {
		t.Fatalf("normalize charged %v, want %v (one read per pass per batch)", clk.Now(), want)
	}
}

// TestNormalizeMatchesInPlace pins the equivalence the shard staging
// path depends on: normalizing in memory then staging produces
// byte-identical batches to staging raw then running the staged
// min-max passes.
func TestNormalizeMatchesInPlace(t *testing.T) {
	cfg := smallCriteo()
	cfg.Samples = 400
	const batchSize, seed = 80, 5

	staged := objstore.New(netmodel.Link{})
	var clk vclock.Clock
	n := Stage(GenerateCriteo(cfg), staged, &clk, "a", batchSize, seed)
	if err := NormalizeMinMax(staged, &clk, "a", n, cfg.NumericFeatures); err != nil {
		t.Fatal(err)
	}

	ds := GenerateCriteo(cfg)
	NormalizeInPlace(ds, cfg.NumericFeatures)
	inplace := objstore.New(netmodel.Link{})
	if m := Stage(ds, inplace, &clk, "b", batchSize, seed); m != n {
		t.Fatalf("restage produced %d batches, want %d", m, n)
	}

	for i := 0; i < n; i++ {
		a, _ := staged.PeekView("a", BatchKey(i))
		b, _ := inplace.PeekView("b", BatchKey(i))
		if !bytes.Equal(a, b) {
			t.Fatalf("batch %d bytes differ between staged and in-place normalization", i)
		}
	}
}
