package dataset

import (
	"bytes"
	"errors"
	"testing"

	"mlless/internal/netmodel"
	"mlless/internal/objstore"
	"mlless/internal/shard"
	"mlless/internal/vclock"
)

// memSink retains shard blobs by index.
type memSink struct{ blobs map[int][]byte }

func newMemSink() *memSink { return &memSink{blobs: make(map[int][]byte)} }

func (m *memSink) WriteShard(i int, blob []byte) error {
	m.blobs[i] = append([]byte(nil), blob...)
	return nil
}

// flatten parses the sink's shards in order and returns every sample
// as a decoded Sample.
func (m *memSink) flatten(t *testing.T) []Sample {
	t.Helper()
	var out []Sample
	for i := 0; i < len(m.blobs); i++ {
		blob, ok := m.blobs[i]
		if !ok {
			t.Fatalf("shard %d missing", i)
		}
		sh, err := shard.Parse(blob)
		if err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
		for b := 0; b < sh.NumBatches(); b++ {
			bv := sh.Batch(b)
			for k := 0; k < bv.Len(); k++ {
				if bv.IsRating() {
					out = append(out, Sample{User: bv.User(k), Item: bv.Item(k), Label: bv.Rating(k)})
				} else {
					out = append(out, Sample{Features: bv.Features(k), Label: bv.Label(k), User: -1, Item: -1})
				}
			}
		}
	}
	return out
}

// TestStreamCriteoMatchesGenerate pins the streaming generator to the
// in-memory one: same seed, same samples, in generation order.
func TestStreamCriteoMatchesGenerate(t *testing.T) {
	cfg := smallCriteo()
	cfg.Samples = 1500
	sink := newMemSink()
	stats, err := StreamCriteo(cfg, StreamConfig{BatchSize: 100, BatchesPerShard: 3, Parallelism: 4}, sink)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Samples != cfg.Samples || stats.Batches != 15 || stats.Shards != 5 {
		t.Fatalf("stats = %+v", stats)
	}
	got := sink.flatten(t)
	want := GenerateCriteo(cfg).Samples
	if len(got) != len(want) {
		t.Fatalf("streamed %d samples, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Label != want[i].Label {
			t.Fatalf("sample %d label %v, want %v", i, got[i].Label, want[i].Label)
		}
		if !got[i].Features.Equal(want[i].Features) {
			t.Fatalf("sample %d features differ", i)
		}
	}
}

// TestStreamMovieLensMatchesGenerate does the same for the rating
// generator, including the bitwise RatingMean.
func TestStreamMovieLensMatchesGenerate(t *testing.T) {
	cfg := smallMovieLens()
	sink := newMemSink()
	stats, err := StreamMovieLens(cfg, StreamConfig{BatchSize: 128, BatchesPerShard: 4, Parallelism: 3}, sink)
	if err != nil {
		t.Fatal(err)
	}
	ds := GenerateMovieLens(cfg)
	if stats.RatingMean != ds.RatingMean {
		t.Fatalf("RatingMean %v, want %v (bitwise)", stats.RatingMean, ds.RatingMean)
	}
	got := sink.flatten(t)
	if len(got) != ds.Len() {
		t.Fatalf("streamed %d samples, want %d", len(got), ds.Len())
	}
	for i, w := range ds.Samples {
		g := got[i]
		if g.User != w.User || g.Item != w.Item || g.Label != w.Label {
			t.Fatalf("sample %d = (%d,%d,%v), want (%d,%d,%v)", i, g.User, g.Item, g.Label, w.User, w.Item, w.Label)
		}
	}
}

// TestStreamParallelismByteIdentical pins the determinism contract:
// the emitted shard bytes do not depend on the worker count.
func TestStreamParallelismByteIdentical(t *testing.T) {
	cfg := smallCriteo()
	cfg.Samples = 1200
	sc := StreamConfig{BatchSize: 75, BatchesPerShard: 2}
	one, eight := newMemSink(), newMemSink()
	sc.Parallelism = 1
	s1, err := StreamCriteo(cfg, sc, one)
	if err != nil {
		t.Fatal(err)
	}
	sc.Parallelism = 8
	s8, err := StreamCriteo(cfg, sc, eight)
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s8 {
		t.Fatalf("stats differ: %+v vs %+v", s1, s8)
	}
	if len(one.blobs) != len(eight.blobs) {
		t.Fatalf("shard counts differ: %d vs %d", len(one.blobs), len(eight.blobs))
	}
	for i := range one.blobs {
		if !bytes.Equal(one.blobs[i], eight.blobs[i]) {
			t.Fatalf("shard %d bytes differ between parallelism 1 and 8", i)
		}
	}
}

// TestStreamToObjstore exercises the ObjstoreSink + manifest path: a
// streamed bucket opens through OpenShardCache and serves every batch.
func TestStreamToObjstore(t *testing.T) {
	cfg := smallMovieLens()
	store := objstore.New(netmodel.Link{})
	var clk vclock.Clock
	sc := StreamConfig{BatchSize: 200, BatchesPerShard: 4, Parallelism: 2}
	stats, err := StreamMovieLens(cfg, sc, ObjstoreSink{Store: store, Clk: &clk, Bucket: "ml"})
	if err != nil {
		t.Fatal(err)
	}
	WriteShardManifest(store, &clk, "ml", stats.Batches, sc.BatchSize, sc.BatchesPerShard)
	cache, err := OpenShardCache(store, &clk, "ml")
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for i := 0; i < cache.NumBatches(); i++ {
		bv, err := cache.Fetch(&clk, i)
		if err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
		total += bv.Len()
	}
	if total != cfg.Ratings {
		t.Fatalf("staged %d samples, want %d", total, cfg.Ratings)
	}
}

type failSink struct{ after int }

func (f *failSink) WriteShard(i int, _ []byte) error {
	if i >= f.after {
		return errors.New("disk full")
	}
	return nil
}

func TestStreamSinkErrorPropagates(t *testing.T) {
	cfg := smallCriteo()
	cfg.Samples = 1000
	_, err := StreamCriteo(cfg, StreamConfig{BatchSize: 50, BatchesPerShard: 2, Parallelism: 4}, &failSink{after: 1})
	if err == nil {
		t.Fatal("sink failure not propagated")
	}
}
