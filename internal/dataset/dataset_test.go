package dataset

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"mlless/internal/netmodel"
	"mlless/internal/objstore"
	"mlless/internal/sparse"
	"mlless/internal/vclock"
	"mlless/internal/xrand"
)

func smallCriteo() CriteoConfig {
	cfg := DefaultCriteoConfig()
	cfg.Samples = 2000
	return cfg
}

func smallMovieLens() MovieLensConfig {
	return MovieLensConfig{Users: 100, Items: 500, Ratings: 5000, Rank: 8, NoiseStd: 0.7, Seed: 4}
}

func TestSplit(t *testing.T) {
	ds := &Dataset{Samples: make([]Sample, 10)}
	batches := ds.Split(3)
	if len(batches) != 4 {
		t.Fatalf("Split(3) -> %d batches", len(batches))
	}
	if len(batches[3]) != 1 {
		t.Fatalf("last batch len %d", len(batches[3]))
	}
	whole := ds.Split(0)
	if len(whole) != 1 || len(whole[0]) != 10 {
		t.Fatal("Split(0) must return one full batch")
	}
}

func TestEncodeDecodeRatingBatch(t *testing.T) {
	batch := []Sample{
		{User: 1, Item: 2, Label: 4.5},
		{User: 99, Item: 100000, Label: 1},
	}
	got, err := DecodeBatch(EncodeBatch(batch))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].User != 1 || got[1].Item != 100000 || got[0].Label != 4.5 {
		t.Fatalf("round trip = %+v", got)
	}
	if !got[0].IsRating() {
		t.Fatal("decoded rating sample lost its kind")
	}
}

func TestEncodeDecodeFeatureBatch(t *testing.T) {
	v := sparse.New()
	v.Set(7, 1.25)
	v.Set(100012, -3)
	batch := []Sample{{Features: v, Label: 1, User: -1, Item: -1}}
	got, err := DecodeBatch(EncodeBatch(batch))
	if err != nil {
		t.Fatal(err)
	}
	if got[0].IsRating() {
		t.Fatal("feature sample decoded as rating")
	}
	if got[0].Label != 1 || got[0].Features.Get(7) != 1.25 || got[0].Features.Get(100012) != -3 {
		t.Fatalf("round trip = %+v", got[0])
	}
}

func TestEncodeDecodeMixedBatchProperty(t *testing.T) {
	rng := xrand.New(5)
	if err := quick.Check(func(seed uint64) bool {
		r := xrand.New(seed ^ rng.Uint64())
		n := r.Intn(20)
		batch := make([]Sample, n)
		for i := range batch {
			if r.Bernoulli(0.5) {
				batch[i] = Sample{User: r.Intn(1000), Item: r.Intn(1000), Label: r.Float64() * 5}
			} else {
				v := sparse.New()
				for j := 0; j < r.Intn(10); j++ {
					v.Set(uint32(r.Intn(1000)), r.NormFloat64())
				}
				batch[i] = Sample{Features: v, Label: float64(r.Intn(2)), User: -1, Item: -1}
			}
		}
		got, err := DecodeBatch(EncodeBatch(batch))
		if err != nil || len(got) != n {
			return false
		}
		for i := range batch {
			if got[i].Label != batch[i].Label || got[i].IsRating() != batch[i].IsRating() {
				return false
			}
			if batch[i].IsRating() {
				if got[i].User != batch[i].User || got[i].Item != batch[i].Item {
					return false
				}
			} else if !got[i].Features.Equal(batch[i].Features) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeBatchErrors(t *testing.T) {
	if _, err := DecodeBatch(nil); err == nil {
		t.Fatal("nil buffer accepted")
	}
	batch := []Sample{{User: 1, Item: 2, Label: 3}}
	buf := EncodeBatch(batch)
	if _, err := DecodeBatch(buf[:len(buf)-1]); err == nil {
		t.Fatal("truncated buffer accepted")
	}
	if _, err := DecodeBatch(append(buf, 0)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
	bad := append([]byte(nil), buf...)
	bad[4] = 9 // unknown kind
	if _, err := DecodeBatch(bad); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestGenerateCriteoShape(t *testing.T) {
	cfg := smallCriteo()
	ds := GenerateCriteo(cfg)
	if ds.Len() != cfg.Samples {
		t.Fatalf("Len = %d", ds.Len())
	}
	if ds.FeatureDim != cfg.HashDim+cfg.NumericFeatures {
		t.Fatalf("FeatureDim = %d", ds.FeatureDim)
	}
	ones := 0
	for _, s := range ds.Samples {
		if s.IsRating() {
			t.Fatal("criteo generated rating samples")
		}
		nnz := s.Features.Len()
		// 13 numeric plus at most 26 categorical (hash collisions can
		// merge a few).
		if nnz < cfg.NumericFeatures+cfg.CategoricalFeatures/2 || nnz > cfg.NumericFeatures+cfg.CategoricalFeatures {
			t.Fatalf("sample nnz = %d", nnz)
		}
		if s.Label == 1 {
			ones++
		} else if s.Label != 0 {
			t.Fatalf("label = %v", s.Label)
		}
	}
	frac := float64(ones) / float64(ds.Len())
	if frac < 0.1 || frac > 0.9 {
		t.Fatalf("degenerate class balance: %v", frac)
	}
}

func TestGenerateCriteoDeterministic(t *testing.T) {
	a := GenerateCriteo(smallCriteo())
	b := GenerateCriteo(smallCriteo())
	for i := range a.Samples {
		if a.Samples[i].Label != b.Samples[i].Label || !a.Samples[i].Features.Equal(b.Samples[i].Features) {
			t.Fatalf("generation not deterministic at sample %d", i)
		}
	}
}

func TestGenerateMovieLensShape(t *testing.T) {
	cfg := smallMovieLens()
	ds := GenerateMovieLens(cfg)
	if ds.Len() != cfg.Ratings || ds.NumUsers != cfg.Users || ds.NumItems != cfg.Items {
		t.Fatalf("shape: %d ratings, %d users, %d items", ds.Len(), ds.NumUsers, ds.NumItems)
	}
	counts := make([]int, cfg.Items)
	for _, s := range ds.Samples {
		if !s.IsRating() {
			t.Fatal("movielens generated feature samples")
		}
		if s.Label < 1 || s.Label > 5 {
			t.Fatalf("rating %v outside [1,5]", s.Label)
		}
		if s.User < 0 || s.User >= cfg.Users || s.Item < 0 || s.Item >= cfg.Items {
			t.Fatalf("indices out of range: %+v", s)
		}
		counts[s.Item]++
	}
	if ds.RatingMean < 2.5 || ds.RatingMean > 4.5 {
		t.Fatalf("RatingMean = %v", ds.RatingMean)
	}
	// Item popularity must be heavy-tailed (Zipf).
	if counts[0] < counts[cfg.Items/2]*3 {
		t.Fatalf("popularity not skewed: head=%d mid=%d", counts[0], counts[cfg.Items/2])
	}
}

func TestStageAndFetch(t *testing.T) {
	store := objstore.New(netmodel.Link{})
	var clk vclock.Clock
	ds := GenerateMovieLens(smallMovieLens())
	n := Stage(ds, store, &clk, "ml", 512, 7)
	want := (ds.Len() + 511) / 512
	if n != want {
		t.Fatalf("Stage = %d batches, want %d", n, want)
	}
	total := 0
	seen := make(map[[2]int]int)
	for i := 0; i < n; i++ {
		batch, err := FetchBatch(store, &clk, "ml", i)
		if err != nil {
			t.Fatal(err)
		}
		total += len(batch)
		for _, s := range batch {
			seen[[2]int{s.User, s.Item}]++
		}
	}
	if total != ds.Len() {
		t.Fatalf("staged %d samples, dataset has %d", total, ds.Len())
	}
	// Shuffle must preserve the multiset of samples.
	orig := make(map[[2]int]int)
	for _, s := range ds.Samples {
		orig[[2]int{s.User, s.Item}]++
	}
	for k, v := range orig {
		if seen[k] != v {
			t.Fatalf("sample multiset changed at %v", k)
		}
	}
}

func TestFetchBatchMissing(t *testing.T) {
	store := objstore.New(netmodel.Link{})
	var clk vclock.Clock
	if _, err := FetchBatch(store, &clk, "none", 0); err == nil {
		t.Fatal("missing batch fetched")
	}
}

func TestPlanDistinctBatchesPerStep(t *testing.T) {
	p := NewPlan(100, 8)
	for step := 0; step < 30; step++ {
		seen := make(map[int]bool)
		for w := 0; w < 8; w++ {
			b := p.BatchFor(w, step)
			if b < 0 || b >= 100 {
				t.Fatalf("batch index %d out of range", b)
			}
			if seen[b] {
				t.Fatalf("step %d: workers share batch %d", step, b)
			}
			seen[b] = true
		}
	}
}

func TestPlanZeroBatches(t *testing.T) {
	p := NewPlan(0, 4)
	if p.BatchFor(3, 9) != 0 {
		t.Fatal("empty plan must return 0")
	}
}

func TestNormalizeMinMax(t *testing.T) {
	cfg := smallCriteo()
	cfg.Samples = 500
	ds := GenerateCriteo(cfg)
	store := objstore.New(netmodel.Link{})
	var clk vclock.Clock
	n := Stage(ds, store, &clk, "criteo", 100, 9)
	if err := NormalizeMinMax(store, &clk, "criteo", n, cfg.NumericFeatures); err != nil {
		t.Fatal(err)
	}
	sawLow, sawHigh := false, false
	for i := 0; i < n; i++ {
		batch, err := FetchBatch(store, &clk, "criteo", i)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range batch {
			for f := 0; f < cfg.NumericFeatures; f++ {
				v := s.Features.Get(uint32(f))
				if v < 0 || v > 1 {
					t.Fatalf("normalized feature %d = %v outside [0,1]", f, v)
				}
				if v < 0.01 {
					sawLow = true
				}
				if v > 0.5 {
					sawHigh = true
				}
			}
		}
	}
	if !sawLow || !sawHigh {
		t.Fatalf("normalization did not spread values: low=%v high=%v", sawLow, sawHigh)
	}
}

func TestNormalizeMinMaxNoNumeric(t *testing.T) {
	store := objstore.New(netmodel.Link{})
	var clk vclock.Clock
	if err := NormalizeMinMax(store, &clk, "none", 0, 0); err != nil {
		t.Fatal(err)
	}
}

func TestNormalizeRejectsRatingBatches(t *testing.T) {
	store := objstore.New(netmodel.Link{})
	var clk vclock.Clock
	ds := GenerateMovieLens(smallMovieLens())
	n := Stage(ds, store, &clk, "ml", 100, 1)
	if err := NormalizeMinMax(store, &clk, "ml", n, 13); err == nil {
		t.Fatal("rating batches accepted by feature normalization")
	}
}

func TestCriteoAttainableLoss(t *testing.T) {
	// The ground-truth model itself must achieve BCE well under the
	// paper's 0.58 convergence threshold, otherwise the Fig 4/5/6
	// experiments could never converge. We verify by scoring with a
	// Bayes-ish proxy: predicted probability from sample frequency of
	// labels conditioned on the ground-truth construction is unavailable,
	// so instead check label entropy is meaningfully below 1 bit by
	// training-free margin: fraction of agreement between label and
	// majority class must be < 0.95 (non-degenerate) and the dataset must
	// be separable enough that duplicated feature vectors are rare.
	ds := GenerateCriteo(smallCriteo())
	ones := 0
	for _, s := range ds.Samples {
		if s.Label == 1 {
			ones++
		}
	}
	frac := float64(ones) / float64(ds.Len())
	base := math.Min(frac, 1-frac)
	// Base-rate BCE of always predicting the majority prior.
	p := 1 - base
	bce := -(p*math.Log(p) + base*math.Log(base))
	if bce < 0.3 {
		t.Fatalf("dataset nearly constant-label (prior BCE %v); threshold experiments would be vacuous", bce)
	}
}

func TestCacheChargesEveryFetch(t *testing.T) {
	link := netmodel.Link{Latency: 10 * time.Millisecond, BandwidthBps: 1e6}
	store := objstore.New(link)
	var stage vclock.Clock
	ds := GenerateMovieLens(smallMovieLens())
	n := Stage(ds, store, &stage, "ml", 1000, 5)
	if n < 2 {
		t.Fatal("need at least 2 batches")
	}
	cache := NewCache(store, "ml")
	var clk vclock.Clock
	if _, err := cache.Fetch(&clk, 0); err != nil {
		t.Fatal(err)
	}
	first := clk.Now()
	if _, err := cache.Fetch(&clk, 0); err != nil {
		t.Fatal(err)
	}
	second := clk.Now() - first
	// The cached fetch must charge the same transfer time: workers
	// re-download each iteration even though the decode is cached.
	if second != first {
		t.Fatalf("cached fetch charged %v, first charged %v", second, first)
	}
}

func TestCacheReturnsSameDecode(t *testing.T) {
	store := objstore.New(netmodel.Link{})
	var clk vclock.Clock
	ds := GenerateMovieLens(smallMovieLens())
	Stage(ds, store, &clk, "ml", 1000, 5)
	cache := NewCache(store, "ml")
	a, err := cache.Fetch(&clk, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := cache.Fetch(&clk, 1)
	if err != nil {
		t.Fatal(err)
	}
	if &a[0] != &b[0] {
		t.Fatal("cache re-decoded the batch")
	}
}

func TestCacheMissingBatch(t *testing.T) {
	cache := NewCache(objstore.New(netmodel.Link{}), "none")
	var clk vclock.Clock
	if _, err := cache.Fetch(&clk, 3); err == nil {
		t.Fatal("missing batch fetched")
	}
}
