package dataset

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"sync"

	"mlless/internal/objstore"
	"mlless/internal/shard"
	"mlless/internal/vclock"
	"mlless/internal/xrand"
)

// StreamConfig tunes the streaming shard writers.
type StreamConfig struct {
	// BatchSize is the staged mini-batch size (default 1000).
	BatchSize int
	// BatchesPerShard is how many batches one shard blob packs (default
	// DefaultBatchesPerShard). A shard's worth of samples is also the
	// pipeline's chunk: peak memory is O(Parallelism × chunk), never
	// O(dataset).
	BatchesPerShard int
	// Parallelism is the encoder worker count (default GOMAXPROCS). The
	// emitted shard bytes are identical for every value: the random
	// draws happen on one sequential scanner, workers only hash, score
	// and serialize fully-determined chunks.
	Parallelism int
}

func (c StreamConfig) withDefaults() StreamConfig {
	if c.BatchSize <= 0 {
		c.BatchSize = 1000
	}
	if c.BatchesPerShard <= 0 {
		c.BatchesPerShard = DefaultBatchesPerShard
	}
	if c.Parallelism <= 0 {
		c.Parallelism = runtime.GOMAXPROCS(0)
	}
	return c
}

// StreamStats summarizes one streaming generation run.
type StreamStats struct {
	Samples int
	Batches int
	Shards  int
	// Bytes is the total size of the emitted shard blobs.
	Bytes int64
	// RatingMean is the global mean rating (MovieLens streams only).
	RatingMean float64
}

// ShardSink consumes finished shard blobs. WriteShard is called
// sequentially in shard-index order; the blob must not be retained
// (the pipeline reuses nothing today, but the contract keeps sinks
// copy-or-write).
type ShardSink interface {
	WriteShard(i int, blob []byte) error
}

// ObjstoreSink stages shard blobs into a bucket, charging clk — the
// streaming counterpart of StageShards' uploads. Callers finish the
// bucket with WriteShardManifest.
type ObjstoreSink struct {
	Store  *objstore.Store
	Clk    *vclock.Clock
	Bucket string
}

// WriteShard implements ShardSink.
func (s ObjstoreSink) WriteShard(i int, blob []byte) error {
	s.Store.Put(s.Clk, s.Bucket, ShardKey(i), blob)
	return nil
}

// WriteShardManifest stages the manifest describing a bucket's shard
// geometry; workers open the bucket through OpenShardCache.
func WriteShardManifest(store *objstore.Store, clk *vclock.Clock, bucket string, numBatches, batchSize, batchesPerShard int) {
	store.Put(clk, bucket, ShardManifestKey, EncodeShardManifest(numBatches, batchSize, batchesPerShard))
}

// FileSink writes shard blobs as shard-%08d.shard files under Dir —
// the on-disk tier mlless-datagen emits and shard.OpenFile mmaps back.
type FileSink struct{ Dir string }

// WriteShard implements ShardSink.
func (s FileSink) WriteShard(i int, blob []byte) error {
	return os.WriteFile(filepath.Join(s.Dir, fmt.Sprintf("shard-%08d.shard", i)), blob, 0o644)
}

// CountSink discards blobs and tallies them: benchmark plumbing for
// generation runs too large to retain.
type CountSink struct {
	Shards int
	Bytes  int64
}

// WriteShard implements ShardSink.
func (c *CountSink) WriteShard(_ int, blob []byte) error {
	c.Shards++
	c.Bytes += int64(len(blob))
	return nil
}

// StreamCriteo generates cfg.Samples Criteo-like examples directly
// into columnar shards without ever materializing the dataset: a
// sequential scanner makes exactly the random draws GenerateCriteo
// makes per sample (so the same seed yields the same samples), and a
// worker pool turns each shard-sized chunk of draws into a shard blob
// (hashing trick, ground-truth score, label, columnar encode — all
// draw-free). Shards carry samples in generation order — the draws are
// i.i.d., so no materialized shuffle is needed — and numeric features
// stay raw, like GenerateCriteo's output before NormalizeMinMax.
func StreamCriteo(cfg CriteoConfig, sc StreamConfig, sink ShardSink) (StreamStats, error) {
	sc = sc.withDefaults()
	rng := xrand.New(cfg.Seed)
	dim := cfg.HashDim + cfg.NumericFeatures
	truth := make([]float64, dim+1)
	for i := range truth {
		truth[i] = rng.NormFloat64() * cfg.Separation
	}
	zipf := xrand.NewZipf(rng, cfg.Cardinality, 1.1)

	perShard := sc.BatchSize * sc.BatchesPerShard
	numShards := (cfg.Samples + perShard - 1) / perShard
	remaining := cfg.Samples
	scan := func(int) interface{} {
		n := perShard
		if n > remaining {
			n = remaining
		}
		remaining -= n
		c := &criteoChunk{
			n:       n,
			normals: make([]float64, n*cfg.NumericFeatures),
			cats:    make([]int, n*cfg.CategoricalFeatures),
			u:       make([]float64, n),
		}
		// Per sample, in GenerateCriteo's exact draw order: the numeric
		// normals, the categorical Zipf ranks, the label uniform.
		for k := 0; k < n; k++ {
			for f := 0; f < cfg.NumericFeatures; f++ {
				c.normals[k*cfg.NumericFeatures+f] = rng.NormFloat64()
			}
			for f := 0; f < cfg.CategoricalFeatures; f++ {
				c.cats[k*cfg.CategoricalFeatures+f] = zipf.Next()
			}
			c.u[k] = rng.Float64()
		}
		return c
	}
	encode := func(data interface{}) []byte {
		return encodeCriteoChunk(cfg, truth, data.(*criteoChunk), sc.BatchSize)
	}
	bytes, err := runShardPipeline(numShards, sc.Parallelism, scan, encode, sink)
	if err != nil {
		return StreamStats{}, fmt.Errorf("dataset: stream criteo: %w", err)
	}
	return StreamStats{
		Samples: cfg.Samples,
		Batches: (cfg.Samples + sc.BatchSize - 1) / sc.BatchSize,
		Shards:  numShards,
		Bytes:   bytes,
	}, nil
}

type criteoChunk struct {
	n       int
	normals []float64
	cats    []int
	u       []float64
}

// encodeCriteoChunk turns one chunk of raw draws into a shard blob.
// Everything here is a pure function of the draws, which is what makes
// the output independent of worker scheduling.
func encodeCriteoChunk(cfg CriteoConfig, truth []float64, c *criteoChunk, batchSize int) []byte {
	numeric, cat := cfg.NumericFeatures, cfg.CategoricalFeatures
	dim := cfg.HashDim + numeric
	b := shard.NewBuilder()
	idxBuf := make([]uint32, numeric+cat)
	valBuf := make([]float64, numeric+cat)
	hashed := make([]uint32, cat)
	for k := 0; k < c.n; k++ {
		for f := 0; f < numeric; f++ {
			idxBuf[f] = uint32(f)
			valBuf[f] = math.Exp(c.normals[k*numeric+f])
		}
		for f := 0; f < cat; f++ {
			hashed[f] = uint32(numeric) + hashCat(f, c.cats[k*cat+f], cfg.HashDim)
		}
		// Sort the hashed coordinates ascending (insertion sort: ≤26
		// elements) and drop duplicates — colliding fields all set the
		// same coordinate to 1, exactly like Set on a sparse vector.
		for i := 1; i < cat; i++ {
			h := hashed[i]
			j := i - 1
			for j >= 0 && hashed[j] > h {
				hashed[j+1] = hashed[j]
				j--
			}
			hashed[j+1] = h
		}
		m := numeric
		for i := 0; i < cat; i++ {
			if i > 0 && hashed[i] == hashed[i-1] {
				continue
			}
			idxBuf[m] = hashed[i]
			valBuf[m] = 1
			m++
		}
		// Ground-truth score, accumulated in ascending coordinate order —
		// the numeric block then the sorted hashed block — matching
		// GenerateCriteo's ForEachSorted walk bit for bit.
		score := truth[dim]
		for f := 0; f < numeric; f++ {
			score += truth[f] * math.Min(valBuf[f]/10, 1)
		}
		for i := numeric; i < m; i++ {
			score += truth[idxBuf[i]]
		}
		label := 0.0
		if c.u[k] < 1/(1+math.Exp(-score)) {
			label = 1
		}
		b.AddFeaturePairs(label, idxBuf[:m], valBuf[:m])
		if (k+1)%batchSize == 0 {
			b.EndBatch()
		}
	}
	if c.n%batchSize != 0 {
		b.EndBatch()
	}
	return b.Finish()
}

// StreamMovieLens generates cfg.Ratings MovieLens-like samples into
// columnar shards. The factor matrices are O(users+items) — the only
// state held — and the scanner computes full (user, item, rating)
// triples (the rating depends on the draws, and the running rating sum
// must accumulate in generation order to reproduce GenerateMovieLens's
// RatingMean bit for bit); workers only serialize.
func StreamMovieLens(cfg MovieLensConfig, sc StreamConfig, sink ShardSink) (StreamStats, error) {
	sc = sc.withDefaults()
	rng := xrand.New(cfg.Seed)
	if cfg.SignalStd <= 0 {
		cfg.SignalStd = 0.8
	}
	scale := math.Sqrt(cfg.SignalStd / math.Sqrt(float64(cfg.Rank)))
	userF := make([][]float64, cfg.Users)
	for u := range userF {
		f := make([]float64, cfg.Rank)
		for k := range f {
			f[k] = rng.NormFloat64() * scale
		}
		userF[u] = f
	}
	itemF := make([][]float64, cfg.Items)
	for i := range itemF {
		f := make([]float64, cfg.Rank)
		for k := range f {
			f[k] = rng.NormFloat64() * scale
		}
		itemF[i] = f
	}
	const mean = 3.5
	itemPop := xrand.NewZipf(rng, cfg.Items, 1.05)

	perShard := sc.BatchSize * sc.BatchesPerShard
	numShards := (cfg.Ratings + perShard - 1) / perShard
	remaining := cfg.Ratings
	sum := 0.0
	scan := func(int) interface{} {
		n := perShard
		if n > remaining {
			n = remaining
		}
		remaining -= n
		c := &mlChunk{
			n:     n,
			users: make([]int, n),
			items: make([]int, n),
			r:     make([]float64, n),
		}
		for k := 0; k < n; k++ {
			u := rng.Intn(cfg.Users)
			i := itemPop.Next()
			dot := 0.0
			for d := 0; d < cfg.Rank; d++ {
				dot += userF[u][d] * itemF[i][d]
			}
			r := mean + dot + rng.NormFloat64()*cfg.NoiseStd
			if r < 1 {
				r = 1
			} else if r > 5 {
				r = 5
			}
			c.users[k], c.items[k], c.r[k] = u, i, r
			sum += r
		}
		return c
	}
	encode := func(data interface{}) []byte {
		c := data.(*mlChunk)
		b := shard.NewBuilder()
		for k := 0; k < c.n; k++ {
			b.AddRating(c.users[k], c.items[k], c.r[k])
			if (k+1)%sc.BatchSize == 0 {
				b.EndBatch()
			}
		}
		if c.n%sc.BatchSize != 0 {
			b.EndBatch()
		}
		return b.Finish()
	}
	bytes, err := runShardPipeline(numShards, sc.Parallelism, scan, encode, sink)
	if err != nil {
		return StreamStats{}, fmt.Errorf("dataset: stream movielens: %w", err)
	}
	return StreamStats{
		Samples:    cfg.Ratings,
		Batches:    (cfg.Ratings + sc.BatchSize - 1) / sc.BatchSize,
		Shards:     numShards,
		Bytes:      bytes,
		RatingMean: sum / float64(cfg.Ratings),
	}, nil
}

type mlChunk struct {
	n     int
	users []int
	items []int
	r     []float64
}

// runShardPipeline is the scan → encode → write harness shared by the
// streaming generators: a strictly sequential scanner (it owns the
// RNG), par encode workers, and an in-order collector feeding the
// sink. In-flight work is bounded by the worker count, so memory stays
// O(par × chunk) regardless of dataset size.
func runShardPipeline(numShards, par int, scan func(idx int) interface{}, encode func(data interface{}) []byte, sink ShardSink) (int64, error) {
	type chunkJob struct {
		idx  int
		data interface{}
	}
	type chunkResult struct {
		idx  int
		blob []byte
	}
	jobs := make(chan chunkJob)
	results := make(chan chunkResult, par)
	var wg sync.WaitGroup
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				results <- chunkResult{j.idx, encode(j.data)}
			}
		}()
	}

	var bytes int64
	var sinkErr error
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		pending := make(map[int][]byte)
		next := 0
		for r := range results {
			pending[r.idx] = r.blob
			for {
				blob, ok := pending[next]
				if !ok {
					break
				}
				delete(pending, next)
				if sinkErr == nil {
					if err := sink.WriteShard(next, blob); err != nil {
						sinkErr = err
						close(stop)
					} else {
						bytes += int64(len(blob))
					}
				}
				next++
			}
		}
	}()

	for idx := 0; idx < numShards; idx++ {
		j := chunkJob{idx, scan(idx)}
		select {
		case jobs <- j:
		case <-stop:
			idx = numShards // abort: the sink already failed
		}
	}
	close(jobs)
	wg.Wait()
	close(results)
	<-done
	return bytes, sinkErr
}
