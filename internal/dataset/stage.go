package dataset

import (
	"fmt"
	"sync"

	"mlless/internal/objstore"
	"mlless/internal/vclock"
	"mlless/internal/xrand"
)

// BatchKey names staged mini-batch object i. Zero-padded so List order
// equals numeric order.
func BatchKey(i int) string { return fmt.Sprintf("batch/%08d", i) }

// Stage shuffles the dataset deterministically (seed) into mini-batches
// of size batchSize and uploads them to bucket in the object store,
// charging the transfers to clk. It returns the number of staged batches.
// This is the role PyWren-IBM plays in §3.2: putting the dataset into COS
// in "the appropriate format".
func Stage(ds *Dataset, store *objstore.Store, clk *vclock.Clock, bucket string, batchSize int, seed uint64) int {
	rng := xrand.New(seed)
	order := rng.Perm(ds.Len())
	shuffled := make([]Sample, ds.Len())
	for i, j := range order {
		shuffled[i] = ds.Samples[j]
	}
	tmp := Dataset{Samples: shuffled}
	batches := tmp.Split(batchSize)
	for i, b := range batches {
		store.Put(clk, bucket, BatchKey(i), EncodeBatch(b))
	}
	return len(batches)
}

// FetchBatch downloads and decodes staged mini-batch i from bucket.
func FetchBatch(store *objstore.Store, clk *vclock.Clock, bucket string, i int) ([]Sample, error) {
	buf, err := store.Get(clk, bucket, BatchKey(i))
	if err != nil {
		return nil, fmt.Errorf("dataset: fetch batch %d: %w", i, err)
	}
	batch, err := DecodeBatch(buf)
	if err != nil {
		return nil, fmt.Errorf("dataset: fetch batch %d: %w", i, err)
	}
	return batch, nil
}

// Cache is a decoded-mini-batch cache over one staged bucket. Every
// Fetch still performs (and charges) the full object-store transfer —
// workers re-download batches each iteration exactly as in the paper —
// but the CPU-side decode, which is simulator overhead rather than
// modeled time, happens once per batch. The returned slices are shared:
// callers must treat batches as read-only.
//
// Cache is safe for concurrent use.
type Cache struct {
	store  *objstore.Store
	bucket string

	mu sync.Mutex
	m  map[int][]Sample
}

// NewCache returns a cache over the staged batches of bucket.
func NewCache(store *objstore.Store, bucket string) *Cache {
	return &Cache{store: store, bucket: bucket, m: make(map[int][]Sample)}
}

// Fetch charges the transfer of batch i to clk and returns its decoded
// (possibly cached) samples.
func (c *Cache) Fetch(clk *vclock.Clock, i int) ([]Sample, error) {
	buf, err := c.store.Get(clk, c.bucket, BatchKey(i))
	if err != nil {
		return nil, fmt.Errorf("dataset: fetch batch %d: %w", i, err)
	}
	c.mu.Lock()
	batch, ok := c.m[i]
	c.mu.Unlock()
	if ok {
		return batch, nil
	}
	batch, err = DecodeBatch(buf)
	if err != nil {
		return nil, fmt.Errorf("dataset: fetch batch %d: %w", i, err)
	}
	c.mu.Lock()
	c.m[i] = batch
	c.mu.Unlock()
	return batch, nil
}

// Plan deterministically assigns staged batch indices to (worker, step)
// pairs. Each worker walks its own arithmetic progression through the
// shuffled batches, wrapping around — an epoch-free infinite stream, as
// serverless workers fetch "a mini-batch from IBM COS" each iteration
// (§3.2).
type Plan struct {
	numBatches int
	numWorkers int
}

// NewPlan builds a batch plan over numBatches staged batches for
// numWorkers workers.
func NewPlan(numBatches, numWorkers int) Plan {
	return Plan{numBatches: numBatches, numWorkers: numWorkers}
}

// BatchFor returns the staged batch index worker w consumes at step t.
// Workers at the same step always consume distinct batches (as long as
// there are at least numWorkers batches), which is what makes the global
// batch size P·B (§3.2, weak scaling).
func (p Plan) BatchFor(worker, step int) int {
	if p.numBatches == 0 {
		return 0
	}
	return (step*p.numWorkers + worker) % p.numBatches
}
