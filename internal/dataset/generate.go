package dataset

import (
	"hash/fnv"
	"math"
	"strconv"

	"mlless/internal/sparse"
	"mlless/internal/xrand"
)

// CriteoConfig parameterizes the synthetic Criteo-like generator. The
// defaults mirror the paper's preprocessing (§6.1): 13 numerical and 26
// categorical features, categorical values hashed into a sparse vector of
// dimension 1e5 ("hashing trick"), so every sample has ≈39 non-zeros out
// of 100 013 dimensions.
type CriteoConfig struct {
	// Samples is the number of examples to generate. The real dataset
	// has 47M; experiments use scaled-down counts with identical shape.
	Samples int
	// NumericFeatures is the count of dense numerical features.
	NumericFeatures int
	// CategoricalFeatures is the count of categorical fields.
	CategoricalFeatures int
	// HashDim is the hashed categorical space ("hashing trick" width).
	HashDim int
	// Cardinality is the number of distinct values per categorical field.
	Cardinality int
	// Separation scales the ground-truth weights; larger values make the
	// classes more separable, i.e. lower attainable BCE loss.
	Separation float64
	// Seed drives all randomness.
	Seed uint64
}

// DefaultCriteoConfig returns the paper's shape at a laptop-scale sample
// count. Separation is tuned so the Bayes-optimal BCE sits around 0.5
// and well-trained models reach ≈ 0.55, making the paper's 0.58
// convergence threshold (§6.2) meaningful rather than trivial.
func DefaultCriteoConfig() CriteoConfig {
	return CriteoConfig{
		Samples:             60_000,
		NumericFeatures:     13,
		CategoricalFeatures: 26,
		HashDim:             100_000,
		Cardinality:         10_000,
		Separation:          0.22,
		Seed:                1,
	}
}

// hashCat maps (field, value) into the hashed categorical space,
// implementing the "hashing trick" of §6.1.
func hashCat(field, value, hashDim int) uint32 {
	h := fnv.New32a()
	// Writes to fnv's hash never fail.
	_, _ = h.Write([]byte(strconv.Itoa(field)))
	_, _ = h.Write([]byte{':'})
	_, _ = h.Write([]byte(strconv.Itoa(value)))
	return h.Sum32() % uint32(hashDim)
}

// GenerateCriteo produces a synthetic click-prediction dataset: labels
// are drawn from a ground-truth logistic model over the hashed features,
// so a trained sparse LR can genuinely converge. Numerical features are
// log-normal (as raw ad-traffic counters are) and are NOT normalized
// here — NormalizeMinMax performs the paper's two-pass map-reduce
// min-max scaling afterwards.
func GenerateCriteo(cfg CriteoConfig) *Dataset {
	rng := xrand.New(cfg.Seed)
	dim := cfg.HashDim + cfg.NumericFeatures

	// Ground-truth weights over the full feature space.
	truth := make([]float64, dim+1) // +1 bias
	for i := range truth {
		truth[i] = rng.NormFloat64() * cfg.Separation
	}

	// Zipf-distributed categorical values: a few values dominate each
	// field, as in real ad data.
	zipf := xrand.NewZipf(rng, cfg.Cardinality, 1.1)

	samples := make([]Sample, cfg.Samples)
	for n := range samples {
		v := sparse.NewWithCapacity(cfg.NumericFeatures + cfg.CategoricalFeatures)
		// Numerical features: log-normal counters, stored in the first
		// NumericFeatures coordinates.
		for f := 0; f < cfg.NumericFeatures; f++ {
			v.Set(uint32(f), math.Exp(rng.NormFloat64()))
		}
		// Categorical features: one active hashed coordinate per field.
		for f := 0; f < cfg.CategoricalFeatures; f++ {
			idx := uint32(cfg.NumericFeatures) + hashCat(f, zipf.Next(), cfg.HashDim)
			v.Set(idx, 1)
		}
		// Label from the ground-truth logistic model. Numeric features
		// enter the score through their normalized value (min-max over a
		// log-normal concentrates near 0) so the generator's separability
		// survives normalization.
		score := truth[dim]
		v.ForEachSorted(func(i uint32, val float64) {
			x := val
			if int(i) < cfg.NumericFeatures {
				x = math.Min(x/10, 1)
			}
			score += truth[i] * x
		})
		label := 0.0
		if rng.Bernoulli(1 / (1 + math.Exp(-score))) {
			label = 1
		}
		samples[n] = Sample{Features: v, Label: label, User: -1, Item: -1}
	}
	return &Dataset{Samples: samples, FeatureDim: dim}
}

// MovieLensConfig parameterizes the synthetic MovieLens-like generator.
// Ratings come from a rank-Rank ground-truth factorization plus Gaussian
// noise, so PMF training converges toward RMSE ≈ NoiseStd — placing the
// paper's convergence thresholds (0.82 and 0.738, §6.2) on the curve.
type MovieLensConfig struct {
	// Users and Items size the rating matrix.
	Users, Items int
	// Ratings is the number of observed entries.
	Ratings int
	// Rank is the ground-truth latent dimension.
	Rank int
	// NoiseStd is the rating noise, and the approximate RMSE floor.
	NoiseStd float64
	// SignalStd is the standard deviation of the ground-truth u·m dot
	// product (default 0.8). Together with NoiseStd it sets the rating
	// variance: a mean-predicting model starts at
	// RMSE ≈ √(SignalStd² + NoiseStd²) and a fully trained one
	// approaches NoiseStd — matching MovieLens statistics, where ratings
	// have std ≈ 1.06 and tuned PMF reaches RMSE ≈ 0.73 (§6.2).
	SignalStd float64
	// Seed drives all randomness.
	Seed uint64
}

// MovieLens10MScale returns a generator shaped like MovieLens-10M
// scaled to run on one machine. The scaling preserves the statistics
// the experiments depend on: ≈125 ratings per movie (ML-10M has ≈140),
// rank-20 factorization, rating std ≈ 1.06 and a trained-RMSE floor
// near the paper's "prudent" 0.738 (§6.2).
func MovieLens10MScale() MovieLensConfig {
	return MovieLensConfig{
		Users:     2_400,
		Items:     12_000,
		Ratings:   600_000,
		Rank:      20,
		NoiseStd:  0.70,
		SignalStd: 0.80,
		Seed:      2,
	}
}

// MovieLens20MScale is shaped like MovieLens-20M: double the users,
// items and ratings of MovieLens10MScale, like the originals.
func MovieLens20MScale() MovieLensConfig {
	return MovieLensConfig{
		Users:     4_800,
		Items:     24_000,
		Ratings:   1_200_000,
		Rank:      20,
		NoiseStd:  0.70,
		SignalStd: 0.80,
		Seed:      3,
	}
}

// GenerateMovieLens produces a synthetic ratings dataset on a 1-5 scale
// with Zipf-distributed item popularity (blockbusters gather most
// ratings) and a rank-cfg.Rank ground truth.
func GenerateMovieLens(cfg MovieLensConfig) *Dataset {
	rng := xrand.New(cfg.Seed)

	if cfg.SignalStd <= 0 {
		cfg.SignalStd = 0.8
	}
	// Per-coordinate factor scale σ such that Var(u·m) = Rank·σ⁴ equals
	// SignalStd².
	scale := math.Sqrt(cfg.SignalStd / math.Sqrt(float64(cfg.Rank)))
	userF := make([][]float64, cfg.Users)
	for u := range userF {
		f := make([]float64, cfg.Rank)
		for k := range f {
			f[k] = rng.NormFloat64() * scale
		}
		userF[u] = f
	}
	itemF := make([][]float64, cfg.Items)
	for i := range itemF {
		f := make([]float64, cfg.Rank)
		for k := range f {
			f[k] = rng.NormFloat64() * scale
		}
		itemF[i] = f
	}

	const mean = 3.5
	itemPop := xrand.NewZipf(rng, cfg.Items, 1.05)

	samples := make([]Sample, cfg.Ratings)
	sum := 0.0
	for n := range samples {
		u := rng.Intn(cfg.Users)
		i := itemPop.Next()
		dot := 0.0
		for k := 0; k < cfg.Rank; k++ {
			dot += userF[u][k] * itemF[i][k]
		}
		r := mean + dot + rng.NormFloat64()*cfg.NoiseStd
		if r < 1 {
			r = 1
		} else if r > 5 {
			r = 5
		}
		samples[n] = Sample{User: u, Item: i, Label: r}
		sum += r
	}
	return &Dataset{
		Samples:    samples,
		NumUsers:   cfg.Users,
		NumItems:   cfg.Items,
		RatingMean: sum / float64(len(samples)),
	}
}
