package dataset

import (
	"errors"
	"testing"
	"time"

	"mlless/internal/netmodel"
	"mlless/internal/objstore"
	"mlless/internal/shard"
	"mlless/internal/vclock"
)

func TestShardManifestRoundTrip(t *testing.T) {
	buf := EncodeShardManifest(120, 25, 8)
	nb, bs, bps, err := DecodeShardManifest(buf)
	if err != nil || nb != 120 || bs != 25 || bps != 8 {
		t.Fatalf("manifest round trip = (%d,%d,%d,%v)", nb, bs, bps, err)
	}
	for name, bad := range map[string][]byte{
		"short":   buf[:10],
		"long":    append(append([]byte(nil), buf...), 0),
		"magic":   append([]byte{0}, buf[1:]...),
		"version": append(append([]byte(nil), buf[:4]...), append([]byte{9, 0, 0, 0}, buf[8:]...)...),
	} {
		if _, _, _, err := DecodeShardManifest(bad); err == nil {
			t.Errorf("%s manifest accepted", name)
		}
	}
}

// sampleEqual compares a decoded sample against a shard view's sample k.
func sampleEqual(t *testing.T, s Sample, bv shard.BatchView, k int) {
	t.Helper()
	if s.IsRating() != bv.IsRating() {
		t.Fatalf("sample %d kind mismatch", k)
	}
	if s.IsRating() {
		if bv.User(k) != s.User || bv.Item(k) != s.Item || bv.Rating(k) != s.Label {
			t.Fatalf("sample %d = (%d,%d,%v), want (%d,%d,%v)",
				k, bv.User(k), bv.Item(k), bv.Rating(k), s.User, s.Item, s.Label)
		}
		return
	}
	if bv.Label(k) != s.Label {
		t.Fatalf("sample %d label %v, want %v", k, bv.Label(k), s.Label)
	}
	if !bv.Features(k).Equal(s.Features) {
		t.Fatalf("sample %d features differ", k)
	}
}

// TestStageShardsMatchesStage pins the shard tier's core contract:
// with the same seed, staged batch i holds exactly the samples Stage's
// batch i holds, in the same order — only the wire format differs.
func TestStageShardsMatchesStage(t *testing.T) {
	for _, tc := range []struct {
		name string
		ds   func() *Dataset
	}{
		{"movielens", func() *Dataset { return GenerateMovieLens(smallMovieLens()) }},
		{"criteo", func() *Dataset {
			cfg := smallCriteo()
			cfg.Samples = 500
			return GenerateCriteo(cfg)
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			batchStore := objstore.New(netmodel.Link{})
			shardStore := objstore.New(netmodel.Link{})
			var clk vclock.Clock
			const batchSize, seed = 64, 17
			n := Stage(tc.ds(), batchStore, &clk, "b", batchSize, seed)
			ns := StageShards(tc.ds(), shardStore, &clk, "s", batchSize, 3, seed)
			if n != ns {
				t.Fatalf("Stage staged %d batches, StageShards %d", n, ns)
			}
			sc, err := OpenShardCache(shardStore, &clk, "s")
			if err != nil {
				t.Fatal(err)
			}
			if sc.NumBatches() != n || sc.BatchSize() != batchSize {
				t.Fatalf("manifest = (%d,%d), want (%d,%d)", sc.NumBatches(), sc.BatchSize(), n, batchSize)
			}
			for i := 0; i < n; i++ {
				want, err := FetchBatch(batchStore, &clk, "b", i)
				if err != nil {
					t.Fatal(err)
				}
				bv, err := sc.Fetch(&clk, i)
				if err != nil {
					t.Fatal(err)
				}
				if bv.Len() != len(want) {
					t.Fatalf("batch %d len %d, want %d", i, bv.Len(), len(want))
				}
				for k, s := range want {
					sampleEqual(t, s, bv, k)
				}
			}
		})
	}
}

// TestShardCacheChargesRangePerFetch pins the shard tier's billing: a
// fetch costs one ranged read of the batch's block — first-byte latency
// plus the block's transfer — and repeated fetches of a cached-parse
// batch still pay it in full, mirroring dataset.Cache.
func TestShardCacheChargesRangePerFetch(t *testing.T) {
	link := netmodel.Link{Latency: 10 * time.Millisecond, BandwidthBps: 1e6}
	store := objstore.New(link)
	var clk vclock.Clock
	ds := GenerateMovieLens(smallMovieLens())
	n := StageShards(ds, store, &clk, "ml", 100, 4, 1)
	sc, err := OpenShardCache(store, &clk, "ml")
	if err != nil {
		t.Fatal(err)
	}
	blob, ok := store.PeekView("ml", ShardKey(0))
	if !ok {
		t.Fatal("shard 0 missing")
	}
	sh, err := shard.Parse(blob)
	if err != nil {
		t.Fatal(err)
	}
	_, blockLen := sh.BatchExtent(2)
	want := link.TransferTime(blockLen)
	for pass := 0; pass < 2; pass++ {
		var fetchClk vclock.Clock
		if _, err := sc.Fetch(&fetchClk, 2); err != nil {
			t.Fatal(err)
		}
		if fetchClk.Now() != want {
			t.Fatalf("pass %d charged %v, want %v (block %d bytes)", pass, fetchClk.Now(), want, blockLen)
		}
	}
	if _, err := sc.Fetch(&clk, n); err == nil {
		t.Fatal("out-of-range batch accepted")
	}
	if _, err := sc.Fetch(&clk, -1); err == nil {
		t.Fatal("negative batch accepted")
	}
}

func TestOpenShardCacheMissingManifest(t *testing.T) {
	store := objstore.New(netmodel.Link{})
	var clk vclock.Clock
	if _, err := OpenShardCache(store, &clk, "empty"); !errors.Is(err, objstore.ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
}

// TestShardViewsSurviveRestaging pins the immutable-snapshot contract:
// views handed out before a shard object is overwritten keep reading
// the old bytes.
func TestShardViewsSurviveRestaging(t *testing.T) {
	store := objstore.New(netmodel.Link{})
	var clk vclock.Clock
	ds := GenerateMovieLens(smallMovieLens())
	StageShards(ds, store, &clk, "ml", 100, 4, 1)
	sc, err := OpenShardCache(store, &clk, "ml")
	if err != nil {
		t.Fatal(err)
	}
	bv, err := sc.Fetch(&clk, 0)
	if err != nil {
		t.Fatal(err)
	}
	u, it, r := bv.User(0), bv.Item(0), bv.Rating(0)
	store.Put(&clk, "ml", ShardKey(0), []byte("garbage"))
	if bv.User(0) != u || bv.Item(0) != it || bv.Rating(0) != r {
		t.Fatal("overwriting the shard object mutated a live view")
	}
}
