package dataset

import (
	"encoding/binary"
	"fmt"
	"sync"

	"mlless/internal/objstore"
	"mlless/internal/shard"
	"mlless/internal/vclock"
	"mlless/internal/xrand"
)

// DefaultBatchesPerShard is how many mini-batches a staged shard packs
// when callers have no reason to choose: large enough to amortize the
// per-object overhead, small enough that a shard stays a convenient
// transfer and mmap unit.
const DefaultBatchesPerShard = 8

// ShardKey names staged shard object i. Zero-padded so List order
// equals numeric order.
func ShardKey(i int) string { return fmt.Sprintf("shard/%08d", i) }

// ShardManifestKey names the staging manifest describing a bucket's
// shard geometry.
const ShardManifestKey = "shard/manifest"

const (
	manifestMagic   = 0x314d534d // "MSM1"
	manifestVersion = 1
	manifestSize    = 20
)

// EncodeShardManifest serializes the shard geometry of a staged bucket.
func EncodeShardManifest(numBatches, batchSize, batchesPerShard int) []byte {
	buf := make([]byte, manifestSize)
	binary.LittleEndian.PutUint32(buf, manifestMagic)
	binary.LittleEndian.PutUint32(buf[4:], manifestVersion)
	binary.LittleEndian.PutUint32(buf[8:], uint32(numBatches))
	binary.LittleEndian.PutUint32(buf[12:], uint32(batchSize))
	binary.LittleEndian.PutUint32(buf[16:], uint32(batchesPerShard))
	return buf
}

// DecodeShardManifest parses a staging manifest.
func DecodeShardManifest(buf []byte) (numBatches, batchSize, batchesPerShard int, err error) {
	if len(buf) != manifestSize {
		return 0, 0, 0, fmt.Errorf("dataset: shard manifest is %d bytes, want %d", len(buf), manifestSize)
	}
	if m := binary.LittleEndian.Uint32(buf); m != manifestMagic {
		return 0, 0, 0, fmt.Errorf("dataset: shard manifest bad magic %#x", m)
	}
	if v := binary.LittleEndian.Uint32(buf[4:]); v != manifestVersion {
		return 0, 0, 0, fmt.Errorf("dataset: shard manifest unsupported version %d", v)
	}
	numBatches = int(binary.LittleEndian.Uint32(buf[8:]))
	batchSize = int(binary.LittleEndian.Uint32(buf[12:]))
	batchesPerShard = int(binary.LittleEndian.Uint32(buf[16:]))
	if batchesPerShard <= 0 {
		return 0, 0, 0, fmt.Errorf("dataset: shard manifest batchesPerShard %d", batchesPerShard)
	}
	return numBatches, batchSize, batchesPerShard, nil
}

// StageShards stages the dataset as columnar shard blobs plus a
// manifest, charging the uploads to clk. It applies the same seeded
// shuffle and batch split as Stage, so staged batch i holds exactly the
// samples Stage's batch i holds — only the wire format differs: batches
// are packed batchesPerShard to a shard, each batch one contiguous
// block a worker fetches with a single ranged read. It returns the
// number of staged batches.
func StageShards(ds *Dataset, store *objstore.Store, clk *vclock.Clock, bucket string, batchSize, batchesPerShard int, seed uint64) int {
	if batchesPerShard <= 0 {
		batchesPerShard = DefaultBatchesPerShard
	}
	rng := xrand.New(seed)
	order := rng.Perm(ds.Len())
	shuffled := make([]Sample, ds.Len())
	for i, j := range order {
		shuffled[i] = ds.Samples[j]
	}
	tmp := Dataset{Samples: shuffled}
	batches := tmp.Split(batchSize)

	b := shard.NewBuilder()
	shardIdx := 0
	flush := func() {
		store.Put(clk, bucket, ShardKey(shardIdx), b.Finish())
		shardIdx++
		b.Reset()
	}
	for i, batch := range batches {
		for _, s := range batch {
			if s.IsRating() {
				b.AddRating(s.User, s.Item, s.Label)
			} else {
				b.AddFeature(s.Label, s.Features)
			}
		}
		b.EndBatch()
		if (i+1)%batchesPerShard == 0 {
			flush()
		}
	}
	if len(batches)%batchesPerShard != 0 {
		flush()
	}
	store.Put(clk, bucket, ShardManifestKey, EncodeShardManifest(len(batches), batchSize, batchesPerShard))
	return len(batches)
}

// ShardCache is the shard tier's counterpart of Cache: every Fetch
// still performs (and charges) an object-store transfer — one ranged
// read of the batch's block inside its shard — while the CPU-side
// parse, simulator overhead rather than modeled time, happens once per
// shard via an uncharged peek. Views alias the store's immutable
// snapshots (Put copies on write), so they stay valid across later
// writes.
//
// ShardCache is safe for concurrent use.
type ShardCache struct {
	store           *objstore.Store
	bucket          string
	numBatches      int
	batchSize       int
	batchesPerShard int

	mu     sync.Mutex
	shards map[int]*shard.Shard
}

// OpenShardCache reads the staging manifest of bucket (one charged
// object read) and returns a cache over its shards.
func OpenShardCache(store *objstore.Store, clk *vclock.Clock, bucket string) (*ShardCache, error) {
	buf, err := store.Get(clk, bucket, ShardManifestKey)
	if err != nil {
		return nil, fmt.Errorf("dataset: open shard cache: %w", err)
	}
	numBatches, batchSize, batchesPerShard, err := DecodeShardManifest(buf)
	if err != nil {
		return nil, fmt.Errorf("dataset: open shard cache: %w", err)
	}
	return &ShardCache{
		store:           store,
		bucket:          bucket,
		numBatches:      numBatches,
		batchSize:       batchSize,
		batchesPerShard: batchesPerShard,
		shards:          make(map[int]*shard.Shard),
	}, nil
}

// NumBatches returns the staged batch count from the manifest.
func (c *ShardCache) NumBatches() int { return c.numBatches }

// BatchSize returns the staged batch size from the manifest.
func (c *ShardCache) BatchSize() int { return c.batchSize }

// Fetch charges the ranged read of batch i's block to clk and returns
// its zero-copy view.
func (c *ShardCache) Fetch(clk *vclock.Clock, i int) (shard.BatchView, error) {
	if i < 0 || i >= c.numBatches {
		return shard.BatchView{}, fmt.Errorf("dataset: fetch batch %d of %d", i, c.numBatches)
	}
	si, bi := i/c.batchesPerShard, i%c.batchesPerShard
	sh, err := c.shard(si)
	if err != nil {
		return shard.BatchView{}, fmt.Errorf("dataset: fetch batch %d: %w", i, err)
	}
	if bi >= sh.NumBatches() {
		return shard.BatchView{}, fmt.Errorf("dataset: fetch batch %d: shard %d holds %d batches", i, si, sh.NumBatches())
	}
	off, n := sh.BatchExtent(bi)
	if _, err := c.store.GetRangeView(clk, c.bucket, ShardKey(si), off, n); err != nil {
		return shard.BatchView{}, fmt.Errorf("dataset: fetch batch %d: %w", i, err)
	}
	return sh.Batch(bi), nil
}

// shard returns the parsed form of shard si, parsing it on first use
// from an uncharged peek at the stored bytes.
func (c *ShardCache) shard(si int) (*shard.Shard, error) {
	c.mu.Lock()
	sh, ok := c.shards[si]
	c.mu.Unlock()
	if ok {
		return sh, nil
	}
	blob, ok := c.store.PeekView(c.bucket, ShardKey(si))
	if !ok {
		return nil, fmt.Errorf("shard %d: %w", si, objstore.ErrNotFound)
	}
	sh, err := shard.Parse(blob)
	if err != nil {
		return nil, fmt.Errorf("shard %d: %w", si, err)
	}
	c.mu.Lock()
	c.shards[si] = sh
	c.mu.Unlock()
	return sh, nil
}
