// Package dataset provides the training data substrate of the
// reproduction: sample and mini-batch types, synthetic generators shaped
// like the paper's datasets (Criteo display ads for sparse logistic
// regression, MovieLens for matrix factorization, §6.1), min-max
// normalization implemented as two chained map-reduce passes over the
// object store (mirroring the PyWren-IBM preprocessing of §3.2), and
// staging/fetching of mini-batches in object storage.
//
// The real Criteo and MovieLens files are not redistributable and not
// reachable offline, so the generators draw from ground-truth models with
// the same shape parameters (feature counts, hashing dimension, sparsity,
// rating scale, heavy-tailed item popularity). What the experiments
// measure — convergence speed, update sparsity, bytes exchanged — depends
// on those shape parameters, not on the identity of the movies.
package dataset

import (
	"encoding/binary"
	"fmt"
	"math"

	"mlless/internal/sparse"
)

// Sample is one training example. Two kinds exist:
//
//   - feature samples (logistic/linear regression): Features and Label
//     are set, User and Item are -1;
//   - rating samples (matrix factorization): User, Item and Label (the
//     rating) are set, Features is nil.
type Sample struct {
	// Features is the sparse feature vector, nil for rating samples.
	Features *sparse.Vector
	// Label is the target: the class in {0,1} for logistic regression,
	// the rating for matrix factorization.
	Label float64
	// User and Item index the rating matrix; both are -1 for feature
	// samples.
	User, Item int
}

// IsRating reports whether the sample is a rating triple.
func (s Sample) IsRating() bool { return s.User >= 0 }

// Dataset is an in-memory dataset plus its shape metadata.
type Dataset struct {
	// Samples holds the examples in generation order; mini-batch staging
	// shuffles deterministically.
	Samples []Sample
	// FeatureDim is the width of feature samples (0 for rating data).
	FeatureDim int
	// NumUsers and NumItems size the rating matrix (0 for feature data).
	NumUsers, NumItems int
	// RatingMean is the global mean rating (matrix factorization bias).
	RatingMean float64
}

// Len returns the number of samples.
func (d *Dataset) Len() int { return len(d.Samples) }

// Split returns the samples partitioned into mini-batches of size b
// (the final batch may be short). It does not copy samples.
func (d *Dataset) Split(b int) [][]Sample {
	if b <= 0 {
		b = len(d.Samples)
	}
	var out [][]Sample
	for i := 0; i < len(d.Samples); i += b {
		end := i + b
		if end > len(d.Samples) {
			end = len(d.Samples)
		}
		out = append(out, d.Samples[i:end])
	}
	return out
}

// Binary batch encoding. Rating samples are 20 bytes each; feature
// samples carry their sparse vectors. Layout:
//
//	uint32 sampleCount
//	per sample:
//	  uint8 kind (0 = feature, 1 = rating)
//	  kind 0: float64 label, sparse.Vector encoding
//	  kind 1: uint32 user, uint32 item, float64 rating

const (
	kindFeature = 0
	kindRating  = 1
)

// EncodeBatch serializes a mini-batch for object storage. The encoded
// size is what the simulated COS link charges per fetch.
func EncodeBatch(batch []Sample) []byte {
	size := 4
	for _, s := range batch {
		if s.IsRating() {
			size += 1 + 4 + 4 + 8
		} else {
			size += 1 + 8 + s.Features.EncodedSize()
		}
	}
	buf := make([]byte, 0, size)
	var scratch [8]byte
	binary.LittleEndian.PutUint32(scratch[:4], uint32(len(batch)))
	buf = append(buf, scratch[:4]...)
	for _, s := range batch {
		if s.IsRating() {
			buf = append(buf, kindRating)
			binary.LittleEndian.PutUint32(scratch[:4], uint32(s.User))
			buf = append(buf, scratch[:4]...)
			binary.LittleEndian.PutUint32(scratch[:4], uint32(s.Item))
			buf = append(buf, scratch[:4]...)
			binary.LittleEndian.PutUint64(scratch[:], math.Float64bits(s.Label))
			buf = append(buf, scratch[:]...)
		} else {
			buf = append(buf, kindFeature)
			binary.LittleEndian.PutUint64(scratch[:], math.Float64bits(s.Label))
			buf = append(buf, scratch[:]...)
			buf = s.Features.EncodeTo(buf)
		}
	}
	return buf
}

// DecodeBatch parses a mini-batch produced by EncodeBatch.
func DecodeBatch(buf []byte) ([]Sample, error) {
	if len(buf) < 4 {
		return nil, fmt.Errorf("dataset: decode batch: short buffer (%d bytes)", len(buf))
	}
	n := int(binary.LittleEndian.Uint32(buf))
	// The smallest sample is 13 bytes (kind + label + empty sparse
	// vector): a count exceeding what the buffer could hold is corrupt,
	// and bounding it here keeps the pre-sized allocation honest.
	if n > (len(buf)-4)/13 {
		return nil, fmt.Errorf("dataset: decode batch: count %d exceeds %d-byte buffer", n, len(buf))
	}
	off := 4
	out := make([]Sample, 0, n)
	for k := 0; k < n; k++ {
		if off >= len(buf) {
			return nil, fmt.Errorf("dataset: decode batch: truncated at sample %d", k)
		}
		kind := buf[off]
		off++
		switch kind {
		case kindRating:
			if off+16 > len(buf) {
				return nil, fmt.Errorf("dataset: decode batch: truncated rating at sample %d", k)
			}
			user := int(binary.LittleEndian.Uint32(buf[off:]))
			item := int(binary.LittleEndian.Uint32(buf[off+4:]))
			rating := math.Float64frombits(binary.LittleEndian.Uint64(buf[off+8:]))
			off += 16
			out = append(out, Sample{User: user, Item: item, Label: rating})
		case kindFeature:
			if off+12 > len(buf) {
				return nil, fmt.Errorf("dataset: decode batch: truncated feature sample %d", k)
			}
			label := math.Float64frombits(binary.LittleEndian.Uint64(buf[off:]))
			off += 8
			// Peek the sparse-vector entry count to find its extent.
			nnz := int(binary.LittleEndian.Uint32(buf[off:]))
			extent := sparse.EncodedSizeFor(nnz)
			if off+extent > len(buf) {
				return nil, fmt.Errorf("dataset: decode batch: truncated features at sample %d", k)
			}
			vec, err := sparse.Decode(buf[off : off+extent])
			if err != nil {
				return nil, fmt.Errorf("dataset: decode batch sample %d: %w", k, err)
			}
			off += extent
			out = append(out, Sample{Features: vec, Label: label, User: -1, Item: -1})
		default:
			return nil, fmt.Errorf("dataset: decode batch: unknown sample kind %d", kind)
		}
	}
	if off != len(buf) {
		return nil, fmt.Errorf("dataset: decode batch: %d trailing bytes", len(buf)-off)
	}
	return out, nil
}
