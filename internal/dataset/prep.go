package dataset

import (
	"fmt"
	"math"

	"mlless/internal/objstore"
	"mlless/internal/vclock"
)

// NormalizeMinMax rescales the numeric features (coordinates
// [0, numericFeatures)) of every staged mini-batch in bucket to [0, 1]
// using min-max scaling. Following §3.2, it is implemented as two chained
// map-reduce jobs over the object store, exactly how the paper prepares
// the Criteo dataset with PyWren-IBM:
//
//	job 1: map over batches extracting per-feature (min, max),
//	       reduce by combining extrema;
//	job 2: map over batches applying the scaling, writing each scaled
//	       batch back.
//
// All intermediate I/O is charged to clk via the object store's link, as
// a serverless map-reduce would pay it.
func NormalizeMinMax(store *objstore.Store, clk *vclock.Clock, bucket string, numBatches, numericFeatures int) error {
	if numericFeatures <= 0 {
		return nil
	}
	mins := make([]float64, numericFeatures)
	maxs := make([]float64, numericFeatures)
	for f := range mins {
		mins[f] = math.Inf(1)
		maxs[f] = math.Inf(-1)
	}

	// Job 1 (map + reduce): per-feature extrema.
	for i := 0; i < numBatches; i++ {
		batch, err := FetchBatch(store, clk, bucket, i)
		if err != nil {
			return fmt.Errorf("dataset: normalize pass 1: %w", err)
		}
		for _, s := range batch {
			if s.Features == nil {
				return fmt.Errorf("dataset: normalize: batch %d holds non-feature samples", i)
			}
			for f := 0; f < numericFeatures; f++ {
				v := s.Features.Get(uint32(f))
				if v < mins[f] {
					mins[f] = v
				}
				if v > maxs[f] {
					maxs[f] = v
				}
			}
		}
	}

	// Job 2 (map): apply the scaling and rewrite each batch.
	for i := 0; i < numBatches; i++ {
		batch, err := FetchBatch(store, clk, bucket, i)
		if err != nil {
			return fmt.Errorf("dataset: normalize pass 2: %w", err)
		}
		for _, s := range batch {
			for f := 0; f < numericFeatures; f++ {
				span := maxs[f] - mins[f]
				if span <= 0 {
					s.Features.Set(uint32(f), 0)
					continue
				}
				v := s.Features.Get(uint32(f))
				s.Features.Set(uint32(f), (v-mins[f])/span)
			}
		}
		store.Put(clk, bucket, batchKey(i), EncodeBatch(batch))
	}
	return nil
}
