package dataset

import (
	"encoding/binary"
	"fmt"
	"math"

	"mlless/internal/objstore"
	"mlless/internal/sparse"
	"mlless/internal/vclock"
)

// NormalizeMinMax rescales the numeric features (coordinates
// [0, numericFeatures)) of every staged mini-batch in bucket to [0, 1]
// using min-max scaling. Following §3.2, it is implemented as two chained
// map-reduce jobs over the object store, exactly how the paper prepares
// the Criteo dataset with PyWren-IBM:
//
//	job 1: map over batches extracting per-feature (min, max),
//	       reduce by combining extrema;
//	job 2: map over batches applying the scaling, writing each scaled
//	       batch back.
//
// All intermediate I/O is charged to clk via the object store's link, as
// a serverless map-reduce would pay it — one charged read per pass per
// batch, plus job 2's writes. Job 1 scans extrema straight off the
// encoded bytes (no decode); job 2 decodes each batch exactly once,
// through the shared Cache path.
func NormalizeMinMax(store *objstore.Store, clk *vclock.Clock, bucket string, numBatches, numericFeatures int) error {
	if numericFeatures <= 0 {
		return nil
	}
	mins := make([]float64, numericFeatures)
	maxs := make([]float64, numericFeatures)
	for f := range mins {
		mins[f] = math.Inf(1)
		maxs[f] = math.Inf(-1)
	}

	// Job 1 (map + reduce): per-feature extrema, streamed off the wire
	// encoding without materializing samples.
	present := make([]bool, numericFeatures)
	for i := 0; i < numBatches; i++ {
		buf, err := store.Get(clk, bucket, BatchKey(i))
		if err != nil {
			return fmt.Errorf("dataset: normalize pass 1: %w", err)
		}
		if err := scanEncodedExtrema(buf, present, mins, maxs); err != nil {
			return fmt.Errorf("dataset: normalize: batch %d %w", i, err)
		}
	}

	// Job 2 (map): apply the scaling and rewrite each batch. Reads go
	// through a Cache: the transfer is charged per read as always, the
	// decode happens once.
	cache := NewCache(store, bucket)
	for i := 0; i < numBatches; i++ {
		batch, err := cache.Fetch(clk, i)
		if err != nil {
			return fmt.Errorf("dataset: normalize pass 2: %w", err)
		}
		for _, s := range batch {
			scaleSample(s, mins, maxs)
		}
		store.Put(clk, bucket, BatchKey(i), EncodeBatch(batch))
	}
	return nil
}

// scanEncodedExtrema folds one encoded batch into the per-feature
// extrema. A numeric coordinate absent from a sample's sparse vector is
// the value 0, so after each sample the features it did not mention
// extend the extrema with 0 — exactly what Get-per-feature over the
// decoded sample observes. Rating samples are a caller error; corrupt
// buffers return errors.
func scanEncodedExtrema(buf []byte, present []bool, mins, maxs []float64) error {
	if len(buf) < 4 {
		return fmt.Errorf("holds short batch (%d bytes)", len(buf))
	}
	n := int(binary.LittleEndian.Uint32(buf))
	off := 4
	numeric := uint32(len(present))
	for k := 0; k < n; k++ {
		if off >= len(buf) {
			return fmt.Errorf("truncated at sample %d", k)
		}
		if kind := buf[off]; kind != kindFeature {
			return fmt.Errorf("holds non-feature samples")
		}
		off++ // kind
		if off+12 > len(buf) {
			return fmt.Errorf("truncated at sample %d", k)
		}
		off += 8 // label
		nnz := int(binary.LittleEndian.Uint32(buf[off:]))
		extent := sparse.EncodedSizeFor(nnz)
		if off+extent > len(buf) {
			return fmt.Errorf("truncated at sample %d", k)
		}
		for f := range present {
			present[f] = false
		}
		for j := 0; j < nnz; j++ {
			entry := buf[off+4+j*12:]
			idx := binary.LittleEndian.Uint32(entry)
			if idx >= numeric {
				continue
			}
			present[idx] = true
			v := math.Float64frombits(binary.LittleEndian.Uint64(entry[4:]))
			if v < mins[idx] {
				mins[idx] = v
			}
			if v > maxs[idx] {
				maxs[idx] = v
			}
		}
		for f := range present {
			if !present[f] {
				if 0 < mins[f] {
					mins[f] = 0
				}
				if 0 > maxs[f] {
					maxs[f] = 0
				}
			}
		}
		off += extent
	}
	return nil
}

// scaleSample applies min-max scaling to one feature sample in place.
func scaleSample(s Sample, mins, maxs []float64) {
	for f := range mins {
		span := maxs[f] - mins[f]
		if span <= 0 {
			s.Features.Set(uint32(f), 0)
			continue
		}
		v := s.Features.Get(uint32(f))
		s.Features.Set(uint32(f), (v-mins[f])/span)
	}
}

// NormalizeInPlace min-max scales the numeric features of an in-memory
// dataset — the same arithmetic as NormalizeMinMax without the staged
// round trips. The shard staging path normalizes here before building
// shard blobs (min/max are order-independent, so the result is bitwise
// identical to staging raw batches and running NormalizeMinMax).
func NormalizeInPlace(ds *Dataset, numericFeatures int) {
	if numericFeatures <= 0 {
		return
	}
	mins := make([]float64, numericFeatures)
	maxs := make([]float64, numericFeatures)
	for f := range mins {
		mins[f] = math.Inf(1)
		maxs[f] = math.Inf(-1)
	}
	for _, s := range ds.Samples {
		for f := 0; f < numericFeatures; f++ {
			v := s.Features.Get(uint32(f))
			if v < mins[f] {
				mins[f] = v
			}
			if v > maxs[f] {
				maxs[f] = v
			}
		}
	}
	for _, s := range ds.Samples {
		scaleSample(s, mins, maxs)
	}
}
