package dataset

import (
	"math"
	"testing"

	"mlless/internal/sparse"
)

// FuzzDecodeBatch feeds arbitrary bytes through DecodeBatch and the
// encoded-extrema scanner: corrupt or truncated blobs must return
// errors, never panic or over-allocate, and accepted batches must
// re-encode and re-decode cleanly. The seed corpus mirrors
// TestDecodeBatchErrors.
func FuzzDecodeBatch(f *testing.F) {
	rating := EncodeBatch([]Sample{{User: 1, Item: 2, Label: 3}})
	v := sparse.New()
	v.Set(0, 2.5)
	v.Set(7, -1)
	feature := EncodeBatch([]Sample{{Features: v, Label: 1, User: -1, Item: -1}})
	f.Add([]byte{})
	f.Add(rating)
	f.Add(rating[:len(rating)-1])
	f.Add(append(append([]byte(nil), rating...), 0))
	badKind := append([]byte(nil), rating...)
	badKind[4] = 9
	f.Add(badKind)
	f.Add(feature)
	f.Fuzz(func(t *testing.T, buf []byte) {
		batch, err := DecodeBatch(buf)
		if err == nil {
			// Accepted input: the decoded batch must survive a round trip.
			// (Re-encoded bytes may legitimately differ from buf: DecodeBatch
			// tolerates unsorted sparse entries that EncodeBatch canonicalizes.)
			again, err := DecodeBatch(EncodeBatch(batch))
			if err != nil {
				t.Fatalf("re-decode failed: %v", err)
			}
			if len(again) != len(batch) {
				t.Fatalf("round trip changed batch size %d -> %d", len(batch), len(again))
			}
		}
		// The normalize pass-1 scanner walks the same wire format and must
		// be exactly as robust.
		mins := []float64{math.Inf(1), math.Inf(1)}
		maxs := []float64{math.Inf(-1), math.Inf(-1)}
		_ = scanEncodedExtrema(buf, make([]bool, 2), mins, maxs)
	})
}
