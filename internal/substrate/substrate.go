// Package substrate is the shared per-operation pipeline of the
// simulated storage and messaging services. Every operation a substrate
// (key-value store, object store, message broker) serves runs the same
// four stages on the caller's virtual clock:
//
//	link time → fault multiplier → trace span → registry counters
//
// The nominal link charge (latency + bytes/bandwidth, package netmodel)
// is advanced first; the seeded fault injector may then stretch the
// operation with retries or latency spikes; if a tracer is installed,
// one span covering the whole stretched operation is recorded with the
// observed charge multiplier; and the substrate's counters live in the
// unified trace.Registry the pipeline was built with. kvstore, objstore
// and msgqueue all delegate to this one implementation instead of
// hand-rolling the plumbing per service, so a new backend picks up
// charging, fault injection, tracing and metrics by constructing a
// Pipeline — nothing else.
//
// The pipeline also supports fan-out charging: a sharded service that
// issues operations against several shards concurrently computes each
// branch's full pipeline cost with Cost, emits the per-branch spans
// with TraceRange, and advances the caller's clock by the maximum —
// modelling parallel connections rather than a serial sum.
package substrate

import (
	"sync"
	"time"

	"mlless/internal/faults"
	"mlless/internal/netmodel"
	"mlless/internal/trace"
	"mlless/internal/vclock"
)

// Domain selects which fault-injection stream perturbs a pipeline's
// operations. Injection decisions are pure functions of (domain, op,
// key, virtual time), so distinct domains draw independent faults.
type Domain int

const (
	// DomainNone disables fault injection for the pipeline (the object
	// store: the paper's failure modes live on the KV store, the broker
	// and the FaaS control plane).
	DomainNone Domain = iota
	// DomainKV draws from the KV store fault stream (Spec.KV*).
	DomainKV
	// DomainMQ draws from the message broker fault stream (Spec.MQ*).
	DomainMQ
)

// Config parameterizes a Pipeline.
type Config struct {
	// Link is the network path every operation is charged through.
	Link netmodel.Link
	// Cat is the trace category of the substrate's spans (trace.CatKV,
	// trace.CatObj, trace.CatMQ).
	Cat string
	// KeyLabel names the span argument carrying the operation's key
	// ("key" for stores, "queue" for the broker).
	KeyLabel string
	// Domain selects the fault stream (DomainNone disables injection).
	Domain Domain
}

// Pipeline runs the shared per-operation stages for one substrate. It
// is safe for concurrent use under the same contract as the substrates
// themselves: SetFaults/SetTracer happen-before the worker goroutines
// that perform operations (the engine installs both during job setup
// and removes them at teardown).
type Pipeline struct {
	cfg Config
	reg *trace.Registry

	mu     sync.Mutex
	faults *faults.Injector
	tracer *trace.Tracer
}

// New returns a pipeline whose counters resolve from reg.
func New(cfg Config, reg *trace.Registry) *Pipeline {
	return &Pipeline{cfg: cfg, reg: reg}
}

// Registry returns the unified metrics registry the pipeline was built
// with.
func (p *Pipeline) Registry() *trace.Registry { return p.reg }

// Counter resolves a counter from the pipeline's registry. Substrates
// resolve their semantic counters ("kv.gets", "mq.published") once at
// construction and update them lock-free.
func (p *Pipeline) Counter(name string) *trace.Counter { return p.reg.Counter(name) }

// SetFaults installs (or, with nil, removes) the fault injector. Do not
// call concurrently with operations.
func (p *Pipeline) SetFaults(in *faults.Injector) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.faults = in
}

// SetTracer installs (or, with nil, removes) the tracer. Same
// concurrency contract as SetFaults.
func (p *Pipeline) SetTracer(tr *trace.Tracer) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.tracer = tr
}

// Link returns the pipeline's network link for time estimation.
func (p *Pipeline) Link() netmodel.Link { return p.cfg.Link }

// TransferTime estimates moving n payload bytes through the link.
func (p *Pipeline) TransferTime(n int) time.Duration { return p.cfg.Link.TransferTime(n) }

// RTT returns the zero-payload request time of the link.
func (p *Pipeline) RTT() time.Duration { return p.cfg.Link.RTT() }

// delay returns the injected extra time for an operation whose nominal
// charge instant is now. The lock-free read of p.faults is safe because
// SetFaults happens-before the operating goroutines (see SetFaults).
func (p *Pipeline) delay(op, key string, now, base time.Duration) time.Duration {
	switch p.cfg.Domain {
	case DomainKV:
		return p.faults.KVDelay(op, key, now, base)
	case DomainMQ:
		return p.faults.MQDelay(op, key, now, base)
	}
	return 0
}

// Cost returns the full pipeline duration of an operation that starts
// at start with nominal charge base: the base itself plus the fault
// delay drawn at the operation's charge instant start+base. It advances
// no clock, so fan-out callers can price parallel branches and charge
// only the maximum.
func (p *Pipeline) Cost(op, key string, start, base time.Duration) time.Duration {
	return base + p.delay(op, key, start+base, base)
}

// Charge runs the full pipeline for one operation on clk: the nominal
// base is advanced, then any injected fault delay, and one span
// covering the whole operation is recorded (with the observed charge
// multiplier as "fault_x" when faults stretched it past base). bytes
// annotates the span's payload size.
func (p *Pipeline) Charge(clk *vclock.Clock, op, key string, bytes int, base time.Duration) {
	start := clk.Now()
	clk.Advance(base)
	if d := p.delay(op, key, clk.Now(), base); d > 0 {
		clk.Advance(d)
	}
	if p.tracer.Enabled() {
		p.span(clk, op, key, start, bytes, base)
	}
}

// ChargeUntraced is Charge without the span: link time and fault delay
// only. Metadata operations that the real services perform server-side
// (key scans, HEAD requests, TTL deletes) stay off the timeline.
func (p *Pipeline) ChargeUntraced(clk *vclock.Clock, op, key string, base time.Duration) {
	clk.Advance(base)
	if d := p.delay(op, key, clk.Now(), base); d > 0 {
		clk.Advance(d)
	}
}

// span records one operation span from start to clk.Now() on the
// clock's track. It is only called when the tracer is enabled, so
// disabled paths never materialize the argument slice.
func (p *Pipeline) span(clk *vclock.Clock, op, key string, start time.Duration, bytes int, base time.Duration) {
	actual := clk.Now() - start
	if actual > base && base > 0 {
		p.tracer.SpanAt(clk, p.cfg.Cat, op, start,
			trace.Str(p.cfg.KeyLabel, key), trace.Int("bytes", bytes),
			trace.Float("fault_x", float64(actual)/float64(base)))
		return
	}
	p.tracer.SpanAt(clk, p.cfg.Cat, op, start,
		trace.Str(p.cfg.KeyLabel, key), trace.Int("bytes", bytes))
}

// TraceRange records the span of one fan-out branch over [start, end]
// on clk's registered track, without charging the clock (the caller
// advances it by the maximum branch cost). extra args follow the key
// and byte annotations; the charge multiplier is appended when the
// branch ran past its nominal base. Call only when Enabled.
func (p *Pipeline) TraceRange(clk *vclock.Clock, op, key string, start, end, base time.Duration, bytes int, extra ...trace.Arg) {
	if !p.tracer.Enabled() {
		return
	}
	args := make([]trace.Arg, 0, 3+len(extra))
	args = append(args, trace.Str(p.cfg.KeyLabel, key), trace.Int("bytes", bytes))
	args = append(args, extra...)
	if actual := end - start; actual > base && base > 0 {
		args = append(args, trace.Float("fault_x", float64(actual)/float64(base)))
	}
	p.tracer.SpanRangeAt(clk, p.cfg.Cat, op, start, end, args...)
}

// Enabled reports whether a tracer is installed. Substrates use it to
// keep argument construction off the disabled path.
func (p *Pipeline) Enabled() bool { return p.tracer.Enabled() }
