package substrate

import (
	"testing"
	"time"

	"mlless/internal/faults"
	"mlless/internal/netmodel"
	"mlless/internal/trace"
	"mlless/internal/vclock"
)

// fastLink keeps arithmetic round: 1 ms latency, 1 MB/ms bandwidth.
func fastLink() netmodel.Link {
	return netmodel.Link{Latency: time.Millisecond, BandwidthBps: 1e9}
}

func newKV(reg *trace.Registry) *Pipeline {
	return New(Config{Link: fastLink(), Cat: trace.CatKV, KeyLabel: "key", Domain: DomainKV}, reg)
}

func TestChargeNominal(t *testing.T) {
	p := newKV(trace.NewRegistry())
	var clk vclock.Clock
	base := p.TransferTime(1000)
	p.Charge(&clk, "get", "k", 1000, base)
	if clk.Now() != base {
		t.Fatalf("charged %v, want %v", clk.Now(), base)
	}
}

// TestChargeSpikeGolden pins the latency-spike composition: a certain
// spike with factor f charges exactly f×base.
func TestChargeSpikeGolden(t *testing.T) {
	p := newKV(trace.NewRegistry())
	p.SetFaults(faults.New(faults.Spec{Seed: 1, KVSlowProb: 1, KVSlowFactor: 10}))
	var clk vclock.Clock
	base := 2 * time.Millisecond
	p.Charge(&clk, "get", "k", 0, base)
	if clk.Now() != 10*base {
		t.Fatalf("spiked charge = %v, want %v", clk.Now(), 10*base)
	}
}

// TestChargeRetryGolden pins the retry composition: with a certain
// failure probability the injector delivers maxOpRetries (5) failed
// attempts, each costing the retry penalty plus a re-execution.
func TestChargeRetryGolden(t *testing.T) {
	penalty := 50 * time.Millisecond
	p := newKV(trace.NewRegistry())
	p.SetFaults(faults.New(faults.Spec{Seed: 1, KVFailProb: 1, KVRetryPenalty: penalty}))
	var clk vclock.Clock
	base := 2 * time.Millisecond
	p.Charge(&clk, "set", "k", 0, base)
	want := base + 5*(penalty+base)
	if clk.Now() != want {
		t.Fatalf("retried charge = %v, want %v", clk.Now(), want)
	}
}

// TestCostMatchesCharge pins the fan-out contract: Cost must price an
// operation exactly as Charge would charge it, for the same start
// instant — that equivalence is what makes the sharded tier's
// max-of-branches arithmetic consistent with the serial path.
func TestCostMatchesCharge(t *testing.T) {
	mk := func() *Pipeline {
		p := newKV(trace.NewRegistry())
		p.SetFaults(faults.New(faults.Spec{Seed: 7, KVFailProb: 0.3, KVSlowProb: 0.3}))
		return p
	}
	ops := []struct {
		op, key string
		base    time.Duration
	}{
		{"get", "a", time.Millisecond},
		{"mget", "b", 5 * time.Millisecond},
		{"set", "c", 3 * time.Millisecond},
		{"del", "a", time.Millisecond},
	}
	charged := mk()
	var clk vclock.Clock
	priced := mk()
	var virt time.Duration
	for _, o := range ops {
		cost := priced.Cost(o.op, o.key, virt, o.base)
		charged.Charge(&clk, o.op, o.key, 0, o.base)
		virt += cost
		if clk.Now() != virt {
			t.Fatalf("%s %s: Charge total %v, Cost total %v", o.op, o.key, clk.Now(), virt)
		}
	}
}

// TestDomainNoneIgnoresInjector proves a DomainNone pipeline never
// consults the injector (the object store's configuration).
func TestDomainNoneIgnoresInjector(t *testing.T) {
	p := New(Config{Link: fastLink(), Cat: trace.CatObj, KeyLabel: "key", Domain: DomainNone}, trace.NewRegistry())
	p.SetFaults(faults.New(faults.Spec{Seed: 1, KVFailProb: 1, MQFailProb: 1}))
	var clk vclock.Clock
	p.Charge(&clk, "get", "b/k", 0, time.Millisecond)
	if clk.Now() != time.Millisecond {
		t.Fatalf("DomainNone charged %v, want %v", clk.Now(), time.Millisecond)
	}
}

// TestDomainsDrawIndependently proves KV and MQ pipelines consult
// different fault streams for the same (op, key, time) identity.
func TestDomainsDrawIndependently(t *testing.T) {
	spec := faults.Spec{Seed: 3, KVSlowProb: 0.5, MQSlowProb: 0.5}
	kv := newKV(trace.NewRegistry())
	kv.SetFaults(faults.New(spec))
	mq := New(Config{Link: fastLink(), Cat: trace.CatMQ, KeyLabel: "queue", Domain: DomainMQ}, trace.NewRegistry())
	mq.SetFaults(faults.New(spec))

	differs := false
	for i := 0; i < 64 && !differs; i++ {
		at := time.Duration(i) * time.Second
		differs = kv.Cost("op", "k", at, time.Millisecond) != mq.Cost("op", "k", at, time.Millisecond)
	}
	if !differs {
		t.Fatal("KV and MQ domains drew identical faults at 64 instants")
	}
}

// TestChargeDeterminism proves equal pipelines charge identical totals
// for an identical operation sequence.
func TestChargeDeterminism(t *testing.T) {
	run := func() time.Duration {
		p := newKV(trace.NewRegistry())
		p.SetFaults(faults.New(faults.Spec{Seed: 11, KVFailProb: 0.2, KVSlowProb: 0.2}))
		var clk vclock.Clock
		for i := 0; i < 100; i++ {
			p.Charge(&clk, "get", "k"+string(rune('a'+i%7)), i, time.Duration(i+1)*time.Millisecond)
		}
		return clk.Now()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("equal runs charged %v and %v", a, b)
	}
}

// TestDisabledPathAllocatesNothing is the zero-alloc guard: with no
// injector and no tracer the pipeline must not allocate per operation.
func TestDisabledPathAllocatesNothing(t *testing.T) {
	p := newKV(trace.NewRegistry())
	var clk vclock.Clock
	if n := testing.AllocsPerRun(1000, func() {
		p.Charge(&clk, "get", "k", 100, time.Microsecond)
		p.ChargeUntraced(&clk, "keys", "k", time.Microsecond)
	}); n != 0 {
		t.Fatalf("disabled pipeline allocates %.1f times per op", n)
	}
}

func TestSpanRecordsFaultMultiplier(t *testing.T) {
	p := newKV(trace.NewRegistry())
	p.SetFaults(faults.New(faults.Spec{Seed: 1, KVSlowProb: 1, KVSlowFactor: 10}))
	tr := trace.New()
	p.SetTracer(tr)
	var clk vclock.Clock
	tr.RegisterClock(&clk, "w0")
	p.Charge(&clk, "get", "k", 42, time.Millisecond)

	evs := tr.Events()
	if len(evs) != 1 {
		t.Fatalf("got %d events, want 1", len(evs))
	}
	ev := evs[0]
	if ev.Cat != trace.CatKV || ev.Name != "get" || ev.Track != "w0" {
		t.Fatalf("span = %+v", ev)
	}
	if fx, ok := ev.ArgFloat("fault_x"); !ok || fx != 10 {
		t.Fatalf("fault_x = %v, %v; want 10", fx, ok)
	}
	if b, ok := ev.ArgInt("bytes"); !ok || b != 42 {
		t.Fatalf("bytes = %v, %v", b, ok)
	}
}

func TestTraceRangeEmitsExplicitInterval(t *testing.T) {
	p := newKV(trace.NewRegistry())
	tr := trace.New()
	p.SetTracer(tr)
	var clk vclock.Clock
	tr.RegisterClock(&clk, "w0")

	start, end := 3*time.Millisecond, 9*time.Millisecond
	p.TraceRange(&clk, "mget", "k", start, end, 2*time.Millisecond, 64, trace.Int("shard", 2))

	evs := tr.Events()
	if len(evs) != 1 {
		t.Fatalf("got %d events, want 1", len(evs))
	}
	ev := evs[0]
	if ev.Start != start || ev.Dur != end-start {
		t.Fatalf("interval [%v +%v], want [%v +%v]", ev.Start, ev.Dur, start, end-start)
	}
	if sh, ok := ev.ArgInt("shard"); !ok || sh != 2 {
		t.Fatalf("shard arg = %v, %v", sh, ok)
	}
	// end-start (6 ms) ran past base (2 ms): the multiplier is appended.
	if fx, ok := ev.ArgFloat("fault_x"); !ok || fx != 3 {
		t.Fatalf("fault_x = %v, %v; want 3", fx, ok)
	}
}
