package model

import (
	"math"

	"mlless/internal/dataset"
	"mlless/internal/sparse"
	"mlless/internal/xrand"
)

// PMF is probabilistic matrix factorization (Salakhutdinov & Mnih) of a
// partially observed Nu×Nm rating matrix into U (Nu×r) and M (Nm×r),
// R ≈ mean + U·Mᵀ, trained by SGD on squared error with L2 priors on the
// factors (§6.1: "we factorize the partially filled matrix of review
// ratings R into two latent matrices").
//
// Parameter layout (flat): user u's factors occupy
// [u·r, (u+1)·r); item i's occupy [(Nu+i)·r, (Nu+i+1)·r).
type PMF struct {
	users, items, rank int
	mean               float64
	l2                 float64
	params             sparse.Dense
	grad               *sparse.Vector // scratch reused across Gradient calls
}

var _ Model = (*PMF)(nil)

// NewPMF builds a PMF model with factors initialized from N(0, 0.1/√r)
// using the given seed (§6.1's sanity check requires every system to
// start from identical parameters, hence seeded init).
func NewPMF(users, items, rank int, mean, l2 float64, seed uint64) *PMF {
	m := &PMF{
		users: users, items: items, rank: rank,
		mean: mean, l2: l2,
		params: sparse.NewDense((users + items) * rank),
	}
	rng := xrand.New(seed)
	scale := 0.1 / math.Sqrt(float64(rank))
	for i := range m.params {
		m.params[i] = rng.NormFloat64() * scale
	}
	return m
}

// Name implements Model.
func (m *PMF) Name() string { return "pmf" }

// NumParams implements Model.
func (m *PMF) NumParams() int { return len(m.params) }

// Params implements Model.
func (m *PMF) Params() sparse.Dense { return m.params }

// Rank returns the latent dimension.
func (m *PMF) Rank() int { return m.rank }

// userOff and itemOff locate factor blocks in the flat vector.
func (m *PMF) userOff(u int) int { return u * m.rank }
func (m *PMF) itemOff(i int) int { return (m.users + i) * m.rank }

// predict returns mean + U_u · M_i.
func (m *PMF) predict(u, i int) float64 {
	uo, io := m.userOff(u), m.itemOff(i)
	dot := 0.0
	for k := 0; k < m.rank; k++ {
		dot += m.params[uo+k] * m.params[io+k]
	}
	return m.mean + dot
}

// Gradient implements Model: averaged squared-error gradient with factor
// L2. Only the factor rows of users/items present in the batch appear in
// the sparse gradient — this is what makes PMF updates sparse and the
// significance filter effective (§6.2).
func (m *PMF) Gradient(batch []dataset.Sample) *sparse.Vector {
	if m.grad == nil {
		m.grad = sparse.NewWithCapacity(2 * m.rank * len(batch))
	}
	g := m.grad
	g.Clear()
	if len(batch) == 0 {
		return g
	}
	inv := 1 / float64(len(batch))
	for _, s := range batch {
		uo, io := m.userOff(s.User), m.itemOff(s.Item)
		e := m.predict(s.User, s.Item) - s.Label
		for k := 0; k < m.rank; k++ {
			uk, ik := m.params[uo+k], m.params[io+k]
			g.Add(uint32(uo+k), inv*(e*ik+m.l2*uk))
			g.Add(uint32(io+k), inv*(e*uk+m.l2*ik))
		}
	}
	return g
}

// Loss implements Model: RMSE over the batch (the paper's PMF metric).
func (m *PMF) Loss(batch []dataset.Sample) float64 {
	if len(batch) == 0 {
		return 0
	}
	sum := 0.0
	for _, s := range batch {
		e := m.predict(s.User, s.Item) - s.Label
		sum += e * e
	}
	return math.Sqrt(sum / float64(len(batch)))
}

// ApplyUpdate implements Model.
func (m *PMF) ApplyUpdate(u *sparse.Vector) { m.params.AddSparse(u) }

// Clone implements Model. The scratch gradient buffer is not shared.
func (m *PMF) Clone() Model {
	return &PMF{
		users: m.users, items: m.items, rank: m.rank,
		mean: m.mean, l2: m.l2,
		params: m.params.Clone(),
	}
}

// GradientWork implements Model: ~6r flops per rating (dot product plus
// two factor-row updates).
func (m *PMF) GradientWork(batchSize int) float64 {
	return float64(batchSize) * 6 * float64(m.rank)
}

// DenseGradientWork implements Model: a dense framework builds and
// scatters full embedding-matrix gradients; we charge the sparse work
// with a framework overhead plus a pass over all parameters (dense
// gradient materialization + optimizer step), which is what makes
// PyTorch slow on highly sparse MovieLens data (§6.2).
func (m *PMF) DenseGradientWork(batchSize int) float64 {
	const frameworkOverhead = 4
	return m.GradientWork(batchSize)*frameworkOverhead + 2*float64(m.NumParams())
}
