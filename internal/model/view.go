package model

import (
	"math"

	"mlless/internal/shard"
	"mlless/internal/sparse"
)

// ViewModel is the zero-copy extension of Model for the columnar shard
// tier (-data shard): implementations evaluate loss and gradient
// straight off a shard.BatchView — no []Sample materialization, no
// per-step decode. The contract mirrors Model exactly:
//
//   - LossView(b) returns the same value Loss(batch) returns on the
//     decoded batch, bit for bit. Both dot products accumulate in
//     ascending coordinate order.
//   - GradientView(b) returns the same gradient Gradient(batch)
//     returns, coordinate for coordinate and bit for bit. Per-sample
//     contributions arrive in sample order in both paths, and each
//     coordinate occurs at most once per sample, so the per-coordinate
//     accumulation sequences are identical even though the view walks
//     pairs in ascending order while a sparse vector's ForEach walks
//     hash order. The returned vector follows Model.Gradient's
//     scratch-ownership contract: valid until the next gradient call.
//
// All built-in models implement ViewModel; core validates the
// assertion at job admission for shard-mode jobs.
type ViewModel interface {
	Model
	LossView(b shard.BatchView) float64
	GradientView(b shard.BatchView) *sparse.Vector
}

var (
	_ ViewModel = (*LogReg)(nil)
	_ ViewModel = (*PMF)(nil)
	_ ViewModel = (*SVM)(nil)
)

// scoreView computes wᵀx + b for view sample k.
func (m *LogReg) scoreView(b shard.BatchView, k int) float64 {
	return b.Dot(k, m.params) + m.params[m.dim]
}

// GradientView implements ViewModel: Gradient over the view's samples.
func (m *LogReg) GradientView(b shard.BatchView) *sparse.Vector {
	if m.grad == nil {
		m.grad = sparse.New()
	}
	g := m.grad
	g.Clear()
	n := b.Len()
	if n == 0 {
		return g
	}
	inv := 1 / float64(n)
	var sampleErr float64
	add := func(i uint32, val float64) { g.Add(i, inv*sampleErr*val) }
	for k := 0; k < n; k++ {
		sampleErr = sigmoid(m.scoreView(b, k)) - b.Label(k)
		b.ForEachPair(k, add)
		g.Add(uint32(m.dim), inv*sampleErr) // bias
	}
	m.regularize(g)
	return g
}

// LossView implements ViewModel: mean BCE over the view's samples.
func (m *LogReg) LossView(b shard.BatchView) float64 {
	n := b.Len()
	if n == 0 {
		return 0
	}
	sum := 0.0
	for k := 0; k < n; k++ {
		p := sigmoid(m.scoreView(b, k))
		if b.Label(k) >= 0.5 {
			sum -= clampLog(p)
		} else {
			sum -= clampLog(1 - p)
		}
	}
	return sum / float64(n)
}

// GradientView implements ViewModel: Gradient over the view's samples.
func (m *PMF) GradientView(b shard.BatchView) *sparse.Vector {
	n := b.Len()
	if m.grad == nil {
		m.grad = sparse.NewWithCapacity(2 * m.rank * n)
	}
	g := m.grad
	g.Clear()
	if n == 0 {
		return g
	}
	inv := 1 / float64(n)
	for s := 0; s < n; s++ {
		u, i := b.User(s), b.Item(s)
		uo, io := m.userOff(u), m.itemOff(i)
		e := m.predict(u, i) - b.Rating(s)
		for k := 0; k < m.rank; k++ {
			uk, ik := m.params[uo+k], m.params[io+k]
			g.Add(uint32(uo+k), inv*(e*ik+m.l2*uk))
			g.Add(uint32(io+k), inv*(e*uk+m.l2*ik))
		}
	}
	return g
}

// LossView implements ViewModel: RMSE over the view's samples.
func (m *PMF) LossView(b shard.BatchView) float64 {
	n := b.Len()
	if n == 0 {
		return 0
	}
	sum := 0.0
	for s := 0; s < n; s++ {
		e := m.predict(b.User(s), b.Item(s)) - b.Rating(s)
		sum += e * e
	}
	return math.Sqrt(sum / float64(n))
}

// marginView is margin for view sample k.
func (m *SVM) marginView(b shard.BatchView, k int) (y, wx float64) {
	y = -1.0
	if b.Label(k) >= 0.5 {
		y = 1.0
	}
	return y, b.Dot(k, m.params) + m.params[m.dim]
}

// GradientView implements ViewModel: Gradient over the view's samples.
func (m *SVM) GradientView(b shard.BatchView) *sparse.Vector {
	if m.grad == nil {
		m.grad = sparse.New()
	}
	g := m.grad
	g.Clear()
	n := b.Len()
	if n == 0 {
		return g
	}
	inv := 1 / float64(n)
	var y float64
	add := func(i uint32, val float64) { g.Add(i, -inv*y*val) }
	for k := 0; k < n; k++ {
		var wx float64
		y, wx = m.marginView(b, k)
		if y*wx >= 1 {
			continue // correctly classified with margin: zero subgradient
		}
		b.ForEachPair(k, add)
		g.Add(uint32(m.dim), -inv*y)
	}
	m.regularize(g)
	return g
}

// LossView implements ViewModel: mean hinge loss over the view.
func (m *SVM) LossView(b shard.BatchView) float64 {
	n := b.Len()
	if n == 0 {
		return 0
	}
	sum := 0.0
	for k := 0; k < n; k++ {
		y, wx := m.marginView(b, k)
		if h := 1 - y*wx; h > 0 {
			sum += h
		}
	}
	return sum / float64(n)
}
