package model

import (
	"math"
	"testing"

	"mlless/internal/dataset"
	"mlless/internal/sparse"
	"mlless/internal/xrand"
)

// numericalGradCheck verifies the analytic gradient of m against central
// finite differences of the *objective the gradient differentiates*
// (mean BCE for LR, mean squared error halves for PMF — see callers).
func numericalGradCheck(t *testing.T, m Model, batch []dataset.Sample, objective func() float64, tol float64) {
	t.Helper()
	g := m.Gradient(batch)
	if g.Len() == 0 {
		t.Fatal("empty gradient")
	}
	params := m.Params()
	const h = 1e-6
	checked := 0
	g.ForEach(func(i uint32, analytic float64) {
		if checked >= 25 { // spot-check a bounded number of coordinates
			return
		}
		checked++
		orig := params[i]
		params[i] = orig + h
		up := objective()
		params[i] = orig - h
		down := objective()
		params[i] = orig
		numeric := (up - down) / (2 * h)
		if math.Abs(numeric-analytic) > tol*(1+math.Abs(numeric)) {
			t.Errorf("coord %d: analytic %v vs numeric %v", i, analytic, numeric)
		}
	})
}

func lrBatch(n int, seed uint64) []dataset.Sample {
	cfg := dataset.CriteoConfig{
		Samples: n, NumericFeatures: 3, CategoricalFeatures: 4,
		HashDim: 50, Cardinality: 20, Separation: 1.5, Seed: seed,
	}
	return dataset.GenerateCriteo(cfg).Samples
}

func mlBatch(n int, seed uint64) ([]dataset.Sample, dataset.MovieLensConfig) {
	cfg := dataset.MovieLensConfig{Users: 20, Items: 30, Ratings: n, Rank: 4, NoiseStd: 0.5, Seed: seed}
	return dataset.GenerateMovieLens(cfg).Samples, cfg
}

func TestLogRegGradientMatchesFiniteDifference(t *testing.T) {
	batch := lrBatch(16, 1)
	m := NewLogReg(53, 0) // no reg: Loss is exactly the differentiated objective
	r := xrand.New(2)
	for i := range m.Params() {
		m.Params()[i] = r.NormFloat64() * 0.1
	}
	numericalGradCheck(t, m, batch, func() float64 { return m.Loss(batch) }, 1e-4)
}

func TestLogRegRegularizationAddsToGradient(t *testing.T) {
	batch := lrBatch(8, 3)
	plain := NewLogReg(53, 0)
	reg := NewLogReg(53, 0.5)
	r := xrand.New(4)
	for i := range plain.Params() {
		v := r.NormFloat64()
		plain.Params()[i] = v
		reg.Params()[i] = v
	}
	gp := plain.Gradient(batch)
	gr := reg.Gradient(batch)
	diff := gr.Clone()
	diff.AddScaledVector(gp, -1)
	// diff must equal 0.5*w on the touched non-bias coords.
	ok := false
	diff.ForEach(func(i uint32, val float64) {
		if int(i) == plain.Dim() {
			return
		}
		if math.Abs(val-0.5*plain.Params()[i]) > 1e-9 {
			t.Errorf("coord %d: reg contribution %v, want %v", i, val, 0.5*plain.Params()[i])
		}
		ok = true
	})
	if !ok {
		t.Fatal("regularization changed nothing")
	}
}

func TestLogRegLossAtZeroIsLn2(t *testing.T) {
	batch := lrBatch(64, 5)
	m := NewLogReg(53, 0)
	if got := m.Loss(batch); math.Abs(got-math.Ln2) > 1e-9 {
		t.Fatalf("zero-model BCE = %v, want ln 2", got)
	}
}

func TestLogRegSGDConverges(t *testing.T) {
	batch := lrBatch(512, 6)
	m := NewLogReg(53, 0)
	initial := m.Loss(batch)
	for step := 0; step < 300; step++ {
		g := m.Gradient(batch)
		g.Scale(-0.5)
		m.ApplyUpdate(g)
	}
	final := m.Loss(batch)
	if final >= initial*0.85 {
		t.Fatalf("full-batch GD did not reduce BCE: %v -> %v", initial, final)
	}
}

func TestLogRegEmptyBatch(t *testing.T) {
	m := NewLogReg(10, 0.1)
	if m.Gradient(nil).Len() != 0 {
		t.Fatal("empty batch produced a gradient")
	}
	if m.Loss(nil) != 0 {
		t.Fatal("empty batch produced loss")
	}
}

func TestPMFGradientMatchesFiniteDifference(t *testing.T) {
	batch, cfg := mlBatch(16, 7)
	m := NewPMF(cfg.Users, cfg.Items, cfg.Rank, 3.5, 0, 11)
	// The PMF gradient differentiates mean 0.5*squared error, not RMSE.
	mse := func() float64 {
		sum := 0.0
		for _, s := range batch {
			e := m.predict(s.User, s.Item) - s.Label
			sum += 0.5 * e * e
		}
		return sum / float64(len(batch))
	}
	numericalGradCheck(t, m, batch, mse, 1e-4)
}

func TestPMFGradientTouchesOnlyBatchRows(t *testing.T) {
	batch, cfg := mlBatch(5, 8)
	m := NewPMF(cfg.Users, cfg.Items, cfg.Rank, 3.5, 0.01, 12)
	g := m.Gradient(batch)
	allowed := make(map[uint32]bool)
	for _, s := range batch {
		for k := 0; k < cfg.Rank; k++ {
			allowed[uint32(m.userOff(s.User)+k)] = true
			allowed[uint32(m.itemOff(s.Item)+k)] = true
		}
	}
	g.ForEach(func(i uint32, _ float64) {
		if !allowed[i] {
			t.Errorf("gradient touches unrelated coordinate %d", i)
		}
	})
	if g.Len() > len(allowed) {
		t.Fatalf("gradient nnz %d > allowed %d", g.Len(), len(allowed))
	}
}

func TestPMFSGDConvergesTowardNoiseFloor(t *testing.T) {
	cfg := dataset.MovieLensConfig{Users: 60, Items: 120, Ratings: 8000, Rank: 6, NoiseStd: 0.5, Seed: 9}
	ds := dataset.GenerateMovieLens(cfg)
	m := NewPMF(cfg.Users, cfg.Items, cfg.Rank, ds.RatingMean, 0.02, 13)
	batches := ds.Split(500)
	initial := m.Loss(ds.Samples)
	for epoch := 0; epoch < 30; epoch++ {
		for _, b := range batches {
			g := m.Gradient(b)
			g.Scale(-2.0)
			m.ApplyUpdate(g)
		}
	}
	final := m.Loss(ds.Samples)
	if final >= initial {
		t.Fatalf("SGD did not reduce RMSE: %v -> %v", initial, final)
	}
	if final > 1.0 {
		t.Fatalf("RMSE %v did not approach the ~0.5 noise floor", final)
	}
}

func TestPMFInitDeterministicBySeed(t *testing.T) {
	a := NewPMF(10, 10, 4, 3.5, 0, 42)
	b := NewPMF(10, 10, 4, 3.5, 0, 42)
	c := NewPMF(10, 10, 4, 3.5, 0, 43)
	pa, pb, pc := a.Params(), b.Params(), c.Params()
	differs := false
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatal("same seed produced different init")
		}
		if pa[i] != pc[i] {
			differs = true
		}
	}
	if !differs {
		t.Fatal("different seeds produced identical init")
	}
}

func TestCloneIndependence(t *testing.T) {
	batch := lrBatch(8, 10)
	m := NewLogReg(53, 0)
	c := m.Clone()
	g := m.Gradient(batch)
	g.Scale(-1)
	c.ApplyUpdate(g)
	// Original must be untouched.
	for i, v := range m.Params() {
		if v != 0 {
			t.Fatalf("clone mutation leaked into original at %d: %v", i, v)
		}
	}
	if c.Loss(batch) == m.Loss(batch) {
		t.Fatal("clone unchanged after update")
	}
}

func TestPMFCloneIndependence(t *testing.T) {
	batch, cfg := mlBatch(8, 11)
	m := NewPMF(cfg.Users, cfg.Items, cfg.Rank, 3.5, 0, 14)
	c := m.Clone()
	g := c.Gradient(batch)
	g.Scale(-0.1)
	c.ApplyUpdate(g)
	same := true
	for i := range m.Params() {
		if m.Params()[i] != c.Params()[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("clone parameters did not diverge after update")
	}
	if m.Loss(batch) == c.Loss(batch) {
		t.Fatal("clone update did not diverge")
	}
}

func TestWorkEstimatesPositiveAndOrdered(t *testing.T) {
	lr := NewLogReg(100013, 0)
	pmf := NewPMF(2160, 14400, 20, 3.5, 0.01, 1)
	for _, m := range []Model{lr, pmf} {
		sw := m.GradientWork(1000)
		dw := m.DenseGradientWork(1000)
		if sw <= 0 || dw <= 0 {
			t.Fatalf("%s: non-positive work", m.Name())
		}
		if dw <= sw {
			t.Fatalf("%s: dense work %v not greater than sparse %v", m.Name(), dw, sw)
		}
	}
}

func TestSigmoidStable(t *testing.T) {
	if s := sigmoid(1000); s != 1 {
		t.Fatalf("sigmoid(1000) = %v", s)
	}
	if s := sigmoid(-1000); s != 0 {
		t.Fatalf("sigmoid(-1000) = %v", s)
	}
	if math.Abs(sigmoid(0)-0.5) > 1e-12 {
		t.Fatal("sigmoid(0) != 0.5")
	}
}

func TestPMFParamLayout(t *testing.T) {
	m := NewPMF(3, 5, 2, 3.5, 0, 1)
	if m.NumParams() != (3+5)*2 {
		t.Fatalf("NumParams = %d", m.NumParams())
	}
	if m.userOff(2) != 4 || m.itemOff(0) != 6 || m.itemOff(4) != 14 {
		t.Fatal("flat layout offsets wrong")
	}
	if m.Rank() != 2 {
		t.Fatal("Rank wrong")
	}
}

func TestSVMGradientMatchesFiniteDifference(t *testing.T) {
	batch := lrBatch(16, 31)
	m := NewSVM(53, 0)
	r := xrand.New(32)
	for i := range m.Params() {
		m.Params()[i] = r.NormFloat64() * 0.1
	}
	// The hinge is non-differentiable exactly at margin 1; with random
	// continuous weights that event has measure zero, so the
	// finite-difference check is valid almost surely.
	numericalGradCheck(t, m, batch, func() float64 { return m.Loss(batch) }, 1e-4)
}

func TestSVMLossAtZeroIsOne(t *testing.T) {
	batch := lrBatch(64, 33)
	m := NewSVM(53, 0)
	if got := m.Loss(batch); math.Abs(got-1) > 1e-9 {
		t.Fatalf("zero-model hinge = %v, want 1", got)
	}
}

func TestSVMSubgradientDescentConverges(t *testing.T) {
	batch := lrBatch(512, 34)
	m := NewSVM(53, 1e-4)
	initial := m.Loss(batch)
	for step := 0; step < 300; step++ {
		g := m.Gradient(batch)
		g.Scale(-0.5)
		m.ApplyUpdate(g)
	}
	final := m.Loss(batch)
	if final >= initial*0.85 {
		t.Fatalf("SVM did not reduce hinge loss: %v -> %v", initial, final)
	}
}

func TestSVMMarginedSamplesContributeNothing(t *testing.T) {
	m := NewSVM(4, 0)
	// Weights classifying x=(1,0,0,0) with margin > 1 for label 1.
	m.Params()[0] = 5
	v := sparse.New()
	v.Set(0, 1)
	batch := []dataset.Sample{{Features: v, Label: 1, User: -1, Item: -1}}
	if g := m.Gradient(batch); g.Len() != 0 {
		t.Fatalf("correctly-margined sample produced gradient %v", g)
	}
	if m.Loss(batch) != 0 {
		t.Fatal("correctly-margined sample produced loss")
	}
}

func TestSVMCloneIndependence(t *testing.T) {
	batch := lrBatch(8, 35)
	m := NewSVM(53, 0)
	c := m.Clone()
	g := c.Gradient(batch)
	g.Scale(-1)
	c.ApplyUpdate(g)
	for _, v := range m.Params() {
		if v != 0 {
			t.Fatal("clone mutation leaked into original")
		}
	}
}

func TestModelNamesAndDims(t *testing.T) {
	lr := NewLogReg(10, 0)
	pmf := NewPMF(2, 3, 4, 3.5, 0, 1)
	svm := NewSVM(10, 0)
	if lr.Name() != "lr" || pmf.Name() != "pmf" || svm.Name() != "svm" {
		t.Fatal("model names wrong")
	}
	if svm.NumParams() != 11 || svm.Dim() != 10 {
		t.Fatalf("svm dims: %d params, %d dim", svm.NumParams(), svm.Dim())
	}
	if sw, dw := svm.GradientWork(100), svm.DenseGradientWork(100); sw <= 0 || dw <= sw {
		t.Fatalf("svm work estimates: %v, %v", sw, dw)
	}
}

func TestClampLogBounds(t *testing.T) {
	if v := clampLog(0); math.IsInf(v, -1) {
		t.Fatal("clampLog(0) = -Inf")
	}
	if v := clampLog(1); v != math.Log(1-1e-12) {
		t.Fatalf("clampLog(1) = %v", v)
	}
	if v := clampLog(0.5); v != math.Log(0.5) {
		t.Fatalf("clampLog(0.5) = %v", v)
	}
}
