package model

import (
	"testing"

	"mlless/internal/dataset"
	"mlless/internal/shard"
	"mlless/internal/sparse"
	"mlless/internal/xrand"
)

// viewOf packs a batch into a one-batch shard and returns its view.
func viewOf(t *testing.T, batch []dataset.Sample) shard.BatchView {
	t.Helper()
	b := shard.NewBuilder()
	for _, s := range batch {
		if s.IsRating() {
			b.AddRating(s.User, s.Item, s.Label)
		} else {
			b.AddFeature(s.Label, s.Features)
		}
	}
	b.EndBatch()
	sh, err := shard.Parse(b.Finish())
	if err != nil {
		t.Fatal(err)
	}
	return sh.Batch(0)
}

// assertViewParity drives a model down both data paths over several
// steps — applying the view path's own updates so the parameter
// trajectories are exercised, not just step 0 — and requires bitwise
// equality of loss and gradient at every step.
func assertViewParity(t *testing.T, a Model, b ViewModel, batches [][]dataset.Sample) {
	t.Helper()
	for step, batch := range batches {
		bv := viewOf(t, batch)
		if la, lb := a.Loss(batch), b.LossView(bv); la != lb {
			t.Fatalf("step %d: Loss %v, LossView %v (must be bitwise equal)", step, la, lb)
		}
		ga := a.Gradient(batch).Clone()
		gb := b.GradientView(bv)
		if !ga.Equal(gb) {
			t.Fatalf("step %d: Gradient and GradientView differ", step)
		}
		// Equal() compares values; parity must hold bitwise per coordinate.
		ga.ForEachSorted(func(i uint32, v float64) {
			if gb.Get(i) != v {
				t.Fatalf("step %d: coordinate %d %v vs %v", step, i, v, gb.Get(i))
			}
		})
		upd := ga
		upd.Scale(-0.05)
		a.ApplyUpdate(upd)
		b.ApplyUpdate(upd)
	}
}

func featureBatches(dim, steps, batchSize int, seed uint64) [][]dataset.Sample {
	rng := xrand.New(seed)
	out := make([][]dataset.Sample, steps)
	for s := range out {
		batch := make([]dataset.Sample, batchSize)
		for k := range batch {
			v := sparse.New()
			for n := rng.Intn(15) + 1; n > 0; n-- {
				v.Set(uint32(rng.Intn(dim)), rng.NormFloat64())
			}
			batch[k] = dataset.Sample{Features: v, Label: float64(rng.Intn(2)), User: -1, Item: -1}
		}
		out[s] = batch
	}
	return out
}

func TestLogRegViewParity(t *testing.T) {
	const dim = 300
	assertViewParity(t, NewLogReg(dim, 1e-3), NewLogReg(dim, 1e-3), featureBatches(dim, 6, 32, 21))
}

func TestSVMViewParity(t *testing.T) {
	const dim = 300
	assertViewParity(t, NewSVM(dim, 1e-3), NewSVM(dim, 1e-3), featureBatches(dim, 6, 32, 22))
}

func TestPMFViewParity(t *testing.T) {
	const users, items, rank = 40, 90, 6
	rng := xrand.New(23)
	batches := make([][]dataset.Sample, 6)
	for s := range batches {
		batch := make([]dataset.Sample, 32)
		for k := range batch {
			batch[k] = dataset.Sample{
				User:  rng.Intn(users),
				Item:  rng.Intn(items),
				Label: 1 + 4*rng.Float64(),
			}
		}
		batches[s] = batch
	}
	a := NewPMF(users, items, rank, 3.5, 0.02, 131)
	b := NewPMF(users, items, rank, 3.5, 0.02, 131)
	assertViewParity(t, a, b, batches)
}

func TestViewParityEmptyBatch(t *testing.T) {
	m := NewLogReg(10, 0)
	bv := viewOf(t, nil)
	if m.LossView(bv) != 0 || m.GradientView(bv).Len() != 0 {
		t.Fatal("empty view batch not a no-op")
	}
}
