// Package model defines the ML models MLLess trains (§6.1, Table 1):
// sparse logistic regression (Criteo) and probabilistic matrix
// factorization (MovieLens). Models expose their parameters as one flat
// dense vector and produce mini-batch gradients as sparse vectors over
// that flat index space — the representation the significance filter, the
// optimizers and the communication layer all share.
//
// Every model also reports the floating-point work of a gradient step
// (GradientWork), which is the simulator's unit of compute time: the
// MLLess workers run the sparse version of this work on a single vCPU,
// while the serverful baseline runs a framework-style dense variant on
// multicore VMs (see internal/baseline).
package model

import (
	"math"

	"mlless/internal/dataset"
	"mlless/internal/sparse"
)

// Model is a trainable ML model over a flat parameter vector.
//
// Implementations are not safe for concurrent mutation; in the simulator
// each worker owns a private replica (§3.1, "local replica of the
// model").
type Model interface {
	// Name identifies the model family ("lr", "pmf").
	Name() string
	// NumParams is the length of the flat parameter vector.
	NumParams() int
	// Params exposes the parameter vector. Callers must treat it as
	// owned by the model; ApplyUpdate is the mutation path.
	Params() sparse.Dense
	// Gradient returns the mini-batch loss gradient, averaged over the
	// batch, as a sparse vector over the flat parameter space.
	//
	// The returned vector is owned by the model and remains valid only
	// until the next Gradient call on the same instance (implementations
	// reuse a scratch buffer — gradient accumulation is the simulator's
	// hottest allocation site). Callers that retain it across calls must
	// Clone it.
	Gradient(batch []dataset.Sample) *sparse.Vector
	// Loss evaluates the model's training loss on a batch (BCE for
	// logistic regression, RMSE for matrix factorization).
	Loss(batch []dataset.Sample) float64
	// ApplyUpdate adds a (already learning-rate-scaled) update to the
	// parameters: x ← x + u.
	ApplyUpdate(u *sparse.Vector)
	// Clone returns an independent deep copy of the model.
	Clone() Model
	// GradientWork estimates the floating-point operations of one
	// Gradient evaluation over a batch of the given size, using the
	// model's sparse representation.
	GradientWork(batchSize int) float64
	// DenseGradientWork estimates the flops of the same evaluation in a
	// dense framework representation (how PyTorch treats these models on
	// CPU, §6.2: "PyTorch's speed is affected by the high sparsity of
	// the datasets").
	DenseGradientWork(batchSize int) float64
}

// sigmoid with guard against overflow in exp.
func sigmoid(z float64) float64 {
	if z >= 0 {
		return 1 / (1 + math.Exp(-z))
	}
	e := math.Exp(z)
	return e / (1 + e)
}

// clampLog bounds probabilities away from 0/1 before taking logs.
func clampLog(p float64) float64 {
	const eps = 1e-12
	if p < eps {
		p = eps
	} else if p > 1-eps {
		p = 1 - eps
	}
	return math.Log(p)
}
