package model

import (
	"mlless/internal/dataset"
	"mlless/internal/sparse"
)

// LogReg is sparse binary logistic regression with L2 regularization on
// the active coordinates of each mini-batch (the standard sparse-training
// approximation: regularizing all 1e5 coordinates per step would turn
// every update dense and defeat the point of sparse gradients, §5).
//
// Parameter layout: weights[0..dim) then the bias at index dim.
type LogReg struct {
	dim    int
	l2     float64
	params sparse.Dense
	grad   *sparse.Vector // scratch reused across Gradient calls
	reg    *sparse.Vector // regularization scratch, same lifetime as grad
}

var _ Model = (*LogReg)(nil)

// NewLogReg builds a zero-initialized model over dim input features.
// l2 is the per-step active-coordinate regularization strength.
func NewLogReg(dim int, l2 float64) *LogReg {
	return &LogReg{dim: dim, l2: l2, params: sparse.NewDense(dim + 1)}
}

// Name implements Model.
func (m *LogReg) Name() string { return "lr" }

// NumParams implements Model.
func (m *LogReg) NumParams() int { return len(m.params) }

// Params implements Model.
func (m *LogReg) Params() sparse.Dense { return m.params }

// Dim returns the input feature dimension (excluding the bias).
func (m *LogReg) Dim() int { return m.dim }

// score computes wᵀx + b.
func (m *LogReg) score(x *sparse.Vector) float64 {
	return x.Dot(m.params) + m.params[m.dim]
}

// Gradient implements Model: the averaged BCE gradient
// (σ(wᵀx+b) − y)·x plus active-coordinate L2.
func (m *LogReg) Gradient(batch []dataset.Sample) *sparse.Vector {
	if m.grad == nil {
		m.grad = sparse.New()
	}
	g := m.grad
	g.Clear()
	if len(batch) == 0 {
		return g
	}
	inv := 1 / float64(len(batch))
	for _, s := range batch {
		err := sigmoid(m.score(s.Features)) - s.Label
		s.Features.ForEach(func(i uint32, val float64) {
			g.Add(i, inv*err*val)
		})
		g.Add(uint32(m.dim), inv*err) // bias
	}
	m.regularize(g)
	return g
}

// regularize folds active-coordinate L2 into a gradient: only
// coordinates the batch touched are regularized. The terms are staged
// in a reused scratch (mutating g mid-iteration is not allowed) and
// folded in afterwards. Shared by the []Sample and BatchView paths.
func (m *LogReg) regularize(g *sparse.Vector) {
	if m.l2 <= 0 {
		return
	}
	if m.reg == nil {
		m.reg = sparse.New()
	}
	reg := m.reg
	reg.Clear()
	g.ForEach(func(i uint32, _ float64) {
		if int(i) != m.dim { // bias is unregularized
			reg.Add(i, m.l2*m.params[i])
		}
	})
	g.AddVector(reg)
}

// Loss implements Model: mean binary cross-entropy over the batch.
func (m *LogReg) Loss(batch []dataset.Sample) float64 {
	if len(batch) == 0 {
		return 0
	}
	sum := 0.0
	for _, s := range batch {
		p := sigmoid(m.score(s.Features))
		if s.Label >= 0.5 {
			sum -= clampLog(p)
		} else {
			sum -= clampLog(1 - p)
		}
	}
	return sum / float64(len(batch))
}

// ApplyUpdate implements Model.
func (m *LogReg) ApplyUpdate(u *sparse.Vector) { m.params.AddSparse(u) }

// Clone implements Model. The scratch buffers are not shared.
func (m *LogReg) Clone() Model {
	return &LogReg{dim: m.dim, l2: m.l2, params: m.params.Clone()}
}

// avgNNZ is the expected non-zeros per Criteo-shaped sample (13 numeric
// + 26 categorical); used only for work estimation.
const lrAvgNNZ = 39

// GradientWork implements Model: a dot product and an axpy over the
// active coordinates per sample (~4 flops per non-zero).
func (m *LogReg) GradientWork(batchSize int) float64 {
	return float64(batchSize) * lrAvgNNZ * 4
}

// DenseGradientWork implements Model: a dense framework materializes the
// full weight row per sample for the dot/axpy pair. In practice
// vectorized dense kernels skip most of that via batched GEMM, so we
// charge a batched-dense estimate: one pass over the full parameter
// vector per batch (optimizer + gradient densification) plus the sparse
// sample work with a constant framework overhead.
func (m *LogReg) DenseGradientWork(batchSize int) float64 {
	const frameworkOverhead = 4
	return m.GradientWork(batchSize)*frameworkOverhead + 2*float64(m.NumParams())
}
