package trace

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"mlless/internal/vclock"
)

func TestNilTracerIsSafeAndFree(t *testing.T) {
	var tr *Tracer
	var clk vclock.Clock
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	// Every method must be a no-op on a nil receiver.
	tr.RegisterClock(&clk, "worker-0")
	tr.SpanOn("worker-0", CatEngine, "fetch", 0, time.Second)
	tr.InstantOn("worker-0", CatSched, "evict", 0)
	tr.SpanAt(&clk, CatKV, "get", 0)
	tr.InstantAt(&clk, CatFaaS, "terminate", 0)
	if tr.Len() != 0 || tr.Events() != nil {
		t.Fatal("nil tracer recorded something")
	}

	// The Enabled-guard idiom must cost zero allocations when disabled:
	// this is the contract that lets every substrate hold a plain handle
	// on its hot path.
	allocs := testing.AllocsPerRun(1000, func() {
		if tr.Enabled() {
			tr.SpanAt(&clk, CatKV, "get", 0, Str("key", "k"), Int("bytes", 8))
		}
	})
	if allocs != 0 {
		t.Fatalf("disabled emission path allocates %.1f times per op", allocs)
	}
}

func TestEventOrderIsContentBasedNotEmissionBased(t *testing.T) {
	// Two tracers record the same events in opposite emission order, as
	// racing worker goroutines would; the exported bytes must match.
	emit := func(tr *Tracer, reverse bool) {
		events := []func(){
			func() { tr.SpanOn("worker-0", CatEngine, "fetch", 10, 20, Int("step", 1)) },
			func() { tr.SpanOn("worker-1", CatEngine, "fetch", 10, 25, Int("step", 1)) },
			func() { tr.InstantOn("supervisor", CatSched, "evict", 30, Int("worker", 1)) },
			func() { tr.SpanOn("worker-0", CatKV, "set", 5, 7, Str("key", "a")) },
		}
		if reverse {
			for i := len(events) - 1; i >= 0; i-- {
				events[i]()
			}
		} else {
			for _, f := range events {
				f()
			}
		}
	}
	a, b := New(), New()
	emit(a, false)
	emit(b, true)

	var bufA, bufB bytes.Buffer
	if err := WriteChrome(&bufA, a.Events()); err != nil {
		t.Fatal(err)
	}
	if err := WriteChrome(&bufB, b.Events()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bufA.Bytes(), bufB.Bytes()) {
		t.Fatalf("emission order leaked into the export:\n%s\nvs\n%s", bufA.String(), bufB.String())
	}
}

func TestConcurrentEmissionIsDeterministic(t *testing.T) {
	// The parallel driver completes spans from racing worker goroutines,
	// so events arrive interleaved in nondeterministic emission order —
	// including spans that finish after later-starting spans on other
	// tracks. The content-based total order must absorb that: a
	// concurrent emission and a sequential one of the same events export
	// byte-identical files.
	const tracks, spans = 8, 50
	emitTrack := func(tr *Tracer, w int) {
		track := fmt.Sprintf("worker-%d", w)
		for s := 0; s < spans; s++ {
			// Starts interleave across tracks; durations vary so span
			// completion order differs from start order.
			start := time.Duration(s*tracks + w)
			tr.SpanOn(track, CatEngine, "compute", start, start+time.Duration(1+(w+s)%5),
				Int("step", s))
		}
	}

	seq := New()
	for w := 0; w < tracks; w++ {
		emitTrack(seq, w)
	}

	par := New()
	var wg sync.WaitGroup
	for w := 0; w < tracks; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			emitTrack(par, w)
		}(w)
	}
	wg.Wait()

	var bufSeq, bufPar bytes.Buffer
	if err := WriteChrome(&bufSeq, seq.Events()); err != nil {
		t.Fatal(err)
	}
	if err := WriteChrome(&bufPar, par.Events()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bufSeq.Bytes(), bufPar.Bytes()) {
		t.Fatal("concurrent emission leaked into the export")
	}
}

func TestClockRegistry(t *testing.T) {
	tr := New()
	var reg, unreg vclock.Clock
	tr.RegisterClock(&reg, "worker-3")
	reg.Advance(time.Second)
	unreg.Advance(time.Second)

	tr.SpanAt(&reg, CatKV, "get", 500*time.Millisecond)
	tr.SpanAt(&unreg, CatKV, "get", 500*time.Millisecond) // dropped: janitor clock
	tr.InstantAt(&unreg, CatFaaS, "terminate", time.Second)

	evs := tr.Events()
	if len(evs) != 1 {
		t.Fatalf("got %d events, want 1 (unregistered clocks must drop)", len(evs))
	}
	ev := evs[0]
	if ev.Track != "worker-3" || ev.Start != 500*time.Millisecond || ev.Dur != 500*time.Millisecond {
		t.Fatalf("span: %+v", ev)
	}

	// Re-registering moves the clock to a new track.
	tr.RegisterClock(&reg, "worker-4")
	tr.SpanAt(&reg, CatKV, "get", time.Second)
	evs = tr.Events()
	if evs[len(evs)-1].Track != "worker-4" {
		t.Fatalf("re-registration did not move the clock: %+v", evs)
	}
}

func TestSpanClampsNegativeDuration(t *testing.T) {
	tr := New()
	tr.SpanOn("w", CatEngine, "x", 10*time.Millisecond, 5*time.Millisecond)
	if d := tr.Events()[0].Dur; d != 0 {
		t.Fatalf("negative span not clamped: %v", d)
	}
}

func TestWriteChromeIsValidTraceJSON(t *testing.T) {
	tr := New()
	tr.SpanOn("worker-0", CatEngine, "compute", time.Millisecond, 3*time.Millisecond,
		Int("step", 1), Float("fault_x", 10), Str("key", `a"b`))
	tr.SpanOn("worker-10", CatEngine, "compute", time.Millisecond, 2*time.Millisecond)
	tr.SpanOn("supervisor", CatEngine, "aggregate", 3*time.Millisecond, 4*time.Millisecond)
	tr.InstantOn("supervisor", CatSched, "evict", 4*time.Millisecond, Int("worker", 0))

	var buf bytes.Buffer
	if err := WriteChrome(&buf, tr.Events()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string         `json:"name"`
			Cat  string         `json:"cat"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			S    string         `json:"s"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}

	// Track ids: supervisor first, then workers in numeric (not
	// alphabetical) order — worker-10 after worker-0.
	tids := map[string]int{}
	var spans, instants, metas int
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			metas++
			if ev.Name == "thread_name" {
				tids[ev.Args["name"].(string)] = ev.Tid
			}
		case "X":
			spans++
			if ev.Pid != 1 {
				t.Fatalf("span pid = %d", ev.Pid)
			}
		case "i":
			instants++
			if ev.S != "t" {
				t.Fatalf("instant scope = %q", ev.S)
			}
		default:
			t.Fatalf("unexpected phase %q", ev.Ph)
		}
	}
	if spans != 3 || instants != 1 || metas == 0 {
		t.Fatalf("spans=%d instants=%d metas=%d", spans, instants, metas)
	}
	if !(tids["supervisor"] < tids["worker-0"] && tids["worker-0"] < tids["worker-10"]) {
		t.Fatalf("track order wrong: %v", tids)
	}

	// Span timestamps are microseconds: the 1 ms start renders as 1000.
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" && ev.Name == "aggregate" && ev.Ts != 3000 {
			t.Fatalf("aggregate ts = %v µs, want 3000", ev.Ts)
		}
		if ev.Ph == "X" && ev.Name == "compute" && ev.Tid == tids["worker-0"] {
			if ev.Args["fault_x"].(float64) != 10 || ev.Args["key"].(string) != `a"b` {
				t.Fatalf("args round-trip: %v", ev.Args)
			}
		}
	}
}

func TestTimelineStats(t *testing.T) {
	tr := New()
	// Step 1: three workers with known fetch durations 10/20/90 ms.
	for i, d := range []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 90 * time.Millisecond} {
		tr.SpanOn("worker-"+string(rune('0'+i)), CatEngine, "fetch", 0, d, Int("step", 1))
	}
	// Non-phase spans and spans without a step arg are ignored.
	tr.SpanOn("worker-0", CatKV, "fetch", 0, time.Second, Int("step", 1))
	tr.SpanOn("worker-0", CatEngine, "fetch", 0, time.Second)
	tr.SpanOn("worker-0", CatEngine, "barrier", 0, 5*time.Millisecond, Int("step", 2))

	steps := Timeline(tr.Events())
	if len(steps) != 2 || steps[0].Step != 1 || steps[1].Step != 2 {
		t.Fatalf("steps: %+v", steps)
	}
	st := steps[0].Stat("fetch")
	if st.N != 3 || st.P50 != 20*time.Millisecond || st.Max != 90*time.Millisecond {
		t.Fatalf("fetch stats: %+v", st)
	}
	if st.Mean != 40*time.Millisecond {
		t.Fatalf("fetch mean: %v", st.Mean)
	}
	if steps[0].Stat("pull").N != 0 {
		t.Fatalf("absent phase has samples")
	}

	var buf bytes.Buffer
	if err := WriteTimeline(&buf, tr.Events()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "barrier") || !strings.Contains(out, "20.00") {
		t.Fatalf("timeline table:\n%s", out)
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	r.Counter("kv.gets").Add(3)
	r.Counter("kv.gets").Inc() // same counter
	r.Counter("faas.cold_starts").Inc()
	r.Counter("obj.puts") // registered, never fired

	snap := r.Snapshot()
	want := []Metric{
		{Name: "faas.cold_starts", Value: 1},
		{Name: "kv.gets", Value: 4},
		{Name: "obj.puts", Value: 0},
	}
	if len(snap) != len(want) {
		t.Fatalf("snapshot: %+v", snap)
	}
	for i := range want {
		if snap[i] != want[i] {
			t.Fatalf("snapshot[%d] = %+v, want %+v", i, snap[i], want[i])
		}
	}

	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "kv.gets") {
		t.Fatalf("text:\n%s", buf.String())
	}
}
