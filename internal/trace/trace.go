// Package trace is the unified observability layer of the simulator: a
// deterministic, virtual-time structured tracer plus a shared metrics
// registry that subsumes the per-substrate counter structs.
//
// Every event is stamped with vclock virtual time — never wall time —
// so a trace is a pure function of the job's inputs: identical seeds
// yield byte-identical trace files regardless of how the engine's
// worker goroutines are scheduled (events are totally ordered at export
// by their content, not by emission order). Spans cover substrate
// operations (kvstore/objstore/msgqueue request + transfer), FaaS
// lifecycle (cold/warm start, relaunch generations, reclaim and
// recovery), engine phases (fetch/compute/publish/pull/barrier per
// worker per step) and scheduler decisions; see DESIGN.md §7 for the
// span taxonomy.
//
// A nil *Tracer is a valid, disabled tracer: every method is a no-op on
// a nil receiver, so instrumented components hold a plain handle and
// pay one predictable branch — and zero allocations — when tracing is
// off. Call sites that build event arguments must guard with Enabled()
// so the argument slice is never materialized on a disabled path:
//
//	if tr.Enabled() {
//		tr.SpanOn(track, "engine", "fetch", start, end, trace.Int("step", s))
//	}
package trace

import (
	"sort"
	"strconv"
	"sync"
	"time"

	"mlless/internal/vclock"
)

// Event categories used across the simulator. Categories group spans in
// the Chrome trace viewer and let analysis passes (Timeline) select the
// engine phases.
const (
	CatKV     = "kv"     // key-value store operations
	CatObj    = "obj"    // object storage operations
	CatMQ     = "mq"     // message broker operations
	CatFaaS   = "faas"   // function lifecycle: starts, relaunch, terminate
	CatEngine = "engine" // per-step training phases
	CatSched  = "sched"  // auto-tuner decisions and evictions
	CatFault  = "fault"  // injected-fault recovery work
)

type argKind uint8

const (
	argStr argKind = iota
	argInt
	argFloat
)

// Arg is one key-value annotation on an event. Args keep their
// insertion order, so rendered traces are deterministic.
type Arg struct {
	Key  string
	kind argKind
	s    string
	i    int64
	f    float64
}

// Str annotates an event with a string value.
func Str(key, val string) Arg { return Arg{Key: key, kind: argStr, s: val} }

// Int annotates an event with an integer value.
func Int(key string, val int) Arg { return Arg{Key: key, kind: argInt, i: int64(val)} }

// I64 annotates an event with an int64 value.
func I64(key string, val int64) Arg { return Arg{Key: key, kind: argInt, i: val} }

// Float annotates an event with a float value.
func Float(key string, val float64) Arg { return Arg{Key: key, kind: argFloat, f: val} }

// Secs annotates an event with a duration rendered in fractional
// seconds (the unit of the exported JSON).
func Secs(key string, d time.Duration) Arg { return Float(key, d.Seconds()) }

// renderValue returns the JSON encoding of the arg's value.
func (a Arg) renderValue() string {
	switch a.kind {
	case argInt:
		return strconv.FormatInt(a.i, 10)
	case argFloat:
		return strconv.FormatFloat(a.f, 'g', -1, 64)
	default:
		return strconv.Quote(a.s)
	}
}

// Event is one recorded trace record: a span (Phase 'X', with a
// duration) or an instant (Phase 'i').
type Event struct {
	// Track names the logical thread the event belongs to ("worker-3",
	// "supervisor", "cluster").
	Track string
	// Cat is one of the Cat* categories.
	Cat string
	// Name identifies the operation ("fetch", "cold-start", "evict").
	Name string
	// Phase is 'X' for spans and 'i' for instants (Chrome trace-event
	// phase codes).
	Phase byte
	// Start is the event's virtual start time.
	Start time.Duration
	// Dur is the span length (zero for instants).
	Dur time.Duration
	// Args are ordered annotations.
	Args []Arg

	seq uint64 // emission tiebreaker among fully identical events
}

// ArgInt returns the integer arg with the given key.
func (e Event) ArgInt(key string) (int64, bool) {
	for _, a := range e.Args {
		if a.Key == key && a.kind == argInt {
			return a.i, true
		}
	}
	return 0, false
}

// ArgFloat returns the float arg with the given key.
func (e Event) ArgFloat(key string) (float64, bool) {
	for _, a := range e.Args {
		if a.Key == key && a.kind == argFloat {
			return a.f, true
		}
	}
	return 0, false
}

// ArgStr returns the string arg with the given key.
func (e Event) ArgStr(key string) (string, bool) {
	for _, a := range e.Args {
		if a.Key == key && a.kind == argStr {
			return a.s, true
		}
	}
	return "", false
}

// less is the deterministic total order on events: content first, the
// emission sequence only as a final tiebreaker among byte-identical
// events (where relative order cannot affect the exported file).
func (e *Event) less(o *Event) bool {
	if e.Start != o.Start {
		return e.Start < o.Start
	}
	if e.Track != o.Track {
		return e.Track < o.Track
	}
	if e.Name != o.Name {
		return e.Name < o.Name
	}
	if e.Cat != o.Cat {
		return e.Cat < o.Cat
	}
	if e.Phase != o.Phase {
		return e.Phase < o.Phase
	}
	if e.Dur != o.Dur {
		return e.Dur < o.Dur
	}
	if len(e.Args) != len(o.Args) {
		return len(e.Args) < len(o.Args)
	}
	for i := range e.Args {
		a, b := e.Args[i], o.Args[i]
		if a.Key != b.Key {
			return a.Key < b.Key
		}
		if a.kind != b.kind {
			return a.kind < b.kind
		}
		if a.s != b.s {
			return a.s < b.s
		}
		if a.i != b.i {
			return a.i < b.i
		}
		if a.f != b.f {
			return a.f < b.f
		}
	}
	return e.seq < o.seq
}

// Tracer records events stamped with virtual time. It is safe for
// concurrent use; a nil *Tracer is a disabled tracer on which every
// method is a no-op.
type Tracer struct {
	mu     sync.Mutex
	events []Event
	clocks map[*vclock.Clock]string
	seq    uint64
}

// New returns an empty, enabled tracer.
func New() *Tracer {
	return &Tracer{clocks: make(map[*vclock.Clock]string)}
}

// Enabled reports whether the tracer records anything. Guard argument
// construction with it so disabled call sites allocate nothing.
func (t *Tracer) Enabled() bool { return t != nil }

// RegisterClock associates a virtual clock with a track, so substrate
// operations charged to that clock land on the owning component's
// timeline. Re-registering a clock moves it; clocks never registered
// are ignored by the clock-addressed emitters (their operations belong
// to harness bookkeeping, not to the traced job).
func (t *Tracer) RegisterClock(clk *vclock.Clock, track string) {
	if t == nil || clk == nil {
		return
	}
	t.mu.Lock()
	t.clocks[clk] = track
	t.mu.Unlock()
}

// emit appends an event under the tracer lock.
func (t *Tracer) emit(ev Event) {
	t.mu.Lock()
	ev.seq = t.seq
	t.seq++
	t.events = append(t.events, ev)
	t.mu.Unlock()
}

// SpanOn records a span on an explicitly named track.
func (t *Tracer) SpanOn(track, cat, name string, start, end time.Duration, args ...Arg) {
	if t == nil {
		return
	}
	if end < start {
		end = start
	}
	t.emit(Event{Track: track, Cat: cat, Name: name, Phase: 'X', Start: start, Dur: end - start, Args: args})
}

// InstantOn records an instant event on an explicitly named track.
func (t *Tracer) InstantOn(track, cat, name string, at time.Duration, args ...Arg) {
	if t == nil {
		return
	}
	t.emit(Event{Track: track, Cat: cat, Name: name, Phase: 'i', Start: at, Args: args})
}

// SpanAt records a span ending at the clock's current time on the
// clock's registered track. Unregistered clocks drop the event.
func (t *Tracer) SpanAt(clk *vclock.Clock, cat, name string, start time.Duration, args ...Arg) {
	if t == nil {
		return
	}
	t.mu.Lock()
	track, ok := t.clocks[clk]
	t.mu.Unlock()
	if !ok {
		return
	}
	t.SpanOn(track, cat, name, start, clk.Now(), args...)
}

// SpanRangeAt records a span over an explicit [start, end] interval on
// the clock's registered track. Fan-out operations — a sharded KV fetch
// that charges the caller the maximum of its parallel shard transfers —
// use it to emit per-branch spans whose ends precede the clock's
// post-fan-out time. Unregistered clocks drop the event.
func (t *Tracer) SpanRangeAt(clk *vclock.Clock, cat, name string, start, end time.Duration, args ...Arg) {
	if t == nil {
		return
	}
	t.mu.Lock()
	track, ok := t.clocks[clk]
	t.mu.Unlock()
	if !ok {
		return
	}
	t.SpanOn(track, cat, name, start, end, args...)
}

// InstantAt records an instant at an explicit virtual time on the
// clock's registered track. Unregistered clocks drop the event.
func (t *Tracer) InstantAt(clk *vclock.Clock, cat, name string, at time.Duration, args ...Arg) {
	if t == nil {
		return
	}
	t.mu.Lock()
	track, ok := t.clocks[clk]
	t.mu.Unlock()
	if !ok {
		return
	}
	t.InstantOn(track, cat, name, at, args...)
}

// Events returns the recorded events in their deterministic total
// order. The returned slice is a copy; the tracer can keep recording.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]Event, len(t.events))
	copy(out, t.events)
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].less(&out[j]) })
	return out
}

// Len reports the number of recorded events.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}
