package trace

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is one monotonic metric. Updates are lock-free atomic adds,
// so hot substrate paths no longer copy whole snapshot structs under a
// mutex to bump a counter.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Metric is one named counter value in a snapshot.
type Metric struct {
	Name  string
	Value int64
}

// Registry is the unified metrics namespace of a simulated deployment:
// every substrate resolves its counters from one shared registry under
// a dotted name ("kv.gets", "faas.cold_starts"), so a single snapshot
// covers the whole cluster. It is safe for concurrent use.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{counters: make(map[string]*Counter)}
}

// Counter returns the counter registered under name, creating it at
// zero on first use. Components resolve their counters once at
// construction and then update them lock-free.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Snapshot returns every counter sorted by name. Zero-valued counters
// are included: a registered metric that never fired is itself signal.
func (r *Registry) Snapshot() []Metric {
	r.mu.Lock()
	out := make([]Metric, 0, len(r.counters))
	for name, c := range r.counters {
		out = append(out, Metric{Name: name, Value: c.Load()})
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// WriteText renders the snapshot as an aligned name/value table.
func (r *Registry) WriteText(w io.Writer) error {
	snap := r.Snapshot()
	width := 0
	for _, m := range snap {
		if len(m.Name) > width {
			width = len(m.Name)
		}
	}
	for _, m := range snap {
		if _, err := fmt.Fprintf(w, "%-*s %d\n", width, m.Name, m.Value); err != nil {
			return err
		}
	}
	return nil
}
