package trace

import (
	"fmt"
	"io"
	"sort"
	"time"
)

// PhaseNames are the engine-phase span names that make up a training
// step's time decomposition (the §5 t_step breakdown): the mini-batch
// fetch from object storage, local gradient/optimizer/filter compute,
// publishing the significant update, collective reduction rounds,
// pulling and merging peer updates, and the BSP barrier wait. "merge"
// is the one-shot reintegration of an evicted peer's replica; "reduce"
// occurs only under the scatter/tree exchange strategies.
var PhaseNames = []string{"merge", "fetch", "compute", "publish", "reduce", "pull", "barrier"}

// PhaseStat aggregates one phase's durations across workers.
type PhaseStat struct {
	// N is the sample count (one per worker that ran the phase).
	N int
	// Mean, P50, P95 and Max summarize the per-worker durations.
	Mean time.Duration
	P50  time.Duration
	P95  time.Duration
	Max  time.Duration
}

// StepBreakdown is one step's phase decomposition.
type StepBreakdown struct {
	// Step is the 1-based training step.
	Step int
	// ByPhase maps a PhaseNames entry to its cross-worker stats;
	// phases that did not occur are absent.
	ByPhase map[string]PhaseStat
}

// Stat returns the stats for one phase (zero value if absent).
func (b StepBreakdown) Stat(name string) PhaseStat { return b.ByPhase[name] }

// Timeline aggregates the engine-phase spans of a trace into per-step
// breakdowns, ordered by step. Spans are selected by category
// CatEngine, a name in PhaseNames and an integer "step" arg; everything
// else (substrate spans, lifecycle events) is ignored.
func Timeline(events []Event) []StepBreakdown {
	type key struct {
		step  int
		phase string
	}
	phaseSet := make(map[string]bool, len(PhaseNames))
	for _, n := range PhaseNames {
		phaseSet[n] = true
	}
	samples := make(map[key][]time.Duration)
	for i := range events {
		ev := &events[i]
		if ev.Cat != CatEngine || ev.Phase != 'X' || !phaseSet[ev.Name] {
			continue
		}
		step, ok := ev.ArgInt("step")
		if !ok {
			continue
		}
		k := key{step: int(step), phase: ev.Name}
		samples[k] = append(samples[k], ev.Dur)
	}

	bySteps := make(map[int]*StepBreakdown)
	var steps []int
	for k, ds := range samples {
		b, ok := bySteps[k.step]
		if !ok {
			b = &StepBreakdown{Step: k.step, ByPhase: make(map[string]PhaseStat)}
			bySteps[k.step] = b
			steps = append(steps, k.step)
		}
		b.ByPhase[k.phase] = summarize(ds)
	}
	sort.Ints(steps)
	out := make([]StepBreakdown, len(steps))
	for i, s := range steps {
		out[i] = *bySteps[s]
	}
	return out
}

// summarize computes order statistics over a sample of durations.
func summarize(ds []time.Duration) PhaseStat {
	sorted := make([]time.Duration, len(ds))
	copy(sorted, ds)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var sum time.Duration
	for _, d := range sorted {
		sum += d
	}
	n := len(sorted)
	return PhaseStat{
		N:    n,
		Mean: sum / time.Duration(n),
		P50:  quantile(sorted, 0.50),
		P95:  quantile(sorted, 0.95),
		Max:  sorted[n-1],
	}
}

// quantile returns the nearest-rank q-quantile of a sorted sample.
func quantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q * float64(len(sorted)-1))
	return sorted[idx]
}

// WriteTimeline renders the per-step decomposition as a table: one row
// per step with the cross-worker median of each phase (barrier shows
// the max — the slowest worker paces the step), followed by a summary
// block with p50/p95/max over all (step, worker) samples per phase.
func WriteTimeline(w io.Writer, events []Event) error {
	steps := Timeline(events)
	if len(steps) == 0 {
		_, err := fmt.Fprintln(w, "timeline: no engine phase spans recorded")
		return err
	}
	ms := func(d time.Duration) string { return fmt.Sprintf("%8.2f", float64(d)/float64(time.Millisecond)) }

	if _, err := fmt.Fprintf(w, "%6s %8s %8s %8s %8s %8s %8s %8s %4s\n",
		"step", "merge", "fetch", "compute", "publish", "reduce", "pull", "barrier", "n"); err != nil {
		return err
	}
	all := make(map[string][]time.Duration)
	for _, b := range steps {
		n := 0
		cols := make([]string, 0, len(PhaseNames))
		for _, phase := range PhaseNames {
			st := b.Stat(phase)
			if st.N > n {
				n = st.N
			}
			v := st.P50
			if phase == "barrier" {
				v = st.Max
			}
			cols = append(cols, ms(v))
			if st.N > 0 {
				all[phase] = append(all[phase], v)
			}
		}
		if _, err := fmt.Fprintf(w, "%6d %s %s %s %s %s %s %s %4d\n",
			b.Step, cols[0], cols[1], cols[2], cols[3], cols[4], cols[5], cols[6], n); err != nil {
			return err
		}
	}

	if _, err := fmt.Fprintf(w, "\n%-8s %10s %10s %10s (ms across steps)\n", "phase", "p50", "p95", "max"); err != nil {
		return err
	}
	for _, phase := range PhaseNames {
		ds := all[phase]
		if len(ds) == 0 {
			continue
		}
		st := summarize(ds)
		if _, err := fmt.Fprintf(w, "%-8s %10s %10s %10s\n",
			phase, ms(st.P50), ms(st.P95), ms(st.Max)); err != nil {
			return err
		}
	}
	return nil
}
