package trace

import (
	"bufio"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"
)

// WriteChrome renders events (as returned by Tracer.Events) in the
// Chrome trace-event JSON format, loadable in Perfetto or
// chrome://tracing. The job is one process; every track becomes a
// thread, with the supervisor first and workers in numeric order, so a
// faulted auto-tuner run reads top-to-bottom: straggler cold starts,
// reclaim→recover sequences and scale-in evictions all on one
// timeline. Timestamps are virtual microseconds; billed dollars appear
// as "usd" args on the terminate/reclaim events.
//
// The output is deterministic: given equal event slices it is
// byte-identical, and Tracer.Events orders events by content, so equal
// seeds produce equal files (see DESIGN.md §7).
func WriteChrome(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	tids := trackIDs(events)

	bw.WriteString("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n")
	first := true
	comma := func() {
		if !first {
			bw.WriteString(",\n")
		}
		first = false
	}

	comma()
	bw.WriteString(`{"ph":"M","pid":1,"tid":0,"name":"process_name","args":{"name":"mlless"}}`)
	tracks := make([]string, 0, len(tids))
	for track := range tids {
		tracks = append(tracks, track)
	}
	sort.Slice(tracks, func(i, j int) bool { return tids[tracks[i]] < tids[tracks[j]] })
	for _, track := range tracks {
		tid := strconv.Itoa(tids[track])
		comma()
		bw.WriteString(`{"ph":"M","pid":1,"tid":` + tid + `,"name":"thread_name","args":{"name":` + strconv.Quote(track) + `}}`)
		comma()
		bw.WriteString(`{"ph":"M","pid":1,"tid":` + tid + `,"name":"thread_sort_index","args":{"sort_index":` + tid + `}}`)
	}

	for i := range events {
		ev := &events[i]
		comma()
		bw.WriteString(`{"name":` + strconv.Quote(ev.Name))
		bw.WriteString(`,"cat":` + strconv.Quote(ev.Cat))
		bw.WriteString(`,"ph":"` + string(ev.Phase) + `"`)
		bw.WriteString(`,"ts":` + micros(ev.Start))
		if ev.Phase == 'X' {
			bw.WriteString(`,"dur":` + micros(ev.Dur))
		} else {
			bw.WriteString(`,"s":"t"`)
		}
		bw.WriteString(`,"pid":1,"tid":` + strconv.Itoa(tids[ev.Track]))
		if len(ev.Args) > 0 {
			bw.WriteString(`,"args":{`)
			for j, a := range ev.Args {
				if j > 0 {
					bw.WriteByte(',')
				}
				bw.WriteString(strconv.Quote(a.Key) + ":" + a.renderValue())
			}
			bw.WriteByte('}')
		}
		bw.WriteByte('}')
	}
	bw.WriteString("\n]}\n")
	return bw.Flush()
}

// micros renders a virtual duration as trace-event microseconds with
// nanosecond precision, deterministically.
func micros(d time.Duration) string {
	return strconv.FormatFloat(float64(d)/1e3, 'f', 3, 64)
}

// trackIDs assigns thread ids in display order: the supervisor first,
// workers by numeric id, remaining tracks alphabetically. Assignment
// depends only on the set of track names, never on emission order.
func trackIDs(events []Event) map[string]int {
	seen := make(map[string]bool)
	var tracks []string
	for i := range events {
		if t := events[i].Track; !seen[t] {
			seen[t] = true
			tracks = append(tracks, t)
		}
	}
	sort.Slice(tracks, func(i, j int) bool {
		ri, ni := trackRank(tracks[i])
		rj, nj := trackRank(tracks[j])
		if ri != rj {
			return ri < rj
		}
		if ni != nj {
			return ni < nj
		}
		return tracks[i] < tracks[j]
	})
	ids := make(map[string]int, len(tracks))
	for i, t := range tracks {
		ids[t] = i + 1
	}
	return ids
}

// trackRank orders track classes for display; the int is the worker
// index for worker tracks.
func trackRank(track string) (int, int) {
	if track == "supervisor" {
		return 0, 0
	}
	if n, ok := strings.CutPrefix(track, "worker-"); ok {
		if id, err := strconv.Atoi(n); err == nil {
			return 1, id
		}
	}
	return 2, 0
}
