// Package baseline holds the cross-system sanity check of §6.1: with a
// fixed seed and a single worker, the per-step convergence of MLLess,
// the serverful (PyTorch-like) trainer and the PyWren-like trainer must
// be exactly identical — "no technical advantage of one system over the
// other due to subtle model artifacts".
package baseline

import (
	"testing"

	"mlless/internal/baseline/pywren"
	"mlless/internal/baseline/serverful"
	"mlless/internal/core"
	"mlless/internal/dataset"
	"mlless/internal/model"
	"mlless/internal/optimizer"
	"mlless/internal/vclock"
)

// stage prepares one cluster + job pair per system over identical data.
func stageJob(t *testing.T, pmf bool) (*core.Cluster, core.Job) {
	t.Helper()
	cl := core.NewCluster()
	var clk vclock.Clock
	var job core.Job
	if pmf {
		cfg := dataset.MovieLensConfig{Users: 100, Items: 400, Ratings: 15000, Rank: 6, NoiseStd: 0.6, Seed: 41}
		ds := dataset.GenerateMovieLens(cfg)
		n := dataset.Stage(ds, cl.COS, &clk, "data", 300, 13)
		job = core.Job{
			Spec:       core.Spec{Workers: 1, MaxSteps: 40},
			Model:      model.NewPMF(cfg.Users, cfg.Items, cfg.Rank, ds.RatingMean, 0.02, 43),
			Optimizer:  optimizer.NewNesterov(optimizer.Constant(1.0), 0.9),
			Bucket:     "data",
			NumBatches: n,
			BatchSize:  300,
		}
	} else {
		cfg := dataset.CriteoConfig{
			Samples: 3000, NumericFeatures: 5, CategoricalFeatures: 8,
			HashDim: 1000, Cardinality: 100, Separation: 1.6, Seed: 47,
		}
		ds := dataset.GenerateCriteo(cfg)
		n := dataset.Stage(ds, cl.COS, &clk, "data", 300, 13)
		job = core.Job{
			Spec:       core.Spec{Workers: 1, MaxSteps: 40},
			Model:      model.NewLogReg(cfg.HashDim+cfg.NumericFeatures, 0),
			Optimizer:  optimizer.NewAdamDefaults(optimizer.Constant(0.05)),
			Bucket:     "data",
			NumBatches: n,
			BatchSize:  300,
		}
	}
	return cl, job
}

func rawLosses(res *core.Result) []float64 {
	out := make([]float64, len(res.History))
	for i, p := range res.History {
		out[i] = p.RawLoss
	}
	return out
}

func TestSanityCheckParity(t *testing.T) {
	for _, tc := range []struct {
		name string
		pmf  bool
	}{
		{"LR", false},
		{"PMF", true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			clA, jobA := stageJob(t, tc.pmf)
			mlless, err := core.Run(clA, jobA)
			if err != nil {
				t.Fatal(err)
			}
			clB, jobB := stageJob(t, tc.pmf)
			pt, err := serverful.Train(clB.COS, jobB, serverful.DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			clC, jobC := stageJob(t, tc.pmf)
			pw, err := pywren.Train(clC.Platform, clC.COS, jobC, pywren.DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}

			a, b, c := rawLosses(mlless), rawLosses(pt), rawLosses(pw)
			if len(a) != len(b) || len(a) != len(c) {
				t.Fatalf("step counts differ: mlless=%d pytorch=%d pywren=%d", len(a), len(b), len(c))
			}
			for i := range a {
				if a[i] != b[i] || a[i] != c[i] {
					t.Fatalf("step %d losses diverge: mlless=%v pytorch=%v pywren=%v",
						i+1, a[i], b[i], c[i])
				}
			}
		})
	}
}

// TestSystemsDifferInTimeNotMath pins the complementary property: the
// same 1-worker runs above must produce different wall-clock and cost
// profiles even though the math is identical.
func TestSystemsDifferInTimeNotMath(t *testing.T) {
	clA, jobA := stageJob(t, true)
	mlless, err := core.Run(clA, jobA)
	if err != nil {
		t.Fatal(err)
	}
	clB, jobB := stageJob(t, true)
	pt, err := serverful.Train(clB.COS, jobB, serverful.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	clC, jobC := stageJob(t, true)
	pw, err := pywren.Train(clC.Platform, clC.COS, jobC, pywren.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if mlless.ExecTime == pt.ExecTime || mlless.ExecTime == pw.ExecTime {
		t.Fatal("systems models suspiciously identical in time")
	}
	// PyWren must be the slowest of the three (§6.2's headline).
	if pw.ExecTime <= mlless.ExecTime || pw.ExecTime <= pt.ExecTime {
		t.Fatalf("PyWren (%v) not slowest: mlless=%v pytorch=%v", pw.ExecTime, mlless.ExecTime, pt.ExecTime)
	}
}
