// Package serverful implements the paper's IaaS baseline (§6.1): a
// PyTorch-style data-parallel trainer on a cluster of reserved VMs,
// synchronizing dense gradients with Gloo's ring all-reduce every step.
//
// The training mathematics are identical to MLLess — same models, same
// mini-batch plan, same averaged-gradient updates — which is the paper's
// sanity check (§6.1): "we fixed a random seed, and trained all models in
// each system using a single worker [and] verified that the convergence
// rate at each step was exactly the same in all systems". What differs is
// the systems behaviour:
//
//   - gradients travel dense: the all-reduce moves NumParams·8 bytes per
//     step regardless of batch sparsity (Gloo's all-reduce has no sparse
//     path), and the dense optimizer touches every parameter;
//   - the framework pays a sparse-data handling penalty (dense
//     (de)serialization, dense embedding-table scatter), the effect §6.2
//     observes: "PyTorch's speed is affected by the high sparsity of the
//     datasets as it occurs to TensorFlow";
//   - billing is reservation-based: every VM is paid for the whole job,
//     idle or not.
package serverful

import (
	"fmt"
	"math"
	"time"

	"mlless/internal/allreduce"
	"mlless/internal/core"
	"mlless/internal/cost"
	"mlless/internal/dataset"
	"mlless/internal/fit"
	"mlless/internal/netmodel"
	"mlless/internal/objstore"
	"mlless/internal/sparse"
	"mlless/internal/trace"
	"mlless/internal/vclock"
)

// Config parameterizes the VM cluster and framework model.
type Config struct {
	// ProcsPerVM is how many worker processes share one VM (B1.4x8 has
	// 4 vCPUs; the paper runs 24 workers on 6 VMs).
	ProcsPerVM int
	// VMHourlyPrice is the per-VM rental (Table 2: B1.4x8 at $0.20/h).
	VMHourlyPrice float64
	// BootTime is VM cluster startup (>1 min for 6 VMs, §7). The paper
	// excludes it from every comparison and Train does the same; the
	// startup ablation bench adds it back explicitly.
	BootTime time.Duration
	// Link is the VM-to-VM network path for the all-reduce.
	Link netmodel.Link
	// FlopsPerSecond is one core's dense-kernel throughput (MKL).
	FlopsPerSecond float64
	// DenseParamThroughput is the per-step framework overhead on sparse
	// data, expressed as parameters handled per second: every step the
	// framework materializes, (de)serializes and optimizes the FULL
	// dense parameter space regardless of batch sparsity, at this
	// effective rate. It is the one empirically calibrated constant of
	// the reproduction: the paper measured PyTorch at ≈10 s/step on the
	// 1.64M-parameter ML-10M PMF (≈6 µs/parameter) and attributes it to
	// dense handling of sparse data (§6.2); the default sits in that
	// measured range. See EXPERIMENTS.md.
	DenseParamThroughput float64
}

// DefaultConfig returns the calibrated baseline.
func DefaultConfig() Config {
	return Config{
		ProcsPerVM:           4,
		VMHourlyPrice:        cost.PriceB14x8PerHour,
		BootTime:             60 * time.Second,
		Link:                 netmodel.VMPeerLink(),
		FlopsPerSecond:       2e9,
		DenseParamThroughput: 250e3,
	}
}

func (c Config) withDefaults() Config {
	if c.ProcsPerVM <= 0 {
		c.ProcsPerVM = 4
	}
	if c.VMHourlyPrice <= 0 {
		c.VMHourlyPrice = cost.PriceB14x8PerHour
	}
	if c.FlopsPerSecond <= 0 {
		c.FlopsPerSecond = 2e9
	}
	if c.DenseParamThroughput <= 0 {
		c.DenseParamThroughput = 250e3
	}
	return c
}

// Train runs the job on the serverful cluster and returns a result in
// the same shape MLLess produces, so the experiment harness compares the
// systems uniformly. The job's Sync, Significance and AutoTune fields are
// ignored: VM-based ML systems have neither significance filtering nor
// scale-in ("abilities that are not available in VM-based ML systems such
// as PyTorch", §1).
func Train(cos *objstore.Store, job core.Job, cfg Config) (*core.Result, error) {
	spec := job.Spec
	if spec.Workers <= 0 {
		return nil, core.ErrNoWorkers
	}
	if job.NumBatches <= 0 {
		return nil, core.ErrNoData
	}
	if job.Model == nil || job.Optimizer == nil {
		return nil, fmt.Errorf("serverful: job needs a model and an optimizer")
	}
	cfg = cfg.withDefaults()
	if spec.MaxSteps <= 0 {
		spec.MaxSteps = 5000
	}
	if spec.LossAlpha <= 0 {
		spec.LossAlpha = 0.25
	}

	p := spec.Workers
	mdl := job.Model.Clone()
	opt := job.Optimizer.Clone()
	plan := dataset.NewPlan(job.NumBatches, p)
	batches := dataset.NewCache(cos, job.Bucket)
	smoother := fit.NewEWMA(spec.LossAlpha)

	denseBytes := sparse.DenseEncodedSize(mdl.NumParams())
	var clk vclock.Clock // cluster-wide step clock (workers are symmetric)
	var history []core.LossPoint
	converged := false
	diverged := false
	prev := time.Duration(0)

	tr := job.Trace
	gradSum := sparse.New() // accumulated across workers; models reuse a scratch gradient
	for step := 1; step <= spec.MaxSteps; step++ {
		stepStart := clk.Now()
		// Every worker fetches its own mini-batch concurrently; the step
		// waits for the slowest fetch.
		var slowest time.Duration
		gradSum.Clear()
		lossSum := 0.0
		var batchLen int
		for w := 0; w < p; w++ {
			var fetch vclock.Clock
			batch, err := batches.Fetch(&fetch, plan.BatchFor(w, step))
			if err != nil {
				return nil, fmt.Errorf("serverful: worker %d step %d: %w", w, step, err)
			}
			if fetch.Now() > slowest {
				slowest = fetch.Now()
			}
			lossSum += mdl.Loss(batch)
			gradSum.AddVector(mdl.Gradient(batch))
			batchLen = len(batch)
		}
		clk.Advance(slowest)
		if tr.Enabled() {
			// The cluster advances in lock-step (workers are symmetric),
			// so the whole pool is one "cluster" track.
			tr.SpanOn("cluster", trace.CatEngine, "fetch", stepStart, clk.Now(),
				trace.Int("step", step))
		}
		computeStart := clk.Now()

		// Per-worker math on the batch (MKL-speed kernels)...
		computeSecs := 1.5 * mdl.GradientWork(batchLen) / cfg.FlopsPerSecond
		// ...plus the framework's dense pass over the whole parameter
		// space (gradient materialization, (de)serialization, dense
		// optimizer state) — the empirically dominant cost on sparse
		// models (§6.2).
		computeSecs += float64(mdl.NumParams()) / cfg.DenseParamThroughput
		clk.Advance(time.Duration(computeSecs * float64(time.Second)))
		if tr.Enabled() {
			tr.SpanOn("cluster", trace.CatEngine, "compute", computeStart, clk.Now(),
				trace.Int("step", step))
		}

		// Ring all-reduce of the dense gradient.
		allreduceStart := clk.Now()
		clk.Advance(allreduce.RingTime(cfg.Link, p, denseBytes))
		if tr.Enabled() {
			tr.SpanOn("cluster", trace.CatEngine, "allreduce", allreduceStart, clk.Now(),
				trace.Int("step", step), trace.Int("bytes", denseBytes*p))
		}

		// Identical averaged update on every replica (we keep one).
		gradSum.Scale(1 / float64(p))
		u := opt.Step(step, gradSum)
		mdl.ApplyUpdate(u)

		raw := lossSum / float64(p)
		smoothed := smoother.Update(raw)
		now := clk.Now()
		history = append(history, core.LossPoint{
			Step: step, Time: now, Loss: smoothed, RawLoss: raw,
			Workers: p, UpdateBytes: int64(denseBytes) * int64(p), Duration: now - prev,
		})
		prev = now

		if math.IsNaN(raw) || math.IsInf(raw, 0) {
			diverged = true
			break
		}
		if spec.TargetLoss > 0 && smoothed <= spec.TargetLoss {
			converged = true
			break
		}
		if spec.MaxWallClock > 0 && now >= spec.MaxWallClock {
			break
		}
	}

	execTime := clk.Now()
	numVMs := (p + cfg.ProcsPerVM - 1) / cfg.ProcsPerVM
	var meter cost.Meter
	for i := 0; i < numVMs; i++ {
		meter.AddVM(fmt.Sprintf("pytorch-vm-%d-b1.4x8", i), cfg.VMHourlyPrice, execTime)
	}

	finalLoss := 0.0
	if len(history) > 0 {
		finalLoss = history[len(history)-1].Loss
	}
	var totalBytes int64
	for _, pnt := range history {
		totalBytes += pnt.UpdateBytes
	}
	return &core.Result{
		Converged:        converged,
		Diverged:         diverged,
		ExecTime:         execTime,
		Steps:            len(history),
		FinalLoss:        finalLoss,
		History:          history,
		Cost:             meter.Report(),
		TotalUpdateBytes: totalBytes,
	}, nil
}
