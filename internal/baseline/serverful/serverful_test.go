package serverful

import (
	"strings"
	"testing"
	"time"

	"mlless/internal/core"
	"mlless/internal/dataset"
	"mlless/internal/model"
	"mlless/internal/netmodel"
	"mlless/internal/objstore"
	"mlless/internal/optimizer"
	"mlless/internal/vclock"
)

func stagePMF(t *testing.T) (*objstore.Store, core.Job) {
	t.Helper()
	cos := objstore.New(netmodel.COSLink())
	cfg := dataset.MovieLensConfig{Users: 120, Items: 500, Ratings: 20000, Rank: 8, NoiseStd: 0.6, Seed: 5}
	ds := dataset.GenerateMovieLens(cfg)
	var clk vclock.Clock
	n := dataset.Stage(ds, cos, &clk, "ml", 400, 3)
	return cos, core.Job{
		Spec:       core.Spec{Workers: 4, TargetLoss: 0.80, MaxSteps: 1000},
		Model:      model.NewPMF(cfg.Users, cfg.Items, cfg.Rank, ds.RatingMean, 0.02, 9),
		Optimizer:  optimizer.NewNesterov(optimizer.Constant(1.0), 0.9),
		Bucket:     "ml",
		NumBatches: n,
		BatchSize:  400,
	}
}

func TestConverges(t *testing.T) {
	cos, job := stagePMF(t)
	res, err := Train(cos, job, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("did not converge: final %v after %d steps", res.FinalLoss, res.Steps)
	}
	if res.ExecTime <= 0 {
		t.Fatal("no virtual time elapsed")
	}
}

func TestDenseCommunicationEveryStep(t *testing.T) {
	cos, job := stagePMF(t)
	job.Spec.TargetLoss = 0
	job.Spec.MaxSteps = 10
	res, err := Train(cos, job, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	dense := int64(job.Model.NumParams()*8+4) * int64(job.Spec.Workers)
	for _, p := range res.History {
		if p.UpdateBytes != dense {
			t.Fatalf("step %d moved %d bytes, want dense %d", p.Step, p.UpdateBytes, dense)
		}
	}
}

func TestBilledPerVM(t *testing.T) {
	cos, job := stagePMF(t)
	job.Spec.Workers = 6 // 2 VMs at 4 procs/VM
	job.Spec.TargetLoss = 0
	job.Spec.MaxSteps = 5
	res, err := Train(cos, job, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	vms := 0
	for _, c := range res.Cost.Components {
		if !strings.Contains(c.Name, "pytorch-vm") || c.Kind != "vm" {
			t.Fatalf("unexpected component %+v", c)
		}
		if c.Duration != res.ExecTime {
			t.Fatal("VM billed for less than the whole job (reservation model violated)")
		}
		vms++
	}
	if vms != 2 {
		t.Fatalf("billed %d VMs, want 2", vms)
	}
}

func TestDenseParamThroughputSlowsSteps(t *testing.T) {
	cos, job := stagePMF(t)
	job.Spec.TargetLoss = 0
	job.Spec.MaxSteps = 10
	fast := DefaultConfig()
	fast.DenseParamThroughput = 50e6 // nearly free framework
	slow := DefaultConfig()
	slow.DenseParamThroughput = 100e3
	fr, err := Train(cos, job, fast)
	if err != nil {
		t.Fatal(err)
	}
	sr, err := Train(cos, job, slow)
	if err != nil {
		t.Fatal(err)
	}
	if sr.ExecTime <= fr.ExecTime {
		t.Fatalf("slow framework (%v) not slower than fast (%v)", sr.ExecTime, fr.ExecTime)
	}
	// Identical math regardless of the systems model.
	if sr.FinalLoss != fr.FinalLoss {
		t.Fatal("systems knobs changed the mathematics")
	}
}

func TestJobPrototypeNotMutated(t *testing.T) {
	cos, job := stagePMF(t)
	job.Spec.TargetLoss = 0
	job.Spec.MaxSteps = 5
	if _, err := Train(cos, job, DefaultConfig()); err != nil {
		t.Fatal(err)
	}
	// Running twice from the same prototypes must be identical.
	a, err := Train(cos, job, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Train(cos, job, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if a.FinalLoss != b.FinalLoss {
		t.Fatal("prototype model/optimizer mutated by Train")
	}
}

func TestValidation(t *testing.T) {
	cos, job := stagePMF(t)
	bad := job
	bad.Spec.Workers = 0
	if _, err := Train(cos, bad, DefaultConfig()); err == nil {
		t.Fatal("zero workers accepted")
	}
	bad = job
	bad.NumBatches = 0
	if _, err := Train(cos, bad, DefaultConfig()); err == nil {
		t.Fatal("no data accepted")
	}
	bad = job
	bad.Model = nil
	if _, err := Train(cos, bad, DefaultConfig()); err == nil {
		t.Fatal("nil model accepted")
	}
}

func TestMaxWallClock(t *testing.T) {
	cos, job := stagePMF(t)
	job.Spec.TargetLoss = 0
	job.Spec.MaxSteps = 100000
	job.Spec.MaxWallClock = 3 * time.Second
	res, err := Train(cos, job, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.ExecTime > 6*time.Second {
		t.Fatalf("ran to %v despite 3s cap", res.ExecTime)
	}
}
