package pywren

import (
	"strings"
	"testing"
	"time"

	"mlless/internal/core"
	"mlless/internal/dataset"
	"mlless/internal/faas"
	"mlless/internal/model"
	"mlless/internal/netmodel"
	"mlless/internal/objstore"
	"mlless/internal/optimizer"
	"mlless/internal/vclock"
)

func stageLR(t *testing.T) (*faas.Platform, *objstore.Store, core.Job) {
	t.Helper()
	cos := objstore.New(netmodel.COSLink())
	cfg := dataset.CriteoConfig{
		Samples: 4000, NumericFeatures: 5, CategoricalFeatures: 8,
		HashDim: 2000, Cardinality: 100, Separation: 1.6, Seed: 17,
	}
	ds := dataset.GenerateCriteo(cfg)
	var clk vclock.Clock
	n := dataset.Stage(ds, cos, &clk, "criteo", 200, 7)
	return faas.NewPlatform(faas.DefaultConfig()), cos, core.Job{
		Spec:       core.Spec{Workers: 4, TargetLoss: 0.64, MaxSteps: 500},
		Model:      model.NewLogReg(cfg.HashDim+cfg.NumericFeatures, 0),
		Optimizer:  optimizer.NewAdamDefaults(optimizer.Constant(0.05)),
		Bucket:     "criteo",
		NumBatches: n,
		BatchSize:  200,
	}
}

func TestConverges(t *testing.T) {
	platform, cos, job := stageLR(t)
	res, err := Train(platform, cos, job, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("did not converge: final %v after %d steps", res.FinalLoss, res.Steps)
	}
}

func TestMuchSlowerThanCompiled(t *testing.T) {
	// The Python slowdown and per-round COS traffic must make steps far
	// slower than the slowdown-free configuration.
	platform, cos, job := stageLR(t)
	job.Spec.TargetLoss = 0
	job.Spec.MaxSteps = 10
	slow, err := Train(platform, cos, job, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.PythonSlowdown = 1
	fast, err := Train(platform, cos, job, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if slow.ExecTime <= fast.ExecTime {
		t.Fatalf("slowdown had no effect: %v vs %v", slow.ExecTime, fast.ExecTime)
	}
	if slow.FinalLoss != fast.FinalLoss {
		t.Fatal("systems knobs changed the mathematics")
	}
}

func TestBillsFunctionsOnly(t *testing.T) {
	platform, cos, job := stageLR(t)
	job.Spec.TargetLoss = 0
	job.Spec.MaxSteps = 5
	res, err := Train(platform, cos, job, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var sawMap, sawReduce bool
	for _, c := range res.Cost.Components {
		if c.Kind != "function" {
			t.Fatalf("PyWren billed a non-function: %+v", c)
		}
		if strings.Contains(c.Name, "map") {
			sawMap = true
		}
		if strings.Contains(c.Name, "reduce") {
			sawReduce = true
		}
	}
	if !sawMap || !sawReduce {
		t.Fatalf("missing components: %+v", res.Cost.Components)
	}
	if res.Cost.Total <= 0 {
		t.Fatal("zero cost")
	}
}

func TestDeterministic(t *testing.T) {
	platform, cos, job := stageLR(t)
	job.Spec.TargetLoss = 0
	job.Spec.MaxSteps = 20
	a, err := Train(platform, cos, job, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Train(platform, cos, job, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if a.FinalLoss != b.FinalLoss || a.ExecTime != b.ExecTime {
		t.Fatal("non-deterministic")
	}
}

func TestConcurrentJobsDoNotCollide(t *testing.T) {
	platform, cos, job := stageLR(t)
	job.Spec.TargetLoss = 0
	job.Spec.MaxSteps = 5
	done := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func() {
			_, err := Train(platform, cos, job, DefaultConfig())
			done <- err
		}()
	}
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func TestValidation(t *testing.T) {
	platform, cos, job := stageLR(t)
	bad := job
	bad.Spec.Workers = 0
	if _, err := Train(platform, cos, bad, DefaultConfig()); err == nil {
		t.Fatal("zero workers accepted")
	}
	bad = job
	bad.Optimizer = nil
	if _, err := Train(platform, cos, bad, DefaultConfig()); err == nil {
		t.Fatal("nil optimizer accepted")
	}
}

func TestMaxWallClock(t *testing.T) {
	platform, cos, job := stageLR(t)
	job.Spec.TargetLoss = 0
	job.Spec.MaxSteps = 100000
	job.Spec.MaxWallClock = 5 * time.Second
	res, err := Train(platform, cos, job, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.ExecTime > 15*time.Second {
		t.Fatalf("ran to %v despite 5s cap", res.ExecTime)
	}
}
