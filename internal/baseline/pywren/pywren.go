// Package pywren implements the paper's second baseline (§6.1): a
// non-specialized, pure serverless map-reduce trainer in the style of
// PyWren-IBM. Each training step is a map-reduce round:
//
//	map:    P functions each load the current model from object storage,
//	        fetch a mini-batch, compute a local update in pure Python
//	        speed, and write the update back to object storage;
//	reduce: one function reads the P updates, aggregates them, applies
//	        the optimizer, and writes the new model to object storage.
//
// All communication goes through the object store "to keep its pure
// serverless, general-purpose architecture" (§6.1) — no Redis, no
// message broker — and nothing is specialized for sparsity or iteration,
// which is exactly why "PyWren-IBM is very inefficient in all jobs"
// (§6.2): slow storage on the critical path each step, dense model
// objects shuttled around, fresh function activations per map phase, and
// non-compiled update computation.
//
// The ML math is still real and identical to the other systems (the
// §6.1 sanity check).
package pywren

import (
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"mlless/internal/core"
	"mlless/internal/cost"
	"mlless/internal/dataset"
	"mlless/internal/faas"
	"mlless/internal/fit"
	"mlless/internal/objstore"
	"mlless/internal/sparse"
	"mlless/internal/trace"
	"mlless/internal/vclock"
)

// Config parameterizes the map-reduce trainer.
type Config struct {
	// PythonSlowdown multiplies compute time relative to the compiled
	// MLLess kernels: the paper re-implemented PyWren-IBM's runtime in
	// Cython precisely because the pure Python path "is painful[ly] slow
	// for ML training" (§5).
	PythonSlowdown float64
	// BaseFlopsPerSecond is the compiled single-vCPU throughput the
	// slowdown applies to (MLLess's compute model).
	BaseFlopsPerSecond float64
	// MemoryMiB sizes the map/reduce functions (default 2048).
	MemoryMiB int
}

// DefaultConfig returns the calibrated configuration.
func DefaultConfig() Config {
	return Config{
		PythonSlowdown:     25,
		BaseFlopsPerSecond: core.DefaultComputeModel().FlopsPerSecond,
		MemoryMiB:          2048,
	}
}

var jobCounter int64

// nextJobID allocates a unique state-object suffix per Train call so
// concurrent jobs on one object store never collide.
func nextJobID() int64 { return atomic.AddInt64(&jobCounter, 1) }

func (c Config) withDefaults() Config {
	if c.PythonSlowdown <= 0 {
		c.PythonSlowdown = 25
	}
	if c.BaseFlopsPerSecond <= 0 {
		c.BaseFlopsPerSecond = core.DefaultComputeModel().FlopsPerSecond
	}
	if c.MemoryMiB <= 0 {
		c.MemoryMiB = 2048
	}
	return c
}

// Train runs the job as iterated map-reduce over the object store and
// the FaaS platform. Sync/Significance/AutoTune in the spec are ignored
// (PyWren-IBM has no such specializations).
func Train(platform *faas.Platform, cos *objstore.Store, job core.Job, cfg Config) (*core.Result, error) {
	spec := job.Spec
	if spec.Workers <= 0 {
		return nil, core.ErrNoWorkers
	}
	if job.NumBatches <= 0 {
		return nil, core.ErrNoData
	}
	if job.Model == nil || job.Optimizer == nil {
		return nil, fmt.Errorf("pywren: job needs a model and an optimizer")
	}
	cfg = cfg.withDefaults()
	if spec.MaxSteps <= 0 {
		spec.MaxSteps = 5000
	}
	if spec.LossAlpha <= 0 {
		spec.LossAlpha = 0.25
	}

	p := spec.Workers
	mdl := job.Model.Clone()
	opt := job.Optimizer.Clone()
	plan := dataset.NewPlan(job.NumBatches, p)
	batches := dataset.NewCache(cos, job.Bucket)
	smoother := fit.NewEWMA(spec.LossAlpha)
	faasCfg := platform.Config()

	// The model travels as a dense object (non-specialized framework).
	denseBytes := sparse.DenseEncodedSize(mdl.NumParams())
	const bucketState = "pywren-state"
	stateKey := fmt.Sprintf("model-%d", nextJobID())
	var seed vclock.Clock
	cos.Put(&seed, bucketState, stateKey, make([]byte, denseBytes))

	var clk vclock.Clock // round clock
	var meter cost.Meter
	var history []core.LossPoint
	var mapBilledTotal, reduceBilledTotal time.Duration
	gradSum := sparse.New() // models reuse a scratch gradient buffer
	converged := false
	diverged := false
	prev := time.Duration(0)
	warm := false

	computeTime := func(flops float64) time.Duration {
		secs := flops * cfg.PythonSlowdown / cfg.BaseFlopsPerSecond
		return time.Duration(secs * float64(time.Second))
	}

	tr := job.Trace
	for step := 1; step <= spec.MaxSteps; step++ {
		stepStart := clk.Now()
		// ---- Map phase: P fresh function activations.
		start := faasCfg.ColdStart
		if warm {
			start = faasCfg.WarmStart
		}
		warm = true

		gradSum.Clear()
		lossSum := 0.0
		var slowestMap time.Duration
		var mapBilled time.Duration
		for w := 0; w < p; w++ {
			var mclk vclock.Clock
			mclk.Advance(start)
			// Load the current model from object storage.
			if _, err := cos.Get(&mclk, bucketState, stateKey); err != nil {
				return nil, fmt.Errorf("pywren: map %d step %d: %w", w, step, err)
			}
			batch, err := batches.Fetch(&mclk, plan.BatchFor(w, step))
			if err != nil {
				return nil, fmt.Errorf("pywren: map %d step %d: %w", w, step, err)
			}
			lossSum += mdl.Loss(batch)
			gradSum.AddVector(mdl.Gradient(batch))
			mclk.Advance(computeTime(1.5 * mdl.GradientWork(len(batch))))
			// Write the local update back — densely.
			cos.Put(&mclk, bucketState, fmt.Sprintf("%s-upd-%d", stateKey, w), make([]byte, denseBytes))
			if mclk.Now() > slowestMap {
				slowestMap = mclk.Now()
			}
			mapBilled += mclk.Now()
		}
		clk.Advance(slowestMap)
		mapBilledTotal += mapBilled
		if tr.Enabled() {
			// One "mapreduce" track: rounds are sequential, so the span
			// pair map→reduce per step is the whole story.
			tr.SpanOn("mapreduce", trace.CatEngine, "map", stepStart, clk.Now(),
				trace.Int("step", step), trace.Int("maps", p))
		}
		reduceStart := clk.Now()

		// ---- Reduce phase: one function aggregates and updates.
		var rclk vclock.Clock
		rclk.Advance(faasCfg.WarmStart)
		for w := 0; w < p; w++ {
			if _, err := cos.Get(&rclk, bucketState, fmt.Sprintf("%s-upd-%d", stateKey, w)); err != nil {
				return nil, fmt.Errorf("pywren: reduce step %d: %w", step, err)
			}
		}
		gradSum.Scale(1 / float64(p))
		u := opt.Step(step, gradSum)
		mdl.ApplyUpdate(u)
		rclk.Advance(computeTime(float64(p) * float64(mdl.NumParams()))) // dense aggregation
		cos.Put(&rclk, bucketState, stateKey, make([]byte, denseBytes))  // new model
		clk.Advance(rclk.Now())
		reduceBilledTotal += rclk.Now()
		if tr.Enabled() {
			tr.SpanOn("mapreduce", trace.CatEngine, "reduce", reduceStart, clk.Now(),
				trace.Int("step", step))
		}

		raw := lossSum / float64(p)
		smoothed := smoother.Update(raw)
		now := clk.Now()
		history = append(history, core.LossPoint{
			Step: step, Time: now, Loss: smoothed, RawLoss: raw,
			Workers: p, UpdateBytes: int64(denseBytes) * int64(p+1), Duration: now - prev,
		})
		prev = now

		if math.IsNaN(raw) || math.IsInf(raw, 0) {
			diverged = true
			break
		}
		if spec.TargetLoss > 0 && smoothed <= spec.TargetLoss {
			converged = true
			break
		}
		if spec.MaxWallClock > 0 && now >= spec.MaxWallClock {
			break
		}
	}

	meter.AddFunction(fmt.Sprintf("map-functions-x%d", p), mapBilledTotal, float64(cfg.MemoryMiB)/1024)
	meter.AddFunction("reduce-function", reduceBilledTotal, float64(cfg.MemoryMiB)/1024)

	finalLoss := 0.0
	if len(history) > 0 {
		finalLoss = history[len(history)-1].Loss
	}
	var totalBytes int64
	for _, pnt := range history {
		totalBytes += pnt.UpdateBytes
	}
	return &core.Result{
		Converged:        converged,
		Diverged:         diverged,
		ExecTime:         clk.Now(),
		Steps:            len(history),
		FinalLoss:        finalLoss,
		History:          history,
		Cost:             meter.Report(),
		TotalUpdateBytes: totalBytes,
	}, nil
}
