package consistency

import (
	"math"
	"testing"
	"testing/quick"

	"mlless/internal/sparse"
	"mlless/internal/xrand"
)

func vec(entries map[uint32]float64) *sparse.Vector {
	v := sparse.New()
	for i, val := range entries {
		v.Set(i, val)
	}
	return v
}

func TestModeString(t *testing.T) {
	if BSP.String() != "bsp" || ISP.String() != "isp" || Mode(0).String() != "unknown" {
		t.Fatal("Mode.String wrong")
	}
}

func TestZeroThresholdFlushesEverything(t *testing.T) {
	f := NewFilter(0)
	params := sparse.Dense{100, 100, 100}
	u := vec(map[uint32]float64{0: 1e-9, 2: -1e-9})
	out := f.Add(1, u, params)
	if !out.Equal(u) {
		t.Fatalf("v=0 must flush everything: got %v", out)
	}
	if f.Residual().Len() != 0 {
		t.Fatal("v=0 left a residual")
	}
}

func TestISPReducesToBSPCorollary(t *testing.T) {
	// Appendix A corollary: with v = 0, ISP ≡ BSP. Simulate two replicas
	// receiving identical update streams through filters with v = 0 and
	// assert the flushed streams are identical to the raw ones at every
	// step.
	r := xrand.New(1)
	f := NewFilter(0)
	params := sparse.NewDense(50)
	for t0 := 1; t0 <= 100; t0++ {
		u := sparse.New()
		for k := 0; k < 5; k++ {
			u.Set(uint32(r.Intn(50)), r.NormFloat64())
		}
		out := f.Add(t0, u, params)
		if !out.Equal(u) {
			t.Fatalf("step %d: v=0 filter altered the update", t0)
		}
		params.AddSparse(u)
	}
}

func TestSmallUpdatesAccumulate(t *testing.T) {
	f := NewFilter(0.5)
	params := sparse.Dense{1000}
	// Relative change 1e-3 << v_1 = 0.5: withheld.
	out := f.Add(1, vec(map[uint32]float64{0: 1}), params)
	if out.Len() != 0 {
		t.Fatalf("insignificant update flushed: %v", out)
	}
	if f.Residual().Get(0) != 1 {
		t.Fatal("residual not accumulated")
	}
	// Second identical update: still below threshold, residual = 2.
	out = f.Add(2, vec(map[uint32]float64{0: 1}), params)
	if out.Len() != 0 || f.Residual().Get(0) != 2 {
		t.Fatalf("residual = %v", f.Residual().Get(0))
	}
}

func TestAccumulatedUpdateEventuallySignificant(t *testing.T) {
	f := NewFilter(0.5)
	params := sparse.Dense{10}
	var flushedAt int
	for step := 1; step <= 20; step++ {
		out := f.Add(step, vec(map[uint32]float64{0: 1}), params)
		if out.Len() > 0 {
			flushedAt = step
			// The complete history is encoded in one update (§4.1).
			if got := out.Get(0); got != float64(step) {
				t.Fatalf("flushed %v at step %d, want accumulated %d", got, step, step)
			}
			break
		}
	}
	if flushedAt == 0 {
		t.Fatal("accumulated update never became significant")
	}
	if f.Residual().Len() != 0 {
		t.Fatal("flush left residual behind")
	}
}

func TestThresholdDecaysAsInvSqrt(t *testing.T) {
	f := NewFilter(0.7)
	if f.Threshold(1) != 0.7 {
		t.Fatalf("v_1 = %v", f.Threshold(1))
	}
	if math.Abs(f.Threshold(4)-0.35) > 1e-12 {
		t.Fatalf("v_4 = %v", f.Threshold(4))
	}
	if f.Threshold(0) != 0.7 {
		t.Fatal("non-positive step must clamp to 1")
	}
}

func TestDecayMakesLateUpdatesFlow(t *testing.T) {
	// An update of fixed relative size 0.1 is insignificant at step 1
	// (v=0.7) but significant at step 100 (v_100 = 0.07).
	f := NewFilter(0.7)
	params := sparse.Dense{10}
	if out := f.Add(1, vec(map[uint32]float64{0: 1}), params); out.Len() != 0 {
		t.Fatal("relative 0.1 flushed at step 1")
	}
	f2 := NewFilter(0.7)
	if out := f2.Add(100, vec(map[uint32]float64{0: 1}), params); out.Len() != 1 {
		t.Fatal("relative 0.1 withheld at step 100")
	}
}

func TestZeroParamTreatedAsSignificant(t *testing.T) {
	f := NewFilter(0.7)
	params := sparse.Dense{0, 5}
	out := f.Add(1, vec(map[uint32]float64{0: 1e-12}), params)
	if out.Get(0) != 1e-12 {
		t.Fatal("update to zero-valued parameter must be significant")
	}
}

func TestOutOfRangeIndexTreatedAsZeroParam(t *testing.T) {
	f := NewFilter(0.7)
	params := sparse.Dense{5}
	out := f.Add(1, vec(map[uint32]float64{10: 0.5}), params)
	if out.Get(10) != 0.5 {
		t.Fatal("out-of-range coordinate must flush")
	}
}

func TestMixedSignificance(t *testing.T) {
	f := NewFilter(0.5)
	params := sparse.Dense{1, 1000}
	u := vec(map[uint32]float64{0: 1, 1: 1}) // relative 1.0 and 0.001
	out := f.Add(1, u, params)
	if out.Get(0) != 1 || out.Get(1) != 0 {
		t.Fatalf("mixed filter: %v", out)
	}
	if f.Residual().Get(1) != 1 || f.Residual().Get(0) != 0 {
		t.Fatalf("residual: %v", f.Residual())
	}
}

func TestBoundedDivergenceInvariant(t *testing.T) {
	// ISP's core guarantee (Theorem 1 machinery): what a peer misses is
	// exactly the residual, and each withheld coordinate is small
	// relative to its parameter. Simulate a stream and verify that at
	// every step, for every residual coordinate i,
	// |δ_i / x_i| ≤ v_t' for the threshold at its last Add.
	r := xrand.New(7)
	f := NewFilter(0.7)
	params := sparse.NewDense(30)
	for i := range params {
		params[i] = 1 + r.Float64()
	}
	for step := 1; step <= 200; step++ {
		u := sparse.New()
		for k := 0; k < 4; k++ {
			u.Set(uint32(r.Intn(30)), r.NormFloat64()*0.01)
		}
		out := f.Add(step, u, params)
		// Apply both flushed and raw: local view always has everything.
		params.AddSparse(out)
		vt := f.Threshold(step)
		f.Residual().ForEach(func(i uint32, delta float64) {
			if params[i] != 0 && math.Abs(delta/params[i]) > vt {
				t.Fatalf("step %d: residual coord %d violates bound: |%v/%v| > %v",
					step, i, delta, params[i], vt)
			}
		})
	}
}

func TestFlushedPlusResidualEqualsTotal(t *testing.T) {
	// Conservation: sum of everything flushed plus the residual equals
	// the sum of all updates ever added (no update is lost or duplicated).
	r := xrand.New(9)
	if err := quick.Check(func(seed uint64) bool {
		rr := xrand.New(seed ^ r.Uint64())
		f := NewFilter(rr.Float64())
		params := sparse.NewDense(20)
		for i := range params {
			params[i] = rr.NormFloat64() * 10
		}
		total := sparse.New()
		flushed := sparse.New()
		for step := 1; step <= 50; step++ {
			u := sparse.New()
			for k := 0; k < 3; k++ {
				u.Set(uint32(rr.Intn(20)), rr.NormFloat64())
			}
			total.AddVector(u)
			flushed.AddVector(f.Add(step, u, params))
		}
		recon := flushed.Clone()
		recon.AddVector(f.Residual())
		diff := recon.Clone()
		diff.AddScaledVector(total, -1)
		return diff.NormL1() < 1e-9
	}, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestNegativeThresholdClamped(t *testing.T) {
	f := NewFilter(-1)
	if f.BaseThreshold() != 0 {
		t.Fatal("negative v not clamped")
	}
}

func TestReset(t *testing.T) {
	f := NewFilter(0.9)
	params := sparse.Dense{100}
	f.Add(1, vec(map[uint32]float64{0: 1}), params)
	if f.PendingL1() == 0 {
		t.Fatal("setup failed: nothing pending")
	}
	f.Reset()
	if f.PendingL1() != 0 || f.FlushedEntries() != 0 {
		t.Fatal("Reset incomplete")
	}
}

func TestCompressionGrowsWithThreshold(t *testing.T) {
	// Higher v must flush no more coordinates than lower v on the same
	// stream — the mechanism behind Fig 4's monotone speedup.
	run := func(v float64) int64 {
		r := xrand.New(33)
		f := NewFilter(v)
		params := sparse.NewDense(100)
		for i := range params {
			params[i] = 1
		}
		for step := 1; step <= 100; step++ {
			u := sparse.New()
			for k := 0; k < 10; k++ {
				u.Set(uint32(r.Intn(100)), r.NormFloat64()*0.05)
			}
			out := f.Add(step, u, params)
			params.AddSparse(out)
		}
		return f.FlushedEntries()
	}
	loose, mid, strict := run(0), run(0.3), run(0.9)
	if !(strict <= mid && mid <= loose) {
		t.Fatalf("flushed counts not monotone: v=0:%d v=0.3:%d v=0.9:%d", loose, mid, strict)
	}
	if strict == loose {
		t.Fatal("thresholds had no effect at all")
	}
}

func TestVariantString(t *testing.T) {
	if Accumulate.String() != "accumulate" || Drop.String() != "drop" || NoDecay.String() != "no-decay" {
		t.Fatal("variant names wrong")
	}
	if Variant(99).String() != "unknown" {
		t.Fatal("unknown variant name wrong")
	}
}

func TestNoDecayVariantKeepsThresholdConstant(t *testing.T) {
	f := NewFilterVariant(0.7, NoDecay)
	if f.Threshold(1) != 0.7 || f.Threshold(10000) != 0.7 {
		t.Fatalf("NoDecay threshold changed: %v, %v", f.Threshold(1), f.Threshold(10000))
	}
}

func TestDropVariantDiscardsInsignificant(t *testing.T) {
	f := NewFilterVariant(0.5, Drop)
	params := sparse.Dense{1000}
	// Relative 1e-3: insignificant — and under Drop, gone for good.
	out := f.Add(1, vec(map[uint32]float64{0: 1}), params)
	if out.Len() != 0 {
		t.Fatal("insignificant update flushed")
	}
	if f.Residual().Len() != 0 {
		t.Fatal("Drop variant kept a residual")
	}
	// Repeating the same small update never accumulates to significance.
	for step := 2; step <= 50; step++ {
		if out := f.Add(step, vec(map[uint32]float64{0: 1}), params); out.Len() != 0 {
			t.Fatalf("Drop variant flushed at step %d", step)
		}
	}
}

func TestDropVariantPassesSignificant(t *testing.T) {
	f := NewFilterVariant(0.5, Drop)
	params := sparse.Dense{1, 0}
	out := f.Add(1, vec(map[uint32]float64{0: 2, 1: 3}), params)
	if out.Get(0) != 2 {
		t.Fatal("significant update dropped")
	}
	if out.Get(1) != 3 {
		t.Fatal("zero-param coordinate must be significant under Drop too")
	}
}
