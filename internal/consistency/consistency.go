// Package consistency implements the synchronization models of MLLess
// (§3.1, §4.1): Bulk Synchronous Parallel (BSP) and the paper's
// contribution, Insignificance-bounded Synchronous Parallel (ISP) — a
// variant of Approximate Synchronous Parallel specialized to accelerate
// the broadcast of local updates between workers in one data center.
//
// Under ISP each worker accumulates its per-parameter updates locally and
// broadcasts a parameter's accumulated value only once it becomes
// significant:
//
//	|Σ_{t'=t_p..t} u_{i,t'} / x_{i,t}| > v_t,   v_t = v/√t
//
// (§4.1, "Significance function"). The threshold decays over time, so
// late-training updates — relatively smaller — still propagate. With
// v = 0 every update is significant and ISP reduces exactly to BSP
// (Corollary, Appendix A), a property the tests pin down.
package consistency

import (
	"math"

	"mlless/internal/sparse"
)

// Mode selects the synchronization model of a training job.
type Mode int

const (
	// BSP is Bulk Synchronous Parallel: all updates propagate every step.
	BSP Mode = iota + 1
	// ISP filters non-significant updates (the paper's optimization).
	ISP
	// Async drops the global barrier entirely (the fully asynchronous
	// protocol of the journal version of MLLess, arXiv 2206.05786):
	// workers free-run on their own clocks, pulling announced peer
	// updates under a bounded staleness cap. It composes with the ISP
	// significance filter (set Significance > 0).
	Async
)

// String renders the mode name.
func (m Mode) String() string {
	switch m {
	case BSP:
		return "bsp"
	case ISP:
		return "isp"
	case Async:
		return "async"
	default:
		return "unknown"
	}
}

// Variant selects a significance-filter design for ablation studies.
// The paper's design (Accumulate) keeps withheld updates and broadcasts
// their sum once significant; the ablations quantify why that matters.
type Variant int

const (
	// Accumulate is the paper's ISP filter: insignificant updates are
	// summed into a residual and eventually flushed (§4.1).
	Accumulate Variant = iota
	// Drop discards insignificant updates instead of accumulating them
	// (the naive alternative ISP improves upon; convergence degrades).
	Drop
	// NoDecay keeps the threshold constant at v instead of decaying it
	// as v/√t (late-training updates, relatively smaller, stop flowing).
	NoDecay
)

// String renders the variant name.
func (v Variant) String() string {
	switch v {
	case Accumulate:
		return "accumulate"
	case Drop:
		return "drop"
	case NoDecay:
		return "no-decay"
	default:
		return "unknown"
	}
}

// Filter is the per-worker ISP significance filter. It owns the
// accumulated residual δ of not-yet-broadcast updates. The zero value is
// unusable; construct with NewFilter. Filter is not safe for concurrent
// use: each worker owns one.
type Filter struct {
	v       float64
	variant Variant

	residual *sparse.Vector

	// Scratch reused across Add calls.
	out   *sparse.Vector
	flush []uint32

	// Stats.
	flushed     int64
	accumulated int64
}

// NewFilter returns the paper's filter with base significance threshold
// v ≥ 0. v = 0 makes every update significant (BSP behaviour).
func NewFilter(v float64) *Filter {
	return NewFilterVariant(v, Accumulate)
}

// NewFilterVariant returns a filter of the given design (for the
// ablation benches).
func NewFilterVariant(v float64, variant Variant) *Filter {
	if v < 0 {
		v = 0
	}
	return &Filter{v: v, variant: variant, residual: sparse.New()}
}

// Threshold returns v_t = v/√t for 1-based step t (constant v for the
// NoDecay variant).
func (f *Filter) Threshold(t int) float64 {
	if f.variant == NoDecay {
		return f.v
	}
	if t < 1 {
		t = 1
	}
	return f.v / math.Sqrt(float64(t))
}

// Add accumulates this step's update u into the residual and returns the
// significant portion to broadcast, removing it from the residual.
// params is the worker's current (noisy) parameter vector x̃_t against
// which relative significance is measured. A parameter whose current
// value is zero is treated as maximally significant whenever its residual
// is non-zero (the relative change is unbounded).
//
// The returned vector is scratch owned by the filter and valid only
// until the next Add; callers that retain it must Clone.
func (f *Filter) Add(t int, u *sparse.Vector, params sparse.Dense) *sparse.Vector {
	f.residual.AddVector(u)
	vt := f.Threshold(t)

	if f.out == nil {
		f.out = sparse.NewWithCapacity(f.residual.Len())
	} else {
		f.out.Clear()
	}
	out := f.out
	if vt == 0 {
		// BSP fast path: flush everything.
		f.residual.ForEach(func(i uint32, delta float64) {
			out.Set(i, delta)
		})
		f.flushed += int64(out.Len())
		f.residual.Clear()
		return out
	}

	if f.variant == Drop {
		// Naive filtering: significant coordinates pass through, the
		// rest are lost forever.
		f.residual.ForEach(func(i uint32, delta float64) {
			x := 0.0
			if int(i) < len(params) {
				x = params[i]
			}
			if (x == 0 && delta != 0) || (x != 0 && math.Abs(delta/x) > vt) {
				out.Set(i, delta)
			}
		})
		f.flushed += int64(out.Len())
		f.residual.Clear()
		return out
	}

	flush := f.flush[:0]
	f.residual.ForEach(func(i uint32, delta float64) {
		x := 0.0
		if int(i) < len(params) {
			x = params[i]
		}
		significant := false
		if x == 0 {
			significant = delta != 0
		} else {
			significant = math.Abs(delta/x) > vt
		}
		if significant {
			out.Set(i, delta)
			flush = append(flush, i)
		}
	})
	for _, i := range flush {
		f.residual.Remove(i)
	}
	f.flush = flush[:0]
	f.flushed += int64(out.Len())
	f.accumulated += int64(f.residual.Len())
	return out
}

// Residual exposes the accumulated non-significant updates δ. The
// scale-in eviction protocol needs it: a leaving worker's local replica
// already contains these updates, which is why its model is stored and
// averaged into the survivors (§4.2, eviction policy).
func (f *Filter) Residual() *sparse.Vector { return f.residual }

// PendingL1 returns the taxicab mass of the residual, a measure of how
// much state the filter is currently withholding.
func (f *Filter) PendingL1() float64 { return f.residual.NormL1() }

// FlushedEntries returns the cumulative count of broadcast coordinates.
func (f *Filter) FlushedEntries() int64 { return f.flushed }

// Reset clears the residual and statistics.
func (f *Filter) Reset() {
	f.residual = sparse.New()
	f.flushed = 0
	f.accumulated = 0
}

// BaseThreshold returns the configured v.
func (f *Filter) BaseThreshold() float64 { return f.v }
