// Package vclock provides the virtual time base of the MLLess simulator.
//
// The reproduction runs the paper's ML algorithms for real but derives
// elapsed wall-clock time analytically: every simulated component (FaaS
// worker, storage service, broker) charges durations to a Clock instead
// of sleeping. Per-worker clocks advance independently within a training
// step and are reconciled at BSP barriers, which yields exactly the
// "slowest worker paces the step" semantics of the paper's Bulk
// Synchronous Parallel execution (§3.1).
package vclock

import "time"

// Clock is a virtual clock. The zero value is a clock at time zero,
// ready to use. Clock is not safe for concurrent use; in the simulator
// each worker owns its clock exclusively within a step and barriers are
// performed by the single-threaded step engine.
type Clock struct {
	now time.Duration
}

// Now returns the current virtual time.
func (c *Clock) Now() time.Duration { return c.now }

// Advance moves the clock forward by d. Negative d is ignored: virtual
// time never flows backwards.
func (c *Clock) Advance(d time.Duration) {
	if d > 0 {
		c.now += d
	}
}

// AdvanceTo moves the clock forward to t if t is later than now.
func (c *Clock) AdvanceTo(t time.Duration) {
	if t > c.now {
		c.now = t
	}
}

// Reset rewinds the clock to zero. Only test code and job setup should
// call it.
func (c *Clock) Reset() { c.now = 0 }

// Barrier synchronizes a set of clocks at a BSP boundary: every clock is
// advanced to the maximum of the set, and that time is returned. An empty
// set returns zero.
func Barrier(clocks []*Clock) time.Duration {
	var max time.Duration
	for _, c := range clocks {
		if c.now > max {
			max = c.now
		}
	}
	for _, c := range clocks {
		c.AdvanceTo(max)
	}
	return max
}

// Max returns the latest time among the clocks without synchronizing them.
func Max(clocks []*Clock) time.Duration {
	var max time.Duration
	for _, c := range clocks {
		if c.now > max {
			max = c.now
		}
	}
	return max
}
