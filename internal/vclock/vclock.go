// Package vclock provides the virtual time base of the MLLess simulator.
//
// The reproduction runs the paper's ML algorithms for real but derives
// elapsed wall-clock time analytically: every simulated component (FaaS
// worker, storage service, broker) charges durations to a Clock instead
// of sleeping. Per-worker clocks advance independently within a training
// step and are reconciled at BSP barriers, which yields exactly the
// "slowest worker paces the step" semantics of the paper's Bulk
// Synchronous Parallel execution (§3.1).
package vclock

import "time"

// Clock is a virtual clock. The zero value is a clock at time zero,
// ready to use.
//
// Clock is not safe for concurrent use; the simulator relies on an
// ownership contract instead of locks. Within a phase, exactly one
// driver goroutine executes a worker's state machine and is the sole
// reader and writer of that worker's clock (recoveries may swap the
// instance — and thus the clock — mid-phase, but only on the owning
// goroutine). Between phases, ownership passes to the engine's
// coordinating goroutine — the driver's join is the happens-before
// edge — which is when cross-clock operations (Barrier, Max, the
// supervisor reading publish instants) are allowed. The supervisor's
// clock is only ever touched by the coordinating goroutine.
type Clock struct {
	now time.Duration
}

// Now returns the current virtual time.
func (c *Clock) Now() time.Duration { return c.now }

// Advance moves the clock forward by d. Negative d is ignored: virtual
// time never flows backwards.
func (c *Clock) Advance(d time.Duration) {
	if d > 0 {
		c.now += d
	}
}

// AdvanceTo moves the clock forward to t if t is later than now.
func (c *Clock) AdvanceTo(t time.Duration) {
	if t > c.now {
		c.now = t
	}
}

// Reset rewinds the clock to zero. Only test code and job setup should
// call it.
func (c *Clock) Reset() { c.now = 0 }

// Barrier synchronizes a set of clocks at a BSP boundary: every clock is
// advanced to the maximum of the set, and that time is returned. An empty
// set returns zero. Callers must hold ownership of every clock in the
// set — i.e. run on the coordinating goroutine between phases.
func Barrier(clocks []*Clock) time.Duration {
	var max time.Duration
	for _, c := range clocks {
		if c.now > max {
			max = c.now
		}
	}
	for _, c := range clocks {
		c.AdvanceTo(max)
	}
	return max
}

// Max returns the latest time among the clocks without synchronizing them.
func Max(clocks []*Clock) time.Duration {
	var max time.Duration
	for _, c := range clocks {
		if c.now > max {
			max = c.now
		}
	}
	return max
}
