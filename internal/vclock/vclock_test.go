package vclock

import (
	"testing"
	"testing/quick"
	"time"
)

func TestZeroValueUsable(t *testing.T) {
	var c Clock
	if c.Now() != 0 {
		t.Fatalf("zero clock at %v", c.Now())
	}
	c.Advance(time.Second)
	if c.Now() != time.Second {
		t.Fatalf("after Advance: %v", c.Now())
	}
}

func TestAdvanceIgnoresNegative(t *testing.T) {
	var c Clock
	c.Advance(time.Second)
	c.Advance(-10 * time.Second)
	if c.Now() != time.Second {
		t.Fatalf("negative Advance changed time: %v", c.Now())
	}
}

func TestAdvanceToMonotone(t *testing.T) {
	var c Clock
	c.Advance(5 * time.Second)
	c.AdvanceTo(3 * time.Second)
	if c.Now() != 5*time.Second {
		t.Fatalf("AdvanceTo went backwards: %v", c.Now())
	}
	c.AdvanceTo(8 * time.Second)
	if c.Now() != 8*time.Second {
		t.Fatalf("AdvanceTo did not advance: %v", c.Now())
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	a, b, c := &Clock{}, &Clock{}, &Clock{}
	a.Advance(1 * time.Second)
	b.Advance(3 * time.Second)
	c.Advance(2 * time.Second)
	max := Barrier([]*Clock{a, b, c})
	if max != 3*time.Second {
		t.Fatalf("Barrier returned %v", max)
	}
	for _, cl := range []*Clock{a, b, c} {
		if cl.Now() != 3*time.Second {
			t.Fatalf("clock not synchronized: %v", cl.Now())
		}
	}
}

func TestBarrierEmpty(t *testing.T) {
	if Barrier(nil) != 0 {
		t.Fatal("empty Barrier non-zero")
	}
}

func TestBarrierIdempotent(t *testing.T) {
	if err := quick.Check(func(ns []uint32) bool {
		clocks := make([]*Clock, len(ns))
		for i, n := range ns {
			clocks[i] = &Clock{}
			clocks[i].Advance(time.Duration(n))
		}
		first := Barrier(clocks)
		second := Barrier(clocks)
		return first == second
	}, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestMaxDoesNotMutate(t *testing.T) {
	a, b := &Clock{}, &Clock{}
	a.Advance(time.Second)
	b.Advance(2 * time.Second)
	if Max([]*Clock{a, b}) != 2*time.Second {
		t.Fatal("Max wrong")
	}
	if a.Now() != time.Second {
		t.Fatal("Max mutated a clock")
	}
}

func TestReset(t *testing.T) {
	var c Clock
	c.Advance(time.Minute)
	c.Reset()
	if c.Now() != 0 {
		t.Fatalf("Reset left %v", c.Now())
	}
}
