package kvstore

import (
	"testing"
	"time"

	"mlless/internal/faults"
	"mlless/internal/netmodel"
	"mlless/internal/trace"
	"mlless/internal/vclock"
)

// spikeLink has round numbers so charges are exact: 1 ms latency,
// 1 MB/s bandwidth ⇒ 1000 bytes transfer in 1 ms + 1 ms = 2 ms.
func spikeLink() netmodel.Link {
	return netmodel.Link{Latency: time.Millisecond, BandwidthBps: 1e6}
}

func TestTracedLatencySpikeIsOneSpanWithMultiplier(t *testing.T) {
	// A latency spike must not fragment the operation: the trace shows
	// one span covering spike × nominal, with the multiplier recorded as
	// the fault_x arg — the §5 "what did the substrate cost me" view.
	s := New(spikeLink())
	s.SetFaults(faults.New(faults.Spec{
		Seed: 7, KVSlowProb: 1, KVSlowFactor: 10, // every op spikes 10×
	}))
	tr := trace.New()
	s.SetTracer(tr)
	var clk vclock.Clock
	tr.RegisterClock(&clk, "worker-0")

	payload := make([]byte, 1000)
	base := spikeLink().TransferTime(len(payload)) // 2 ms nominal
	start := clk.Now()
	s.Set(&clk, "model/0", payload)

	if got, want := clk.Now()-start, 10*base; got != want {
		t.Fatalf("charged %v, want spike × nominal = %v", got, want)
	}
	evs := tr.Events()
	if len(evs) != 1 {
		t.Fatalf("spike fragmented into %d spans", len(evs))
	}
	ev := evs[0]
	if ev.Cat != trace.CatKV || ev.Name != "set" || ev.Dur != 10*base {
		t.Fatalf("span: %+v", ev)
	}
	x, ok := ev.ArgFloat("fault_x")
	if !ok || x != 10 {
		t.Fatalf("fault_x = %v (present=%v), want 10", x, ok)
	}
	if n, _ := ev.ArgInt("bytes"); n != 1000 {
		t.Fatalf("bytes arg = %d", n)
	}
}

func TestTracedCleanOpOmitsMultiplier(t *testing.T) {
	s := New(spikeLink())
	tr := trace.New()
	s.SetTracer(tr)
	var clk vclock.Clock
	tr.RegisterClock(&clk, "worker-0")

	s.Set(&clk, "model/0", make([]byte, 1000))
	ev := tr.Events()[0]
	if _, ok := ev.ArgFloat("fault_x"); ok {
		t.Fatalf("clean op carries fault_x: %+v", ev)
	}
	if ev.Dur != spikeLink().TransferTime(1000) {
		t.Fatalf("clean span dur %v != nominal", ev.Dur)
	}
}

func TestTracedRetriesFoldIntoOneSpan(t *testing.T) {
	// Injected failures are retried client-side; the trace must show the
	// whole retry storm as a single span whose fault_x reflects the
	// penalty + re-execution charges.
	s := New(spikeLink())
	s.SetFaults(faults.New(faults.Spec{
		Seed: 11, KVFailProb: 0.5, KVRetryPenalty: time.Millisecond,
	}))
	tr := trace.New()
	s.SetTracer(tr)
	var clk vclock.Clock
	tr.RegisterClock(&clk, "worker-0")

	// Enough operations that some draw at least one failure.
	var spiked int
	for i := 0; i < 64; i++ {
		s.Set(&clk, "k", make([]byte, 100))
	}
	evs := tr.Events()
	if len(evs) != 64 {
		t.Fatalf("%d spans for 64 ops", len(evs))
	}
	for _, ev := range evs {
		if x, ok := ev.ArgFloat("fault_x"); ok {
			spiked++
			if x <= 1 {
				t.Fatalf("fault_x %v not a stretch multiplier", x)
			}
		}
	}
	if spiked == 0 {
		t.Fatal("no retried op surfaced a multiplier at KVFailProb 0.5")
	}
}
