package kvstore

import (
	"sort"
	"strconv"
	"strings"
	"time"

	"mlless/internal/faults"
	"mlless/internal/netmodel"
	"mlless/internal/trace"
	"mlless/internal/vclock"
)

// ShardFor returns the shard index serving key in an n-shard tier. The
// assignment is a pure function of the key bytes (FNV-1a mod n), so it
// is stable across runs, processes and machines — a requirement for
// byte-identical traces and for the paper's sharding story, where
// clients agree on placement without coordination.
func ShardFor(key string, n int) int {
	if n <= 1 {
		return 0
	}
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return int(h % uint64(n))
}

// Sharded spreads the key space over N independent Store shards, each
// with its own link budget and counter namespace ("kv.s0.*", "kv.s1.*",
// …). Single-key operations route to the owning shard; the batched
// exchange operations (MGet, MGetView, Keys) fan out one pipelined
// request per touched shard over concurrent connections and charge the
// caller the maximum of the parallel branch costs rather than their
// sum — the mechanism by which adding shards shrinks the P² gradient
// exchange the paper identifies as the scalability wall (§3.2, §6).
//
// With one shard, every operation delegates unmodified to the single
// underlying Store (counters stay under "kv.*"), so the default
// configuration is byte-identical to the unsharded store.
type Sharded struct {
	shards []*Store
}

// NewSharded returns an n-shard tier reached through link, with a
// private metrics registry. n < 1 is treated as 1.
func NewSharded(link netmodel.Link, n int) *Sharded {
	return NewShardedWithRegistry(link, trace.NewRegistry(), n)
}

// NewShardedWithRegistry returns an n-shard tier whose counters live in
// reg: under "kv.*" for a single shard, "kv.sN.*" per shard otherwise.
// Every shard gets its own instance of link, modelling one endpoint
// (and one VM, see the engine's teardown billing) per shard.
func NewShardedWithRegistry(link netmodel.Link, reg *trace.Registry, n int) *Sharded {
	if n < 1 {
		n = 1
	}
	s := &Sharded{shards: make([]*Store, n)}
	if n == 1 {
		s.shards[0] = newPrefixed(link, reg, "kv")
		return s
	}
	for i := range s.shards {
		s.shards[i] = newPrefixed(link, reg, "kv.s"+strconv.Itoa(i))
	}
	return s
}

// NumShards reports the number of shards.
func (s *Sharded) NumShards() int { return len(s.shards) }

// Shard returns shard i; experiment code uses it to inspect per-shard
// state.
func (s *Sharded) Shard(i int) *Store { return s.shards[i] }

// Registry returns the metrics registry the tier's counters live in.
func (s *Sharded) Registry() *trace.Registry { return s.shards[0].Registry() }

// SetFaults installs (or removes) the fault injector on every shard.
// Same concurrency contract as Store.SetFaults.
func (s *Sharded) SetFaults(in *faults.Injector) {
	for _, sh := range s.shards {
		sh.SetFaults(in)
	}
}

// SetTracer installs (or removes) the tracer on every shard.
func (s *Sharded) SetTracer(tr *trace.Tracer) {
	for _, sh := range s.shards {
		sh.SetTracer(tr)
	}
}

// Link returns the per-shard network link (all shards share the same
// link parameters; each shard is a separate instance of it).
func (s *Sharded) Link() netmodel.Link { return s.shards[0].Link() }

// TransferTime estimates moving n bytes through one shard's link.
func (s *Sharded) TransferTime(n int) time.Duration { return s.shards[0].TransferTime(n) }

// Set stores a copy of val under key on its owning shard.
func (s *Sharded) Set(clk *vclock.Clock, key string, val []byte) {
	s.shards[ShardFor(key, len(s.shards))].Set(clk, key, val)
}

// Get returns a copy of the value under key from its owning shard.
func (s *Sharded) Get(clk *vclock.Clock, key string) ([]byte, bool) {
	return s.shards[ShardFor(key, len(s.shards))].Get(clk, key)
}

// Delete removes key from its owning shard.
func (s *Sharded) Delete(clk *vclock.Clock, key string) {
	s.shards[ShardFor(key, len(s.shards))].Delete(clk, key)
}

// MGet fetches several keys, one pipelined request per touched shard
// issued over concurrent connections; the caller is charged the
// maximum of the parallel branch costs. Missing keys yield nil entries.
func (s *Sharded) MGet(clk *vclock.Clock, keys []string) [][]byte {
	return s.mget(clk, keys, false, nil)
}

// MGetView is MGet without the defensive copies; the aliasing contract
// is Store.MGetView's.
func (s *Sharded) MGetView(clk *vclock.Clock, keys []string) [][]byte {
	return s.mget(clk, keys, true, nil)
}

// MGetViewInto is MGetView writing into out (see Store.MGetViewInto
// for the reuse contract).
func (s *Sharded) MGetViewInto(clk *vclock.Clock, keys []string, out [][]byte) [][]byte {
	return s.mget(clk, keys, true, out)
}

func (s *Sharded) mget(clk *vclock.Clock, keys []string, views bool, out [][]byte) [][]byte {
	if len(s.shards) == 1 {
		if views {
			return s.shards[0].MGetViewInto(clk, keys, out)
		}
		return s.shards[0].MGet(clk, keys)
	}

	// Group key positions by owning shard, preserving request order so
	// each branch's label (its first key) is deterministic.
	byShard := make(map[int][]int, len(s.shards))
	for i, k := range keys {
		si := ShardFor(k, len(s.shards))
		byShard[si] = append(byShard[si], i)
	}

	out = resizeViews(out, len(keys))
	start := clk.Now()
	var max time.Duration
	// Iterate shards in index order: branch spans and fault draws are
	// then independent of map iteration order.
	for si, sh := range s.shards {
		idxs := byShard[si]
		if len(idxs) == 0 {
			continue
		}
		total := sh.collect(keys, idxs, out, views)
		label := keys[idxs[0]]
		base := sh.pipe.TransferTime(total)
		cost := sh.pipe.Cost("mget", label, start, base)
		if cost > max {
			max = cost
		}
		sh.pipe.TraceRange(clk, "mget", label, start, start+cost, base, total,
			trace.Int("shard", si))
	}
	if len(byShard) == 0 {
		// No keys: charge one empty pipelined request, like the single
		// store does.
		s.shards[0].pipe.Charge(clk, "mget", "", 0, s.shards[0].pipe.TransferTime(0))
		return out
	}
	clk.Advance(max)
	return out
}

// Keys returns the sorted keys with the given prefix across all shards.
// Every shard is scanned concurrently; the caller is charged the
// maximum branch cost. Like Store.Keys it stays off the trace timeline.
//
// Note: the branch fault draws share one (op, key, time) identity, so
// with n > 1 all branches draw the same delay — harmless, since only
// the maximum is charged.
func (s *Sharded) Keys(clk *vclock.Clock, prefix string) []string {
	if len(s.shards) == 1 {
		return s.shards[0].Keys(clk, prefix)
	}
	start := clk.Now()
	var max time.Duration
	var out []string
	for _, sh := range s.shards {
		cost := sh.pipe.Cost("keys", prefix, start, sh.pipe.RTT())
		if cost > max {
			max = cost
		}
		sh.mu.Lock()
		for k := range sh.data {
			if strings.HasPrefix(k, prefix) {
				out = append(out, k)
			}
		}
		sh.mu.Unlock()
	}
	clk.Advance(max)
	sort.Strings(out)
	return out
}

// Len reports the total number of stored keys across shards.
func (s *Sharded) Len() int {
	n := 0
	for _, sh := range s.shards {
		n += sh.Len()
	}
	return n
}

// Flush removes all keys from every shard.
func (s *Sharded) Flush() {
	for _, sh := range s.shards {
		sh.Flush()
	}
}
