// Package kvstore simulates the low-latency, in-memory key-value store
// (Redis in the paper, §3.1) through which MLLess workers exchange model
// updates. Functions cannot talk to each other directly, so every update
// makes a round trip through this store; the store therefore charges
// realistic request latencies and transfer times to the caller's virtual
// clock and keeps per-operation metrics that the experiment harness
// reports.
//
// All charging, fault injection, tracing and counter plumbing delegates
// to the shared substrate pipeline (package substrate); this package
// only owns the data plane. Two tiers are provided: Store is a single
// endpoint, and Sharded (see sharded.go) spreads the key space over N
// independent Store shards — the scalability escape hatch the paper
// points at when a single Redis endpoint becomes the exchange wall
// (§3.2, §6).
//
// The store is safe for concurrent use. Values are copied at the API
// boundary so callers can never alias internal storage.
package kvstore

import (
	"sort"
	"strings"
	"sync"
	"time"

	"mlless/internal/faults"
	"mlless/internal/netmodel"
	"mlless/internal/substrate"
	"mlless/internal/trace"
	"mlless/internal/vclock"
)

// Store is a simulated in-memory key-value service.
type Store struct {
	pipe *substrate.Pipeline

	mu   sync.Mutex
	data map[string][]byte

	// Semantic traffic counters; they live in the unified registry under
	// "<prefix>.*" ("kv.*" for a single store, "kv.sN.*" per shard) and
	// updates are lock-free atomic adds.
	cGets, cSets, cDeletes, cMisses, cBytesRead, cBytesWritten *trace.Counter
}

// New returns an empty store reached through link, with a private
// metrics registry.
func New(link netmodel.Link) *Store {
	return NewWithRegistry(link, trace.NewRegistry())
}

// NewWithRegistry returns an empty store whose counters live in the
// given unified registry under "kv.*".
func NewWithRegistry(link netmodel.Link, reg *trace.Registry) *Store {
	return newPrefixed(link, reg, "kv")
}

// newPrefixed builds a store whose counters live under prefix; shards
// of a Sharded tier each get their own namespace ("kv.s0", "kv.s1", …).
func newPrefixed(link netmodel.Link, reg *trace.Registry, prefix string) *Store {
	pipe := substrate.New(substrate.Config{
		Link:     link,
		Cat:      trace.CatKV,
		KeyLabel: "key",
		Domain:   substrate.DomainKV,
	}, reg)
	return &Store{
		pipe:          pipe,
		data:          make(map[string][]byte),
		cGets:         pipe.Counter(prefix + ".gets"),
		cSets:         pipe.Counter(prefix + ".sets"),
		cDeletes:      pipe.Counter(prefix + ".deletes"),
		cMisses:       pipe.Counter(prefix + ".misses"),
		cBytesRead:    pipe.Counter(prefix + ".bytes_read"),
		cBytesWritten: pipe.Counter(prefix + ".bytes_written"),
	}
}

// Registry returns the metrics registry the store's counters live in.
func (s *Store) Registry() *trace.Registry { return s.pipe.Registry() }

// SetFaults installs (or, with nil, removes) a fault injector that adds
// per-operation failures (client-retried, costing time) and latency
// spikes. Do not call concurrently with operations; the engine installs
// it during job setup and removes it at teardown.
func (s *Store) SetFaults(in *faults.Injector) { s.pipe.SetFaults(in) }

// SetTracer installs (or, with nil, removes) a tracer that records one
// span per operation on the calling clock's track, including any
// injected fault delay (the "fault_x" arg carries the observed charge
// multiplier). Same concurrency contract as SetFaults.
func (s *Store) SetTracer(tr *trace.Tracer) { s.pipe.SetTracer(tr) }

// Set stores a copy of val under key and charges the transfer to clk.
func (s *Store) Set(clk *vclock.Clock, key string, val []byte) {
	s.pipe.Charge(clk, "set", key, len(val), s.pipe.TransferTime(len(val)))
	cp := make([]byte, len(val))
	copy(cp, val)

	s.mu.Lock()
	defer s.mu.Unlock()
	s.data[key] = cp
	s.cSets.Inc()
	s.cBytesWritten.Add(int64(len(val)))
}

// Get returns a copy of the value under key. The round trip is charged
// to clk whether or not the key exists.
func (s *Store) Get(clk *vclock.Clock, key string) ([]byte, bool) {
	s.mu.Lock()
	val, ok := s.data[key]
	var cp []byte
	if ok {
		cp = make([]byte, len(val))
		copy(cp, val)
	}
	s.mu.Unlock()
	s.cGets.Inc()

	if !ok {
		s.cMisses.Inc()
		s.pipe.Charge(clk, "get", key, 0, s.pipe.RTT())
		return nil, false
	}
	s.cBytesRead.Add(int64(len(cp)))
	s.pipe.Charge(clk, "get", key, len(cp), s.pipe.TransferTime(len(cp)))
	return cp, true
}

// collect reads the values of the selected keys into out, bumping the
// get/miss/bytes counters, and returns the total bytes returned. idxs
// selects which positions of keys to serve (nil means all); views skips
// the defensive copies. It performs no charging — MGet charges one
// pipelined transfer, the sharded tier the max over its shards.
func (s *Store) collect(keys []string, idxs []int, out [][]byte, views bool) int {
	total := 0
	s.mu.Lock()
	serve := func(i int) {
		key := keys[i]
		val, ok := s.data[key]
		s.cGets.Inc()
		if !ok {
			s.cMisses.Inc()
			return
		}
		if views {
			out[i] = val
		} else {
			cp := make([]byte, len(val))
			copy(cp, val)
			out[i] = cp
		}
		total += len(val)
		s.cBytesRead.Add(int64(len(val)))
	}
	if idxs == nil {
		for i := range keys {
			serve(i)
		}
	} else {
		for _, i := range idxs {
			serve(i)
		}
	}
	s.mu.Unlock()
	return total
}

// MGet fetches several keys in one pipelined request: a single request
// latency plus the bandwidth cost of all returned values. Missing keys
// yield nil entries.
func (s *Store) MGet(clk *vclock.Clock, keys []string) [][]byte {
	out := make([][]byte, len(keys))
	total := s.collect(keys, nil, out, false)
	s.pipe.Charge(clk, "mget", firstKey(keys), total, s.pipe.TransferTime(total))
	return out
}

// firstKey labels a batched operation for fault injection; the batch's
// virtual instant disambiguates batches sharing a first key.
func firstKey(keys []string) string {
	if len(keys) == 0 {
		return ""
	}
	return keys[0]
}

// MGetView is MGet without the defensive copies: the returned slices
// alias the store's internal buffers. It is safe because stored values
// are immutable — Set replaces a key's slice wholesale and never mutates
// one in place — but callers must treat the views as read-only. It is
// the hot path for applying peer updates, which are read once and
// discarded.
func (s *Store) MGetView(clk *vclock.Clock, keys []string) [][]byte {
	return s.MGetViewInto(clk, keys, nil)
}

// MGetViewInto is MGetView writing into out, the zero-allocation
// variant for steady-state pull loops: out is resized (reallocating
// only when its capacity is short) and every entry is reset before the
// reads, so missing keys yield nil exactly as in MGetView. Charging is
// identical to MGetView. The returned slice must be passed back on the
// next call to reuse its capacity.
func (s *Store) MGetViewInto(clk *vclock.Clock, keys []string, out [][]byte) [][]byte {
	out = resizeViews(out, len(keys))
	total := s.collect(keys, nil, out, true)
	s.pipe.Charge(clk, "mget", firstKey(keys), total, s.pipe.TransferTime(total))
	return out
}

// resizeViews returns out with length n and every entry nil, reusing
// its backing array when large enough.
func resizeViews(out [][]byte, n int) [][]byte {
	if cap(out) < n {
		return make([][]byte, n)
	}
	out = out[:n]
	for i := range out {
		out[i] = nil
	}
	return out
}

// Delete removes key, charging one round trip.
func (s *Store) Delete(clk *vclock.Clock, key string) {
	s.pipe.Charge(clk, "del", key, 0, s.pipe.RTT())

	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.data, key)
	s.cDeletes.Inc()
}

// Keys returns the sorted keys with the given prefix. It charges one
// round trip (key lists are tiny compared to values) and stays off the
// trace timeline: the scan happens server-side.
func (s *Store) Keys(clk *vclock.Clock, prefix string) []string {
	s.pipe.ChargeUntraced(clk, "keys", prefix, s.pipe.RTT())

	s.mu.Lock()
	defer s.mu.Unlock()
	var out []string
	for k := range s.data {
		if strings.HasPrefix(k, prefix) {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// Len reports the number of stored keys without charging time (it is a
// harness-side observability call, not a data-path operation).
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.data)
}

// Flush removes all keys (job teardown between experiment runs).
func (s *Store) Flush() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.data = make(map[string][]byte)
}

// Link returns the network link used by the store, so callers can
// estimate transfer times without performing operations.
func (s *Store) Link() netmodel.Link { return s.pipe.Link() }

// TransferTime is a convenience passthrough for estimating the cost of a
// hypothetical transfer of n bytes through this store's link.
func (s *Store) TransferTime(n int) time.Duration { return s.pipe.TransferTime(n) }
