// Package kvstore simulates the low-latency, in-memory key-value store
// (Redis in the paper, §3.1) through which MLLess workers exchange model
// updates. Functions cannot talk to each other directly, so every update
// makes a round trip through this store; the store therefore charges
// realistic request latencies and transfer times to the caller's virtual
// clock and keeps per-operation metrics that the experiment harness
// reports.
//
// The store is safe for concurrent use. Values are copied at the API
// boundary so callers can never alias internal storage.
package kvstore

import (
	"sort"
	"strings"
	"sync"
	"time"

	"mlless/internal/faults"
	"mlless/internal/netmodel"
	"mlless/internal/trace"
	"mlless/internal/vclock"
)

// Metrics aggregates the traffic a Store has served.
type Metrics struct {
	Gets         int64
	Sets         int64
	Deletes      int64
	Misses       int64
	BytesRead    int64
	BytesWritten int64
}

// Store is a simulated in-memory key-value service.
type Store struct {
	link netmodel.Link

	mu     sync.Mutex
	data   map[string][]byte
	faults *faults.Injector
	tracer *trace.Tracer

	reg *trace.Registry
	// Counters live in the unified registry under "kv.*"; updates are
	// lock-free atomic adds.
	cGets, cSets, cDeletes, cMisses, cBytesRead, cBytesWritten *trace.Counter
}

// New returns an empty store reached through link, with a private
// metrics registry.
func New(link netmodel.Link) *Store {
	return NewWithRegistry(link, trace.NewRegistry())
}

// NewWithRegistry returns an empty store whose counters live in the
// given unified registry under "kv.*".
func NewWithRegistry(link netmodel.Link, reg *trace.Registry) *Store {
	return &Store{
		link:          link,
		data:          make(map[string][]byte),
		reg:           reg,
		cGets:         reg.Counter("kv.gets"),
		cSets:         reg.Counter("kv.sets"),
		cDeletes:      reg.Counter("kv.deletes"),
		cMisses:       reg.Counter("kv.misses"),
		cBytesRead:    reg.Counter("kv.bytes_read"),
		cBytesWritten: reg.Counter("kv.bytes_written"),
	}
}

// Registry returns the metrics registry the store's counters live in.
func (s *Store) Registry() *trace.Registry { return s.reg }

// SetFaults installs (or, with nil, removes) a fault injector that adds
// per-operation failures (client-retried, costing time) and latency
// spikes. Do not call concurrently with operations; the engine installs
// it during job setup and removes it at teardown.
func (s *Store) SetFaults(in *faults.Injector) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.faults = in
}

// SetTracer installs (or, with nil, removes) a tracer that records one
// span per operation on the calling clock's track, including any
// injected fault delay (the "fault_x" arg carries the observed charge
// multiplier). Same concurrency contract as SetFaults.
func (s *Store) SetTracer(tr *trace.Tracer) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tracer = tr
}

// chargeFaults advances clk by any injected penalty for an operation
// that nominally cost base. It is called after the nominal charge, so
// clk.Now() uniquely identifies the operation instant. The lock-free
// read of s.faults is safe because SetFaults happens-before the worker
// goroutines that perform operations (see SetFaults).
func (s *Store) chargeFaults(clk *vclock.Clock, op, key string, base time.Duration) {
	if s.faults == nil {
		return
	}
	clk.Advance(s.faults.KVDelay(op, key, clk.Now(), base))
}

// traceOp records one operation span from start to clk.Now(). When the
// total charge exceeds the nominal base (injected retries or a latency
// spike), the multiplier is recorded so the spike × nominal relation is
// visible on the timeline.
func (s *Store) traceOp(clk *vclock.Clock, op, key string, start time.Duration, bytes int, base time.Duration) {
	actual := clk.Now() - start
	if actual > base && base > 0 {
		s.tracer.SpanAt(clk, trace.CatKV, op, start,
			trace.Str("key", key), trace.Int("bytes", bytes),
			trace.Float("fault_x", float64(actual)/float64(base)))
		return
	}
	s.tracer.SpanAt(clk, trace.CatKV, op, start,
		trace.Str("key", key), trace.Int("bytes", bytes))
}

// Set stores a copy of val under key and charges the transfer to clk.
func (s *Store) Set(clk *vclock.Clock, key string, val []byte) {
	start := clk.Now()
	base := s.link.TransferTime(len(val))
	clk.Advance(base)
	s.chargeFaults(clk, "set", key, base)
	if s.tracer.Enabled() {
		s.traceOp(clk, "set", key, start, len(val), base)
	}
	cp := make([]byte, len(val))
	copy(cp, val)

	s.mu.Lock()
	defer s.mu.Unlock()
	s.data[key] = cp
	s.cSets.Inc()
	s.cBytesWritten.Add(int64(len(val)))
}

// Get returns a copy of the value under key. The round trip is charged
// to clk whether or not the key exists.
func (s *Store) Get(clk *vclock.Clock, key string) ([]byte, bool) {
	start := clk.Now()
	s.mu.Lock()
	val, ok := s.data[key]
	var cp []byte
	if ok {
		cp = make([]byte, len(val))
		copy(cp, val)
	}
	s.mu.Unlock()
	s.cGets.Inc()

	if !ok {
		s.cMisses.Inc()
		clk.Advance(s.link.RTT())
		s.chargeFaults(clk, "get", key, s.link.RTT())
		if s.tracer.Enabled() {
			s.traceOp(clk, "get", key, start, 0, s.link.RTT())
		}
		return nil, false
	}
	s.cBytesRead.Add(int64(len(cp)))
	base := s.link.TransferTime(len(cp))
	clk.Advance(base)
	s.chargeFaults(clk, "get", key, base)
	if s.tracer.Enabled() {
		s.traceOp(clk, "get", key, start, len(cp), base)
	}
	return cp, true
}

// MGet fetches several keys in one pipelined request: a single request
// latency plus the bandwidth cost of all returned values. Missing keys
// yield nil entries.
func (s *Store) MGet(clk *vclock.Clock, keys []string) [][]byte {
	start := clk.Now()
	out := make([][]byte, len(keys))
	total := 0

	s.mu.Lock()
	for i, key := range keys {
		val, ok := s.data[key]
		s.cGets.Inc()
		if !ok {
			s.cMisses.Inc()
			continue
		}
		cp := make([]byte, len(val))
		copy(cp, val)
		out[i] = cp
		total += len(val)
		s.cBytesRead.Add(int64(len(val)))
	}
	s.mu.Unlock()

	base := s.link.TransferTime(total)
	clk.Advance(base)
	s.chargeFaults(clk, "mget", firstKey(keys), base)
	if s.tracer.Enabled() {
		s.traceOp(clk, "mget", firstKey(keys), start, total, base)
	}
	return out
}

// firstKey labels a batched operation for fault injection; the batch's
// virtual instant disambiguates batches sharing a first key.
func firstKey(keys []string) string {
	if len(keys) == 0 {
		return ""
	}
	return keys[0]
}

// MGetView is MGet without the defensive copies: the returned slices
// alias the store's internal buffers. It is safe because stored values
// are immutable — Set replaces a key's slice wholesale and never mutates
// one in place — but callers must treat the views as read-only. It is
// the hot path for applying peer updates, which are read once and
// discarded.
func (s *Store) MGetView(clk *vclock.Clock, keys []string) [][]byte {
	start := clk.Now()
	out := make([][]byte, len(keys))
	total := 0

	s.mu.Lock()
	for i, key := range keys {
		val, ok := s.data[key]
		s.cGets.Inc()
		if !ok {
			s.cMisses.Inc()
			continue
		}
		out[i] = val
		total += len(val)
		s.cBytesRead.Add(int64(len(val)))
	}
	s.mu.Unlock()

	base := s.link.TransferTime(total)
	clk.Advance(base)
	s.chargeFaults(clk, "mget", firstKey(keys), base)
	if s.tracer.Enabled() {
		s.traceOp(clk, "mget", firstKey(keys), start, total, base)
	}
	return out
}

// Delete removes key, charging one round trip.
func (s *Store) Delete(clk *vclock.Clock, key string) {
	start := clk.Now()
	clk.Advance(s.link.RTT())
	s.chargeFaults(clk, "del", key, s.link.RTT())
	if s.tracer.Enabled() {
		s.traceOp(clk, "del", key, start, 0, s.link.RTT())
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.data, key)
	s.cDeletes.Inc()
}

// Keys returns the sorted keys with the given prefix. It charges one
// round trip (key lists are tiny compared to values).
func (s *Store) Keys(clk *vclock.Clock, prefix string) []string {
	clk.Advance(s.link.RTT())
	s.chargeFaults(clk, "keys", prefix, s.link.RTT())

	s.mu.Lock()
	defer s.mu.Unlock()
	var out []string
	for k := range s.data {
		if strings.HasPrefix(k, prefix) {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// Len reports the number of stored keys without charging time (it is a
// harness-side observability call, not a data-path operation).
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.data)
}

// Metrics returns a snapshot of the traffic counters.
//
// Deprecated: the counters live in the unified trace.Registry the store
// was built with (see Registry), under "kv.*" names; this method is a
// compatibility view over them.
func (s *Store) Metrics() Metrics {
	return Metrics{
		Gets:         s.cGets.Load(),
		Sets:         s.cSets.Load(),
		Deletes:      s.cDeletes.Load(),
		Misses:       s.cMisses.Load(),
		BytesRead:    s.cBytesRead.Load(),
		BytesWritten: s.cBytesWritten.Load(),
	}
}

// Flush removes all keys (job teardown between experiment runs).
func (s *Store) Flush() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.data = make(map[string][]byte)
}

// Link returns the network link used by the store, so callers can
// estimate transfer times without performing operations.
func (s *Store) Link() netmodel.Link { return s.link }

// TransferTime is a convenience passthrough for estimating the cost of a
// hypothetical transfer of n bytes through this store's link.
func (s *Store) TransferTime(n int) time.Duration { return s.link.TransferTime(n) }
