package kvstore

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"mlless/internal/faults"
	"mlless/internal/netmodel"
	"mlless/internal/trace"
	"mlless/internal/vclock"
)

// TestShardForGolden pins the key→shard assignment. These values must
// never change: placement is part of the deterministic-trace contract
// (and, in the system the simulator models, clients agree on placement
// without coordination).
func TestShardForGolden(t *testing.T) {
	cases := []struct {
		key   string
		n     int
		shard int
	}{
		{"", 4, 1},
		{"", 8, 5},
		{"a", 4, 0},
		{"a", 8, 4},
		{"model/w0", 4, 0},
		{"model/w0", 8, 0},
		{"job1/upd/17/3", 4, 2},
		{"job1/upd/17/3", 8, 2},
		{"user:42", 4, 2},
		{"user:42", 8, 2},
	}
	for _, c := range cases {
		if got := ShardFor(c.key, c.n); got != c.shard {
			t.Errorf("ShardFor(%q, %d) = %d, want %d", c.key, c.n, got, c.shard)
		}
	}
	if ShardFor("anything", 1) != 0 {
		t.Error("single shard must own every key")
	}
}

func TestShardForStableAndInRange(t *testing.T) {
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("job1/upd/%d/%d", i%17, i)
		for _, n := range []int{1, 2, 4, 8, 16} {
			a, b := ShardFor(key, n), ShardFor(key, n)
			if a != b {
				t.Fatalf("ShardFor(%q, %d) unstable: %d vs %d", key, n, a, b)
			}
			if a < 0 || a >= n {
				t.Fatalf("ShardFor(%q, %d) = %d out of range", key, n, a)
			}
		}
	}
}

// driveOps runs one fixed operation sequence against a store interface.
type kvAPI interface {
	Set(*vclock.Clock, string, []byte)
	Get(*vclock.Clock, string) ([]byte, bool)
	MGet(*vclock.Clock, []string) [][]byte
	MGetView(*vclock.Clock, []string) [][]byte
	Delete(*vclock.Clock, string)
	Keys(*vclock.Clock, string) []string
	SetFaults(*faults.Injector)
	SetTracer(*trace.Tracer)
	Len() int
}

func driveOps(t *testing.T, s kvAPI, clk *vclock.Clock) {
	t.Helper()
	for i := 0; i < 8; i++ {
		s.Set(clk, fmt.Sprintf("upd/%d", i), bytes.Repeat([]byte{byte(i)}, 100*(i+1)))
	}
	keys := make([]string, 8)
	for i := range keys {
		keys[i] = fmt.Sprintf("upd/%d", i)
	}
	if got := s.MGet(clk, keys); len(got) != 8 || got[3] == nil {
		t.Fatal("MGet lost values")
	}
	if got := s.MGetView(clk, append(keys, "missing")); got[8] != nil {
		t.Fatal("missing key yielded a value")
	}
	if _, ok := s.Get(clk, "upd/5"); !ok {
		t.Fatal("Get lost a value")
	}
	if _, ok := s.Get(clk, "nope"); ok {
		t.Fatal("phantom key")
	}
	if ks := s.Keys(clk, "upd/"); len(ks) != 8 {
		t.Fatalf("Keys found %d, want 8", len(ks))
	}
	s.Delete(clk, "upd/0")
	if s.Len() != 7 {
		t.Fatalf("Len = %d, want 7", s.Len())
	}
}

// TestShardedOneIsByteIdenticalToStore proves the refactor is
// behavior-preserving at the default: a 1-shard tier must charge the
// same virtual time and emit a byte-identical trace as the plain Store,
// under fault injection.
func TestShardedOneIsByteIdenticalToStore(t *testing.T) {
	spec := faults.Spec{Seed: 5, KVFailProb: 0.2, KVSlowProb: 0.2}
	run := func(s kvAPI) ([]byte, time.Duration) {
		s.SetFaults(faults.New(spec))
		tr := trace.New()
		s.SetTracer(tr)
		var clk vclock.Clock
		tr.RegisterClock(&clk, "w0")
		driveOps(t, s, &clk)
		var buf bytes.Buffer
		if err := trace.WriteChrome(&buf, tr.Events()); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes(), clk.Now()
	}

	plainTrace, plainEnd := run(New(netmodel.RedisLink()))
	shardTrace, shardEnd := run(NewSharded(netmodel.RedisLink(), 1))
	if plainEnd != shardEnd {
		t.Fatalf("clock diverged: store %v, sharded(1) %v", plainEnd, shardEnd)
	}
	if !bytes.Equal(plainTrace, shardTrace) {
		t.Fatalf("traces diverged:\nstore:      %s\nsharded(1): %s", plainTrace, shardTrace)
	}
}

// TestShardedDeterministic proves a faulted, traced, multi-shard run is
// byte-identical across executions.
func TestShardedDeterministic(t *testing.T) {
	run := func() []byte {
		s := NewSharded(netmodel.RedisLink(), 4)
		s.SetFaults(faults.New(faults.Spec{Seed: 9, KVFailProb: 0.2, KVSlowProb: 0.2}))
		tr := trace.New()
		s.SetTracer(tr)
		var clk vclock.Clock
		tr.RegisterClock(&clk, "w0")
		driveOps(t, s, &clk)
		var buf bytes.Buffer
		if err := trace.WriteChrome(&buf, tr.Events()); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if a, b := run(), run(); !bytes.Equal(a, b) {
		t.Fatal("identical sharded runs produced different traces")
	}
}

// TestShardedRouting proves single-key operations land on the shard
// ShardFor names, and nowhere else.
func TestShardedRouting(t *testing.T) {
	s := NewSharded(netmodel.RedisLink(), 4)
	var clk vclock.Clock
	for i := 0; i < 32; i++ {
		key := fmt.Sprintf("k%d", i)
		s.Set(&clk, key, []byte{1})
		owner := ShardFor(key, 4)
		for i := 0; i < 4; i++ {
			sh := s.Shard(i)
			sh.mu.Lock()
			_, present := sh.data[key]
			sh.mu.Unlock()
			if present != (i == owner) {
				t.Fatalf("key %q: present on shard %d, owner is %d", key, i, owner)
			}
		}
		if got, ok := s.Get(&clk, key); !ok || len(got) != 1 {
			t.Fatalf("Get(%q) lost the value", key)
		}
		s.Delete(&clk, key)
	}
	if s.Len() != 0 {
		t.Fatalf("Len = %d after deleting everything", s.Len())
	}
}

// TestShardedMGetChargesMaxOfBranches pins the fan-out pricing: keys on
// different shards transfer over concurrent connections, so the caller
// pays the most expensive branch, not the sum.
func TestShardedMGetChargesMaxOfBranches(t *testing.T) {
	link := netmodel.Link{Latency: time.Millisecond, BandwidthBps: 1e6} // 1 MB/s: size dominates
	s := NewSharded(link, 2)
	var clk vclock.Clock
	// "k0" and "k2" live on shard 0; "k1" on shard 1 (see ShardFor).
	s.Set(&clk, "k0", make([]byte, 1000))
	s.Set(&clk, "k2", make([]byte, 1000))
	s.Set(&clk, "k1", make([]byte, 500))

	start := clk.Now()
	got := s.MGet(&clk, []string{"k0", "k1", "k2"})
	for i, v := range got {
		if v == nil {
			t.Fatalf("MGet[%d] = nil", i)
		}
	}
	// Branch costs: shard 0 moves 2000 B, shard 1 moves 500 B.
	slow := link.TransferTime(2000)
	fast := link.TransferTime(500)
	if fast >= slow {
		t.Fatal("test setup broken: branches should differ")
	}
	if got := clk.Now() - start; got != slow {
		t.Fatalf("fan-out charged %v, want max branch %v (serial sum would be %v)", got, slow, slow+fast)
	}
}

// TestShardedSpreadsTraffic sanity-checks the per-shard counter
// namespaces: a multi-shard tier accounts traffic under kv.sN.*.
func TestShardedSpreadsTraffic(t *testing.T) {
	s := NewSharded(netmodel.RedisLink(), 4)
	var clk vclock.Clock
	for i := 0; i < 64; i++ {
		s.Set(&clk, fmt.Sprintf("k%d", i), []byte{1})
	}
	reg := s.Registry()
	var total int64
	for i := 0; i < 4; i++ {
		n := reg.Counter(fmt.Sprintf("kv.s%d.sets", i)).Load()
		if n == 0 {
			t.Errorf("shard %d served no sets; hashing is not spreading keys", i)
		}
		total += n
	}
	if total != 64 {
		t.Fatalf("per-shard sets sum to %d, want 64", total)
	}
	if reg.Counter("kv.sets").Load() != 0 {
		t.Fatal("multi-shard tier leaked counts into the single-endpoint namespace")
	}
}

func TestShardedMGetViewIntoMatchesMGetView(t *testing.T) {
	s := NewSharded(netmodel.Link{}, 4)
	var clk vclock.Clock
	keys := make([]string, 0, 8)
	for i := 0; i < 8; i++ {
		k := fmt.Sprintf("k%d", i)
		if i%3 != 2 { // leave some keys missing
			s.Set(&clk, k, []byte(k+"-val"))
		}
		keys = append(keys, k)
	}
	want := s.MGetView(&clk, keys)
	scratch := make([][]byte, 1) // deliberately too short: must grow
	got := s.MGetViewInto(&clk, keys, scratch)
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if string(got[i]) != string(want[i]) || (got[i] == nil) != (want[i] == nil) {
			t.Fatalf("entry %d: %q vs %q", i, got[i], want[i])
		}
	}
	// Reuse at sufficient capacity: stale entries for missing keys must
	// be cleared.
	again := s.MGetViewInto(&clk, keys, got)
	for i := range want {
		if (again[i] == nil) != (want[i] == nil) {
			t.Fatalf("reused entry %d stale: %q", i, again[i])
		}
	}
}
