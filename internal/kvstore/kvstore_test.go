package kvstore

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"mlless/internal/faults"
	"mlless/internal/netmodel"
	"mlless/internal/vclock"
)

func fastStore() *Store { return New(netmodel.Link{}) }

func TestSetGet(t *testing.T) {
	s := fastStore()
	var clk vclock.Clock
	s.Set(&clk, "a", []byte("hello"))
	got, ok := s.Get(&clk, "a")
	if !ok || string(got) != "hello" {
		t.Fatalf("Get = %q, %v", got, ok)
	}
}

func TestGetMissing(t *testing.T) {
	s := fastStore()
	var clk vclock.Clock
	if _, ok := s.Get(&clk, "nope"); ok {
		t.Fatal("missing key reported present")
	}
	if n := s.Registry().Counter("kv.misses").Load(); n != 1 {
		t.Fatalf("misses = %d", n)
	}
}

func TestValueCopiedAtBoundary(t *testing.T) {
	s := fastStore()
	var clk vclock.Clock
	val := []byte("abc")
	s.Set(&clk, "k", val)
	val[0] = 'X' // caller mutates after Set
	got, _ := s.Get(&clk, "k")
	if string(got) != "abc" {
		t.Fatal("Set aliased caller's buffer")
	}
	got[0] = 'Y' // caller mutates returned buffer
	again, _ := s.Get(&clk, "k")
	if string(again) != "abc" {
		t.Fatal("Get returned aliased internal buffer")
	}
}

func TestDelete(t *testing.T) {
	s := fastStore()
	var clk vclock.Clock
	s.Set(&clk, "k", []byte("v"))
	s.Delete(&clk, "k")
	if _, ok := s.Get(&clk, "k"); ok {
		t.Fatal("key survived Delete")
	}
}

func TestKeysPrefixSorted(t *testing.T) {
	s := fastStore()
	var clk vclock.Clock
	for _, k := range []string{"u/3", "u/1", "v/9", "u/2"} {
		s.Set(&clk, k, []byte("x"))
	}
	got := s.Keys(&clk, "u/")
	want := []string{"u/1", "u/2", "u/3"}
	if len(got) != len(want) {
		t.Fatalf("Keys = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Keys = %v, want %v", got, want)
		}
	}
}

func TestMGet(t *testing.T) {
	s := fastStore()
	var clk vclock.Clock
	s.Set(&clk, "a", []byte("1"))
	s.Set(&clk, "c", []byte("3"))
	got := s.MGet(&clk, []string{"a", "b", "c"})
	if string(got[0]) != "1" || got[1] != nil || string(got[2]) != "3" {
		t.Fatalf("MGet = %v", got)
	}
}

func TestClockCharging(t *testing.T) {
	link := netmodel.Link{Latency: time.Millisecond, BandwidthBps: 1e6}
	s := New(link)
	var clk vclock.Clock
	payload := make([]byte, 1e6) // 1 second at 1 MB/s
	s.Set(&clk, "k", payload)
	want := time.Millisecond + time.Second
	if clk.Now() != want {
		t.Fatalf("Set charged %v, want %v", clk.Now(), want)
	}
	before := clk.Now()
	s.Get(&clk, "k")
	if clk.Now()-before != want {
		t.Fatalf("Get charged %v, want %v", clk.Now()-before, want)
	}
}

func TestMGetPipelinesLatency(t *testing.T) {
	link := netmodel.Link{Latency: time.Millisecond, BandwidthBps: 1e6}
	s := New(link)
	var setClk vclock.Clock
	for i := 0; i < 10; i++ {
		s.Set(&setClk, fmt.Sprintf("k%d", i), make([]byte, 1000))
	}
	var clk vclock.Clock
	keys := make([]string, 10)
	for i := range keys {
		keys[i] = fmt.Sprintf("k%d", i)
	}
	s.MGet(&clk, keys)
	// One latency + 10 KB at 1 MB/s = 1 ms + 10 ms.
	want := time.Millisecond + 10*time.Millisecond
	if clk.Now() != want {
		t.Fatalf("MGet charged %v, want %v", clk.Now(), want)
	}
}

func TestMissChargesRTT(t *testing.T) {
	link := netmodel.Link{Latency: 2 * time.Millisecond, BandwidthBps: 1e6}
	s := New(link)
	var clk vclock.Clock
	s.Get(&clk, "missing")
	if clk.Now() != 2*time.Millisecond {
		t.Fatalf("miss charged %v", clk.Now())
	}
}

func TestMetrics(t *testing.T) {
	s := fastStore()
	var clk vclock.Clock
	s.Set(&clk, "a", []byte("12345"))
	s.Get(&clk, "a")
	s.Get(&clk, "b")
	s.Delete(&clk, "a")
	reg := s.Registry()
	load := func(name string) int64 { return reg.Counter(name).Load() }
	if load("kv.sets") != 1 || load("kv.gets") != 2 || load("kv.deletes") != 1 || load("kv.misses") != 1 {
		t.Fatalf("counters: sets=%d gets=%d deletes=%d misses=%d",
			load("kv.sets"), load("kv.gets"), load("kv.deletes"), load("kv.misses"))
	}
	if load("kv.bytes_written") != 5 || load("kv.bytes_read") != 5 {
		t.Fatalf("byte counters: written=%d read=%d", load("kv.bytes_written"), load("kv.bytes_read"))
	}
}

func TestFlush(t *testing.T) {
	s := fastStore()
	var clk vclock.Clock
	s.Set(&clk, "a", []byte("x"))
	s.Flush()
	if s.Len() != 0 {
		t.Fatal("Flush left keys")
	}
}

func TestConcurrentAccess(t *testing.T) {
	s := fastStore()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var clk vclock.Clock
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("w%d/%d", w, i)
				s.Set(&clk, key, []byte{byte(i)})
				if v, ok := s.Get(&clk, key); !ok || v[0] != byte(i) {
					t.Errorf("lost own write %s", key)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if s.Len() != 8*200 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestMGetViewSharesBuffers(t *testing.T) {
	s := fastStore()
	var clk vclock.Clock
	s.Set(&clk, "a", []byte("abc"))
	s.Set(&clk, "b", []byte("de"))
	views := s.MGetView(&clk, []string{"a", "missing", "b"})
	if string(views[0]) != "abc" || views[1] != nil || string(views[2]) != "de" {
		t.Fatalf("MGetView = %q", views)
	}
	// Overwriting a key must not disturb a previously returned view
	// (stored values are immutable; Set replaces wholesale).
	s.Set(&clk, "a", []byte("xyz"))
	if string(views[0]) != "abc" {
		t.Fatal("view mutated by a later Set")
	}
}

func TestMGetViewChargesLikeMGet(t *testing.T) {
	link := netmodel.Link{Latency: time.Millisecond, BandwidthBps: 1e6}
	s := New(link)
	var setClk vclock.Clock
	s.Set(&setClk, "k", make([]byte, 5000))
	var a, b vclock.Clock
	s.MGet(&a, []string{"k"})
	s.MGetView(&b, []string{"k"})
	if a.Now() != b.Now() {
		t.Fatalf("charging differs: MGet %v, MGetView %v", a.Now(), b.Now())
	}
}

// --- fault injection ---

func TestFaultSlowOpMultipliesCharge(t *testing.T) {
	link := netmodel.RedisLink()
	clean := New(link)
	faulty := New(link)
	faulty.SetFaults(faults.New(faults.Spec{Seed: 1, KVSlowProb: 1, KVSlowFactor: 4}))
	val := make([]byte, 1<<16)
	var a, b vclock.Clock
	clean.Set(&a, "k", val)
	faulty.Set(&b, "k", val)
	// A spike multiplies the operation's nominal charge by the factor.
	if want := 4 * a.Now(); b.Now() != want {
		t.Fatalf("slow Set charged %v, want %v (clean %v)", b.Now(), want, a.Now())
	}
}

func TestFaultFailedOpsCostRetries(t *testing.T) {
	link := netmodel.RedisLink()
	in := faults.New(faults.Spec{Seed: 1, KVFailProb: 1})
	s := New(link)
	s.SetFaults(in)
	val := make([]byte, 4096)
	var clk vclock.Clock
	s.Set(&clk, "k", val)
	base := link.TransferTime(len(val))
	// Probability 1 exhausts the retry budget: 5 failed attempts, each
	// costing the client timeout plus a re-execution, then the success.
	want := base + 5*(faults.DefaultRetryPenalty+base)
	if clk.Now() != want {
		t.Fatalf("failed Set charged %v, want %v", clk.Now(), want)
	}
	if m := in.Metrics(); m.KVFailures != 5 {
		t.Fatalf("KVFailures = %d, want 5", m.KVFailures)
	}
	// Failures are retried client-side; the data still lands.
	if _, ok := s.Get(&clk, "k"); !ok {
		t.Fatal("value lost to injected failures")
	}
}

func TestFaultRemovedWithNil(t *testing.T) {
	link := netmodel.RedisLink()
	s := New(link)
	s.SetFaults(faults.New(faults.Spec{Seed: 1, KVSlowProb: 1}))
	s.SetFaults(nil)
	var clk vclock.Clock
	val := make([]byte, 4096)
	s.Set(&clk, "k", val)
	if clk.Now() != link.TransferTime(len(val)) {
		t.Fatalf("removed injector still charged: %v", clk.Now())
	}
}

// --- pooled wire buffers ---

// TestCopyOnPutProtectsPooledBuffers pins the contract the engine's
// wire-buffer pool depends on: Set copies at the boundary, so a caller
// may recycle its encode buffer for a different payload immediately
// after Set returns without corrupting stored values.
func TestCopyOnPutProtectsPooledBuffers(t *testing.T) {
	s := fastStore()
	var clk vclock.Clock
	buf := []byte("step-1-update")
	s.Set(&clk, "upd/1", buf)
	// Recycle the buffer for the next publish, as a pool would.
	buf = append(buf[:0], "step-2-update"...)
	s.Set(&clk, "upd/2", buf)
	got1, _ := s.Get(&clk, "upd/1")
	got2, _ := s.Get(&clk, "upd/2")
	if string(got1) != "step-1-update" || string(got2) != "step-2-update" {
		t.Fatalf("pooled reuse corrupted store: %q, %q", got1, got2)
	}
}

func TestMGetViewIntoReusesAndResets(t *testing.T) {
	s := fastStore()
	var clk vclock.Clock
	s.Set(&clk, "a", []byte("abc"))
	s.Set(&clk, "b", []byte("de"))
	out := s.MGetViewInto(&clk, []string{"a", "b"}, nil)
	if string(out[0]) != "abc" || string(out[1]) != "de" {
		t.Fatalf("first MGetViewInto = %q", out)
	}
	// Second call reuses the slice; a now-missing key must come back
	// nil, not a stale view from the previous call.
	out2 := s.MGetViewInto(&clk, []string{"missing", "b"}, out)
	if &out2[0] != &out[0] {
		t.Fatal("MGetViewInto did not reuse the caller's slice")
	}
	if out2[0] != nil || string(out2[1]) != "de" {
		t.Fatalf("second MGetViewInto = %q", out2)
	}
	// Growing past capacity reallocates but still serves correctly.
	out3 := s.MGetViewInto(&clk, []string{"a", "b", "missing"}, out2[:0])
	if string(out3[0]) != "abc" || string(out3[1]) != "de" || out3[2] != nil {
		t.Fatalf("grown MGetViewInto = %q", out3)
	}
}

func TestMGetViewIntoChargesLikeMGetView(t *testing.T) {
	link := netmodel.Link{Latency: time.Millisecond, BandwidthBps: 1e6}
	s := New(link)
	var setClk vclock.Clock
	s.Set(&setClk, "k", make([]byte, 5000))
	var a, b vclock.Clock
	s.MGetView(&a, []string{"k", "missing"})
	scratch := make([][]byte, 0, 2)
	s.MGetViewInto(&b, []string{"k", "missing"}, scratch)
	if a.Now() != b.Now() {
		t.Fatalf("charging differs: MGetView %v, MGetViewInto %v", a.Now(), b.Now())
	}
}
