// Package objstore simulates the serverless object storage service (IBM
// COS in the paper) that holds dataset mini-batches and, for the PyWren
// baseline, carries every intermediate result. Compared to the key-value
// store it has much higher first-byte latency, which is precisely why a
// non-specialized serverless design that shuffles updates through object
// storage is "dramatically inefficient" (§6.2).
package objstore

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"mlless/internal/netmodel"
	"mlless/internal/vclock"
)

// ErrNotFound is returned when a requested object does not exist.
var ErrNotFound = errors.New("objstore: object not found")

// Metrics aggregates the traffic a Store has served.
type Metrics struct {
	Puts         int64
	Gets         int64
	Deletes      int64
	Lists        int64
	BytesRead    int64
	BytesWritten int64
}

// Store is a simulated object storage service with bucket/key namespaces.
// It is safe for concurrent use.
type Store struct {
	link netmodel.Link

	mu      sync.Mutex
	buckets map[string]map[string][]byte
	metrics Metrics
}

// New returns an empty store reached through link.
func New(link netmodel.Link) *Store {
	return &Store{link: link, buckets: make(map[string]map[string][]byte)}
}

// Put stores a copy of val as bucket/key, creating the bucket on demand.
func (s *Store) Put(clk *vclock.Clock, bucket, key string, val []byte) {
	clk.Advance(s.link.TransferTime(len(val)))
	cp := make([]byte, len(val))
	copy(cp, val)

	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.buckets[bucket]
	if !ok {
		b = make(map[string][]byte)
		s.buckets[bucket] = b
	}
	b[key] = cp
	s.metrics.Puts++
	s.metrics.BytesWritten += int64(len(val))
}

// Get returns a copy of the object at bucket/key.
func (s *Store) Get(clk *vclock.Clock, bucket, key string) ([]byte, error) {
	s.mu.Lock()
	var cp []byte
	val, ok := s.buckets[bucket][key]
	s.metrics.Gets++
	if ok {
		cp = make([]byte, len(val))
		copy(cp, val)
		s.metrics.BytesRead += int64(len(val))
	}
	s.mu.Unlock()

	if !ok {
		clk.Advance(s.link.RTT())
		return nil, fmt.Errorf("get %s/%s: %w", bucket, key, ErrNotFound)
	}
	clk.Advance(s.link.TransferTime(len(cp)))
	return cp, nil
}

// Size returns the byte size of an object without transferring it
// (a HEAD request: one round trip).
func (s *Store) Size(clk *vclock.Clock, bucket, key string) (int, error) {
	clk.Advance(s.link.RTT())

	s.mu.Lock()
	defer s.mu.Unlock()
	val, ok := s.buckets[bucket][key]
	if !ok {
		return 0, fmt.Errorf("head %s/%s: %w", bucket, key, ErrNotFound)
	}
	return len(val), nil
}

// Delete removes bucket/key. Deleting a missing object is not an error,
// mirroring S3/COS semantics.
func (s *Store) Delete(clk *vclock.Clock, bucket, key string) {
	clk.Advance(s.link.RTT())

	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.buckets[bucket], key)
	s.metrics.Deletes++
}

// List returns the sorted keys in bucket with the given prefix.
func (s *Store) List(clk *vclock.Clock, bucket, prefix string) []string {
	clk.Advance(s.link.RTT())

	s.mu.Lock()
	defer s.mu.Unlock()
	s.metrics.Lists++
	var out []string
	for k := range s.buckets[bucket] {
		if strings.HasPrefix(k, prefix) {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// Metrics returns a snapshot of the traffic counters.
func (s *Store) Metrics() Metrics {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.metrics
}

// DeleteBucket drops a whole bucket (experiment teardown).
func (s *Store) DeleteBucket(bucket string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.buckets, bucket)
}

// Link returns the store's network link for time estimation.
func (s *Store) Link() netmodel.Link { return s.link }
