// Package objstore simulates the serverless object storage service (IBM
// COS in the paper) that holds dataset mini-batches and, for the PyWren
// baseline, carries every intermediate result. Compared to the key-value
// store it has much higher first-byte latency, which is precisely why a
// non-specialized serverless design that shuffles updates through object
// storage is "dramatically inefficient" (§6.2).
//
// Link charging, tracing and counters delegate to the shared substrate
// pipeline (package substrate); the pipeline is built without a fault
// domain because the paper's failure modes live on the KV store, the
// broker and the FaaS control plane, not on COS.
package objstore

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"mlless/internal/netmodel"
	"mlless/internal/substrate"
	"mlless/internal/trace"
	"mlless/internal/vclock"
)

// ErrNotFound is returned when a requested object does not exist.
var ErrNotFound = errors.New("objstore: object not found")

// Store is a simulated object storage service with bucket/key namespaces.
// It is safe for concurrent use.
type Store struct {
	pipe *substrate.Pipeline

	mu      sync.Mutex
	buckets map[string]map[string][]byte

	// base, when non-nil, is a read-only lower layer: lookups that miss
	// this store's own buckets fall through to base, while writes and
	// deletes stay in this store (see ForkReadOnly).
	base *Store

	// Counters live in the unified registry under "obj.*".
	cPuts, cGets, cDeletes, cLists, cBytesRead, cBytesWritten *trace.Counter
}

// New returns an empty store reached through link, with a private
// metrics registry.
func New(link netmodel.Link) *Store {
	return NewWithRegistry(link, trace.NewRegistry())
}

// NewWithRegistry returns an empty store whose counters live in the
// given unified registry under "obj.*".
func NewWithRegistry(link netmodel.Link, reg *trace.Registry) *Store {
	pipe := substrate.New(substrate.Config{
		Link:     link,
		Cat:      trace.CatObj,
		KeyLabel: "key",
		Domain:   substrate.DomainNone,
	}, reg)
	return &Store{
		pipe:          pipe,
		buckets:       make(map[string]map[string][]byte),
		cPuts:         pipe.Counter("obj.puts"),
		cGets:         pipe.Counter("obj.gets"),
		cDeletes:      pipe.Counter("obj.deletes"),
		cLists:        pipe.Counter("obj.lists"),
		cBytesRead:    pipe.Counter("obj.bytes_read"),
		cBytesWritten: pipe.Counter("obj.bytes_written"),
	}
}

// Registry returns the metrics registry the store's counters live in.
func (s *Store) Registry() *trace.Registry { return s.pipe.Registry() }

// ForkReadOnly returns a new store layered over s: reads that miss the
// fork's own buckets fall through to s, while every write and delete
// lands in the fork, leaving s untouched. Counters and link charging go
// to the fork's own pipeline under reg, so a forked execution meters
// its object traffic privately. The fork holds no tracer.
//
// The fall-through is a snapshot view in the same sense as PeekView:
// it is safe as long as s is not written concurrently with the fork's
// reads, which is the sandbox contract — the shared store only holds
// staged datasets while forked jobs run. Deletes only mask objects the
// fork itself wrote; forked jobs never delete base objects (datasets
// are read-only; scratch buckets are job-namespaced and live in the
// fork).
func (s *Store) ForkReadOnly(reg *trace.Registry) *Store {
	f := NewWithRegistry(s.pipe.Link(), reg)
	f.base = s
	return f
}

// lookup resolves bucket/key through the overlay chain.
func (s *Store) lookup(bucket, key string) ([]byte, bool) {
	s.mu.Lock()
	val, ok := s.buckets[bucket][key]
	s.mu.Unlock()
	if !ok && s.base != nil {
		return s.base.lookup(bucket, key)
	}
	return val, ok
}

// SetTracer installs (or, with nil, removes) a tracer recording one
// span per operation on the calling clock's track. Do not call
// concurrently with operations; the engine installs it during job setup
// and removes it at teardown.
func (s *Store) SetTracer(tr *trace.Tracer) { s.pipe.SetTracer(tr) }

// Put stores a copy of val as bucket/key, creating the bucket on demand.
func (s *Store) Put(clk *vclock.Clock, bucket, key string, val []byte) {
	s.pipe.Charge(clk, "put", bucket+"/"+key, len(val), s.pipe.TransferTime(len(val)))
	cp := make([]byte, len(val))
	copy(cp, val)

	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.buckets[bucket]
	if !ok {
		b = make(map[string][]byte)
		s.buckets[bucket] = b
	}
	b[key] = cp
	s.cPuts.Inc()
	s.cBytesWritten.Add(int64(len(val)))
}

// Get returns a copy of the object at bucket/key.
func (s *Store) Get(clk *vclock.Clock, bucket, key string) ([]byte, error) {
	val, ok := s.lookup(bucket, key)
	var cp []byte
	if ok {
		cp = make([]byte, len(val))
		copy(cp, val)
	}
	s.cGets.Inc()

	if !ok {
		s.pipe.ChargeUntraced(clk, "get", bucket+"/"+key, s.pipe.RTT())
		return nil, fmt.Errorf("get %s/%s: %w", bucket, key, ErrNotFound)
	}
	s.cBytesRead.Add(int64(len(cp)))
	s.pipe.Charge(clk, "get", bucket+"/"+key, len(cp), s.pipe.TransferTime(len(cp)))
	return cp, nil
}

// GetRangeView returns a zero-copy view of length bytes at offset off
// of the object at bucket/key — an HTTP ranged read: one request that
// pays the first-byte latency plus the transfer of just the requested
// range, the access pattern of the columnar shard tier (one batch
// block per step out of a multi-batch shard). The view is safe to
// retain: Put copies on write and replaces stored slices wholesale, so
// a view is an immutable snapshot later writes never mutate. A missing
// object or a range outside it costs one round trip and errors.
func (s *Store) GetRangeView(clk *vclock.Clock, bucket, key string, off, length int) ([]byte, error) {
	val, ok := s.lookup(bucket, key)
	s.cGets.Inc()

	if !ok {
		s.pipe.ChargeUntraced(clk, "getrange", bucket+"/"+key, s.pipe.RTT())
		return nil, fmt.Errorf("getrange %s/%s: %w", bucket, key, ErrNotFound)
	}
	if off < 0 || length < 0 || off+length > len(val) {
		s.pipe.ChargeUntraced(clk, "getrange", bucket+"/"+key, s.pipe.RTT())
		return nil, fmt.Errorf("getrange %s/%s: range [%d,%d) outside %d-byte object",
			bucket, key, off, off+length, len(val))
	}
	s.cBytesRead.Add(int64(length))
	s.pipe.Charge(clk, "getrange", bucket+"/"+key, length, s.pipe.TransferTime(length))
	return val[off : off+length], nil
}

// PeekView returns a zero-copy view of bucket/key without charging any
// virtual time: simulator-side access for caches that parse an object
// once while billing every read through Get/GetRangeView — the shard
// tier's analogue of dataset.Cache's decode-once bookkeeping. The view
// follows the same immutable-snapshot contract as GetRangeView.
func (s *Store) PeekView(bucket, key string) ([]byte, bool) {
	return s.lookup(bucket, key)
}

// streamBandwidth returns the effective per-stream bytes/second of n
// concurrent transfers: each stream sustains at most the store's
// per-stream rate, and together they cannot exceed the caller's NIC
// line rate (every function and VM in the deployment has a 1 Gbit/s
// NIC).
func (s *Store) streamBandwidth(n int) float64 {
	bw := s.pipe.Link().BandwidthBps
	if bw <= 0 {
		return 0
	}
	if agg := netmodel.GbpsNIC / float64(n); n > 1 && agg < bw {
		return agg
	}
	return bw
}

// streamTime is TransferTime under the per-stream bandwidth of an
// n-way concurrent transfer.
func (s *Store) streamTime(n, bytes int) time.Duration {
	d := s.pipe.Link().Latency
	if bw := s.streamBandwidth(n); bw > 0 && bytes > 0 {
		d += time.Duration(float64(bytes) / bw * float64(time.Second))
	}
	return d
}

// PutMulti stores copies of vals[i] under bucket/keys[i], issuing the
// writes as concurrent streams: every branch pays the first-byte
// latency once, the streams share the caller's NIC, and the clock
// advances by the slowest branch — the upload half of a storage-mediated
// collective. keys and vals must have equal length.
func (s *Store) PutMulti(clk *vclock.Clock, bucket string, keys []string, vals [][]byte) {
	if len(keys) != len(vals) {
		panic(fmt.Sprintf("objstore: PutMulti with %d keys, %d values", len(keys), len(vals)))
	}
	if len(keys) == 0 {
		s.pipe.Charge(clk, "mput", bucket+"/", 0, s.pipe.TransferTime(0))
		return
	}
	start := clk.Now()
	var max time.Duration
	for i, key := range keys {
		label := bucket + "/" + key
		base := s.streamTime(len(keys), len(vals[i]))
		cost := s.pipe.Cost("mput", label, start, base)
		if cost > max {
			max = cost
		}
		if s.pipe.Enabled() {
			s.pipe.TraceRange(clk, "mput", label, start, start+cost, base, len(vals[i]))
		}
	}

	s.mu.Lock()
	b, ok := s.buckets[bucket]
	if !ok {
		b = make(map[string][]byte)
		s.buckets[bucket] = b
	}
	for i, key := range keys {
		cp := make([]byte, len(vals[i]))
		copy(cp, vals[i])
		b[key] = cp
		s.cPuts.Inc()
		s.cBytesWritten.Add(int64(len(vals[i])))
	}
	s.mu.Unlock()
	clk.Advance(max)
}

// GetMultiViewInto reads bucket/keys[i] as concurrent streams and
// returns zero-copy views of the stored objects, writing into out
// (resized, reallocating only when its capacity is short; pass the
// returned slice back to reuse it). Missing keys yield nil entries and
// are charged one round trip each. Views are safe to retain: Put copies
// on write and replaces stored slices wholesale, so a view is an
// immutable snapshot that later writes or deletes never mutate.
// Charging mirrors PutMulti: each branch pays the first-byte latency,
// the streams share the caller's NIC, and the clock advances by the
// slowest branch.
func (s *Store) GetMultiViewInto(clk *vclock.Clock, bucket string, keys []string, out [][]byte) [][]byte {
	out = resizeViews(out, len(keys))
	if len(keys) == 0 {
		s.pipe.Charge(clk, "mget", bucket+"/", 0, s.pipe.TransferTime(0))
		return out
	}

	for i, key := range keys {
		out[i], _ = s.lookup(bucket, key)
	}

	start := clk.Now()
	var max time.Duration
	for i, key := range keys {
		label := bucket + "/" + key
		s.cGets.Inc()
		var base time.Duration
		if out[i] == nil {
			base = s.pipe.RTT()
		} else {
			base = s.streamTime(len(keys), len(out[i]))
			s.cBytesRead.Add(int64(len(out[i])))
		}
		cost := s.pipe.Cost("mget", label, start, base)
		if cost > max {
			max = cost
		}
		if s.pipe.Enabled() {
			s.pipe.TraceRange(clk, "mget", label, start, start+cost, base, len(out[i]))
		}
	}
	clk.Advance(max)
	return out
}

// resizeViews returns out with length n and every entry nil, reusing
// its backing array when large enough.
func resizeViews(out [][]byte, n int) [][]byte {
	if cap(out) < n {
		return make([][]byte, n)
	}
	out = out[:n]
	for i := range out {
		out[i] = nil
	}
	return out
}

// Size returns the byte size of an object without transferring it
// (a HEAD request: one round trip).
func (s *Store) Size(clk *vclock.Clock, bucket, key string) (int, error) {
	s.pipe.ChargeUntraced(clk, "head", bucket+"/"+key, s.pipe.RTT())

	val, ok := s.lookup(bucket, key)
	if !ok {
		return 0, fmt.Errorf("head %s/%s: %w", bucket, key, ErrNotFound)
	}
	return len(val), nil
}

// Delete removes bucket/key. Deleting a missing object is not an error,
// mirroring S3/COS semantics.
func (s *Store) Delete(clk *vclock.Clock, bucket, key string) {
	s.pipe.ChargeUntraced(clk, "del", bucket+"/"+key, s.pipe.RTT())

	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.buckets[bucket], key)
	s.cDeletes.Inc()
}

// List returns the sorted keys in bucket with the given prefix.
func (s *Store) List(clk *vclock.Clock, bucket, prefix string) []string {
	s.pipe.ChargeUntraced(clk, "list", bucket+"/"+prefix, s.pipe.RTT())

	s.cLists.Inc()
	seen := make(map[string]bool)
	for layer := s; layer != nil; layer = layer.base {
		layer.mu.Lock()
		for k := range layer.buckets[bucket] {
			if strings.HasPrefix(k, prefix) {
				seen[k] = true
			}
		}
		layer.mu.Unlock()
	}
	out := make([]string, 0, len(seen))
	for k := range seen {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// DeleteBucket drops a whole bucket (experiment teardown).
func (s *Store) DeleteBucket(bucket string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.buckets, bucket)
}

// Link returns the store's network link for time estimation.
func (s *Store) Link() netmodel.Link { return s.pipe.Link() }
