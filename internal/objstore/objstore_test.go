package objstore

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"mlless/internal/netmodel"
	"mlless/internal/vclock"
)

func fastStore() *Store { return New(netmodel.Link{}) }

func TestPutGet(t *testing.T) {
	s := fastStore()
	var clk vclock.Clock
	s.Put(&clk, "data", "batch-0", []byte("payload"))
	got, err := s.Get(&clk, "data", "batch-0")
	if err != nil || string(got) != "payload" {
		t.Fatalf("Get = %q, %v", got, err)
	}
}

func TestGetMissingWrapsErrNotFound(t *testing.T) {
	s := fastStore()
	var clk vclock.Clock
	_, err := s.Get(&clk, "data", "nope")
	if !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
	_, err = s.Get(&clk, "nobucket", "nope")
	if !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing bucket err = %v", err)
	}
}

func TestValueCopiedAtBoundary(t *testing.T) {
	s := fastStore()
	var clk vclock.Clock
	val := []byte("abc")
	s.Put(&clk, "b", "k", val)
	val[0] = 'X'
	got, _ := s.Get(&clk, "b", "k")
	if string(got) != "abc" {
		t.Fatal("Put aliased caller buffer")
	}
	got[0] = 'Y'
	again, _ := s.Get(&clk, "b", "k")
	if string(again) != "abc" {
		t.Fatal("Get aliased internal buffer")
	}
}

func TestSize(t *testing.T) {
	s := fastStore()
	var clk vclock.Clock
	s.Put(&clk, "b", "k", make([]byte, 123))
	n, err := s.Size(&clk, "b", "k")
	if err != nil || n != 123 {
		t.Fatalf("Size = %d, %v", n, err)
	}
	if _, err := s.Size(&clk, "b", "missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Size missing err = %v", err)
	}
}

func TestDeleteIdempotent(t *testing.T) {
	s := fastStore()
	var clk vclock.Clock
	s.Put(&clk, "b", "k", []byte("v"))
	s.Delete(&clk, "b", "k")
	s.Delete(&clk, "b", "k") // no error, no panic
	if _, err := s.Get(&clk, "b", "k"); !errors.Is(err, ErrNotFound) {
		t.Fatal("object survived Delete")
	}
}

func TestListPrefixSorted(t *testing.T) {
	s := fastStore()
	var clk vclock.Clock
	for _, k := range []string{"train/2", "train/0", "test/0", "train/1"} {
		s.Put(&clk, "b", k, []byte("x"))
	}
	got := s.List(&clk, "b", "train/")
	want := []string{"train/0", "train/1", "train/2"}
	if len(got) != 3 {
		t.Fatalf("List = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("List = %v", got)
		}
	}
}

func TestClockCharging(t *testing.T) {
	link := netmodel.Link{Latency: 10 * time.Millisecond, BandwidthBps: 1e6}
	s := New(link)
	var clk vclock.Clock
	s.Put(&clk, "b", "k", make([]byte, 1e6))
	want := 10*time.Millisecond + time.Second
	if clk.Now() != want {
		t.Fatalf("Put charged %v, want %v", clk.Now(), want)
	}
	var getClk vclock.Clock
	if _, err := s.Get(&getClk, "b", "k"); err != nil {
		t.Fatal(err)
	}
	if getClk.Now() != want {
		t.Fatalf("Get charged %v, want %v", getClk.Now(), want)
	}
	var missClk vclock.Clock
	_, _ = s.Get(&missClk, "b", "missing")
	if missClk.Now() != 10*time.Millisecond {
		t.Fatalf("miss charged %v", missClk.Now())
	}
}

func TestMetrics(t *testing.T) {
	s := fastStore()
	var clk vclock.Clock
	s.Put(&clk, "b", "k", []byte("12345"))
	_, _ = s.Get(&clk, "b", "k")
	s.List(&clk, "b", "")
	s.Delete(&clk, "b", "k")
	reg := s.Registry()
	load := func(name string) int64 { return reg.Counter(name).Load() }
	if load("obj.puts") != 1 || load("obj.gets") != 1 || load("obj.lists") != 1 || load("obj.deletes") != 1 {
		t.Fatalf("counters: puts=%d gets=%d lists=%d deletes=%d",
			load("obj.puts"), load("obj.gets"), load("obj.lists"), load("obj.deletes"))
	}
	if load("obj.bytes_written") != 5 || load("obj.bytes_read") != 5 {
		t.Fatalf("byte counters: written=%d read=%d", load("obj.bytes_written"), load("obj.bytes_read"))
	}
}

func TestDeleteBucket(t *testing.T) {
	s := fastStore()
	var clk vclock.Clock
	s.Put(&clk, "b", "k", []byte("v"))
	s.DeleteBucket("b")
	if _, err := s.Get(&clk, "b", "k"); !errors.Is(err, ErrNotFound) {
		t.Fatal("bucket survived DeleteBucket")
	}
}

func TestConcurrentAccess(t *testing.T) {
	s := fastStore()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var clk vclock.Clock
			bucket := fmt.Sprintf("b%d", w)
			for i := 0; i < 100; i++ {
				key := fmt.Sprintf("k%d", i)
				s.Put(&clk, bucket, key, []byte{byte(i)})
				v, err := s.Get(&clk, bucket, key)
				if err != nil || v[0] != byte(i) {
					t.Errorf("lost own write %s/%s", bucket, key)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}
