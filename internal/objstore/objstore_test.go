package objstore

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"mlless/internal/netmodel"
	"mlless/internal/vclock"
)

func fastStore() *Store { return New(netmodel.Link{}) }

func TestPutGet(t *testing.T) {
	s := fastStore()
	var clk vclock.Clock
	s.Put(&clk, "data", "batch-0", []byte("payload"))
	got, err := s.Get(&clk, "data", "batch-0")
	if err != nil || string(got) != "payload" {
		t.Fatalf("Get = %q, %v", got, err)
	}
}

func TestGetMissingWrapsErrNotFound(t *testing.T) {
	s := fastStore()
	var clk vclock.Clock
	_, err := s.Get(&clk, "data", "nope")
	if !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
	_, err = s.Get(&clk, "nobucket", "nope")
	if !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing bucket err = %v", err)
	}
}

func TestValueCopiedAtBoundary(t *testing.T) {
	s := fastStore()
	var clk vclock.Clock
	val := []byte("abc")
	s.Put(&clk, "b", "k", val)
	val[0] = 'X'
	got, _ := s.Get(&clk, "b", "k")
	if string(got) != "abc" {
		t.Fatal("Put aliased caller buffer")
	}
	got[0] = 'Y'
	again, _ := s.Get(&clk, "b", "k")
	if string(again) != "abc" {
		t.Fatal("Get aliased internal buffer")
	}
}

func TestSize(t *testing.T) {
	s := fastStore()
	var clk vclock.Clock
	s.Put(&clk, "b", "k", make([]byte, 123))
	n, err := s.Size(&clk, "b", "k")
	if err != nil || n != 123 {
		t.Fatalf("Size = %d, %v", n, err)
	}
	if _, err := s.Size(&clk, "b", "missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Size missing err = %v", err)
	}
}

func TestDeleteIdempotent(t *testing.T) {
	s := fastStore()
	var clk vclock.Clock
	s.Put(&clk, "b", "k", []byte("v"))
	s.Delete(&clk, "b", "k")
	s.Delete(&clk, "b", "k") // no error, no panic
	if _, err := s.Get(&clk, "b", "k"); !errors.Is(err, ErrNotFound) {
		t.Fatal("object survived Delete")
	}
}

func TestListPrefixSorted(t *testing.T) {
	s := fastStore()
	var clk vclock.Clock
	for _, k := range []string{"train/2", "train/0", "test/0", "train/1"} {
		s.Put(&clk, "b", k, []byte("x"))
	}
	got := s.List(&clk, "b", "train/")
	want := []string{"train/0", "train/1", "train/2"}
	if len(got) != 3 {
		t.Fatalf("List = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("List = %v", got)
		}
	}
}

func TestClockCharging(t *testing.T) {
	link := netmodel.Link{Latency: 10 * time.Millisecond, BandwidthBps: 1e6}
	s := New(link)
	var clk vclock.Clock
	s.Put(&clk, "b", "k", make([]byte, 1e6))
	want := 10*time.Millisecond + time.Second
	if clk.Now() != want {
		t.Fatalf("Put charged %v, want %v", clk.Now(), want)
	}
	var getClk vclock.Clock
	if _, err := s.Get(&getClk, "b", "k"); err != nil {
		t.Fatal(err)
	}
	if getClk.Now() != want {
		t.Fatalf("Get charged %v, want %v", getClk.Now(), want)
	}
	var missClk vclock.Clock
	_, _ = s.Get(&missClk, "b", "missing")
	if missClk.Now() != 10*time.Millisecond {
		t.Fatalf("miss charged %v", missClk.Now())
	}
}

func TestMetrics(t *testing.T) {
	s := fastStore()
	var clk vclock.Clock
	s.Put(&clk, "b", "k", []byte("12345"))
	_, _ = s.Get(&clk, "b", "k")
	s.List(&clk, "b", "")
	s.Delete(&clk, "b", "k")
	reg := s.Registry()
	load := func(name string) int64 { return reg.Counter(name).Load() }
	if load("obj.puts") != 1 || load("obj.gets") != 1 || load("obj.lists") != 1 || load("obj.deletes") != 1 {
		t.Fatalf("counters: puts=%d gets=%d lists=%d deletes=%d",
			load("obj.puts"), load("obj.gets"), load("obj.lists"), load("obj.deletes"))
	}
	if load("obj.bytes_written") != 5 || load("obj.bytes_read") != 5 {
		t.Fatalf("byte counters: written=%d read=%d", load("obj.bytes_written"), load("obj.bytes_read"))
	}
}

func TestPutMultiGetMulti(t *testing.T) {
	s := fastStore()
	var clk vclock.Clock
	s.PutMulti(&clk, "x", []string{"a", "b"}, [][]byte{[]byte("va"), []byte("vb")})
	out := s.GetMultiViewInto(&clk, "x", []string{"a", "missing", "b"}, nil)
	if string(out[0]) != "va" || out[1] != nil || string(out[2]) != "vb" {
		t.Fatalf("views = %q", out)
	}
}

func TestGetMultiViewIntoReusesAndResets(t *testing.T) {
	s := fastStore()
	var clk vclock.Clock
	s.PutMulti(&clk, "x", []string{"a", "b", "c"}, [][]byte{{1}, {2}, {3}})

	out := s.GetMultiViewInto(&clk, "x", []string{"a", "b", "c"}, nil)
	if len(out) != 3 || out[0][0] != 1 || out[1][0] != 2 || out[2][0] != 3 {
		t.Fatalf("first read = %v", out)
	}

	// A shorter read through the same slice must reuse its backing
	// array, and a now-missing key must come back nil, not a stale
	// view from the previous call.
	out2 := s.GetMultiViewInto(&clk, "x", []string{"missing", "b"}, out)
	if &out2[0] != &out[0] {
		t.Fatal("GetMultiViewInto reallocated despite sufficient capacity")
	}
	if out2[0] != nil || out2[1][0] != 2 {
		t.Fatalf("reused read = %v", out2)
	}

	// Growth past capacity reallocates.
	out3 := s.GetMultiViewInto(&clk, "x", []string{"a", "b", "c", "a", "b"}, out2)
	if len(out3) != 5 || out3[3][0] != 1 || out3[4][0] != 2 {
		t.Fatalf("grown read = %v", out3)
	}
}

func TestMultiViewsAreImmutableSnapshots(t *testing.T) {
	s := fastStore()
	var clk vclock.Clock
	val := []byte{7}
	s.PutMulti(&clk, "x", []string{"k"}, [][]byte{val})
	val[0] = 9 // caller buffer must have been copied at the boundary
	view := s.GetMultiViewInto(&clk, "x", []string{"k"}, nil)[0]
	if view[0] != 7 {
		t.Fatal("PutMulti aliased the caller's buffer")
	}

	// Overwriting and deleting the key must not mutate the view: Put
	// replaces stored slices wholesale, so retained views stay valid —
	// the contract zero-copy exchange buffers rely on.
	s.Put(&clk, "x", "k", []byte{8})
	s.Delete(&clk, "x", "k")
	if view[0] != 7 {
		t.Fatal("later write mutated a retained view")
	}
}

func TestMultiCharging(t *testing.T) {
	link := netmodel.Link{Latency: 10 * time.Millisecond, BandwidthBps: 1e6}
	s := New(link)
	var clk vclock.Clock
	vals := [][]byte{make([]byte, 1e6), make([]byte, 5e5)}
	s.PutMulti(&clk, "b", []string{"big", "small"}, vals)
	// Two streams of a 1 MB/s link fit inside the NIC line rate, so
	// each keeps its full per-stream bandwidth; the slowest branch
	// (1 MB at 1 MB/s, plus first-byte latency) sets the elapsed time.
	want := 10*time.Millisecond + time.Second
	if clk.Now() != want {
		t.Fatalf("PutMulti charged %v, want %v", clk.Now(), want)
	}

	var getClk vclock.Clock
	s.GetMultiViewInto(&getClk, "b", []string{"big", "small"}, nil)
	if getClk.Now() != want {
		t.Fatalf("GetMultiViewInto charged %v, want %v", getClk.Now(), want)
	}

	// A missing key costs one round trip on its branch; with the other
	// branch transferring 1 MB the slowest branch still dominates.
	var missClk vclock.Clock
	s.GetMultiViewInto(&missClk, "b", []string{"big", "absent"}, nil)
	if missClk.Now() != want {
		t.Fatalf("miss branch charged %v, want %v", missClk.Now(), want)
	}

	// Many concurrent streams split the NIC: 4 streams of a link faster
	// than NIC/4 are clamped to NIC/4 each.
	fat := New(netmodel.Link{Latency: time.Millisecond, BandwidthBps: netmodel.GbpsNIC})
	var fatClk vclock.Clock
	quarter := make([][]byte, 4)
	for i := range quarter {
		quarter[i] = make([]byte, 1e6)
	}
	fat.PutMulti(&fatClk, "b", []string{"0", "1", "2", "3"}, quarter)
	wantFat := time.Millisecond + time.Duration(1e6/(netmodel.GbpsNIC/4)*float64(time.Second))
	if fatClk.Now() != wantFat {
		t.Fatalf("4-stream PutMulti charged %v, want %v", fatClk.Now(), wantFat)
	}
}

func TestDeleteBucket(t *testing.T) {
	s := fastStore()
	var clk vclock.Clock
	s.Put(&clk, "b", "k", []byte("v"))
	s.DeleteBucket("b")
	if _, err := s.Get(&clk, "b", "k"); !errors.Is(err, ErrNotFound) {
		t.Fatal("bucket survived DeleteBucket")
	}
}

func TestConcurrentAccess(t *testing.T) {
	s := fastStore()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var clk vclock.Clock
			bucket := fmt.Sprintf("b%d", w)
			for i := 0; i < 100; i++ {
				key := fmt.Sprintf("k%d", i)
				s.Put(&clk, bucket, key, []byte{byte(i)})
				v, err := s.Get(&clk, bucket, key)
				if err != nil || v[0] != byte(i) {
					t.Errorf("lost own write %s/%s", bucket, key)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestGetRangeView(t *testing.T) {
	link := netmodel.Link{Latency: 10 * time.Millisecond, BandwidthBps: 1e6}
	s := New(link)
	var clk vclock.Clock
	val := make([]byte, 1e6)
	for i := range val {
		val[i] = byte(i)
	}
	s.Put(&clk, "b", "k", val)

	var rClk vclock.Clock
	view, err := s.GetRangeView(&rClk, "b", "k", 1000, 500000)
	if err != nil {
		t.Fatal(err)
	}
	// A ranged read bills latency plus the range's transfer, not the
	// whole object's.
	want := 10*time.Millisecond + 500*time.Millisecond
	if rClk.Now() != want {
		t.Fatalf("range charged %v, want %v", rClk.Now(), want)
	}
	if len(view) != 500000 || view[0] != byte(1000%256) || view[len(view)-1] != byte((1000+499999)%256) {
		t.Fatalf("range window wrong: len=%d first=%d", len(view), view[0])
	}

	// The view is an immutable snapshot: a later Put replaces the stored
	// slice wholesale and must not mutate it.
	first := view[0]
	s.Put(&clk, "b", "k", make([]byte, 1e6))
	if view[0] != first {
		t.Fatal("Put mutated a retained range view")
	}

	var missClk vclock.Clock
	if _, err := s.GetRangeView(&missClk, "b", "missing", 0, 1); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing err = %v", err)
	}
	if missClk.Now() != 10*time.Millisecond {
		t.Fatalf("miss charged %v", missClk.Now())
	}
	for _, r := range [][2]int{{-1, 10}, {0, -1}, {999999, 2}, {0, 1000001}} {
		if _, err := s.GetRangeView(&clk, "b", "k", r[0], r[1]); err == nil {
			t.Errorf("range [%d,%d) accepted", r[0], r[0]+r[1])
		}
	}
}

func TestPeekViewUncharged(t *testing.T) {
	link := netmodel.Link{Latency: 10 * time.Millisecond, BandwidthBps: 1e6}
	s := New(link)
	var clk vclock.Clock
	s.Put(&clk, "b", "k", []byte("shard-bytes"))
	before := s.Registry().Counter("obj.gets").Load()

	view, ok := s.PeekView("b", "k")
	if !ok || string(view) != "shard-bytes" {
		t.Fatalf("PeekView = %q, %v", view, ok)
	}
	// Peeks are simulator bookkeeping: no counters, no virtual time.
	if got := s.Registry().Counter("obj.gets").Load(); got != before {
		t.Fatalf("PeekView bumped obj.gets to %d", got)
	}
	if _, ok := s.PeekView("b", "missing"); ok {
		t.Fatal("PeekView found a missing object")
	}
}
