package shard

// Mapped is a read-only byte view of a file: memory-mapped on
// platforms that support it (Linux), read fully into memory elsewhere.
// Data stays valid until Close; BatchViews handed out over it share
// its lifetime (the view-ownership contract of DESIGN.md §13).
type Mapped struct {
	Data   []byte
	mapped bool
}

// MapFile opens path read-only as a Mapped view. Empty files yield a
// nil Data slice.
func MapFile(path string) (*Mapped, error) {
	data, mapped, err := mapFile(path)
	if err != nil {
		return nil, err
	}
	return &Mapped{Data: data, mapped: mapped}, nil
}

// Close releases the mapping (or the buffer). The Data slice must not
// be used afterwards.
func (m *Mapped) Close() error {
	data := m.Data
	m.Data = nil
	if m.mapped && data != nil {
		m.mapped = false
		return unmapFile(data)
	}
	return nil
}

// OpenFile maps path and parses it as a shard. The returned Mapped
// owns the shard's bytes — close it only when the shard's views are
// no longer in use.
func OpenFile(path string) (*Shard, *Mapped, error) {
	m, err := MapFile(path)
	if err != nil {
		return nil, nil, err
	}
	s, err := Parse(m.Data)
	if err != nil {
		m.Close()
		return nil, nil, err
	}
	return s, m, nil
}
