//go:build !linux

package shard

import "os"

// mapFile falls back to reading the whole file on platforms without a
// wired-up mmap path; callers see the same []byte contract.
func mapFile(path string) ([]byte, bool, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, false, err
	}
	if len(data) == 0 {
		data = nil
	}
	return data, false, nil
}

func unmapFile([]byte) error { return nil }
