package shard

import (
	"encoding/binary"
	"math"

	"mlless/internal/sparse"
)

// Builder assembles a shard blob batch by batch. Samples append to the
// current batch; EndBatch seals it as one contiguous block; Finish
// emits header + directory + blocks. A builder is reusable via Reset.
//
// A shard holds one sample kind: the first Add fixes it, mixing kinds
// panics (programmer error, like sparse's mismatched-dimension panics).
type Builder struct {
	haveKind bool
	rating   bool

	// Current batch, columnar.
	labels []float64
	users  []uint32
	items  []uint32
	offs   []uint32 // CSR row offsets into pairs
	pairs  []byte

	// Sealed blocks, back to back, with their cumulative end offsets.
	blocks []byte
	ends   []uint64
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder { return &Builder{} }

// Reset clears the builder for a fresh shard, keeping capacity.
func (b *Builder) Reset() {
	b.haveKind = false
	b.rating = false
	b.labels = b.labels[:0]
	b.users = b.users[:0]
	b.items = b.items[:0]
	b.offs = b.offs[:0]
	b.pairs = b.pairs[:0]
	b.blocks = b.blocks[:0]
	b.ends = b.ends[:0]
}

func (b *Builder) setKind(rating bool) {
	if !b.haveKind {
		b.haveKind = true
		b.rating = rating
		return
	}
	if b.rating != rating {
		panic("shard: mixed sample kinds in one shard")
	}
}

// AddFeature appends a feature sample (label + sparse features) to the
// current batch. The vector's coordinates are emitted in ascending
// index order via ForEachSorted, so the block bytes are deterministic
// regardless of the vector's hash-table layout.
func (b *Builder) AddFeature(label float64, v *sparse.Vector) {
	b.setKind(false)
	b.beginFeatureRow(label)
	v.ForEachSorted(b.appendPair)
}

// AddFeaturePairs appends a feature sample from pre-sorted columnar
// pairs (ascending unique indices) — the streaming generators' path,
// which never materializes sparse vectors.
func (b *Builder) AddFeaturePairs(label float64, idx []uint32, vals []float64) {
	b.setKind(false)
	b.beginFeatureRow(label)
	for k, i := range idx {
		b.appendPair(i, vals[k])
	}
}

func (b *Builder) beginFeatureRow(label float64) {
	if len(b.offs) == 0 {
		b.offs = append(b.offs, 0)
	}
	b.labels = append(b.labels, label)
	b.offs = append(b.offs, b.offs[len(b.offs)-1])
}

func (b *Builder) appendPair(i uint32, val float64) {
	var buf [pairSize]byte
	binary.LittleEndian.PutUint32(buf[:], i)
	binary.LittleEndian.PutUint64(buf[4:], math.Float64bits(val))
	b.pairs = append(b.pairs, buf[:]...)
	b.offs[len(b.offs)-1]++
}

// AddRating appends a rating sample to the current batch.
func (b *Builder) AddRating(user, item int, rating float64) {
	b.setKind(true)
	b.users = append(b.users, uint32(user))
	b.items = append(b.items, uint32(item))
	b.labels = append(b.labels, rating)
}

// EndBatch seals the current batch as one block. Empty batches seal to
// valid empty blocks.
func (b *Builder) EndBatch() {
	if b.rating {
		b.endRatingBlock()
	} else {
		b.endFeatureBlock()
	}
	b.ends = append(b.ends, uint64(len(b.blocks)))
	b.labels = b.labels[:0]
	b.users = b.users[:0]
	b.items = b.items[:0]
	b.offs = b.offs[:0]
	b.pairs = b.pairs[:0]
}

func (b *Builder) endFeatureBlock() {
	count := len(b.labels)
	nnz := len(b.pairs) / pairSize
	b.blocks = appendUint32(b.blocks, uint32(count))
	b.blocks = appendUint32(b.blocks, uint32(nnz))
	for _, l := range b.labels {
		b.blocks = appendUint64(b.blocks, math.Float64bits(l))
	}
	if count == 0 {
		b.blocks = appendUint32(b.blocks, 0)
	} else {
		for _, o := range b.offs {
			b.blocks = appendUint32(b.blocks, o)
		}
	}
	b.blocks = append(b.blocks, b.pairs...)
}

func (b *Builder) endRatingBlock() {
	b.blocks = appendUint32(b.blocks, uint32(len(b.labels)))
	for _, u := range b.users {
		b.blocks = appendUint32(b.blocks, u)
	}
	for _, it := range b.items {
		b.blocks = appendUint32(b.blocks, it)
	}
	for _, r := range b.labels {
		b.blocks = appendUint64(b.blocks, math.Float64bits(r))
	}
}

// Finish assembles the shard blob. A batch still open (samples added
// since the last EndBatch) is sealed first. The builder stays usable:
// Reset starts the next shard.
func (b *Builder) Finish() []byte {
	if len(b.labels) > 0 {
		b.EndBatch()
	}
	nb := len(b.ends)
	dirEnd := headerSize + (nb+1)*dirEntry
	out := make([]byte, 0, dirEnd+len(b.blocks))
	out = appendUint32(out, shardMagic)
	out = appendUint32(out, shardVersion)
	if b.rating {
		out = appendUint32(out, kindRating)
	} else {
		out = appendUint32(out, kindFeature)
	}
	out = appendUint32(out, uint32(nb))
	out = appendUint64(out, uint64(dirEnd))
	for _, end := range b.ends {
		out = appendUint64(out, uint64(dirEnd)+end)
	}
	return append(out, b.blocks...)
}

func appendUint32(buf []byte, v uint32) []byte {
	var w [4]byte
	binary.LittleEndian.PutUint32(w[:], v)
	return append(buf, w[:]...)
}

func appendUint64(buf []byte, v uint64) []byte {
	var w [8]byte
	binary.LittleEndian.PutUint64(w[:], v)
	return append(buf, w[:]...)
}
