package shard

import (
	"encoding/binary"
	"math"
	"os"
	"path/filepath"
	"testing"

	"mlless/internal/sparse"
	"mlless/internal/xrand"
)

// buildFeatureShard assembles a deterministic feature shard plus the
// sparse vectors and labels it was built from.
func buildFeatureShard(batches, batchSize int) ([]byte, [][]*sparse.Vector, [][]float64) {
	rng := xrand.New(7)
	b := NewBuilder()
	vecs := make([][]*sparse.Vector, batches)
	labels := make([][]float64, batches)
	for i := 0; i < batches; i++ {
		for k := 0; k < batchSize; k++ {
			v := sparse.New()
			for n := rng.Intn(20); n >= 0; n-- {
				v.Set(uint32(rng.Intn(500)), rng.NormFloat64())
			}
			label := float64(rng.Intn(2))
			b.AddFeature(label, v)
			vecs[i] = append(vecs[i], v)
			labels[i] = append(labels[i], label)
		}
		b.EndBatch()
	}
	return b.Finish(), vecs, labels
}

func TestFeatureShardRoundTrip(t *testing.T) {
	blob, vecs, labels := buildFeatureShard(4, 9)
	s, err := Parse(blob)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if s.IsRating() || s.NumBatches() != 4 {
		t.Fatalf("parsed shard: rating=%v batches=%d", s.IsRating(), s.NumBatches())
	}
	dim := 500
	d := sparse.NewDense(dim)
	rng := xrand.New(11)
	for i := range d {
		d[i] = rng.NormFloat64()
	}
	for i := 0; i < s.NumBatches(); i++ {
		bv := s.Batch(i)
		if bv.IsRating() || bv.Len() != 9 {
			t.Fatalf("batch %d: rating=%v len=%d", i, bv.IsRating(), bv.Len())
		}
		for k := 0; k < bv.Len(); k++ {
			if got := bv.Label(k); got != labels[i][k] {
				t.Fatalf("batch %d sample %d label %v, want %v", i, k, got, labels[i][k])
			}
			want := vecs[i][k]
			if bv.RowNNZ(k) != want.Len() {
				t.Fatalf("batch %d sample %d nnz %d, want %d", i, k, bv.RowNNZ(k), want.Len())
			}
			if !bv.Features(k).Equal(want) {
				t.Fatalf("batch %d sample %d features differ", i, k)
			}
			// Zero-copy dot must match the sparse kernel bit for bit:
			// both accumulate in ascending index order.
			if got, exp := bv.Dot(k, d), want.Dot(d); got != exp {
				t.Fatalf("batch %d sample %d dot %v, want %v", i, k, got, exp)
			}
		}
	}
}

func TestRatingShardRoundTrip(t *testing.T) {
	b := NewBuilder()
	type r struct {
		u, i int
		v    float64
	}
	want := [][]r{
		{{0, 3, 4.5}, {17, 2, 1.0}},
		{{5, 5, 3.25}},
		{}, // empty trailing batch
	}
	for _, batch := range want {
		for _, s := range batch {
			b.AddRating(s.u, s.i, s.v)
		}
		b.EndBatch()
	}
	s, err := Parse(b.Finish())
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if !s.IsRating() || s.NumBatches() != 3 {
		t.Fatalf("parsed shard: rating=%v batches=%d", s.IsRating(), s.NumBatches())
	}
	for i, batch := range want {
		bv := s.Batch(i)
		if !bv.IsRating() && len(batch) > 0 {
			t.Fatalf("batch %d not rating", i)
		}
		if bv.Len() != len(batch) {
			t.Fatalf("batch %d len %d, want %d", i, bv.Len(), len(batch))
		}
		for k, sm := range batch {
			if bv.User(k) != sm.u || bv.Item(k) != sm.i || bv.Rating(k) != sm.v {
				t.Fatalf("batch %d sample %d = (%d,%d,%v), want %+v",
					i, k, bv.User(k), bv.Item(k), bv.Rating(k), sm)
			}
		}
	}
}

func TestBatchExtentsTileTheBlob(t *testing.T) {
	blob, _, _ := buildFeatureShard(5, 4)
	s, err := Parse(blob)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	prev := headerSize + (s.NumBatches()+1)*dirEntry
	for i := 0; i < s.NumBatches(); i++ {
		off, n := s.BatchExtent(i)
		if off != prev {
			t.Fatalf("batch %d extent starts at %d, want %d", i, off, prev)
		}
		// A ranged read of the extent must parse back to the same view.
		bv, err := ParseBatch(blob[off:off+n], false)
		if err != nil {
			t.Fatalf("ParseBatch extent %d: %v", i, err)
		}
		if bv.Len() != s.Batch(i).Len() || bv.NNZ() != s.Batch(i).NNZ() {
			t.Fatalf("batch %d ranged reparse mismatch", i)
		}
		prev = off + n
	}
	if prev != len(blob) {
		t.Fatalf("extents end at %d, blob is %d bytes", prev, len(blob))
	}
}

func TestBuilderDeterministicAcrossVectorLayout(t *testing.T) {
	// Same logical vector, different insertion order (and hence a
	// different hash-table layout) must serialize identically.
	a, b := sparse.New(), sparse.New()
	idx := []uint32{400, 3, 77, 12, 900}
	for _, i := range idx {
		a.Set(i, float64(i)*1.5)
	}
	for k := len(idx) - 1; k >= 0; k-- {
		b.Set(idx[k], float64(idx[k])*1.5)
	}
	ba, bb := NewBuilder(), NewBuilder()
	ba.AddFeature(1, a)
	bb.AddFeature(1, b)
	ba.EndBatch()
	bb.EndBatch()
	ga, gb := ba.Finish(), bb.Finish()
	if string(ga) != string(gb) {
		t.Fatal("shard bytes depend on vector hash layout")
	}
}

func TestBuilderMixedKindsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mixing kinds did not panic")
		}
	}()
	b := NewBuilder()
	b.AddFeature(0, sparse.New())
	b.AddRating(0, 0, 1)
}

func TestParseErrors(t *testing.T) {
	blob, _, _ := buildFeatureShard(2, 3)
	cases := map[string][]byte{
		"empty":     nil,
		"short":     blob[:8],
		"truncated": blob[:len(blob)-1],
		"trailing":  append(append([]byte(nil), blob...), 0),
	}
	badMagic := append([]byte(nil), blob...)
	badMagic[0] ^= 0xff
	cases["magic"] = badMagic
	badVersion := append([]byte(nil), blob...)
	binary.LittleEndian.PutUint32(badVersion[4:], 9)
	cases["version"] = badVersion
	badKind := append([]byte(nil), blob...)
	binary.LittleEndian.PutUint32(badKind[8:], 7)
	cases["kind"] = badKind
	hugeDir := append([]byte(nil), blob...)
	binary.LittleEndian.PutUint32(hugeDir[12:], math.MaxUint32)
	cases["huge directory"] = hugeDir
	badOffset := append([]byte(nil), blob...)
	binary.LittleEndian.PutUint64(badOffset[headerSize+dirEntry:], 1)
	cases["offset order"] = badOffset
	for name, buf := range cases {
		if _, err := Parse(buf); err == nil {
			t.Errorf("%s: Parse accepted corrupt blob", name)
		}
	}
}

func TestParseRejectsUnsortedPairs(t *testing.T) {
	b := NewBuilder()
	b.AddFeaturePairs(1, []uint32{3, 9}, []float64{1, 2})
	b.EndBatch()
	blob := b.Finish()
	// Swap the two pair indices in place: 9 before 3.
	pairOff := len(blob) - 2*pairSize
	binary.LittleEndian.PutUint32(blob[pairOff:], 9)
	binary.LittleEndian.PutUint32(blob[pairOff+pairSize:], 3)
	if _, err := Parse(blob); err == nil {
		t.Fatal("Parse accepted unsorted pair indices")
	}
}

func TestMapFileRoundTrip(t *testing.T) {
	blob, _, _ := buildFeatureShard(3, 5)
	path := filepath.Join(t.TempDir(), "test.shard")
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	s, m, err := OpenFile(path)
	if err != nil {
		t.Fatalf("OpenFile: %v", err)
	}
	if s.NumBatches() != 3 || s.Batch(2).Len() != 5 {
		t.Fatalf("mapped shard: batches=%d len=%d", s.NumBatches(), s.Batch(2).Len())
	}
	if err := m.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, _, err := OpenFile(filepath.Join(t.TempDir(), "missing.shard")); err == nil {
		t.Fatal("OpenFile accepted a missing file")
	}
}

// FuzzShardView feeds arbitrary bytes through Parse and, when a blob
// is accepted, walks every accessor: corrupt or truncated shards must
// error, never panic, and accepted shards must be fully readable.
func FuzzShardView(f *testing.F) {
	feat, _, _ := buildFeatureShard(2, 3)
	rb := NewBuilder()
	rb.AddRating(1, 2, 3.5)
	rb.EndBatch()
	f.Add([]byte{})
	f.Add(feat)
	f.Add(feat[:len(feat)-1])
	f.Add(rb.Finish())
	f.Fuzz(func(t *testing.T, blob []byte) {
		s, err := Parse(blob)
		if err != nil {
			return
		}
		sink := 0.0
		d := sparse.NewDense(64)
		for i := 0; i < s.NumBatches(); i++ {
			off, n := s.BatchExtent(i)
			if off < 0 || n < 0 || off+n > len(blob) {
				t.Fatalf("batch %d extent (%d,%d) outside %d-byte blob", i, off, n, len(blob))
			}
			bv := s.Batch(i)
			for k := 0; k < bv.Len(); k++ {
				sink += bv.Label(k)
				if bv.IsRating() {
					sink += float64(bv.User(k) + bv.Item(k))
				} else {
					sink += bv.Dot(k, d)
					bv.ForEachPair(k, func(_ uint32, v float64) { sink += v })
				}
			}
		}
		_ = sink
	})
}
