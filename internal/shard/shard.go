// Package shard defines the on-disk columnar shard format of the
// streaming dataset tier (DESIGN.md §13). A shard packs a run of
// mini-batches into one blob; within a batch the samples are stored as
// per-column contiguous arrays (labels, users, items) with CSR-style
// row offsets over a single sorted (index, value) pair array that
// reuses the 12-byte entry layout of package sparse's wire encoding.
//
// The format exists so the fetch→compute path can run zero-copy: a
// parsed Shard hands out BatchView values that read labels, ratings
// and feature pairs straight out of the blob's bytes — no []Sample
// materialization, no per-fetch decoding, no per-step allocations.
// Views are plain slices into the blob; whoever owns the blob (an
// mmap'd file, an object-store view) owns the views' lifetime.
//
// Layout (all little-endian):
//
//	header:
//	  uint32 magic   "MLS1"
//	  uint32 version (1)
//	  uint32 kind    (0 = feature batches, 1 = rating batches)
//	  uint32 numBatches
//	directory:
//	  (numBatches+1) × uint64 byte offsets of the batch blocks from the
//	  start of the shard; the final entry is the shard length
//	batch blocks, contiguous, one per batch:
//	  feature block:
//	    uint32 count, uint32 nnz
//	    count × float64 labels
//	    (count+1) × uint32 row offsets into the pair array (CSR)
//	    nnz × (uint32 index, float64 value), ascending within each row
//	  rating block:
//	    uint32 count
//	    count × uint32 users
//	    count × uint32 items
//	    count × float64 ratings
package shard

import (
	"encoding/binary"
	"fmt"
	"math"

	"mlless/internal/sparse"
)

const (
	shardMagic   = 0x31534c4d // "MLS1"
	shardVersion = 1

	kindFeature = 0
	kindRating  = 1

	headerSize = 16
	dirEntry   = 8
	pairSize   = 12 // uint32 index + float64 value, sparse wire entry
)

// Shard is a parsed shard blob: validated once, then every batch is
// served as a zero-copy BatchView with no further checks.
type Shard struct {
	rating bool
	views  []BatchView
	offs   []int // numBatches+1 block boundaries within the blob
}

// NumBatches returns the number of batch blocks in the shard.
func (s *Shard) NumBatches() int { return len(s.views) }

// IsRating reports whether the shard holds rating batches.
func (s *Shard) IsRating() bool { return s.rating }

// Batch returns the zero-copy view of batch i.
func (s *Shard) Batch(i int) BatchView { return s.views[i] }

// BatchExtent returns the byte offset and length of batch i's block
// within the shard blob — the range a per-step fetch transfers.
func (s *Shard) BatchExtent(i int) (off, n int) {
	return s.offs[i], s.offs[i+1] - s.offs[i]
}

// Parse validates a shard blob and returns its parsed form. Every
// batch block is fully validated here (section sizes, monotone CSR
// offsets, ascending pair indices), so BatchView accessors never
// re-check. Corrupt or truncated blobs return errors, never panic.
func Parse(blob []byte) (*Shard, error) {
	if len(blob) < headerSize {
		return nil, fmt.Errorf("shard: short header (%d bytes)", len(blob))
	}
	if m := binary.LittleEndian.Uint32(blob); m != shardMagic {
		return nil, fmt.Errorf("shard: bad magic %#x", m)
	}
	if v := binary.LittleEndian.Uint32(blob[4:]); v != shardVersion {
		return nil, fmt.Errorf("shard: unsupported version %d", v)
	}
	kind := binary.LittleEndian.Uint32(blob[8:])
	if kind != kindFeature && kind != kindRating {
		return nil, fmt.Errorf("shard: unknown kind %d", kind)
	}
	nb := int64(binary.LittleEndian.Uint32(blob[12:]))
	dirEnd := int64(headerSize) + (nb+1)*dirEntry
	if dirEnd > int64(len(blob)) {
		return nil, fmt.Errorf("shard: directory for %d batches exceeds %d-byte blob", nb, len(blob))
	}
	offs := make([]int, nb+1)
	prev := uint64(dirEnd)
	for k := int64(0); k <= nb; k++ {
		o := binary.LittleEndian.Uint64(blob[headerSize+k*dirEntry:])
		if o < prev || o > uint64(len(blob)) {
			return nil, fmt.Errorf("shard: directory entry %d out of order (%d)", k, o)
		}
		if k == 0 && o != uint64(dirEnd) {
			return nil, fmt.Errorf("shard: first block at %d, want %d", o, dirEnd)
		}
		offs[k] = int(o)
		prev = o
	}
	if offs[nb] != len(blob) {
		return nil, fmt.Errorf("shard: %d trailing bytes", len(blob)-offs[nb])
	}
	s := &Shard{rating: kind == kindRating, views: make([]BatchView, nb), offs: offs}
	for k := 0; k < int(nb); k++ {
		v, err := ParseBatch(blob[offs[k]:offs[k+1]], s.rating)
		if err != nil {
			return nil, fmt.Errorf("shard: batch %d: %w", k, err)
		}
		s.views[k] = v
	}
	return s, nil
}

// BatchView is a zero-copy view of one mini-batch inside a shard
// blob. It is a value type (a handful of slice headers): pass it
// around freely, it allocates nothing. The view's bytes belong to the
// underlying blob — they are immutable for the blob's lifetime.
type BatchView struct {
	rating bool
	count  int
	labels []byte // feature labels, or ratings for rating batches
	users  []byte // rating batches only
	items  []byte // rating batches only
	offs   []byte // feature batches: (count+1) CSR row offsets
	pairs  []byte // feature batches: nnz 12-byte sorted pairs
}

// ParseBatch validates one batch block of the given kind and returns
// its view. Shard.Batch is the usual path; ParseBatch serves callers
// holding a single ranged read of a block.
func ParseBatch(block []byte, rating bool) (BatchView, error) {
	if rating {
		return parseRatingBlock(block)
	}
	return parseFeatureBlock(block)
}

func parseFeatureBlock(block []byte) (BatchView, error) {
	if len(block) < 8 {
		return BatchView{}, fmt.Errorf("short feature block (%d bytes)", len(block))
	}
	count := int64(binary.LittleEndian.Uint32(block))
	nnz := int64(binary.LittleEndian.Uint32(block[4:]))
	need := 8 + count*8 + (count+1)*4 + nnz*pairSize
	if need != int64(len(block)) {
		return BatchView{}, fmt.Errorf("feature block length %d, want %d for %d samples / %d pairs",
			len(block), need, count, nnz)
	}
	v := BatchView{count: int(count)}
	off := int64(8)
	v.labels = block[off : off+count*8]
	off += count * 8
	v.offs = block[off : off+(count+1)*4]
	off += (count + 1) * 4
	v.pairs = block[off:]
	// CSR offsets must start at 0, end at nnz and never decrease; pair
	// indices must ascend strictly within each row (the builder emits
	// sorted unique coordinates, and the zero-copy dot products depend
	// on that order for bit-determinism).
	prev := uint32(0)
	if first := binary.LittleEndian.Uint32(v.offs); first != 0 {
		return BatchView{}, fmt.Errorf("feature block row offsets start at %d", first)
	}
	for k := int64(1); k <= count; k++ {
		o := binary.LittleEndian.Uint32(v.offs[k*4:])
		if o < prev || int64(o) > nnz {
			return BatchView{}, fmt.Errorf("feature block row offset %d out of order (%d)", k, o)
		}
		for j := prev; j < o; j++ {
			idx := binary.LittleEndian.Uint32(v.pairs[j*pairSize:])
			if j > prev {
				if last := binary.LittleEndian.Uint32(v.pairs[(j-1)*pairSize:]); idx <= last {
					return BatchView{}, fmt.Errorf("feature block sample %d: pair indices not ascending", k-1)
				}
			}
		}
		prev = o
	}
	if int64(prev) != nnz {
		return BatchView{}, fmt.Errorf("feature block rows cover %d pairs, header says %d", prev, nnz)
	}
	return v, nil
}

func parseRatingBlock(block []byte) (BatchView, error) {
	if len(block) < 4 {
		return BatchView{}, fmt.Errorf("short rating block (%d bytes)", len(block))
	}
	count := int64(binary.LittleEndian.Uint32(block))
	need := 4 + count*4 + count*4 + count*8
	if need != int64(len(block)) {
		return BatchView{}, fmt.Errorf("rating block length %d, want %d for %d samples", len(block), need, count)
	}
	v := BatchView{rating: true, count: int(count)}
	off := int64(4)
	v.users = block[off : off+count*4]
	off += count * 4
	v.items = block[off : off+count*4]
	off += count * 4
	v.labels = block[off:]
	return v, nil
}

// Len returns the number of samples in the batch.
func (b BatchView) Len() int { return b.count }

// IsRating reports whether the batch holds rating samples.
func (b BatchView) IsRating() bool { return b.rating }

// Label returns sample k's label (the class for feature batches, the
// rating for rating batches).
func (b BatchView) Label(k int) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(b.labels[k*8:]))
}

// Rating is Label under its rating-batch name.
func (b BatchView) Rating(k int) float64 { return b.Label(k) }

// User returns sample k's user index (rating batches).
func (b BatchView) User(k int) int {
	return int(binary.LittleEndian.Uint32(b.users[k*4:]))
}

// Item returns sample k's item index (rating batches).
func (b BatchView) Item(k int) int {
	return int(binary.LittleEndian.Uint32(b.items[k*4:]))
}

// row returns the pair range [lo, hi) of feature sample k.
func (b BatchView) row(k int) (lo, hi int) {
	return int(binary.LittleEndian.Uint32(b.offs[k*4:])),
		int(binary.LittleEndian.Uint32(b.offs[(k+1)*4:]))
}

// RowNNZ returns the non-zero count of feature sample k.
func (b BatchView) RowNNZ(k int) int {
	lo, hi := b.row(k)
	return hi - lo
}

// NNZ returns the total pair count of the batch.
func (b BatchView) NNZ() int { return len(b.pairs) / pairSize }

// Dot returns the inner product of feature sample k with a dense
// vector, accumulated in ascending index order — the same order (and
// therefore the same float result, bit for bit) as
// sparse.Vector.Dot on the decoded sample. Indices outside d are
// ignored, matching sparse.Vector.Dot.
func (b BatchView) Dot(k int, d sparse.Dense) float64 {
	lo, hi := b.row(k)
	sum := 0.0
	for j := lo; j < hi; j++ {
		p := b.pairs[j*pairSize:]
		if i := binary.LittleEndian.Uint32(p); int(i) < len(d) {
			sum += math.Float64frombits(binary.LittleEndian.Uint64(p[4:])) * d[i]
		}
	}
	return sum
}

// ForEachPair calls fn for every (index, value) pair of feature
// sample k, in ascending index order.
func (b BatchView) ForEachPair(k int, fn func(i uint32, val float64)) {
	lo, hi := b.row(k)
	for j := lo; j < hi; j++ {
		p := b.pairs[j*pairSize:]
		fn(binary.LittleEndian.Uint32(p), math.Float64frombits(binary.LittleEndian.Uint64(p[4:])))
	}
}

// Features materializes feature sample k as a sparse vector — the
// compatibility path for code that still wants *sparse.Vector
// semantics (tests, tooling); the training hot loop uses
// Dot/ForEachPair instead.
func (b BatchView) Features(k int) *sparse.Vector {
	v := sparse.NewWithCapacity(b.RowNNZ(k))
	b.ForEachPair(k, v.Set)
	return v
}
