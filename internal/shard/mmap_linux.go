//go:build linux

package shard

import (
	"fmt"
	"os"
	"syscall"
)

// mapFile memory-maps path read-only. The file descriptor is closed
// before returning: the mapping keeps the pages alive.
func mapFile(path string) ([]byte, bool, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, false, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, false, err
	}
	if st.Size() == 0 {
		return nil, false, nil
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(st.Size()), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, false, fmt.Errorf("shard: mmap %s: %w", path, err)
	}
	return data, true, nil
}

func unmapFile(data []byte) error {
	return syscall.Munmap(data)
}
