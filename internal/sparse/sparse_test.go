package sparse

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"mlless/internal/xrand"
)

func randomVector(r *xrand.RNG, maxIdx, nnz int) *Vector {
	v := New()
	for i := 0; i < nnz; i++ {
		v.Set(uint32(r.Intn(maxIdx)), r.NormFloat64())
	}
	return v
}

func TestSetGetRemove(t *testing.T) {
	v := New()
	v.Set(3, 1.5)
	v.Set(100000, -2)
	if got := v.Get(3); got != 1.5 {
		t.Fatalf("Get(3) = %v", got)
	}
	if got := v.Get(4); got != 0 {
		t.Fatalf("Get(4) = %v, want 0", got)
	}
	if v.Len() != 2 {
		t.Fatalf("Len = %d", v.Len())
	}
	if got := v.Remove(3); got != 1.5 {
		t.Fatalf("Remove(3) = %v", got)
	}
	if v.Len() != 1 || v.Get(3) != 0 {
		t.Fatal("Remove did not delete entry")
	}
}

func TestSetZeroRemovesEntry(t *testing.T) {
	v := New()
	v.Set(7, 1)
	v.Set(7, 0)
	if v.Len() != 0 {
		t.Fatal("Set(i, 0) left an entry behind")
	}
}

func TestAddCancellationRemovesEntry(t *testing.T) {
	v := New()
	v.Add(7, 2.5)
	v.Add(7, -2.5)
	if v.Len() != 0 {
		t.Fatal("exact cancellation left an entry behind")
	}
}

func TestAddVectorCommutative(t *testing.T) {
	r := xrand.New(1)
	if err := quick.Check(func(seed uint64) bool {
		rr := xrand.New(seed ^ r.Uint64())
		a := randomVector(rr, 50, 20)
		b := randomVector(rr, 50, 20)
		ab := a.Clone()
		ab.AddVector(b)
		ba := b.Clone()
		ba.AddVector(a)
		return ab.Equal(ba)
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestAddScaledVector(t *testing.T) {
	a := New()
	a.Set(1, 1)
	b := New()
	b.Set(1, 2)
	b.Set(3, 4)
	a.AddScaledVector(b, 0.5)
	if a.Get(1) != 2 || a.Get(3) != 2 {
		t.Fatalf("AddScaledVector result: %v", a)
	}
	before := a.Clone()
	a.AddScaledVector(b, 0)
	if !a.Equal(before) {
		t.Fatal("AddScaledVector with s=0 mutated the vector")
	}
}

func TestScale(t *testing.T) {
	v := New()
	v.Set(0, 2)
	v.Set(9, -4)
	v.Scale(0.5)
	if v.Get(0) != 1 || v.Get(9) != -2 {
		t.Fatalf("Scale result: %v", v)
	}
	v.Scale(0)
	if v.Len() != 0 {
		t.Fatal("Scale(0) did not clear")
	}
}

func TestCloneIndependence(t *testing.T) {
	v := New()
	v.Set(1, 1)
	c := v.Clone()
	c.Set(1, 99)
	if v.Get(1) != 1 {
		t.Fatal("Clone shares storage with original")
	}
}

func TestIndicesSorted(t *testing.T) {
	r := xrand.New(2)
	v := randomVector(r, 1000, 100)
	idx := v.Indices()
	for i := 1; i < len(idx); i++ {
		if idx[i-1] >= idx[i] {
			t.Fatalf("Indices not strictly ascending at %d: %v >= %v", i, idx[i-1], idx[i])
		}
	}
	if len(idx) != v.Len() {
		t.Fatalf("Indices length %d != Len %d", len(idx), v.Len())
	}
}

func TestDotAgainstDense(t *testing.T) {
	d := Dense{1, 2, 3, 4}
	v := New()
	v.Set(0, 2)
	v.Set(3, -1)
	v.Set(10, 100) // out of range: ignored
	if got := v.Dot(d); got != 2*1+(-1)*4 {
		t.Fatalf("Dot = %v", got)
	}
}

func TestNorms(t *testing.T) {
	v := New()
	v.Set(0, 3)
	v.Set(1, -4)
	if got := v.NormL2(); math.Abs(got-5) > 1e-12 {
		t.Fatalf("NormL2 = %v", got)
	}
	if got := v.NormL1(); math.Abs(got-7) > 1e-12 {
		t.Fatalf("NormL1 = %v", got)
	}
}

func TestDenseOps(t *testing.T) {
	d := Dense{1, 2, 3}
	x := Dense{1, 1, 1}
	d.Axpy(x, 2)
	want := Dense{3, 4, 5}
	for i := range want {
		if d[i] != want[i] {
			t.Fatalf("Axpy: %v", d)
		}
	}
	if got := d.Dot(x); got != 12 {
		t.Fatalf("Dot = %v", got)
	}
	d.Scale(0.5)
	if d[2] != 2.5 {
		t.Fatalf("Scale: %v", d)
	}
	d.Fill(1)
	if d[0] != 1 || d[1] != 1 || d[2] != 1 {
		t.Fatalf("Fill: %v", d)
	}
}

func TestDenseAddSparse(t *testing.T) {
	d := NewDense(4)
	v := New()
	v.Set(1, 5)
	v.Set(99, 1) // out of range: ignored
	d.AddSparse(v)
	if d[1] != 5 {
		t.Fatalf("AddSparse: %v", d)
	}
	d.AddScaledSparse(v, -1)
	if d[1] != 0 {
		t.Fatalf("AddScaledSparse: %v", d)
	}
}

func TestDenseAverage(t *testing.T) {
	a := Dense{2, 4}
	b := Dense{4, 0}
	a.Average(b)
	if a[0] != 3 || a[1] != 2 {
		t.Fatalf("Average: %v", a)
	}
}

func TestToSparseRoundTrip(t *testing.T) {
	d := Dense{0, 1.5, 0, -3}
	v := d.ToSparse()
	if v.Len() != 2 || v.Get(1) != 1.5 || v.Get(3) != -3 {
		t.Fatalf("ToSparse: %v", v)
	}
	back := NewDense(4)
	back.AddSparse(v)
	for i := range d {
		if back[i] != d[i] {
			t.Fatalf("round trip mismatch at %d", i)
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	r := xrand.New(3)
	if err := quick.Check(func(seed uint64) bool {
		rr := xrand.New(seed ^ r.Uint64())
		v := randomVector(rr, 1<<20, rr.Intn(200))
		buf := v.Encode()
		if len(buf) != v.EncodedSize() {
			return false
		}
		got, err := Decode(buf)
		if err != nil {
			return false
		}
		return got.Equal(v)
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeDeterministic(t *testing.T) {
	r := xrand.New(4)
	v := randomVector(r, 1000, 50)
	a, b := v.Encode(), v.Encode()
	if string(a) != string(b) {
		t.Fatal("Encode is not deterministic")
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode(nil); err == nil {
		t.Fatal("Decode(nil) succeeded")
	}
	if _, err := Decode([]byte{1, 0, 0, 0}); err == nil {
		t.Fatal("Decode with truncated payload succeeded")
	}
	v := New()
	v.Set(1, 1)
	buf := v.Encode()
	if _, err := Decode(buf[:len(buf)-1]); err == nil {
		t.Fatal("Decode with short payload succeeded")
	}
}

func TestDenseEncodeDecodeRoundTrip(t *testing.T) {
	d := Dense{0, 1.5, math.Pi, -42}
	buf := d.Encode()
	if len(buf) != DenseEncodedSize(len(d)) {
		t.Fatalf("encoded size %d", len(buf))
	}
	got, err := DecodeDense(buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range d {
		if got[i] != d[i] {
			t.Fatalf("mismatch at %d: %v != %v", i, got[i], d[i])
		}
	}
}

func TestDecodeDenseErrors(t *testing.T) {
	if _, err := DecodeDense([]byte{0}); err == nil {
		t.Fatal("DecodeDense short buffer succeeded")
	}
	d := Dense{1}
	buf := d.Encode()
	if _, err := DecodeDense(buf[:len(buf)-2]); err == nil {
		t.Fatal("DecodeDense truncated buffer succeeded")
	}
}

func TestEncodedSizeFor(t *testing.T) {
	v := New()
	for i := 0; i < 17; i++ {
		v.Set(uint32(i), 1)
	}
	if EncodedSizeFor(17) != v.EncodedSize() {
		t.Fatalf("EncodedSizeFor(17)=%d, EncodedSize=%d", EncodedSizeFor(17), v.EncodedSize())
	}
}

func BenchmarkAddVector(b *testing.B) {
	r := xrand.New(5)
	x := randomVector(r, 100000, 1000)
	y := randomVector(r, 100000, 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := x.Clone()
		c.AddVector(y)
	}
}

func BenchmarkEncode(b *testing.B) {
	r := xrand.New(6)
	v := randomVector(r, 100000, 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = v.Encode()
	}
}

// TestHashTableAgainstReferenceModel drives the open-addressing table
// with a long random op sequence and checks it against a plain map —
// the backward-shift deletion is the risky part.
func TestHashTableAgainstReferenceModel(t *testing.T) {
	r := xrand.New(99)
	v := New()
	ref := make(map[uint32]float64)
	const ops = 200000
	for op := 0; op < ops; op++ {
		i := uint32(r.Intn(500)) // small key space forces collisions
		switch r.Intn(4) {
		case 0:
			val := r.NormFloat64()
			v.Set(i, val)
			if val == 0 {
				delete(ref, i)
			} else {
				ref[i] = val
			}
		case 1:
			val := float64(r.Intn(5) - 2) // integer deltas force exact cancellation
			v.Add(i, val)
			s := ref[i] + val
			if s == 0 {
				delete(ref, i)
			} else {
				ref[i] = s
			}
		case 2:
			got := v.Remove(i)
			want := ref[i]
			if got != want {
				t.Fatalf("op %d: Remove(%d) = %v, want %v", op, i, got, want)
			}
			delete(ref, i)
		case 3:
			if got, want := v.Get(i), ref[i]; got != want {
				t.Fatalf("op %d: Get(%d) = %v, want %v", op, i, got, want)
			}
		}
		if v.Len() != len(ref) {
			t.Fatalf("op %d: Len = %d, want %d", op, v.Len(), len(ref))
		}
	}
	// Final full comparison.
	count := 0
	v.ForEach(func(i uint32, val float64) {
		count++
		if ref[i] != val {
			t.Fatalf("final: entry %d = %v, want %v", i, val, ref[i])
		}
	})
	if count != len(ref) {
		t.Fatalf("final: iterated %d entries, want %d", count, len(ref))
	}
}

func TestRadixSortMatchesSort(t *testing.T) {
	r := xrand.New(101)
	for trial := 0; trial < 50; trial++ {
		n := r.Intn(3000)
		a := make([]uint32, n)
		for i := range a {
			a[i] = uint32(r.Uint64())
		}
		b := append([]uint32(nil), a...)
		radixSortUint32(a)
		sort.Slice(b, func(x, y int) bool { return b[x] < b[y] })
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("trial %d: mismatch at %d", trial, i)
			}
		}
	}
}

func TestZeroValueVectorUsable(t *testing.T) {
	var v Vector
	if v.Len() != 0 || v.Get(1) != 0 || v.Remove(2) != 0 {
		t.Fatal("zero-value reads broken")
	}
	v.Add(3, 1.5)
	if v.Get(3) != 1.5 {
		t.Fatal("zero-value Add broken")
	}
}

func TestAddEncodedMatchesDecodeApply(t *testing.T) {
	r := xrand.New(201)
	if err := quick.Check(func(seed uint64) bool {
		rr := xrand.New(seed ^ r.Uint64())
		v := randomVector(rr, 100, rr.Intn(40))
		buf := v.Encode()

		viaDecode := NewDense(100)
		dec, err := Decode(buf)
		if err != nil {
			return false
		}
		viaDecode.AddSparse(dec)

		direct := NewDense(100)
		n, err := AddEncoded(direct, buf)
		if err != nil || n != v.Len() {
			return false
		}
		for i := range direct {
			if direct[i] != viaDecode[i] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestAddEncodedIgnoresOutOfRange(t *testing.T) {
	v := New()
	v.Set(2, 1.5)
	v.Set(50, -1)
	d := NewDense(10)
	n, err := AddEncoded(d, v.Encode())
	if err != nil || n != 2 {
		t.Fatalf("AddEncoded = %d, %v", n, err)
	}
	if d[2] != 1.5 {
		t.Fatal("in-range entry not applied")
	}
}

func TestAddEncodedErrors(t *testing.T) {
	d := NewDense(4)
	if _, err := AddEncoded(d, nil); err == nil {
		t.Fatal("nil buffer accepted")
	}
	v := New()
	v.Set(1, 1)
	buf := v.Encode()
	if _, err := AddEncoded(d, buf[:len(buf)-1]); err == nil {
		t.Fatal("truncated buffer accepted")
	}
}

func TestAddEncodedSparseMatchesAddVector(t *testing.T) {
	r := xrand.New(77)
	if err := quick.Check(func(seed uint64) bool {
		rr := xrand.New(seed ^ r.Uint64())
		acc := randomVector(rr, 100, rr.Intn(30))
		contrib := randomVector(rr, 100, rr.Intn(30))

		viaVector := acc.Clone()
		viaVector.AddVector(contrib)

		direct := acc.Clone()
		n, err := AddEncodedSparse(direct, contrib.Encode())
		if err != nil || n != contrib.Len() {
			return false
		}
		return direct.Equal(viaVector)
	}, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestAddEncodedSparseErrors(t *testing.T) {
	acc := New()
	if _, err := AddEncodedSparse(acc, nil); err == nil {
		t.Fatal("nil buffer accepted")
	}
	v := New()
	v.Set(1, 1)
	buf := v.Encode()
	if _, err := AddEncodedSparse(acc, buf[:len(buf)-1]); err == nil {
		t.Fatal("truncated buffer accepted")
	}
}

func TestAppendEncodedRangePartitions(t *testing.T) {
	r := xrand.New(31)
	if err := quick.Check(func(seed uint64) bool {
		rr := xrand.New(seed ^ r.Uint64())
		v := randomVector(rr, 200, 1+rr.Intn(60))
		buf := v.Encode()

		// Splitting along arbitrary cut points and folding the pieces
		// back must reproduce the vector exactly: the ranges partition
		// the entries.
		cuts := []uint32{0, uint32(rr.Intn(100)), uint32(100 + rr.Intn(100)), 200}
		back := New()
		total := 0
		for c := 0; c+1 < len(cuts); c++ {
			piece, err := AppendEncodedRange(nil, buf, cuts[c], cuts[c+1])
			if err != nil {
				return false
			}
			n, err := AddEncodedSparse(back, piece)
			if err != nil {
				return false
			}
			total += n
		}
		return total == v.Len() && back.Equal(v)
	}, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestAppendEncodedRangeAppendsAndErrors(t *testing.T) {
	v := New()
	v.Set(3, 1)
	v.Set(9, 2)
	buf := v.Encode()
	dst := []byte{0xFF}
	dst, err := AppendEncodedRange(dst, buf, 0, 5)
	if err != nil || dst[0] != 0xFF {
		t.Fatalf("append clobbered prefix: %v %v", dst, err)
	}
	got := New()
	if _, err := AddEncodedSparse(got, dst[1:]); err != nil || got.Len() != 1 || got.Get(3) != 1 {
		t.Fatalf("range piece = %v, %v", got, err)
	}
	if _, err := AppendEncodedRange(nil, buf[:len(buf)-1], 0, 10); err == nil {
		t.Fatal("truncated buffer accepted")
	}
	if _, err := AppendEncodedRange(nil, nil, 0, 10); err == nil {
		t.Fatal("nil buffer accepted")
	}
}

func TestVectorString(t *testing.T) {
	v := New()
	for i := 0; i < 12; i++ {
		v.Set(uint32(i), float64(i))
	}
	s := v.String()
	if !strings.Contains(s, "sparse{") || !strings.Contains(s, "…(+") {
		t.Fatalf("String = %s", s)
	}
	if (New()).String() != "sparse{}" {
		t.Fatal("empty String wrong")
	}
}

func TestDenseCloneAndNorm(t *testing.T) {
	d := Dense{3, 4}
	c := d.Clone()
	c[0] = 99
	if d[0] != 3 {
		t.Fatal("Dense.Clone aliases")
	}
	if math.Abs(d.NormL2()-5) > 1e-12 {
		t.Fatalf("Dense.NormL2 = %v", d.NormL2())
	}
}

func TestEqualNegativeCases(t *testing.T) {
	a, b := New(), New()
	a.Set(1, 1)
	if a.Equal(b) {
		t.Fatal("different lengths equal")
	}
	b.Set(1, 2)
	if a.Equal(b) {
		t.Fatal("different values equal")
	}
	b.Set(1, 1)
	if !a.Equal(b) {
		t.Fatal("identical vectors unequal")
	}
}
