package sparse

import "sync"

// Sorted-pair extraction: the shared fast path behind ForEachSorted,
// Dot, the norms and Encode. The older implementation materialized a
// fresh Indices() slice and then re-probed the hash table once per entry
// (findSlot per index) to recover the values; on the simulator's hottest
// loops that cost one allocation plus n extra probe chains per
// reduction. Instead we copy the occupied (index, value) pairs into a
// reusable scratch and radix-sort the pairs in one go, moving values
// alongside their indices, so a sorted pass costs zero allocations and
// zero re-probes in the steady state.
//
// The scratch (including the radix sort's swap buffers) is pooled
// rather than hung off the Vector: mini-batch feature vectors are shared
// read-only between concurrently running workers, so per-vector mutable
// scratch would race where per-goroutine pooled scratch cannot.

// pairScratch holds the extraction buffers plus the radix swap buffers.
type pairScratch struct {
	idx, idxSwap []uint32
	val, valSwap []float64
}

var pairPool = sync.Pool{New: func() any { return new(pairScratch) }}

// extract fills the scratch with v's occupied pairs sorted by ascending
// index and returns the index/value slices (views into the scratch,
// valid until the scratch is released).
func (ps *pairScratch) extract(v *Vector) ([]uint32, []float64) {
	n := v.n
	if cap(ps.idx) < n {
		ps.idx = make([]uint32, n)
		ps.val = make([]float64, n)
	}
	idx, val := ps.idx[:n], ps.val[:n]
	k := 0
	for s, occ := range v.occ {
		if occ {
			idx[k] = v.keys[s]
			val[k] = v.vals[s]
			k++
		}
	}
	ps.sortPairs(idx, val)
	return idx, val
}

// sortPairs sorts idx ascending, moving val along. Small inputs use
// insertion sort; larger ones an LSD byte-wise radix sort over the
// scratch's reusable swap buffers, skipping passes whose byte is
// constant zero (the same pass-skipping as radixSortUint32).
func (ps *pairScratch) sortPairs(idx []uint32, val []float64) {
	n := len(idx)
	if n < 64 {
		for i := 1; i < n; i++ {
			x, y := idx[i], val[i]
			j := i - 1
			for j >= 0 && idx[j] > x {
				idx[j+1], val[j+1] = idx[j], val[j]
				j--
			}
			idx[j+1], val[j+1] = x, y
		}
		return
	}
	var max uint32
	for _, x := range idx {
		if x > max {
			max = x
		}
	}
	if cap(ps.idxSwap) < n {
		ps.idxSwap = make([]uint32, n)
		ps.valSwap = make([]float64, n)
	}
	srcI, dstI := idx, ps.idxSwap[:n]
	srcV, dstV := val, ps.valSwap[:n]
	for shift := uint(0); shift < 32 && max>>shift > 0; shift += 8 {
		var counts [257]int
		for _, x := range srcI {
			counts[((x>>shift)&0xFF)+1]++
		}
		for i := 1; i < 257; i++ {
			counts[i] += counts[i-1]
		}
		for k, x := range srcI {
			b := (x >> shift) & 0xFF
			dstI[counts[b]] = x
			dstV[counts[b]] = srcV[k]
			counts[b]++
		}
		srcI, dstI = dstI, srcI
		srcV, dstV = dstV, srcV
	}
	if &srcI[0] != &idx[0] {
		copy(idx, srcI)
		copy(val, srcV)
	}
}
