package sparse

import (
	"bytes"
	"testing"

	"mlless/internal/xrand"
)

// --- correctness of the zero-allocation APIs ---

func TestEncodeToMatchesEncode(t *testing.T) {
	r := xrand.New(11)
	for _, nnz := range []int{0, 1, 7, 100, 1000} {
		v := randomVector(r, 100000, nnz)
		want := v.Encode()
		if got := v.EncodeTo(nil); !bytes.Equal(got, want) {
			t.Fatalf("nnz=%d: EncodeTo(nil) differs from Encode", nnz)
		}
		// Appending onto a prefix leaves the prefix intact.
		prefix := []byte("hdr")
		got := v.EncodeTo(prefix)
		if string(got[:3]) != "hdr" || !bytes.Equal(got[3:], want) {
			t.Fatalf("nnz=%d: EncodeTo clobbered the prefix", nnz)
		}
		// Reusing a buffer with capacity reproduces the same bytes.
		buf := make([]byte, 0, len(want))
		if got := v.EncodeTo(buf); !bytes.Equal(got, want) {
			t.Fatalf("nnz=%d: EncodeTo(reused) differs", nnz)
		}
	}
}

func TestDecodeIntoReusesVector(t *testing.T) {
	r := xrand.New(12)
	big := randomVector(r, 100000, 500)
	small := randomVector(r, 100000, 20)
	v := New()
	if err := DecodeInto(v, big.Encode()); err != nil {
		t.Fatal(err)
	}
	if !v.Equal(big) {
		t.Fatal("DecodeInto mismatch on first decode")
	}
	// Decoding a smaller vector into the same table must fully replace
	// the previous contents.
	if err := DecodeInto(v, small.Encode()); err != nil {
		t.Fatal(err)
	}
	if !v.Equal(small) {
		t.Fatal("DecodeInto left stale entries behind")
	}
	if err := DecodeInto(v, New().Encode()); err != nil {
		t.Fatal(err)
	}
	if v.Len() != 0 {
		t.Fatal("DecodeInto of empty vector left entries")
	}
}

func TestDecodeIntoErrors(t *testing.T) {
	v := New()
	if err := DecodeInto(v, []byte{1, 2}); err == nil {
		t.Fatal("short buffer accepted")
	}
	if err := DecodeInto(v, append(New().Encode(), 0)); err == nil {
		t.Fatal("trailing garbage accepted")
	}
}

func TestCopyFromMatchesClone(t *testing.T) {
	r := xrand.New(13)
	src := randomVector(r, 100000, 300)
	dst := New()
	dst.CopyFrom(src)
	if !dst.Equal(src) {
		t.Fatal("CopyFrom mismatch")
	}
	dst.Set(42, 99)
	if src.Get(42) == 99 && src.Get(42) != 0 {
		t.Fatal("CopyFrom aliased the source")
	}
	// Copying a smaller vector over a larger one replaces it fully.
	small := randomVector(r, 100, 5)
	dst.CopyFrom(small)
	if !dst.Equal(small) {
		t.Fatal("CopyFrom did not replace previous contents")
	}
	// Copying an empty (never-initialized) vector clears.
	dst.CopyFrom(New())
	if dst.Len() != 0 {
		t.Fatal("CopyFrom of empty vector left entries")
	}
}

func TestEqualShortCircuitsOnFirstMismatch(t *testing.T) {
	// Two large vectors that differ everywhere: Equal must return false
	// (and, per the fix, stops probing after the first mismatch rather
	// than scanning all n entries — pinned here behaviorally, and by
	// the Equal benchmark's ns/op if it ever regresses).
	a, b := New(), New()
	for i := uint32(0); i < 10000; i++ {
		a.Set(i, 1)
		b.Set(i, 2)
	}
	if a.Equal(b) {
		t.Fatal("everywhere-different vectors compare equal")
	}
	// One mismatch buried among identical entries is still found.
	c := a.Clone()
	c.Set(9999, 7)
	if a.Equal(c) || !a.Equal(a.Clone()) {
		t.Fatal("single mismatch missed, or identical vectors unequal")
	}
}

// --- allocation regression guards ---
// These pin the steady-state hot ops at zero allocations so future PRs
// cannot silently reintroduce churn. The pair scratch is pooled, so the
// first use warms the pool; AllocsPerRun's own warm-up run covers that.

func TestAddNoGrowDoesNotAllocate(t *testing.T) {
	r := xrand.New(21)
	v := NewWithCapacity(2000)
	idx := make([]uint32, 1000)
	for i := range idx {
		idx[i] = uint32(r.Intn(100000))
	}
	if n := testing.AllocsPerRun(10, func() {
		for _, i := range idx {
			v.Add(i, 1)
		}
		for _, i := range idx {
			v.Add(i, -1) // cancel so the table never grows
		}
	}); n != 0 {
		t.Fatalf("Vector.Add (no grow) allocated %v per run", n)
	}
}

func TestEncodeToDoesNotAllocate(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation makes the pair pool drop puts; zero-alloc holds only uninstrumented")
	}
	r := xrand.New(22)
	v := randomVector(r, 100000, 1000)
	buf := v.Encode() // warm buffer at final capacity
	if n := testing.AllocsPerRun(10, func() {
		buf = v.EncodeTo(buf[:0])
	}); n != 0 {
		t.Fatalf("EncodeTo allocated %v per run", n)
	}
}

func TestAddEncodedDoesNotAllocate(t *testing.T) {
	r := xrand.New(23)
	v := randomVector(r, 100000, 1000)
	buf := v.Encode()
	d := NewDense(100000)
	if n := testing.AllocsPerRun(10, func() {
		if _, err := AddEncoded(d, buf); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("AddEncoded allocated %v per run", n)
	}
}

func TestDecodeIntoDoesNotAllocate(t *testing.T) {
	r := xrand.New(24)
	v := randomVector(r, 100000, 1000)
	buf := v.Encode()
	dst := New()
	if err := DecodeInto(dst, buf); err != nil { // warm the table
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(10, func() {
		if err := DecodeInto(dst, buf); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("DecodeInto (warm table) allocated %v per run", n)
	}
}

func TestSortedReductionsDoNotAllocate(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation makes the pair pool drop puts; zero-alloc holds only uninstrumented")
	}
	r := xrand.New(25)
	v := randomVector(r, 100000, 1000)
	d := NewDense(100000)
	v.Dot(d) // warm the pair pool
	if n := testing.AllocsPerRun(10, func() {
		_ = v.Dot(d)
		_ = v.NormL2()
		_ = v.NormL1()
		v.ForEachSorted(func(uint32, float64) {})
	}); n != 0 {
		t.Fatalf("sorted reductions allocated %v per run", n)
	}
}

func TestCopyFromDoesNotAllocateWhenSized(t *testing.T) {
	r := xrand.New(26)
	src := randomVector(r, 100000, 1000)
	dst := New()
	dst.CopyFrom(src) // size the destination
	if n := testing.AllocsPerRun(10, func() {
		dst.CopyFrom(src)
	}); n != 0 {
		t.Fatalf("CopyFrom (sized) allocated %v per run", n)
	}
}

// --- hot-op micro-benchmarks (run with -benchmem) ---

func BenchmarkSparseDot(b *testing.B) {
	r := xrand.New(31)
	v := randomVector(r, 100000, 1000)
	d := NewDense(100000)
	for i := range d {
		d[i] = r.NormFloat64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = v.Dot(d)
	}
}

func BenchmarkSparseForEachSorted(b *testing.B) {
	r := xrand.New(32)
	v := randomVector(r, 100000, 1000)
	sink := 0.0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.ForEachSorted(func(_ uint32, val float64) { sink += val })
	}
	_ = sink
}

func BenchmarkEncodeTo(b *testing.B) {
	r := xrand.New(33)
	v := randomVector(r, 100000, 1000)
	buf := v.Encode()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = v.EncodeTo(buf[:0])
	}
}

func BenchmarkDecodeInto(b *testing.B) {
	r := xrand.New(34)
	v := randomVector(r, 100000, 1000)
	buf := v.Encode()
	dst := New()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := DecodeInto(dst, buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAddEncoded(b *testing.B) {
	r := xrand.New(35)
	v := randomVector(r, 100000, 1000)
	buf := v.Encode()
	d := NewDense(100000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := AddEncoded(d, buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSparseEqual(b *testing.B) {
	r := xrand.New(36)
	v := randomVector(r, 100000, 1000)
	w := v.Clone()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !v.Equal(w) {
			b.Fatal("unequal")
		}
	}
}
