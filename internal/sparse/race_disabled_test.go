//go:build !race

package sparse

// raceEnabled reports whether the race detector instruments this build.
const raceEnabled = false
