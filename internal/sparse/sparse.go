// Package sparse implements the sparse and dense float64 vector types
// used throughout MLLess: model parameters are dense, per-step updates
// (gradients, filtered deltas) are sparse. The binary encoding defined
// here determines the byte counts charged by the simulated network links,
// exactly as serialized update size determined Redis traffic in the
// paper's prototype.
//
// Vector is backed by a purpose-built open-addressing hash table
// (uint32 keys, linear probing, backward-shift deletion) rather than a
// Go map: sparse-update accumulation is the simulator's hottest loop,
// and the specialized table roughly halves its cost. Sorted extraction
// uses an LSD radix sort.
package sparse

import (
	"fmt"
	"math"
)

// Vector is a sparse float64 vector keyed by coordinate index.
// The zero value is an empty vector ready for use (construct with New
// for symmetry with NewWithCapacity).
//
// Indices must fit in uint32 (the binary encoding uses 4-byte indices);
// the largest model in the repository (PMF on the MovieLens-20M-scale
// dataset) has well under 2^32 parameters.
type Vector struct {
	keys []uint32
	vals []float64
	occ  []bool
	n    int
}

// minCapacity is the initial table size (power of two).
const minCapacity = 16

// New returns an empty sparse vector.
func New() *Vector { return &Vector{} }

// NewWithCapacity returns an empty sparse vector with room for n entries
// before the first grow.
func NewWithCapacity(n int) *Vector {
	v := &Vector{}
	v.init(n)
	return v
}

func (v *Vector) init(entries int) {
	capacity := minCapacity
	for capacity*3 < entries*4 { // keep load factor under 3/4
		capacity *= 2
	}
	v.keys = make([]uint32, capacity)
	v.vals = make([]float64, capacity)
	v.occ = make([]bool, capacity)
}

// hash spreads a key over the table (Fibonacci hashing).
func hashKey(k uint32, mask uint32) uint32 {
	return (k * 2654435761) & mask
}

// findSlot returns the slot of key i or, if absent, the slot where it
// would be inserted. ok reports presence.
func (v *Vector) findSlot(i uint32) (slot uint32, ok bool) {
	mask := uint32(len(v.keys) - 1)
	slot = hashKey(i, mask)
	for v.occ[slot] {
		if v.keys[slot] == i {
			return slot, true
		}
		slot = (slot + 1) & mask
	}
	return slot, false
}

func (v *Vector) grow() {
	oldKeys, oldVals, oldOcc := v.keys, v.vals, v.occ
	capacity := len(oldKeys) * 2
	v.keys = make([]uint32, capacity)
	v.vals = make([]float64, capacity)
	v.occ = make([]bool, capacity)
	v.n = 0
	for s := range oldKeys {
		if oldOcc[s] {
			v.insert(oldKeys[s], oldVals[s])
		}
	}
}

// insert places a (key, val) pair known to be absent; val must be
// non-zero.
func (v *Vector) insert(i uint32, val float64) {
	slot, _ := v.findSlot(i)
	v.keys[slot] = i
	v.vals[slot] = val
	v.occ[slot] = true
	v.n++
}

// Len reports the number of non-zero entries.
func (v *Vector) Len() int { return v.n }

// Get returns the value at index i (0 when absent).
func (v *Vector) Get(i uint32) float64 {
	if v.n == 0 {
		return 0
	}
	if slot, ok := v.findSlot(i); ok {
		return v.vals[slot]
	}
	return 0
}

// Set stores val at index i. Setting an exact zero removes the entry so
// that Len always equals the number of stored non-zeros.
func (v *Vector) Set(i uint32, val float64) {
	if val == 0 {
		v.Remove(i)
		return
	}
	if v.keys == nil {
		v.init(0)
	}
	if slot, ok := v.findSlot(i); ok {
		v.vals[slot] = val
		return
	}
	if (v.n+1)*4 > len(v.keys)*3 {
		v.grow()
	}
	v.insert(i, val)
}

// Add accumulates val into index i, removing the entry if the sum
// cancels to exactly zero.
func (v *Vector) Add(i uint32, val float64) {
	if v.keys == nil {
		if val == 0 {
			return
		}
		v.init(0)
	}
	slot, ok := v.findSlot(i)
	if ok {
		s := v.vals[slot] + val
		if s == 0 {
			v.removeSlot(slot)
			return
		}
		v.vals[slot] = s
		return
	}
	if val == 0 {
		return
	}
	if (v.n+1)*4 > len(v.keys)*3 {
		v.grow()
	}
	v.insert(i, val)
}

// Remove deletes the entry at index i and returns its previous value.
func (v *Vector) Remove(i uint32) float64 {
	if v.n == 0 {
		return 0
	}
	slot, ok := v.findSlot(i)
	if !ok {
		return 0
	}
	val := v.vals[slot]
	v.removeSlot(slot)
	return val
}

// removeSlot deletes an occupied slot using backward-shift deletion
// (Knuth, TAOCP 6.4 algorithm R), preserving probe chains without
// tombstones: scan forward to the next empty slot, moving back every
// entry whose probe path crosses the hole.
func (v *Vector) removeSlot(slot uint32) {
	mask := uint32(len(v.keys) - 1)
	hole := slot
	j := hole
	for {
		j = (j + 1) & mask
		if !v.occ[j] {
			break
		}
		home := hashKey(v.keys[j], mask)
		// The entry at j may fill the hole unless its home lies
		// cyclically within (hole, j] — then the hole is not on its
		// probe path.
		if cyclicIn(hole, home, j) {
			continue
		}
		v.keys[hole] = v.keys[j]
		v.vals[hole] = v.vals[j]
		hole = j
	}
	v.occ[hole] = false
	v.n--
}

// cyclicIn reports whether k lies in the half-open cyclic interval
// (i, j].
func cyclicIn(i, k, j uint32) bool {
	if i < j {
		return k > i && k <= j
	}
	return k > i || k <= j
}

// AddVector accumulates other into v (v += other).
func (v *Vector) AddVector(other *Vector) {
	for s := range other.keys {
		if other.occ[s] {
			v.Add(other.keys[s], other.vals[s])
		}
	}
}

// AddScaledVector accumulates s*other into v (v += s*other).
func (v *Vector) AddScaledVector(other *Vector, s float64) {
	if s == 0 {
		return
	}
	for slot := range other.keys {
		if other.occ[slot] {
			v.Add(other.keys[slot], s*other.vals[slot])
		}
	}
}

// Scale multiplies every entry by s. Scaling by 0 clears the vector.
func (v *Vector) Scale(s float64) {
	if s == 0 {
		v.Clear()
		return
	}
	for slot := range v.vals {
		if v.occ[slot] {
			v.vals[slot] *= s
		}
	}
}

// Clear removes all entries, retaining the allocation.
func (v *Vector) Clear() {
	for i := range v.occ {
		v.occ[i] = false
	}
	v.n = 0
}

// reset empties the vector and guarantees room for entries inserts
// without an incremental grow, reusing the existing table when it is
// already large enough.
func (v *Vector) reset(entries int) {
	capacity := minCapacity
	for capacity*3 < entries*4 { // same load-factor rule as init
		capacity *= 2
	}
	if len(v.keys) >= capacity {
		v.Clear()
		return
	}
	v.init(entries)
	v.n = 0
}

// CopyFrom replaces v's contents with an exact copy of src — same table
// layout, bit-identical values — reusing v's storage when the
// capacities already match: the zero-allocation counterpart of Clone
// for scratch vectors reused across steps.
func (v *Vector) CopyFrom(src *Vector) {
	if src.keys == nil {
		v.Clear()
		return
	}
	if len(v.keys) != len(src.keys) {
		v.keys = make([]uint32, len(src.keys))
		v.vals = make([]float64, len(src.vals))
		v.occ = make([]bool, len(src.occ))
	}
	copy(v.keys, src.keys)
	copy(v.vals, src.vals)
	copy(v.occ, src.occ)
	v.n = src.n
}

// Clone returns a deep copy.
func (v *Vector) Clone() *Vector {
	c := &Vector{n: v.n}
	if v.keys != nil {
		c.keys = append([]uint32(nil), v.keys...)
		c.vals = append([]float64(nil), v.vals...)
		c.occ = append([]bool(nil), v.occ...)
	}
	return c
}

// ForEach calls fn for every non-zero entry in unspecified order. Use it
// only where the computation is per-coordinate independent; reductions
// that accumulate across coordinates must use ForEachSorted, because
// float addition is not associative and table order is arbitrary.
func (v *Vector) ForEach(fn func(i uint32, val float64)) {
	for s := range v.keys {
		if v.occ[s] {
			fn(v.keys[s], v.vals[s])
		}
	}
}

// ForEachSorted calls fn for every non-zero entry in ascending index
// order: deterministic, at the cost of a pair sort over pooled scratch
// (zero steady-state allocations; see pairs.go).
func (v *Vector) ForEachSorted(fn func(i uint32, val float64)) {
	if v.n == 0 {
		return
	}
	ps := pairPool.Get().(*pairScratch)
	idx, vals := ps.extract(v)
	for k, i := range idx {
		fn(i, vals[k])
	}
	pairPool.Put(ps)
}

// Indices returns the non-zero indices in ascending order.
func (v *Vector) Indices() []uint32 {
	idx := make([]uint32, 0, v.n)
	for s := range v.keys {
		if v.occ[s] {
			idx = append(idx, v.keys[s])
		}
	}
	radixSortUint32(idx)
	return idx
}

// Dot returns the inner product with a dense vector, accumulated in
// ascending index order so results are run-to-run deterministic (the
// §6.1 sanity check depends on bit-identical losses across systems).
// Entries of v whose index falls outside d are ignored.
func (v *Vector) Dot(d Dense) float64 {
	if v.n == 0 {
		return 0
	}
	ps := pairPool.Get().(*pairScratch)
	idx, vals := ps.extract(v)
	sum := 0.0
	for k, i := range idx {
		if int(i) < len(d) {
			sum += vals[k] * d[i]
		}
	}
	pairPool.Put(ps)
	return sum
}

// NormL2 returns the Euclidean norm of the vector (deterministic order).
func (v *Vector) NormL2() float64 {
	if v.n == 0 {
		return 0
	}
	ps := pairPool.Get().(*pairScratch)
	_, vals := ps.extract(v)
	sum := 0.0
	for _, val := range vals {
		sum += val * val
	}
	pairPool.Put(ps)
	return math.Sqrt(sum)
}

// NormL1 returns the taxicab norm of the vector (deterministic order).
func (v *Vector) NormL1() float64 {
	if v.n == 0 {
		return 0
	}
	ps := pairPool.Get().(*pairScratch)
	_, vals := ps.extract(v)
	sum := 0.0
	for _, val := range vals {
		sum += math.Abs(val)
	}
	pairPool.Put(ps)
	return sum
}

// Equal reports whether two sparse vectors hold identical entries. It
// short-circuits on the first mismatch.
func (v *Vector) Equal(other *Vector) bool {
	if v.n != other.n {
		return false
	}
	for s := range v.keys {
		if v.occ[s] && other.Get(v.keys[s]) != v.vals[s] {
			return false
		}
	}
	return true
}

// String renders up to eight entries for debugging.
func (v *Vector) String() string {
	idx := v.Indices()
	s := "sparse{"
	for k, i := range idx {
		if k == 8 {
			s += fmt.Sprintf(" …(+%d)", len(idx)-8)
			break
		}
		if k > 0 {
			s += " "
		}
		s += fmt.Sprintf("%d:%.4g", i, v.Get(i))
	}
	return s + "}"
}

// radixSortUint32 sorts in place with an LSD byte-wise radix sort,
// skipping passes whose byte is constant zero.
func radixSortUint32(a []uint32) {
	if len(a) < 64 {
		// Insertion sort beats radix setup on tiny inputs.
		for i := 1; i < len(a); i++ {
			x := a[i]
			j := i - 1
			for j >= 0 && a[j] > x {
				a[j+1] = a[j]
				j--
			}
			a[j+1] = x
		}
		return
	}
	var max uint32
	for _, x := range a {
		if x > max {
			max = x
		}
	}
	buf := make([]uint32, len(a))
	src, dst := a, buf
	for shift := uint(0); shift < 32 && max>>shift > 0; shift += 8 {
		var counts [257]int
		for _, x := range src {
			counts[((x>>shift)&0xFF)+1]++
		}
		for i := 1; i < 257; i++ {
			counts[i] += counts[i-1]
		}
		for _, x := range src {
			b := (x >> shift) & 0xFF
			dst[counts[b]] = x
			counts[b]++
		}
		src, dst = dst, src
	}
	if &src[0] != &a[0] {
		copy(a, src)
	}
}

// Dense is a dense float64 vector.
type Dense []float64

// NewDense returns a zeroed dense vector of length n.
func NewDense(n int) Dense { return make(Dense, n) }

// Clone returns a deep copy.
func (d Dense) Clone() Dense {
	c := make(Dense, len(d))
	copy(c, d)
	return c
}

// AddSparse accumulates a sparse vector into d (d += v). Indices outside
// d are ignored, matching Vector.Dot.
func (d Dense) AddSparse(v *Vector) {
	v.ForEach(func(i uint32, val float64) {
		if int(i) < len(d) {
			d[i] += val
		}
	})
}

// AddScaledSparse accumulates s*v into d.
func (d Dense) AddScaledSparse(v *Vector, s float64) {
	v.ForEach(func(i uint32, val float64) {
		if int(i) < len(d) {
			d[i] += s * val
		}
	})
}

// Axpy computes d += s*x for dense x. The vectors must be equal length.
func (d Dense) Axpy(x Dense, s float64) {
	for i := range d {
		d[i] += s * x[i]
	}
}

// Dot returns the inner product with another dense vector of equal length.
func (d Dense) Dot(x Dense) float64 {
	sum := 0.0
	for i := range d {
		sum += d[i] * x[i]
	}
	return sum
}

// NormL2 returns the Euclidean norm.
func (d Dense) NormL2() float64 {
	sum := 0.0
	for _, v := range d {
		sum += v * v
	}
	return math.Sqrt(sum)
}

// Scale multiplies every element by s.
func (d Dense) Scale(s float64) {
	for i := range d {
		d[i] *= s
	}
}

// Fill sets every element to val.
func (d Dense) Fill(val float64) {
	for i := range d {
		d[i] = val
	}
}

// ToSparse converts the dense vector to a sparse one holding its
// non-zero entries. The indices are unique by construction, so entries
// are inserted directly (one probe each, no duplicate check) into a
// table grown once to its final size.
func (d Dense) ToSparse() *Vector {
	nnz := 0
	for _, val := range d {
		if val != 0 {
			nnz++
		}
	}
	v := NewWithCapacity(nnz)
	if nnz == 0 {
		return v
	}
	for i, val := range d {
		if val != 0 {
			v.insert(uint32(i), val)
		}
	}
	return v
}

// Average overwrites d with the element-wise mean of d and other, the
// one-shot reintegration step the scale-in scheduler performs when a
// worker leaves under ISP (§4.2, eviction policy).
func (d Dense) Average(other Dense) {
	for i := range d {
		d[i] = 0.5 * (d[i] + other[i])
	}
}
