package sparse

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
)

// Binary layout of an encoded sparse vector:
//
//	uint32 count
//	count × (uint32 index, float64 value), indices ascending
//
// and of an encoded dense vector:
//
//	uint32 length
//	length × float64
//
// The sizes returned by EncodedSize/DenseEncodedSize are what the
// simulated network links charge for, so they intentionally match a
// realistic wire format rather than Go's in-memory representation.

const (
	sparseHeaderSize = 4
	sparseEntrySize  = 12 // uint32 index + float64 value
	denseHeaderSize  = 4
	denseEntrySize   = 8
)

// EncodedSize returns the number of bytes Encode will produce.
func (v *Vector) EncodedSize() int {
	return sparseHeaderSize + sparseEntrySize*v.Len()
}

// EncodedSizeFor returns the encoded size of a sparse vector with nnz
// non-zero entries without materializing one.
func EncodedSizeFor(nnz int) int {
	return sparseHeaderSize + sparseEntrySize*nnz
}

// Encode serializes the vector with ascending indices (deterministic).
func (v *Vector) Encode() []byte {
	return v.EncodeTo(make([]byte, 0, v.EncodedSize()))
}

// EncodeTo appends the vector's encoding to buf and returns the
// extended slice, reallocating only when buf lacks capacity: the
// zero-allocation publish path (callers keep one wire buffer per worker
// or draw one from a pool). The appended bytes are identical to
// Encode's.
func (v *Vector) EncodeTo(buf []byte) []byte {
	need := v.EncodedSize()
	buf = ensureCap(buf, need)
	start := len(buf)
	buf = buf[:start+need]
	binary.LittleEndian.PutUint32(buf[start:], uint32(v.n))
	if v.n == 0 {
		return buf
	}
	off := start + sparseHeaderSize
	ps := pairPool.Get().(*pairScratch)
	idx, vals := ps.extract(v)
	for k, i := range idx {
		binary.LittleEndian.PutUint32(buf[off:], i)
		binary.LittleEndian.PutUint64(buf[off+4:], math.Float64bits(vals[k]))
		off += sparseEntrySize
	}
	pairPool.Put(ps)
	return buf
}

// ensureCap returns buf with room for at least extra more bytes.
func ensureCap(buf []byte, extra int) []byte {
	if cap(buf)-len(buf) >= extra {
		return buf
	}
	nb := make([]byte, len(buf), len(buf)+extra)
	copy(nb, buf)
	return nb
}

// Decode parses a vector produced by Encode.
func Decode(buf []byte) (*Vector, error) {
	v := New()
	if err := DecodeInto(v, buf); err != nil {
		return nil, err
	}
	return v, nil
}

// DecodeInto parses an encoded sparse vector into v, replacing its
// contents but reusing its table when large enough — the
// zero-allocation counterpart of Decode for steady-state loops. Encoded
// entries are ascending and unique, so the fast path inserts each one
// directly (a single probe, no duplicate check, no incremental grows);
// buffers violating that order fall back to Set, which remains
// correct for any valid encoding.
func DecodeInto(v *Vector, buf []byte) error {
	if len(buf) < sparseHeaderSize {
		return fmt.Errorf("sparse: decode: short buffer (%d bytes)", len(buf))
	}
	n := int(binary.LittleEndian.Uint32(buf))
	want := sparseHeaderSize + sparseEntrySize*n
	if len(buf) != want {
		return fmt.Errorf("sparse: decode: length %d, want %d for %d entries", len(buf), want, n)
	}
	v.reset(n)
	off := sparseHeaderSize
	prev := int64(-1)
	for k := 0; k < n; k++ {
		i := binary.LittleEndian.Uint32(buf[off:])
		val := math.Float64frombits(binary.LittleEndian.Uint64(buf[off+4:]))
		if int64(i) > prev && val != 0 {
			v.insert(i, val)
		} else {
			v.Set(i, val)
		}
		if int64(i) > prev {
			prev = int64(i)
		}
		off += sparseEntrySize
	}
	return nil
}

// AddEncoded streams an encoded sparse vector (the Encode layout)
// directly into the dense accumulator d without materializing a map:
// the hot path for applying peer updates. Indices outside d are ignored,
// matching Dense.AddSparse. It returns the number of entries applied.
func AddEncoded(d Dense, buf []byte) (int, error) {
	if len(buf) < sparseHeaderSize {
		return 0, fmt.Errorf("sparse: apply encoded: short buffer (%d bytes)", len(buf))
	}
	n := int(binary.LittleEndian.Uint32(buf))
	want := sparseHeaderSize + sparseEntrySize*n
	if len(buf) != want {
		return 0, fmt.Errorf("sparse: apply encoded: length %d, want %d for %d entries", len(buf), want, n)
	}
	off := sparseHeaderSize
	for k := 0; k < n; k++ {
		i := binary.LittleEndian.Uint32(buf[off:])
		val := math.Float64frombits(binary.LittleEndian.Uint64(buf[off+4:]))
		if int(i) < len(d) {
			d[i] += val
		}
		off += sparseEntrySize
	}
	return n, nil
}

// AddEncodedSparse streams an encoded sparse vector (the Encode layout)
// into the sparse accumulator v — the reduction kernel of the storage
// collectives, which fold many encoded contributions into one partial
// sum without materializing intermediate maps. Each coordinate's
// contributions accumulate in call order, so a fixed fold order yields
// bit-deterministic sums. It returns the number of entries folded.
func AddEncodedSparse(v *Vector, buf []byte) (int, error) {
	if len(buf) < sparseHeaderSize {
		return 0, fmt.Errorf("sparse: fold encoded: short buffer (%d bytes)", len(buf))
	}
	n := int(binary.LittleEndian.Uint32(buf))
	want := sparseHeaderSize + sparseEntrySize*n
	if len(buf) != want {
		return 0, fmt.Errorf("sparse: fold encoded: length %d, want %d for %d entries", len(buf), want, n)
	}
	off := sparseHeaderSize
	for k := 0; k < n; k++ {
		i := binary.LittleEndian.Uint32(buf[off:])
		val := math.Float64frombits(binary.LittleEndian.Uint64(buf[off+4:]))
		v.Add(i, val)
		off += sparseEntrySize
	}
	return n, nil
}

// AppendEncodedRange appends to dst the encoding of the sub-vector of
// buf whose indices lie in [lo, hi), and returns the extended slice.
// Because encoded entries are ascending, the range is one contiguous
// run: the result is a patched header plus a single copy, no
// re-encoding. This is how the scatter exchange splits one encoded
// update into per-chunk contributions.
func AppendEncodedRange(dst, buf []byte, lo, hi uint32) ([]byte, error) {
	if len(buf) < sparseHeaderSize {
		return dst, fmt.Errorf("sparse: split encoded: short buffer (%d bytes)", len(buf))
	}
	n := int(binary.LittleEndian.Uint32(buf))
	want := sparseHeaderSize + sparseEntrySize*n
	if len(buf) != want {
		return dst, fmt.Errorf("sparse: split encoded: length %d, want %d for %d entries", len(buf), want, n)
	}
	entry := func(k int) uint32 {
		return binary.LittleEndian.Uint32(buf[sparseHeaderSize+k*sparseEntrySize:])
	}
	start := sort.Search(n, func(k int) bool { return entry(k) >= lo })
	end := start + sort.Search(n-start, func(k int) bool { return entry(start+k) >= hi })
	m := end - start
	dst = ensureCap(dst, sparseHeaderSize+m*sparseEntrySize)
	off := len(dst)
	dst = dst[:off+sparseHeaderSize]
	binary.LittleEndian.PutUint32(dst[off:], uint32(m))
	return append(dst, buf[sparseHeaderSize+start*sparseEntrySize:sparseHeaderSize+end*sparseEntrySize]...), nil
}

// DenseEncodedSize returns the encoded size of a dense vector of length n.
func DenseEncodedSize(n int) int {
	return denseHeaderSize + denseEntrySize*n
}

// Encode serializes the dense vector.
func (d Dense) Encode() []byte {
	return d.EncodeTo(make([]byte, 0, DenseEncodedSize(len(d))))
}

// EncodeTo appends the dense encoding to buf and returns the extended
// slice (see Vector.EncodeTo for the reuse contract).
func (d Dense) EncodeTo(buf []byte) []byte {
	need := DenseEncodedSize(len(d))
	buf = ensureCap(buf, need)
	start := len(buf)
	buf = buf[:start+need]
	binary.LittleEndian.PutUint32(buf[start:], uint32(len(d)))
	off := start + denseHeaderSize
	for _, val := range d {
		binary.LittleEndian.PutUint64(buf[off:], math.Float64bits(val))
		off += denseEntrySize
	}
	return buf
}

// DecodeDense parses a vector produced by Dense.Encode.
func DecodeDense(buf []byte) (Dense, error) {
	if len(buf) < denseHeaderSize {
		return nil, fmt.Errorf("sparse: decode dense: short buffer (%d bytes)", len(buf))
	}
	n := int(binary.LittleEndian.Uint32(buf))
	want := DenseEncodedSize(n)
	if len(buf) != want {
		return nil, fmt.Errorf("sparse: decode dense: length %d, want %d for %d elements", len(buf), want, n)
	}
	d := make(Dense, n)
	off := denseHeaderSize
	for i := 0; i < n; i++ {
		d[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[off:]))
		off += denseEntrySize
	}
	return d, nil
}
