//go:build race

package sparse

// raceEnabled reports whether the race detector instruments this build.
// Race instrumentation makes sync.Pool drop puts (and inflates
// allocation counts generally), so the zero-allocation guards on
// pool-backed paths only hold in uninstrumented builds.
const raceEnabled = true
