package exchange

import (
	"fmt"
	"sync/atomic"

	"mlless/internal/cost"
	"mlless/internal/sparse"
	"mlless/internal/trace"
	"mlless/internal/vclock"
)

// collectiveBase is the machinery the storage-mediated strategies
// share: per-worker reduction state, object-store request accounting,
// step expiry and bucket teardown. Both collectives keep the KV tier
// out of the data path entirely — updates move through the object
// store, whose requests are billed per call rather than through a
// provisioned VM.
type collectiveBase struct {
	env Env
	ws  []*workerState

	cPublishes, cPulls, cRounds *trace.Counter
	// COS bills PUT/LIST (class A) an order of magnitude above
	// GET (class B); DELETE is free. The counts feed BillInto.
	classA, classB atomic.Int64
}

// workerState is one worker's reduction scratch. It persists across
// steps (and across the worker's container relaunches — the exchange
// models durable per-rank state) so the steady-state collective path
// stops allocating once buffers reach their high-water marks.
type workerState struct {
	acc   *sparse.Vector // partial-sum accumulator
	own   []byte         // scatter: encoded own-chunk contribution
	red   []byte         // encoded reduced data this worker republishes
	split []byte         // scatter: chunk-split staging buffer
	keys  []string
	vals  [][]byte
}

func newCollectiveBase(env Env) collectiveBase {
	ws := make([]*workerState, env.Workers)
	for i := range ws {
		ws[i] = &workerState{acc: sparse.New()}
	}
	return collectiveBase{
		env:        env,
		ws:         ws,
		cPublishes: env.Reg.Counter("xchg.publishes"),
		cPulls:     env.Reg.Counter("xchg.pulls"),
		cRounds:    env.Reg.Counter("xchg.reduce_rounds"),
	}
}

func (c *collectiveBase) state(worker int) *workerState {
	for worker >= len(c.ws) {
		c.ws = append(c.ws, &workerState{acc: sparse.New()})
	}
	return c.ws[worker]
}

// Collective implements Exchange.
func (c *collectiveBase) Collective() bool { return true }

// UpdateKey implements Exchange. The collectives keep the engine's
// historical key layout as the update's protocol identity — it is what
// announcements and diagnostics name — even though payload bytes travel
// through the object-store bucket instead.
func (c *collectiveBase) UpdateKey(step, worker int) string {
	return fmt.Sprintf("%s/upd/%d/%d", c.env.NS, step, worker)
}

// PullKeys implements Exchange; job validation restricts collectives to
// the lock-step schedule, which never calls it.
func (c *collectiveBase) PullKeys(*vclock.Clock, []string, [][]byte, sparse.Dense) ([][]byte, int, error) {
	panic("exchange: PullKeys on a collective strategy")
}

// Expire implements Exchange: list-and-delete the step's objects. One
// LIST is class A; deletes are free.
func (c *collectiveBase) Expire(clk *vclock.Clock, step int, _ []int) {
	prefix := fmt.Sprintf("s%d/", step)
	c.classA.Add(1)
	for _, k := range c.env.Obj.List(clk, c.env.Bucket, prefix) {
		c.env.Obj.Delete(clk, c.env.Bucket, k)
	}
}

// Teardown implements Exchange: drop the job-private bucket.
func (c *collectiveBase) Teardown() {
	c.env.Obj.DeleteBucket(c.env.Bucket)
}

// BillInto implements Exchange: charge the strategy's object-store
// request traffic by class.
func (c *collectiveBase) BillInto(m *cost.Meter) {
	if a := c.classA.Load(); a > 0 {
		m.AddRequests("cos-class-a-requests", a, cost.PriceCOSClassARequest)
	}
	if b := c.classB.Load(); b > 0 {
		m.AddRequests("cos-class-b-requests", b, cost.PriceCOSClassBRequest)
	}
}

// subtractOwn removes the worker's own published update from the
// applied reduced total: the worker already applied its full local
// update at compute time, so leaving its significant part in the total
// would double-count it.
func (c *collectiveBase) subtractOwn(p *PullCtx) {
	p.Params.AddScaledSparse(p.OwnSig, -1)
	c.env.Charge(p.Clock, p.Worker, 2*float64(p.OwnSig.Len()))
}

// Object keys inside the job's bucket. Scatter: per-chunk contributions
// and reduced chunks; tree: per-level partial sums and the root total.
// All share the s<step>/ prefix Expire lists.
func contribKey(step, chunk, pos int) string { return fmt.Sprintf("s%d/c%d/w%d", step, chunk, pos) }
func reducedKey(step, chunk int) string      { return fmt.Sprintf("s%d/r%d", step, chunk) }
func levelKey(step, level, pos int) string   { return fmt.Sprintf("s%d/l%d/%d", step, level, pos) }
func rootKey(step int) string                { return fmt.Sprintf("s%d/root", step) }
