// Package exchange is the pluggable gradient-exchange subsystem: it
// owns how per-step model updates move between workers. The paper's
// MLLess design routes every update through a low-latency KV tier — the
// "indirect-communication tax" of FaaS platforms whose functions cannot
// open connections to each other (§2, §3.2). That parameter-server
// pattern is one point in a larger design space: "Towards Demystifying
// Serverless ML Training" shows the exchange topology (parameter server
// vs ScatterReduce vs AllReduce through shared storage) is the dominant
// term in serverless training cost. This package abstracts the exchange
// behind one interface with three deterministic implementations:
//
//   - ParamServer: the paper's sharded-KV path, extracted from the core
//     engine verbatim. Byte-identical traces and bit-identical loss
//     histories to the pre-extraction engine are a pinned invariant.
//   - ScatterReduce: workers write per-chunk update contributions to
//     object storage, each worker reduces the chunk it owns and
//     republishes the partial sum (one round, P² requests).
//   - TreeReduce: hierarchical fan-in over object storage with a
//     configurable fan-out (O(log P) rounds, O(P) requests).
//
// The engine (internal/core) drives whichever strategy a job selects
// through the same per-step state machine: Publish after compute,
// Rounds/RunRound reduction phases between the compute and pull halves,
// Pull at sync points. All strategies compose with the ISP significance
// filter (they move whatever the filter emits) and with fault injection
// (time lost to reclamation is recharged by the engine's recovery path).
//
// Key namespaces: ParamServer stores update payloads in the KV store
// under <job>/upd/<step>/<worker> — exactly the engine's historical
// protocol keys. The collectives keep that name as the update's protocol
// identity (announcements, diagnostics) but move payload bytes through a
// per-job object-store bucket: scatter contributions live at
// s<step>/c<chunk>/w<position>, reduced chunks at s<step>/r<chunk>;
// tree partial sums at s<step>/l<level>/<position> with the total at
// s<step>/root.
//
// Charging: KV and object-store traffic is charged through the shared
// substrate pipelines (per-stream bandwidth, NIC sharing, max-of-
// branches fan-out — see objstore.PutMulti). Reduction arithmetic is
// charged through Env.Charge at 2 effective flops per folded
// coordinate, mirroring the engine's apply-side constant. Collective
// request traffic is billed per object-store request class (BillInto),
// because unlike the mini-batch traffic it differs across strategies.
package exchange

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"mlless/internal/cost"
	"mlless/internal/kvstore"
	"mlless/internal/objstore"
	"mlless/internal/sparse"
	"mlless/internal/trace"
	"mlless/internal/vclock"
)

// Strategy kinds (Spec.Exchange).
const (
	// KindParamServer is the paper's KV-mediated parameter-server
	// exchange, the default.
	KindParamServer = "ps"
	// KindScatter is ScatterReduce through object storage.
	KindScatter = "scatter"
	// KindTree is hierarchical tree reduction through object storage.
	KindTree = "tree"
)

// DefaultTreeFanout is the tree strategy's fan-in degree when the job
// leaves it unset.
const DefaultTreeFanout = 4

// Validation errors.
var (
	// ErrUnknownKind reports an unrecognized strategy name.
	ErrUnknownKind = errors.New("exchange: unknown strategy")
	// ErrBadFanout reports a nonsensical tree fan-out.
	ErrBadFanout = errors.New("exchange: tree fan-out must be >= 2 (or 0 for the default)")
)

// Validate checks a (kind, fanout) pair without building a strategy.
// The zero fanout selects DefaultTreeFanout.
func Validate(kind string, fanout int) error {
	switch kind {
	case KindParamServer, KindScatter, KindTree:
	default:
		return fmt.Errorf("%w %q (want %s, %s or %s)",
			ErrUnknownKind, kind, KindParamServer, KindScatter, KindTree)
	}
	if kind == KindTree && fanout != 0 && fanout < 2 {
		return fmt.Errorf("%w, got %d", ErrBadFanout, fanout)
	}
	return nil
}

// IsCollective reports whether kind names a storage-collective strategy
// (anything but the parameter server). Unknown kinds are not
// collective; Validate rejects them separately.
func IsCollective(kind string) bool {
	return kind == KindScatter || kind == KindTree
}

// Env is everything a strategy needs from the engine: the substrates it
// moves bytes through, the job's namespaces, and the compute-charging
// hook. The engine builds one Env per job during setup.
type Env struct {
	// KV is the low-latency exchange tier (the parameter-server medium).
	KV *kvstore.Sharded
	// Obj is the object store the collectives move payloads through.
	Obj *objstore.Store
	// Reg is the unified metrics registry ("xchg.*" counters).
	Reg *trace.Registry
	// NS is the job's key-namespace prefix (the job id).
	NS string
	// Bucket is the job-private object-store bucket for collective
	// traffic; Teardown drops it.
	Bucket string
	// Dim is the model's parameter count (chunk-range arithmetic).
	Dim int
	// Workers is the initial pool size (per-worker state allocation).
	Workers int
	// Fanout is the tree strategy's fan-in degree (0 = default).
	Fanout int
	// Charge advances a worker's clock by the virtual duration of flops
	// floating-point operations (the engine's compute model).
	Charge func(clk *vclock.Clock, worker int, flops float64)
}

// PullCtx carries one worker's pull-and-apply pass. The engine owns one
// per worker and reuses it every sync point; Keys and Vals are scratch
// the strategy grows in place, so the steady-state pull allocates
// nothing.
type PullCtx struct {
	// Worker is the pulling worker's id; Clock is its instance clock.
	Worker int
	Clock  *vclock.Clock
	// The pull window (FromStep, Step]: under per-step synchronization
	// FromStep = Step-1. Collectives require a single-step window.
	FromStep, Step int
	// ActiveIDs are the active workers' ids in pool order; a worker's
	// position in this slice is its collective rank.
	ActiveIDs []int
	// Params is the worker's dense replica the pull streams into.
	Params sparse.Dense
	// OwnSig is the significant update this worker published this step.
	// Collectives subtract it after applying the reduced total, because
	// the worker already applied its full local update at compute time.
	OwnSig *sparse.Vector
	// ReadyAt is the instant every reduction-round write is visible;
	// collectives wait for it before reading reduced data.
	ReadyAt time.Duration
	// Announced is the update-key set promised by drained announcements,
	// for the missing-update diagnostic.
	Announced map[string]bool
	// Keys and Vals are per-worker scratch owned by the strategy.
	Keys []string
	Vals [][]byte
}

// Exchange is one gradient-exchange strategy. Implementations are
// deterministic: driven with the same job on the same cluster they
// produce bit-identical arithmetic and byte-identical traces, whichever
// driver (seq or par) runs the phases.
type Exchange interface {
	// Name returns the strategy kind.
	Name() string
	// Collective reports whether the strategy needs reduction rounds
	// between the publish and pull halves of a step. The engine keeps
	// the historical parameter-server code path byte-identical by gating
	// every new step on this.
	Collective() bool
	// UpdateKey names worker's step update in the job's protocol
	// namespace — the identity announcements carry.
	UpdateKey(step, worker int) string
	// Publish moves a worker's significant update into the exchange
	// medium and returns the update's canonical encoding, staged in
	// scratch (the engine's pooled wire buffer), for the announce and
	// loss-report messages that follow. activeIDs is nil unless
	// Collective.
	Publish(clk *vclock.Clock, worker, step int, sig *sparse.Vector, activeIDs []int, scratch []byte) ([]byte, error)
	// Rounds returns how many reduction phases a p-worker pool needs
	// between publish and pull (0 for non-collectives).
	Rounds(p int) int
	// RunRound executes one worker's part of reduction round r. readyAt
	// is the pool-wide instant at which every previous phase's write is
	// visible; workers with work this round wait for it first.
	RunRound(clk *vclock.Clock, worker, step, round int, activeIDs []int, readyAt time.Duration) error
	// Pull applies the window's peer updates to the worker's replica and
	// returns the coordinate count applied (the engine charges apply
	// compute on it).
	Pull(p *PullCtx) (int, error)
	// PullKeys applies an explicit, already-resolved update-key list —
	// the async schedule's pull path, valid for non-collectives only.
	// It returns the (possibly grown) view scratch and the coordinate
	// count applied.
	PullKeys(clk *vclock.Clock, keys []string, vals [][]byte, params sparse.Dense) ([][]byte, int, error)
	// Expire drops step's exchange data for the given active ids,
	// charging the janitor clock (server-side TTL: no worker time).
	Expire(clk *vclock.Clock, step int, ids []int)
	// Teardown releases medium-side state at end of job (bucket drop).
	Teardown()
	// BillInto adds the strategy's request charges to the job's bill.
	BillInto(m *cost.Meter)
}

// New builds the strategy kind names against env.
func New(kind string, env Env) (Exchange, error) {
	if err := Validate(kind, env.Fanout); err != nil {
		return nil, err
	}
	switch kind {
	case KindParamServer:
		return newParamServer(env), nil
	case KindScatter:
		return newScatterReduce(env), nil
	default:
		return newTreeReduce(env), nil
	}
}

// AnnouncedSet renders the announce-derived expected key set, sorted,
// for the missing-update diagnostic.
func AnnouncedSet(announced map[string]bool) string {
	if len(announced) == 0 {
		return "none"
	}
	keys := make([]string, 0, len(announced))
	for k := range announced {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return "[" + strings.Join(keys, " ") + "]"
}

// posOf returns worker's collective rank: its position in the active-id
// slice.
func posOf(ids []int, worker int) int {
	for i, id := range ids {
		if id == worker {
			return i
		}
	}
	return -1
}
