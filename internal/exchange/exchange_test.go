package exchange

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"mlless/internal/cost"
	"mlless/internal/kvstore"
	"mlless/internal/netmodel"
	"mlless/internal/objstore"
	"mlless/internal/sparse"
	"mlless/internal/trace"
	"mlless/internal/vclock"
)

func testEnv(workers, dim, fanout int) Env {
	reg := trace.NewRegistry()
	return Env{
		KV:      kvstore.NewShardedWithRegistry(netmodel.Link{}, reg, 1),
		Obj:     objstore.NewWithRegistry(netmodel.Link{}, reg),
		Reg:     reg,
		NS:      "job0",
		Bucket:  "xchg-job0",
		Dim:     dim,
		Workers: workers,
		Fanout:  fanout,
		Charge:  func(*vclock.Clock, int, float64) {},
	}
}

func TestValidate(t *testing.T) {
	for _, kind := range []string{KindParamServer, KindScatter, KindTree} {
		if err := Validate(kind, 0); err != nil {
			t.Fatalf("Validate(%q, 0) = %v", kind, err)
		}
	}
	if err := Validate("ring", 0); !errors.Is(err, ErrUnknownKind) {
		t.Fatalf("unknown kind err = %v", err)
	}
	if err := Validate(KindTree, 1); !errors.Is(err, ErrBadFanout) {
		t.Fatalf("fanout 1 err = %v", err)
	}
	if err := Validate(KindTree, -3); !errors.Is(err, ErrBadFanout) {
		t.Fatalf("negative fanout err = %v", err)
	}
	if err := Validate(KindTree, 2); err != nil {
		t.Fatalf("fanout 2 err = %v", err)
	}
	// Non-tree strategies ignore the fan-out entirely.
	if err := Validate(KindScatter, 1); err != nil {
		t.Fatalf("scatter with stray fanout err = %v", err)
	}
}

func TestIsCollective(t *testing.T) {
	if IsCollective(KindParamServer) || IsCollective("") || IsCollective("ring") {
		t.Fatal("non-collective kind reported collective")
	}
	if !IsCollective(KindScatter) || !IsCollective(KindTree) {
		t.Fatal("collective kind not reported")
	}
}

func TestUpdateKeyLayout(t *testing.T) {
	for _, kind := range []string{KindParamServer, KindScatter, KindTree} {
		x, err := New(kind, testEnv(2, 10, 0))
		if err != nil {
			t.Fatal(err)
		}
		if got := x.UpdateKey(7, 3); got != "job0/upd/7/3" {
			t.Fatalf("%s UpdateKey = %q", kind, got)
		}
	}
}

func TestAnnouncedSet(t *testing.T) {
	if got := AnnouncedSet(nil); got != "none" {
		t.Fatalf("empty = %q", got)
	}
	got := AnnouncedSet(map[string]bool{"b": true, "a": true})
	if got != "[a b]" {
		t.Fatalf("sorted = %q", got)
	}
}

// randomSigs builds deterministic pseudo-random significant updates,
// overlapping enough that reductions actually sum coordinates.
func randomSigs(p, dim, nnz int, seed int64) []*sparse.Vector {
	rng := rand.New(rand.NewSource(seed))
	sigs := make([]*sparse.Vector, p)
	for w := range sigs {
		v := sparse.New()
		for k := 0; k < nnz; k++ {
			v.Set(uint32(rng.Intn(dim)), rng.NormFloat64())
		}
		sigs[w] = v
	}
	return sigs
}

// runCollectiveStep drives one full exchange step the way the engine
// does — publish all, run every round with a barrier between rounds,
// pull all — and returns each worker's resulting dense replica delta.
func runCollectiveStep(t *testing.T, x Exchange, ids []int, dim int, sigs []*sparse.Vector) []sparse.Dense {
	t.Helper()
	p := len(ids)
	clocks := make([]vclock.Clock, p)
	for i, id := range ids {
		if _, err := x.Publish(&clocks[i], id, 1, sigs[i], ids, nil); err != nil {
			t.Fatalf("publish %d: %v", id, err)
		}
	}
	maxNow := func() time.Duration {
		var m time.Duration
		for i := range clocks {
			if now := clocks[i].Now(); now > m {
				m = now
			}
		}
		return m
	}
	for r := 0; r < x.Rounds(p); r++ {
		readyAt := maxNow()
		for i, id := range ids {
			if err := x.RunRound(&clocks[i], id, 1, r, ids, readyAt); err != nil {
				t.Fatalf("round %d worker %d: %v", r, id, err)
			}
		}
	}
	readyAt := maxNow()
	out := make([]sparse.Dense, p)
	for i, id := range ids {
		out[i] = make(sparse.Dense, dim)
		pc := &PullCtx{
			Worker: id, Clock: &clocks[i], FromStep: 0, Step: 1,
			ActiveIDs: ids, Params: out[i], OwnSig: sigs[i], ReadyAt: readyAt,
		}
		if _, err := x.Pull(pc); err != nil {
			t.Fatalf("pull %d: %v", id, err)
		}
	}
	return out
}

// wantDelta returns what worker i's replica must gain from the
// exchange: the sum of every peer's update (its own was already applied
// at compute time, so the exchange must contribute exactly the rest).
func wantDelta(i, dim int, sigs []*sparse.Vector) sparse.Dense {
	want := make(sparse.Dense, dim)
	for j, sig := range sigs {
		if j != i {
			want.AddSparse(sig)
		}
	}
	return want
}

func TestCollectivesReduceToPeerSum(t *testing.T) {
	const dim = 97
	for _, tc := range []struct {
		kind   string
		p      int
		fanout int
	}{
		{KindScatter, 1, 0}, {KindScatter, 2, 0}, {KindScatter, 5, 0},
		{KindTree, 2, 2}, {KindTree, 5, 2}, {KindTree, 7, 3}, {KindTree, 9, 0},
	} {
		name := fmt.Sprintf("%s-p%d-f%d", tc.kind, tc.p, tc.fanout)
		x, err := New(tc.kind, testEnv(tc.p, dim, tc.fanout))
		if err != nil {
			t.Fatal(err)
		}
		ids := make([]int, tc.p)
		for i := range ids {
			ids[i] = i
		}
		sigs := randomSigs(tc.p, dim, 40, 42)
		got := runCollectiveStep(t, x, ids, dim, sigs)
		for i := range got {
			want := wantDelta(i, dim, sigs)
			for d := 0; d < dim; d++ {
				if diff := got[i][d] - want[d]; diff > 1e-12 || diff < -1e-12 {
					t.Fatalf("%s: worker %d coord %d = %g, want %g", name, i, d, got[i][d], want[d])
				}
			}
		}
	}
}

func TestCollectivesHandleSparseActiveIDs(t *testing.T) {
	// After evictions the active ids are a non-contiguous subset; ranks
	// come from positions, not ids.
	const dim = 53
	ids := []int{0, 2, 5}
	sigs := randomSigs(len(ids), dim, 25, 7)
	for _, kind := range []string{KindScatter, KindTree} {
		x, err := New(kind, testEnv(6, dim, 2))
		if err != nil {
			t.Fatal(err)
		}
		got := runCollectiveStep(t, x, ids, dim, sigs)
		for i := range got {
			want := wantDelta(i, dim, sigs)
			for d := 0; d < dim; d++ {
				if diff := got[i][d] - want[d]; diff > 1e-12 || diff < -1e-12 {
					t.Fatalf("%s: worker %d coord %d = %g, want %g", kind, ids[i], d, got[i][d], want[d])
				}
			}
		}
	}
}

func TestScatterMatchesWideTreeBitwise(t *testing.T) {
	// A tree whose fan-out covers the whole pool folds every update at
	// the root in rank order — the same per-coordinate addition order as
	// the scatter chunks. The two strategies must agree bit for bit.
	const dim, p = 211, 6
	ids := []int{0, 1, 2, 3, 4, 5}
	sigs := randomSigs(p, dim, 90, 99)
	sc, err := New(KindScatter, testEnv(p, dim, 0))
	if err != nil {
		t.Fatal(err)
	}
	tr, err := New(KindTree, testEnv(p, dim, p))
	if err != nil {
		t.Fatal(err)
	}
	a := runCollectiveStep(t, sc, ids, dim, sigs)
	b := runCollectiveStep(t, tr, ids, dim, sigs)
	for i := range a {
		for d := 0; d < dim; d++ {
			if a[i][d] != b[i][d] {
				t.Fatalf("worker %d coord %d: scatter %x, tree %x", i, d, a[i][d], b[i][d])
			}
		}
	}
}

func TestTreeRoundStructure(t *testing.T) {
	// p=5, fanout=2 → 3 levels, 6 rounds; the per-step object set is
	// every non-root upload plus the root total.
	env := testEnv(5, 60, 2)
	x, err := New(KindTree, env)
	if err != nil {
		t.Fatal(err)
	}
	if got := x.Rounds(5); got != 6 {
		t.Fatalf("Rounds(5) = %d", got)
	}
	ids := []int{0, 1, 2, 3, 4}
	sigs := randomSigs(5, 60, 20, 3)
	runCollectiveStep(t, x, ids, 60, sigs)
	var clk vclock.Clock
	keys := env.Obj.List(&clk, env.Bucket, "s1/")
	// Members: level 0 = {1,3}, level 1 = {2}, level 2 = {4}; plus root.
	want := []string{"s1/l0/1", "s1/l0/3", "s1/l1/2", "s1/l2/4", "s1/root"}
	if strings.Join(keys, ",") != strings.Join(want, ",") {
		t.Fatalf("objects = %v, want %v", keys, want)
	}
}

func TestExpireDropsStepObjects(t *testing.T) {
	env := testEnv(4, 40, 0)
	x, err := New(KindScatter, env)
	if err != nil {
		t.Fatal(err)
	}
	ids := []int{0, 1, 2, 3}
	sigs := randomSigs(4, 40, 15, 5)
	runCollectiveStep(t, x, ids, 40, sigs)
	var clk vclock.Clock
	if got := env.Obj.List(&clk, env.Bucket, "s1/"); len(got) == 0 {
		t.Fatal("step left no objects to expire")
	}
	var janitor vclock.Clock
	x.Expire(&janitor, 1, ids)
	if got := env.Obj.List(&clk, env.Bucket, "s1/"); len(got) != 0 {
		t.Fatalf("objects survived Expire: %v", got)
	}
}

func TestParamServerRoundTrip(t *testing.T) {
	env := testEnv(3, 30, 0)
	x, err := New(KindParamServer, env)
	if err != nil {
		t.Fatal(err)
	}
	ids := []int{0, 1, 2}
	sigs := randomSigs(3, 30, 10, 11)
	var clk vclock.Clock
	for i, id := range ids {
		if _, err := x.Publish(&clk, id, 1, sigs[i], nil, nil); err != nil {
			t.Fatal(err)
		}
	}
	params := make(sparse.Dense, 30)
	pc := &PullCtx{Worker: 0, Clock: &clk, FromStep: 0, Step: 1, ActiveIDs: ids, Params: params}
	applied, err := x.Pull(pc)
	if err != nil {
		t.Fatal(err)
	}
	if applied != sigs[1].Len()+sigs[2].Len() {
		t.Fatalf("applied = %d", applied)
	}
	want := wantDelta(0, 30, sigs)
	for d := range want {
		if params[d] != want[d] {
			t.Fatalf("coord %d = %g, want %g", d, params[d], want[d])
		}
	}

	// Expiry deletes the published keys; the pull then reports the
	// missing key with the announced set, exactly the engine's historical
	// diagnostic.
	var janitor vclock.Clock
	x.Expire(&janitor, 1, ids)
	pc.Announced = map[string]bool{"job0/upd/1/1": true}
	if _, err := x.Pull(pc); err == nil ||
		err.Error() != "missing peer update job0/upd/1/1 (announced: [job0/upd/1/1])" {
		t.Fatalf("missing-update err = %v", err)
	}
}

func TestCollectiveBilling(t *testing.T) {
	env := testEnv(4, 40, 0)
	x, err := New(KindScatter, env)
	if err != nil {
		t.Fatal(err)
	}
	ids := []int{0, 1, 2, 3}
	sigs := randomSigs(4, 40, 15, 13)
	runCollectiveStep(t, x, ids, 40, sigs)
	var m cost.Meter
	x.BillInto(&m)
	rep := m.Report()
	if len(rep.Components) != 2 {
		t.Fatalf("bill = %+v", rep)
	}
	// Per step: 4 workers × 3 contribution puts + 4 reduced puts = 16
	// class A; 4×3 contribution gets + 4×3 reduced gets = 24 class B.
	wantA := 16 * cost.PriceCOSClassARequest
	wantB := 24 * cost.PriceCOSClassBRequest
	if got := rep.Total; got != wantA+wantB {
		t.Fatalf("total = %g, want %g", got, wantA+wantB)
	}

	var psm cost.Meter
	ps, _ := New(KindParamServer, testEnv(2, 10, 0))
	ps.BillInto(&psm)
	if psm.Total() != 0 {
		t.Fatal("parameter server billed requests")
	}
}

func TestTreeChargesSlowerLinkMoreRounds(t *testing.T) {
	// With a real COS link, a deeper tree (smaller fan-out) pays more
	// serial round trips: the pool-wide finish time must grow.
	finish := func(fanout int) time.Duration {
		reg := trace.NewRegistry()
		env := testEnv(8, 500, fanout)
		env.Obj = objstore.NewWithRegistry(netmodel.COSLink(), reg)
		x, err := New(KindTree, env)
		if err != nil {
			t.Fatal(err)
		}
		ids := []int{0, 1, 2, 3, 4, 5, 6, 7}
		sigs := randomSigs(8, 500, 100, 21)
		clocks := make([]vclock.Clock, 8)
		for i, id := range ids {
			if _, err := x.Publish(&clocks[i], id, 1, sigs[i], ids, nil); err != nil {
				t.Fatal(err)
			}
		}
		for r := 0; r < x.Rounds(8); r++ {
			var readyAt time.Duration
			for i := range clocks {
				if now := clocks[i].Now(); now > readyAt {
					readyAt = now
				}
			}
			for i, id := range ids {
				if err := x.RunRound(&clocks[i], id, 1, r, ids, readyAt); err != nil {
					t.Fatal(err)
				}
			}
		}
		var max time.Duration
		for i := range clocks {
			if now := clocks[i].Now(); now > max {
				max = now
			}
		}
		return max
	}
	if f2, f8 := finish(2), finish(8); f2 <= f8 {
		t.Fatalf("fanout 2 finished at %v, not slower than fanout 8 at %v", f2, f8)
	}
}
