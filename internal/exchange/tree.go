package exchange

import (
	"fmt"
	"time"

	"mlless/internal/allreduce"
	"mlless/internal/sparse"
	"mlless/internal/vclock"
)

// TreeReduce folds updates through a fan-in tree over object storage:
// ranks are grouped by the fan-out, each group's members upload their
// partial sums and the group leader folds them, level by level, until
// rank 0 holds the total and republishes it once. Request traffic is
// O(P) per step — the cheap end of the collective spectrum — at the
// price of O(log P) serial storage round trips. The closed-form
// counterpart of its charged path is allreduce.TreeTime, built from the
// same ReduceTime kernel as the serverful baseline's models.
type TreeReduce struct {
	collectiveBase
	fanout int
}

func newTreeReduce(env Env) *TreeReduce {
	fanout := env.Fanout
	if fanout == 0 {
		fanout = DefaultTreeFanout
	}
	return &TreeReduce{collectiveBase: newCollectiveBase(env), fanout: fanout}
}

// Name implements Exchange.
func (x *TreeReduce) Name() string { return KindTree }

// Publish implements Exchange: no storage traffic yet — the update
// seeds the worker's accumulator, which the fan-in rounds fold upward.
func (x *TreeReduce) Publish(clk *vclock.Clock, worker, step int, sig *sparse.Vector, ids []int, scratch []byte) ([]byte, error) {
	payload := sig.EncodeTo(scratch)
	x.state(worker).acc.CopyFrom(sig)
	x.cPublishes.Inc()
	return payload, nil
}

// Rounds implements Exchange: an upload and a gather phase per tree
// level.
func (x *TreeReduce) Rounds(p int) int {
	if p <= 1 {
		return 0
	}
	return 2 * allreduce.TreeLevels(p, x.fanout)
}

// stride returns the rank distance between level-lvl group neighbours:
// fanout^lvl.
func (x *TreeReduce) stride(lvl int) int {
	s := 1
	for i := 0; i < lvl; i++ {
		s *= x.fanout
	}
	return s
}

// RunRound implements Exchange. Even rounds are upload phases: the
// members of level r/2 (ranks that participate there but do not lead)
// publish their accumulators. Odd rounds are gather phases: each
// level-r/2 leader waits for the uploads, folds its children's partial
// sums in rank order (bit-deterministic) and — if it is rank 0
// finishing the last level — republishes the total.
func (x *TreeReduce) RunRound(clk *vclock.Clock, worker, step, round int, ids []int, readyAt time.Duration) error {
	p := len(ids)
	if p <= 1 {
		return nil
	}
	pos := posOf(ids, worker)
	if pos < 0 {
		return fmt.Errorf("worker %d not in the active set", worker)
	}
	st := x.state(worker)
	lvl := round / 2
	stride := x.stride(lvl)
	leaderStride := stride * x.fanout

	if round%2 == 0 {
		if pos%stride != 0 || pos%leaderStride == 0 {
			return nil
		}
		st.red = st.acc.EncodeTo(st.red[:0])
		x.env.Obj.Put(clk, x.env.Bucket, levelKey(step, lvl, pos), st.red)
		x.classA.Add(1)
		x.cRounds.Inc()
		return nil
	}

	if pos%leaderStride != 0 {
		return nil
	}
	keys := st.keys[:0]
	for k := 1; k < x.fanout; k++ {
		child := pos + k*stride
		if child >= p {
			break
		}
		keys = append(keys, levelKey(step, lvl, child))
	}
	st.keys = keys
	if len(keys) > 0 {
		clk.AdvanceTo(readyAt)
		st.vals = x.env.Obj.GetMultiViewInto(clk, x.env.Bucket, keys, st.vals)
		x.classB.Add(int64(len(keys)))
		folded := 0
		for i, buf := range st.vals {
			if buf == nil {
				return fmt.Errorf("missing partial sum %s", keys[i])
			}
			n, err := sparse.AddEncodedSparse(st.acc, buf)
			if err != nil {
				return err
			}
			folded += n
		}
		x.env.Charge(clk, worker, 2*float64(folded))
	}
	if pos == 0 && round == x.Rounds(p)-1 {
		st.red = st.acc.EncodeTo(st.red[:0])
		x.env.Obj.Put(clk, x.env.Bucket, rootKey(step), st.red)
		x.classA.Add(1)
	}
	x.cRounds.Inc()
	return nil
}

// Pull implements Exchange: rank 0 applies its accumulator locally;
// everyone else waits for the republished total and streams it in. Both
// then subtract their own contribution.
func (x *TreeReduce) Pull(p *PullCtx) (int, error) {
	np := len(p.ActiveIDs)
	if np <= 1 {
		x.cPulls.Inc()
		return 0, nil
	}
	pos := posOf(p.ActiveIDs, p.Worker)
	if pos < 0 {
		return 0, fmt.Errorf("worker %d not in the active set", p.Worker)
	}
	var applied int
	if pos == 0 {
		acc := x.state(p.Worker).acc
		p.Params.AddSparse(acc)
		applied = acc.Len()
	} else {
		p.Clock.AdvanceTo(p.ReadyAt)
		keys := append(p.Keys[:0], rootKey(p.Step))
		p.Keys = keys
		p.Vals = x.env.Obj.GetMultiViewInto(p.Clock, x.env.Bucket, keys, p.Vals)
		x.classB.Add(1)
		buf := p.Vals[0]
		if buf == nil {
			return 0, fmt.Errorf("missing reduced total %s", keys[0])
		}
		var err error
		if applied, err = sparse.AddEncoded(p.Params, buf); err != nil {
			return 0, err
		}
	}
	x.subtractOwn(p)
	x.cPulls.Inc()
	return applied, nil
}
