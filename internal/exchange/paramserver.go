package exchange

import (
	"fmt"
	"time"

	"mlless/internal/cost"
	"mlless/internal/sparse"
	"mlless/internal/trace"
	"mlless/internal/vclock"
)

// ParamServer is the paper's exchange: every worker publishes its
// significant update to the low-latency KV tier and every peer pulls it
// from there — the MLLess design's answer to functions that cannot talk
// to each other. The implementation is the engine's historical publish,
// pull and expiry code moved behind the Exchange interface, operation
// for operation: traces and loss histories are byte- and bit-identical
// to the pre-extraction engine, which the determinism suites pin.
type ParamServer struct {
	env                Env
	cPublishes, cPulls *trace.Counter
}

func newParamServer(env Env) *ParamServer {
	return &ParamServer{
		env:        env,
		cPublishes: env.Reg.Counter("xchg.publishes"),
		cPulls:     env.Reg.Counter("xchg.pulls"),
	}
}

// Name implements Exchange.
func (x *ParamServer) Name() string { return KindParamServer }

// Collective implements Exchange: the parameter server needs no
// reduction rounds, and the engine keeps its step loop untouched.
func (x *ParamServer) Collective() bool { return false }

// UpdateKey implements Exchange with the engine's historical update-key
// layout.
func (x *ParamServer) UpdateKey(step, worker int) string {
	return fmt.Sprintf("%s/upd/%d/%d", x.env.NS, step, worker)
}

// Publish implements Exchange: encode into the engine's wire buffer and
// Set the update key.
func (x *ParamServer) Publish(clk *vclock.Clock, worker, step int, sig *sparse.Vector, _ []int, scratch []byte) ([]byte, error) {
	payload := sig.EncodeTo(scratch)
	x.env.KV.Set(clk, x.UpdateKey(step, worker), payload)
	x.cPublishes.Inc()
	return payload, nil
}

// Rounds implements Exchange.
func (x *ParamServer) Rounds(int) int { return 0 }

// RunRound implements Exchange; the engine never calls it for
// non-collectives.
func (x *ParamServer) RunRound(*vclock.Clock, int, int, int, []int, time.Duration) error {
	panic("exchange: RunRound on the parameter server")
}

// Pull implements Exchange: batch-read the window's peer update keys in
// pool order and stream each encoded update into the replica.
func (x *ParamServer) Pull(p *PullCtx) (int, error) {
	keys := p.Keys[:0]
	for _, id := range p.ActiveIDs {
		if id != p.Worker {
			for s := p.FromStep + 1; s <= p.Step; s++ {
				keys = append(keys, x.UpdateKey(s, id))
			}
		}
	}
	p.Keys = keys
	p.Vals = x.env.KV.MGetViewInto(p.Clock, keys, p.Vals)
	applied := 0
	for i, buf := range p.Vals {
		if buf == nil {
			return 0, fmt.Errorf("missing peer update %s (announced: %s)", keys[i], AnnouncedSet(p.Announced))
		}
		n, err := sparse.AddEncoded(p.Params, buf)
		if err != nil {
			return 0, err
		}
		applied += n
	}
	x.cPulls.Inc()
	return applied, nil
}

// PullKeys implements Exchange: the async schedule's pull, over an
// announcement-resolved key list.
func (x *ParamServer) PullKeys(clk *vclock.Clock, keys []string, vals [][]byte, params sparse.Dense) ([][]byte, int, error) {
	vals = x.env.KV.MGetViewInto(clk, keys, vals)
	applied := 0
	for i, buf := range vals {
		if buf == nil {
			return vals, 0, fmt.Errorf("missing announced update %s", keys[i])
		}
		n, err := sparse.AddEncoded(params, buf)
		if err != nil {
			return vals, 0, err
		}
		applied += n
	}
	x.cPulls.Inc()
	return vals, applied, nil
}

// Expire implements Exchange: delete each worker's update key for the
// step, in pool order, on the janitor clock.
func (x *ParamServer) Expire(clk *vclock.Clock, step int, ids []int) {
	for _, id := range ids {
		x.env.KV.Delete(clk, x.UpdateKey(step, id))
	}
}

// Teardown implements Exchange; the KV tier is job-shared, expiry
// already cleaned the namespace.
func (x *ParamServer) Teardown() {}

// BillInto implements Exchange: KV traffic is covered by the Redis VM's
// hourly price, which the engine already meters.
func (x *ParamServer) BillInto(*cost.Meter) {}
