package exchange

import (
	"fmt"
	"time"

	"mlless/internal/sparse"
	"mlless/internal/vclock"
)

// ScatterReduce shards the reduction itself: the parameter space is cut
// into P contiguous chunks, one per active worker. At publish time each
// worker splits its encoded update along chunk boundaries and uploads
// the P−1 foreign pieces; in the single reduction round it folds the P
// contributions to its own chunk (peers' uploads plus its own piece)
// into a partial sum and republishes it; at pull time it reads the P−1
// reduced chunks and applies the total. Bandwidth per worker is ~2×
// its update size regardless of P — but the request count is O(P²) per
// step, which is exactly the time/cost trade the frontier sweep
// measures against the parameter server and the tree.
type ScatterReduce struct {
	collectiveBase
}

func newScatterReduce(env Env) *ScatterReduce {
	return &ScatterReduce{collectiveBase: newCollectiveBase(env)}
}

// Name implements Exchange.
func (x *ScatterReduce) Name() string { return KindScatter }

// chunkBounds returns chunk c's index range [lo, hi) of a p-way split
// of the parameter space.
func (x *ScatterReduce) chunkBounds(c, p int) (lo, hi uint32) {
	dim := uint64(x.env.Dim)
	return uint32(uint64(c) * dim / uint64(p)), uint32(uint64(c+1) * dim / uint64(p))
}

// Publish implements Exchange: encode the update, split it along chunk
// boundaries, upload the foreign chunks as concurrent streams and
// retain the own-chunk piece for the reduction round.
func (x *ScatterReduce) Publish(clk *vclock.Clock, worker, step int, sig *sparse.Vector, ids []int, scratch []byte) ([]byte, error) {
	payload := sig.EncodeTo(scratch)
	x.cPublishes.Inc()
	p := len(ids)
	if p <= 1 {
		return payload, nil
	}
	pos := posOf(ids, worker)
	if pos < 0 {
		return payload, fmt.Errorf("worker %d not in the active set", worker)
	}
	st := x.state(worker)

	// The chunk pieces partition the payload's entries, so (p−1) headers
	// plus the payload's entry bytes bound the staging buffer: with
	// capacity ensured up front, the appended sub-slices stay stable.
	need := (p-1)*4 + len(payload)
	if cap(st.split) < need {
		st.split = make([]byte, 0, need)
	}
	split := st.split[:0]
	keys := st.keys[:0]
	vals := st.vals[:0]
	var err error
	for c := 0; c < p; c++ {
		lo, hi := x.chunkBounds(c, p)
		if c == pos {
			if st.own, err = sparse.AppendEncodedRange(st.own[:0], payload, lo, hi); err != nil {
				return payload, err
			}
			continue
		}
		start := len(split)
		if split, err = sparse.AppendEncodedRange(split, payload, lo, hi); err != nil {
			return payload, err
		}
		keys = append(keys, contribKey(step, c, pos))
		vals = append(vals, split[start:len(split):len(split)])
	}
	st.split, st.keys, st.vals = split, keys, vals
	x.env.Obj.PutMulti(clk, x.env.Bucket, keys, vals)
	x.classA.Add(int64(len(keys)))
	return payload, nil
}

// Rounds implements Exchange: one reduce-and-republish round.
func (x *ScatterReduce) Rounds(p int) int {
	if p <= 1 {
		return 0
	}
	return 1
}

// RunRound implements Exchange: wait for every contribution, fold the
// own chunk's P pieces in rank order (bit-deterministic) and republish
// the partial sum.
func (x *ScatterReduce) RunRound(clk *vclock.Clock, worker, step, _ int, ids []int, readyAt time.Duration) error {
	p := len(ids)
	if p <= 1 {
		return nil
	}
	pos := posOf(ids, worker)
	if pos < 0 {
		return fmt.Errorf("worker %d not in the active set", worker)
	}
	st := x.state(worker)
	clk.AdvanceTo(readyAt)

	keys := st.keys[:0]
	for q := 0; q < p; q++ {
		if q != pos {
			keys = append(keys, contribKey(step, pos, q))
		}
	}
	st.keys = keys
	st.vals = x.env.Obj.GetMultiViewInto(clk, x.env.Bucket, keys, st.vals)
	x.classB.Add(int64(len(keys)))

	st.acc.Clear()
	folded, vi := 0, 0
	for q := 0; q < p; q++ {
		buf := st.own
		if q != pos {
			buf = st.vals[vi]
			if buf == nil {
				return fmt.Errorf("missing chunk contribution %s", keys[vi])
			}
			vi++
		}
		n, err := sparse.AddEncodedSparse(st.acc, buf)
		if err != nil {
			return err
		}
		folded += n
	}
	x.env.Charge(clk, worker, 2*float64(folded))

	st.red = st.acc.EncodeTo(st.red[:0])
	x.env.Obj.Put(clk, x.env.Bucket, reducedKey(step, pos), st.red)
	x.classA.Add(1)
	x.cRounds.Inc()
	return nil
}

// Pull implements Exchange: wait for every reduced chunk, apply the
// P−1 foreign ones plus the locally-held own chunk, then subtract the
// worker's own contribution.
func (x *ScatterReduce) Pull(p *PullCtx) (int, error) {
	np := len(p.ActiveIDs)
	if np <= 1 {
		x.cPulls.Inc()
		return 0, nil
	}
	pos := posOf(p.ActiveIDs, p.Worker)
	if pos < 0 {
		return 0, fmt.Errorf("worker %d not in the active set", p.Worker)
	}
	st := x.state(p.Worker)
	p.Clock.AdvanceTo(p.ReadyAt)

	keys := p.Keys[:0]
	for c := 0; c < np; c++ {
		if c != pos {
			keys = append(keys, reducedKey(p.Step, c))
		}
	}
	p.Keys = keys
	p.Vals = x.env.Obj.GetMultiViewInto(p.Clock, x.env.Bucket, keys, p.Vals)
	x.classB.Add(int64(len(keys)))

	applied, vi := 0, 0
	for c := 0; c < np; c++ {
		buf := st.red
		if c != pos {
			buf = p.Vals[vi]
			if buf == nil {
				return 0, fmt.Errorf("missing reduced chunk %s", keys[vi])
			}
			vi++
		}
		n, err := sparse.AddEncoded(p.Params, buf)
		if err != nil {
			return 0, err
		}
		applied += n
	}
	x.subtractOwn(p)
	x.cPulls.Inc()
	return applied, nil
}
