package experiments

import (
	"fmt"
	"time"

	"mlless/internal/faults"
)

// AblFaults measures what surviving an unreliable substrate costs: the
// same PMF job runs under increasing fault intensity — transient
// invocation failures, cold-start stragglers, mid-run container
// reclamation and KV/broker fault delays all scaled together — and the
// overhead surfaces as recovery time and dollars. Injection is seeded,
// so every row is exactly reproducible.
func AblFaults(opts Options) (Table, error) {
	wl, workers := ablWorkload(opts)
	t := Table{
		ID:     "abl-faults",
		Title:  "Fault injection: cost/time overhead vs failure rate",
		Header: []string{"fail-rate", "exec-time", "cost-$", "deaths", "retries", "recovery-s", "converged"},
		Notes: []string{
			"fail-rate scales invocation failures, stragglers, container reclamation and KV/broker faults together",
			"recovery-s is restart + recompute time; its dollars are inside the worker lines (memo component)",
		},
	}
	// The top rate is harsh enough that container reclamations land even
	// in short quick-mode runs, so the recovery path shows up in the
	// deaths/recovery-s columns rather than only as slower operations.
	for _, rate := range []float64{0, 0.02, 0.05, 0.10, 0.25} {
		cl, job := wl.Make(workers)
		job.Spec.MaxSteps = 1200
		if opts.Quick {
			job.Spec.MaxSteps = 400
		}
		job.Spec.Faults = faults.Spec{
			Seed:           7,
			InvokeFailProb: rate,
			StragglerProb:  rate,
			ReclaimProb:    rate,
			// Short mean lifetime so reclamations land inside the run's
			// virtual duration (quick runs finish in ~20 virtual seconds)
			// rather than after it.
			ReclaimMeanLife: 8 * time.Second,
			KVFailProb:      rate / 10,
			KVSlowProb:      rate / 10,
			MQFailProb:      rate / 10,
			MQSlowProb:      rate / 10,
		}
		res, err := runJob(opts, cl, job, fmt.Sprintf("abl-faults-rate%.2f", rate))
		if err != nil {
			return Table{}, fmt.Errorf("abl-faults (rate=%.2f): %w", rate, err)
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.2f", rate),
			res.ExecTime.Round(time.Millisecond).String(),
			fmt.Sprintf("%.4f", res.Cost.Total),
			fmt.Sprintf("%d", res.Recovery.WorkerDeaths),
			fmt.Sprintf("%d", res.Recovery.InvokeRetries),
			fmt.Sprintf("%.2f", res.Recovery.Overhead().Seconds()),
			fmt.Sprintf("%v", res.Converged),
		})
	}
	return t, nil
}
