package experiments

import (
	"strconv"
	"strings"
	"testing"
	"time"
)

// TestRegistryComplete pins the experiment inventory to the paper's
// evaluation section.
func TestRegistryComplete(t *testing.T) {
	want := []string{
		"fig2a", "fig2b", "fig2c", "fig2d", "fig3", "table1", "table2",
		"fig4", "fig5", "table3", "fig6", "fig7",
		"abl-filter", "abl-knee", "abl-merge", "abl-allreduce", "abl-startup", "abl-ssp",
		"abl-faults", "abl-shards", "abl-async", "abl-exchange", "abl-dataset",
		"abl-tenancy",
	}
	got := IDs()
	if len(got) != len(want) {
		t.Fatalf("registry has %d entries, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("registry[%d] = %s, want %s", i, got[i], want[i])
		}
	}
}

func TestLookup(t *testing.T) {
	if _, ok := Lookup("FIG4"); !ok {
		t.Fatal("case-insensitive lookup failed")
	}
	if _, ok := Lookup("nonsense"); ok {
		t.Fatal("bogus id resolved")
	}
}

// TestAllExperimentsQuick executes the whole suite in quick mode: every
// runner must return a non-empty, well-formed table.
func TestAllExperimentsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("quick suite still runs full training jobs")
	}
	for _, entry := range Registry() {
		entry := entry
		t.Run(entry.ID, func(t *testing.T) {
			table, err := entry.Run(Options{Quick: true, ArtifactDir: t.TempDir()})
			if err != nil {
				t.Fatal(err)
			}
			if len(table.Rows) == 0 {
				t.Fatal("no rows")
			}
			if len(table.Header) == 0 {
				t.Fatal("no header")
			}
			for i, row := range table.Rows {
				if len(row) != len(table.Header) {
					t.Fatalf("row %d has %d cells, header has %d", i, len(row), len(table.Header))
				}
			}
			if !strings.Contains(table.String(), table.ID) {
				t.Fatal("String() must include the experiment id")
			}
		})
	}
}

// TestFig2aSpeedDecreasesWithWorkers checks the paper's O(P) shape.
func TestFig2aSpeedDecreasesWithWorkers(t *testing.T) {
	table, err := Fig2a(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	var prev float64
	for i, row := range table.Rows {
		rate, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && rate >= prev {
			t.Fatalf("steps/s did not decrease: %v then %v", prev, rate)
		}
		prev = rate
	}
}

// TestFig4ISPNotSlower checks the Fig 4 shape: v=0.7 must not be slower
// than BSP for the PMF workload.
func TestFig4ISPNotSlower(t *testing.T) {
	table, err := Fig4(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range table.Rows {
		if row[0] != PMF10M(true).Name || row[2] != "0.7" {
			continue
		}
		norm, err := strconv.ParseFloat(row[4], 64)
		if err != nil {
			t.Fatal(err)
		}
		if norm > 1.0 {
			t.Fatalf("PMF at v=0.7 normalized time %v > 1 (ISP slower than BSP)", norm)
		}
	}
}

// TestFig3NoFaaSParallelism checks the Fig 3 message: the FaaS 2-thread
// speedup never exceeds 1, while the VM reference does.
func TestFig3NoFaaSParallelism(t *testing.T) {
	table, err := Fig3(Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range table.Rows {
		faas, err := strconv.ParseFloat(row[2], 64)
		if err != nil {
			t.Fatal(err)
		}
		vm, err := strconv.ParseFloat(row[3], 64)
		if err != nil {
			t.Fatal(err)
		}
		if faas > 1.0 {
			t.Fatalf("FaaS 2-thread speedup %v > 1 at %s MiB", faas, row[0])
		}
		if vm <= 1.0 {
			t.Fatalf("VM 2-thread speedup %v <= 1", vm)
		}
	}
}

func TestWorkloadsCached(t *testing.T) {
	a := PMF10M(true)
	b := PMF10M(true)
	if a != b {
		t.Fatal("workload cache miss for identical key")
	}
	if PMF10M(true) == PMF10M(false) {
		t.Fatal("quick and full workloads share a cache entry")
	}
}

func TestWorkloadMakeIsolated(t *testing.T) {
	wl := PMF1M(true)
	clA, jobA := wl.Make(4)
	clB, jobB := wl.Make(4)
	if clA == clB {
		t.Fatal("Make returned a shared cluster")
	}
	if jobA.Model == jobB.Model {
		t.Fatal("Make returned a shared model prototype")
	}
	if jobA.NumBatches != jobB.NumBatches || jobA.NumBatches == 0 {
		t.Fatalf("staging inconsistent: %d vs %d", jobA.NumBatches, jobB.NumBatches)
	}
}

func TestTableCSV(t *testing.T) {
	table := Table{
		ID:     "x",
		Header: []string{"a", "b"},
		Rows:   [][]string{{"1", "two, quoted"}},
	}
	csv := table.CSV()
	if !strings.Contains(csv, "a,b") || !strings.Contains(csv, `"two, quoted"`) {
		t.Fatalf("CSV = %q", csv)
	}
}

func TestFig6Series(t *testing.T) {
	if testing.Short() {
		t.Skip("runs training jobs")
	}
	opts := Options{Quick: true}
	wls, _ := Fig6Workloads(opts)
	table, err := Fig6Series(opts, wls[0], 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 10 {
		t.Fatalf("series rows = %d", len(table.Rows))
	}
	if len(table.Header) != 1+len(systemNames) {
		t.Fatalf("series header = %v", table.Header)
	}
}

// TestAblShardsShape checks the sweep's headline claim: the mean pull
// (exchange) time decreases as shards are added and flattens rather
// than inverting, while the bill grows with the shard count.
func TestAblShardsShape(t *testing.T) {
	if testing.Short() {
		t.Skip("runs training jobs")
	}
	table, err := AblShards(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	pulls := make([]time.Duration, len(table.Rows))
	costs := make([]float64, len(table.Rows))
	for i, row := range table.Rows {
		d, err := time.ParseDuration(row[2])
		if err != nil {
			t.Fatalf("row %d mean-pull %q: %v", i, row[2], err)
		}
		pulls[i] = d
		if costs[i], err = strconv.ParseFloat(row[4], 64); err != nil {
			t.Fatalf("row %d cost %q: %v", i, row[4], err)
		}
	}
	if len(pulls) < 3 {
		t.Fatalf("sweep has only %d points", len(pulls))
	}
	last := len(pulls) - 1
	if pulls[last] >= pulls[0] {
		t.Fatalf("pull did not decrease across the sweep: %v -> %v", pulls[0], pulls[last])
	}
	for i := 1; i < len(pulls); i++ {
		// Flattening, not inverting: allow jitter but no step may undo
		// more than 10% of the previous point.
		if pulls[i] > pulls[i-1]+pulls[i-1]/10 {
			t.Fatalf("pull inverted at row %d: %v", i, pulls)
		}
		if costs[i] <= costs[i-1] {
			t.Fatalf("cost did not grow with shards: %v", costs)
		}
	}
}
