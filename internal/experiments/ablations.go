package experiments

import (
	"fmt"
	"time"

	"mlless/internal/allreduce"
	"mlless/internal/baseline/serverful"
	"mlless/internal/consistency"
	"mlless/internal/cost"
	"mlless/internal/knee"
	"mlless/internal/netmodel"
	"mlless/internal/sched"
)

// Ablation experiments quantify the design choices DESIGN.md calls out.
// They go beyond the paper's figures: each one removes or swaps a single
// mechanism and measures what it was buying.

// ablWorkload picks the PMF job ablations run on.
func ablWorkload(opts Options) (*Workload, int) {
	if opts.Quick {
		return PMF10M(true), 8
	}
	return PMF10M(false), 12
}

// AblFilter compares the paper's accumulate-and-flush significance
// filter against (a) dropping insignificant updates and (b) a constant
// (non-decaying) threshold, at the same v.
func AblFilter(opts Options) (Table, error) {
	wl, workers := ablWorkload(opts)
	t := Table{
		ID:     "abl-filter",
		Title:  "Significance-filter design: accumulate (paper) vs drop vs constant threshold",
		Header: []string{"variant", "exec-time", "steps", "final-loss", "update-MB", "converged"},
		Notes: []string{
			"same v for all variants; the paper's design encodes the complete history of withheld updates (§4.1)",
		},
	}
	for _, variant := range []consistency.Variant{consistency.Accumulate, consistency.Drop, consistency.NoDecay} {
		cl, job := wl.Make(workers)
		job.Spec.Sync = consistency.ISP
		job.Spec.Significance = wl.V
		job.Spec.FilterVariant = variant
		job.Spec.MaxSteps = 2000
		if opts.Quick {
			job.Spec.MaxSteps = 600
		}
		res, err := runJob(opts, cl, job, fmt.Sprintf("abl-filter-%v", variant))
		if err != nil {
			return Table{}, fmt.Errorf("abl-filter (%v): %w", variant, err)
		}
		t.Rows = append(t.Rows, []string{
			variant.String(),
			res.ExecTime.Round(time.Millisecond).String(),
			fmt.Sprintf("%d", res.Steps),
			fmt.Sprintf("%.4f", res.FinalLoss),
			fmt.Sprintf("%.1f", float64(res.TotalUpdateBytes)/1e6),
			fmt.Sprintf("%v", res.Converged),
		})
	}
	return t, nil
}

// AblKnee swaps the knee detector driving the auto-tuner: the paper's
// slope-threshold heuristic vs Kneedle [34].
func AblKnee(opts Options) (Table, error) {
	wl, workers := ablWorkload(opts)
	t := Table{
		ID:     "abl-knee",
		Title:  "Auto-tuner knee detector: slope threshold (paper default) vs Kneedle",
		Header: []string{"detector", "exec-time", "cost-$", "perf-per-$", "removals", "converged"},
	}
	epoch := 5 * time.Second
	if opts.Quick {
		epoch = 2 * time.Second
	}
	for _, d := range []struct {
		name string
		det  knee.Detector
	}{
		{"slope-threshold", knee.SlopeThreshold{}},
		{"kneedle", knee.Kneedle{}},
	} {
		cl, job := wl.Make(workers)
		job.Spec.Sync = consistency.ISP
		job.Spec.Significance = wl.V
		job.Spec.AutoTune = true
		job.Spec.Sched = sched.Config{Epoch: epoch, Knee: d.det}
		res, err := runJob(opts, cl, job, "abl-knee-"+d.name)
		if err != nil {
			return Table{}, fmt.Errorf("abl-knee (%s): %w", d.name, err)
		}
		t.Rows = append(t.Rows, []string{
			d.name,
			res.ExecTime.Round(time.Millisecond).String(),
			fmt.Sprintf("%.4f", res.Cost.Total),
			fmt.Sprintf("%.2f", cost.PerfPerDollar(res.ExecTime, res.Cost.Total)),
			fmt.Sprintf("%d", len(res.Removals)),
			fmt.Sprintf("%v", res.Converged),
		})
	}
	return t, nil
}

// AblMerge measures the one-shot model-merge at eviction (§4.2): with
// it, a leaving worker's withheld (non-significant) updates survive;
// without it, they are lost.
func AblMerge(opts Options) (Table, error) {
	wl, workers := ablWorkload(opts)
	t := Table{
		ID:     "abl-merge",
		Title:  "Eviction reintegration: replica merge (paper) vs discard",
		Header: []string{"merge", "exec-time", "steps", "final-loss", "removals", "converged"},
	}
	epoch := 5 * time.Second
	if opts.Quick {
		epoch = 2 * time.Second
	}
	for _, merge := range []bool{true, false} {
		cl, job := wl.Make(workers)
		job.Spec.Sync = consistency.ISP
		job.Spec.Significance = wl.V
		job.Spec.AutoTune = true
		job.Spec.Sched = sched.Config{Epoch: epoch}
		job.Spec.NoEvictionMerge = !merge
		res, err := runJob(opts, cl, job, fmt.Sprintf("abl-merge-%v", merge))
		if err != nil {
			return Table{}, fmt.Errorf("abl-merge (%v): %w", merge, err)
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%v", merge),
			res.ExecTime.Round(time.Millisecond).String(),
			fmt.Sprintf("%d", res.Steps),
			fmt.Sprintf("%.4f", res.FinalLoss),
			fmt.Sprintf("%d", len(res.Removals)),
			fmt.Sprintf("%v", res.Converged),
		})
	}
	return t, nil
}

// AblAllReduce compares the serverful baseline's ring all-reduce against
// the naive gather/broadcast for the dense gradient sizes of the three
// Table-1 models — the communication-topology advantage FaaS forfeits
// (§2: indirect communication "prevents exploiting HPC communication
// topologies ... such as tree-structured and ring-structured all-reduce").
func AblAllReduce(opts Options) (Table, error) {
	link := netmodel.VMPeerLink()
	sizes := []struct {
		name  string
		bytes int
	}{
		{"LR-Criteo (0.8 MB)", 800_000},
		{"PMF-ML10M (2.3 MB)", 2_300_000},
		{"PMF-ML20M (4.6 MB)", 4_600_000},
	}
	workerCounts := []int{4, 8, 12, 24, 48}
	if opts.Quick {
		workerCounts = []int{8, 24}
	}
	t := Table{
		ID:     "abl-allreduce",
		Title:  "Ring vs naive all-reduce time for dense gradients (VM cluster)",
		Header: []string{"gradient", "workers", "ring", "naive", "ring-advantage"},
	}
	for _, sz := range sizes {
		for _, p := range workerCounts {
			ring := allreduce.RingTime(link, p, sz.bytes)
			naive := allreduce.NaiveTime(link, p, sz.bytes)
			adv := "-"
			if ring > 0 {
				adv = fmt.Sprintf("%.1fx", naive.Seconds()/ring.Seconds())
			}
			t.Rows = append(t.Rows, []string{
				sz.name, fmt.Sprintf("%d", p),
				ring.Round(time.Microsecond).String(),
				naive.Round(time.Microsecond).String(),
				adv,
			})
		}
	}
	return t, nil
}

// AblStartup adds back the startup times every comparison excludes
// (§7): >60 s VM boot for the PyTorch cluster vs sub-second function
// cold starts for MLLess — serverless's hidden advantage for short jobs.
func AblStartup(opts Options) (Table, error) {
	wl, workers := ablWorkload(opts)

	cl, job := wl.Make(workers)
	job.Spec.Sync = consistency.ISP
	job.Spec.Significance = wl.V
	mlless, err := runJob(opts, cl, job, "abl-startup-mlless")
	if err != nil {
		return Table{}, fmt.Errorf("abl-startup: %w", err)
	}
	cl2, job2 := wl.Make(workers)
	cfg := serverful.DefaultConfig()
	pytorch, err := serverful.Train(cl2.COS, job2, cfg)
	if err != nil {
		return Table{}, fmt.Errorf("abl-startup: %w", err)
	}

	coldStart := cl.Platform.Config().ColdStart
	t := Table{
		ID:     "abl-startup",
		Title:  "Including startup time (excluded from every §6 comparison, as in the paper)",
		Header: []string{"system", "startup", "time-to-target", "with-startup"},
		Notes: []string{
			"a 6-VM PyTorch cluster takes >1 min to boot (§7); functions cold-start in <1 s",
		},
	}
	mlT, _ := mlless.TimeToLoss(wl.TargetLoss)
	ptT, _ := pytorch.TimeToLoss(wl.TargetLoss)
	t.Rows = append(t.Rows, []string{
		"mlless+isp", coldStart.String(),
		mlT.Round(time.Millisecond).String(),
		(mlT + coldStart).Round(time.Millisecond).String(),
	})
	t.Rows = append(t.Rows, []string{
		"pytorch", cfg.BootTime.String(),
		ptT.Round(time.Millisecond).String(),
		(ptT + cfg.BootTime).Round(time.Millisecond).String(),
	})
	return t, nil
}

// AblSSP sweeps the SSP staleness bound — the relaxation the paper notes
// is "easy enough to integrate" (§3.1) but leaves as future flexibility.
func AblSSP(opts Options) (Table, error) {
	wl, workers := ablWorkload(opts)
	staleness := []int{1, 2, 4, 8}
	if opts.Quick {
		staleness = []int{1, 4}
	}
	t := Table{
		ID:     "abl-ssp",
		Title:  "SSP staleness sweep (1 = the paper's per-step synchronization)",
		Header: []string{"staleness", "exec-time", "steps", "final-loss", "converged"},
	}
	for _, s := range staleness {
		cl, job := wl.Make(workers)
		job.Spec.Sync = consistency.ISP
		job.Spec.Significance = wl.V
		job.Spec.Staleness = s
		job.Spec.MaxSteps = 2000
		if opts.Quick {
			job.Spec.MaxSteps = 600
		}
		res, err := runJob(opts, cl, job, fmt.Sprintf("abl-ssp-s%d", s))
		if err != nil {
			return Table{}, fmt.Errorf("abl-ssp (s=%d): %w", s, err)
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", s),
			res.ExecTime.Round(time.Millisecond).String(),
			fmt.Sprintf("%d", res.Steps),
			fmt.Sprintf("%.4f", res.FinalLoss),
			fmt.Sprintf("%v", res.Converged),
		})
	}
	return t, nil
}
