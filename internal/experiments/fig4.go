package experiments

import (
	"fmt"
	"time"

	"mlless/internal/consistency"
)

// Fig4 reproduces Fig 4: normalized execution time until convergence as
// the significance threshold v increases, for the three jobs of Table 1.
// The paper's shape: PMF speeds up substantially (up to ≈3x on ML-20M)
// with no convergence side effects, while LR gains little because its
// updates are already small ("the high number of zeroed features ...
// acts as an intrinsic filter in communication").
func Fig4(opts Options) (Table, error) {
	thresholds := []float64{0, 0.3, 0.5, 0.7}
	workerCounts := []int{12, 24}
	workloads := []*Workload{LRCriteo(opts.Quick), PMF10M(opts.Quick), PMF20M(opts.Quick)}
	if opts.Quick {
		thresholds = []float64{0, 0.7}
		workerCounts = []int{8}
		workloads = []*Workload{LRCriteo(true), PMF10M(true)}
	}

	t := Table{
		ID:     "fig4",
		Title:  "Normalized time-to-convergence vs significance threshold v",
		Header: []string{"workload", "workers", "v", "exec-time", "normalized", "update-MB", "converged"},
		Notes: []string{
			"normalized to the v=0 (BSP) run of the same workload and worker count",
			"paper: ML-20M reaches ≈3x speedup at v=0.7; LR gains are small",
		},
	}
	for _, wl := range workloads {
		for _, p := range workerCounts {
			// The largest job is swept at 24 workers only (the paper
			// reports "the trends were similar" across worker counts).
			if wl == PMF20M(opts.Quick) && p != 24 {
				continue
			}
			var baseline time.Duration
			for _, v := range thresholds {
				cl, job := wl.Make(p)
				job.Spec.Sync = consistency.ISP
				job.Spec.Significance = v
				res, err := runJob(opts, cl, job, fmt.Sprintf("fig4-%s-p%d-v%g", wl.Name, p, v))
				if err != nil {
					return Table{}, fmt.Errorf("fig4 (%s P=%d v=%v): %w", wl.Name, p, v, err)
				}
				if v == 0 {
					baseline = res.ExecTime
				}
				norm := 0.0
				if baseline > 0 {
					norm = res.ExecTime.Seconds() / baseline.Seconds()
				}
				t.Rows = append(t.Rows, []string{
					wl.Name,
					fmt.Sprintf("%d", p),
					fmtF(v),
					res.ExecTime.Round(time.Millisecond).String(),
					fmt.Sprintf("%.3f", norm),
					fmt.Sprintf("%.1f", float64(res.TotalUpdateBytes)/1e6),
					fmt.Sprintf("%v", res.Converged),
				})
			}
		}
	}
	return t, nil
}
