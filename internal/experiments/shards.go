package experiments

import (
	"fmt"
	"time"

	"mlless/internal/consistency"
	"mlless/internal/core"
	"mlless/internal/cost"
	"mlless/internal/trace"
)

// shardCounts returns the shard sweep points.
func shardCounts(opts Options) []int {
	if opts.Quick {
		return []int{1, 2, 4, 8}
	}
	return []int{1, 2, 4, 8, 16}
}

// AblShards sweeps the KV exchange tier's shard count against exchange
// time and $ cost. The paper keeps Redis as the update medium precisely
// because it is shardable (§3.1), yet runs a single endpoint, so every
// per-step pull serializes P-1 peer updates through one link — the P²
// exchange wall of §3.2/§6. With N shards the pull fans out over
// concurrent connections and is charged the maximum of the parallel
// shard transfers, so pull time falls toward the per-request latency
// floor while the bill grows by one M1.2x16 VM per shard: a classic
// time/cost trade-off with a knee.
func AblShards(opts Options) (Table, error) {
	wl, workers := ablWorkload(opts)
	t := Table{
		ID:     "abl-shards",
		Title:  "KV exchange tier shard count vs exchange time and cost (BSP pull path)",
		Header: []string{"shards", "exec-time", "mean-pull", "steps", "cost-$", "perf-per-$", "converged"},
		Notes: []string{
			"pull charges the max of the parallel per-shard transfers; it decreases with shards and flattens at the latency floor",
			"each shard bills its own always-on M1.2x16 VM, so $ cost rises linearly with the shard count",
		},
	}
	for _, n := range shardCounts(opts) {
		cl, job := wl.MakeShards(workers, n)
		job.Spec.Sync = consistency.BSP
		job.Spec.MaxSteps = 400
		if opts.Quick {
			job.Spec.MaxSteps = 80
		}
		// Trace every point: the mean pull-phase time is read from the
		// per-step decomposition, which only traced runs populate.
		job.Trace = trace.New()
		res, err := runJob(opts, cl, job, fmt.Sprintf("abl-shards-n%d", n))
		if err != nil {
			return Table{}, fmt.Errorf("abl-shards (n=%d): %w", n, err)
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", n),
			res.ExecTime.Round(time.Millisecond).String(),
			meanPull(res.StepPhases).Round(time.Microsecond).String(),
			fmt.Sprintf("%d", res.Steps),
			fmt.Sprintf("%.4f", res.Cost.Total),
			fmt.Sprintf("%.2f", cost.PerfPerDollar(res.ExecTime, res.Cost.Total)),
			fmt.Sprintf("%v", res.Converged),
		})
	}
	return t, nil
}

// meanPull averages the pull (peer-update exchange) phase over a run's
// traced step decomposition.
func meanPull(phases []core.StepPhase) time.Duration {
	if len(phases) == 0 {
		return 0
	}
	var total time.Duration
	for _, p := range phases {
		total += p.Pull
	}
	return total / time.Duration(len(phases))
}
