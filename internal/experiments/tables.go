package experiments

import (
	"fmt"
	"time"

	"mlless/internal/cost"
)

// Table1 prints the experimental settings (the paper's Table 1) as this
// reproduction instantiates them.
func Table1(opts Options) (Table, error) {
	rows := [][]string{}
	for _, wl := range []*Workload{LRCriteo(opts.Quick), PMF10M(opts.Quick), PMF20M(opts.Quick)} {
		cl, job := wl.Make(12)
		_ = cl
		rows = append(rows, []string{
			wl.Name,
			job.Model.Name(),
			job.Optimizer.Name(),
			fmt.Sprintf("%d", job.Model.NumParams()),
			fmt.Sprintf("%d", wl.BatchSize),
			fmt.Sprintf("%d", job.NumBatches),
			fmtF(wl.TargetLoss),
		})
	}
	return Table{
		ID:     "table1",
		Title:  "ML models, datasets and settings (paper Table 1, simulator scale)",
		Header: []string{"workload", "model", "optimizer", "params", "B", "batches", "target-loss"},
		Rows:   rows,
		Notes: []string{
			"paper: LR/Criteo Adam B=6250; PMF/ML-10M Nesterov B=6250 r=20; PMF/ML-20M B=12K r=20; workers 12/24",
		},
	}, nil
}

// Table2 prints the pricing model (the paper's Table 2).
func Table2(Options) (Table, error) {
	fn2GBHourly := cost.FunctionCost(time.Hour, 2)
	return Table{
		ID:     "table2",
		Title:  "Pricing from IBM Cloud, us-east, April 2021 (paper Table 2)",
		Header: []string{"instance", "role", "price"},
		Rows: [][]string{
			{"C1.4x4 (4vCPU,4GB)", "MLLess messaging service", fmt.Sprintf("$%.2f/hour", cost.PriceC14x4PerHour)},
			{"M1.2x16 (2vCPU,16GB)", "Redis", fmt.Sprintf("$%.2f/hour", cost.PriceM12x16PerHour)},
			{"Functions (1vCPU,2GB)", "MLLess worker", fmt.Sprintf("$%.1e/s ($%.3f/hour)", cost.FunctionCost(time.Second, 2), fn2GBHourly)},
			{"B1.4x8 (4vCPU,8GB)", "PyTorch worker", fmt.Sprintf("$%.2f/hour", cost.PriceB14x8PerHour)},
		},
	}, nil
}

// Table3 reproduces Table 3: execution time of LR on Criteo with the
// global batch held constant while workers vary — the paper's evidence
// that LR's poor scaling is statistical, not a system bottleneck
// (execution time stays roughly flat from 12 to 48 workers).
func Table3(opts Options) (Table, error) {
	wl := LRCriteo(opts.Quick)
	base := wl.BatchSize * 12 // the constant global batch P·B
	configs := []struct{ p, b int }{
		{12, base / 12},
		{24, base / 24},
		{48, base / 48},
	}
	if opts.Quick {
		configs = configs[:2]
	}
	t := Table{
		ID:     "table3",
		Title:  "LR/Criteo execution time with constant global batch (paper Table 3)",
		Header: []string{"workers", "B", "exec-time", "steps", "converged"},
		Notes: []string{
			fmt.Sprintf("global batch fixed at %d samples; paper: 437.1s / 395.3s / 426.3s for 12/24/48 workers", base),
		},
	}
	for _, cfgRow := range configs {
		cl, job := makeWithBatch(wl, cfgRow.p, cfgRow.b)
		res, err := runJob(opts, cl, job, fmt.Sprintf("table3-p%d-b%d", cfgRow.p, cfgRow.b))
		if err != nil {
			return Table{}, fmt.Errorf("table3 (P=%d): %w", cfgRow.p, err)
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", cfgRow.p),
			fmt.Sprintf("%d", cfgRow.b),
			res.ExecTime.Round(time.Millisecond).String(),
			fmt.Sprintf("%d", res.Steps),
			fmt.Sprintf("%v", res.Converged),
		})
	}
	return t, nil
}
