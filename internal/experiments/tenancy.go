package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"mlless/internal/core"
	"mlless/internal/dataset"
	"mlless/internal/faas"
	"mlless/internal/tenant"
	"mlless/internal/vclock"
)

// AblTenancy exercises the multi-tenant control plane (DESIGN.md §14):
// a seeded synthetic arrival trace over the LR/SVM/PMF workload zoo is
// admitted onto one shared substrate under per-tenant concurrency
// quotas inside a deliberately tight platform cap. The experiment
// reports aggregate throughput, Jain's fairness index over per-tenant
// mean slowdowns, and tail job-completion latency, and checks the
// platform's bill splits exactly across tenants. Results are written to
// BENCH_tenancy.json in the working directory.
//
// Quick runs a 12-job trace; the full trace is 60 jobs (the ISSUE's
// >= 50). Both are pure functions of the seed: the control-plane event
// log is byte-identical across runs (CI pins this via mlless-fleet).
//
// The experiment also sweeps the fleet's host worker pool over 1, 2, 4
// and 8 goroutines, re-running the identical trace at each width and
// recording the wall clock: the speedup column is the tentpole's
// deliverable, and the event log is byte-compared across widths so the
// sweep doubles as a determinism check.
func AblTenancy(opts Options) (Table, error) {
	start := time.Now()
	jobs := 60
	if opts.Quick {
		jobs = 12
	}
	const (
		seed    = 2026
		platCap = 14
		meanGap = 1500 * time.Millisecond
	)

	tenants := []tenant.Tenant{
		{Name: "t1", Quota: 10},
		{Name: "t2", Quota: 10},
		{Name: "t3", Quota: 7},
		{Name: "t4", Quota: 7},
	}
	names := make([]string, len(tenants))
	for i, t := range tenants {
		names[i] = t.Name
	}

	// One fresh substrate per sweep point — the trace, templates and
	// staging are all pure functions of the seed, so every width replays
	// the identical fleet. Only tenant.Run is timed: staging and dataset
	// generation are setup, not the subject.
	pars := []int{1, 2, 4, 8}
	walls := make([]time.Duration, len(pars))
	var rep *tenant.Report
	var cl *core.Cluster
	var baseLog string
	for i, par := range pars {
		cl = core.NewCluster()
		pcfg := cl.Platform.Config()
		pcfg.MaxConcurrent = platCap
		cl.Platform = faas.NewPlatformWithRegistry(pcfg, cl.Metrics)
		mix := ZooTemplates(cl, 120)
		arrivals, err := tenant.GenerateArrivals(seed, names, mix, jobs, meanGap)
		if err != nil {
			return Table{}, fmt.Errorf("abl-tenancy: %w", err)
		}
		t0 := time.Now()
		rep, err = tenant.Run(tenant.Config{Cluster: cl, Tenants: tenants, Arrivals: arrivals, HostPar: par})
		if err != nil {
			return Table{}, fmt.Errorf("abl-tenancy: host-par %d: %w", par, err)
		}
		walls[i] = time.Since(t0)

		var log strings.Builder
		if err := rep.WriteEvents(&log); err != nil {
			return Table{}, fmt.Errorf("abl-tenancy: %w", err)
		}
		if i == 0 {
			baseLog = log.String()
		} else if log.String() != baseLog {
			return Table{}, fmt.Errorf("abl-tenancy: host-par %d event log diverged from host-par %d", par, pars[0])
		}
	}

	// The billing invariant the control plane exists to keep: tenant
	// function-time shares sum to the platform's own meter exactly.
	if platform := cl.Platform.BilledFunctionSeconds(); rep.FunctionTime != platform {
		return Table{}, fmt.Errorf("abl-tenancy: tenant bills sum to %v, platform metered %v",
			rep.FunctionTime, platform)
	}

	t := Table{
		ID:     "abl-tenancy",
		Title:  "Multi-tenant control plane: fairness, tail latency, per-tenant billing",
		Header: []string{"tenant", "jobs", "func-time", "func-$", "mean-slowdown", "max-wait"},
		Notes: []string{
			fmt.Sprintf("%d jobs over %d tenants, platform cap %d activations, mean inter-arrival %v (seed %d)",
				jobs, len(tenants), platCap, meanGap, seed),
			fmt.Sprintf("throughput %.1f jobs/h over makespan %v; Jain fairness %.4f; completion latency p50 %v, p99 %v; %d workers handed back under contention",
				rep.ThroughputPerHour, rep.Makespan.Round(time.Millisecond), rep.Jain,
				rep.P50Latency.Round(time.Millisecond), rep.P99Latency.Round(time.Millisecond), rep.ScaleIns),
			"per-tenant func-time sums exactly to the platform's billed function seconds (checked every run)",
			hostParNote(pars, walls),
		},
	}
	for _, tr := range rep.Tenants {
		t.Rows = append(t.Rows, []string{
			tr.Name,
			fmt.Sprintf("%d", tr.Jobs),
			tr.FunctionTime.Round(time.Millisecond).String(),
			fmt.Sprintf("%.6f", tr.FunctionDollars),
			fmt.Sprintf("%.3f", tr.MeanSlowdown),
			tr.MaxWait.Round(time.Millisecond).String(),
		})
	}

	if err := writeTenancyBench(opts.ArtifactDir, rep, jobs, platCap, seed, meanGap, time.Since(start), pars, walls); err != nil {
		return Table{}, fmt.Errorf("abl-tenancy: %w", err)
	}
	return t, nil
}

// ZooTemplates stages the quick LR/SVM/PMF workload zoo onto the shared
// cluster (one bucket per workload) and returns one fleet template per
// workload at staggered pool widths (2, 3, 4 workers), so arrival
// demands differ. Jobs run to their workload's convergence target under
// the given step bound. Shared by abl-tenancy and mlless-fleet.
func ZooTemplates(cl *core.Cluster, maxSteps int) []tenant.Template {
	zoo := []*Workload{LRCriteo(true), SVMCriteo(true), PMF1M(true)}
	var clk vclock.Clock
	mix := make([]tenant.Template, len(zoo))
	for i, w := range zoo {
		w := w
		w.stage()
		for j, buf := range w.staged {
			cl.COS.Put(&clk, w.Name, dataset.BatchKey(j), buf)
		}
		workers := 2 + i
		mix[i] = tenant.Template{
			Name:   w.Name,
			Weight: 1,
			New: func() core.Job {
				return core.Job{
					Spec:       core.Spec{Workers: workers, MaxSteps: maxSteps, TargetLoss: w.TargetLoss},
					Model:      w.newModel(),
					Optimizer:  w.newOpt(),
					Bucket:     w.Name,
					NumBatches: w.numBatch,
					BatchSize:  w.BatchSize,
				}
			},
		}
	}
	return mix
}

// benchSection is one column-oriented block of a BENCH_*.json artifact.
type benchSection struct {
	Columns []string        `json:"columns"`
	Points  [][]interface{} `json:"points"`
	Notes   []string        `json:"notes,omitempty"`
}

// hostParNote summarizes the host-parallelism sweep for the table.
func hostParNote(pars []int, walls []time.Duration) string {
	var b strings.Builder
	b.WriteString("host-parallelism sweep (identical trace, byte-identical event log):")
	for i, par := range pars {
		fmt.Fprintf(&b, " par=%d %v (%.2fx)", par, walls[i].Round(time.Millisecond), speedup(walls, i))
	}
	fmt.Fprintf(&b, " on %d host cores", runtime.NumCPU())
	return b.String()
}

// speedup is walls[0]/walls[i], the sweep's wall-clock gain over the
// single-goroutine run.
func speedup(walls []time.Duration, i int) float64 {
	if walls[i] <= 0 {
		return 0
	}
	return float64(walls[0]) / float64(walls[i])
}

// writeTenancyBench emits BENCH_tenancy.json into dir (the working
// directory when empty), mirroring the repo's other BENCH artifacts.
func writeTenancyBench(dir string, rep *tenant.Report, jobs, platCap int, seed uint64, meanGap, wall time.Duration, pars []int, walls []time.Duration) error {
	doc := struct {
		Description string `json:"description"`
		Host        struct {
			OS    string `json:"os"`
			Arch  string `json:"arch"`
			Cores int    `json:"cores"`
			Wall  string `json:"regeneration_wall_clock"`
		} `json:"host"`
		Fleet    benchSection `json:"fleet"`
		Tenants  benchSection `json:"tenants"`
		HostPar  benchSection `json:"host_parallelism"`
		Headline string       `json:"headline"`
	}{}
	doc.Description = fmt.Sprintf("Multi-tenant control plane (DESIGN.md §14): mlless-bench -experiment abl-tenancy. "+
		"A seeded synthetic trace of %d job arrivals (exponential inter-arrivals, mean %v, seed %d) over the "+
		"LR/SVM/PMF workload zoo is admitted onto one shared substrate capped at %d concurrent activations, "+
		"under per-tenant quotas, fair-share admission and contention-triggered post-knee scale-in. "+
		"All times are virtual (simulated) and the control-plane event log is byte-identical across same-seed runs.",
		jobs, meanGap, seed, platCap)
	doc.Host.OS = runtime.GOOS
	doc.Host.Arch = runtime.GOARCH
	doc.Host.Cores = runtime.NumCPU()
	doc.Host.Wall = wall.Round(100 * time.Millisecond).String()

	doc.Fleet = benchSection{
		Columns: []string{"jobs", "makespan", "throughput_jobs_per_h", "jain_fairness", "p50_latency", "p99_latency", "scale_ins", "platform_function_time", "platform_function_usd"},
		Points: [][]interface{}{{
			len(rep.Jobs),
			rep.Makespan.Round(time.Millisecond).String(),
			round2(rep.ThroughputPerHour),
			round4(rep.Jain),
			rep.P50Latency.Round(time.Millisecond).String(),
			rep.P99Latency.Round(time.Millisecond).String(),
			rep.ScaleIns,
			rep.FunctionTime.Round(time.Millisecond).String(),
			round6(rep.FunctionDollars),
		}},
		Notes: []string{
			"jain_fairness is Jain's index over per-tenant mean slowdowns ((wait+exec)/exec): 1.0 = every tenant slowed equally",
			"scale_ins counts workers jobs handed back after contention-triggered shrink requests (honored post-knee, above the MinWorkers floor)",
		},
	}
	doc.Tenants = benchSection{
		Columns: []string{"tenant", "jobs", "function_time", "function_usd", "mean_slowdown", "max_wait"},
		Notes: []string{
			"function_time sums exactly to the platform's billed function seconds — the per-tenant billing split has no orphaned or double-counted GB-seconds (the experiment errors out otherwise)",
		},
	}
	for _, tr := range rep.Tenants {
		doc.Tenants.Points = append(doc.Tenants.Points, []interface{}{
			tr.Name, tr.Jobs,
			tr.FunctionTime.Round(time.Millisecond).String(),
			round6(tr.FunctionDollars),
			round4(tr.MeanSlowdown),
			tr.MaxWait.Round(time.Millisecond).String(),
		})
	}
	doc.HostPar = benchSection{
		Columns: []string{"host_par", "wall_clock", "speedup_vs_1"},
		Notes: []string{
			"each width re-runs the identical seeded trace with Config.HostPar goroutines executing overlapping virtual windows; the control-plane event log is byte-compared across widths before the point is recorded",
			"speedup saturates at min(host cores, mean virtual overlap of the trace); single-core hosts record ~1.0x by construction",
		},
	}
	for i, par := range pars {
		doc.HostPar.Points = append(doc.HostPar.Points, []interface{}{
			par, walls[i].Round(time.Millisecond).String(), round2(speedup(walls, i)),
		})
	}
	doc.Headline = fmt.Sprintf("%d jobs from %d tenants share one simulated substrate under a %d-activation cap: "+
		"fair-share admission holds Jain fairness at %.4f over mean slowdowns with p99 completion latency %v, "+
		"%d workers are handed back under contention, and the platform bill splits across tenants to the exact GB-second.",
		len(rep.Jobs), len(rep.Tenants), platCap, rep.Jain, rep.P99Latency.Round(time.Millisecond), rep.ScaleIns)

	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, "BENCH_tenancy.json"), append(buf, '\n'), 0o644)
}

func round2(x float64) float64 { return float64(int(x*100+0.5)) / 100 }
func round4(x float64) float64 { return float64(int(x*10000+0.5)) / 10000 }
func round6(x float64) float64 { return float64(int(x*1e6+0.5)) / 1e6 }
