package experiments

import (
	"fmt"
	"time"

	"mlless/internal/consistency"
	"mlless/internal/cost"
	"mlless/internal/faults"
)

// AblAsync compares the journal version's event-driven asynchronous
// schedule against the paper's barrier-driven modes on the same PMF
// workload: BSP, ISP, async at staleness caps 1 and 4 (cap 1 reproduces
// BSP's update sequence without its barriers), and async composed with
// the ISP significance filter.
func AblAsync(opts Options) (Table, error) {
	wl, workers := ablWorkload(opts)
	t := Table{
		ID:     "abl-async",
		Title:  "Barrier-free async schedule vs BSP/ISP (cap 1 = BSP's update sequence, no barriers)",
		Header: []string{"mode", "exec-time", "steps", "final-loss", "cost-$", "perf-per-$", "converged"},
		Notes: []string{
			"async bounds replica drift by the staleness cap K; workers pull peer updates as announced instead of at a barrier",
			"+jitter rows inject seeded per-operation KV/MQ slowdowns: a barrier pays every step's slowest worker, async pays each worker's own sum",
		},
	}
	// Seeded per-operation jitter separates the schedules: under a global
	// barrier the pool pays Σ_steps max_workers(delay) while the
	// announcement-driven schedule pays ~max_workers Σ_steps(delay) —
	// transient slowness no longer stalls the whole pool.
	jitter := faults.Spec{Seed: 17, KVSlowProb: 0.15, MQSlowProb: 0.15}
	for _, row := range []struct {
		name     string
		sync     consistency.Mode
		v        float64
		cap      int
		fs       faults.Spec
		fullOnly bool // skipped in quick mode to keep the sweep short
	}{
		{"bsp", consistency.BSP, 0, 1, faults.Spec{}, false},
		{"isp", consistency.ISP, wl.V, 1, faults.Spec{}, true},
		{"async-k1", consistency.Async, 0, 1, faults.Spec{}, false},
		{"async-k4", consistency.Async, 0, 4, faults.Spec{}, true},
		{"async-k4+isp", consistency.Async, wl.V, 4, faults.Spec{}, false},
		{"bsp+jitter", consistency.BSP, 0, 1, jitter, false},
		{"async-k4+jitter", consistency.Async, 0, 4, jitter, false},
	} {
		if opts.Quick && row.fullOnly {
			continue
		}
		cl, job := wl.Make(workers)
		job.Spec.Sync = row.sync
		job.Spec.Significance = row.v
		job.Spec.Staleness = row.cap
		job.Spec.Faults = row.fs
		job.Spec.MaxSteps = 2000
		if opts.Quick {
			job.Spec.MaxSteps = 600
		}
		res, err := runJob(opts, cl, job, "abl-async-"+row.name)
		if err != nil {
			return Table{}, fmt.Errorf("abl-async (%s): %w", row.name, err)
		}
		t.Rows = append(t.Rows, []string{
			row.name,
			res.ExecTime.Round(time.Millisecond).String(),
			fmt.Sprintf("%d", res.Steps),
			fmt.Sprintf("%.4f", res.FinalLoss),
			fmt.Sprintf("%.4f", res.Cost.Total),
			fmt.Sprintf("%.2f", cost.PerfPerDollar(res.ExecTime, res.Cost.Total)),
			fmt.Sprintf("%v", res.Converged),
		})
	}
	return t, nil
}
