package experiments

import (
	"fmt"
	"time"
)

// Fig7 reproduces Fig 7: cost-vs-loss under fixed budgets. For each
// budget (a fraction of what PyTorch spends to reach the prudent loss)
// it reports, per system, the loss attainable within the budget and the
// maximum execution time the budget affords — the numbers above the bars
// in the paper's figure. The paper's headline: MLLess is 4.94x (ML-10M)
// and 6.32x (ML-20M) cheaper than PyTorch, and "MLLess + All provides
// the best cost-performance trade-off in all applications, even for the
// tiny budget of 9 cents".
func Fig7(opts Options) (Table, error) {
	workloads, workers := fig6Workloads(opts)
	fractions := []float64{0.05, 0.15, 0.5, 1.0}
	if opts.Quick {
		fractions = []float64{0.15, 1.0}
	}
	t := Table{
		ID:     "fig7",
		Title:  "Loss attainable under fixed budgets (and max affordable runtime)",
		Header: []string{"workload", "budget-$", "system", "affordable-time", "loss-at-budget", "cost-to-prudent-$"},
		Notes: []string{
			"budgets are fractions of PyTorch's cost to the prudent loss",
			"paper: MLLess ≈ 4.9-6.3x cheaper than PyTorch; PyTorch affords the longest runtime (cheap VMs) but converges least per unit time",
		},
	}
	for _, wl := range workloads {
		pytorch, err := runSystem(opts, wl, "pytorch", workers)
		if err != nil {
			return Table{}, fmt.Errorf("fig7 (%s): %w", wl.Name, err)
		}
		pytorchCost, ok := pytorch.CostToLoss(wl.PrudentLoss)
		if !ok {
			pytorchCost = pytorch.Cost.Total
		}
		for _, frac := range fractions {
			budget := pytorchCost * frac
			for _, system := range systemNames {
				res, err := runSystem(opts, wl, system, workers)
				if err != nil {
					return Table{}, fmt.Errorf("fig7 (%s/%s): %w", wl.Name, system, err)
				}
				// Average spending rate in $/s; affordable runtime under
				// the budget (capped at the run's actual length).
				rate := 0.0
				if res.ExecTime > 0 {
					rate = res.Cost.Total / res.ExecTime.Seconds()
				}
				affordable := res.ExecTime
				if rate > 0 {
					afford := time.Duration(budget / rate * float64(time.Second))
					if afford < affordable {
						affordable = afford
					}
				}
				loss, _ := res.LossAtTime(affordable)
				costPrudent := "-"
				if c, ok := res.CostToLoss(wl.PrudentLoss); ok {
					costPrudent = fmt.Sprintf("%.4f", c)
				}
				t.Rows = append(t.Rows, []string{
					wl.Name,
					fmt.Sprintf("%.4f", budget),
					system,
					affordable.Round(time.Second).String(),
					fmt.Sprintf("%.4f", loss),
					costPrudent,
				})
			}
		}
	}
	return t, nil
}
