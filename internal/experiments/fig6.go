package experiments

import (
	"fmt"
	"sync"
	"time"

	"mlless/internal/baseline/pywren"
	"mlless/internal/baseline/serverful"
	"mlless/internal/consistency"
	"mlless/internal/core"
	"mlless/internal/sched"
)

// systemNames in presentation order, as in Fig 6's legend.
var systemNames = []string{"pytorch", "pywren-ibm", "mlless", "mlless+isp", "mlless+all"}

// runKey memoizes system executions shared between Fig 6 and Fig 7.
type runKey struct {
	workload string
	system   string
	workers  int
}

var (
	runMu    sync.Mutex
	runCache = map[runKey]*core.Result{}
)

// runSystem executes one system on one workload until the deep
// ("prudent") convergence threshold, memoizing the result.
func runSystem(opts Options, wl *Workload, system string, workers int) (*core.Result, error) {
	quick := opts.Quick
	key := runKey{wl.Name, system, workers}
	runMu.Lock()
	if res, ok := runCache[key]; ok {
		runMu.Unlock()
		return res, nil
	}
	runMu.Unlock()

	cl, job := wl.Make(workers)
	job.Spec.TargetLoss = wl.PrudentLoss
	job.Spec.MaxSteps = 4000
	if quick {
		job.Spec.MaxSteps = 800
	}

	var res *core.Result
	var err error
	switch system {
	case "pytorch":
		res, err = serverful.Train(cl.COS, job, serverful.DefaultConfig())
	case "pywren-ibm":
		res, err = pywren.Train(cl.Platform, cl.COS, job, pywren.DefaultConfig())
	case "mlless":
		job.Spec.Sync = consistency.BSP
		res, err = runJob(opts, cl, job, fmt.Sprintf("fig6-%s-%s-p%d", wl.Name, system, workers))
	case "mlless+isp":
		job.Spec.Sync = consistency.ISP
		job.Spec.Significance = wl.V
		res, err = runJob(opts, cl, job, fmt.Sprintf("fig6-%s-%s-p%d", wl.Name, system, workers))
	case "mlless+all":
		job.Spec.Sync = consistency.ISP
		job.Spec.Significance = wl.V
		job.Spec.AutoTune = true
		// Epoch scaled to the ~10x shorter simulated jobs (see Fig 5).
		job.Spec.Sched = sched.Config{Epoch: 5 * time.Second}
		if quick {
			job.Spec.Sched = sched.Config{Epoch: 2 * time.Second}
		}
		res, err = runJob(opts, cl, job, fmt.Sprintf("fig6-%s-%s-p%d", wl.Name, system, workers))
	default:
		return nil, fmt.Errorf("experiments: unknown system %q", system)
	}
	if err != nil {
		return nil, err
	}
	runMu.Lock()
	runCache[key] = res
	runMu.Unlock()
	return res, nil
}

// Fig6Workloads returns the workloads and worker count of the system
// comparison (paper: P = 24; "the trends were similar for 12 workers").
// Exported so callers can request Fig6Series for each.
func Fig6Workloads(opts Options) ([]*Workload, int) {
	if opts.Quick {
		return []*Workload{PMF10M(true)}, 8
	}
	return []*Workload{LRCriteo(false), PMF10M(false), PMF20M(false)}, 24
}

// fig6Workloads is the internal alias.
func fig6Workloads(opts Options) ([]*Workload, int) { return Fig6Workloads(opts) }

// Fig6 reproduces Fig 6: loss-vs-time comparison of PyTorch, PyWren-IBM
// and the three MLLess variants. The paper's headline: MLLess reaches
// the prudent loss ≈14.5-15.7x faster than PyTorch on the PMF jobs, and
// PyWren-IBM is "very inefficient in all jobs".
func Fig6(opts Options) (Table, error) {
	workloads, workers := fig6Workloads(opts)
	t := Table{
		ID:    "fig6",
		Title: "Loss vs time: PyTorch vs PyWren-IBM vs MLLess variants",
		Header: []string{"workload", "system", "time-to-target", "time-to-prudent",
			"speedup-vs-pytorch", "steps", "final-loss"},
		Notes: []string{
			"target = the Fig 4/5 convergence threshold; prudent = the deep threshold of §6.2",
			"paper: MLLess+All ≈ 14.5x (ML-10M) and 15.7x (ML-20M) faster than PyTorch to the prudent loss",
		},
	}
	for _, wl := range workloads {
		var pytorchPrudent time.Duration
		for _, system := range systemNames {
			res, err := runSystem(opts, wl, system, workers)
			if err != nil {
				return Table{}, fmt.Errorf("fig6 (%s/%s): %w", wl.Name, system, err)
			}
			target, targetOK := res.TimeToLoss(wl.TargetLoss)
			prudent, prudentOK := res.TimeToLoss(wl.PrudentLoss)
			if system == "pytorch" && prudentOK {
				pytorchPrudent = prudent
			}
			speedup := "-"
			if system != "pytorch" && prudentOK && pytorchPrudent > 0 {
				speedup = fmt.Sprintf("%.2fx", pytorchPrudent.Seconds()/prudent.Seconds())
			}
			fmtTime := func(d time.Duration, ok bool) string {
				if !ok {
					return "n/a"
				}
				return d.Round(time.Millisecond).String()
			}
			t.Rows = append(t.Rows, []string{
				wl.Name, system,
				fmtTime(target, targetOK),
				fmtTime(prudent, prudentOK),
				speedup,
				fmt.Sprintf("%d", res.Steps),
				fmt.Sprintf("%.4f", res.FinalLoss),
			})
		}
	}
	return t, nil
}

// Fig6Series returns the loss-vs-time trace of every system for one
// workload, sampled at n evenly spaced virtual times — the raw series
// behind Fig 6, for plotting.
func Fig6Series(opts Options, wl *Workload, n int) (Table, error) {
	_, workers := fig6Workloads(opts)
	results := make(map[string]*core.Result, len(systemNames))
	var longest time.Duration
	for _, system := range systemNames {
		res, err := runSystem(opts, wl, system, workers)
		if err != nil {
			return Table{}, fmt.Errorf("fig6 series (%s/%s): %w", wl.Name, system, err)
		}
		results[system] = res
		if res.ExecTime > longest {
			longest = res.ExecTime
		}
	}
	t := Table{
		ID:     "fig6-series",
		Title:  fmt.Sprintf("Loss vs time series, %s (P=%d)", wl.Name, workers),
		Header: append([]string{"time"}, systemNames...),
	}
	for i := 1; i <= n; i++ {
		at := longest * time.Duration(i) / time.Duration(n)
		row := []string{at.Round(time.Millisecond).String()}
		for _, system := range systemNames {
			loss, ok := results[system].LossAtTime(at)
			if !ok {
				row = append(row, "-")
				continue
			}
			row = append(row, fmt.Sprintf("%.4f", loss))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}
