package experiments

import (
	"fmt"
	"time"

	"mlless/internal/core"
	"mlless/internal/fit"
	"mlless/internal/knee"
)

// fig2Run executes the Fig 2 base job — PMF on MovieLens-1M-scale data —
// with the given worker count and step budget, returning the result.
func fig2Run(opts Options, workers, steps int) (*core.Result, error) {
	wl := PMF1M(opts.Quick)
	cl, job := wl.Make(workers)
	job.Spec.TargetLoss = 0
	job.Spec.MaxSteps = steps
	return runJob(opts, cl, job, fmt.Sprintf("fig2-p%d-steps%d", workers, steps))
}

// Fig2a reproduces Fig 2a: training speed (steps/s) of PMF (ML-1M) as
// the number of workers varies. The paper observes speed decreasing
// roughly linearly with workers because per-step communication is O(p).
func Fig2a(opts Options) (Table, error) {
	workerCounts := []int{4, 8, 12, 16, 20, 24}
	steps := 40
	if opts.Quick {
		workerCounts = []int{4, 12, 24}
		steps = 15
	}
	t := Table{
		ID:     "fig2a",
		Title:  "Training speed vs number of workers (PMF, MovieLens-1M scale)",
		Header: []string{"workers", "steps/s", "step-duration"},
	}
	for _, p := range workerCounts {
		res, err := fig2Run(opts, p, steps)
		if err != nil {
			return Table{}, fmt.Errorf("fig2a (P=%d): %w", p, err)
		}
		// Exclude the first step (cold start) from the rate.
		if len(res.History) < 2 {
			return Table{}, fmt.Errorf("fig2a (P=%d): too few steps", p)
		}
		span := res.History[len(res.History)-1].Time - res.History[0].Time
		rate := float64(len(res.History)-1) / span.Seconds()
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", p),
			fmt.Sprintf("%.3f", rate),
			(span / time.Duration(len(res.History)-1)).Round(time.Millisecond).String(),
		})
	}
	t.Notes = append(t.Notes, "speed decreases with P: per-step pull traffic is O(P) through Redis (paper Fig 2a)")
	return t, nil
}

// fig2Curve runs the Fig 2b-d base job long enough to fit curves and
// returns the smoothed loss history.
func fig2Curve(opts Options) ([]float64, error) {
	steps := 400
	if opts.Quick {
		steps = 150
	}
	res, err := fig2Run(opts, 12, steps)
	if err != nil {
		return nil, err
	}
	losses := make([]float64, len(res.History))
	for i, p := range res.History {
		losses[i] = p.Loss
	}
	return losses, nil
}

// Fig2b reproduces Fig 2b: fitting the reference curve L_P(t) (Eq. 2)
// to the training-loss history. The paper's example fit is θ = (0.05,
// 1.58, 0.58, 0.49); ours differs numerically (different data) but the
// same family must fit with low residual error.
func Fig2b(opts Options) (Table, error) {
	losses, err := fig2Curve(opts)
	if err != nil {
		return Table{}, fmt.Errorf("fig2b: %w", err)
	}
	ts := make([]float64, len(losses))
	for i := range ts {
		ts[i] = float64(i + 1)
	}
	fitted, err := fit.FitCurve(fit.ReferenceCurve{}, ts, losses, fit.FitOptions{})
	if err != nil {
		return Table{}, fmt.Errorf("fig2b: %w", err)
	}
	// Mean relative fit error across the history.
	sum := 0.0
	for i := range ts {
		sum += fit.PredictionError(fitted.Eval(ts[i]), losses[i])
	}
	meanErr := sum / float64(len(ts))

	t := Table{
		ID:     "fig2b",
		Title:  "Reference-curve fit L_P(t) = 1/(θ0·t^θ1 + θ2) + θ3 (Eq. 2)",
		Header: []string{"theta0", "theta1", "theta2", "theta3", "mean-rel-fit-err"},
		Rows: [][]string{{
			fmtF(fitted.Theta[0]), fmtF(fitted.Theta[1]),
			fmtF(fitted.Theta[2]), fmtF(fitted.Theta[3]),
			fmt.Sprintf("%.4f", meanErr),
		}},
		Notes: []string{"paper's example fit on its data: θ = (0.05, 1.58, 0.58, 0.49)"},
	}
	return t, nil
}

// Fig2c reproduces Fig 2c: relative prediction error when estimating
// loss 50-200 steps in advance of the knee, for both curve families.
// The paper reports errors below 1.5%.
func Fig2c(opts Options) (Table, error) {
	losses, err := fig2Curve(opts)
	if err != nil {
		return Table{}, fmt.Errorf("fig2c: %w", err)
	}
	kneeIdx, ok := (knee.SlopeThreshold{}).Detect(losses)
	if !ok {
		kneeIdx = len(losses) / 3
	}
	// The reference curve L_P is fitted on the fast region (history up
	// to the knee); ℓ_p is the slow-region family, fitted on a window of
	// post-knee points — exactly the roles the scheduler gives them
	// (§4.2, "Loss deviation").
	refTs := make([]float64, kneeIdx)
	refYs := make([]float64, kneeIdx)
	for i := 0; i < kneeIdx; i++ {
		refTs[i] = float64(i + 1)
		refYs[i] = losses[i]
	}
	ref, err := fit.FitCurve(fit.ReferenceCurve{}, refTs, refYs, fit.FitOptions{})
	if err != nil {
		return Table{}, fmt.Errorf("fig2c: reference fit: %w", err)
	}
	window := 60
	if opts.Quick {
		window = 25
	}
	if kneeIdx+window > len(losses) {
		window = len(losses) - kneeIdx
	}
	slowTs := make([]float64, window)
	slowYs := make([]float64, window)
	for i := 0; i < window; i++ {
		slowTs[i] = float64(kneeIdx + i + 1)
		slowYs[i] = losses[kneeIdx+i]
	}
	slow, err := fit.FitCurve(fit.SlowCurve{}, slowTs, slowYs, fit.FitOptions{})
	if err != nil {
		return Table{}, fmt.Errorf("fig2c: slow fit: %w", err)
	}

	horizons := []int{50, 100, 150, 200}
	if opts.Quick {
		horizons = []int{25, 50}
	}
	t := Table{
		ID:     "fig2c",
		Title:  "Prediction error estimating 50-200 steps in advance",
		Header: []string{"steps-ahead", "err L_P(t)", "err l_p(t)"},
		Notes: []string{
			fmt.Sprintf("knee detected at step %d; L_P fitted pre-knee, l_p on %d post-knee points", kneeIdx+1, window),
			"paper reports errors < 1.5%",
		},
	}
	base := kneeIdx + window
	for _, h := range horizons {
		target := base + h
		if target >= len(losses) {
			continue
		}
		actual := losses[target]
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", h),
			fmt.Sprintf("%.4f", fit.PredictionError(ref.Eval(float64(target+1)), actual)),
			fmt.Sprintf("%.4f", fit.PredictionError(slow.Eval(float64(target+1)), actual)),
		})
	}
	return t, nil
}

// Fig2d reproduces Fig 2d: the prediction error of ℓ_p(t) shrinking as
// more post-knee points are collected for fitting.
func Fig2d(opts Options) (Table, error) {
	losses, err := fig2Curve(opts)
	if err != nil {
		return Table{}, fmt.Errorf("fig2d: %w", err)
	}
	kneeIdx, ok := (knee.SlopeThreshold{}).Detect(losses)
	if !ok {
		kneeIdx = len(losses) / 3
	}
	windows := []int{20, 40, 80, 160}
	horizon := 60
	if opts.Quick {
		windows = []int{15, 30}
		horizon = 20
	}
	t := Table{
		ID:     "fig2d",
		Title:  "Prediction error of l_p(t) as fitting points accumulate",
		Header: []string{"fit-points", "rel-err@+%d-steps"},
	}
	t.Header[1] = fmt.Sprintf("rel-err@+%d-steps", horizon)
	for _, w := range windows {
		end := kneeIdx + w
		target := end + horizon
		if target >= len(losses) {
			continue
		}
		ts := make([]float64, 0, w)
		ys := make([]float64, 0, w)
		for i := kneeIdx; i < end; i++ {
			ts = append(ts, float64(i+1))
			ys = append(ys, losses[i])
		}
		fitted, err := fit.FitCurve(fit.SlowCurve{}, ts, ys, fit.FitOptions{})
		if err != nil {
			return Table{}, fmt.Errorf("fig2d (w=%d): %w", w, err)
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", w),
			fmt.Sprintf("%.4f", fit.PredictionError(fitted.Eval(float64(target+1)), losses[target])),
		})
	}
	t.Notes = append(t.Notes, "error shrinks as the post-knee window grows (paper Fig 2d)")
	return t, nil
}
