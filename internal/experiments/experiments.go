// Package experiments regenerates every table and figure of the paper's
// evaluation (§6) on the simulated cloud: each Fig*/Table* function
// builds the workload, runs the systems, and returns a printable Table
// whose rows correspond to the points of the original plot. DESIGN.md
// carries the experiment index; EXPERIMENTS.md records paper-vs-measured.
//
// Absolute numbers differ from the paper (the substrate is a calibrated
// simulator, not IBM Cloud); the reproduced quantity is the shape — who
// wins, by roughly what factor, and where the crossovers fall.
package experiments

import (
	"encoding/csv"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"mlless/internal/core"
	"mlless/internal/trace"
)

// Table is a printable experiment result.
type Table struct {
	// ID is the experiment identifier ("fig4", "table3", ...).
	ID string
	// Title describes the experiment.
	Title string
	// Header names the columns.
	Header []string
	// Rows holds formatted cells.
	Rows [][]string
	// Notes carry caveats (calibration, substitutions).
	Notes []string
}

// String renders the table with aligned columns.
func (t Table) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i < len(widths) {
				fmt.Fprintf(&sb, "%-*s  ", widths[i], c)
			} else {
				sb.WriteString(c + "  ")
			}
		}
		sb.WriteString("\n")
	}
	line(t.Header)
	for i, w := range widths {
		widths[i] = w
		sb.WriteString(strings.Repeat("-", w) + "  ")
	}
	sb.WriteString("\n")
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}

// CSV renders the table as RFC-4180 CSV (header row first) for external
// plotting tools.
func (t Table) CSV() string {
	var sb strings.Builder
	w := csv.NewWriter(&sb)
	// Writes to a strings.Builder cannot fail.
	_ = w.Write(t.Header)
	for _, row := range t.Rows {
		_ = w.Write(row)
	}
	w.Flush()
	return sb.String()
}

// Options tunes experiment scale.
type Options struct {
	// Quick shrinks datasets, worker counts and sweeps so the whole
	// suite runs in seconds (used by `go test -bench` and CI); the full
	// configuration reproduces the paper's settings at simulator scale.
	Quick bool
	// TraceDir, when non-empty, dumps a Chrome trace-event JSON file per
	// MLLess training run into this directory (created on demand), named
	// after the experiment point ("fig4-pmf-1m-p12-v0.7.trace.json").
	TraceDir string
	// ArtifactDir is where experiments that emit BENCH_*.json artifacts
	// write them; empty means the working directory (what mlless-bench
	// and CI rely on — tests point it at a scratch directory instead).
	ArtifactDir string
}

// runJob executes one MLLess training run for an experiment point,
// dumping its virtual-time trace when Options.TraceDir is set. label
// names the point and must be unique within the experiment.
func runJob(opts Options, cl *core.Cluster, job core.Job, label string) (*core.Result, error) {
	if opts.TraceDir == "" {
		return core.Run(cl, job)
	}
	job.Trace = trace.New()
	res, err := core.Run(cl, job)
	if err != nil {
		return nil, err
	}
	if err := dumpTrace(opts.TraceDir, label, job.Trace); err != nil {
		return nil, fmt.Errorf("%s: dump trace: %w", label, err)
	}
	return res, nil
}

// dumpTrace writes one tracer's events as <dir>/<label>.trace.json.
func dumpTrace(dir, label string, tr *trace.Tracer) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, label+".trace.json"))
	if err != nil {
		return err
	}
	if err := trace.WriteChrome(f, tr.Events()); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Runner executes one experiment.
type Runner func(Options) (Table, error)

// Registry maps experiment IDs to runners, in evaluation-section order.
func Registry() []struct {
	ID  string
	Run Runner
} {
	return []struct {
		ID  string
		Run Runner
	}{
		{"fig2a", Fig2a},
		{"fig2b", Fig2b},
		{"fig2c", Fig2c},
		{"fig2d", Fig2d},
		{"fig3", Fig3},
		{"table1", Table1},
		{"table2", Table2},
		{"fig4", Fig4},
		{"fig5", Fig5},
		{"table3", Table3},
		{"fig6", Fig6},
		{"fig7", Fig7},
		// Ablations beyond the paper's figures (see DESIGN.md §3).
		{"abl-filter", AblFilter},
		{"abl-knee", AblKnee},
		{"abl-merge", AblMerge},
		{"abl-allreduce", AblAllReduce},
		{"abl-startup", AblStartup},
		{"abl-ssp", AblSSP},
		{"abl-faults", AblFaults},
		{"abl-shards", AblShards},
		{"abl-async", AblAsync},
		{"abl-exchange", AblExchange},
		{"abl-dataset", AblDataset},
		{"abl-tenancy", AblTenancy},
	}
}

// Lookup returns the runner for id (case-insensitive), or false.
func Lookup(id string) (Runner, bool) {
	id = strings.ToLower(strings.TrimSpace(id))
	for _, e := range Registry() {
		if e.ID == id {
			return e.Run, true
		}
	}
	return nil, false
}

// IDs lists the registered experiment identifiers in order.
func IDs() []string {
	reg := Registry()
	out := make([]string, len(reg))
	for i, e := range reg {
		out[i] = e.ID
	}
	return out
}

// fmtF renders a float compactly.
func fmtF(v float64) string { return fmt.Sprintf("%.4g", v) }

// sortedKeys returns map keys in ascending order (generic over ints).
func sortedKeys(m map[int]float64) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}
