package experiments

import (
	"fmt"
	"time"

	"mlless/internal/consistency"
	"mlless/internal/cost"
	"mlless/internal/sched"
)

// Fig5 reproduces Fig 5: the effect of the scale-in auto-tuner on Perf/$
// (bars) and execution time (lines). The paper reports 1.4-1.5x Perf/$
// gains for LR and up to 1.6x for PMF/ML-20M, with execution time
// degrading by at most ≈7% (ML-10M) and usually improving.
func Fig5(opts Options) (Table, error) {
	// The paper sweeps 12 and 24 workers and reports similar trends; the
	// full configuration here uses the headline P = 24.
	workerCounts := []int{24}
	workloads := []*Workload{LRCriteo(opts.Quick), PMF10M(opts.Quick), PMF20M(opts.Quick)}
	// The paper uses T=20s, Δ=10s on jobs that run 400-2000s; our
	// simulated jobs are ~10x shorter, so the epoch is scaled to keep a
	// comparable number of scheduling decisions per job (~33 steps per
	// epoch). Δ follows the paper's Δ = T/2.
	schedCfg := sched.Config{Epoch: 5 * time.Second}
	if opts.Quick {
		workerCounts = []int{8}
		workloads = []*Workload{PMF10M(true)}
		schedCfg = sched.Config{Epoch: 2 * time.Second}
	}

	t := Table{
		ID:     "fig5",
		Title:  "Scale-in auto-tuner: Perf/$ and execution time",
		Header: []string{"workload", "workers", "auto-tuner", "exec-time", "cost-$", "perf-per-$", "gain", "removals"},
		Notes: []string{
			"Perf/$ = 1/(exec-time · price), §6.2; gain is vs the same configuration without the tuner",
			"paper: LR gains 1.4-1.5x, PMF up to 1.6x (ML-20M)",
			"scheduling epoch scaled to the ~10x shorter simulated jobs (T=5s, Δ=T/2; paper: T=20s on 400-2000s jobs)",
		},
	}
	for _, wl := range workloads {
		for _, p := range workerCounts {
			var basePerf float64
			for _, tune := range []bool{false, true} {
				cl, job := wl.Make(p)
				job.Spec.Sync = consistency.ISP
				job.Spec.Significance = wl.V
				job.Spec.AutoTune = tune
				job.Spec.Sched = schedCfg
				res, err := runJob(opts, cl, job, fmt.Sprintf("fig5-%s-p%d-tune-%v", wl.Name, p, tune))
				if err != nil {
					return Table{}, fmt.Errorf("fig5 (%s P=%d tune=%v): %w", wl.Name, p, tune, err)
				}
				perf := cost.PerfPerDollar(res.ExecTime, res.Cost.Total)
				if !tune {
					basePerf = perf
				}
				gain := 0.0
				if basePerf > 0 {
					gain = perf / basePerf
				}
				t.Rows = append(t.Rows, []string{
					wl.Name,
					fmt.Sprintf("%d", p),
					fmt.Sprintf("%v", tune),
					res.ExecTime.Round(time.Millisecond).String(),
					fmt.Sprintf("%.4f", res.Cost.Total),
					fmt.Sprintf("%.2f", perf),
					fmt.Sprintf("%.2fx", gain),
					fmt.Sprintf("%d", len(res.Removals)),
				})
			}
		}
	}
	return t, nil
}
