package experiments

import (
	"sync"

	"mlless/internal/core"
	"mlless/internal/dataset"
	"mlless/internal/model"
	"mlless/internal/optimizer"
	"mlless/internal/shard"
	"mlless/internal/vclock"
)

// Workload is one of the paper's Table-1 jobs at simulator scale:
// dataset generator, staged mini-batches, model and optimizer
// prototypes, and the convergence thresholds the figures use.
type Workload struct {
	// Name identifies the job ("LR-Criteo", "PMF-ML10M", "PMF-ML20M").
	Name string
	// Paper describes the corresponding Table-1 row.
	Paper string
	// BatchSize is the per-worker mini-batch size B.
	BatchSize int
	// TargetLoss is the convergence threshold of Fig 4/5 (the paper
	// uses BCE 0.58 for LR and RMSE 0.82 for PMF).
	TargetLoss float64
	// PrudentLoss is the deep-convergence threshold of the Fig 6
	// narrative (the paper's RMSE 0.738 for ML-10M, 0.821 for ML-20M).
	PrudentLoss float64
	// V is the significance threshold the paper fixes for the system
	// comparison (v = 0.7, §6.2).
	V float64

	quick      bool
	newModel   func() model.Model
	newOpt     func() optimizer.Optimizer
	generate   func() *dataset.Dataset
	stageOnce  sync.Once
	staged     [][]byte
	numBatch   int
	ratingMean float64
}

// workload caches are package-level so repeated experiment runs reuse
// the (deterministic) generated datasets.
var (
	workloadMu    sync.Mutex
	workloadCache = map[string]*Workload{}
)

func cached(key string, build func() *Workload) *Workload {
	workloadMu.Lock()
	defer workloadMu.Unlock()
	if w, ok := workloadCache[key]; ok {
		return w
	}
	w := build()
	workloadCache[key] = w
	return w
}

// stage encodes the shuffled mini-batches once.
func (w *Workload) stage() {
	w.stageOnce.Do(func() {
		ds := w.generate()
		w.ratingMean = ds.RatingMean
		// Deterministic shuffle, identical across every system and run
		// (part of the §6.1 sanity-check conditions).
		tmp := &dataset.Dataset{Samples: ds.Samples}
		var clk vclock.Clock
		// Stage into a scratch store to obtain the canonical encoded
		// batches, then keep the raw bytes for fast re-staging.
		scratch := core.NewCluster()
		n := dataset.Stage(tmp, scratch.COS, &clk, "scratch", w.BatchSize, 97)
		w.numBatch = n
		w.staged = make([][]byte, n)
		for i := 0; i < n; i++ {
			batch, err := dataset.FetchBatch(scratch.COS, &clk, "scratch", i)
			if err != nil {
				panic("experiments: staging: " + err.Error())
			}
			w.staged[i] = dataset.EncodeBatch(batch)
		}
	})
}

// Make returns a fresh cluster with the workload staged plus the job
// spec'd with the given worker count. Callers adjust Spec fields
// (Sync, Significance, AutoTune, TargetLoss...) before core.Run.
func (w *Workload) Make(workers int) (*core.Cluster, core.Job) {
	return w.MakeShards(workers, 1)
}

// MakeShards is Make with the KV exchange tier hash-partitioned over
// the given shard count (1 reproduces Make exactly).
func (w *Workload) MakeShards(workers, shards int) (*core.Cluster, core.Job) {
	w.stage()
	cl := core.NewClusterWithShards(shards)
	var clk vclock.Clock
	for i, buf := range w.staged {
		cl.COS.Put(&clk, w.Name, dataset.BatchKey(i), buf)
	}
	job := core.Job{
		Spec:       core.Spec{Workers: workers, TargetLoss: w.TargetLoss},
		Model:      w.newModel(),
		Optimizer:  w.newOpt(),
		Bucket:     w.Name,
		NumBatches: w.numBatch,
		BatchSize:  w.BatchSize,
	}
	return cl, job
}

// MakeData is Make with the dataset staged on the given tier
// (core.DataBatch or core.DataShard). Both tiers hold the same samples
// in the same batch order, so the two jobs train bit-identically.
func (w *Workload) MakeData(workers int, data string) (*core.Cluster, core.Job) {
	cl, job := w.Make(workers)
	if data != core.DataShard {
		return cl, job
	}
	job.Spec.Data = core.DataShard
	var clk vclock.Clock
	b := shard.NewBuilder()
	si := 0
	flush := func() {
		cl.COS.Put(&clk, w.Name, dataset.ShardKey(si), b.Finish())
		b.Reset()
		si++
	}
	for i, buf := range w.staged {
		batch, err := dataset.DecodeBatch(buf)
		if err != nil {
			panic("experiments: shard restage: " + err.Error())
		}
		for _, s := range batch {
			if s.IsRating() {
				b.AddRating(s.User, s.Item, s.Label)
			} else {
				b.AddFeature(s.Label, s.Features)
			}
		}
		b.EndBatch()
		if (i+1)%dataset.DefaultBatchesPerShard == 0 {
			flush()
		}
	}
	if w.numBatch%dataset.DefaultBatchesPerShard != 0 {
		flush()
	}
	dataset.WriteShardManifest(cl.COS, &clk, w.Name, w.numBatch, w.BatchSize, dataset.DefaultBatchesPerShard)
	return cl, job
}

// makeWithBatch re-stages the workload's (already shuffled) sample
// stream at a different per-worker batch size — Table 3's
// constant-global-batch sweep requires B to shrink as P grows.
func makeWithBatch(w *Workload, workers, batch int) (*core.Cluster, core.Job) {
	w.stage()
	var samples []dataset.Sample
	for _, buf := range w.staged {
		b, err := dataset.DecodeBatch(buf)
		if err != nil {
			panic("experiments: restage: " + err.Error())
		}
		samples = append(samples, b...)
	}
	ds := &dataset.Dataset{Samples: samples}
	cl := core.NewCluster()
	var clk vclock.Clock
	batches := ds.Split(batch)
	for i, bb := range batches {
		cl.COS.Put(&clk, w.Name, dataset.BatchKey(i), dataset.EncodeBatch(bb))
	}
	job := core.Job{
		Spec:       core.Spec{Workers: workers, TargetLoss: w.TargetLoss},
		Model:      w.newModel(),
		Optimizer:  w.newOpt(),
		Bucket:     w.Name,
		NumBatches: len(batches),
		BatchSize:  batch,
	}
	return cl, job
}

// LRCriteo is the sparse logistic regression job of Table 1:
// Criteo-shaped data, Adam, B = 6250 (quick: a 10x smaller dataset with
// B scaled to keep the same steps-per-epoch).
func LRCriteo(quick bool) *Workload {
	key := "LR-Criteo"
	if quick {
		key += "-quick"
	}
	return cached(key, func() *Workload {
		cfg := dataset.DefaultCriteoConfig()
		cfg.Samples = 120_000
		batch := 1250
		if quick {
			cfg.Samples = 12_000
			cfg.HashDim = 20_000
			batch = 125
		}
		dim := cfg.HashDim + cfg.NumericFeatures
		return &Workload{
			Name:        key,
			Paper:       "LR on Criteo, Adam, B=6250 (Table 1)",
			BatchSize:   batch,
			TargetLoss:  0.58,
			PrudentLoss: 0.555,
			V:           0.7,
			quick:       quick,
			newModel:    func() model.Model { return model.NewLogReg(dim, 1e-4) },
			newOpt:      func() optimizer.Optimizer { return optimizer.NewAdamDefaults(optimizer.Constant(0.002)) },
			generate: func() *dataset.Dataset {
				ds := dataset.GenerateCriteo(cfg)
				// Min-max normalize in place (the staged form the paper
				// prepares with PyWren-IBM map-reduce; the dataset tests
				// pin this against the map-reduce path byte for byte).
				dataset.NormalizeInPlace(ds, cfg.NumericFeatures)
				return ds
			},
		}
	})
}

// SVMCriteo is a sparse linear SVM over the same Criteo-shaped data as
// LRCriteo — the third model family of the zoo (§4.1's "robustness of
// many ML algorithms"), trained by subgradient descent on the hinge
// loss with Nesterov momentum.
func SVMCriteo(quick bool) *Workload {
	key := "SVM-Criteo"
	if quick {
		key += "-quick"
	}
	return cached(key, func() *Workload {
		cfg := dataset.DefaultCriteoConfig()
		cfg.Samples = 120_000
		batch := 1250
		if quick {
			cfg.Samples = 12_000
			cfg.HashDim = 20_000
			batch = 125
		}
		dim := cfg.HashDim + cfg.NumericFeatures
		return &Workload{
			Name:        key,
			Paper:       "linear SVM on Criteo-shaped data (zoo extension; hinge loss)",
			BatchSize:   batch,
			TargetLoss:  0.64,
			PrudentLoss: 0.60,
			V:           0.7,
			quick:       quick,
			newModel:    func() model.Model { return model.NewSVM(dim, 1e-4) },
			newOpt:      func() optimizer.Optimizer { return optimizer.NewNesterov(optimizer.Constant(0.3), 0.9) },
			generate: func() *dataset.Dataset {
				ds := dataset.GenerateCriteo(cfg)
				dataset.NormalizeInPlace(ds, cfg.NumericFeatures)
				return ds
			},
		}
	})
}

// PMF10M is probabilistic matrix factorization on MovieLens-10M-scale
// data: SGD + Nesterov momentum, B = 6250, rank 20 (Table 1).
func PMF10M(quick bool) *Workload {
	return pmfWorkload("PMF-ML10M", dataset.MovieLens10MScale(), 625, quick)
}

// PMF20M is the MovieLens-20M-scale variant: B = 12000, rank 20.
func PMF20M(quick bool) *Workload {
	return pmfWorkload("PMF-ML20M", dataset.MovieLens20MScale(), 1250, quick)
}

// PMF1M is the MovieLens-1M-scale job Fig 2 uses for its training-speed
// and curve-fitting micro-studies.
func PMF1M(quick bool) *Workload {
	cfg := dataset.MovieLensConfig{
		Users: 1_200, Items: 2_400, Ratings: 120_000,
		Rank: 20, NoiseStd: 0.70, SignalStd: 0.80, Seed: 5,
	}
	return pmfWorkload("PMF-ML1M", cfg, 625, quick)
}

func pmfWorkload(name string, cfg dataset.MovieLensConfig, batch int, quick bool) *Workload {
	key := name
	if quick {
		key += "-quick"
		cfg.Users /= 4
		cfg.Items /= 4
		cfg.Ratings /= 4
		batch /= 4
	}
	return cached(key, func() *Workload {
		// The per-sample step size is what convergence depends on; with
		// batch-averaged gradients the rate must scale with B (η/B
		// constant: η = 20 at the B = 625 reference).
		lr := 20.0 * float64(batch) / 625.0
		w := &Workload{
			Name:        key,
			Paper:       "PMF, SGD+Nesterov momentum, r=20 (Table 1)",
			BatchSize:   batch,
			TargetLoss:  0.82,
			PrudentLoss: 0.745,
			V:           0.7,
			quick:       quick,
			newOpt:      func() optimizer.Optimizer { return optimizer.NewNesterov(optimizer.Constant(lr), 0.9) },
			generate:    func() *dataset.Dataset { return dataset.GenerateMovieLens(cfg) },
		}
		// The PMF model needs the dataset's rating mean, recorded by the
		// staging pass (Make always stages before building models).
		w.newModel = func() model.Model {
			return model.NewPMF(cfg.Users, cfg.Items, cfg.Rank, w.ratingMean, 0.02, 131)
		}
		return w
	})
}
