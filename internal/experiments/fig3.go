package experiments

import (
	"fmt"

	"mlless/internal/faas"
)

// Fig3 reproduces Fig 3: the speedup of running the per-step PMF
// computation on two threads relative to one, inside a cloud function,
// as the function's memory (and therefore CPU quota) varies. The paper's
// observation: IBM Cloud Functions allocate CPU proportionally to memory
// with at most one vCPU at 2 GB, so there is no thread-level parallelism
// to exploit — at 1536 MiB two threads were even slower than one — while
// PyTorch on a VM core pair extracts a modest MKL speedup. This is why
// MLLess workers are single-threaded (§5).
//
// Model: a function's quota is q = mem/2048 vCPU (the platform's
// CPUShare). Two threads cannot exceed the quota, and splitting a
// sub-core quota across threads adds a CFS-throttling contention penalty
// that is worst when the per-thread slice is smallest. On a VM, two real
// cores run MKL kernels at a measured parallel efficiency.
func Fig3(opts Options) (Table, error) {
	memories := []int{256, 512, 1024, 1536, 2048}
	if opts.Quick {
		memories = []int{512, 1536, 2048}
	}

	platform := faas.NewPlatform(faas.DefaultConfig())
	t := Table{
		ID:     "fig3",
		Title:  "2-thread speedup vs 1 thread inside a function, by memory size",
		Header: []string{"memory-MiB", "vCPU-quota", "faas-2t-speedup", "vm-mkl-2t-speedup"},
	}
	for _, mem := range memories {
		inst, err := platform.Invoke("fig3", mem, 0)
		if err != nil {
			return Table{}, fmt.Errorf("fig3: %w", err)
		}
		q := inst.CPUShare()
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", mem),
			fmt.Sprintf("%.3f", q),
			fmt.Sprintf("%.3f", faasTwoThreadSpeedup(q)),
			fmt.Sprintf("%.3f", vmTwoThreadSpeedup()),
		})
		if err := platform.Terminate(inst); err != nil {
			return Table{}, fmt.Errorf("fig3: %w", err)
		}
	}
	t.Notes = append(t.Notes,
		"quota caps 2-thread throughput at 1-thread throughput; contention makes it strictly worse",
		"the paper found 2 threads slower than 1 at 1536 MiB; MLLess is single-threaded for this reason (§5)",
	)
	return t, nil
}

// faasTwoThreadSpeedup models two threads sharing a CPU quota of q vCPU:
// the quota is the ceiling, and splitting it across threads pays a
// CFS-throttling contention penalty that grows as the per-thread slice
// shrinks below a full core.
func faasTwoThreadSpeedup(q float64) float64 {
	const basePenalty = 0.02
	perThread := q / 2
	penalty := basePenalty / (perThread + basePenalty) * 0.2
	// An exactly-full-core quota (2 GiB) throttles hardest when split:
	// there is zero headroom to absorb scheduler noise.
	if q >= 0.74 && q < 1 {
		penalty += 0.03 // the paper's 1536 MiB "misallocation" regime
	}
	return 1 - penalty
}

// vmTwoThreadSpeedup is the measured-style MKL parallel efficiency for
// the small PMF kernels on two real VM cores (the PyTorch reference
// point in Fig 3): far below 2x, but above 1.
func vmTwoThreadSpeedup() float64 {
	const mklEfficiency = 0.68
	return 2 * mklEfficiency
}
