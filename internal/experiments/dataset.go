package experiments

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"mlless/internal/core"
	"mlless/internal/dataset"
	"mlless/internal/netmodel"
	"mlless/internal/trace"
)

// AblDataset benchmarks the streaming columnar dataset tier (ISSUE 8,
// DESIGN.md §13) on two axes:
//
//   - training: the same workload on the batch tier vs the shard tier,
//     comparing the traced per-step fetch time (a shard fetch is one
//     ranged read of a columnar block; a batch fetch transfers the
//     row-encoded object) and confirming the loss trajectories agree.
//   - generation: StreamCriteo throughput at increasing scale, pinning
//     the tier's core claim — peak memory tracks the shard chunk, not
//     the dataset. The full run streams paper-scale Criteo (47M
//     samples, 1e8 hashed dims) without ever materializing it.
//
// Columns use "-" where a metric does not apply to the row's phase.
func AblDataset(opts Options) (Table, error) {
	t := Table{
		ID:    "abl-dataset",
		Title: "Streaming columnar dataset tier: fetch cost and generation scale",
		Header: []string{"phase", "config", "samples", "dim", "par", "wall-time",
			"size-MB", "batches", "fetch/step", "peak-heap-MiB", "final-loss"},
		Notes: []string{
			"train rows: fetch/step is the traced per-step mean; both tiers hold identical samples and final-loss must match bitwise",
			"stream rows: wall-time is host time to generate+encode; fetch/step is the COS-link transfer time of the mean batch block",
			"peak-heap-MiB samples runtime.HeapAlloc during streaming: bounded by parallelism x shard chunk, not dataset size",
		},
	}

	// Training: batch vs shard tier on the same staged samples.
	wl := LRCriteo(true)
	steps := 60
	if opts.Quick {
		steps = 30
	}
	var lastLoss [2]float64
	for i, tier := range []string{core.DataBatch, core.DataShard} {
		cl, job := wl.MakeData(4, tier)
		job.Spec.MaxSteps = steps
		job.Spec.TargetLoss = 0
		job.Trace = trace.New()
		label := fmt.Sprintf("abl-dataset-%s-%s", wl.Name, tier)
		res, err := runJob(opts, cl, job, label)
		if err != nil {
			return Table{}, fmt.Errorf("abl-dataset (%s): %w", label, err)
		}
		lastLoss[i] = res.FinalLoss
		t.Rows = append(t.Rows, []string{
			"train", wl.Name + "/" + tier,
			fmt.Sprintf("%d", wl.numBatch*wl.BatchSize),
			"-", "-",
			res.ExecTime.Round(time.Millisecond).String(),
			"-",
			fmt.Sprintf("%d", res.Steps),
			meanFetch(res.StepPhases).Round(time.Microsecond).String(),
			"-",
			fmt.Sprintf("%.6f", res.FinalLoss),
		})
	}
	if lastLoss[0] != lastLoss[1] {
		return Table{}, fmt.Errorf("abl-dataset: tier losses diverge: batch %v vs shard %v", lastLoss[0], lastLoss[1])
	}

	// Generation: stream Criteo at increasing scale into a counting
	// sink. Quick keeps CI fast; the full sweep ends at paper scale.
	type genPoint struct {
		samples, hashDim, par int
	}
	points := []genPoint{
		{60_000, 200_000, 1},
		{60_000, 200_000, 0}, // 0 = GOMAXPROCS
	}
	if !opts.Quick {
		points = append(points,
			genPoint{1_200_000, 1_000_000, 0},
			genPoint{47_000_000, 100_000_000, 0},
		)
	}
	link := netmodel.COSLink()
	for _, pt := range points {
		cfg := dataset.DefaultCriteoConfig()
		cfg.Samples = pt.samples
		cfg.HashDim = pt.hashDim
		sc := dataset.StreamConfig{BatchSize: 1250, Parallelism: pt.par}
		var sink dataset.CountSink
		stop := trackPeakHeap()
		start := time.Now()
		stats, err := dataset.StreamCriteo(cfg, sc, &sink)
		wall := time.Since(start)
		peakMiB := stop()
		if err != nil {
			return Table{}, fmt.Errorf("abl-dataset: stream %d samples: %w", pt.samples, err)
		}
		par := pt.par
		if par == 0 {
			par = runtime.GOMAXPROCS(0)
		}
		meanBatch := int(stats.Bytes / int64(stats.Batches))
		t.Rows = append(t.Rows, []string{
			"stream", "criteo-raw",
			fmt.Sprintf("%d", stats.Samples),
			fmt.Sprintf("%d", cfg.HashDim+cfg.NumericFeatures),
			fmt.Sprintf("%d", par),
			wall.Round(time.Millisecond).String(),
			fmt.Sprintf("%.1f", float64(stats.Bytes)/1e6),
			fmt.Sprintf("%d", stats.Batches),
			link.TransferTime(meanBatch).Round(time.Microsecond).String(),
			fmt.Sprintf("%.0f", peakMiB),
			"-",
		})
	}
	return t, nil
}

// meanFetch averages the traced per-step fetch phase.
func meanFetch(phases []core.StepPhase) time.Duration {
	if len(phases) == 0 {
		return 0
	}
	var total time.Duration
	for _, p := range phases {
		total += p.Fetch
	}
	return total / time.Duration(len(phases))
}

// trackPeakHeap samples runtime.HeapAlloc on a background goroutine
// until the returned stop function is called; stop reports the peak in
// MiB.
func trackPeakHeap() func() float64 {
	done := make(chan struct{})
	runtime.GC()
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	base := m.HeapAlloc
	peak := base
	var mu sync.Mutex
	go func() {
		tick := time.NewTicker(2 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				var ms runtime.MemStats
				runtime.ReadMemStats(&ms)
				mu.Lock()
				if ms.HeapAlloc > peak {
					peak = ms.HeapAlloc
				}
				mu.Unlock()
			}
		}
	}()
	return func() float64 {
		close(done)
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		mu.Lock()
		defer mu.Unlock()
		if ms.HeapAlloc > peak {
			peak = ms.HeapAlloc
		}
		return float64(peak) / (1 << 20)
	}
}
