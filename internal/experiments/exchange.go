package experiments

import (
	"fmt"
	"time"

	"mlless/internal/consistency"
	"mlless/internal/core"
	"mlless/internal/cost"
	"mlless/internal/exchange"
	"mlless/internal/trace"
)

// exchangePoint is one cell of the sweep grid: pool size, sparsity
// regime and step budget. Sparsity is the second axis: BSP moves every
// coordinate, ISP at the workload's v moves only the significant ones,
// which shrinks the payloads the collectives chunk and fold. The big
// pools run fewer steps — the frontier compares strategies within a
// point, where every strategy sees the same budget.
type exchangePoint struct {
	workers int
	sync    consistency.Mode
	steps   int
}

// exchangePoints returns the sweep grid. The pool sizes bracket the
// crossover: at P <= 16 the parameter server wins both axes, around
// P = 64 tree-reduce catches it on time, and by P = 128 (dense) the
// KV tier's serialized P-1 pulls cost more than tree's request fees.
func exchangePoints(opts Options) []exchangePoint {
	grid := []exchangePoint{
		{8, consistency.BSP, 300},
		{8, consistency.ISP, 300},
		{16, consistency.BSP, 300},
		{16, consistency.ISP, 300},
		{64, consistency.BSP, 120},
		{128, consistency.BSP, 80},
		{128, consistency.ISP, 80},
	}
	if opts.Quick {
		grid = grid[:2]
		for i := range grid {
			grid[i].steps = 60
		}
	}
	return grid
}

// AblExchange sweeps the three gradient-exchange strategies over pool
// size and update sparsity, emitting a time/cost frontier per point. The
// paper's parameter server routes every update through the KV tier — P-1
// serialized reads per worker per step, the §3.2 indirect-communication
// tax — while the collectives reduce through the object store: scatter
// pays O(P²) small requests per step at class-A/B COS fees, tree pays
// O(P) requests but serializes log_f(P) sequential levels. Which corner
// of the (time, $) plane wins depends on P and on how many bytes the ISP
// filter lets through.
func AblExchange(opts Options) (Table, error) {
	wl, _ := ablWorkload(opts)
	t := Table{
		ID:    "abl-exchange",
		Title: "Gradient-exchange strategy vs pool size and sparsity: time/cost frontier",
		Header: []string{"model", "P", "sync", "exchange", "exec-time", "mean-xchg",
			"steps", "cost-$", "perf-per-$", "converged"},
		Notes: []string{
			"mean-xchg is the traced per-step mean of publish + reduce + pull (the full exchange path)",
			"scatter/tree bill COS class A/B request fees (cos-*-requests components); the parameter server bills none",
			"ISP rows run the significance filter at the workload's v, shrinking the payloads the collectives move",
		},
	}
	for _, pt := range exchangePoints(opts) {
		for _, kind := range []string{
			exchange.KindParamServer, exchange.KindScatter, exchange.KindTree,
		} {
			cl, job := wl.Make(pt.workers)
			job.Spec.Sync = pt.sync
			if pt.sync == consistency.ISP {
				job.Spec.Significance = wl.V
			}
			job.Spec.Exchange = kind
			job.Spec.MaxSteps = pt.steps
			// Trace every point: mean-xchg reads the per-step phase
			// decomposition, which only traced runs populate.
			job.Trace = trace.New()
			label := fmt.Sprintf("abl-exchange-%s-p%d-%v-%s", wl.Name, pt.workers, pt.sync, kind)
			res, err := runJob(opts, cl, job, label)
			if err != nil {
				return Table{}, fmt.Errorf("abl-exchange (%s): %w", label, err)
			}
			t.Rows = append(t.Rows, []string{
				wl.Name,
				fmt.Sprintf("%d", pt.workers),
				fmt.Sprintf("%v", pt.sync),
				kind,
				res.ExecTime.Round(time.Millisecond).String(),
				meanExchange(res.StepPhases).Round(time.Microsecond).String(),
				fmt.Sprintf("%d", res.Steps),
				fmt.Sprintf("%.4f", res.Cost.Total),
				fmt.Sprintf("%.2f", cost.PerfPerDollar(res.ExecTime, res.Cost.Total)),
				fmt.Sprintf("%v", res.Converged),
			})
		}
	}
	return t, nil
}

// meanExchange averages the full exchange path — publish, collective
// reduction rounds and pull — over a run's traced step decomposition.
func meanExchange(phases []core.StepPhase) time.Duration {
	if len(phases) == 0 {
		return 0
	}
	var total time.Duration
	for _, p := range phases {
		total += p.Publish + p.Reduce + p.Pull
	}
	return total / time.Duration(len(phases))
}
