// Package xrand provides a small, fast, deterministic pseudo-random
// number generator and the sampling distributions used across the MLLess
// simulator. Every stochastic component of the repository (dataset
// generation, mini-batch sampling, model initialization) draws from this
// package so that experiments are exactly reproducible from a seed.
//
// The generator is splitmix64 (Steele, Lea, Flood: "Fast Splittable
// Pseudorandom Number Generators", OOPSLA 2014). It is not suitable for
// cryptography; it is ideal for simulation: tiny state, excellent
// statistical quality for this use, and trivially seedable.
package xrand

import "math"

// RNG is a deterministic splitmix64 pseudo-random number generator.
// The zero value is a valid generator seeded with 0; prefer New to make
// seeds explicit.
type RNG struct {
	state uint64

	// cached second Gaussian from the Box-Muller transform.
	gaussReady bool
	gauss      float64
}

// New returns a generator seeded with seed.
func New(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Split returns a new generator whose stream is statistically independent
// of r's. It advances r by one step. Split is how subsystems (workers,
// dataset shards) obtain private streams from a single experiment seed.
func (r *RNG) Split() *RNG {
	return New(r.Uint64() ^ 0x9e3779b97f4a7c15)
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0, mirroring
// math/rand.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63 returns a uniform non-negative int64.
func (r *RNG) Int63() int64 {
	return int64(r.Uint64() >> 1)
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	// 53 random mantissa bits.
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bernoulli returns true with probability p.
func (r *RNG) Bernoulli(p float64) bool {
	return r.Float64() < p
}

// NormFloat64 returns a standard normal variate via Box-Muller.
func (r *RNG) NormFloat64() float64 {
	if r.gaussReady {
		r.gaussReady = false
		return r.gauss
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	f := math.Sqrt(-2 * math.Log(s) / s)
	r.gauss = v * f
	r.gaussReady = true
	return u * f
}

// Perm returns a random permutation of [0, n), Fisher-Yates.
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes a slice in place through the swap callback.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Zipf samples ranks in [0, n) with probability proportional to
// 1/(rank+1)^s. It is used to give synthetic datasets the heavy-tailed
// item popularity of real recommendation data (MovieLens).
type Zipf struct {
	rng *RNG
	cdf []float64
}

// NewZipf builds a sampler over n ranks with exponent s > 0.
func NewZipf(rng *RNG, n int, s float64) *Zipf {
	if n <= 0 {
		panic("xrand: NewZipf with non-positive n")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	inv := 1 / sum
	for i := range cdf {
		cdf[i] *= inv
	}
	return &Zipf{rng: rng, cdf: cdf}
}

// Next returns the next Zipf-distributed rank in [0, n).
func (z *Zipf) Next() int {
	u := z.rng.Float64()
	// Binary search for the first cdf entry >= u.
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
