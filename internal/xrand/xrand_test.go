package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed generators diverged at draw %d", i)
		}
	}
}

func TestDifferentSeedsDiverge(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical draws", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	child := parent.Split()
	// The child stream must differ from the parent's continuation.
	diff := false
	for i := 0; i < 64; i++ {
		if parent.Uint64() != child.Uint64() {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("split stream identical to parent stream")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 100000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(9)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(11)
	if err := quick.Check(func(n uint16) bool {
		m := int(n%1000) + 1
		v := r.Intn(m)
		return v >= 0 && v < m
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(5)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(13)
	for _, n := range []int{0, 1, 2, 10, 257} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShuffleKeepsMultiset(t *testing.T) {
	r := New(17)
	s := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, v := range s {
		sum += v
	}
	r.Shuffle(len(s), func(i, j int) { s[i], s[j] = s[j], s[i] })
	got := 0
	for _, v := range s {
		got += v
	}
	if got != sum {
		t.Fatalf("shuffle changed contents: %v", s)
	}
}

func TestZipfRange(t *testing.T) {
	r := New(19)
	z := NewZipf(r, 100, 1.1)
	for i := 0; i < 10000; i++ {
		v := z.Next()
		if v < 0 || v >= 100 {
			t.Fatalf("Zipf out of range: %d", v)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	r := New(23)
	z := NewZipf(r, 1000, 1.2)
	counts := make([]int, 1000)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[z.Next()]++
	}
	// Rank 0 must be drawn far more often than rank 500.
	if counts[0] <= counts[500]*5 {
		t.Fatalf("Zipf not skewed: counts[0]=%d counts[500]=%d", counts[0], counts[500])
	}
}

func TestZipfPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewZipf(_, 0, s) did not panic")
		}
	}()
	NewZipf(New(1), 0, 1)
}

func TestBernoulliFrequency(t *testing.T) {
	r := New(29)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bernoulli(0.3) {
			hits++
		}
	}
	freq := float64(hits) / n
	if math.Abs(freq-0.3) > 0.01 {
		t.Fatalf("Bernoulli(0.3) frequency = %v", freq)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = r.Uint64()
	}
	_ = sink
}

func BenchmarkNormFloat64(b *testing.B) {
	r := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink = r.NormFloat64()
	}
	_ = sink
}
