package tenant

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"

	"mlless/internal/core"
	"mlless/internal/cost"
	"mlless/internal/dataset"
	"mlless/internal/faas"
	"mlless/internal/model"
	"mlless/internal/optimizer"
	"mlless/internal/vclock"
)

// testCluster builds a shared substrate with a tiny MovieLens dataset
// staged under bucket "ml", capped at maxConcurrent activations.
func testCluster(t testing.TB, maxConcurrent int) (*core.Cluster, int) {
	t.Helper()
	cl := core.NewCluster()
	if maxConcurrent > 0 {
		cfg := cl.Platform.Config()
		cfg.MaxConcurrent = maxConcurrent
		cl.Platform = faas.NewPlatformWithRegistry(cfg, cl.Metrics)
	}
	cfg := dataset.MovieLensConfig{Users: 120, Items: 400, Ratings: 15000, Rank: 6, NoiseStd: 0.6, Seed: 7}
	ds := dataset.GenerateMovieLens(cfg)
	var clk vclock.Clock
	n := dataset.Stage(ds, cl.COS, &clk, "ml", 500, 3)
	return cl, n
}

// pmfTemplate stamps out small fixed-step PMF jobs over the staged
// bucket. Fresh model/optimizer per call.
func pmfTemplate(name string, batches, workers, steps int) Template {
	return Template{Name: name, Weight: 1, New: func() core.Job {
		return core.Job{
			Spec:       core.Spec{Workers: workers, MaxSteps: steps},
			Model:      model.NewPMF(120, 400, 6, 3.5, 0.02, 31),
			Optimizer:  optimizer.NewNesterov(optimizer.Constant(1.0), 0.9),
			Bucket:     "ml",
			NumBatches: batches,
			BatchSize:  500,
		}
	}}
}

func testFleet(t testing.TB, seed uint64, maxConcurrent, jobs int) (Config, []Arrival) {
	t.Helper()
	cl, n := testCluster(t, maxConcurrent)
	mix := []Template{pmfTemplate("pmf-a", n, 2, 25), pmfTemplate("pmf-b", n, 3, 30)}
	arrivals, err := GenerateArrivals(seed, []string{"t1", "t2", "t3"}, mix, jobs, 200*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Cluster: cl,
		Tenants: []Tenant{{Name: "t1", Quota: 4}, {Name: "t2", Quota: 4}, {Name: "t3", Quota: 4}},
	}
	return cfg, arrivals
}

func TestFleetDeterministicAcrossRuns(t *testing.T) {
	// Two same-seed fleets on fresh clusters must emit byte-identical
	// control-plane logs and identical headline metrics.
	var logs [2]bytes.Buffer
	var reports [2]*Report
	for i := 0; i < 2; i++ {
		cfg, arrivals := testFleet(t, 42, 8, 9)
		cfg.Arrivals = arrivals
		rep, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := rep.WriteEvents(&logs[i]); err != nil {
			t.Fatal(err)
		}
		reports[i] = rep
	}
	if !bytes.Equal(logs[0].Bytes(), logs[1].Bytes()) {
		t.Fatalf("same-seed fleets diverged:\n--- run 0 ---\n%s--- run 1 ---\n%s", logs[0].String(), logs[1].String())
	}
	if reports[0].Makespan != reports[1].Makespan || reports[0].Jain != reports[1].Jain ||
		reports[0].FunctionTime != reports[1].FunctionTime {
		t.Fatal("same-seed fleets produced different reports")
	}
}

func TestFleetBillingSplitsExactly(t *testing.T) {
	// Per-tenant billed function time must sum to the platform's own
	// meter, and every run must already be claimed by a job meter —
	// no orphaned or double-counted GB-seconds.
	cfg, arrivals := testFleet(t, 7, 8, 8)
	cfg.Arrivals = arrivals
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var perTenant time.Duration
	for _, tr := range rep.Tenants {
		perTenant += tr.FunctionTime
	}
	platform := cfg.Cluster.Platform.BilledFunctionSeconds()
	if perTenant != platform {
		t.Fatalf("tenant bills sum to %v, platform metered %v", perTenant, platform)
	}
	if rep.FunctionTime != platform {
		t.Fatalf("report function time %v != platform %v", rep.FunctionTime, platform)
	}
	var orphans cost.Meter
	cfg.Cluster.Platform.BillTo(&orphans)
	if n := len(orphans.Report().Components); n != 0 {
		t.Fatalf("%d function runs were never claimed by any job's meter", n)
	}
}

func TestFleetContentionQueuesAndScalesIn(t *testing.T) {
	// A cap of 4 fits one 3-worker job (demand 4): overlapping arrivals
	// must queue, and jobs admitted while others wait get shrink
	// requests. With the cap at 1000 nothing waits.
	cfg, arrivals := testFleet(t, 11, 4, 8)
	cfg.Arrivals = arrivals
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	waited := 0
	for _, j := range rep.Jobs {
		if j.Wait > 0 {
			waited++
		}
		if j.CompleteAt != j.AdmitAt+j.Exec || j.Wait != j.AdmitAt-j.ArriveAt {
			t.Fatalf("job %s milestones inconsistent: %+v", j.ID, j)
		}
	}
	if waited == 0 {
		t.Fatal("cap 4 with 200ms mean gaps produced no queueing")
	}
	shrinkReqs := 0
	for _, ev := range rep.Events {
		if ev.Kind == "shrink-request" {
			shrinkReqs++
		}
	}
	if shrinkReqs == 0 {
		t.Fatal("contended admissions issued no shrink requests")
	}
	if rep.Jain <= 0 || rep.Jain > 1 {
		t.Fatalf("Jain index %v outside (0,1]", rep.Jain)
	}
	if rep.P99Latency < rep.P50Latency {
		t.Fatalf("p99 %v below p50 %v", rep.P99Latency, rep.P50Latency)
	}

	cfgWide, arrivalsWide := testFleet(t, 11, 0, 8)
	cfgWide.Arrivals = arrivalsWide
	for i := range cfgWide.Tenants {
		cfgWide.Tenants[i].Quota = 0 // uncapped: platform cap (1000) only
	}
	wide, err := Run(cfgWide)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range wide.Jobs {
		if j.Wait != 0 {
			t.Fatalf("uncontended fleet queued job %s for %v", j.ID, j.Wait)
		}
	}
	if wide.Jain != 1 {
		t.Fatalf("uncontended fleet has Jain %v, want exactly 1", wide.Jain)
	}
}

func TestFleetEventLogOrderedAndLabelled(t *testing.T) {
	cfg, arrivals := testFleet(t, 3, 6, 6)
	cfg.Arrivals = arrivals
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(rep.Events); i++ {
		if rep.Events[i].At < rep.Events[i-1].At {
			t.Fatalf("events out of order at %d: %v after %v", i, rep.Events[i].At, rep.Events[i-1].At)
		}
	}
	arrives, admits, completes := 0, 0, 0
	for _, ev := range rep.Events {
		switch ev.Kind {
		case "arrive":
			arrives++
		case "admit":
			admits++
			if !strings.HasPrefix(ev.Job, ev.Tenant+"/job") {
				t.Fatalf("admit event job %q not namespaced under tenant %q", ev.Job, ev.Tenant)
			}
		case "complete":
			completes++
		}
	}
	if arrives != 6 || admits != 6 || completes != 6 {
		t.Fatalf("event counts arrive=%d admit=%d complete=%d, want 6 each", arrives, admits, completes)
	}
}

func TestFleetConfigValidation(t *testing.T) {
	cl, n := testCluster(t, 8)
	tpl := pmfTemplate("pmf", n, 2, 4)
	mk := func() Arrival { return Arrival{Tenant: "t1", Workload: "pmf", Job: tpl.New()} }

	cases := []struct {
		name string
		cfg  Config
		want error
	}{
		{"nil cluster", Config{}, ErrNoCluster},
		{"unknown tenant", Config{Cluster: cl,
			Tenants:  []Tenant{{Name: "t1"}},
			Arrivals: []Arrival{{Tenant: "ghost", Job: tpl.New()}}}, ErrNoTenant},
		{"quota over platform cap", Config{Cluster: cl,
			Tenants: []Tenant{{Name: "t1", Quota: 9}}}, ErrBadQuota},
		{"negative quota", Config{Cluster: cl,
			Tenants: []Tenant{{Name: "t1", Quota: -1}}}, ErrBadQuota},
		{"duplicate tenant", Config{Cluster: cl,
			Tenants: []Tenant{{Name: "t1"}, {Name: "t1"}}}, ErrDupTenant},
		{"empty tenant name", Config{Cluster: cl,
			Tenants: []Tenant{{Name: ""}}}, core.ErrBadTenant},
		{"demand over quota", Config{Cluster: cl,
			Tenants:  []Tenant{{Name: "t1", Quota: 2}},
			Arrivals: []Arrival{mk()}}, ErrNeverFits},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Run(tc.cfg); !errors.Is(err, tc.want) {
				t.Fatalf("got %v, want %v", err, tc.want)
			}
		})
	}

	// Control-plane spec fields belong to the fleet.
	a := mk()
	a.Job.Spec.StartAt = time.Second
	if _, err := Run(Config{Cluster: cl, Tenants: []Tenant{{Name: "t1"}}, Arrivals: []Arrival{a}}); err == nil {
		t.Fatal("arrival with preset StartAt accepted")
	}
}

func TestGenerateArrivalsDeterministicAndValid(t *testing.T) {
	mix := []Template{pmfTemplate("a", 10, 2, 4), {Name: "b", Weight: 3, New: pmfTemplate("b", 10, 2, 4).New}}
	g1, err := GenerateArrivals(99, []string{"t1", "t2"}, mix, 40, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := GenerateArrivals(99, []string{"t1", "t2"}, mix, 40, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	for i := range g1 {
		if g1[i].At != g2[i].At || g1[i].Tenant != g2[i].Tenant || g1[i].Workload != g2[i].Workload {
			t.Fatalf("same-seed schedules differ at %d", i)
		}
		if i > 0 && g1[i].At < g1[i-1].At {
			t.Fatalf("arrival times not monotone at %d", i)
		}
	}
	seenB := 0
	for _, a := range g1 {
		if a.Workload == "b" {
			seenB++
		}
	}
	// Weight 3-vs-1: workload b should dominate; any split is legal but
	// a zero draw for the 75% arm means the weighted pick is broken.
	if seenB == 0 || seenB == len(g1) {
		t.Fatalf("weighted mix degenerate: %d of %d draws for the 3x arm", seenB, len(g1))
	}

	if _, err := GenerateArrivals(1, nil, mix, 5, time.Second); err == nil {
		t.Fatal("no tenants accepted")
	}
	if _, err := GenerateArrivals(1, []string{"t"}, mix, 0, time.Second); err == nil {
		t.Fatal("zero arrivals accepted")
	}
	if _, err := GenerateArrivals(1, []string{"t"}, mix, 5, 0); err == nil {
		t.Fatal("zero mean gap accepted")
	}
	if _, err := GenerateArrivals(1, []string{"t"}, []Template{{Name: "x", Weight: 0}}, 5, time.Second); err == nil {
		t.Fatal("zero-weight template accepted")
	}
}
