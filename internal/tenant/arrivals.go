package tenant

import (
	"fmt"
	"math"
	"time"

	"mlless/internal/core"
	"mlless/internal/xrand"
)

// Template stamps out fresh copies of one workload. New must return an
// identical job every call — same spec, same initial model and
// optimizer state, referencing datasets already staged on the fleet's
// cluster. The host-parallel fleet engine leans on that identity:
// arrivals stamped from one template are interchangeable executions, so
// their results memoize by template key (see Arrival.TemplateKey).
type Template struct {
	// Name labels the workload in reports and events.
	Name string
	// Weight is the template's share of the mix (relative, > 0).
	Weight float64
	// New builds one fresh job instance.
	New func() core.Job
}

// GenerateArrivals synthesizes a deterministic submission schedule: n
// jobs with exponential inter-arrival gaps of the given mean, each from
// a tenant drawn uniformly and a workload drawn by mix weight. The
// schedule is a pure function of (seed, tenants, mix, n, meanGap), so
// two same-seed fleets replay byte-identically.
func GenerateArrivals(seed uint64, tenants []string, mix []Template, n int, meanGap time.Duration) ([]Arrival, error) {
	if len(tenants) == 0 || len(mix) == 0 {
		return nil, fmt.Errorf("tenant: arrivals need at least one tenant and one template")
	}
	var wsum float64
	for _, m := range mix {
		if m.Weight <= 0 || m.New == nil {
			return nil, fmt.Errorf("tenant: template %q needs positive weight and a constructor", m.Name)
		}
		wsum += m.Weight
	}
	if n < 1 {
		return nil, fmt.Errorf("tenant: need at least one arrival, got %d", n)
	}
	if meanGap <= 0 {
		return nil, fmt.Errorf("tenant: non-positive mean inter-arrival gap %v", meanGap)
	}

	rng := xrand.New(seed)
	arrivals := make([]Arrival, 0, n)
	var at time.Duration
	for i := 0; i < n; i++ {
		// Exponential gap via inverse transform; 1-U keeps the argument
		// of log strictly positive (U ∈ [0,1)).
		gap := -float64(meanGap) * math.Log(1-rng.Float64())
		at += time.Duration(gap)
		tenant := tenants[rng.Intn(len(tenants))]
		pick := rng.Float64() * wsum
		tpl := mix[len(mix)-1]
		for _, m := range mix {
			if pick < m.Weight {
				tpl = m
				break
			}
			pick -= m.Weight
		}
		arrivals = append(arrivals, Arrival{At: at, Tenant: tenant, Workload: tpl.Name, Job: tpl.New(), TemplateKey: tpl.Name})
	}
	return arrivals, nil
}
