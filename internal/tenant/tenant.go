// Package tenant is the multi-tenant control plane over the simulated
// MLLess substrate: it admits many training jobs from many tenants onto
// one shared core.Cluster, enforcing per-tenant FaaS concurrency quotas
// inside the platform-wide cap, splitting the bill per tenant, and
// asking admitted jobs to scale in when others are waiting.
//
// The fleet is a discrete-event simulation in the same virtual time the
// engine runs in. Jobs arrive on a seeded schedule, queue until their
// activation demand (workers + supervisor) fits under both caps, and
// then execute with Spec.StartAt set to the admission instant —
// barriers are absolute virtual times, so each job's trace is exactly
// the trace it would produce alone, shifted. While a job occupies its
// virtual window [admit, complete), its demand is held as a faas
// reservation, which the platform counts against both caps for every
// later admission decision; scale-in evictions release slots early, at
// the eviction's virtual time. Everything is a pure function of the
// configuration, so fleets are byte-reproducible.
//
// Jobs whose virtual windows overlap train concurrently on host
// goroutines (Config.HostPar): a fixed-point decision pass replays the
// admission loop over pure ledgers while sandboxed executions fill in
// outcomes, so the report, event log and bills stay byte-identical to
// the legacy host-serial loop at every parallelism level (see
// parallel.go). Fleets with traced jobs, fault injection or collective
// exchanges keep the serial loop.
package tenant

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"mlless/internal/consistency"
	"mlless/internal/core"
)

// Fleet-validation errors.
var (
	// ErrNoCluster means Config.Cluster was nil.
	ErrNoCluster = errors.New("tenant: nil cluster")
	// ErrNoTenant means an arrival names a tenant not in Config.Tenants.
	ErrNoTenant = errors.New("tenant: arrival for unknown tenant")
	// ErrBadQuota means a tenant quota is negative or exceeds the
	// platform-wide MaxConcurrent (such a tenant could never use its
	// allocation, so the configuration is almost certainly a typo).
	ErrBadQuota = errors.New("tenant: quota exceeds platform MaxConcurrent")
	// ErrNeverFits means a job's activation demand exceeds its tenant's
	// quota or the platform cap: it would wait forever.
	ErrNeverFits = errors.New("tenant: job demand can never be admitted")
	// ErrDupTenant means two Config.Tenants entries share a name.
	ErrDupTenant = errors.New("tenant: duplicate tenant name")
)

// Tenant is one paying customer of the shared platform.
type Tenant struct {
	// Name is the tenant's activation namespace; it may not contain '/'
	// (core.ErrBadTenant) and may not be empty.
	Name string
	// Quota caps the tenant's concurrently-running activations,
	// reservations included. 0 means no per-tenant cap (the platform
	// cap still applies).
	Quota int
}

// Arrival is one job submission: a tenant asks for a training job at a
// virtual instant. The Spec fields Tenant, StartAt and Shrink belong to
// the control plane and must be zero; the fleet fills them in.
type Arrival struct {
	// At is the submission's virtual time.
	At time.Duration
	// Tenant names the submitting tenant.
	Tenant string
	// Workload labels the job for reports ("lr-criteo", "pmf-1m", ...).
	Workload string
	// Job is the training job to run. Model and Optimizer are prototypes
	// (the engine clones them per worker), so the Job itself is never
	// mutated and one arrival can be executed more than once.
	Job core.Job
	// TemplateKey, when non-empty, asserts that this arrival's Job is a
	// fresh stamp of a shared workload template: any two arrivals with
	// the same key train identical models on identical data with an
	// identical spec. The host-parallel fleet engine relies on this to
	// memoize executions — one simulated run per (template, shrink,
	// warm-pool) combination, translated to each admission's start time
	// and namespace. Leave it empty for hand-built arrivals; the fleet
	// then executes each one individually. GenerateArrivals stamps it
	// with the template's Name.
	TemplateKey string
}

// Config describes a fleet run.
type Config struct {
	// Cluster is the shared substrate every job runs on. Datasets must
	// already be staged into its object store.
	Cluster *core.Cluster
	// Tenants are the platform's customers; quotas are installed on the
	// cluster's FaaS platform before the first admission.
	Tenants []Tenant
	// Arrivals is the submission schedule. It need not be sorted; the
	// fleet orders it by (At, index).
	Arrivals []Arrival
	// NoScaleIn disables contention-triggered shrink requests: jobs
	// keep their full width even while others wait.
	NoScaleIn bool
	// HostPar bounds the host worker pool the fleet engine executes
	// admitted jobs on: jobs whose virtual windows overlap train
	// concurrently on real cores, and their effects are folded back in
	// virtual-time order, so the event log, report and bills are
	// byte-identical for every value. 0 (the default) uses
	// runtime.GOMAXPROCS(0); 1 executes jobs one at a time.
	HostPar int

	// forceSerial routes the fleet through the legacy host-serial loop
	// (every job executed inline on the shared substrates) regardless of
	// sandboxability. In-package differential tests set it to pin the
	// parallel engine against the pre-parallelism baseline.
	forceSerial bool
}

// Event is one line of the fleet's control-plane log. The log is the
// determinism artifact: two same-seed fleet runs must produce
// byte-identical logs.
type Event struct {
	// At is the event's virtual time.
	At time.Duration
	// Kind is "arrive", "admit", "shrink-request", "scale-in" or
	// "complete".
	Kind string
	// Tenant is the owning tenant.
	Tenant string
	// Job is the job's namespace ID once admitted ("t1/job3"), or the
	// workload label before admission.
	Job string
	// Detail is the kind-specific remainder of the line.
	Detail string

	seq int // creation order, tie-break for equal At
}

// String renders the event as one log line.
func (ev Event) String() string {
	s := fmt.Sprintf("t=%.3fs %-14s tenant=%s job=%s", ev.At.Seconds(), ev.Kind, ev.Tenant, ev.Job)
	if ev.Detail != "" {
		s += " " + ev.Detail
	}
	return s
}

// waiting is a submitted, not-yet-admitted job.
type waiting struct {
	arr    Arrival
	seq    int // arrival order, FIFO tie-break
	demand int // workers + supervisor
}

// release frees n reserved slots of a tenant at a virtual instant —
// either a scale-in eviction (n=1) or a job completion. job is the
// releasing job's namespace ID: releases due at the same instant are
// applied in (tenant, job, seq) order, a total order over fleet state
// rather than insertion history, so a slot freed and re-acquired at one
// instant resolves identically however the schedule was produced.
type release struct {
	at     time.Duration
	tenant string
	job    string
	n      int
	seq    int
}

// Run executes the fleet to completion and returns its report. The
// error path is configuration trouble or an engine failure; jobs that
// merely exhaust MaxSteps without converging are reported, not errors.
func Run(cfg Config) (*Report, error) {
	f, err := newFleet(cfg)
	if err != nil {
		return nil, err
	}
	return f.run()
}

type fleet struct {
	cfg      Config
	cl       *core.Cluster
	quota    map[string]int
	served   map[string]time.Duration // per-tenant billed function time
	waitq    []*waiting
	releases []release
	events   []Event
	jobs     []JobRecord
	now      time.Duration
	seq      int
}

func newFleet(cfg Config) (*fleet, error) {
	if cfg.Cluster == nil {
		return nil, ErrNoCluster
	}
	platCap := cfg.Cluster.Platform.Config().MaxConcurrent
	quota := make(map[string]int, len(cfg.Tenants))
	for _, t := range cfg.Tenants {
		if t.Name == "" {
			return nil, fmt.Errorf("tenant: empty tenant name: %w", core.ErrBadTenant)
		}
		if _, dup := quota[t.Name]; dup {
			return nil, fmt.Errorf("%w: %q", ErrDupTenant, t.Name)
		}
		if t.Quota < 0 || (platCap > 0 && t.Quota > platCap) {
			return nil, fmt.Errorf("%w: tenant %q quota %d, platform cap %d",
				ErrBadQuota, t.Name, t.Quota, platCap)
		}
		quota[t.Name] = t.Quota
	}
	for _, a := range cfg.Arrivals {
		q, ok := quota[a.Tenant]
		if !ok {
			return nil, fmt.Errorf("%w: %q", ErrNoTenant, a.Tenant)
		}
		demand := a.Job.Spec.Workers + 1
		if (q > 0 && demand > q) || (platCap > 0 && demand > platCap) {
			return nil, fmt.Errorf("%w: tenant %q workload %q needs %d activations (quota %d, cap %d)",
				ErrNeverFits, a.Tenant, a.Workload, demand, q, platCap)
		}
		if a.Job.Spec.Tenant != "" || a.Job.Spec.StartAt != 0 || len(a.Job.Spec.Shrink) != 0 {
			return nil, fmt.Errorf("tenant: arrival %q/%q sets control-plane spec fields (Tenant/StartAt/Shrink)",
				a.Tenant, a.Workload)
		}
	}
	for name, q := range quota {
		if q > 0 {
			cfg.Cluster.Platform.SetQuota(name, q)
		}
	}
	served := make(map[string]time.Duration, len(quota))
	for name := range quota {
		served[name] = 0
	}
	return &fleet{cfg: cfg, cl: cfg.Cluster, quota: quota, served: served}, nil
}

func (f *fleet) run() (*Report, error) {
	arrivals := append([]Arrival(nil), f.cfg.Arrivals...)
	sort.SliceStable(arrivals, func(i, j int) bool { return arrivals[i].At < arrivals[j].At })
	if !f.cfg.forceSerial && sandboxable(arrivals) {
		return f.runParallel(arrivals)
	}
	return f.runSerial(arrivals)
}

// runSerial is the legacy host-serial loop: every admitted job executes
// inline on the shared substrates at its admission instant. It remains
// the path for fleets the sandboxed engine cannot take (parallel.go)
// and the baseline the differential tests pin runParallel against.
func (f *fleet) runSerial(arrivals []Arrival) (*Report, error) {
	ai := 0
	for {
		// Ingest every submission due by now, then apply due releases,
		// then admit whatever fits — releases before admissions, so a
		// slot freed at t is usable at t.
		for ai < len(arrivals) && arrivals[ai].At <= f.now {
			a := arrivals[ai]
			w := &waiting{arr: a, seq: ai, demand: a.Job.Spec.Workers + 1}
			f.waitq = append(f.waitq, w)
			f.event(a.At, "arrive", a.Tenant, a.Workload,
				fmt.Sprintf("demand=%d", w.demand))
			ai++
		}
		f.applyReleases()
		for {
			w := f.pickAdmissible()
			if w == nil {
				break
			}
			if err := f.admit(w); err != nil {
				return nil, err
			}
		}

		// Advance virtual time to the next arrival or release.
		next, ok := f.nextInstant(arrivals, ai)
		if !ok {
			if len(f.waitq) > 0 {
				// Cannot happen after the newFleet demand check, but
				// guard against it rather than spin forever.
				return nil, fmt.Errorf("%w: %d jobs stuck in queue at t=%v",
					ErrNeverFits, len(f.waitq), f.now)
			}
			break
		}
		f.now = next
	}
	return f.report(), nil
}

// nextInstant returns the earliest future virtual instant with work to
// do: the next submission or the next reservation release.
func (f *fleet) nextInstant(arrivals []Arrival, ai int) (time.Duration, bool) {
	next := time.Duration(-1)
	if ai < len(arrivals) {
		next = arrivals[ai].At
	}
	for _, r := range f.releases {
		if next < 0 || r.at < next {
			next = r.at
		}
	}
	if next < 0 {
		return 0, false
	}
	return next, true
}

// applyReleases returns every reservation due by now to the platform,
// oldest first; same-instant ties resolve by (tenant, job, seq), so
// eviction releases of one job stay ordered and the instant's net
// effect is a pure function of fleet state.
func (f *fleet) applyReleases() {
	sort.SliceStable(f.releases, releaseLess(f.releases))
	n := 0
	for _, r := range f.releases {
		if r.at > f.now {
			f.releases[n] = r
			n++
			continue
		}
		// Release failures are programming errors (over-release); panic
		// in tests via the error path would hide the bug site.
		if err := f.cl.Platform.Release(r.tenant, r.n); err != nil {
			panic(fmt.Sprintf("tenant: release %d of %q at %v: %v", r.n, r.tenant, r.at, err))
		}
	}
	f.releases = f.releases[:n]
}

// pickAdmissible removes and returns the fair-share choice among queued
// jobs that fit right now, or nil. Fairness is min served billed
// function-time per tenant (the platform's own currency), FIFO within
// and across equally-served tenants.
func (f *fleet) pickAdmissible() *waiting {
	best := -1
	for i, w := range f.waitq {
		if !f.fits(w) {
			continue
		}
		if best < 0 {
			best = i
			continue
		}
		b := f.waitq[best]
		if f.served[w.arr.Tenant] < f.served[b.arr.Tenant] ||
			(f.served[w.arr.Tenant] == f.served[b.arr.Tenant] && w.seq < b.seq) {
			best = i
		}
	}
	if best < 0 {
		return nil
	}
	w := f.waitq[best]
	f.waitq = append(f.waitq[:best], f.waitq[best+1:]...)
	return w
}

// fits reports whether demand slots for the tenant are free under both
// the tenant quota and the platform cap, reservations included.
func (f *fleet) fits(w *waiting) bool {
	p := f.cl.Platform
	if q := f.quota[w.arr.Tenant]; q > 0 && p.InUse(w.arr.Tenant)+w.demand > q {
		return false
	}
	if cap := p.Config().MaxConcurrent; cap > 0 && p.TotalInUse()+w.demand > cap {
		return false
	}
	return true
}

// admit runs one job at the current virtual instant and installs its
// reservation and future releases.
func (f *fleet) admit(w *waiting) error {
	job := w.arr.Job
	job.Spec.Tenant = w.arr.Tenant
	job.Spec.StartAt = f.now

	// Contention-triggered scale-in: others are waiting, so ask this
	// job to hand back workers once past its knee — the same guardrail
	// the §4.2 auto-tuner uses, so convergence is not stalled. The
	// request is due immediately (At: 0 is before any barrier) and
	// bounded by the queue depth and the tuner's MinWorkers floor.
	shrunk := 0
	if !f.cfg.NoScaleIn && len(f.waitq) > 0 && job.Spec.Sync != consistency.Async {
		floor := job.Spec.Sched.MinWorkers
		if floor <= 0 {
			floor = job.Spec.Workers / 4 // the engine's own default
			if floor < 1 {
				floor = 1
			}
		}
		if give := job.Spec.Workers - floor; give > 0 {
			if give > len(f.waitq) {
				give = len(f.waitq)
			}
			job.Spec.Shrink = []core.ShrinkDirective{{At: 0, Workers: give}}
			shrunk = give
		}
	}

	wait := f.now - w.arr.At
	res, err := core.Run(f.cl, job)
	if err != nil {
		return fmt.Errorf("tenant: job %q/%q admitted at %v: %w", w.arr.Tenant, w.arr.Workload, f.now, err)
	}
	f.event(f.now, "admit", w.arr.Tenant, res.ID,
		fmt.Sprintf("workload=%s demand=%d waited=%.3fs", w.arr.Workload, w.demand, wait.Seconds()))
	if shrunk > 0 {
		f.event(f.now, "shrink-request", w.arr.Tenant, res.ID, fmt.Sprintf("give=%d", shrunk))
	}

	// The job's instances have terminated (core.Run is host-serial);
	// re-occupy its virtual window [now, complete) with a reservation,
	// drained early by its scale-in evictions.
	if err := f.cl.Platform.Reserve(w.arr.Tenant, w.demand); err != nil {
		return fmt.Errorf("tenant: reserve %d for %q at %v: %w", w.demand, w.arr.Tenant, f.now, err)
	}
	complete := f.now + res.ExecTime
	for _, rm := range res.Removals {
		f.release(rm.Time, w.arr.Tenant, res.ID, 1)
		f.event(rm.Time, "scale-in", w.arr.Tenant, res.ID,
			fmt.Sprintf("worker=%d left=%d", rm.Worker, rm.WorkersLeft))
	}
	f.release(complete, w.arr.Tenant, res.ID, w.demand-len(res.Removals))
	f.event(complete, "complete", w.arr.Tenant, res.ID,
		fmt.Sprintf("workload=%s steps=%d converged=%v loss=%.6f", w.arr.Workload, res.Steps, res.Converged, res.FinalLoss))

	funcSecs := functionTime(res)
	f.served[w.arr.Tenant] += funcSecs
	f.jobs = append(f.jobs, JobRecord{
		ID: res.ID, Tenant: w.arr.Tenant, Workload: w.arr.Workload,
		ArriveAt: w.arr.At, AdmitAt: f.now, CompleteAt: complete,
		Wait: wait, Exec: res.ExecTime,
		Workers: job.Spec.Workers, Shrunk: len(res.Removals),
		FunctionTime: funcSecs, FunctionDollars: functionDollars(res),
		Converged: res.Converged, FinalLoss: res.FinalLoss, Steps: res.Steps,
	})
	return nil
}

// releaseLess orders releases by (at, tenant, job, seq) — the
// documented commit order for reservation returns.
func releaseLess(rs []release) func(i, j int) bool {
	return func(i, j int) bool {
		if rs[i].at != rs[j].at {
			return rs[i].at < rs[j].at
		}
		if rs[i].tenant != rs[j].tenant {
			return rs[i].tenant < rs[j].tenant
		}
		if rs[i].job != rs[j].job {
			return rs[i].job < rs[j].job
		}
		return rs[i].seq < rs[j].seq
	}
}

func (f *fleet) release(at time.Duration, tenant, job string, n int) {
	if n <= 0 {
		return
	}
	f.releases = append(f.releases, release{at: at, tenant: tenant, job: job, n: n, seq: f.seq})
	f.seq++
}

func (f *fleet) event(at time.Duration, kind, tenant, job, detail string) {
	f.events = append(f.events, Event{At: at, Kind: kind, Tenant: tenant, Job: job, Detail: detail, seq: f.seq})
	f.seq++
}

// functionTime sums the billed duration of the job's function
// components — its share of the platform's GB-second meter (every
// function in a job runs at the same memory size, so plain seconds
// split the bill exactly like GB-seconds do).
func functionTime(res *core.Result) time.Duration {
	var d time.Duration
	for _, c := range res.Cost.Components {
		if c.Kind == "function" {
			d += c.Duration
		}
	}
	return d
}

// functionDollars sums the job's function charges.
func functionDollars(res *core.Result) float64 {
	var usd float64
	for _, c := range res.Cost.Components {
		if c.Kind == "function" {
			usd += c.Dollars
		}
	}
	return usd
}
