package tenant

import (
	"fmt"
	"io"
	"math"
	"sort"
	"time"
)

// JobRecord is one completed job's control-plane view.
type JobRecord struct {
	// ID is the job's namespace on the shared substrate ("t1/job3").
	ID string
	// Tenant and Workload identify who asked for what.
	Tenant, Workload string
	// ArriveAt, AdmitAt and CompleteAt are the job's virtual milestones.
	ArriveAt, AdmitAt, CompleteAt time.Duration
	// Wait is AdmitAt-ArriveAt; Exec is the engine's ExecTime.
	Wait, Exec time.Duration
	// Workers is the requested pool width; Shrunk counts workers the
	// job handed back under contention-triggered scale-in.
	Workers, Shrunk int
	// FunctionTime is the job's share of the platform's billed function
	// seconds; FunctionDollars its function charges.
	FunctionTime    time.Duration
	FunctionDollars float64
	// Converged, FinalLoss and Steps summarize the training outcome.
	Converged bool
	FinalLoss float64
	Steps     int
}

// Slowdown is the job's completion latency relative to running
// unqueued: (wait+exec)/exec, 1.0 for a job admitted on arrival.
func (j JobRecord) Slowdown() float64 {
	if j.Exec <= 0 {
		return 1
	}
	return float64(j.Wait+j.Exec) / float64(j.Exec)
}

// TenantReport aggregates one tenant's slice of the fleet.
type TenantReport struct {
	// Name is the tenant.
	Name string
	// Jobs counts its completed jobs.
	Jobs int
	// FunctionTime and FunctionDollars are its shares of the platform
	// function bill; per-tenant FunctionTime sums to the platform's
	// BilledFunctionSeconds exactly (no orphaned or double-counted
	// GB-seconds).
	FunctionTime    time.Duration
	FunctionDollars float64
	// MeanSlowdown is the mean of its jobs' Slowdowns — the fairness
	// quantity the Jain index is computed over.
	MeanSlowdown float64
	// MaxWait is its worst queueing delay.
	MaxWait time.Duration
}

// Report is the outcome of a fleet run.
type Report struct {
	// Jobs is every completed job in admission order.
	Jobs []JobRecord
	// Tenants is the per-tenant aggregation, sorted by name.
	Tenants []TenantReport
	// Events is the control-plane log, time-ordered.
	Events []Event
	// Makespan is the last completion instant.
	Makespan time.Duration
	// ThroughputPerHour is completed jobs per virtual hour of makespan.
	ThroughputPerHour float64
	// Jain is Jain's fairness index over per-tenant mean slowdowns:
	// 1.0 when every tenant is slowed equally, 1/n when one tenant
	// absorbs all the queueing.
	Jain float64
	// P50Latency and P99Latency are percentiles of job completion
	// latency (wait+exec) across all jobs.
	P50Latency, P99Latency time.Duration
	// FunctionTime is the platform-wide billed function time.
	FunctionTime time.Duration
	// FunctionDollars is the platform-wide function spend.
	FunctionDollars float64
	// ScaleIns counts workers handed back under contention.
	ScaleIns int
}

// report assembles the Report after the event loop drains.
func (f *fleet) report() *Report {
	r := &Report{Jobs: f.jobs}

	sort.SliceStable(f.events, func(i, j int) bool {
		if f.events[i].At != f.events[j].At {
			return f.events[i].At < f.events[j].At
		}
		return f.events[i].seq < f.events[j].seq
	})
	r.Events = f.events

	perTenant := map[string]*TenantReport{}
	var latencies []time.Duration
	slow := map[string][]float64{}
	for _, j := range f.jobs {
		t := perTenant[j.Tenant]
		if t == nil {
			t = &TenantReport{Name: j.Tenant}
			perTenant[j.Tenant] = t
		}
		t.Jobs++
		t.FunctionTime += j.FunctionTime
		t.FunctionDollars += j.FunctionDollars
		if j.Wait > t.MaxWait {
			t.MaxWait = j.Wait
		}
		slow[j.Tenant] = append(slow[j.Tenant], j.Slowdown())
		latencies = append(latencies, j.Wait+j.Exec)
		if j.CompleteAt > r.Makespan {
			r.Makespan = j.CompleteAt
		}
		r.FunctionTime += j.FunctionTime
		r.FunctionDollars += j.FunctionDollars
		r.ScaleIns += j.Shrunk
	}

	var means []float64
	names := make([]string, 0, len(perTenant))
	for name := range perTenant {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		t := perTenant[name]
		for _, s := range slow[name] {
			t.MeanSlowdown += s
		}
		t.MeanSlowdown /= float64(len(slow[name]))
		means = append(means, t.MeanSlowdown)
		r.Tenants = append(r.Tenants, *t)
	}
	r.Jain = jain(means)
	if r.Makespan > 0 {
		r.ThroughputPerHour = float64(len(f.jobs)) / r.Makespan.Hours()
	}
	r.P50Latency = percentile(latencies, 0.50)
	r.P99Latency = percentile(latencies, 0.99)
	return r
}

// jain is Jain's fairness index (ΣX)²/(n·ΣX²) ∈ (0, 1].
func jain(xs []float64) float64 {
	if len(xs) == 0 {
		return 1
	}
	var sum, sq float64
	for _, x := range xs {
		sum += x
		sq += x * x
	}
	if sq == 0 {
		return 1
	}
	return sum * sum / (float64(len(xs)) * sq)
}

// percentile returns the p-th percentile (nearest-rank) of ds.
func percentile(ds []time.Duration, p float64) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	rank := int(math.Ceil(p*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// WriteEvents renders the control-plane log, one event per line. The
// output is the fleet's determinism artifact: byte-identical across
// same-seed runs.
func (r *Report) WriteEvents(w io.Writer) error {
	for _, ev := range r.Events {
		if _, err := fmt.Fprintln(w, ev.String()); err != nil {
			return err
		}
	}
	return nil
}
