package tenant

import (
	"bytes"
	"reflect"
	"sort"
	"testing"
	"time"

	"mlless/internal/cost"
	"mlless/internal/trace"
)

// fleetArtifacts captures everything a fleet run leaves behind that the
// host-parallel engine promises to keep byte- and bit-identical: the
// control-plane log, the job records (IDs, milestones, losses, bills),
// the report, the platform's billed function meter, the warm pool and
// the service counters.
type fleetArtifacts struct {
	log      string
	jobs     []JobRecord
	tenants  []TenantReport
	makespan time.Duration
	jain     float64
	funcTime time.Duration
	funcUSD  float64
	billed   time.Duration
	warm     int
	counters []trace.Metric
	orphans  int
}

func runFleetArtifacts(t *testing.T, seed uint64, maxConcurrent, jobs, hostPar int, serial, stripTemplates bool) fleetArtifacts {
	t.Helper()
	cfg, arrivals := testFleet(t, seed, maxConcurrent, jobs)
	if stripTemplates {
		for i := range arrivals {
			arrivals[i].TemplateKey = ""
		}
	}
	cfg.Arrivals = arrivals
	cfg.HostPar = hostPar
	cfg.forceSerial = serial
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var log bytes.Buffer
	if err := rep.WriteEvents(&log); err != nil {
		t.Fatal(err)
	}
	var orphans cost.Meter
	cfg.Cluster.Platform.BillTo(&orphans)
	snap := cfg.Cluster.Metrics.Snapshot()
	sort.Slice(snap, func(i, j int) bool { return snap[i].Name < snap[j].Name })
	return fleetArtifacts{
		log:      log.String(),
		jobs:     rep.Jobs,
		tenants:  rep.Tenants,
		makespan: rep.Makespan,
		jain:     rep.Jain,
		funcTime: rep.FunctionTime,
		funcUSD:  rep.FunctionDollars,
		billed:   cfg.Cluster.Platform.BilledFunctionSeconds(),
		warm:     cfg.Cluster.Platform.WarmPool(),
		counters: snap,
		orphans:  len(orphans.Report().Components),
	}
}

func diffArtifacts(t *testing.T, label string, want, got fleetArtifacts) {
	t.Helper()
	if want.log != got.log {
		t.Fatalf("%s: event logs differ:\n--- baseline ---\n%s--- %s ---\n%s", label, want.log, label, got.log)
	}
	if !reflect.DeepEqual(want.jobs, got.jobs) {
		t.Fatalf("%s: job records differ:\nbaseline: %+v\ngot:      %+v", label, want.jobs, got.jobs)
	}
	if !reflect.DeepEqual(want.tenants, got.tenants) {
		t.Fatalf("%s: per-tenant bills differ:\nbaseline: %+v\ngot:      %+v", label, want.tenants, got.tenants)
	}
	if want.makespan != got.makespan || want.jain != got.jain ||
		want.funcTime != got.funcTime || want.funcUSD != got.funcUSD {
		t.Fatalf("%s: headline metrics differ: baseline {%v %v %v %v} got {%v %v %v %v}",
			label, want.makespan, want.jain, want.funcTime, want.funcUSD,
			got.makespan, got.jain, got.funcTime, got.funcUSD)
	}
	if want.billed != got.billed {
		t.Fatalf("%s: platform billed %v, baseline %v", label, got.billed, want.billed)
	}
	if want.warm != got.warm {
		t.Fatalf("%s: warm pool %d, baseline %d", label, got.warm, want.warm)
	}
	if !reflect.DeepEqual(want.counters, got.counters) {
		t.Fatalf("%s: service counters differ:\nbaseline: %+v\ngot:      %+v", label, want.counters, got.counters)
	}
	if got.orphans != 0 {
		t.Fatalf("%s: %d function runs never claimed by a job meter", label, got.orphans)
	}
}

func TestFleetParallelMatchesSerialBaseline(t *testing.T) {
	// The tentpole's determinism contract: the host-parallel engine must
	// reproduce the legacy host-serial loop bit-for-bit — event log, job
	// records, per-tenant bills, platform meter, warm pool and every
	// service counter — at every host-parallelism level. Width 2 and 8
	// run under -race in CI, so the executor's sharing discipline is
	// checked as well as its outputs.
	baseline := runFleetArtifacts(t, 42, 8, 9, 1, true, false)
	if baseline.orphans != 0 {
		t.Fatalf("serial baseline left %d unclaimed runs", baseline.orphans)
	}
	for _, par := range []int{1, 2, 4, 8} {
		got := runFleetArtifacts(t, 42, 8, 9, par, false, false)
		diffArtifacts(t, "host-par "+string(rune('0'+par)), baseline, got)
	}
}

func TestFleetParallelMatchesSerialWithoutTemplates(t *testing.T) {
	// Hand-built arrivals carry no TemplateKey, so nothing memoizes and
	// executions happen one certain frontier at a time — the engine must
	// still match the serial loop exactly.
	baseline := runFleetArtifacts(t, 11, 6, 6, 1, true, true)
	got := runFleetArtifacts(t, 11, 6, 6, 4, false, true)
	diffArtifacts(t, "no-template host-par 4", baseline, got)
}

func TestFleetParallelContended(t *testing.T) {
	// Heavy contention (cap 4 fits one job) drives the queue, fair-share
	// and scale-in paths through the pass/estimate machinery; the
	// parallel engine must still match the serial loop exactly.
	baseline := runFleetArtifacts(t, 11, 4, 8, 1, true, false)
	got := runFleetArtifacts(t, 11, 4, 8, 4, false, false)
	diffArtifacts(t, "contended host-par 4", baseline, got)
}

func TestReleaseOrderIsStateNotInsertion(t *testing.T) {
	// Releases due at one instant must commit in (tenant, job, seq)
	// order however they were inserted — the documented total order that
	// keeps same-instant free/re-acquire resolution a pure function of
	// fleet state.
	at := 3 * time.Second
	rs := []release{
		{at: at, tenant: "t2", job: "t2/job5", n: 1, seq: 9},
		{at: at, tenant: "t1", job: "t1/job7", n: 2, seq: 8},
		{at: at, tenant: "t1", job: "t1/job2", n: 1, seq: 7},
		{at: at - time.Second, tenant: "t9", job: "t9/job9", n: 1, seq: 6},
		{at: at, tenant: "t1", job: "t1/job2", n: 3, seq: 5},
	}
	sort.SliceStable(rs, releaseLess(rs))
	want := []struct {
		job string
		seq int
	}{
		{"t9/job9", 6}, {"t1/job2", 5}, {"t1/job2", 7}, {"t1/job7", 8}, {"t2/job5", 9},
	}
	for i, w := range want {
		if rs[i].job != w.job || rs[i].seq != w.seq {
			t.Fatalf("release %d is %s/seq=%d, want %s/seq=%d", i, rs[i].job, rs[i].seq, w.job, w.seq)
		}
	}
}

func TestFleetParallelHandlesEmptyAndError(t *testing.T) {
	// Zero arrivals take the parallel path trivially; a fleet whose
	// queue can never drain surfaces ErrNeverFits from the pass guard.
	cfg, _ := testFleet(t, 5, 8, 2)
	cfg.Arrivals = nil
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Jobs) != 0 || len(rep.Events) != 0 {
		t.Fatalf("empty fleet produced %d jobs, %d events", len(rep.Jobs), len(rep.Events))
	}
}
