// Host-parallel fleet execution (DESIGN.md §15). The legacy loop in
// tenant.go executes admitted jobs host-serially: virtual concurrency —
// jobs whose windows [admit, complete) overlap in virtual time — never
// becomes wall-clock concurrency. The engine below converts one into
// the other without perturbing a single byte of output.
//
// The design splits the fleet into a decision pass and an execution
// pool:
//
//   - runPass replays the whole control loop (arrivals, releases,
//     fair-share admission, scale-in requests) as a cheap pure function
//     over ledgers — reservation counts, warm-container counts, served
//     function-time — asking a resolver for each admission's outcome.
//     When the resolver has the exact result the pass replays it; when
//     it does not, the pass substitutes a deterministic estimate and is
//     marked inexact from that admission on. The first admission
//     resolved from fully-exact state (the frontier) is always a true
//     execution context: everything that could influence it has been
//     replayed exactly.
//
//   - The executor runs admissions as sandboxed simulations on a pool
//     of HostPar goroutines. Each execution gets private copies of
//     every mutable substrate — KV tier, broker, FaaS platform with the
//     fleet's quotas and a warm pool preset from the ledger — plus a
//     read-only fork of the shared object store (datasets are staged
//     once and never change). The job runs under its reserved cluster
//     job number (Cluster.ReserveJobIDs), so namespaces land exactly
//     where the host-serial run would have put them.
//
// The loop alternates: run a pass; if every admission resolved exactly,
// fold and return; otherwise submit the pass's contexts to the pool and
// block until the frontier's execution lands. Each wait retires at
// least one admission, so the loop terminates after at most one pass
// per arrival — far fewer with memoization, which resolves every
// arrival of a workload template from one canonical execution,
// translated to the admission's start time and namespace (translation
// is exact because, with faults and tracing gated off, every virtual
// duration in a run is independent of absolute start time, and key or
// name lengths never enter link charging).
//
// Why the result is byte-identical to the serial loop, at every
// HostPar value: the final pass replays the control loop purely from
// cached outcomes, and each outcome is a deterministic function of its
// execution context alone — the sandbox reproduces exactly the
// substrate state the job would observe mid-fleet (quota rejections
// cannot fire for an admission that passed the fits check, checkpoints
// and update keys are job-namespaced and deleted by the run itself, and
// the warm-pool ledger preset makes every warm/cold decision match).
// Host scheduling can change which speculative executions run, never
// what any execution returns, so the all-exact fixed point is unique:
// it is the serial trajectory.
//
// What the fold writes back: the event log, job records and per-tenant
// served time from the final pass; every execution's billed runs
// (translated names, termination order, admission-ordered) absorbed
// into the shared platform so BillTo and BilledFunctionSeconds agree
// with a serial run; every execution's service counters summed into the
// shared registry; the final warm-pool ledger. Sandbox-private broker
// queue declarations and empty per-job substrate state are not
// replicated — a completed serial run leaves none behind either.
package tenant

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"mlless/internal/consistency"
	"mlless/internal/core"
	"mlless/internal/cost"
	"mlless/internal/exchange"
	"mlless/internal/faas"
	"mlless/internal/kvstore"
	"mlless/internal/msgqueue"
	"mlless/internal/trace"
)

// sandboxable reports whether every arrival can execute in a private
// sandbox. Tracing writes spans against shared trackers, fault draws
// depend on absolute operation times, and the collective exchanges
// route updates through the object store the sandbox only forks
// read-only — any of those sends the whole fleet down the host-serial
// path, which remains bit-exact for them.
func sandboxable(arrivals []Arrival) bool {
	for _, a := range arrivals {
		if a.Job.Trace != nil || a.Job.Spec.Faults.Enabled() || exchange.IsCollective(a.Job.Spec.Exchange) {
			return false
		}
	}
	return true
}

// execCtx is the complete execution context of one admission: every
// fleet-side input that can influence the job's simulated outcome.
type execCtx struct {
	idx      int // admission index within the pass
	arrSeq   int // index into the sorted arrival schedule
	num      int // reserved cluster-wide job number
	tenant   string
	workload string
	tmplKey  string
	startAt  time.Duration
	give     int  // contention-triggered shrink request (0 = none)
	warm     int  // warm containers preset from the fleet ledger
	demand   int  // workers + supervisor
	certain  bool // true iff every earlier admission resolved exactly
	job      core.Job
}

// id is the namespace the job runs under.
func (c execCtx) id() string { return core.JobNamespace(c.tenant, c.num) }

// memoable reports whether the outcome is a pure function of
// (template, give, warm) alone — i.e. translation across start times,
// tenants and job numbers is exact. The auto-tuner's epoch gate and the
// wall-clock stop criterion compare absolute virtual times, so either
// pins the outcome to its start time.
func (c execCtx) memoable() bool {
	return c.tmplKey != "" && !c.job.Spec.AutoTune && c.job.Spec.MaxWallClock == 0
}

// key identifies the execution's result cache slot: the memo key for
// template-stamped jobs, the full exact context otherwise.
func (c execCtx) key() string {
	if c.memoable() {
		return fmt.Sprintf("m\x00%s\x00g%d w%d", c.tmplKey, c.give, c.warm)
	}
	return fmt.Sprintf("x\x00%d %d %s %d %d %d", c.arrSeq, c.num, c.tenant, c.startAt, c.give, c.warm)
}

// outcome is everything the control plane consumes from one execution.
type outcome struct {
	res       *core.Result
	finalWarm int              // sandbox warm pool after the run
	billed    []faas.BilledRun // translated into the ctx's namespace
	counters  []trace.Metric   // sandbox registry snapshot
}

// resolver returns the outcome for an execution context and whether it
// is exact. A non-nil error aborts the fleet; it is only returned for
// certain contexts whose execution genuinely failed.
type resolver func(execCtx) (out *outcome, exact bool, err error)

// pass is one replay of the fleet control loop over pure ledgers.
type pass struct {
	exact    bool
	err      error
	frontier *execCtx
	ctxs     []execCtx
	outs     []*outcome

	events []Event
	jobs   []JobRecord
	served map[string]time.Duration

	inUse      map[string]int
	totalInUse int
	warm       int
	releases   []release
	waitq      []*waiting
	now        time.Duration
	seq        int
}

func (p *pass) event(at time.Duration, kind, tenant, job, detail string) {
	p.events = append(p.events, Event{At: at, Kind: kind, Tenant: tenant, Job: job, Detail: detail, seq: p.seq})
	p.seq++
}

func (p *pass) release(at time.Duration, tenant, job string, n int) {
	if n <= 0 {
		return
	}
	p.releases = append(p.releases, release{at: at, tenant: tenant, job: job, n: n, seq: p.seq})
	p.seq++
}

// applyReleases mirrors fleet.applyReleases over the pass ledger.
func (p *pass) applyReleases() {
	sort.SliceStable(p.releases, releaseLess(p.releases))
	n := 0
	for _, r := range p.releases {
		if r.at > p.now {
			p.releases[n] = r
			n++
			continue
		}
		p.inUse[r.tenant] -= r.n
		p.totalInUse -= r.n
	}
	p.releases = p.releases[:n]
}

// nextInstant mirrors fleet.nextInstant.
func (p *pass) nextInstant(arrivals []Arrival, ai int) (time.Duration, bool) {
	next := time.Duration(-1)
	if ai < len(arrivals) {
		next = arrivals[ai].At
	}
	for _, r := range p.releases {
		if next < 0 || r.at < next {
			next = r.at
		}
	}
	if next < 0 {
		return 0, false
	}
	return next, true
}

// fits mirrors fleet.fits over the reservation ledger.
func (p *pass) fits(f *fleet, w *waiting) bool {
	if q := f.quota[w.arr.Tenant]; q > 0 && p.inUse[w.arr.Tenant]+w.demand > q {
		return false
	}
	if cap := f.cl.Platform.Config().MaxConcurrent; cap > 0 && p.totalInUse+w.demand > cap {
		return false
	}
	return true
}

// pickAdmissible mirrors fleet.pickAdmissible over the pass ledger.
func (p *pass) pickAdmissible(f *fleet) *waiting {
	best := -1
	for i, w := range p.waitq {
		if !p.fits(f, w) {
			continue
		}
		if best < 0 {
			best = i
			continue
		}
		b := p.waitq[best]
		if p.served[w.arr.Tenant] < p.served[b.arr.Tenant] ||
			(p.served[w.arr.Tenant] == p.served[b.arr.Tenant] && w.seq < b.seq) {
			best = i
		}
	}
	if best < 0 {
		return nil
	}
	w := p.waitq[best]
	p.waitq = append(p.waitq[:best], p.waitq[best+1:]...)
	return w
}

// runPass replays the fleet once against the resolver. It never touches
// shared state: everything it produces lives in the returned pass.
func (f *fleet) runPass(arrivals []Arrival, base, warm0 int, resolve resolver) *pass {
	p := &pass{
		exact:  true,
		warm:   warm0,
		served: make(map[string]time.Duration, len(f.quota)),
		inUse:  make(map[string]int, len(f.quota)),
	}
	for name := range f.quota {
		p.served[name] = 0
	}
	ai := 0
	for {
		for ai < len(arrivals) && arrivals[ai].At <= p.now {
			a := arrivals[ai]
			w := &waiting{arr: a, seq: ai, demand: a.Job.Spec.Workers + 1}
			p.waitq = append(p.waitq, w)
			p.event(a.At, "arrive", a.Tenant, a.Workload, fmt.Sprintf("demand=%d", w.demand))
			ai++
		}
		p.applyReleases()
		for {
			w := p.pickAdmissible(f)
			if w == nil {
				break
			}
			if !f.admitPass(p, w, base, resolve) {
				return p
			}
		}
		next, ok := p.nextInstant(arrivals, ai)
		if !ok {
			if len(p.waitq) > 0 {
				p.err = fmt.Errorf("%w: %d jobs stuck in queue at t=%v",
					ErrNeverFits, len(p.waitq), p.now)
			}
			return p
		}
		p.now = next
	}
}

// admitPass replays one admission, mirroring fleet.admit's event and
// release sequence exactly. It reports false when the pass must abort.
func (f *fleet) admitPass(p *pass, w *waiting, base int, resolve resolver) bool {
	spec := w.arr.Job.Spec

	// Contention-triggered scale-in, same computation as the serial
	// admit: floor at Sched.MinWorkers (or the engine's Workers/4
	// default), give bounded by the queue depth.
	give := 0
	if !f.cfg.NoScaleIn && len(p.waitq) > 0 && spec.Sync != consistency.Async {
		floor := spec.Sched.MinWorkers
		if floor <= 0 {
			floor = spec.Workers / 4
			if floor < 1 {
				floor = 1
			}
		}
		if g := spec.Workers - floor; g > 0 {
			if g > len(p.waitq) {
				g = len(p.waitq)
			}
			give = g
		}
	}
	warm := p.warm
	if warm > w.demand {
		warm = w.demand
	}
	ctx := execCtx{
		idx: len(p.ctxs), arrSeq: w.seq, num: base + len(p.ctxs),
		tenant: w.arr.Tenant, workload: w.arr.Workload, tmplKey: w.arr.TemplateKey,
		startAt: p.now, give: give, warm: warm, demand: w.demand,
		certain: p.exact, job: w.arr.Job,
	}
	out, exact, err := resolve(ctx)
	if err != nil {
		p.err = fmt.Errorf("tenant: job %q/%q admitted at %v: %w", ctx.tenant, ctx.workload, p.now, err)
		return false
	}
	if !exact && p.exact {
		p.exact = false
		c := ctx
		p.frontier = &c
	}

	res := out.res
	wait := p.now - w.arr.At
	p.event(p.now, "admit", ctx.tenant, res.ID,
		fmt.Sprintf("workload=%s demand=%d waited=%.3fs", ctx.workload, w.demand, wait.Seconds()))
	if give > 0 {
		p.event(p.now, "shrink-request", ctx.tenant, res.ID, fmt.Sprintf("give=%d", give))
	}
	p.inUse[ctx.tenant] += w.demand
	p.totalInUse += w.demand
	complete := p.now + res.ExecTime
	for _, rm := range res.Removals {
		p.release(rm.Time, ctx.tenant, res.ID, 1)
		p.event(rm.Time, "scale-in", ctx.tenant, res.ID,
			fmt.Sprintf("worker=%d left=%d", rm.Worker, rm.WorkersLeft))
	}
	p.release(complete, ctx.tenant, res.ID, w.demand-len(res.Removals))
	p.event(complete, "complete", ctx.tenant, res.ID,
		fmt.Sprintf("workload=%s steps=%d converged=%v loss=%.6f", ctx.workload, res.Steps, res.Converged, res.FinalLoss))

	funcSecs := functionTime(res)
	p.served[ctx.tenant] += funcSecs
	p.jobs = append(p.jobs, JobRecord{
		ID: res.ID, Tenant: ctx.tenant, Workload: ctx.workload,
		ArriveAt: w.arr.At, AdmitAt: p.now, CompleteAt: complete,
		Wait: wait, Exec: res.ExecTime,
		Workers: spec.Workers, Shrunk: len(res.Removals),
		FunctionTime: funcSecs, FunctionDollars: functionDollars(res),
		Converged: res.Converged, FinalLoss: res.FinalLoss, Steps: res.Steps,
	})
	p.warm += out.finalWarm - ctx.warm
	p.ctxs = append(p.ctxs, ctx)
	p.outs = append(p.outs, out)
	return true
}

// hostPar resolves Config.HostPar to the pool width.
func (f *fleet) hostPar() int {
	if f.cfg.HostPar > 0 {
		return f.cfg.HostPar
	}
	return runtime.GOMAXPROCS(0)
}

// runParallel is the fixed-point fleet loop: pass, execute, repeat
// until a pass resolves every admission exactly, then fold.
func (f *fleet) runParallel(arrivals []Arrival) (*Report, error) {
	if f.cl.Redis.NumShards() > 1 {
		// Job IDs prefix every Redis key and the sharded tier hashes the
		// full key, so renaming a job re-routes its keys across shards —
		// changing per-shard counters and MGet's max-over-shards charge.
		// Memoized outcomes therefore only translate on single-shard
		// fleets; multi-shard fleets keep exact per-admission keys.
		stripped := make([]Arrival, len(arrivals))
		copy(stripped, arrivals)
		for i := range stripped {
			stripped[i].TemplateKey = ""
		}
		arrivals = stripped
	}
	base := f.cl.ReserveJobIDs(len(arrivals))
	warm0 := f.cl.Platform.WarmPool()
	ex := newExecutor(f, f.hostPar())
	defer ex.close()
	for {
		p := f.runPass(arrivals, base, warm0, ex.resolve)
		if p.err != nil {
			return nil, p.err
		}
		if p.exact {
			f.fold(p)
			return f.report(), nil
		}
		for _, ctx := range p.ctxs {
			ex.submit(ctx)
		}
		ex.await(p.frontier.key())
	}
}

// fold commits the final pass: control-plane log and records, translated
// bills in admission order, summed service counters, warm-pool ledger.
func (f *fleet) fold(p *pass) {
	f.events = p.events
	f.jobs = p.jobs
	f.served = p.served
	for _, out := range p.outs {
		f.cl.Platform.AbsorbBilled(out.billed)
		for _, m := range out.counters {
			f.cl.Metrics.Counter(m.Name).Add(m.Value)
		}
	}
	f.cl.Platform.SetWarmPool(p.warm)
}

// sandboxRun simulates one admission on private substrates. The error
// is the engine's, unwrapped; admitPass adds the admission context.
func (f *fleet) sandboxRun(ctx execCtx) (*outcome, error) {
	reg := trace.NewRegistry()
	plat := faas.NewPlatformWithRegistry(f.cl.Platform.Config(), reg)
	for name, q := range f.quota {
		if q > 0 {
			plat.SetQuota(name, q)
		}
	}
	plat.SetWarmPool(ctx.warm)
	scl := &core.Cluster{
		Redis:    kvstore.NewShardedWithRegistry(f.cl.Redis.Link(), reg, f.cl.Redis.NumShards()),
		COS:      f.cl.COS.ForkReadOnly(reg),
		Broker:   msgqueue.NewWithRegistry(f.cl.Broker.Link(), reg),
		Platform: plat,
		Compute:  f.cl.Compute,
		Metrics:  reg,
	}
	job := ctx.job
	job.Spec.Tenant = ctx.tenant
	job.Spec.StartAt = ctx.startAt
	if ctx.give > 0 {
		job.Spec.Shrink = []core.ShrinkDirective{{At: 0, Workers: ctx.give}}
	}
	res, err := core.RunNumbered(scl, job, ctx.num)
	if err != nil {
		return nil, err
	}
	return &outcome{
		res:       res,
		finalWarm: plat.WarmPool(),
		billed:    plat.BilledRuns(),
		counters:  reg.Snapshot(),
	}, nil
}

// rename maps one billing label from the canonical execution's
// namespace into the target's. Labels are "<id>" or "<id>/suffix";
// anything else (VM lines, request-class lines) passes through.
func rename(name, oldID, newID string) string {
	if name == oldID {
		return newID
	}
	if strings.HasPrefix(name, oldID+"/") {
		return newID + name[len(oldID):]
	}
	return name
}

// translateOutcome maps a finished execution from one context onto
// another of the same memo key: shift absolute times by the start-time
// delta and relabel the namespace. The bill total is recomputed in the
// renamed sort order, exactly as cost.Meter.Report would have summed it
// for a native run under the target namespace.
func translateOutcome(src *outcome, from, to execCtx) *outcome {
	dt := to.startAt - from.startAt
	oldID, newID := from.id(), to.id()

	r := *src.res
	r.ID = newID
	if len(src.res.History) > 0 {
		h := make([]core.LossPoint, len(src.res.History))
		copy(h, src.res.History)
		for i := range h {
			h[i].Time += dt
		}
		r.History = h
	}
	if len(src.res.Removals) > 0 {
		rms := make([]core.Removal, len(src.res.Removals))
		copy(rms, src.res.Removals)
		for i := range rms {
			rms[i].Time += dt
		}
		r.Removals = rms
	}
	comps := make([]cost.Component, len(src.res.Cost.Components))
	copy(comps, src.res.Cost.Components)
	for i := range comps {
		comps[i].Name = rename(comps[i].Name, oldID, newID)
	}
	sort.Slice(comps, func(i, j int) bool { return comps[i].Name < comps[j].Name })
	total := 0.0
	for _, c := range comps {
		if c.Kind == "memo" {
			continue
		}
		total += c.Dollars
	}
	r.Cost = cost.Report{Components: comps, Total: total}

	billed := make([]faas.BilledRun, len(src.billed))
	copy(billed, src.billed)
	for i := range billed {
		billed[i].Name = rename(billed[i].Name, oldID, newID)
	}
	return &outcome{res: &r, finalWarm: src.finalWarm, billed: billed, counters: src.counters}
}

// entry is one execution's result slot.
type entry struct {
	ctx  execCtx
	done chan struct{}
	out  *outcome
	err  error
}

// executor runs sandboxed executions on a bounded goroutine pool and
// caches results by execution key.
type executor struct {
	f  *fleet
	mu sync.Mutex
	// cond signals queued work; guarded by mu.
	cond    *sync.Cond
	queue   []*entry
	closed  bool
	entries map[string]*entry
	canon   map[string]*entry // template key -> a finished canonical
	wg      sync.WaitGroup
}

func newExecutor(f *fleet, par int) *executor {
	if par < 1 {
		par = 1
	}
	ex := &executor{f: f, entries: make(map[string]*entry), canon: make(map[string]*entry)}
	ex.cond = sync.NewCond(&ex.mu)
	ex.wg.Add(par)
	for i := 0; i < par; i++ {
		go ex.work()
	}
	return ex
}

func (ex *executor) work() {
	defer ex.wg.Done()
	for {
		ex.mu.Lock()
		for len(ex.queue) == 0 && !ex.closed {
			ex.cond.Wait()
		}
		if ex.closed {
			// Abandon queued-but-unstarted work: it was speculative and
			// never touched shared state.
			ex.mu.Unlock()
			return
		}
		e := ex.queue[0]
		ex.queue = ex.queue[1:]
		ex.mu.Unlock()

		out, err := ex.f.sandboxRun(e.ctx)
		ex.mu.Lock()
		e.out, e.err = out, err
		if err == nil && e.ctx.memoable() {
			if _, ok := ex.canon[e.ctx.tmplKey]; !ok {
				ex.canon[e.ctx.tmplKey] = e
			}
		}
		ex.mu.Unlock()
		close(e.done)
	}
}

// submit enqueues an execution unless its key is already cached or
// running. Memoable contexts may run speculatively (their results are
// reusable at any start time); exact-keyed contexts only run once
// certain, so a misprediction can never waste a full training
// simulation on a key no final pass will ask for.
func (ex *executor) submit(ctx execCtx) {
	if !ctx.memoable() && !ctx.certain {
		return
	}
	key := ctx.key()
	ex.mu.Lock()
	defer ex.mu.Unlock()
	if _, ok := ex.entries[key]; ok {
		return
	}
	e := &entry{ctx: ctx, done: make(chan struct{})}
	ex.entries[key] = e
	ex.queue = append(ex.queue, e)
	ex.cond.Signal()
}

// await blocks until the execution under key lands. The caller must
// have submitted it (the frontier context always is).
func (ex *executor) await(key string) {
	ex.mu.Lock()
	e := ex.entries[key]
	ex.mu.Unlock()
	if e == nil {
		panic("tenant: await on an unsubmitted execution key " + key)
	}
	<-e.done
}

// resolve implements the pass resolver against the result cache.
func (ex *executor) resolve(ctx execCtx) (*outcome, bool, error) {
	ex.mu.Lock()
	e := ex.entries[ctx.key()]
	ex.mu.Unlock()
	if e != nil {
		select {
		case <-e.done:
			if e.err != nil {
				if ctx.certain {
					return nil, false, e.err
				}
				return ex.estimate(ctx), false, nil
			}
			return translateOutcome(e.out, e.ctx, ctx), true, nil
		default:
		}
	}
	return ex.estimate(ctx), false, nil
}

// estimate fabricates a plausible outcome for an unresolved admission,
// so the pass can keep replaying past it. Any finished execution of the
// same template (whatever its shrink/warm key) beats the zero outcome.
// Estimates only steer which executions run speculatively — the fleet
// returns nothing until a pass resolves every admission exactly.
func (ex *executor) estimate(ctx execCtx) *outcome {
	if ctx.tmplKey != "" {
		ex.mu.Lock()
		e := ex.canon[ctx.tmplKey]
		ex.mu.Unlock()
		if e != nil {
			return translateOutcome(e.out, e.ctx, ctx)
		}
	}
	return &outcome{res: &core.Result{ID: ctx.id()}, finalWarm: ctx.warm}
}

// close abandons queued speculative work, waits for in-flight
// executions (they read the shared object store) and retires the pool.
func (ex *executor) close() {
	ex.mu.Lock()
	ex.closed = true
	ex.mu.Unlock()
	ex.cond.Broadcast()
	ex.wg.Wait()
}
